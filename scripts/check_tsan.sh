#!/usr/bin/env bash
# Parallel-mode tier-1 tests under ThreadSanitizer.
#
# Builds the "tsan" preset (build-tsan/, ACTOP_SANITIZE=thread, which the
# toplevel CMakeLists maps to -fsanitize=thread) and runs the portion of the
# tier-1 suite that exercises the sharded engine's worker threads: the
# ShardedEngine unit tests (window barriers, rail cuts, exchange hooks), the
# parallel scenario suite (four-shard fig10b equivalence and --threads=4
# report determinism), and the chaos harness's parallel determinism + seed
# sweep. The serial suites add nothing under TSan — they are single-threaded
# by construction — so the default filter keeps the run minutes, not hours
# (TSan is ~5-15x on these simulators).
#
# Any data race in the conservative-window protocol (a shard reading a
# neighbour's Simulation outside the barrier, an exchange buffer touched
# before its epoch is published, a stats counter shared across workers)
# aborts the test immediately via halt_on_error.
#
# Usage:
#   scripts/check_tsan.sh              # parallel-exercising suites under TSan
#   scripts/check_tsan.sh -R Sharded   # extra args replace the default filter
#   TSAN_FULL=1 scripts/check_tsan.sh  # entire tier-1 suite under TSan

set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset tsan >/dev/null
cmake --build build-tsan -j >/dev/null

# A configure/build that silently produced nothing must not let the ctest
# below "pass" on an empty or stale test universe.
if [[ ! -f build-tsan/CTestTestfile.cmake ]]; then
  echo "check_tsan: ERROR: build-tsan/ has no CTest manifest; build failed?" >&2
  exit 1
fi

export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"
cd build-tsan

if [[ $# -gt 0 ]]; then
  ctest --output-on-failure -j "$(nproc)" "$@"
elif [[ "${TSAN_FULL:-0}" == "1" ]]; then
  ctest --output-on-failure -j "$(nproc)" -LE perf
else
  ctest --output-on-failure -j "$(nproc)" \
    -R 'ShardedEngine|ScenarioParallel|ChaosDeterminism|ChaosParallelSeed'
fi
