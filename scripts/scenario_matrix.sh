#!/usr/bin/env bash
# Scenario fleet: runs every open-loop scenario (src/load/) and collects the
# JSON SLO reports under scenario_reports/.
#
# Each scenario runs in its own scenario_runner process — the binary's
# counting allocator records allocs/event over the measure window, and
# per-process runs keep one scenario's warm pools out of another's figure.
# Reports are byte-identical for a fixed (scenario, scale, seed), so diffing
# two scenario_reports/ trees is a meaningful regression check.
#
# Usage:
#   scripts/scenario_matrix.sh                   # full scale (1.0): the
#                                                # million-user flash crowd
#                                                # and friends; minutes of
#                                                # wall time, SLO-gated
#   SCALE=0.02 scripts/scenario_matrix.sh        # smoke matrix (what tier-1
#                                                # CI runs); seconds
#   SEED=7 scripts/scenario_matrix.sh            # different traffic seed
#   CHAOS=1 scripts/scenario_matrix.sh           # inject faults; SLO bounds
#                                                # relax to invariants-only
#   SCENARIOS="flash_crowd hot_key" scripts/scenario_matrix.sh
#   THREADS=4 scripts/scenario_matrix.sh         # parallel engine (4 shards);
#                                                # deterministic per thread
#                                                # count, reports land in
#                                                # *.threads4.json
#
# Exit status is non-zero if any scenario fails its SLO (latency/timeout/
# goodput bounds at the configured scale, plus zero invariant violations
# always). The same runs exist as ctest entries: smoke ones in tier-1
# (`ctest -L scenario`), full-scale ones behind the perf configuration
# (`ctest -C perf -L scenario`).
#
# These reports are NOT perf baselines: scripts/perf_gate.sh refuses a
# scenario report offered as one (schema marker actop-scenario-report).

set -euo pipefail

cd "$(dirname "$0")/.."

SCALE="${SCALE:-1.0}"
SEED="${SEED:-1}"
CHAOS="${CHAOS:-0}"
THREADS="${THREADS:-1}"
BUILD_DIR="${BUILD_DIR:-build-release}"
OUT_DIR="${OUT_DIR:-scenario_reports}"
SCENARIOS="${SCENARIOS:-diurnal_chat flash_crowd hot_key viral_social reconnect_storm halo_launch}"

cmake --preset release >/dev/null
cmake --build "${BUILD_DIR}" --target scenario_runner -j >/dev/null

runner="${BUILD_DIR}/bench/scenario_runner"
if [[ ! -x "${runner}" ]]; then
  echo "scenario_matrix: ERROR: ${runner} missing or not executable" >&2
  exit 1
fi

mkdir -p "${OUT_DIR}"

chaos_args=()
suffix=""
if [[ "${CHAOS}" == "1" ]]; then
  chaos_args=(--chaos)
  suffix=".chaos"
fi
if [[ "${THREADS}" != "1" ]]; then
  suffix="${suffix}.threads${THREADS}"
fi

status=0
for scenario in ${SCENARIOS}; do
  out="${OUT_DIR}/${scenario}.scale${SCALE}.seed${SEED}${suffix}.json"
  echo "scenario_matrix: ${scenario} (scale=${SCALE} seed=${SEED} chaos=${CHAOS} threads=${THREADS})"
  if ! "${runner}" --scenario="${scenario}" --scale="${SCALE}" --seed="${SEED}" \
       --threads="${THREADS}" \
       "${chaos_args[@]+"${chaos_args[@]}"}" --check --json="${out}"; then
    echo "scenario_matrix: ${scenario} FAILED its SLO (report: ${out})" >&2
    status=1
  fi
done

echo "scenario_matrix: reports in ${OUT_DIR}/"
exit "${status}"
