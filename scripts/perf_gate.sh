#!/usr/bin/env bash
# Perf-regression gate for the engine/messaging, partitioning and
# cluster/CPU-scheduler hot paths.
#
# Builds bench_engine, bench_partition and bench_cluster in Release mode,
# runs all three, writes BENCH_engine.json, BENCH_partition.json and
# BENCH_cluster.json at the repo root, and — when a checked-in baseline
# exists — fails (exit 1) if any scenario's events/sec regressed more than
# THRESHOLD (default 10%) against the corresponding file in bench/baselines/.
# bench_partition and bench_cluster additionally self-gate their in-binary
# geomean speedups vs the retained seed implementations (1.5x floors), and
# bench_cluster fails if an optimized CPU scenario allocates in steady state.
#
# Usage:
#   scripts/perf_gate.sh                 # gate against the checked-in baselines
#   THRESHOLD=0.05 scripts/perf_gate.sh  # stricter gate
#   SCALE=0.25 scripts/perf_gate.sh      # quicker run (smaller workloads);
#                                        # throughput ratios stay comparable
#
# The same comparisons run in ctest under the "perf" configuration:
#   ctest --preset perf        (or: ctest -C perf -L perf from a build dir)
# Tier-1 `ctest` never runs them: wall-clock throughput is machine-dependent,
# so the gate is opt-in for perf work and CI perf jobs only.

set -euo pipefail

cd "$(dirname "$0")/.."

THRESHOLD="${THRESHOLD:-0.10}"
SCALE="${SCALE:-1.0}"
BUILD_DIR="${BUILD_DIR:-build-release}"

cmake --preset release >/dev/null
cmake --build "${BUILD_DIR}" --target bench_engine --target bench_partition \
      --target bench_cluster -j >/dev/null

status=0
run_gate() {
  local bench="$1"
  local baseline="bench/baselines/BENCH_${bench}.baseline.json"
  local out="BENCH_${bench}.json"
  local args=(--json="${out}" --scale="${SCALE}")
  if [[ -f "${baseline}" ]]; then
    args+=(--compare="${baseline}" --gate --threshold="${THRESHOLD}")
  else
    echo "perf_gate: no baseline at ${baseline}; recording ${out} without gating" >&2
  fi
  if ! "${BUILD_DIR}/bench/bench_${bench}" "${args[@]}"; then
    status=1
  fi
  echo "perf_gate: wrote ${out}"
}

run_gate engine
run_gate partition
run_gate cluster
exit "${status}"
