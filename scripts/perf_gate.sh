#!/usr/bin/env bash
# Perf-regression gate for the engine/messaging, partitioning,
# repartitioning-arena, cluster/CPU-scheduler, parallel-core and
# halo-scale hot paths.
#
# Builds bench_engine, bench_partition, bench_arena, bench_cluster,
# bench_parallel and bench_halo_scale in Release mode, runs all six, writes
# BENCH_<name>.json at the repo root, and — when a checked-in baseline
# exists — fails (exit 1) if any scenario's events/sec regressed more than
# THRESHOLD (default 10%) against the corresponding file in
# bench/baselines/. bench_partition and bench_cluster additionally
# self-gate their in-binary geomean speedups vs the retained seed
# implementations (1.5x floors), bench_arena self-gates its 5x geomean vs
# the map-based testbed plus zero steady-state allocations, bench_cluster
# fails if an optimized CPU scenario allocates in steady state,
# bench_parallel self-gates the 3x-at-8-shards scaling floor on hosts with
# >= 8 hardware threads, and bench_halo_scale self-gates the bytes/actor
# build ceiling at the 1000-server / 10M-player point.
#
# bench_halo_scale is the outlier in cost and calling convention: the full
# run takes ~20 minutes, its baseline is population-specific (the binary
# refuses a --scale that differs from the baseline's recorded scale instead
# of comparing incomparable populations), so it is pinned to a single
# attempt, and SCALE=... quick runs must either exclude it
# (PERF_GATE_BENCHES) or bring a baseline recorded at that scale.
#
# On a failed gate the script emits one structured line per regressed
# scenario to stderr:
#   perf_gate: FAIL bench=<name> scenario=<scenario> metric=events_per_sec \
#     measured=<value> floor=<baseline * (1 - THRESHOLD)>
# Self-gate failures (geomean / allocation floors) are reported by the bench
# binaries themselves on stderr with the measured value and the floor.
#
# Baselines that record a "threads" header (the scaling bench does) are only
# comparable between hosts with the same hardware parallelism; the gate
# refuses a mismatched one up front instead of reporting a bogus
# regression/improvement.
#
# Usage:
#   scripts/perf_gate.sh                 # gate against the checked-in baselines
#   THRESHOLD=0.05 scripts/perf_gate.sh  # stricter gate
#   SCALE=0.25 scripts/perf_gate.sh      # quicker run (smaller workloads);
#                                        # throughput ratios stay comparable
#   ATTEMPTS=1 scripts/perf_gate.sh      # no retry on a failed gate (default 3;
#                                        # retries absorb shared-builder noise).
#                                        # Each bench pins its own attempt
#                                        # count: the single-threaded benches
#                                        # follow ATTEMPTS, while the parallel
#                                        # scaling bench is pinned to 2 — its
#                                        # multi-minute runs make a third
#                                        # retry more expensive than useful,
#                                        # and its speedup ratios are
#                                        # self-normalizing against host noise
#
# The same comparisons run in ctest under the "perf" configuration:
#   ctest --preset perf        (or: ctest -C perf -L perf from a build dir)
# Tier-1 `ctest` never runs them: wall-clock throughput is machine-dependent,
# so the gate is opt-in for perf work and CI perf jobs only.
#
# Hooks for driving the gate logic itself under test
# (scripts/test_perf_gate.sh):
#   PERF_GATE_BENCHES="arena"     run only the named benches
#   PERF_GATE_NO_BUILD=1          skip the cmake configure/build step
#   OUT_DIR=/tmp/x                where BENCH_<name>.json is written (default .)
#   BASELINE_DIR=/tmp/y           where baselines are read from
#                                 (default bench/baselines)

set -euo pipefail

cd "$(dirname "$0")/.."

THRESHOLD="${THRESHOLD:-0.10}"
SCALE="${SCALE:-1.0}"
BUILD_DIR="${BUILD_DIR:-build-release}"
OUT_DIR="${OUT_DIR:-.}"
BASELINE_DIR="${BASELINE_DIR:-bench/baselines}"
PERF_GATE_BENCHES="${PERF_GATE_BENCHES:-engine partition arena cluster parallel halo_scale}"
# Wall-clock throughput on shared builders dips 20-30% under transient host
# load. A real regression reproduces on every attempt; a noise dip does not,
# so retry a failing bench up to ATTEMPTS times before declaring a regression.
ATTEMPTS="${ATTEMPTS:-3}"

if [[ "${PERF_GATE_NO_BUILD:-0}" != "1" ]]; then
  cmake --preset release >/dev/null
  targets=()
  for bench in ${PERF_GATE_BENCHES}; do
    targets+=(--target "bench_${bench}")
  done
  cmake --build "${BUILD_DIR}" "${targets[@]}" -j >/dev/null
fi

status=0

# One structured line per scenario whose events/sec fell below the baseline
# floor, so CI logs carry the regressed scenario, the measured value, and
# the floor without anyone re-running the bench by hand.
report_failures() {
  local bench="$1" out="$2" baseline="$3"
  [[ -f "${out}" && -f "${baseline}" ]] || return 0
  awk -v bench="${bench}" -v thr="${THRESHOLD}" '
    function num(line, key,    s) {
      s = line
      if (!sub(".*\"" key "\": *", "", s)) return ""
      sub("[,}].*", "", s)
      return s + 0
    }
    function scen(line,    s) {
      s = line
      sub(".*\"name\": *\"", "", s)
      sub("\".*", "", s)
      return s
    }
    FNR == NR {
      if ($0 ~ /"name":/) base[scen($0)] = num($0, "events_per_sec")
      next
    }
    $0 ~ /"name":/ {
      n = scen($0)
      if (n in base && base[n] > 0) {
        floor = base[n] * (1 - thr)
        measured = num($0, "events_per_sec")
        if (measured < floor)
          printf "perf_gate: FAIL bench=%s scenario=%s metric=events_per_sec measured=%.0f floor=%.0f\n", \
                 bench, n, measured, floor
      }
    }
  ' "${baseline}" "${out}" >&2
}
run_gate() {
  local bench="$1"
  # Per-bench pinned attempt count; defaults to the global ATTEMPTS.
  local attempts="${2:-${ATTEMPTS}}"
  local baseline="${BASELINE_DIR}/BENCH_${bench}.baseline.json"
  local out="${OUT_DIR}/BENCH_${bench}.json"
  local binary="${BUILD_DIR}/bench/bench_${bench}"
  # Fail loudly instead of "passing" vacuously: a missing binary means the
  # build above silently skipped the target, and a missing baseline means
  # the gate would record numbers without comparing them. Recording without
  # a baseline is legitimate only when intentionally re-baselining, so it
  # must be requested explicitly.
  if [[ ! -x "${binary}" ]]; then
    echo "perf_gate: ERROR: bench binary ${binary} missing or not executable" >&2
    status=1
    return
  fi
  local args=(--json="${out}" --scale="${SCALE}")
  if [[ -f "${baseline}" ]]; then
    if [[ ! -s "${baseline}" ]]; then
      echo "perf_gate: ERROR: baseline ${baseline} exists but is empty" >&2
      status=1
      return
    fi
    # Scenario SLO reports (scripts/scenario_matrix.sh) are JSON too, but
    # they measure simulated latency under a traffic shape — not wall-clock
    # bench throughput — so one offered as a bench baseline must be refused,
    # not silently compared field-by-missing-field.
    if grep -q 'actop-scenario-report' "${baseline}"; then
      echo "perf_gate: ERROR: ${baseline} is a scenario SLO report" \
           "(actop-scenario-report schema), not a bench baseline" >&2
      echo "perf_gate: scenario reports come from scripts/scenario_matrix.sh" \
           "and are not comparable with bench output" >&2
      status=1
      return
    fi
    # Baselines with a "threads" header (the scaling bench records one) are
    # host-parallelism-specific: a curve recorded on an 8-way box is not a
    # valid reference for a 1-vCPU builder or vice versa. Reject the
    # mismatch here with a clear message (the bench itself double-checks).
    if grep -q '"threads":' "${baseline}"; then
      local baseline_threads host_threads
      baseline_threads="$(grep -o '"threads": *[0-9]*' "${baseline}" | head -1 | grep -o '[0-9]*')"
      host_threads="$(nproc)"
      if [[ "${baseline_threads}" != "${host_threads}" ]]; then
        echo "perf_gate: ERROR: ${baseline} was recorded with threads=${baseline_threads}" \
             "but this host has ${host_threads}; scaling baselines are only comparable" \
             "at equal parallelism — re-record it on this host" >&2
        status=1
        return
      fi
    fi
    args+=(--compare="${baseline}" --gate --threshold="${THRESHOLD}")
  elif [[ "${ALLOW_MISSING_BASELINE:-0}" == "1" ]]; then
    echo "perf_gate: no baseline at ${baseline}; recording ${out} without gating" >&2
  else
    echo "perf_gate: ERROR: no baseline at ${baseline}" >&2
    echo "perf_gate: set ALLOW_MISSING_BASELINE=1 to record a new baseline" >&2
    status=1
    return
  fi
  local attempt
  for attempt in $(seq 1 "${attempts}"); do
    if "${binary}" "${args[@]}"; then
      echo "perf_gate: wrote ${out}"
      return
    fi
    if [[ "${attempt}" -lt "${attempts}" ]]; then
      echo "perf_gate: bench_${bench} gate failed (attempt ${attempt}/${attempts}); retrying" >&2
    fi
  done
  echo "perf_gate: bench_${bench} gate failed on all ${attempts} attempts" >&2
  if [[ -f "${baseline}" ]]; then
    report_failures "${bench}" "${out}" "${baseline}"
  fi
  status=1
  echo "perf_gate: wrote ${out}"
}

for bench in ${PERF_GATE_BENCHES}; do
  case "${bench}" in
    # The parallel scaling bench is pinned to 2 attempts (see header).
    parallel) run_gate parallel 2 ;;
    # The halo-scale bench runs ~20 minutes at full scale; one attempt only
    # (its baseline carries enough headroom to absorb builder noise).
    halo_scale) run_gate halo_scale 1 ;;
    *) run_gate "${bench}" ;;
  esac
done
exit "${status}"
