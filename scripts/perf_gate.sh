#!/usr/bin/env bash
# Perf-regression gate for the event engine and messaging hot path.
#
# Builds bench_engine in Release mode, runs it, writes BENCH_engine.json at
# the repo root, and — when a checked-in baseline exists — fails (exit 1) if
# any scenario's events/sec regressed more than THRESHOLD (default 10%)
# against bench/baselines/BENCH_engine.baseline.json.
#
# Usage:
#   scripts/perf_gate.sh                 # gate against the checked-in baseline
#   THRESHOLD=0.05 scripts/perf_gate.sh  # stricter gate
#   SCALE=0.25 scripts/perf_gate.sh      # quicker run (smaller workloads);
#                                        # throughput ratios stay comparable
#
# The same comparison runs in ctest under the "perf" configuration:
#   ctest --preset perf        (or: ctest -C perf -L perf from a build dir)
# Tier-1 `ctest` never runs it: wall-clock throughput is machine-dependent,
# so the gate is opt-in for perf work and CI perf jobs only.

set -euo pipefail

cd "$(dirname "$0")/.."

THRESHOLD="${THRESHOLD:-0.10}"
SCALE="${SCALE:-1.0}"
BUILD_DIR="${BUILD_DIR:-build-release}"
BASELINE="bench/baselines/BENCH_engine.baseline.json"
OUT="BENCH_engine.json"

cmake --preset release >/dev/null
cmake --build "${BUILD_DIR}" --target bench_engine -j >/dev/null

GATE_ARGS=(--json="${OUT}" --scale="${SCALE}")
if [[ -f "${BASELINE}" ]]; then
  GATE_ARGS+=(--compare="${BASELINE}" --gate --threshold="${THRESHOLD}")
else
  echo "perf_gate: no baseline at ${BASELINE}; recording ${OUT} without gating" >&2
fi

"${BUILD_DIR}/bench/bench_engine" "${GATE_ARGS[@]}"
echo "perf_gate: wrote ${OUT}"
