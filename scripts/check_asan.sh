#!/usr/bin/env bash
# Tier-1 test suite under AddressSanitizer + UndefinedBehaviorSanitizer.
#
# Builds the "asan" preset (build-asan/, ACTOP_SANITIZE=address, which the
# toplevel CMakeLists maps to -fsanitize=address,undefined) and runs the full
# ctest suite under it with leak detection on. Intended after any change to
# manually-indexed data structures (the Stream-Summary sampler's slab links,
# the indexed exchange heap, FlatHashMap probing, the CpuModel job slab +
# packed-key completion heap, RingBuffer's masked head/tail arithmetic): a
# stale index or use-after-free that happens to read plausible bytes can slip
# past the golden and differential tests but not past ASan. The suite picks
# up every registered test automatically, including the CPU differential and
# ring-buffer suites added with the virtual-time scheduler.
#
# Usage:
#   scripts/check_asan.sh              # full tier-1 suite under ASan+UBSan
#   scripts/check_asan.sh -R SpaceSav  # extra args forwarded to ctest

set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset asan >/dev/null
cmake --build build-asan -j >/dev/null

# A configure/build that silently produced nothing must not let the ctest
# below "pass" on an empty or stale test universe.
if [[ ! -f build-asan/CTestTestfile.cmake ]]; then
  echo "check_asan: ERROR: build-asan/ has no CTest manifest; build failed?" >&2
  exit 1
fi

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}"
cd build-asan
ctest --output-on-failure -j "$(nproc)" "$@"
