#!/usr/bin/env bash
# Negative/positive test for the perf-gate driver (scripts/perf_gate.sh):
# a tier-1 ctest entry, so it must run in milliseconds with no real bench.
#
# It drives the gate against a stub bench binary via the PERF_GATE_* hooks:
#   1. regression case — the stub writes canned JSON whose events/sec is far
#      below the canned baseline and exits 1 (as a gating bench does). The
#      gate must exit 1 AND emit the structured failure line
#      "perf_gate: FAIL bench=... scenario=... measured=... floor=...".
#   2. healthy case — the stub writes JSON matching the baseline and exits
#      0. The gate must exit 0 and emit no FAIL line.
#   3. missing-baseline case — without ALLOW_MISSING_BASELINE the gate must
#      refuse to run the bench (exit 1).
#   4. halo_scale pinning — the halo-scale bench is pinned to one attempt
#      regardless of ATTEMPTS (a ~20-minute run is too expensive to retry);
#      a failing stub bench_halo_scale must be invoked exactly once and the
#      gate must still emit the structured FAIL line for it.
# When shellcheck is available both scripts must also lint clean.

set -euo pipefail

cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "${tmp}"' EXIT

mkdir -p "${tmp}/build/bench" "${tmp}/baselines" "${tmp}/out"

cat > "${tmp}/baselines/BENCH_stub.baseline.json" <<'EOF'
{
  "bench": "stub",
  "scenarios": [
    {"name": "fast_path", "events": 100, "events_per_sec": 1000000, "ns_per_event": 1000.00},
    {"name": "slow_path", "events": 100, "events_per_sec": 500000, "ns_per_event": 2000.00}
  ]
}
EOF

# The stub honors the gate's calling convention (--json=FILE plus ignored
# flags), writes whatever JSON $STUB_JSON points at, and exits $STUB_EXIT.
cat > "${tmp}/build/bench/bench_stub" <<'EOF'
#!/usr/bin/env bash
out=""
for arg in "$@"; do
  case "${arg}" in
    --json=*) out="${arg#--json=}" ;;
  esac
done
[[ -n "${out}" ]] && cp "${STUB_JSON}" "${out}"
exit "${STUB_EXIT}"
EOF
chmod +x "${tmp}/build/bench/bench_stub"

run_gate_with_stub() {
  local json="$1" stub_exit="$2"
  STUB_JSON="${json}" STUB_EXIT="${stub_exit}" \
  PERF_GATE_BENCHES="stub" PERF_GATE_NO_BUILD=1 ATTEMPTS=1 \
  BUILD_DIR="${tmp}/build" OUT_DIR="${tmp}/out" BASELINE_DIR="${tmp}/baselines" \
    scripts/perf_gate.sh 2> "${tmp}/stderr.txt"
}

fail() {
  echo "test_perf_gate: FAIL: $*" >&2
  echo "--- gate stderr ---" >&2
  cat "${tmp}/stderr.txt" >&2 || true
  exit 1
}

# Case 1: regressed scenario, gating bench exits 1 -> gate fails with a
# structured line naming the scenario, the measured value, and the floor.
cat > "${tmp}/regressed.json" <<'EOF'
{
  "bench": "stub",
  "scenarios": [
    {"name": "fast_path", "events": 100, "events_per_sec": 400000, "ns_per_event": 2500.00},
    {"name": "slow_path", "events": 100, "events_per_sec": 490000, "ns_per_event": 2040.00}
  ]
}
EOF
if run_gate_with_stub "${tmp}/regressed.json" 1; then
  fail "gate exited 0 on a regressed bench"
fi
grep -q 'perf_gate: FAIL bench=stub scenario=fast_path metric=events_per_sec measured=400000 floor=900000' \
  "${tmp}/stderr.txt" || fail "missing structured failure line for fast_path"
if grep -q 'scenario=slow_path' "${tmp}/stderr.txt"; then
  fail "slow_path (within threshold) reported as regressed"
fi

# Case 2: healthy numbers, bench exits 0 -> gate passes, no FAIL lines.
if ! run_gate_with_stub "${tmp}/baselines/BENCH_stub.baseline.json" 0; then
  fail "gate exited non-zero on a healthy bench"
fi
if grep -q 'perf_gate: FAIL' "${tmp}/stderr.txt"; then
  fail "healthy run emitted a FAIL line"
fi

# Case 3: a missing baseline must be refused, not silently recorded.
rm "${tmp}/baselines/BENCH_stub.baseline.json"
if run_gate_with_stub "${tmp}/regressed.json" 0; then
  fail "gate exited 0 with no baseline and no ALLOW_MISSING_BASELINE"
fi
grep -q 'no baseline' "${tmp}/stderr.txt" || fail "missing-baseline error not reported"

# Case 4: halo_scale is pinned to a single attempt even when ATTEMPTS asks
# for retries, and its failures still carry the structured line. The stub
# logs each invocation so the attempt count is observable.
cat > "${tmp}/baselines/BENCH_halo_scale.baseline.json" <<'EOF'
{
  "bench": "halo_scale",
  "scenarios": [
    {"name": "halo_scale", "events": 8000, "events_per_sec": 5.5, "bytes_per_actor": 2886.9}
  ]
}
EOF
cat > "${tmp}/halo_regressed.json" <<'EOF'
{
  "bench": "halo_scale",
  "scenarios": [
    {"name": "halo_scale", "events": 8000, "events_per_sec": 2.0, "bytes_per_actor": 2886.9}
  ]
}
EOF
cat > "${tmp}/build/bench/bench_halo_scale" <<'EOF'
#!/usr/bin/env bash
echo run >> "${STUB_CALLS}"
out=""
for arg in "$@"; do
  case "${arg}" in
    --json=*) out="${arg#--json=}" ;;
  esac
done
[[ -n "${out}" ]] && cp "${STUB_JSON}" "${out}"
exit 1
EOF
chmod +x "${tmp}/build/bench/bench_halo_scale"
: > "${tmp}/halo_calls.txt"
if STUB_JSON="${tmp}/halo_regressed.json" STUB_CALLS="${tmp}/halo_calls.txt" \
   PERF_GATE_BENCHES="halo_scale" PERF_GATE_NO_BUILD=1 ATTEMPTS=3 \
   BUILD_DIR="${tmp}/build" OUT_DIR="${tmp}/out" BASELINE_DIR="${tmp}/baselines" \
     scripts/perf_gate.sh 2> "${tmp}/stderr.txt"; then
  fail "gate exited 0 on a failing halo_scale bench"
fi
calls="$(wc -l < "${tmp}/halo_calls.txt")"
[[ "${calls}" -eq 1 ]] || fail "halo_scale ran ${calls} attempts; pinned count is 1"
grep -q 'perf_gate: FAIL bench=halo_scale scenario=halo_scale metric=events_per_sec' \
  "${tmp}/stderr.txt" || fail "missing structured failure line for halo_scale"

if command -v shellcheck >/dev/null 2>&1; then
  shellcheck scripts/perf_gate.sh scripts/test_perf_gate.sh
else
  echo "test_perf_gate: shellcheck not installed; lint skipped" >&2
fi

echo "test_perf_gate: OK"
