file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_queue_controller.dir/bench_fig07_queue_controller.cc.o"
  "CMakeFiles/bench_fig07_queue_controller.dir/bench_fig07_queue_controller.cc.o.d"
  "bench_fig07_queue_controller"
  "bench_fig07_queue_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_queue_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
