# Empty dependencies file for bench_fig07_queue_controller.
# This may be replaced when dependencies are built.
