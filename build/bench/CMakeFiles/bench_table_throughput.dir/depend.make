# Empty dependencies file for bench_table_throughput.
# This may be replaced when dependencies are built.
