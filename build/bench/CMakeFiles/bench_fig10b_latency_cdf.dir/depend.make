# Empty dependencies file for bench_fig10b_latency_cdf.
# This may be replaced when dependencies are built.
