# Empty compiler generated dependencies file for bench_fig10d_load_sweep.
# This may be replaced when dependencies are built.
