file(REMOVE_RECURSE
  "libactop_bench_common.a"
)
