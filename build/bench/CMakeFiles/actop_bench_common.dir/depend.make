# Empty dependencies file for actop_bench_common.
# This may be replaced when dependencies are built.
