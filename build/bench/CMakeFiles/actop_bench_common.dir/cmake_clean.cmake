file(REMOVE_RECURSE
  "CMakeFiles/actop_bench_common.dir/counter_common.cc.o"
  "CMakeFiles/actop_bench_common.dir/counter_common.cc.o.d"
  "CMakeFiles/actop_bench_common.dir/halo_common.cc.o"
  "CMakeFiles/actop_bench_common.dir/halo_common.cc.o.d"
  "libactop_bench_common.a"
  "libactop_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actop_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
