# Empty compiler generated dependencies file for bench_fig11b_combined.
# This may be replaced when dependencies are built.
