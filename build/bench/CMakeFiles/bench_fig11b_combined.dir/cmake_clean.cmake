file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11b_combined.dir/bench_fig11b_combined.cc.o"
  "CMakeFiles/bench_fig11b_combined.dir/bench_fig11b_combined.cc.o.d"
  "bench_fig11b_combined"
  "bench_fig11b_combined.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11b_combined.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
