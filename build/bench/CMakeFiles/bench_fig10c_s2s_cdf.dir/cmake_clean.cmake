file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10c_s2s_cdf.dir/bench_fig10c_s2s_cdf.cc.o"
  "CMakeFiles/bench_fig10c_s2s_cdf.dir/bench_fig10c_s2s_cdf.cc.o.d"
  "bench_fig10c_s2s_cdf"
  "bench_fig10c_s2s_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10c_s2s_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
