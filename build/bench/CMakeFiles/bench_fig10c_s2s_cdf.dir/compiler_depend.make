# Empty compiler generated dependencies file for bench_fig10c_s2s_cdf.
# This may be replaced when dependencies are built.
