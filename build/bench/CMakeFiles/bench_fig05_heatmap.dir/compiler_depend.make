# Empty compiler generated dependencies file for bench_fig05_heatmap.
# This may be replaced when dependencies are built.
