# Empty dependencies file for bench_fig11a_threadopt.
# This may be replaced when dependencies are built.
