file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11a_threadopt.dir/bench_fig11a_threadopt.cc.o"
  "CMakeFiles/bench_fig11a_threadopt.dir/bench_fig11a_threadopt.cc.o.d"
  "bench_fig11a_threadopt"
  "bench_fig11a_threadopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11a_threadopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
