# Empty compiler generated dependencies file for bench_fig10a_convergence.
# This may be replaced when dependencies are built.
