file(REMOVE_RECURSE
  "CMakeFiles/social_feed.dir/social_feed.cc.o"
  "CMakeFiles/social_feed.dir/social_feed.cc.o.d"
  "social_feed"
  "social_feed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_feed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
