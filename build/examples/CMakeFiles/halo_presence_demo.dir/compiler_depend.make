# Empty compiler generated dependencies file for halo_presence_demo.
# This may be replaced when dependencies are built.
