file(REMOVE_RECURSE
  "CMakeFiles/halo_presence_demo.dir/halo_presence_demo.cc.o"
  "CMakeFiles/halo_presence_demo.dir/halo_presence_demo.cc.o.d"
  "halo_presence_demo"
  "halo_presence_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halo_presence_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
