file(REMOVE_RECURSE
  "libactop_seda.a"
)
