# Empty dependencies file for actop_seda.
# This may be replaced when dependencies are built.
