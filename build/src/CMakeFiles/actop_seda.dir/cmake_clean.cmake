file(REMOVE_RECURSE
  "CMakeFiles/actop_seda.dir/seda/cpu.cc.o"
  "CMakeFiles/actop_seda.dir/seda/cpu.cc.o.d"
  "CMakeFiles/actop_seda.dir/seda/emulator.cc.o"
  "CMakeFiles/actop_seda.dir/seda/emulator.cc.o.d"
  "CMakeFiles/actop_seda.dir/seda/stage.cc.o"
  "CMakeFiles/actop_seda.dir/seda/stage.cc.o.d"
  "libactop_seda.a"
  "libactop_seda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actop_seda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
