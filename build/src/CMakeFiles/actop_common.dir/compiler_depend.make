# Empty compiler generated dependencies file for actop_common.
# This may be replaced when dependencies are built.
