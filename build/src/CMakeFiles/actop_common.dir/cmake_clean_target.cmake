file(REMOVE_RECURSE
  "libactop_common.a"
)
