file(REMOVE_RECURSE
  "CMakeFiles/actop_common.dir/common/flags.cc.o"
  "CMakeFiles/actop_common.dir/common/flags.cc.o.d"
  "CMakeFiles/actop_common.dir/common/histogram.cc.o"
  "CMakeFiles/actop_common.dir/common/histogram.cc.o.d"
  "CMakeFiles/actop_common.dir/common/table.cc.o"
  "CMakeFiles/actop_common.dir/common/table.cc.o.d"
  "libactop_common.a"
  "libactop_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actop_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
