file(REMOVE_RECURSE
  "CMakeFiles/actop_core.dir/core/offline_partitioner.cc.o"
  "CMakeFiles/actop_core.dir/core/offline_partitioner.cc.o.d"
  "CMakeFiles/actop_core.dir/core/pairwise_partition.cc.o"
  "CMakeFiles/actop_core.dir/core/pairwise_partition.cc.o.d"
  "CMakeFiles/actop_core.dir/core/param_estimator.cc.o"
  "CMakeFiles/actop_core.dir/core/param_estimator.cc.o.d"
  "CMakeFiles/actop_core.dir/core/partition_testbed.cc.o"
  "CMakeFiles/actop_core.dir/core/partition_testbed.cc.o.d"
  "CMakeFiles/actop_core.dir/core/queuing_model.cc.o"
  "CMakeFiles/actop_core.dir/core/queuing_model.cc.o.d"
  "CMakeFiles/actop_core.dir/core/streaming_partitioner.cc.o"
  "CMakeFiles/actop_core.dir/core/streaming_partitioner.cc.o.d"
  "CMakeFiles/actop_core.dir/core/thread_allocator.cc.o"
  "CMakeFiles/actop_core.dir/core/thread_allocator.cc.o.d"
  "CMakeFiles/actop_core.dir/core/thread_controller.cc.o"
  "CMakeFiles/actop_core.dir/core/thread_controller.cc.o.d"
  "libactop_core.a"
  "libactop_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actop_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
