# Empty dependencies file for actop_core.
# This may be replaced when dependencies are built.
