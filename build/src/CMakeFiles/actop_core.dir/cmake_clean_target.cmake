file(REMOVE_RECURSE
  "libactop_core.a"
)
