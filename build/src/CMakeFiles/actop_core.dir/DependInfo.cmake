
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/offline_partitioner.cc" "src/CMakeFiles/actop_core.dir/core/offline_partitioner.cc.o" "gcc" "src/CMakeFiles/actop_core.dir/core/offline_partitioner.cc.o.d"
  "/root/repo/src/core/pairwise_partition.cc" "src/CMakeFiles/actop_core.dir/core/pairwise_partition.cc.o" "gcc" "src/CMakeFiles/actop_core.dir/core/pairwise_partition.cc.o.d"
  "/root/repo/src/core/param_estimator.cc" "src/CMakeFiles/actop_core.dir/core/param_estimator.cc.o" "gcc" "src/CMakeFiles/actop_core.dir/core/param_estimator.cc.o.d"
  "/root/repo/src/core/partition_testbed.cc" "src/CMakeFiles/actop_core.dir/core/partition_testbed.cc.o" "gcc" "src/CMakeFiles/actop_core.dir/core/partition_testbed.cc.o.d"
  "/root/repo/src/core/queuing_model.cc" "src/CMakeFiles/actop_core.dir/core/queuing_model.cc.o" "gcc" "src/CMakeFiles/actop_core.dir/core/queuing_model.cc.o.d"
  "/root/repo/src/core/streaming_partitioner.cc" "src/CMakeFiles/actop_core.dir/core/streaming_partitioner.cc.o" "gcc" "src/CMakeFiles/actop_core.dir/core/streaming_partitioner.cc.o.d"
  "/root/repo/src/core/thread_allocator.cc" "src/CMakeFiles/actop_core.dir/core/thread_allocator.cc.o" "gcc" "src/CMakeFiles/actop_core.dir/core/thread_allocator.cc.o.d"
  "/root/repo/src/core/thread_controller.cc" "src/CMakeFiles/actop_core.dir/core/thread_controller.cc.o" "gcc" "src/CMakeFiles/actop_core.dir/core/thread_controller.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/actop_seda.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/actop_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/actop_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
