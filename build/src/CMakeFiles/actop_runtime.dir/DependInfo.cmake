
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/actor/directory.cc" "src/CMakeFiles/actop_runtime.dir/actor/directory.cc.o" "gcc" "src/CMakeFiles/actop_runtime.dir/actor/directory.cc.o.d"
  "/root/repo/src/actor/location_cache.cc" "src/CMakeFiles/actop_runtime.dir/actor/location_cache.cc.o" "gcc" "src/CMakeFiles/actop_runtime.dir/actor/location_cache.cc.o.d"
  "/root/repo/src/net/network.cc" "src/CMakeFiles/actop_runtime.dir/net/network.cc.o" "gcc" "src/CMakeFiles/actop_runtime.dir/net/network.cc.o.d"
  "/root/repo/src/runtime/client.cc" "src/CMakeFiles/actop_runtime.dir/runtime/client.cc.o" "gcc" "src/CMakeFiles/actop_runtime.dir/runtime/client.cc.o.d"
  "/root/repo/src/runtime/cluster.cc" "src/CMakeFiles/actop_runtime.dir/runtime/cluster.cc.o" "gcc" "src/CMakeFiles/actop_runtime.dir/runtime/cluster.cc.o.d"
  "/root/repo/src/runtime/partition_agent.cc" "src/CMakeFiles/actop_runtime.dir/runtime/partition_agent.cc.o" "gcc" "src/CMakeFiles/actop_runtime.dir/runtime/partition_agent.cc.o.d"
  "/root/repo/src/runtime/server.cc" "src/CMakeFiles/actop_runtime.dir/runtime/server.cc.o" "gcc" "src/CMakeFiles/actop_runtime.dir/runtime/server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/actop_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/actop_seda.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/actop_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/actop_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
