file(REMOVE_RECURSE
  "CMakeFiles/actop_runtime.dir/actor/directory.cc.o"
  "CMakeFiles/actop_runtime.dir/actor/directory.cc.o.d"
  "CMakeFiles/actop_runtime.dir/actor/location_cache.cc.o"
  "CMakeFiles/actop_runtime.dir/actor/location_cache.cc.o.d"
  "CMakeFiles/actop_runtime.dir/net/network.cc.o"
  "CMakeFiles/actop_runtime.dir/net/network.cc.o.d"
  "CMakeFiles/actop_runtime.dir/runtime/client.cc.o"
  "CMakeFiles/actop_runtime.dir/runtime/client.cc.o.d"
  "CMakeFiles/actop_runtime.dir/runtime/cluster.cc.o"
  "CMakeFiles/actop_runtime.dir/runtime/cluster.cc.o.d"
  "CMakeFiles/actop_runtime.dir/runtime/partition_agent.cc.o"
  "CMakeFiles/actop_runtime.dir/runtime/partition_agent.cc.o.d"
  "CMakeFiles/actop_runtime.dir/runtime/server.cc.o"
  "CMakeFiles/actop_runtime.dir/runtime/server.cc.o.d"
  "libactop_runtime.a"
  "libactop_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actop_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
