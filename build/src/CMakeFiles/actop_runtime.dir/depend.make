# Empty dependencies file for actop_runtime.
# This may be replaced when dependencies are built.
