file(REMOVE_RECURSE
  "libactop_runtime.a"
)
