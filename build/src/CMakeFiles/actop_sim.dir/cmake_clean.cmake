file(REMOVE_RECURSE
  "CMakeFiles/actop_sim.dir/sim/simulation.cc.o"
  "CMakeFiles/actop_sim.dir/sim/simulation.cc.o.d"
  "libactop_sim.a"
  "libactop_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actop_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
