file(REMOVE_RECURSE
  "libactop_sim.a"
)
