# Empty compiler generated dependencies file for actop_sim.
# This may be replaced when dependencies are built.
