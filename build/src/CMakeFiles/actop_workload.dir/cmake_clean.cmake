file(REMOVE_RECURSE
  "CMakeFiles/actop_workload.dir/workload/chat.cc.o"
  "CMakeFiles/actop_workload.dir/workload/chat.cc.o.d"
  "CMakeFiles/actop_workload.dir/workload/counter.cc.o"
  "CMakeFiles/actop_workload.dir/workload/counter.cc.o.d"
  "CMakeFiles/actop_workload.dir/workload/halo_presence.cc.o"
  "CMakeFiles/actop_workload.dir/workload/halo_presence.cc.o.d"
  "CMakeFiles/actop_workload.dir/workload/heartbeat.cc.o"
  "CMakeFiles/actop_workload.dir/workload/heartbeat.cc.o.d"
  "CMakeFiles/actop_workload.dir/workload/social.cc.o"
  "CMakeFiles/actop_workload.dir/workload/social.cc.o.d"
  "libactop_workload.a"
  "libactop_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actop_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
