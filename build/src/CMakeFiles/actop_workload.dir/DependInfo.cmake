
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/chat.cc" "src/CMakeFiles/actop_workload.dir/workload/chat.cc.o" "gcc" "src/CMakeFiles/actop_workload.dir/workload/chat.cc.o.d"
  "/root/repo/src/workload/counter.cc" "src/CMakeFiles/actop_workload.dir/workload/counter.cc.o" "gcc" "src/CMakeFiles/actop_workload.dir/workload/counter.cc.o.d"
  "/root/repo/src/workload/halo_presence.cc" "src/CMakeFiles/actop_workload.dir/workload/halo_presence.cc.o" "gcc" "src/CMakeFiles/actop_workload.dir/workload/halo_presence.cc.o.d"
  "/root/repo/src/workload/heartbeat.cc" "src/CMakeFiles/actop_workload.dir/workload/heartbeat.cc.o" "gcc" "src/CMakeFiles/actop_workload.dir/workload/heartbeat.cc.o.d"
  "/root/repo/src/workload/social.cc" "src/CMakeFiles/actop_workload.dir/workload/social.cc.o" "gcc" "src/CMakeFiles/actop_workload.dir/workload/social.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/actop_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/actop_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/actop_seda.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/actop_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/actop_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
