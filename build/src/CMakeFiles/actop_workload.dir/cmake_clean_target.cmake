file(REMOVE_RECURSE
  "libactop_workload.a"
)
