# Empty compiler generated dependencies file for actop_workload.
# This may be replaced when dependencies are built.
