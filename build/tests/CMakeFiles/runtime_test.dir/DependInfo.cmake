
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/actor/actor_api_test.cc" "tests/CMakeFiles/runtime_test.dir/actor/actor_api_test.cc.o" "gcc" "tests/CMakeFiles/runtime_test.dir/actor/actor_api_test.cc.o.d"
  "/root/repo/tests/actor/location_cache_test.cc" "tests/CMakeFiles/runtime_test.dir/actor/location_cache_test.cc.o" "gcc" "tests/CMakeFiles/runtime_test.dir/actor/location_cache_test.cc.o.d"
  "/root/repo/tests/net/network_test.cc" "tests/CMakeFiles/runtime_test.dir/net/network_test.cc.o" "gcc" "tests/CMakeFiles/runtime_test.dir/net/network_test.cc.o.d"
  "/root/repo/tests/runtime/client_test.cc" "tests/CMakeFiles/runtime_test.dir/runtime/client_test.cc.o" "gcc" "tests/CMakeFiles/runtime_test.dir/runtime/client_test.cc.o.d"
  "/root/repo/tests/runtime/failure_test.cc" "tests/CMakeFiles/runtime_test.dir/runtime/failure_test.cc.o" "gcc" "tests/CMakeFiles/runtime_test.dir/runtime/failure_test.cc.o.d"
  "/root/repo/tests/runtime/partition_agent_test.cc" "tests/CMakeFiles/runtime_test.dir/runtime/partition_agent_test.cc.o" "gcc" "tests/CMakeFiles/runtime_test.dir/runtime/partition_agent_test.cc.o.d"
  "/root/repo/tests/runtime/routing_test.cc" "tests/CMakeFiles/runtime_test.dir/runtime/routing_test.cc.o" "gcc" "tests/CMakeFiles/runtime_test.dir/runtime/routing_test.cc.o.d"
  "/root/repo/tests/runtime/server_test.cc" "tests/CMakeFiles/runtime_test.dir/runtime/server_test.cc.o" "gcc" "tests/CMakeFiles/runtime_test.dir/runtime/server_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/actop_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/actop_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/actop_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/actop_seda.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/actop_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/actop_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
