file(REMOVE_RECURSE
  "CMakeFiles/runtime_test.dir/actor/actor_api_test.cc.o"
  "CMakeFiles/runtime_test.dir/actor/actor_api_test.cc.o.d"
  "CMakeFiles/runtime_test.dir/actor/location_cache_test.cc.o"
  "CMakeFiles/runtime_test.dir/actor/location_cache_test.cc.o.d"
  "CMakeFiles/runtime_test.dir/net/network_test.cc.o"
  "CMakeFiles/runtime_test.dir/net/network_test.cc.o.d"
  "CMakeFiles/runtime_test.dir/runtime/client_test.cc.o"
  "CMakeFiles/runtime_test.dir/runtime/client_test.cc.o.d"
  "CMakeFiles/runtime_test.dir/runtime/failure_test.cc.o"
  "CMakeFiles/runtime_test.dir/runtime/failure_test.cc.o.d"
  "CMakeFiles/runtime_test.dir/runtime/partition_agent_test.cc.o"
  "CMakeFiles/runtime_test.dir/runtime/partition_agent_test.cc.o.d"
  "CMakeFiles/runtime_test.dir/runtime/routing_test.cc.o"
  "CMakeFiles/runtime_test.dir/runtime/routing_test.cc.o.d"
  "CMakeFiles/runtime_test.dir/runtime/server_test.cc.o"
  "CMakeFiles/runtime_test.dir/runtime/server_test.cc.o.d"
  "runtime_test"
  "runtime_test.pdb"
  "runtime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
