
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/estimator_integration_test.cc" "tests/CMakeFiles/core_test.dir/core/estimator_integration_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/estimator_integration_test.cc.o.d"
  "/root/repo/tests/core/offline_partitioner_test.cc" "tests/CMakeFiles/core_test.dir/core/offline_partitioner_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/offline_partitioner_test.cc.o.d"
  "/root/repo/tests/core/pairwise_fuzz_test.cc" "tests/CMakeFiles/core_test.dir/core/pairwise_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/pairwise_fuzz_test.cc.o.d"
  "/root/repo/tests/core/pairwise_partition_test.cc" "tests/CMakeFiles/core_test.dir/core/pairwise_partition_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/pairwise_partition_test.cc.o.d"
  "/root/repo/tests/core/param_estimator_test.cc" "tests/CMakeFiles/core_test.dir/core/param_estimator_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/param_estimator_test.cc.o.d"
  "/root/repo/tests/core/partition_testbed_test.cc" "tests/CMakeFiles/core_test.dir/core/partition_testbed_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/partition_testbed_test.cc.o.d"
  "/root/repo/tests/core/queuing_model_test.cc" "tests/CMakeFiles/core_test.dir/core/queuing_model_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/queuing_model_test.cc.o.d"
  "/root/repo/tests/core/sized_partition_test.cc" "tests/CMakeFiles/core_test.dir/core/sized_partition_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/sized_partition_test.cc.o.d"
  "/root/repo/tests/core/space_saving_test.cc" "tests/CMakeFiles/core_test.dir/core/space_saving_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/space_saving_test.cc.o.d"
  "/root/repo/tests/core/streaming_partitioner_test.cc" "tests/CMakeFiles/core_test.dir/core/streaming_partitioner_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/streaming_partitioner_test.cc.o.d"
  "/root/repo/tests/core/thread_allocator_test.cc" "tests/CMakeFiles/core_test.dir/core/thread_allocator_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/thread_allocator_test.cc.o.d"
  "/root/repo/tests/core/thread_controller_test.cc" "tests/CMakeFiles/core_test.dir/core/thread_controller_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/thread_controller_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/actop_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/actop_seda.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/actop_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/actop_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
