file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/estimator_integration_test.cc.o"
  "CMakeFiles/core_test.dir/core/estimator_integration_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/offline_partitioner_test.cc.o"
  "CMakeFiles/core_test.dir/core/offline_partitioner_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/pairwise_fuzz_test.cc.o"
  "CMakeFiles/core_test.dir/core/pairwise_fuzz_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/pairwise_partition_test.cc.o"
  "CMakeFiles/core_test.dir/core/pairwise_partition_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/param_estimator_test.cc.o"
  "CMakeFiles/core_test.dir/core/param_estimator_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/partition_testbed_test.cc.o"
  "CMakeFiles/core_test.dir/core/partition_testbed_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/queuing_model_test.cc.o"
  "CMakeFiles/core_test.dir/core/queuing_model_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/sized_partition_test.cc.o"
  "CMakeFiles/core_test.dir/core/sized_partition_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/space_saving_test.cc.o"
  "CMakeFiles/core_test.dir/core/space_saving_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/streaming_partitioner_test.cc.o"
  "CMakeFiles/core_test.dir/core/streaming_partitioner_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/thread_allocator_test.cc.o"
  "CMakeFiles/core_test.dir/core/thread_allocator_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/thread_controller_test.cc.o"
  "CMakeFiles/core_test.dir/core/thread_controller_test.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
