
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/seda/cpu_test.cc" "tests/CMakeFiles/seda_test.dir/seda/cpu_test.cc.o" "gcc" "tests/CMakeFiles/seda_test.dir/seda/cpu_test.cc.o.d"
  "/root/repo/tests/seda/emulator_test.cc" "tests/CMakeFiles/seda_test.dir/seda/emulator_test.cc.o" "gcc" "tests/CMakeFiles/seda_test.dir/seda/emulator_test.cc.o.d"
  "/root/repo/tests/seda/queueing_theory_test.cc" "tests/CMakeFiles/seda_test.dir/seda/queueing_theory_test.cc.o" "gcc" "tests/CMakeFiles/seda_test.dir/seda/queueing_theory_test.cc.o.d"
  "/root/repo/tests/seda/stage_test.cc" "tests/CMakeFiles/seda_test.dir/seda/stage_test.cc.o" "gcc" "tests/CMakeFiles/seda_test.dir/seda/stage_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/actop_seda.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/actop_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/actop_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
