file(REMOVE_RECURSE
  "CMakeFiles/seda_test.dir/seda/cpu_test.cc.o"
  "CMakeFiles/seda_test.dir/seda/cpu_test.cc.o.d"
  "CMakeFiles/seda_test.dir/seda/emulator_test.cc.o"
  "CMakeFiles/seda_test.dir/seda/emulator_test.cc.o.d"
  "CMakeFiles/seda_test.dir/seda/queueing_theory_test.cc.o"
  "CMakeFiles/seda_test.dir/seda/queueing_theory_test.cc.o.d"
  "CMakeFiles/seda_test.dir/seda/stage_test.cc.o"
  "CMakeFiles/seda_test.dir/seda/stage_test.cc.o.d"
  "seda_test"
  "seda_test.pdb"
  "seda_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seda_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
