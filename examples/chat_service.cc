// Chat service with ActOp optimizations — the paper's motivating scenario.
//
// Users and chat rooms are actors; users post messages that their room fans
// out to all members. The example runs the same service twice — with
// Orleans-style random placement and with ActOp's partitioning enabled — and
// prints how the remote-message fraction, latency, and CPU change once the
// runtime migrates each room next to its members.

#include <cstdio>

#include "src/common/sim_time.h"
#include "src/common/table.h"
#include "src/runtime/cluster.h"
#include "src/sim/simulation.h"
#include "src/workload/chat.h"

namespace {

struct RunStats {
  double remote_fraction;
  double median_ms;
  double p99_ms;
  double cpu;
  uint64_t migrations;
};

RunStats RunChat(bool actop_enabled) {
  actop::Simulation sim;
  actop::ClusterConfig config;
  config.num_servers = 4;
  config.seed = 2024;
  config.enable_partitioning = actop_enabled;
  config.partition.exchange_period = actop::Seconds(2);
  config.partition.exchange_min_gap = actop::Seconds(2);
  actop::Cluster cluster(&sim, config);

  actop::ChatWorkloadConfig chat_config;
  chat_config.num_users = 1000;
  chat_config.num_rooms = 50;
  chat_config.message_rate = 600.0;
  chat_config.rehome_period = actop::Seconds(2);
  chat_config.rehomes_per_period = 5;  // users drift between rooms
  actop::ChatWorkload chat(&cluster, chat_config);
  chat.Start();
  cluster.StartOptimizers();

  // Warm up (placement, convergence), then measure a steady window.
  sim.RunUntil(actop::Seconds(30));
  chat.clients().ResetStats();
  cluster.metrics().TakeWindow();
  double busy0 = 0;
  for (int s = 0; s < cluster.num_servers(); s++) {
    busy0 += cluster.server(s).cpu().busy_core_nanos();
  }
  const actop::SimTime t0 = sim.now();
  sim.RunUntil(t0 + actop::Seconds(30));
  double busy1 = 0;
  for (int s = 0; s < cluster.num_servers(); s++) {
    busy1 += cluster.server(s).cpu().busy_core_nanos();
  }

  const auto window = cluster.metrics().TakeWindow();
  RunStats stats;
  stats.remote_fraction = window.remote_fraction();
  stats.median_ms = actop::ToMillis(chat.clients().latency().p50());
  stats.p99_ms = actop::ToMillis(chat.clients().latency().p99());
  stats.cpu = (busy1 - busy0) / (4.0 * 8.0 * static_cast<double>(sim.now() - t0));
  stats.migrations = cluster.total_migrations();
  return stats;
}

}  // namespace

int main() {
  std::printf("Chat service: 1000 users, 50 rooms, 600 posts/sec on 4 servers\n");
  std::printf("(users drift between rooms, so the communication graph keeps changing)\n\n");

  const RunStats random_placement = RunChat(false);
  const RunStats actop = RunChat(true);

  actop::Table t({"placement", "remote msgs", "post median", "post p99", "CPU", "migrations"});
  t.AddRow({"random (baseline)", actop::FormatPercent(random_placement.remote_fraction),
            actop::FormatDouble(random_placement.median_ms, 2) + " ms",
            actop::FormatDouble(random_placement.p99_ms, 2) + " ms",
            actop::FormatPercent(random_placement.cpu),
            std::to_string(random_placement.migrations)});
  t.AddRow({"ActOp partitioning", actop::FormatPercent(actop.remote_fraction),
            actop::FormatDouble(actop.median_ms, 2) + " ms",
            actop::FormatDouble(actop.p99_ms, 2) + " ms", actop::FormatPercent(actop.cpu),
            std::to_string(actop.migrations)});
  t.Print();

  std::printf("\nActOp migrated each room next to its members and keeps adapting as users "
              "move — no application changes required.\n");
  return 0;
}
