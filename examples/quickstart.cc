// Quickstart: define an actor type, run a small cluster, call the actor.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build && ./build/examples/quickstart
//
// The example defines a GreeterActor, registers it with a 4-server simulated
// cluster, sends it calls from a client, and prints what happened — covering
// the core public API: Cluster, Actor/CallContext, DirectClient, and the
// virtual-actor lifecycle (activation on first call, transparent location).

#include <cstdio>
#include <memory>

#include "src/actor/actor.h"
#include "src/common/sim_time.h"
#include "src/runtime/client.h"
#include "src/runtime/cluster.h"
#include "src/sim/simulation.h"

namespace {

constexpr actop::ActorType kGreeterType = 1;

// An actor is a plain class; one instance exists per ActorId, activated on
// demand by whichever server the runtime places it on.
class GreeterActor : public actop::Actor {
 public:
  void OnCall(actop::CallContext& ctx) override {
    greetings_++;
    std::printf("  [sim t=%.3f ms] greeter %llu handled call #%d (method %u)\n",
                actop::ToMillis(ctx.now()), static_cast<unsigned long long>(ctx.self()),
                greetings_, ctx.method());
    ctx.Reply(/*payload_bytes=*/64);
  }

 private:
  int greetings_ = 0;
};

}  // namespace

int main() {
  actop::Simulation sim;

  // A simulated cluster: 4 servers, each an 8-core SEDA silo.
  actop::ClusterConfig config;
  config.num_servers = 4;
  actop::Cluster cluster(&sim, config);

  // Register the actor type; the factory runs on first activation.
  cluster.RegisterActorType(
      kGreeterType, [](actop::ActorId) { return std::make_unique<GreeterActor>(); },
      actop::CostModel{.handler_compute = actop::Micros(20)});

  // A client issues calls through random gateway servers.
  actop::DirectClient client(&sim, &cluster, /*seed=*/1);
  for (uint64_t key = 1; key <= 3; key++) {
    const actop::ActorId greeter = actop::MakeActorId(kGreeterType, key);
    client.Call(greeter, /*method=*/0, /*app_data=*/0, /*bytes=*/128,
                [key](const actop::Response& response) {
                  std::printf("  client: greeter %llu replied (%u bytes)\n",
                              static_cast<unsigned long long>(key), response.payload_bytes);
                });
    client.Call(greeter, /*method=*/1, 0, 128, nullptr);  // one-way
  }

  // Run the simulation to completion.
  sim.RunUntil(actop::Seconds(1));

  std::printf("\ncluster hosted %lld activations across %d servers:\n",
              static_cast<long long>(cluster.total_activations()), cluster.num_servers());
  for (int s = 0; s < cluster.num_servers(); s++) {
    std::printf("  server %d: %lld actors\n", s,
                static_cast<long long>(cluster.server(s).num_activations()));
  }
  return 0;
}
