// Halo Presence demo: watch ActOp converge live.
//
// Runs the paper's flagship workload (games + players, matchmaking churn,
// broadcast status requests) with both ActOp optimizations enabled and
// prints a dashboard line every simulated 5 seconds: remote-message
// fraction, migrations, client latency and CPU. The first ~30 seconds show
// the partitioner learning the communication graph and draining the
// migration backlog; after that it just tracks matchmaking churn.

#include <cstdio>

#include "src/common/sim_time.h"
#include "src/runtime/cluster.h"
#include "src/sim/simulation.h"
#include "src/workload/halo_presence.h"

int main() {
  actop::Simulation sim;
  actop::ClusterConfig config;
  config.num_servers = 8;
  config.seed = 7;
  config.enable_partitioning = true;
  config.partition.exchange_period = actop::Seconds(1);
  config.partition.exchange_min_gap = actop::Seconds(1);
  config.partition.max_peers_per_round = 4;
  config.partition.pairwise.candidate_set_size = 256;
  config.partition.pairwise.balance_delta = 200;
  config.partition.edge_decay_period = actop::Seconds(10);
  config.enable_thread_optimization = true;
  actop::Cluster cluster(&sim, config);

  actop::HaloWorkloadConfig workload_config;
  workload_config.target_players = 8000;
  workload_config.idle_pool_target = 80;
  workload_config.request_rate = 2500.0;
  actop::HaloWorkload halo(&cluster, workload_config);
  halo.Start();
  cluster.StartOptimizers();

  std::printf("Halo Presence: %d players, %0.f status requests/sec, 8 servers, ActOp on\n\n",
              workload_config.target_players, workload_config.request_rate);
  std::printf("%6s %8s %11s %10s %10s %8s %8s\n", "t(s)", "games", "remote msgs", "migr/5s",
              "med (ms)", "p99 (ms)", "CPU");

  double prev_busy = 0.0;
  actop::SimTime prev_t = 0;
  for (int t = 5; t <= 90; t += 5) {
    halo.clients().ResetStats();
    sim.RunUntil(actop::Seconds(t));
    const auto window = cluster.metrics().TakeWindow();
    double busy = 0.0;
    for (int s = 0; s < cluster.num_servers(); s++) {
      busy += cluster.server(s).cpu().busy_core_nanos();
    }
    const double cpu = (busy - prev_busy) /
                       (8.0 * 8.0 * static_cast<double>(sim.now() - prev_t));
    prev_busy = busy;
    prev_t = sim.now();
    std::printf("%6d %8lld %10.1f%% %10llu %10.2f %8.2f %7.1f%%\n", t,
                static_cast<long long>(halo.active_games()), window.remote_fraction() * 100.0,
                static_cast<unsigned long long>(window.migrations),
                actop::ToMillis(halo.clients().latency().p50()),
                actop::ToMillis(halo.clients().latency().p99()), cpu * 100.0);
  }

  std::printf("\nfinal thread allocations (receive/worker/server-sender/client-sender):\n");
  for (int s = 0; s < cluster.num_servers(); s++) {
    std::printf("  server %d: %d/%d/%d/%d\n", s, cluster.server(s).stage(0).threads(),
                cluster.server(s).stage(1).threads(), cluster.server(s).stage(2).threads(),
                cluster.server(s).stage(3).threads());
  }
  return 0;
}
