// IoT monitoring service — the third application domain from the paper's
// introduction (social networks, on-line games, Internet of Things).
//
// Each device is an actor that periodically pushes a reading to its regional
// aggregator actor; dashboards query aggregators for rollups. Devices in a
// region form a heavy communication cluster around their aggregator, so
// ActOp migrates each region onto one server. The example also crashes a
// server mid-run to show virtual-actor fault tolerance: the next call
// re-activates the lost actors elsewhere with their state intact (state
// lives in the cluster's store, as Orleans state lives in storage).

#include <cstdio>
#include <memory>

#include "src/actor/actor.h"
#include "src/common/sim_time.h"
#include "src/runtime/client.h"
#include "src/runtime/cluster.h"
#include "src/sim/simulation.h"

namespace {

constexpr actop::ActorType kDeviceType = 1;
constexpr actop::ActorType kAggregatorType = 2;

constexpr actop::MethodId kPushReading = 0;   // client -> device
constexpr actop::MethodId kReport = 0;        // device -> aggregator
constexpr actop::MethodId kQueryRollup = 1;   // dashboard -> aggregator

class AggregatorActor : public actop::Actor {
 public:
  void OnCall(actop::CallContext& ctx) override {
    if (ctx.method() == kReport) {
      sum_ += static_cast<int64_t>(ctx.app_data());
      count_++;
      ctx.Reply(16);
      return;
    }
    ctx.Reply(128);  // kQueryRollup
  }

  int64_t count() const { return count_; }

 private:
  int64_t sum_ = 0;
  int64_t count_ = 0;
};

class DeviceActor : public actop::Actor {
 public:
  void OnCall(actop::CallContext& ctx) override {
    // Device keys encode their region: key = region * 1000 + index.
    const uint64_t region = actop::ActorKeyOf(ctx.self()) / 1000;
    readings_++;
    actop::CallContext* call = &ctx;
    ctx.CallWithData(actop::MakeActorId(kAggregatorType, region), kReport,
                     /*reading=*/readings_ % 100, 96,
                     [call](const actop::Response&) { call->Reply(32); });
  }

 private:
  int64_t readings_ = 0;
};

}  // namespace

int main() {
  constexpr int kRegions = 24;
  constexpr int kDevicesPerRegion = 100;

  actop::Simulation sim;
  actop::ClusterConfig config;
  config.num_servers = 4;
  config.seed = 99;
  config.enable_partitioning = true;
  config.partition.exchange_period = actop::Seconds(2);
  config.partition.exchange_min_gap = actop::Seconds(2);
  config.partition.pairwise.candidate_set_size = 256;
  config.partition.pairwise.balance_delta = 120;
  actop::Cluster cluster(&sim, config);

  cluster.RegisterActorType(
      kDeviceType, [](actop::ActorId) { return std::make_unique<DeviceActor>(); },
      actop::CostModel{.handler_compute = actop::Micros(15)});
  cluster.RegisterActorType(
      kAggregatorType, [](actop::ActorId) { return std::make_unique<AggregatorActor>(); },
      actop::CostModel{.handler_compute = actop::Micros(25)});

  // Ingest frontend: each arrival is a random device pushing one reading.
  actop::ClientPool ingest(
      &sim, &cluster, actop::ClientConfig{.request_rate = 2000.0, .request_bytes = 160},
      [](actop::Rng& rng, actop::ActorId* target, actop::MethodId* method) {
        const uint64_t region = rng.NextBounded(kRegions) + 1;
        const uint64_t device = region * 1000 + rng.NextBounded(kDevicesPerRegion) + 1;
        *target = actop::MakeActorId(kDeviceType, device);
        *method = kPushReading;
        return true;
      });
  ingest.Start();
  cluster.StartOptimizers();

  sim.RunUntil(actop::Seconds(45));
  cluster.metrics().TakeWindow();
  sim.RunUntil(actop::Seconds(60));
  const auto before_crash = cluster.metrics().TakeWindow();
  std::printf("after 60 s: %lld activations, remote messages %.1f%% (started ~75%%)\n",
              static_cast<long long>(cluster.total_activations()),
              before_crash.remote_fraction() * 100.0);

  // Fault injection: lose a server; the runtime re-activates actors lazily.
  const long long before = cluster.server(1).num_activations();
  cluster.CrashServer(1);
  std::printf("crashed server 1 (%lld activations lost)\n", before);
  sim.RunUntil(actop::Seconds(90));

  int64_t readings = 0;
  for (uint64_t region = 1; region <= kRegions; region++) {
    const actop::ActorId aggregator = actop::MakeActorId(kAggregatorType, region);
    if (cluster.HasActorState(aggregator)) {
      readings += static_cast<AggregatorActor*>(cluster.GetOrCreateActor(aggregator))->count();
    }
  }
  std::printf("after recovery: %lld activations, %lld readings aggregated, "
              "%llu client timeouts, remote messages %.1f%%\n",
              static_cast<long long>(cluster.total_activations()), static_cast<long long>(readings),
              static_cast<unsigned long long>(ingest.timeouts()),
              cluster.metrics().TakeWindow().remote_fraction() * 100.0);
  std::printf("ingest median latency: %.2f ms\n",
              actop::ToMillis(ingest.latency().p50()));
  return 0;
}
