// Social feed service — heavy-tailed follower graphs under ActOp.
//
// Users post to their followers (write fan-out); the follower graph is
// community-structured with Zipf-skewed popularity, so a few celebrities
// have audiences far larger than any single server can absorb. The example
// shows what the partitioner can and cannot do on such graphs: community
// traffic localizes, celebrity fan-out stays partly remote, and the balance
// constraint keeps the celebrity's server from hoarding actors.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/common/sim_time.h"
#include "src/common/table.h"
#include "src/runtime/cluster.h"
#include "src/sim/simulation.h"
#include "src/workload/social.h"

int main() {
  actop::Simulation sim;
  actop::ClusterConfig config;
  config.num_servers = 4;
  config.seed = 5;
  config.enable_partitioning = true;
  config.partition.exchange_period = actop::Seconds(1);
  config.partition.exchange_min_gap = actop::Seconds(1);
  config.partition.pairwise.candidate_set_size = 256;
  actop::Cluster cluster(&sim, config);

  actop::SocialWorkloadConfig workload_config;
  workload_config.num_users = 2000;
  workload_config.mean_following = 10;
  workload_config.communities = 40;
  workload_config.community_bias = 0.8;
  workload_config.post_rate = 250.0;
  workload_config.read_rate = 750.0;
  actop::SocialWorkload social(&cluster, workload_config);
  social.Start();
  cluster.StartOptimizers();

  std::printf("Social feed: 2000 users, 40 communities, Zipf-skewed popularity, 4 servers\n\n");

  actop::Table t({"t(s)", "remote msgs", "posts", "deliveries", "read median (ms)"});
  for (int ts = 10; ts <= 60; ts += 10) {
    social.clients().ResetStats();
    sim.RunUntil(actop::Seconds(ts));
    const auto window = cluster.metrics().TakeWindow();
    t.AddRow({std::to_string(ts), actop::FormatPercent(window.remote_fraction()),
              std::to_string(social.state().posts), std::to_string(social.state().deliveries),
              actop::FormatMillis(social.clients().latency().p50())});
  }
  t.Print();

  // Who are the celebrities, and how balanced did the cluster stay?
  std::vector<int> followers;
  for (uint64_t u = 1; u <= 2000; u++) {
    followers.push_back(social.FollowerCount(u));
  }
  std::sort(followers.rbegin(), followers.rend());
  std::printf("\ntop follower counts: %d, %d, %d (median %d)\n", followers[0], followers[1],
              followers[2], followers[1000]);
  std::printf("activations per server:");
  for (int s = 0; s < cluster.num_servers(); s++) {
    std::printf(" %lld", static_cast<long long>(cluster.server(s).num_activations()));
  }
  std::printf("\nmigrations: %llu — communities localized; celebrity fan-out is the "
              "irreducible remote floor\n",
              static_cast<unsigned long long>(cluster.total_migrations()));
  return 0;
}
