// Differential fuzz of the Stream-Summary SpaceSaving (space_saving.h)
// against (a) golden digests produced by the original seed implementation
// (std::unordered_map counters + std::map<count, vector<Key>> buckets) at
// commit d1a9574, and (b) the retained reference implementation
// (space_saving_reference.h), across scripted streams that interleave
// weighted observes, evictions, Decay and Clear.
//
// The digests fold in size, total and the full sorted entry set after every
// single operation, so any divergence in a count, an error bound, or an
// eviction victim fails the test — this is what "sampling decisions stay
// byte-identical to seed" means mechanically.
//
// Split (see stream_golden_util.h): decay-free streams are pinned to the
// true seed binary's digests; streams with Decay are differentially checked
// against SpaceSavingReference, whose post-Decay bucket order is
// canonicalized (the seed's was an unordered_map iteration-order artifact).

#include "tests/core/stream_golden_util.h"

#include <gtest/gtest.h>

#include "src/core/space_saving.h"
#include "src/core/space_saving_reference.h"

namespace actop {
namespace {

// Generated from the seed implementation: SpaceSavingStreamDigest(seed, false)
// for seeds 1..100.
constexpr uint64_t kSeedStreamGoldens[100] = {
    0x77171e276c0aa666ULL, 0xbcf5f9c3cef20313ULL, 0x3f2485f9c5d62470ULL, 0x992fab4033598510ULL,
    0x78c860907128e31cULL, 0x2b9b0d69b58d7a5aULL, 0x70f4ec57672f0ae0ULL, 0xdb3397c422163bb6ULL,
    0x11fa9a461cf9061eULL, 0xc6e492bf717dcea8ULL, 0xfac1f99869d96809ULL, 0xd7c23a79a89971baULL,
    0x4dceddab40870f3eULL, 0xea89002d7e9f9ab9ULL, 0xf4325133992db27fULL, 0x70bab9815b493052ULL,
    0x48705c07e71f9201ULL, 0xdd70cb9c76dc3ec9ULL, 0x5ac7efa9d8045f45ULL, 0x112d564997c0baa7ULL,
    0x7dfd4a4beba20af6ULL, 0x04f2ed03c0625651ULL, 0xdefd16d1fd559ac0ULL, 0x22b48c4fdedcdf19ULL,
    0xe23af38beaab3792ULL, 0xed2e26d8af78dd68ULL, 0x810457dc3dfaa704ULL, 0xbc2e0f6b31d2c304ULL,
    0x4d2a99b62c91366cULL, 0x315fef38f5d0390fULL, 0x4c7636f03ecfd327ULL, 0xdcdc3c9dc7bdd52fULL,
    0x01b8b950d05029cbULL, 0x94ec6a8c181828ebULL, 0xc5e34c890db81957ULL, 0xf46521222dc68f07ULL,
    0xeaded9ecaeabc164ULL, 0x11a7067dfd09157dULL, 0xea3b7875dcc3996bULL, 0xd04a13aa6cca65a2ULL,
    0x100cd24fb54c90f8ULL, 0x124291ac7731e0e6ULL, 0x22fef16837c1c1edULL, 0x894380a9d162879fULL,
    0x54f2aa4faf2fb226ULL, 0xd9a3920b26cab5cdULL, 0xa320c08d2d12b37dULL, 0x32bec78d5e4b80e4ULL,
    0xdbe326973b7a00c8ULL, 0xc709e4ef53aea5e1ULL, 0x7e3321542fc6985dULL, 0x554664695a7d5630ULL,
    0x88526195c2edaa0eULL, 0x2e9ecdb0bbbb5a80ULL, 0x7677b702f8a22ffbULL, 0xe3f64d1a9c2cb732ULL,
    0x5c98b01f64a56d8cULL, 0x11c6c50b6481c3bcULL, 0x414dfc4866d54d44ULL, 0xb91d926503830033ULL,
    0xb65b66481d70a39fULL, 0x48ce89e59bd34fc1ULL, 0x827d2ae5ad7a6455ULL, 0xbfa87e48367b8cb7ULL,
    0xd1f782285e4a7688ULL, 0xddba98f7a2b50c33ULL, 0xbf8346468d6b0e0eULL, 0x1d6ea6022f323553ULL,
    0x0876d6b04dc95728ULL, 0x66f668ec01b52af4ULL, 0xd4bc52208609997bULL, 0x91a7fe9d89561488ULL,
    0xc1e3f42c2f6a52e7ULL, 0xf8fe05d1453d156fULL, 0xdc7359e97cdc61ffULL, 0x6a8e6c8dda77fc29ULL,
    0x5984dcc3ed78311aULL, 0x6efa089860b13242ULL, 0x287afb850192639bULL, 0x692a1443ef7c9099ULL,
    0xaac14bd52636b6fcULL, 0x38e548f154a4f0fcULL, 0xc3a5fa15741ef9c8ULL, 0x55e1f690a098abbdULL,
    0x9da2cc8db93d6ec6ULL, 0xfb8393eced05839bULL, 0xfedccb9c7cc58dfbULL, 0x9322d2922800fe46ULL,
    0x5c0611337e81a7aaULL, 0xdc1fa1ca8ebdfdbdULL, 0x27180bc69c7b2409ULL, 0x057f6e216169ef80ULL,
    0x2a1343b302fe7cc9ULL, 0x1e12317d70edc7a4ULL, 0xa5d093a5c1db66a3ULL, 0xe62a8bb5201d75ebULL,
    0x45dc76e54575cf30ULL, 0x2b893308532775ddULL, 0xc6dd7e7bfa1c2b00ULL, 0xf46456f4b3003c43ULL,
};

TEST(SpaceSavingFuzzTest, DecayFreeStreamsMatchSeedGoldens) {
  for (uint64_t seed = 1; seed <= 100; seed++) {
    EXPECT_EQ(SpaceSavingStreamDigest<SpaceSaving<uint64_t>>(seed, /*with_decay=*/false),
              kSeedStreamGoldens[seed - 1])
        << "seed " << seed;
  }
}

// The reference must also still match those goldens — it IS the seed code on
// decay-free streams, so a failure here means the reference drifted.
TEST(SpaceSavingFuzzTest, ReferenceMatchesSeedGoldens) {
  for (uint64_t seed = 1; seed <= 100; seed++) {
    EXPECT_EQ(SpaceSavingStreamDigest<SpaceSavingReference<uint64_t>>(seed, /*with_decay=*/false),
              kSeedStreamGoldens[seed - 1])
        << "seed " << seed;
  }
}

TEST(SpaceSavingFuzzTest, DecayInterleavingsMatchReference) {
  for (uint64_t seed = 1; seed <= 100; seed++) {
    EXPECT_EQ(SpaceSavingStreamDigest<SpaceSaving<uint64_t>>(seed, /*with_decay=*/true),
              SpaceSavingStreamDigest<SpaceSavingReference<uint64_t>>(seed, /*with_decay=*/true))
        << "seed " << seed;
  }
}

TEST(SpaceSavingFuzzTest, SortedEntriesRanksCountDescThenKeyAsc) {
  SpaceSaving<uint64_t> ss(8);
  ss.Observe(5, 3);
  ss.Observe(9, 3);
  ss.Observe(2, 7);
  ss.Observe(1, 1);
  const auto sorted = ss.SortedEntries();
  ASSERT_EQ(sorted.size(), 4u);
  EXPECT_EQ(sorted[0].key, 2u);
  EXPECT_EQ(sorted[1].key, 5u);  // count tie with 9 -> smaller key first
  EXPECT_EQ(sorted[2].key, 9u);
  EXPECT_EQ(sorted[3].key, 1u);
  for (size_t i = 1; i < sorted.size(); i++) {
    EXPECT_GE(sorted[i - 1].count, sorted[i].count);
  }
}

}  // namespace
}  // namespace actop
