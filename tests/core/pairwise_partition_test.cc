#include "src/core/pairwise_partition.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace actop {
namespace {

// Builds a view for server 0 holding vertices {1, 2}, with vertex 3 on
// server 1 and vertex 4 on server 2.
LocalGraphView SmallView() {
  LocalGraphView view;
  view.self = 0;
  view.num_local_vertices = 2;
  view.adjacency[1] = {{2, 1.0}, {3, 5.0}};
  view.adjacency[2] = {{1, 1.0}, {4, 2.0}};
  view.location = {{3, 1}, {4, 2}};
  return view;
}

TEST(TransferScoreTest, RemoteMinusLocal) {
  const LocalGraphView view = SmallView();
  // Vertex 1 -> server 1: gains edge to 3 (5.0), loses edge to 2 (1.0).
  EXPECT_DOUBLE_EQ(TransferScore(view, 1, 1), 4.0);
  // Vertex 1 -> server 2: no edges there, loses edge to 2.
  EXPECT_DOUBLE_EQ(TransferScore(view, 1, 2), -1.0);
  // Vertex 2 -> server 2: gains 2.0, loses 1.0.
  EXPECT_DOUBLE_EQ(TransferScore(view, 2, 2), 1.0);
}

TEST(TransferScoreTest, UnknownVertexScoresZero) {
  const LocalGraphView view = SmallView();
  EXPECT_DOUBLE_EQ(TransferScore(view, 999, 1), 0.0);
}

TEST(BuildPeerPlansTest, RanksPeersByTotalScore) {
  const LocalGraphView view = SmallView();
  const auto plans = BuildPeerPlans(view, PairwiseConfig{});
  ASSERT_EQ(plans.size(), 2u);
  EXPECT_EQ(plans[0].peer, 1);  // score 4.0 beats 1.0
  EXPECT_DOUBLE_EQ(plans[0].total_score, 4.0);
  ASSERT_EQ(plans[0].candidates.size(), 1u);
  EXPECT_EQ(plans[0].candidates[0].vertex, 1u);
  EXPECT_EQ(plans[1].peer, 2);
  EXPECT_EQ(plans[1].candidates[0].vertex, 2u);
}

TEST(BuildPeerPlansTest, NegativeScoresExcluded) {
  LocalGraphView view;
  view.self = 0;
  view.num_local_vertices = 2;
  // Vertex 1 is mostly local: moving it anywhere is a loss.
  view.adjacency[1] = {{2, 10.0}, {3, 1.0}};
  view.adjacency[2] = {{1, 10.0}};
  view.location = {{3, 1}};
  const auto plans = BuildPeerPlans(view, PairwiseConfig{});
  EXPECT_TRUE(plans.empty());
}

TEST(BuildPeerPlansTest, CandidateSetSizeLimitsOffer) {
  LocalGraphView view;
  view.self = 0;
  view.num_local_vertices = 10;
  for (VertexId v = 1; v <= 10; v++) {
    view.adjacency[v] = {{100 + v, static_cast<double>(v)}};
    view.location[100 + v] = 1;
  }
  PairwiseConfig config;
  config.candidate_set_size = 3;
  const auto plans = BuildPeerPlans(view, config);
  ASSERT_EQ(plans.size(), 1u);
  ASSERT_EQ(plans[0].candidates.size(), 3u);
  // The top 3 by score are vertices 10, 9, 8, highest first.
  EXPECT_EQ(plans[0].candidates[0].vertex, 10u);
  EXPECT_EQ(plans[0].candidates[1].vertex, 9u);
  EXPECT_EQ(plans[0].candidates[2].vertex, 8u);
}

TEST(BuildPeerPlansTest, CandidatesCarryLocationHints) {
  const LocalGraphView view = SmallView();
  const auto plans = BuildPeerPlans(view, PairwiseConfig{});
  const Candidate& c = plans[0].candidates[0];  // vertex 1
  ASSERT_TRUE(c.edges.contains(3));
  EXPECT_EQ(c.edges.at(3).location_hint, 1);
  ASSERT_TRUE(c.edges.contains(2));
  EXPECT_EQ(c.edges.at(2).location_hint, 0);  // local co-resident
}

// --- DecideExchange ---

// q = server 1 holds {3, 5}; p = server 0 offers vertex 1 (heavy edge to 3).
// q's vertices are anchored to each other so q makes no counter-offer.
TEST(DecideExchangeTest, AcceptsProfitableCandidate) {
  LocalGraphView q_view;
  q_view.self = 1;
  q_view.num_local_vertices = 2;
  q_view.adjacency[3] = {{1, 5.0}, {5, 9.0}};
  q_view.adjacency[5] = {{3, 9.0}};
  q_view.location = {{1, 0}};

  ExchangeRequest request;
  request.from = 0;
  request.from_num_vertices = 2;
  Candidate c;
  c.vertex = 1;
  c.score = 4.0;
  c.edges = {{2, {1.0, 0}}, {3, {5.0, 1}}};
  request.candidates = {c};

  PairwiseConfig config;
  config.balance_delta = 10;
  const auto decision = DecideExchange(q_view, request, config);
  EXPECT_FALSE(decision.rejected);
  ASSERT_EQ(decision.accepted.size(), 1u);
  EXPECT_EQ(decision.accepted[0], 1u);
}

TEST(DecideExchangeTest, RejectsUnprofitableCandidate) {
  // q has no edges to the offered vertex; p's hint claims the candidate's
  // weight is mostly toward p itself -> negative score at q.
  LocalGraphView q_view;
  q_view.self = 1;
  q_view.num_local_vertices = 5;

  ExchangeRequest request;
  request.from = 0;
  request.from_num_vertices = 5;
  Candidate c;
  c.vertex = 1;
  c.score = 3.0;  // p's stale opinion
  c.edges = {{2, {4.0, 0}}};  // all weight stays at p
  request.candidates = {c};

  const auto decision = DecideExchange(q_view, request, PairwiseConfig{});
  EXPECT_TRUE(decision.accepted.empty());
  EXPECT_TRUE(decision.counter_offer.empty());
}

TEST(DecideExchangeTest, LocalKnowledgeOverridesStaleHint) {
  // p thinks vertex 9 lives on server 2 (hint), but q knows 9 is local to q.
  // The candidate is profitable only with q's fresher knowledge.
  LocalGraphView q_view;
  q_view.self = 1;
  q_view.num_local_vertices = 3;
  q_view.adjacency[9] = {{1, 6.0}};
  q_view.location = {{1, 0}};

  ExchangeRequest request;
  request.from = 0;
  request.from_num_vertices = 3;
  Candidate c;
  c.vertex = 1;
  c.edges = {{9, {6.0, /*stale hint=*/2}}};
  request.candidates = {c};

  const auto decision = DecideExchange(q_view, request, PairwiseConfig{});
  ASSERT_EQ(decision.accepted.size(), 1u);
  EXPECT_EQ(decision.accepted[0], 1u);
}

TEST(DecideExchangeTest, CounterOfferIncludesOwnCandidates) {
  // q holds vertex 3 whose weight points at p: q should send it back.
  LocalGraphView q_view;
  q_view.self = 1;
  q_view.num_local_vertices = 2;
  q_view.adjacency[3] = {{7, 4.0}};
  q_view.adjacency[4] = {{3, 0.5}};  // keep 4 at q
  q_view.location = {{7, 0}};

  ExchangeRequest request;
  request.from = 0;
  request.from_num_vertices = 2;

  const auto decision = DecideExchange(q_view, request, PairwiseConfig{});
  ASSERT_EQ(decision.counter_offer.size(), 1u);
  EXPECT_EQ(decision.counter_offer[0].vertex, 3u);
}

TEST(DecideExchangeTest, BalanceConstraintBlocksOneSidedFlow) {
  // q is much smaller than p; accepting candidates from p re-balances, but
  // it must stop before |sizes| diverge past delta in the other direction.
  LocalGraphView q_view;
  q_view.self = 1;
  q_view.num_local_vertices = 10;

  ExchangeRequest request;
  request.from = 0;
  request.from_num_vertices = 10;
  for (VertexId v = 1; v <= 6; v++) {
    Candidate c;
    c.vertex = v;
    c.edges = {{100 + v, {5.0, /*hint: already at q=*/1}}};
    request.candidates.push_back(c);
  }
  PairwiseConfig config;
  config.balance_delta = 4;
  const auto decision = DecideExchange(q_view, request, config);
  // Every accepted move widens the gap by 2; delta 4 allows 2 moves.
  EXPECT_EQ(decision.accepted.size(), 2u);
}

TEST(DecideExchangeTest, PairedMovesStayBalanced) {
  // With delta 0, single moves are blocked, but an S-move paired with a
  // T-move keeps sizes equal — the greedy must alternate heaps.
  LocalGraphView q_view;
  q_view.self = 1;
  q_view.num_local_vertices = 4;
  q_view.adjacency[20] = {{30, 5.0}};  // q's vertex 20 wants to go to p
  q_view.location = {{30, 0}, {10, 0}};

  ExchangeRequest request;
  request.from = 0;
  request.from_num_vertices = 4;
  Candidate c;
  c.vertex = 10;
  c.edges = {{40, {5.0, 1}}};  // p's vertex 10 wants to come to q
  request.candidates = {c};

  PairwiseConfig config;
  config.balance_delta = 0;
  const auto decision = DecideExchange(q_view, request, config);
  EXPECT_EQ(decision.accepted.size(), 1u);
  EXPECT_EQ(decision.counter_offer.size(), 1u);
}

TEST(DecideExchangeTest, ScoreUpdatesPreventSplittingPairs) {
  // Vertices 1 and 2 are bound by a heavy mutual edge at p, each with a
  // modest pull toward q. Accepting one makes the other's score rise
  // (+2w); accepting both is right. Conversely if only vertex 1 had pull,
  // taking 1 must NOT leave 2 behind with its score ignored.
  LocalGraphView q_view;
  q_view.self = 1;
  q_view.num_local_vertices = 2;
  // 50 and 51 are bound to each other at q (score toward p: 4 − 6 < 0), so
  // they are not counter-offer candidates.
  q_view.adjacency[50] = {{1, 4.0}, {51, 6.0}};
  q_view.adjacency[51] = {{2, 4.0}, {50, 6.0}};
  q_view.location = {{1, 0}, {2, 0}};

  ExchangeRequest request;
  request.from = 0;
  request.from_num_vertices = 2;
  Candidate c1;
  c1.vertex = 1;
  c1.edges = {{2, {3.0, 0}}, {50, {4.0, 1}}};  // score at q: 4 − 3 = 1
  Candidate c2;
  c2.vertex = 2;
  c2.edges = {{1, {3.0, 0}}, {51, {4.0, 1}}};  // score at q: 4 − 3 = 1
  request.candidates = {c1, c2};

  PairwiseConfig config;
  config.balance_delta = 10;
  const auto decision = DecideExchange(q_view, request, config);
  // Both go: after the first move the second's score rises to 1 + 2·3 = 7.
  EXPECT_EQ(decision.accepted.size(), 2u);
}

TEST(DecideExchangeTest, ScoreUpdateStopsSecondMoveWhenPairSplitsAcross) {
  // p offers vertex 1 (wants q), q would counter-offer vertex 60 — but 60's
  // only value at p was its heavy edge to vertex 1. Once 1 moves to q,
  // sending 60 to p is a strict loss and must be suppressed.
  LocalGraphView q_view;
  q_view.self = 1;
  q_view.num_local_vertices = 3;
  q_view.adjacency[60] = {{1, 4.0}};  // toward p only because vertex 1 is there
  q_view.location = {{1, 0}};

  ExchangeRequest request;
  request.from = 0;
  request.from_num_vertices = 3;
  Candidate c;
  c.vertex = 1;
  c.edges = {{60, {4.0, 1}}, {61, {1.0, 0}}};  // score at q: 4 − 1 = 3
  request.candidates = {c};

  const auto decision = DecideExchange(q_view, request, PairwiseConfig{});
  // Vertex 1 (score 3) beats vertex 60 (score 4 − 0 = 4)? No: 60's initial
  // score is 4 and wins the first pick... after which vertex 1's score
  // drops to 3 − 2·4 = −5 and is not taken. Either single move is a valid
  // local improvement, but taking both would be a swap with zero gain.
  const size_t total_moves = decision.accepted.size() + decision.counter_offer.size();
  EXPECT_EQ(total_moves, 1u);
}

TEST(CutCostTest, CountsCrossingPairsOnce) {
  std::unordered_map<VertexId, VertexAdjacency> adj;
  adj[1] = {{2, 3.0}, {3, 1.0}};
  adj[2] = {{1, 3.0}};
  adj[3] = {{1, 1.0}};
  std::unordered_map<VertexId, ServerId> loc = {{1, 0}, {2, 0}, {3, 1}};
  EXPECT_DOUBLE_EQ(CutCost(adj, loc), 1.0);
  loc[2] = 1;
  EXPECT_DOUBLE_EQ(CutCost(adj, loc), 4.0);
}

TEST(CutCostTest, ZeroWhenAllColocated) {
  std::unordered_map<VertexId, VertexAdjacency> adj;
  adj[1] = {{2, 3.0}};
  adj[2] = {{1, 3.0}};
  std::unordered_map<VertexId, ServerId> loc = {{1, 2}, {2, 2}};
  EXPECT_DOUBLE_EQ(CutCost(adj, loc), 0.0);
}

}  // namespace
}  // namespace actop
