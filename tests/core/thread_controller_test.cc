#include "src/core/thread_controller.h"

#include <gtest/gtest.h>

#include "src/common/sim_time.h"
#include "src/seda/emulator.h"
#include "src/sim/simulation.h"

namespace actop {
namespace {

EmulatorConfig SkewedConfig() {
  // Receive-like stage is heavy, worker-like stage is light; the default
  // equal allocation is wrong on purpose.
  EmulatorConfig cfg;
  cfg.cores = 8;
  cfg.kappa = 0.05;
  cfg.arrival_rate = 8000.0;
  cfg.seed = 99;
  cfg.stages = {
      {.name = "recv", .mean_compute = Micros(300), .mean_blocking = 0, .initial_threads = 8},
      {.name = "work", .mean_compute = Micros(30), .mean_blocking = 0, .initial_threads = 8},
      {.name = "send", .mean_compute = Micros(250), .mean_blocking = 0, .initial_threads = 8},
  };
  return cfg;
}

TEST(ModelThreadControllerTest, ConvergesToSkewedAllocation) {
  Simulation sim;
  Emulator emu(&sim, SkewedConfig());
  ModelControllerConfig cc;
  cc.period = Seconds(1);
  cc.eta = 100e-6;
  cc.no_blocking = {true, true, true};
  ModelThreadController controller(&sim, &emu, cc);
  emu.Start();
  controller.Start();
  sim.RunUntil(Seconds(10));
  const auto threads = emu.CurrentThreads();
  // Heavy stages get more threads than the light one.
  EXPECT_GT(threads[0], threads[1]);
  EXPECT_GT(threads[2], threads[1]);
  // Stability: every stage's capacity must exceed its arrival rate.
  EXPECT_GE(threads[0] * (1e6 / 300.0), 8000.0);
}

TEST(ModelThreadControllerTest, FixesMisallocatedStages) {
  // Start from a bad static allocation (uniform 3/3/3: the heavy receive and
  // send stages sit at ρ ≈ 0.8 and queue); the controller must reallocate
  // and cut latency.
  auto run = [](bool optimized) {
    EmulatorConfig cfg = SkewedConfig();
    for (auto& st : cfg.stages) {
      st.initial_threads = 3;
    }
    Simulation sim;
    Emulator emu(&sim, cfg);
    ModelThreadController controller(
        &sim, &emu,
        ModelControllerConfig{.period = Seconds(1), .eta = 100e-6,
                              .no_blocking = {true, true, true}});
    emu.Start();
    if (optimized) {
      controller.Start();
    }
    sim.RunUntil(Seconds(8));
    // Measure the steady tail only.
    emu.mutable_latency()->Reset();
    sim.RunUntil(Seconds(16));
    return emu.latency().mean();
  };
  const double base = run(false);
  const double opt = run(true);
  EXPECT_LT(opt, base * 0.9);
}

TEST(ModelThreadControllerTest, DoesNothingWhileOverloaded) {
  EmulatorConfig cfg = SkewedConfig();
  cfg.arrival_rate = 100000.0;  // far beyond 8 cores of capacity
  Simulation sim;
  Emulator emu(&sim, cfg);
  ModelThreadController controller(
      &sim, &emu,
      ModelControllerConfig{.period = Seconds(1), .eta = 100e-6,
                            .no_blocking = {true, true, true}});
  const auto before = emu.CurrentThreads();
  emu.Start();
  controller.Start();
  sim.RunUntil(Seconds(5));
  EXPECT_EQ(emu.CurrentThreads(), before);
}

TEST(ModelThreadControllerTest, ObserverSeesAllocations) {
  Simulation sim;
  Emulator emu(&sim, SkewedConfig());
  ModelThreadController controller(
      &sim, &emu,
      ModelControllerConfig{.period = Seconds(1), .eta = 100e-6,
                            .no_blocking = {true, true, true}});
  int calls = 0;
  controller.set_observer([&](const std::vector<int>& alloc) {
    calls++;
    EXPECT_EQ(alloc.size(), 3u);
  });
  emu.Start();
  controller.Start();
  sim.RunUntil(Seconds(5));
  EXPECT_GT(calls, 0);
}

TEST(QueueLengthControllerTest, GrowsBottleneckShrinksIdle) {
  EmulatorConfig cfg = SkewedConfig();
  cfg.stages[0].initial_threads = 2;  // recv is the bottleneck: 8000/s needs ~2.4+
  cfg.stages[1].initial_threads = 8;  // idle-ish stage will shrink
  Simulation sim;
  Emulator emu(&sim, cfg);
  QueueLengthThreadController controller(
      &sim, &emu,
      QueueLengthControllerConfig{.period = Seconds(1), .high_threshold = 100,
                                  .low_threshold = 10});
  int max_recv_threads = 0;
  int min_work_threads = 8;
  controller.set_observer([&](const std::vector<int>& alloc) {
    max_recv_threads = std::max(max_recv_threads, alloc[0]);
    min_work_threads = std::min(min_work_threads, alloc[1]);
  });
  emu.Start();
  controller.Start();
  sim.RunUntil(Seconds(20));
  // The controller reacts in the right directions at some point — but (as
  // the paper's Figure 7 shows) it does not converge, so we assert on the
  // trajectory, not the final state.
  EXPECT_GT(max_recv_threads, 2);
  EXPECT_LT(min_work_threads, 8);
}

TEST(QueueLengthControllerTest, OscillatesUnderTightCapacity) {
  // The paper's §5.1 observation: queue-length control keeps flipping thread
  // counts because queue length responds non-linearly. Detect by counting
  // direction changes of the bottleneck stage's allocation.
  EmulatorConfig cfg;
  cfg.cores = 4;
  cfg.kappa = 0.05;
  cfg.arrival_rate = 4000.0;
  cfg.seed = 5;
  cfg.stages = {
      {.name = "s0", .mean_compute = Micros(400), .mean_blocking = 0, .initial_threads = 1},
      {.name = "s1", .mean_compute = Micros(400), .mean_blocking = 0, .initial_threads = 1},
  };
  Simulation sim;
  Emulator emu(&sim, cfg);
  QueueLengthThreadController controller(
      &sim, &emu,
      QueueLengthControllerConfig{.period = Seconds(2), .high_threshold = 100,
                                  .low_threshold = 10});
  std::vector<int> history;
  controller.set_observer([&](const std::vector<int>& alloc) { history.push_back(alloc[0]); });
  emu.Start();
  controller.Start();
  sim.RunUntil(Seconds(120));
  int direction_changes = 0;
  for (size_t i = 2; i < history.size(); i++) {
    const int d1 = history[i - 1] - history[i - 2];
    const int d2 = history[i] - history[i - 1];
    if (d1 != 0 && d2 != 0 && (d1 > 0) != (d2 > 0)) {
      direction_changes++;
    }
  }
  EXPECT_GT(direction_changes, 2);
}

TEST(QueueLengthControllerTest, RespectsMinimumOneThread) {
  EmulatorConfig cfg = SkewedConfig();
  cfg.arrival_rate = 1.0;  // nearly idle: controller wants to shrink everything
  Simulation sim;
  Emulator emu(&sim, cfg);
  QueueLengthThreadController controller(
      &sim, &emu, QueueLengthControllerConfig{.period = Seconds(1)});
  emu.Start();
  controller.Start();
  sim.RunUntil(Seconds(30));
  for (int t : emu.CurrentThreads()) {
    EXPECT_GE(t, 1);
  }
}

}  // namespace
}  // namespace actop
