// Byte-identity proof for the arena's pairwise data plane: the flat CSR
// implementation must make exactly the decisions the retained map-based
// PartitionTestbed makes, round for round — same vertices moved, same
// destinations, same per-server sizes, same cut cost.
//
// All weights are dyadic (multiples of 1/8, exact in double) so the two
// implementations' different per-vertex summation orders cannot perturb a
// score; this is the same convention the baked exchange goldens rely on
// (see partition_golden_util.h). Config extensions (§4.2 sized actors,
// migration costs, candidate size budgets) are fuzzed too so every branch
// of the shared planning/selection logic is covered differentially.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/rng.h"
#include "src/core/csr_graph.h"
#include "src/core/partition_testbed.h"
#include "src/core/repartition_arena.h"
#include "tests/core/partition_golden_util.h"

namespace actop {
namespace {

WeightedGraph MakeDyadicRandomGraph(int vertices, int edges, Rng* rng) {
  WeightedGraph g;
  for (int v = 1; v <= vertices; v++) {
    g.AddVertex(static_cast<VertexId>(v));
  }
  for (int e = 0; e < edges; e++) {
    const auto a = static_cast<VertexId>(rng->NextInt(1, vertices));
    auto b = static_cast<VertexId>(rng->NextInt(1, vertices));
    while (b == a) {
      b = static_cast<VertexId>(rng->NextInt(1, vertices));
    }
    g.AddEdge(a, b, NextDyadic(rng, 0.125, 8.0));
  }
  return g;
}

struct FuzzInstance {
  WeightedGraph graph;
  int servers = 2;
  PairwiseConfig config;
  uint64_t placement_seed = 0;
  bool sized = false;
  std::unordered_map<VertexId, double> sizes;
};

FuzzInstance MakeInstance(uint64_t seed) {
  Rng rng(seed);
  FuzzInstance fi;
  const int shape = static_cast<int>(rng.NextBounded(3));
  if (shape == 0) {
    fi.graph = MakeClusteredGraph(static_cast<int>(rng.NextInt(6, 20)),
                                  static_cast<int>(rng.NextInt(4, 8)),
                                  NextDyadic(&rng, 1.0, 4.0),
                                  static_cast<int>(rng.NextInt(20, 120)),
                                  NextDyadic(&rng, 0.125, 1.0), &rng);
  } else if (shape == 1) {
    fi.graph = MakeDyadicRandomGraph(static_cast<int>(rng.NextInt(40, 200)),
                                     static_cast<int>(rng.NextInt(80, 600)), &rng);
  } else {
    fi.graph = MakeChurnedClusteredGraph(static_cast<int>(rng.NextInt(6, 16)),
                                         static_cast<int>(rng.NextInt(4, 8)),
                                         NextDyadic(&rng, 1.0, 4.0),
                                         0.25, &rng);
  }
  fi.servers = static_cast<int>(rng.NextInt(2, 8));
  fi.config.candidate_set_size = static_cast<size_t>(rng.NextInt(2, 32));
  fi.config.balance_delta = rng.NextInt(2, 24);
  if (rng.NextBool(0.3)) {
    fi.config.migration_cost_weight = NextDyadic(&rng, 0.0, 0.5);
  }
  if (rng.NextBool(0.3)) {
    fi.config.max_candidate_total_size = NextDyadic(&rng, 2.0, 24.0);
  }
  fi.placement_seed = rng.NextU64();
  fi.sized = rng.NextBool(0.3);
  if (fi.sized) {
    for (VertexId v : fi.graph.Vertices()) {
      fi.sizes[v] = NextDyadic(&rng, 0.5, 3.0);
    }
  }
  return fi;
}

void ExpectSameState(const PartitionTestbed& testbed, const RepartitionArena& arena,
                     const std::vector<VertexId>& vertices, uint64_t seed, int sweep) {
  for (VertexId v : vertices) {
    ASSERT_EQ(testbed.LocationOf(v), arena.LocationOf(v))
        << "seed " << seed << " sweep " << sweep << " vertex " << v;
  }
  ASSERT_EQ(testbed.ServerSizes(), arena.ServerSizes()) << "seed " << seed;
  ASSERT_EQ(testbed.total_migrations(), arena.total_migrations()) << "seed " << seed;
  // Dyadic weights: exact equality between the testbed's O(E) recompute and
  // the arena's incrementally maintained cut.
  ASSERT_EQ(testbed.Cost(), arena.cost()) << "seed " << seed << " sweep " << sweep;
}

TEST(ArenaDifferentialTest, PairwiseRoundsAreByteIdenticalToTestbed) {
  for (uint64_t seed = 1; seed <= 30; seed++) {
    const FuzzInstance fi = MakeInstance(seed);
    const CsrGraph csr = CsrGraph::FromWeighted(fi.graph);
    PartitionTestbed testbed(&fi.graph, fi.servers, fi.config, fi.placement_seed);
    RepartitionArena arena(&csr, fi.servers, fi.config, fi.placement_seed);
    if (fi.sized) {
      testbed.SetVertexSizes(fi.sizes);
      arena.SetVertexSizes(fi.sizes);
    }
    const std::vector<VertexId> vertices = fi.graph.Vertices();
    ExpectSameState(testbed, arena, vertices, seed, 0);
    bool converged = false;
    for (int sweep = 1; sweep <= 8 && !converged; sweep++) {
      int tb_moved = 0;
      for (ServerId p = 0; p < fi.servers; p++) {
        const int tb = testbed.RunRound(p);
        const int ar = arena.RunPairwiseRound(p);
        ASSERT_EQ(tb, ar) << "seed " << seed << " sweep " << sweep << " server " << p;
        tb_moved += tb;
      }
      ExpectSameState(testbed, arena, vertices, seed, sweep);
      converged = tb_moved == 0;
    }
  }
}

TEST(ArenaDifferentialTest, ConvergenceIsByteIdenticalToTestbed) {
  for (uint64_t seed = 100; seed <= 112; seed++) {
    const FuzzInstance fi = MakeInstance(seed);
    const CsrGraph csr = CsrGraph::FromWeighted(fi.graph);
    PartitionTestbed testbed(&fi.graph, fi.servers, fi.config, fi.placement_seed);
    RepartitionArena arena(&csr, fi.servers, fi.config, fi.placement_seed);
    if (fi.sized) {
      testbed.SetVertexSizes(fi.sizes);
      arena.SetVertexSizes(fi.sizes);
    }
    const int tb_sweeps = testbed.RunToConvergence(50);
    const int ar_sweeps = arena.RunToConvergence(50);
    ASSERT_EQ(tb_sweeps, ar_sweeps) << "seed " << seed;
    ExpectSameState(testbed, arena, fi.graph.Vertices(), seed, tb_sweeps);
    EXPECT_EQ(testbed.IsLocallyOptimal(), arena.IsLocallyOptimal()) << "seed " << seed;
  }
}

// The unilateral ablation shares the planning path but not the joint
// selection; mirror it too so the snapshot/apply mechanics stay in lockstep.
TEST(ArenaDifferentialTest, UnilateralSweepMatchesTestbed) {
  for (uint64_t seed = 200; seed <= 212; seed++) {
    const FuzzInstance fi = MakeInstance(seed);
    const CsrGraph csr = CsrGraph::FromWeighted(fi.graph);
    PartitionTestbed testbed(&fi.graph, fi.servers, fi.config, fi.placement_seed);
    RepartitionArena arena(&csr, fi.servers, fi.config, fi.placement_seed);
    if (fi.sized) {
      testbed.SetVertexSizes(fi.sizes);
      arena.SetVertexSizes(fi.sizes);
    }
    for (int sweep = 1; sweep <= 4; sweep++) {
      const int tb = testbed.RunUnilateralSweep();
      const auto ar = static_cast<int>(arena.RunGreedyUnilateralSweep());
      ASSERT_EQ(tb, ar) << "seed " << seed << " sweep " << sweep;
      ExpectSameState(testbed, arena, fi.graph.Vertices(), seed, sweep);
    }
  }
}

}  // namespace
}  // namespace actop
