#include "src/core/param_estimator.h"

#include <gtest/gtest.h>

#include "src/common/sim_time.h"

namespace actop {
namespace {

StageWindow MakeWindow(uint64_t events, double mean_z_us, double mean_x_us) {
  StageWindow w;
  w.arrivals = events;
  w.completions = events;
  w.sum_wallclock = mean_z_us * 1e3 * static_cast<double>(events);
  w.sum_compute = mean_x_us * 1e3 * static_cast<double>(events);
  return w;
}

TEST(ParamEstimatorTest, NotReadyBeforeData) {
  ParamEstimator est(EstimatorConfig{.no_blocking = {true, false}});
  EXPECT_FALSE(est.ready());
}

TEST(ParamEstimatorTest, LambdaFromArrivalCounts) {
  ParamEstimator est(EstimatorConfig{.no_blocking = {true}});
  est.AddWindow({MakeWindow(500, 100.0, 100.0)}, Seconds(1));
  ASSERT_TRUE(est.ready());
  const auto params = est.Estimate();
  EXPECT_NEAR(params[0].lambda, 500.0, 1e-6);
}

TEST(ParamEstimatorTest, NoContentionNoBlockingGivesBetaOne) {
  // z == x: no ready time, no blocking -> s = 1/x, beta = 1.
  ParamEstimator est(EstimatorConfig{.no_blocking = {true}});
  est.AddWindow({MakeWindow(1000, 100.0, 100.0)}, Seconds(1));
  const auto params = est.Estimate();
  EXPECT_NEAR(est.alpha(), 0.0, 1e-9);
  EXPECT_NEAR(params[0].s, 1e9 / static_cast<double>(Micros(100)), 1.0);
  EXPECT_NEAR(params[0].beta, 1.0, 1e-9);
}

TEST(ParamEstimatorTest, AlphaFromNoBlockingStages) {
  // No-blocking stage: z = 150 µs for x = 100 µs -> α = 0.5.
  ParamEstimator est(EstimatorConfig{.no_blocking = {true, false}});
  est.AddWindow({MakeWindow(1000, 150.0, 100.0), MakeWindow(1000, 400.0, 100.0)}, Seconds(1));
  EXPECT_NEAR(est.alpha(), 0.5, 1e-9);
}

TEST(ParamEstimatorTest, BlockingStageInference) {
  // Following Figure 9: blocking stage has z = x + w + r with r = α·x.
  // α = 0.5 (from the no-blocking stage), x = 100 µs, w = 250 µs
  // -> z = 100 + 250 + 50 = 400 µs; s = 1/(z−r) = 1/350 µs; β = 100/350.
  ParamEstimator est(EstimatorConfig{.no_blocking = {true, false}});
  est.AddWindow({MakeWindow(1000, 150.0, 100.0), MakeWindow(1000, 400.0, 100.0)}, Seconds(1));
  const auto params = est.Estimate();
  EXPECT_NEAR(params[1].s, 1e9 / static_cast<double>(Micros(350)), 10.0);
  EXPECT_NEAR(params[1].beta, 100.0 / 350.0, 1e-6);
}

TEST(ParamEstimatorTest, RecoversTrueServiceRateExactly) {
  // End-to-end inversion check: construct measurements from known
  // (x, w, alpha) and verify s and beta are recovered.
  const double x0 = 80.0;
  const double x1 = 120.0;
  const double w1 = 300.0;
  const double alpha = 0.35;
  ParamEstimator est(EstimatorConfig{.no_blocking = {true, false}});
  est.AddWindow(
      {
          MakeWindow(1000, x0 * (1 + alpha), x0),
          MakeWindow(1000, x1 * (1 + alpha) + w1, x1),
      },
      Seconds(1));
  const auto params = est.Estimate();
  EXPECT_NEAR(params[1].s, 1e9 / static_cast<double>(MicrosF(x1 + w1)), 50.0);
  EXPECT_NEAR(params[1].beta, x1 / (x1 + w1), 1e-3);
}

TEST(ParamEstimatorTest, LowTrafficWindowLeavesEstimateUnchanged) {
  ParamEstimator est(EstimatorConfig{.no_blocking = {true}, .min_completions = 50});
  est.AddWindow({MakeWindow(1000, 200.0, 100.0)}, Seconds(1));
  const double s_before = est.Estimate()[0].s;
  // A tiny window with wild numbers must not move the service estimate.
  est.AddWindow({MakeWindow(3, 9999.0, 1.0)}, Seconds(1));
  EXPECT_NEAR(est.Estimate()[0].s, s_before, s_before * 1e-9);
}

TEST(ParamEstimatorTest, SmoothingBlendsWindows) {
  ParamEstimator est(EstimatorConfig{.no_blocking = {true}, .smoothing = 0.5});
  est.AddWindow({MakeWindow(1000, 100.0, 100.0)}, Seconds(1));
  est.AddWindow({MakeWindow(2000, 100.0, 100.0)}, Seconds(1));
  EXPECT_NEAR(est.Estimate()[0].lambda, 1500.0, 1e-6);
}

TEST(ParamEstimatorTest, IdleStageGetsZeroLambda) {
  ParamEstimator est(EstimatorConfig{.no_blocking = {true, true}});
  est.AddWindow({MakeWindow(1000, 120.0, 100.0), StageWindow{}}, Seconds(1));
  ASSERT_TRUE(est.ready());
  const auto params = est.Estimate();
  EXPECT_DOUBLE_EQ(params[1].lambda, 0.0);
}

TEST(ParamEstimatorTest, LowTrafficWindowStillUpdatesLambda) {
  // A window with plenty of arrivals but too few completions to trust its
  // z/x means (a burst landed right at the window edge) must still feed the
  // arrival-rate estimate: λ is measured from arrivals alone, and the
  // controller needs to see the burst even before anything finishes.
  ParamEstimator est(
      EstimatorConfig{.no_blocking = {true}, .smoothing = 0.5, .min_completions = 50});
  est.AddWindow({MakeWindow(1000, 200.0, 100.0)}, Seconds(1));
  const double s_before = est.Estimate()[0].s;

  StageWindow burst;
  burst.arrivals = 2000;
  burst.completions = 3;  // < min_completions: z/x means are garbage
  burst.sum_wallclock = 9999.0 * 1e3 * 3;
  burst.sum_compute = 1.0 * 1e3 * 3;
  est.AddWindow({burst}, Seconds(1));

  // λ blends 1000 and 2000 with smoothing 0.5; the service estimate holds.
  EXPECT_NEAR(est.Estimate()[0].lambda, 1500.0, 1e-6);
  EXPECT_NEAR(est.Estimate()[0].s, s_before, s_before * 1e-9);
}

TEST(ParamEstimatorTest, AlphaGuardIgnoresNegativeContention) {
  // Bucketed timers can report z̄ slightly below x̄ on an uncontended stage.
  // The per-stage α contribution is clamped at zero, so the other stage's
  // genuine contention is averaged against 0 rather than a negative value.
  ParamEstimator est(EstimatorConfig{.no_blocking = {true, true}});
  est.AddWindow({MakeWindow(1000, 90.0, 100.0), MakeWindow(1000, 150.0, 100.0)}, Seconds(1));
  EXPECT_NEAR(est.alpha(), 0.25, 1e-9);  // (max(0, -0.1) + 0.5) / 2
}

TEST(ParamEstimatorTest, WallclockBelowComputeClampsToComputeRate) {
  // Same measurement skew on a lone stage: α = 0 and z̄ < x̄, so the
  // effective service time z̄ − r would undercut the measured compute time;
  // s clamps to 1/x̄ with β = 1.
  ParamEstimator est(EstimatorConfig{.no_blocking = {true}});
  est.AddWindow({MakeWindow(1000, 90.0, 100.0)}, Seconds(1));
  EXPECT_NEAR(est.alpha(), 0.0, 1e-12);
  const auto params = est.Estimate();
  EXPECT_NEAR(params[0].s, 1e9 / static_cast<double>(Micros(100)), 10.0);
  EXPECT_NEAR(params[0].beta, 1.0, 1e-9);
}

TEST(ParamEstimatorTest, ServiceTimeNeverBelowCompute) {
  // If α over-estimates ready time (z−r < x), s must be clamped to 1/x.
  ParamEstimator est(EstimatorConfig{.no_blocking = {true, false}});
  // No-blocking stage with huge contention -> α = 2.0.
  // Blocking stage with almost no contention: z = 110, x = 100; r = 200 > z.
  est.AddWindow({MakeWindow(1000, 300.0, 100.0), MakeWindow(1000, 110.0, 100.0)}, Seconds(1));
  const auto params = est.Estimate();
  EXPECT_NEAR(params[1].s, 1e9 / static_cast<double>(Micros(100)), 10.0);
  EXPECT_LE(params[1].beta, 1.0);
}

}  // namespace
}  // namespace actop
