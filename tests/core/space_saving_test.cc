#include "src/core/space_saving.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/common/rng.h"

namespace actop {
namespace {

TEST(SpaceSavingTest, ExactWhenUnderCapacity) {
  SpaceSaving<int> ss(10);
  for (int i = 0; i < 5; i++) {
    for (int rep = 0; rep <= i; rep++) {
      ss.Observe(i);
    }
  }
  EXPECT_EQ(ss.size(), 5u);
  for (int i = 0; i < 5; i++) {
    EXPECT_EQ(ss.EstimateCount(i), static_cast<uint64_t>(i + 1));
  }
  for (const auto& e : ss.Entries()) {
    EXPECT_EQ(e.error, 0u);
  }
}

TEST(SpaceSavingTest, CapacityNeverExceeded) {
  SpaceSaving<int> ss(4);
  for (int i = 0; i < 100; i++) {
    ss.Observe(i);
  }
  EXPECT_EQ(ss.size(), 4u);
}

TEST(SpaceSavingTest, HeavyHitterAlwaysTracked) {
  // Classic guarantee: any key with count > N/m is in the summary.
  SpaceSaving<int> ss(10);
  Rng rng(1);
  int heavy_count = 0;
  for (int i = 0; i < 10000; i++) {
    if (rng.NextBool(0.3)) {
      ss.Observe(999);
      heavy_count++;
    } else {
      ss.Observe(static_cast<int>(rng.NextBounded(500)));
    }
  }
  ASSERT_TRUE(ss.Contains(999));
  // Estimated count over-estimates but never under-estimates.
  EXPECT_GE(ss.EstimateCount(999), static_cast<uint64_t>(heavy_count));
}

TEST(SpaceSavingTest, OverestimationBoundedByError) {
  SpaceSaving<int> ss(8);
  std::map<int, uint64_t> truth;
  Rng rng(2);
  for (int i = 0; i < 5000; i++) {
    const int key = static_cast<int>(rng.NextBounded(64));
    truth[key]++;
    ss.Observe(key);
  }
  for (const auto& e : ss.Entries()) {
    const uint64_t true_count = truth[e.key];
    EXPECT_GE(e.count, true_count);
    EXPECT_LE(e.count - true_count, e.error);
    EXPECT_LE(e.error, ss.total_observed() / ss.capacity());
  }
}

TEST(SpaceSavingTest, WeightedIncrements) {
  SpaceSaving<int> ss(4);
  ss.Observe(1, 100);
  ss.Observe(2, 5);
  EXPECT_EQ(ss.EstimateCount(1), 100u);
  EXPECT_EQ(ss.EstimateCount(2), 5u);
  EXPECT_EQ(ss.total_observed(), 105u);
}

TEST(SpaceSavingTest, EvictionReplacesMinimum) {
  SpaceSaving<int> ss(2);
  ss.Observe(1, 10);
  ss.Observe(2, 1);
  ss.Observe(3, 1);  // evicts key 2 (count 1); key 3 gets count 2, error 1
  EXPECT_TRUE(ss.Contains(1));
  EXPECT_FALSE(ss.Contains(2));
  EXPECT_TRUE(ss.Contains(3));
  EXPECT_EQ(ss.EstimateCount(3), 2u);
}

TEST(SpaceSavingTest, DecayHalvesCounts) {
  SpaceSaving<int> ss(4);
  ss.Observe(1, 10);
  ss.Observe(2, 1);
  ss.Decay();
  EXPECT_EQ(ss.EstimateCount(1), 5u);
  // Count 1 halves to 0 and the key is dropped.
  EXPECT_FALSE(ss.Contains(2));
  EXPECT_EQ(ss.total_observed(), 5u);
}

TEST(SpaceSavingTest, DecayAllowsGraphChurn) {
  // After decay, previously heavy but now-cold edges lose to new traffic.
  SpaceSaving<int> ss(4);
  for (int i = 0; i < 100; i++) {
    ss.Observe(1);
    ss.Observe(2);
    ss.Observe(3);
    ss.Observe(4);
  }
  for (int round = 0; round < 12; round++) {
    ss.Decay();
    for (int i = 0; i < 50; i++) {
      ss.Observe(10);
      ss.Observe(11);
    }
  }
  EXPECT_TRUE(ss.Contains(10));
  EXPECT_TRUE(ss.Contains(11));
  EXPECT_GT(ss.EstimateCount(10), ss.EstimateCount(1));
}

TEST(SpaceSavingTest, ClearEmptiesSummary) {
  SpaceSaving<int> ss(4);
  ss.Observe(1);
  ss.Clear();
  EXPECT_EQ(ss.size(), 0u);
  EXPECT_EQ(ss.total_observed(), 0u);
}

TEST(SpaceSavingTest, PairKeyUsage) {
  // The edge monitor uses (vertex, vertex) keys; validate with a custom hash.
  struct PairHash {
    size_t operator()(const std::pair<uint64_t, uint64_t>& p) const {
      return SplitMix64(p.first ^ SplitMix64(p.second));
    }
  };
  SpaceSaving<std::pair<uint64_t, uint64_t>, PairHash> ss(8);
  ss.Observe({1, 2}, 3);
  ss.Observe({2, 1}, 4);
  EXPECT_EQ(ss.EstimateCount({1, 2}), 3u);
  EXPECT_EQ(ss.EstimateCount({2, 1}), 4u);
}

// Property sweep over random streams: for a summary of capacity k after N
// total observations, every tracked key's estimate over-approximates its true
// count by at most N/k, never under-approximates it, and every *untracked*
// key's true count is at most N/k (so no heavy hitter is ever missing).
class SpaceSavingPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SpaceSavingPropertyTest, OverApproximationWithinTotalOverCapacity) {
  Rng rng(GetParam());
  const size_t capacity = 2 + rng.NextBounded(30);
  const int key_space = 8 + static_cast<int>(rng.NextBounded(200));
  const int stream_len = 500 + static_cast<int>(rng.NextBounded(4000));
  const bool weighted = rng.NextBool(0.5);

  SpaceSaving<int> ss(capacity);
  std::map<int, uint64_t> truth;
  for (int i = 0; i < stream_len; i++) {
    // Mildly skewed: squaring biases draws toward small keys, so streams mix
    // heavy hitters with a long light tail.
    const auto raw = rng.NextBounded(static_cast<uint64_t>(key_space));
    const int key = static_cast<int>(raw * raw / static_cast<uint64_t>(key_space));
    const uint64_t inc = weighted ? 1 + rng.NextBounded(8) : 1;
    truth[key] += inc;
    ss.Observe(key, inc);
  }

  const uint64_t n = ss.total_observed();
  const uint64_t bound = n / ss.capacity();
  for (const auto& e : ss.Entries()) {
    const uint64_t true_count = truth[e.key];
    EXPECT_GE(e.count, true_count) << "under-approximated key " << e.key;
    EXPECT_LE(e.count - true_count, bound)
        << "key " << e.key << " over-approximated by more than N/k = " << bound;
    EXPECT_LE(e.error, bound);
  }
  for (const auto& [key, true_count] : truth) {
    if (!ss.Contains(key)) {
      EXPECT_LE(true_count, bound) << "missing heavy hitter " << key;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomStreams, SpaceSavingPropertyTest,
                         ::testing::Range<uint64_t>(1, 33));

// Property: top-1 identification under skewed (Zipf-like) streams.
class SpaceSavingSkewTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SpaceSavingSkewTest, FindsDominantKey) {
  SpaceSaving<int> ss(GetParam());
  Rng rng(7);
  for (int i = 0; i < 20000; i++) {
    // Key k occurs with probability ~ 1/2^k (geometric): key 0 dominates.
    int key = 0;
    while (key < 12 && rng.NextBool(0.5)) {
      key++;
    }
    ss.Observe(key);
  }
  const auto sorted = ss.SortedEntries();  // count desc, key asc
  ASSERT_FALSE(sorted.empty());
  EXPECT_EQ(sorted.front().key, 0);
}

INSTANTIATE_TEST_SUITE_P(Capacities, SpaceSavingSkewTest, ::testing::Values(2, 4, 16, 64));

}  // namespace
}  // namespace actop
