#include "src/core/space_saving.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "src/common/rng.h"

namespace actop {
namespace {

TEST(SpaceSavingTest, ExactWhenUnderCapacity) {
  SpaceSaving<int> ss(10);
  for (int i = 0; i < 5; i++) {
    for (int rep = 0; rep <= i; rep++) {
      ss.Observe(i);
    }
  }
  EXPECT_EQ(ss.size(), 5u);
  for (int i = 0; i < 5; i++) {
    EXPECT_EQ(ss.EstimateCount(i), static_cast<uint64_t>(i + 1));
  }
  for (const auto& e : ss.Entries()) {
    EXPECT_EQ(e.error, 0u);
  }
}

TEST(SpaceSavingTest, CapacityNeverExceeded) {
  SpaceSaving<int> ss(4);
  for (int i = 0; i < 100; i++) {
    ss.Observe(i);
  }
  EXPECT_EQ(ss.size(), 4u);
}

TEST(SpaceSavingTest, HeavyHitterAlwaysTracked) {
  // Classic guarantee: any key with count > N/m is in the summary.
  SpaceSaving<int> ss(10);
  Rng rng(1);
  int heavy_count = 0;
  for (int i = 0; i < 10000; i++) {
    if (rng.NextBool(0.3)) {
      ss.Observe(999);
      heavy_count++;
    } else {
      ss.Observe(static_cast<int>(rng.NextBounded(500)));
    }
  }
  ASSERT_TRUE(ss.Contains(999));
  // Estimated count over-estimates but never under-estimates.
  EXPECT_GE(ss.EstimateCount(999), static_cast<uint64_t>(heavy_count));
}

TEST(SpaceSavingTest, OverestimationBoundedByError) {
  SpaceSaving<int> ss(8);
  std::map<int, uint64_t> truth;
  Rng rng(2);
  for (int i = 0; i < 5000; i++) {
    const int key = static_cast<int>(rng.NextBounded(64));
    truth[key]++;
    ss.Observe(key);
  }
  for (const auto& e : ss.Entries()) {
    const uint64_t true_count = truth[e.key];
    EXPECT_GE(e.count, true_count);
    EXPECT_LE(e.count - true_count, e.error);
    EXPECT_LE(e.error, ss.total_observed() / ss.capacity());
  }
}

TEST(SpaceSavingTest, WeightedIncrements) {
  SpaceSaving<int> ss(4);
  ss.Observe(1, 100);
  ss.Observe(2, 5);
  EXPECT_EQ(ss.EstimateCount(1), 100u);
  EXPECT_EQ(ss.EstimateCount(2), 5u);
  EXPECT_EQ(ss.total_observed(), 105u);
}

TEST(SpaceSavingTest, EvictionReplacesMinimum) {
  SpaceSaving<int> ss(2);
  ss.Observe(1, 10);
  ss.Observe(2, 1);
  ss.Observe(3, 1);  // evicts key 2 (count 1); key 3 gets count 2, error 1
  EXPECT_TRUE(ss.Contains(1));
  EXPECT_FALSE(ss.Contains(2));
  EXPECT_TRUE(ss.Contains(3));
  EXPECT_EQ(ss.EstimateCount(3), 2u);
}

TEST(SpaceSavingTest, DecayHalvesCounts) {
  SpaceSaving<int> ss(4);
  ss.Observe(1, 10);
  ss.Observe(2, 1);
  ss.Decay();
  EXPECT_EQ(ss.EstimateCount(1), 5u);
  // Count 1 halves to 0 and the key is dropped.
  EXPECT_FALSE(ss.Contains(2));
  EXPECT_EQ(ss.total_observed(), 5u);
}

TEST(SpaceSavingTest, DecayAllowsGraphChurn) {
  // After decay, previously heavy but now-cold edges lose to new traffic.
  SpaceSaving<int> ss(4);
  for (int i = 0; i < 100; i++) {
    ss.Observe(1);
    ss.Observe(2);
    ss.Observe(3);
    ss.Observe(4);
  }
  for (int round = 0; round < 12; round++) {
    ss.Decay();
    for (int i = 0; i < 50; i++) {
      ss.Observe(10);
      ss.Observe(11);
    }
  }
  EXPECT_TRUE(ss.Contains(10));
  EXPECT_TRUE(ss.Contains(11));
  EXPECT_GT(ss.EstimateCount(10), ss.EstimateCount(1));
}

TEST(SpaceSavingTest, ClearEmptiesSummary) {
  SpaceSaving<int> ss(4);
  ss.Observe(1);
  ss.Clear();
  EXPECT_EQ(ss.size(), 0u);
  EXPECT_EQ(ss.total_observed(), 0u);
}

TEST(SpaceSavingTest, PairKeyUsage) {
  // The edge monitor uses (vertex, vertex) keys; validate with a custom hash.
  struct PairHash {
    size_t operator()(const std::pair<uint64_t, uint64_t>& p) const {
      return SplitMix64(p.first ^ SplitMix64(p.second));
    }
  };
  SpaceSaving<std::pair<uint64_t, uint64_t>, PairHash> ss(8);
  ss.Observe({1, 2}, 3);
  ss.Observe({2, 1}, 4);
  EXPECT_EQ(ss.EstimateCount({1, 2}), 3u);
  EXPECT_EQ(ss.EstimateCount({2, 1}), 4u);
}

// Property: top-1 identification under skewed (Zipf-like) streams.
class SpaceSavingSkewTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SpaceSavingSkewTest, FindsDominantKey) {
  SpaceSaving<int> ss(GetParam());
  Rng rng(7);
  for (int i = 0; i < 20000; i++) {
    // Key k occurs with probability ~ 1/2^k (geometric): key 0 dominates.
    int key = 0;
    while (key < 12 && rng.NextBool(0.5)) {
      key++;
    }
    ss.Observe(key);
  }
  auto entries = ss.Entries();
  auto best = std::max_element(entries.begin(), entries.end(),
                               [](const auto& a, const auto& b) { return a.count < b.count; });
  ASSERT_NE(best, entries.end());
  EXPECT_EQ(best->key, 0);
}

INSTANTIATE_TEST_SUITE_P(Capacities, SpaceSavingSkewTest, ::testing::Values(2, 4, 16, 64));

}  // namespace
}  // namespace actop
