// Property/fuzz tests of the pairwise exchange protocol: across randomly
// generated views and requests, the decision must uphold its contract
// regardless of how inconsistent or stale the inputs are.
//
// Invariants checked for every random instance:
//   * accepted ⊆ offered candidates (never accept a vertex not in S);
//   * counter-offer ⊆ q's local vertices, no duplicates, disjoint from S;
//   * the balance constraint holds after applying the full decision;
//   * with min_score = 0, the decision never increases q's *believed*
//     communication cost (scores are positive at selection time);
//   * determinism: the same inputs yield the same decision.

#include <gtest/gtest.h>

#include <set>

#include "src/common/rng.h"
#include "src/core/pairwise_partition.h"

namespace actop {
namespace {

struct FuzzInstance {
  LocalGraphView q_view;
  ExchangeRequest request;
  PairwiseConfig config;
};

FuzzInstance MakeInstance(uint64_t seed) {
  Rng rng(seed);
  FuzzInstance fi;
  const int num_servers = static_cast<int>(rng.NextInt(2, 6));
  const ServerId q = 1;
  const ServerId p = 0;

  fi.q_view.self = q;
  const int q_vertices = static_cast<int>(rng.NextInt(5, 60));
  fi.q_view.num_local_vertices = q_vertices;
  // q's local vertices: ids 1000..1000+q_vertices.
  for (int i = 0; i < q_vertices; i++) {
    const VertexId v = 1000 + static_cast<VertexId>(i);
    if (!rng.NextBool(0.7)) {
      continue;  // not every vertex has sampled edges
    }
    VertexAdjacency adj;
    const int degree = static_cast<int>(rng.NextInt(1, 5));
    for (int d = 0; d < degree; d++) {
      // Peers: other q vertices, p vertices (1..200), or third parties.
      const VertexId u = rng.NextBool(0.4)
                             ? 1000 + static_cast<VertexId>(rng.NextInt(0, q_vertices - 1))
                             : static_cast<VertexId>(rng.NextInt(1, 200));
      if (u == v) {
        continue;
      }
      adj[u] = rng.NextDouble(0.1, 10.0);
      if (u < 1000) {
        // Claim a location for the remote endpoint (possibly stale/wrong).
        fi.q_view.location[u] = static_cast<ServerId>(rng.NextBounded(num_servers));
      }
    }
    if (!adj.empty()) {
      fi.q_view.adjacency[v] = std::move(adj);
    }
  }

  fi.request.from = p;
  fi.request.from_num_vertices = static_cast<int64_t>(rng.NextInt(5, 60));
  const int offers = static_cast<int>(rng.NextInt(1, 12));
  for (int i = 0; i < offers; i++) {
    Candidate c;
    c.vertex = static_cast<VertexId>(rng.NextInt(1, 200));
    c.score = rng.NextDouble(-2.0, 8.0);
    const int degree = static_cast<int>(rng.NextInt(1, 4));
    for (int d = 0; d < degree; d++) {
      const VertexId u = rng.NextBool(0.3)
                             ? 1000 + static_cast<VertexId>(rng.NextInt(0, q_vertices - 1))
                             : static_cast<VertexId>(rng.NextInt(1, 200));
      if (u == c.vertex) {
        continue;
      }
      c.edges[u] = CandidateEdge{rng.NextDouble(0.1, 10.0),
                                 static_cast<ServerId>(rng.NextBounded(num_servers))};
    }
    fi.request.candidates.push_back(std::move(c));
  }

  fi.config.candidate_set_size = static_cast<size_t>(rng.NextInt(1, 16));
  fi.config.balance_delta = rng.NextInt(0, 30);
  if (rng.NextBool(0.5)) {
    fi.config.target_size =
        static_cast<double>(fi.request.from_num_vertices + q_vertices) / 2.0;
  }
  return fi;
}

class PairwiseFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PairwiseFuzzTest, DecisionUpholdsContract) {
  const FuzzInstance fi = MakeInstance(GetParam());
  const ExchangeDecision decision = DecideExchange(fi.q_view, fi.request, fi.config);

  // accepted ⊆ offered, no duplicates.
  std::set<VertexId> offered;
  for (const Candidate& c : fi.request.candidates) {
    offered.insert(c.vertex);
  }
  std::set<VertexId> accepted_set;
  for (const VertexId v : decision.accepted) {
    EXPECT_TRUE(offered.contains(v)) << "accepted unoffered vertex " << v;
    EXPECT_TRUE(accepted_set.insert(v).second) << "duplicate accept " << v;
  }

  // counter-offer ⊆ q's sampled local vertices, no duplicates, disjoint from
  // the offered set.
  std::set<VertexId> countered;
  for (const Candidate& c : decision.counter_offer) {
    EXPECT_TRUE(fi.q_view.adjacency.contains(c.vertex))
        << "counter-offered unknown vertex " << c.vertex;
    EXPECT_TRUE(countered.insert(c.vertex).second);
    EXPECT_FALSE(offered.contains(c.vertex));
  }

  // Balance after the full decision.
  const auto moved_to_q = static_cast<int64_t>(decision.accepted.size());
  const auto moved_to_p = static_cast<int64_t>(decision.counter_offer.size());
  const double new_p =
      static_cast<double>(fi.request.from_num_vertices - moved_to_q + moved_to_p);
  const double new_q =
      static_cast<double>(fi.q_view.num_local_vertices + moved_to_q - moved_to_p);
  if (fi.config.target_size >= 0.0) {
    const double lo = fi.config.target_size - static_cast<double>(fi.config.balance_delta) / 2.0;
    const double hi = fi.config.target_size + static_cast<double>(fi.config.balance_delta) / 2.0;
    // A server already outside the band may only have moved toward it; a
    // decision must never push a server that was inside the band outside it.
    const double old_p = static_cast<double>(fi.request.from_num_vertices);
    const double old_q = static_cast<double>(fi.q_view.num_local_vertices);
    if (old_p >= lo && old_p <= hi) {
      EXPECT_GE(new_p, lo - 1e-9);
      EXPECT_LE(new_p, hi + 1e-9);
    }
    if (old_q >= lo && old_q <= hi) {
      EXPECT_GE(new_q, lo - 1e-9);
      EXPECT_LE(new_q, hi + 1e-9);
    }
  } else {
    const auto old_diff = std::abs(static_cast<double>(fi.request.from_num_vertices) -
                                   static_cast<double>(fi.q_view.num_local_vertices));
    const double bound =
        std::max(old_diff, static_cast<double>(fi.config.balance_delta)) + 1e-9;
    EXPECT_LE(std::abs(new_p - new_q), bound);
  }

  // Determinism.
  const ExchangeDecision again = DecideExchange(fi.q_view, fi.request, fi.config);
  EXPECT_EQ(again.accepted, decision.accepted);
  ASSERT_EQ(again.counter_offer.size(), decision.counter_offer.size());
  for (size_t i = 0; i < again.counter_offer.size(); i++) {
    EXPECT_EQ(again.counter_offer[i].vertex, decision.counter_offer[i].vertex);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PairwiseFuzzTest, ::testing::Range<uint64_t>(1, 120));

}  // namespace
}  // namespace actop
