// Shared stream scripts + digests for the sampling/placement golden tests.
//
// SpaceSavingStreamDigest is templated over the sketch type so the same
// scripted op stream can be driven through the rewritten Stream-Summary
// SpaceSaving, the retained seed reference (space_saving_reference.h), or —
// when the goldens were generated — the original seed implementation itself.
// The digest folds in the full observable state after *every* operation
// (size, total, and the sorted (key, count, error) entry set), so any
// divergence in an eviction victim, an error bound, or a decay/clear shows up
// in the final hash. Entries are sorted by key before hashing, so the digest
// is independent of the container's iteration order.

#ifndef TESTS_CORE_STREAM_GOLDEN_UTIL_H_
#define TESTS_CORE_STREAM_GOLDEN_UTIL_H_

#include <algorithm>
#include <cstdint>

#include "src/common/rng.h"
#include "src/core/streaming_partitioner.h"
#include "tests/core/partition_golden_util.h"

namespace actop {

// Scripted stream: mildly skewed observes (occasionally weighted) with rare
// Clear, and — when `with_decay` — interleaved Decay. Capacity and key space
// vary per seed so both the under-capacity and steady-state-eviction regimes
// are exercised.
//
// The two modes exist because the seed implementation's *post-Decay* bucket
// order (which breaks eviction-victim ties among equal-count keys) was an
// artifact of std::unordered_map iteration order. Decay-free streams are
// digest-compared against goldens from the true seed implementation;
// decay-heavy streams are compared against SpaceSavingReference, whose Decay
// rebuild order is canonicalized (see space_saving_reference.h).
template <typename Sketch>
uint64_t SpaceSavingStreamDigest(uint64_t seed, bool with_decay) {
  Rng rng(seed);
  const size_t capacity = 2 + rng.NextBounded(48);
  const uint64_t key_space = 4 + rng.NextBounded(400);
  const int ops = 1500 + static_cast<int>(rng.NextBounded(1500));
  Sketch ss(capacity);
  GoldenDigest d;
  for (int i = 0; i < ops; i++) {
    const uint64_t r = rng.NextU64();
    if (with_decay && r % 97 == 0) {
      ss.Decay();
    } else if (r % 331 == 1) {
      ss.Clear();
    } else {
      const uint64_t raw = rng.NextBounded(key_space);
      const uint64_t key = raw * raw / key_space;  // skew toward small keys
      const uint64_t inc = (r >> 8) % 4 == 0 ? 1 + rng.NextBounded(8) : 1;
      ss.Observe(key, inc);
    }
    d.U64(ss.size());
    d.U64(ss.total_observed());
    auto entries = ss.Entries();
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.key < b.key; });
    for (const auto& e : entries) {
      d.U64(e.key);
      d.U64(e.count);
      d.U64(e.error);
    }
  }
  return d.h;
}

// Feeds a random incremental graph through StreamingPartitioner and digests
// every placement decision in order. Covers all three heuristics, the
// capacity-fallback path (expected_vertices deliberately under-estimated on
// some seeds), and idempotent re-placement.
inline uint64_t StreamingPlacementDigest(StreamingHeuristic heuristic, uint64_t seed) {
  Rng rng(seed);
  const int servers = static_cast<int>(rng.NextInt(2, 10));
  const int n = 200 + static_cast<int>(rng.NextBounded(300));
  const bool underestimate = rng.NextBool(0.3);
  StreamingPartitionerConfig cfg;
  cfg.heuristic = heuristic;
  cfg.seed = seed ^ 0x5bd1e995;
  StreamingPartitioner sp(servers, underestimate ? n / 4 : n, 3 * n, cfg);
  GoldenDigest d;
  for (int v = 1; v <= n; v++) {
    VertexAdjacency adj;
    const int degree = static_cast<int>(rng.NextBounded(5));
    for (int e = 0; e < degree && v > 1; e++) {
      const auto u = static_cast<VertexId>(rng.NextInt(1, v - 1));
      adj[u] += NextDyadic(&rng, 0.125, 4.0);
    }
    d.I64(sp.Place(static_cast<VertexId>(v), adj));
    if (v % 7 == 0) {
      // Re-placing an existing vertex must return its prior assignment.
      d.I64(sp.Place(static_cast<VertexId>(rng.NextInt(1, v)), adj));
    }
  }
  d.I64(sp.MaxImbalance());
  return d.h;
}

}  // namespace actop

#endif  // TESTS_CORE_STREAM_GOLDEN_UTIL_H_
