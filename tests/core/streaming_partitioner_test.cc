#include "src/core/streaming_partitioner.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/partition_testbed.h"

namespace actop {
namespace {

// Streams a graph's vertices (in id order) through a partitioner and
// returns the resulting cut cost.
double StreamAndCut(const WeightedGraph& g, StreamingPartitioner* partitioner) {
  for (VertexId v : g.Vertices()) {
    partitioner->Place(v, g.NeighborsOf(v));
  }
  return CutCost(g.adjacency(), partitioner->assignment());
}

TEST(StreamingPartitionerTest, EveryVertexPlacedExactlyOnce) {
  Rng rng(1);
  WeightedGraph g = MakeRandomGraph(200, 600, 1.0, &rng);
  StreamingPartitioner sp(4, 200, 600, StreamingPartitionerConfig{});
  for (VertexId v : g.Vertices()) {
    const ServerId first = sp.Place(v, g.NeighborsOf(v));
    EXPECT_EQ(sp.Place(v, g.NeighborsOf(v)), first);  // idempotent
  }
  EXPECT_EQ(sp.assignment().size(), g.num_vertices());
  int64_t total = 0;
  for (ServerId s = 0; s < 4; s++) {
    total += sp.PartSize(s);
  }
  EXPECT_EQ(total, static_cast<int64_t>(g.num_vertices()));
}

TEST(StreamingPartitionerTest, CapacityBoundRespected) {
  Rng rng(2);
  WeightedGraph g = MakeClusteredGraph(40, 5, 1.0, 0, 1.0, &rng);  // 200 vertices
  StreamingPartitionerConfig cfg;
  cfg.capacity_slack = 1.1;
  StreamingPartitioner sp(4, 200, 400, cfg);
  StreamAndCut(g, &sp);
  for (ServerId s = 0; s < 4; s++) {
    EXPECT_LE(sp.PartSize(s), static_cast<int64_t>(1.1 * 200 / 4) + 1);
  }
}

TEST(StreamingPartitionerTest, LdgBeatsHashingOnClusteredGraphs) {
  Rng rng(3);
  WeightedGraph g = MakeClusteredGraph(60, 8, 1.0, 100, 0.2, &rng);

  StreamingPartitionerConfig hash_cfg;
  hash_cfg.heuristic = StreamingHeuristic::kHashing;
  StreamingPartitioner hashing(6, 480, 2000, hash_cfg);
  const double hash_cut = StreamAndCut(g, &hashing);

  StreamingPartitionerConfig ldg_cfg;
  ldg_cfg.heuristic = StreamingHeuristic::kLinearDeterministicGreedy;
  StreamingPartitioner ldg(6, 480, 2000, ldg_cfg);
  const double ldg_cut = StreamAndCut(g, &ldg);

  // Stanton & Kliot's headline: LDG cuts far fewer edges than hashing.
  EXPECT_LT(ldg_cut, hash_cut * 0.6);
}

TEST(StreamingPartitionerTest, FennelAlsoBeatsHashing) {
  Rng rng(4);
  WeightedGraph g = MakeClusteredGraph(60, 8, 1.0, 100, 0.2, &rng);

  StreamingPartitionerConfig hash_cfg;
  hash_cfg.heuristic = StreamingHeuristic::kHashing;
  StreamingPartitioner hashing(6, 480, 2000, hash_cfg);
  const double hash_cut = StreamAndCut(g, &hashing);

  StreamingPartitionerConfig fennel_cfg;
  fennel_cfg.heuristic = StreamingHeuristic::kFennel;
  StreamingPartitioner fennel(6, 480, 2000, fennel_cfg);
  const double fennel_cut = StreamAndCut(g, &fennel);

  EXPECT_LT(fennel_cut, hash_cut * 0.7);
  EXPECT_LE(fennel.MaxImbalance(), static_cast<int64_t>(0.2 * 480 / 6) + 80);
}

TEST(StreamingPartitionerTest, DynamicGraphIsWhereStreamingLoses) {
  // The paper's argument for continuous re-partitioning (§4.1/§7): a
  // streaming placement is fixed at arrival time, so when the communication
  // graph changes the one-shot placement decays toward random, while the
  // pairwise algorithm re-converges. Model one "re-matching" of a clustered
  // graph: same vertices, new cluster membership.
  Rng rng(5);
  const int clusters = 50;
  const int size = 8;
  WeightedGraph before = MakeClusteredGraph(clusters, size, 1.0, 0, 1.0, &rng);
  // After re-matching: vertex v joins cluster hash(v) — a permutation of
  // memberships with the same shape.
  WeightedGraph after;
  std::vector<std::vector<VertexId>> groups(clusters);
  for (VertexId v : before.Vertices()) {
    groups[SplitMix64(v * 7919) % clusters].push_back(v);
  }
  for (const auto& group : groups) {
    for (size_t i = 0; i < group.size(); i++) {
      for (size_t j = i + 1; j < group.size(); j++) {
        after.AddEdge(group[i], group[j], 1.0);
      }
    }
  }

  // Stream placement against the OLD graph.
  StreamingPartitioner ldg(5, clusters * size, 3000, StreamingPartitionerConfig{});
  StreamAndCut(before, &ldg);
  const double cut_after_change = CutCost(after.adjacency(), ldg.assignment());
  const double cut_before_change = CutCost(before.adjacency(), ldg.assignment());

  // The placement was good for the old graph and is poor for the new one.
  EXPECT_LT(cut_before_change, cut_after_change * 0.6);

  // The pairwise algorithm, started from the stale assignment, re-converges
  // on the new graph. (Emulates what the runtime's agents do continuously.)
  PairwiseConfig config;
  config.candidate_set_size = 32;
  config.balance_delta = 2 * size;
  PartitionTestbed bed(&after, 5, config, 6);
  bed.RunToConvergence(200);
  EXPECT_LT(bed.Cost(), cut_after_change * 0.5);
}

}  // namespace
}  // namespace actop
