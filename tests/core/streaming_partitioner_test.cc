#include "src/core/streaming_partitioner.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/partition_testbed.h"
#include "tests/core/stream_golden_util.h"

namespace actop {
namespace {

// Streams a graph's vertices (in id order) through a partitioner and
// returns the resulting cut cost.
double StreamAndCut(const WeightedGraph& g, StreamingPartitioner* partitioner) {
  for (VertexId v : g.Vertices()) {
    partitioner->Place(v, g.NeighborsOf(v));
  }
  return CutCost(g.adjacency(), partitioner->assignment());
}

TEST(StreamingPartitionerTest, EveryVertexPlacedExactlyOnce) {
  Rng rng(1);
  WeightedGraph g = MakeRandomGraph(200, 600, 1.0, &rng);
  StreamingPartitioner sp(4, 200, 600, StreamingPartitionerConfig{});
  for (VertexId v : g.Vertices()) {
    const ServerId first = sp.Place(v, g.NeighborsOf(v));
    EXPECT_EQ(sp.Place(v, g.NeighborsOf(v)), first);  // idempotent
  }
  EXPECT_EQ(sp.assignment().size(), g.num_vertices());
  int64_t total = 0;
  for (ServerId s = 0; s < 4; s++) {
    total += sp.PartSize(s);
  }
  EXPECT_EQ(total, static_cast<int64_t>(g.num_vertices()));
}

TEST(StreamingPartitionerTest, CapacityBoundRespected) {
  Rng rng(2);
  WeightedGraph g = MakeClusteredGraph(40, 5, 1.0, 0, 1.0, &rng);  // 200 vertices
  StreamingPartitionerConfig cfg;
  cfg.capacity_slack = 1.1;
  StreamingPartitioner sp(4, 200, 400, cfg);
  StreamAndCut(g, &sp);
  for (ServerId s = 0; s < 4; s++) {
    EXPECT_LE(sp.PartSize(s), static_cast<int64_t>(1.1 * 200 / 4) + 1);
  }
}

TEST(StreamingPartitionerTest, LdgBeatsHashingOnClusteredGraphs) {
  Rng rng(3);
  WeightedGraph g = MakeClusteredGraph(60, 8, 1.0, 100, 0.2, &rng);

  StreamingPartitionerConfig hash_cfg;
  hash_cfg.heuristic = StreamingHeuristic::kHashing;
  StreamingPartitioner hashing(6, 480, 2000, hash_cfg);
  const double hash_cut = StreamAndCut(g, &hashing);

  StreamingPartitionerConfig ldg_cfg;
  ldg_cfg.heuristic = StreamingHeuristic::kLinearDeterministicGreedy;
  StreamingPartitioner ldg(6, 480, 2000, ldg_cfg);
  const double ldg_cut = StreamAndCut(g, &ldg);

  // Stanton & Kliot's headline: LDG cuts far fewer edges than hashing.
  EXPECT_LT(ldg_cut, hash_cut * 0.6);
}

TEST(StreamingPartitionerTest, FennelAlsoBeatsHashing) {
  Rng rng(4);
  WeightedGraph g = MakeClusteredGraph(60, 8, 1.0, 100, 0.2, &rng);

  StreamingPartitionerConfig hash_cfg;
  hash_cfg.heuristic = StreamingHeuristic::kHashing;
  StreamingPartitioner hashing(6, 480, 2000, hash_cfg);
  const double hash_cut = StreamAndCut(g, &hashing);

  StreamingPartitionerConfig fennel_cfg;
  fennel_cfg.heuristic = StreamingHeuristic::kFennel;
  StreamingPartitioner fennel(6, 480, 2000, fennel_cfg);
  const double fennel_cut = StreamAndCut(g, &fennel);

  EXPECT_LT(fennel_cut, hash_cut * 0.7);
  EXPECT_LE(fennel.MaxImbalance(), static_cast<int64_t>(0.2 * 480 / 6) + 80);
}

// Pin every placement decision (all three heuristics, including the
// capacity-fallback path and idempotent re-placement) to golden digests
// generated from the seed implementation at commit d1a9574 — proof that
// hoisting Place()'s per-call neighbor_weight vector into a member scratch
// buffer changed no placement.
TEST(StreamingPartitionerTest, PlacementsMatchSeedGoldens) {
  constexpr uint64_t kLdgGoldens[24] = {
      0xc3f630857a97c882ULL, 0x7cb92451bd88ed66ULL, 0x848879937b697b83ULL, 0xa701447bbb513f02ULL,
      0x56ed50ea67b7c982ULL, 0xa7d7f2b8accefa08ULL, 0xe273f2b7403f3a0eULL, 0x27a6f4c612a23286ULL,
      0x974efe00ae83ec4bULL, 0x183fe4c6ec0c6663ULL, 0x4d96a1b47eed7ec0ULL, 0xb3a3bafb9edc844dULL,
      0x7af3d68d1d505aa6ULL, 0xe68d9e2f7bc34a28ULL, 0x8f95ed9dd885d408ULL, 0xf6743600e7673a05ULL,
      0xbba2bb7064762d6eULL, 0x97e4cd0715785406ULL, 0x3d4a67ca9c727ac5ULL, 0x9af5dc82668df783ULL,
      0x8abcf148c0b4028bULL, 0x1a784f744e3f65c4ULL, 0x6cf26fc5eeb0954fULL, 0x8920436182931eefULL,
  };
  constexpr uint64_t kFennelGoldens[24] = {
      0xecc41449825c6b46ULL, 0x2f31184e39761645ULL, 0x6bfaba6bf099dc24ULL, 0xc62362f8fe4e08c2ULL,
      0xaa603b987e7504eaULL, 0xccebd257a4b5474aULL, 0x00f20457536e5425ULL, 0xc7b4f942ce551ba8ULL,
      0x284abb1bb9d668e3ULL, 0x327a2263ff8e5362ULL, 0x4ded46b43e0b3bedULL, 0x557e173db53a3549ULL,
      0x29fbee1f2ba2c8a7ULL, 0x492d501070bb2ceaULL, 0x16e2cd082a187b08ULL, 0xf6743600e7673a05ULL,
      0x710069d2a5ee36e2ULL, 0x47428fbc865a7166ULL, 0x03c61ec26c73d7e0ULL, 0xe455b558fc0ca46bULL,
      0x71d0cb65e5c3676bULL, 0x340f3147948ecc87ULL, 0x2286e4340fee5340ULL, 0xed9c2c7e4cbc23e3ULL,
  };
  constexpr uint64_t kHashingGoldens[24] = {
      0x6d869c285181cd92ULL, 0xa5f1a148f71789cdULL, 0x9599125a7da5bbe7ULL, 0x24a8563701cb3b35ULL,
      0x2013ac199d609e34ULL, 0x611557b800895df5ULL, 0xdc5017d4e8deb2d1ULL, 0xf1da0fd645ee0e27ULL,
      0x168bba00e965729dULL, 0x4d7abe6d9b58e354ULL, 0x6684f7c9ff668319ULL, 0xb0f4fca8dd02bf76ULL,
      0x7fe57523a13318dbULL, 0x8f51d02799f7505aULL, 0x56c9126af41f5692ULL, 0xa6738440b02f62d8ULL,
      0x10dbb0fa2486d2b6ULL, 0x94f88da4f7cd2ee0ULL, 0x7e20add46f33412bULL, 0x38135781cdc7fc16ULL,
      0x8343fda4f7bbabdeULL, 0xaad23a47f39833b5ULL, 0xae6facba1888e1bdULL, 0xcd151b2ee9bfc813ULL,
  };
  for (uint64_t seed = 1; seed <= 24; seed++) {
    EXPECT_EQ(StreamingPlacementDigest(StreamingHeuristic::kLinearDeterministicGreedy, seed),
              kLdgGoldens[seed - 1])
        << "ldg seed " << seed;
    EXPECT_EQ(StreamingPlacementDigest(StreamingHeuristic::kFennel, seed),
              kFennelGoldens[seed - 1])
        << "fennel seed " << seed;
    EXPECT_EQ(StreamingPlacementDigest(StreamingHeuristic::kHashing, seed),
              kHashingGoldens[seed - 1])
        << "hashing seed " << seed;
  }
}

TEST(StreamingPartitionerTest, DynamicGraphIsWhereStreamingLoses) {
  // The paper's argument for continuous re-partitioning (§4.1/§7): a
  // streaming placement is fixed at arrival time, so when the communication
  // graph changes the one-shot placement decays toward random, while the
  // pairwise algorithm re-converges. Model one "re-matching" of a clustered
  // graph: same vertices, new cluster membership.
  Rng rng(5);
  const int clusters = 50;
  const int size = 8;
  WeightedGraph before = MakeClusteredGraph(clusters, size, 1.0, 0, 1.0, &rng);
  // After re-matching: vertex v joins cluster hash(v) — a permutation of
  // memberships with the same shape.
  WeightedGraph after;
  std::vector<std::vector<VertexId>> groups(clusters);
  for (VertexId v : before.Vertices()) {
    groups[SplitMix64(v * 7919) % clusters].push_back(v);
  }
  for (const auto& group : groups) {
    for (size_t i = 0; i < group.size(); i++) {
      for (size_t j = i + 1; j < group.size(); j++) {
        after.AddEdge(group[i], group[j], 1.0);
      }
    }
  }

  // Stream placement against the OLD graph.
  StreamingPartitioner ldg(5, clusters * size, 3000, StreamingPartitionerConfig{});
  StreamAndCut(before, &ldg);
  const double cut_after_change = CutCost(after.adjacency(), ldg.assignment());
  const double cut_before_change = CutCost(before.adjacency(), ldg.assignment());

  // The placement was good for the old graph and is poor for the new one.
  EXPECT_LT(cut_before_change, cut_after_change * 0.6);

  // The pairwise algorithm, started from the stale assignment, re-converges
  // on the new graph. (Emulates what the runtime's agents do continuously.)
  PairwiseConfig config;
  config.candidate_set_size = 32;
  config.balance_delta = 2 * size;
  PartitionTestbed bed(&after, 5, config, 6);
  bed.RunToConvergence(200);
  EXPECT_LT(bed.Cost(), cut_after_change * 0.5);
}

}  // namespace
}  // namespace actop
