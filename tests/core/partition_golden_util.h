// Shared instance generators + digests for the partitioning golden tests.
//
// The baked-in golden digests in exchange_golden_test.cc and
// streaming_partitioner_test.cc were produced by running these exact
// generators against the seed implementations (std::map-bucketed SpaceSaving,
// lazy-deletion GreedyHeap DecideExchange, allocating Place) at commit
// d1a9574, so the tests prove the rewritten hot paths make byte-identical
// decisions. Everything here is deliberately container-iteration-order
// independent: instances are built by insertion only, and digests sort before
// hashing. All weights/scores/sizes are dyadic rationals (multiples of 1/8),
// so floating-point sums are exact and reassociation cannot perturb a digest.

#ifndef TESTS_CORE_PARTITION_GOLDEN_UTIL_H_
#define TESTS_CORE_PARTITION_GOLDEN_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/core/pairwise_partition.h"

namespace actop {

// FNV-1a over 64-bit words; doubles hash by bit pattern (exact match only).
struct GoldenDigest {
  uint64_t h = 0xcbf29ce484222325ULL;

  void U64(uint64_t v) {
    for (int i = 0; i < 8; i++) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x100000001b3ULL;
    }
  }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double d) {
    uint64_t bits = 0;
    std::memcpy(&bits, &d, sizeof(bits));
    U64(bits);
  }
};

// A dyadic rational in [lo, hi] with 1/8 granularity: exactly representable,
// and sums of many of them are still exact doubles.
inline double NextDyadic(Rng* rng, double lo, double hi) {
  const auto steps = static_cast<uint64_t>((hi - lo) * 8.0);
  return lo + static_cast<double>(rng->NextBounded(steps + 1)) / 8.0;
}

// Candidate edges in vertex order, independent of the container's own
// iteration order (works for both the seed's unordered_map and the flat
// sorted representation).
inline std::vector<std::pair<VertexId, CandidateEdge>> GoldenSortedEdges(const Candidate& c) {
  std::vector<std::pair<VertexId, CandidateEdge>> out;
  for (const auto& [u, e] : c.edges) {
    out.emplace_back(u, e);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

struct GoldenExchangeInstance {
  LocalGraphView q_view;
  ExchangeRequest request;
  PairwiseConfig config;
};

// Randomized q-side view + p's offer, mirroring pairwise_fuzz_test.cc but with
// dyadic weights and optional sized-actor / migration-cost / size-budget
// configs so every §4.2 extension path is covered by the goldens.
inline GoldenExchangeInstance MakeGoldenExchangeInstance(uint64_t seed) {
  Rng rng(seed);
  GoldenExchangeInstance gi;
  const int num_servers = static_cast<int>(rng.NextInt(2, 8));
  const ServerId q = 1;
  const ServerId p = 0;
  const bool sized = rng.NextBool(0.3);

  gi.q_view.self = q;
  const int q_vertices = static_cast<int>(rng.NextInt(5, 60));
  gi.q_view.num_local_vertices = q_vertices;
  double q_total_size = 0.0;
  for (int i = 0; i < q_vertices; i++) {
    const VertexId v = 1000 + static_cast<VertexId>(i);
    double vsize = 1.0;
    if (sized) {
      vsize = NextDyadic(&rng, 0.5, 4.0);
      gi.q_view.vertex_size[v] = vsize;
    }
    q_total_size += vsize;
    if (!rng.NextBool(0.7)) {
      continue;  // not every vertex has sampled edges
    }
    VertexAdjacency adj;
    const int degree = static_cast<int>(rng.NextInt(1, 6));
    for (int d = 0; d < degree; d++) {
      const VertexId u = rng.NextBool(0.4)
                             ? 1000 + static_cast<VertexId>(rng.NextInt(0, q_vertices - 1))
                             : static_cast<VertexId>(rng.NextInt(1, 200));
      if (u == v) {
        continue;
      }
      adj[u] = NextDyadic(&rng, 0.125, 10.0);
      if (u < 1000) {
        gi.q_view.location[u] = static_cast<ServerId>(rng.NextBounded(num_servers));
      }
    }
    if (!adj.empty()) {
      gi.q_view.adjacency[v] = std::move(adj);
    }
  }
  if (sized) {
    gi.q_view.total_local_size = q_total_size;
  }

  gi.request.from = p;
  gi.request.from_num_vertices = static_cast<int64_t>(rng.NextInt(5, 60));
  if (sized) {
    gi.request.from_total_size =
        static_cast<double>(gi.request.from_num_vertices) + NextDyadic(&rng, 0.0, 8.0);
  }
  const int offers = static_cast<int>(rng.NextInt(1, 14));
  for (int i = 0; i < offers; i++) {
    Candidate c;
    c.vertex = static_cast<VertexId>(rng.NextInt(1, 200));
    c.score = NextDyadic(&rng, -2.0, 8.0);
    if (sized) {
      c.size = NextDyadic(&rng, 0.5, 4.0);
    }
    const int degree = static_cast<int>(rng.NextInt(1, 5));
    for (int d = 0; d < degree; d++) {
      const VertexId u = rng.NextBool(0.3)
                             ? 1000 + static_cast<VertexId>(rng.NextInt(0, q_vertices - 1))
                             : static_cast<VertexId>(rng.NextInt(1, 200));
      if (u == c.vertex) {
        continue;
      }
      c.edges.emplace(u, CandidateEdge{NextDyadic(&rng, 0.125, 10.0),
                                       static_cast<ServerId>(rng.NextBounded(num_servers))});
    }
    gi.request.candidates.push_back(std::move(c));
  }

  gi.config.candidate_set_size = static_cast<size_t>(rng.NextInt(1, 16));
  gi.config.balance_delta = rng.NextInt(0, 30);
  if (rng.NextBool(0.5)) {
    gi.config.target_size =
        static_cast<double>(gi.request.from_num_vertices + q_vertices) / 2.0;
  }
  if (rng.NextBool(0.3)) {
    gi.config.migration_cost_weight = NextDyadic(&rng, 0.0, 0.5);
  }
  if (rng.NextBool(0.3)) {
    gi.config.max_candidate_total_size = NextDyadic(&rng, 1.0, 16.0);
  }
  return gi;
}

// Digest of everything observable about a peer-plan set: peer ranking, per-
// candidate ordering, scores, sizes and edge payloads (with location hints).
inline void DigestPlans(const std::vector<PeerPlan>& plans, GoldenDigest* d) {
  d->U64(plans.size());
  for (const PeerPlan& plan : plans) {
    d->I64(plan.peer);
    d->F64(plan.total_score);
    d->U64(plan.candidates.size());
    for (const Candidate& c : plan.candidates) {
      d->U64(c.vertex);
      d->F64(c.score);
      d->F64(c.size);
      for (const auto& [u, e] : GoldenSortedEdges(c)) {
        d->U64(u);
        d->F64(e.weight);
        d->I64(e.location_hint);
      }
    }
  }
}

inline void DigestDecision(const ExchangeDecision& decision, GoldenDigest* d) {
  d->U64(decision.accepted.size());
  for (VertexId v : decision.accepted) {
    d->U64(v);
  }
  d->U64(decision.counter_offer.size());
  for (const Candidate& c : decision.counter_offer) {
    d->U64(c.vertex);
    d->F64(c.score);
    d->F64(c.size);
    for (const auto& [u, e] : GoldenSortedEdges(c)) {
      d->U64(u);
      d->F64(e.weight);
      d->I64(e.location_hint);
    }
  }
}

// Full golden digest for one seed: q's own plans plus the joint decision.
inline uint64_t ExchangeGoldenDigest(uint64_t seed) {
  const GoldenExchangeInstance gi = MakeGoldenExchangeInstance(seed);
  GoldenDigest d;
  DigestPlans(BuildPeerPlans(gi.q_view, gi.config), &d);
  DigestDecision(DecideExchange(gi.q_view, gi.request, gi.config), &d);
  return d.h;
}

}  // namespace actop

#endif  // TESTS_CORE_PARTITION_GOLDEN_UTIL_H_
