// RepartitionArena unit + property tests: CSR structural equivalence with
// WeightedGraph, incremental cut-cost maintenance, Theorem 1 properties
// (monotone cost decrease, balance preservation) for the k-way
// generalization and the lazy-threshold baseline, policy smoke coverage,
// and baked assignment digests (cross-stdlib determinism — the arena never
// iterates an unordered container, so these must not move between
// standard-library versions).

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/rng.h"
#include "src/core/csr_graph.h"
#include "src/core/partition_testbed.h"
#include "src/core/repartition_arena.h"
#include "src/core/repartition_policy.h"
#include "tests/core/partition_golden_util.h"

namespace actop {
namespace {

WeightedGraph MakeDyadicRandomGraph(int vertices, int edges, Rng* rng) {
  WeightedGraph g;
  for (int v = 1; v <= vertices; v++) {
    g.AddVertex(static_cast<VertexId>(v));
  }
  for (int e = 0; e < edges; e++) {
    const auto a = static_cast<VertexId>(rng->NextInt(1, vertices));
    auto b = static_cast<VertexId>(rng->NextInt(1, vertices));
    while (b == a) {
      b = static_cast<VertexId>(rng->NextInt(1, vertices));
    }
    g.AddEdge(a, b, NextDyadic(rng, 0.125, 8.0));
  }
  return g;
}

TEST(CsrGraphTest, MirrorsWeightedGraph) {
  Rng rng(3);
  const WeightedGraph g = MakeDyadicRandomGraph(80, 300, &rng);
  const CsrGraph csr = CsrGraph::FromWeighted(g);
  ASSERT_EQ(static_cast<size_t>(csr.num_vertices()), g.num_vertices());
  const std::vector<VertexId> ids = g.Vertices();
  for (int32_t idx = 0; idx < csr.num_vertices(); idx++) {
    const VertexId v = csr.IdOf(idx);
    EXPECT_EQ(v, ids[static_cast<size_t>(idx)]);  // ascending-id layout
    EXPECT_EQ(csr.IndexOf(v), idx);
    const VertexAdjacency& adj = g.NeighborsOf(v);
    ASSERT_EQ(csr.DegreeOf(idx), adj.size());
    int32_t prev = -1;
    for (size_t e = csr.EdgeBegin(idx); e < csr.EdgeEnd(idx); e++) {
      const int32_t u_idx = csr.EdgeNeighbor(e);
      EXPECT_GT(u_idx, prev);  // span sorted by neighbor index
      prev = u_idx;
      const VertexId u = csr.IdOf(u_idx);
      ASSERT_TRUE(adj.contains(u));
      EXPECT_EQ(csr.EdgeWeight(e), adj.at(u));
    }
  }
  EXPECT_EQ(csr.IndexOf(static_cast<VertexId>(1000000)), CsrGraph::kNoIndex);
}

TEST(CsrGraphTest, IncludesIsolatedVertices) {
  WeightedGraph g;
  g.AddVertex(5);
  g.AddVertex(9);
  g.AddEdge(1, 2, 1.0);
  const CsrGraph csr = CsrGraph::FromWeighted(g);
  ASSERT_EQ(csr.num_vertices(), 4);
  EXPECT_EQ(csr.DegreeOf(csr.IndexOf(5)), 0u);
  EXPECT_EQ(csr.DegreeOf(csr.IndexOf(1)), 1u);
}

TEST(ArenaTest, InitialPlacementMatchesTestbed) {
  Rng grng(17);
  const WeightedGraph g = MakeClusteredGraph(30, 6, 3.0, 120, 1.0, &grng);
  const CsrGraph csr = CsrGraph::FromWeighted(g);
  PairwiseConfig config;
  const PartitionTestbed testbed(&g, 6, config, 99);
  const RepartitionArena arena(&csr, 6, config, 99);
  for (VertexId v : g.Vertices()) {
    ASSERT_EQ(testbed.LocationOf(v), arena.LocationOf(v));
  }
  EXPECT_EQ(testbed.ServerSizes(), arena.ServerSizes());
  EXPECT_EQ(testbed.Cost(), arena.cost());  // integer weights: sums exact
}

TEST(ArenaTest, IncrementalCostMatchesRecompute) {
  Rng grng(23);
  const WeightedGraph g = MakeDyadicRandomGraph(200, 900, &grng);
  const CsrGraph csr = CsrGraph::FromWeighted(g);
  PairwiseConfig config;
  RepartitionArena arena(&csr, 5, config, 4);
  EXPECT_EQ(arena.cost(), arena.RecomputeCost());
  for (int sweep = 0; sweep < 6; sweep++) {
    arena.RunPairwiseSweep();
    // Dyadic weights: incremental O(deg) maintenance must equal the O(E)
    // recompute bit-for-bit, not just approximately.
    ASSERT_EQ(arena.cost(), arena.RecomputeCost());
  }
  EXPECT_GT(arena.total_migrations(), 0);
}

// Theorem 1 properties for the k-way generalization: every sweep that moves
// vertices strictly decreases the cut, and the balance band holds after
// every round.
TEST(ArenaTest, KWayMonotoneCostDecreaseAndBalance) {
  for (const uint64_t seed : {1ull, 2ull, 3ull}) {
    for (const int fanout : {2, 4}) {
      Rng grng(seed);
      const WeightedGraph g = MakeChurnedClusteredGraph(25, 8, 4.0, 0.3, &grng);
      const CsrGraph csr = CsrGraph::FromWeighted(g);
      PairwiseConfig config;
      config.balance_delta = 12;
      RepartitionArena arena(&csr, 8, config, seed * 31 + 7);
      const double lo = arena.config().target_size -
                        static_cast<double>(config.balance_delta) / 2.0;
      const double hi = arena.config().target_size +
                        static_cast<double>(config.balance_delta) / 2.0;
      double cost = arena.cost();
      for (int sweep = 0; sweep < 12; sweep++) {
        const double sweep_start_cost = cost;
        int moved = 0;
        for (ServerId p = 0; p < arena.num_servers(); p++) {
          moved += arena.RunKWayRound(p, fanout);
          // Balance band must hold after every round, not only at the end.
          for (const int64_t s : arena.ServerSizes()) {
            ASSERT_GE(static_cast<double>(s), lo);
            ASSERT_LE(static_cast<double>(s), hi);
          }
          ASSERT_LE(arena.cost(), cost);  // monotone per round
          cost = arena.cost();
        }
        if (moved == 0) {
          break;
        }
        ASSERT_LT(cost, sweep_start_cost);  // strict decrease while moving
      }
      EXPECT_EQ(arena.cost(), arena.RecomputeCost());
    }
  }
}

// The lazy-threshold baseline is monotone by construction (every fired move
// has positive gain against ground truth) and balance-checked.
TEST(ArenaTest, ObrThresholdMonotoneAndBalanced) {
  Rng grng(5);
  const WeightedGraph g = MakeClusteredGraph(40, 8, 4.0, 200, 1.0, &grng);
  const CsrGraph csr = CsrGraph::FromWeighted(g);
  PairwiseConfig config;
  config.balance_delta = 16;
  RepartitionArena arena(&csr, 8, config, 12);
  double cost = arena.cost();
  for (int sweep = 0; sweep < 10; sweep++) {
    const int64_t moved = arena.RunObrThresholdSweep(0.5);
    EXPECT_LE(arena.cost(), cost);
    if (moved == 0) {
      break;
    }
    EXPECT_LT(arena.cost(), cost);
    cost = arena.cost();
    EXPECT_LE(arena.MaxImbalance(), config.balance_delta);
  }
}

TEST(ArenaTest, AllPoliciesReduceCostOnClusteredGraph) {
  for (auto& policy : MakeArenaPolicies()) {
    Rng grng(29);
    const WeightedGraph g = MakeClusteredGraph(32, 8, 4.0, 150, 1.0, &grng);
    const CsrGraph csr = CsrGraph::FromWeighted(g);
    PairwiseConfig config;
    RepartitionArena arena(&csr, 8, config, 77);
    const double initial = arena.cost();
    for (int sweep = 0; sweep < 15; sweep++) {
      if (policy->RunSweep(&arena) == 0) {
        break;
      }
    }
    EXPECT_LT(arena.cost(), initial) << policy->name();
    EXPECT_GT(arena.total_migrations(), 0) << policy->name();
    EXPECT_EQ(arena.cost(), arena.RecomputeCost()) << policy->name();
  }
}

TEST(ArenaTest, SizedActorsKeepSizeBandUnderKWay) {
  Rng grng(41);
  const WeightedGraph g = MakeClusteredGraph(20, 8, 4.0, 80, 1.0, &grng);
  const CsrGraph csr = CsrGraph::FromWeighted(g);
  PairwiseConfig config;
  config.balance_delta = 24;
  RepartitionArena arena(&csr, 4, config, 8);
  Rng srng(91);
  std::unordered_map<VertexId, double> sizes;
  for (VertexId v : g.Vertices()) {
    sizes[v] = NextDyadic(&srng, 0.5, 3.0);
  }
  arena.SetVertexSizes(sizes);
  const double lo =
      arena.config().target_size - static_cast<double>(config.balance_delta) / 2.0;
  const double hi =
      arena.config().target_size + static_cast<double>(config.balance_delta) / 2.0;
  double cost = arena.cost();
  for (int sweep = 0; sweep < 10; sweep++) {
    const int moved = arena.RunKWaySweep(3);
    ASSERT_LE(arena.cost(), cost);
    cost = arena.cost();
    EXPECT_LE(arena.MaxSizeImbalance(), hi - lo + 1e-9);
    if (moved == 0) {
      break;
    }
  }
  EXPECT_EQ(arena.cost(), arena.RecomputeCost());
}

TEST(ChurnedGraphTest, DeterministicAndCrossCluster) {
  Rng r1(13);
  Rng r2(13);
  const WeightedGraph g1 = MakeChurnedClusteredGraph(10, 8, 2.0, 0.4, &r1);
  const WeightedGraph g2 = MakeChurnedClusteredGraph(10, 8, 2.0, 0.4, &r2);
  EXPECT_EQ(g1.num_vertices(), 80u);
  EXPECT_EQ(g1.num_edges(), g2.num_edges());
  EXPECT_GT(g1.num_edges(), 10u * 8u * 7u / 2u);  // churn added cross edges
  // Same seed, same graph — edge-for-edge.
  for (VertexId v : g1.Vertices()) {
    for (const auto& [u, w] : g1.NeighborsOf(v)) {
      ASSERT_TRUE(g2.NeighborsOf(v).contains(u));
      ASSERT_EQ(w, g2.NeighborsOf(v).at(u));
    }
  }
}

// Cross-stdlib determinism: the arena's decisions are a pure function of
// the (graph, config, seed) triple because every iteration it performs is
// over dense or sorted storage. These digests were baked on first
// implementation; a change means the data plane's decision stream moved.
TEST(ArenaDeterminismTest, BakedAssignmentDigests) {
  uint64_t digests[3] = {0, 0, 0};
  {
    Rng grng(7);
    const WeightedGraph g = MakeClusteredGraph(50, 8, 4.0, 100, 1.0, &grng);
    const CsrGraph csr = CsrGraph::FromWeighted(g);
    RepartitionArena arena(&csr, 8, PairwiseConfig{}, 42);
    for (int i = 0; i < 3; i++) {
      arena.RunPairwiseSweep();
    }
    digests[0] = arena.AssignmentDigest();
  }
  {
    Rng grng(11);
    const WeightedGraph g = MakeChurnedClusteredGraph(40, 8, 2.0, 0.3, &grng);
    const CsrGraph csr = CsrGraph::FromWeighted(g);
    RepartitionArena arena(&csr, 5, PairwiseConfig{}, 9);
    for (int i = 0; i < 3; i++) {
      arena.RunKWaySweep(3);
    }
    digests[1] = arena.AssignmentDigest();
  }
  {
    Rng grng(19);
    const WeightedGraph g = MakeRandomGraph(300, 1200, 4.0, &grng);
    const CsrGraph csr = CsrGraph::FromWeighted(g);
    RepartitionArena arena(&csr, 6, PairwiseConfig{}, 31);
    arena.RunObrThresholdSweep(0.25);
    arena.RunStreamingRefineSweep(0.25);
    arena.RunPairwiseSweep();
    digests[2] = arena.AssignmentDigest();
  }
  EXPECT_EQ(digests[0], 4264941578178391605ULL);
  EXPECT_EQ(digests[1], 16320128523214697866ULL);
  EXPECT_EQ(digests[2], 17279368050261467176ULL);
}

}  // namespace
}  // namespace actop
