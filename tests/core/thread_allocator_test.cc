#include "src/core/thread_allocator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/core/queuing_model.h"

namespace actop {
namespace {

AllocationProblem SampleProblem() {
  AllocationProblem p;
  p.processors = 8;
  p.eta = 100e-6;  // the paper's calibrated value
  p.stages = {
      {.lambda = 15000.0, .s = 10000.0, .beta = 1.0},  // receive
      {.lambda = 15000.0, .s = 30000.0, .beta = 1.0},  // worker
      {.lambda = 15000.0, .s = 11000.0, .beta = 1.0},  // sender
  };
  return p;
}

TEST(ClosedFormTest, MatchesTheorem2Formula) {
  const AllocationProblem p = SampleProblem();
  const double lambda_tot = TotalArrivalRate(p);
  const auto t = ClosedFormAllocation(p);
  ASSERT_EQ(t.size(), 3u);
  for (size_t i = 0; i < 3; i++) {
    const auto& st = p.stages[i];
    const double expected = st.lambda / st.s + std::sqrt(st.lambda / (lambda_tot * p.eta * st.s));
    EXPECT_NEAR(t[i], expected, 1e-9);
  }
}

TEST(ClosedFormTest, AllStagesStable) {
  const AllocationProblem p = SampleProblem();
  const auto t = ClosedFormAllocation(p);
  for (size_t i = 0; i < t.size(); i++) {
    EXPECT_GT(p.stages[i].s * t[i], p.stages[i].lambda);
  }
}

TEST(ClosedFormTest, RespectsCapacityWhenEtaAboveZeta) {
  AllocationProblem p = SampleProblem();
  const double zeta = Zeta(p);
  p.eta = zeta * 1.5;
  const auto t = ClosedFormAllocation(p);
  EXPECT_LE(CpuUsage(p, t), static_cast<double>(p.processors) + 1e-9);
}

TEST(ClosedFormTest, StationaryPointOfUnconstrainedObjective) {
  // At the optimum, dF/dti = 0: η = λi·si/(λtot·(si·ti−λi)²).
  const AllocationProblem p = SampleProblem();
  const double lambda_tot = TotalArrivalRate(p);
  const auto t = ClosedFormAllocation(p);
  for (size_t i = 0; i < t.size(); i++) {
    const auto& st = p.stages[i];
    const double surplus = st.s * t[i] - st.lambda;
    const double grad = p.eta - st.lambda * st.s / (lambda_tot * surplus * surplus);
    EXPECT_NEAR(grad, 0.0, 1e-9);
  }
}

TEST(GradientTest, MatchesClosedFormWhenUnconstrained) {
  const AllocationProblem p = SampleProblem();
  ASSERT_GE(p.eta, Zeta(p));
  const auto closed = ClosedFormAllocation(p);
  const auto grad = GradientAllocation(p);
  ASSERT_EQ(grad.size(), closed.size());
  for (size_t i = 0; i < closed.size(); i++) {
    EXPECT_NEAR(grad[i], closed[i], closed[i] * 0.02);
  }
}

TEST(GradientTest, HandlesActiveCapacityConstraint) {
  AllocationProblem p = SampleProblem();
  p.eta = Zeta(p) * 0.01;  // closed form would exceed capacity
  const auto t = GradientAllocation(p);
  EXPECT_LE(CpuUsage(p, t), static_cast<double>(p.processors) + 1e-6);
  for (size_t i = 0; i < t.size(); i++) {
    EXPECT_GT(p.stages[i].s * t[i], p.stages[i].lambda);
  }
  // Objective must beat the naive stable point (equal slack distribution).
  std::vector<double> naive(t.size());
  for (size_t i = 0; i < t.size(); i++) {
    naive[i] = p.stages[i].lambda / p.stages[i].s + 0.5;
  }
  EXPECT_LE(ProxyLatency(p, t), ProxyLatency(p, naive));
}

TEST(IntegerTest, ProducesStableIntegerAllocation) {
  const AllocationProblem p = SampleProblem();
  const auto alloc = IntegerAllocation(p);
  ASSERT_EQ(alloc.size(), 3u);
  for (size_t i = 0; i < alloc.size(); i++) {
    EXPECT_GE(alloc[i], 1);
    EXPECT_GT(p.stages[i].s * alloc[i], p.stages[i].lambda);
  }
}

TEST(IntegerTest, BeatsOrMatchesNeighboringAllocations) {
  const AllocationProblem p = SampleProblem();
  const auto alloc = IntegerAllocation(p);
  std::vector<double> base(alloc.begin(), alloc.end());
  const double best = ProxyLatency(p, base);
  for (size_t i = 0; i < alloc.size(); i++) {
    for (int d : {-1, +1}) {
      std::vector<double> neighbor = base;
      neighbor[i] += d;
      if (neighbor[i] < 1.0) {
        continue;
      }
      if (CpuUsage(p, neighbor) > p.processors) {
        continue;
      }
      EXPECT_GE(ProxyLatency(p, neighbor) + 1e-12, best);
    }
  }
}

TEST(IntegerTest, MoreBlockingMeansMoreThreads) {
  // Two stages identical except stage 1 blocks: s smaller, beta < 1. The
  // optimizer must give the blocking stage more threads (§5.2's example).
  AllocationProblem p;
  p.processors = 8;
  p.eta = 100e-6;
  const double x = 100e-6;  // 100 µs CPU
  const double w = 400e-6;  // 400 µs blocking
  p.stages = {
      {.lambda = 5000.0, .s = 1.0 / x, .beta = 1.0},
      {.lambda = 5000.0, .s = 1.0 / (x + w), .beta = x / (x + w)},
  };
  const auto alloc = IntegerAllocation(p);
  EXPECT_GT(alloc[1], alloc[0]);
}

TEST(IntegerTest, RespectsMinMaxBounds) {
  const AllocationProblem p = SampleProblem();
  const auto alloc = IntegerAllocation(p, 2, 3);
  for (int t : alloc) {
    EXPECT_GE(t, 2);
    EXPECT_LE(t, 3);
  }
}

// Property: across random feasible problems with η ≥ ζ, the gradient solver
// never finds a solution meaningfully better than the closed form (i.e. the
// closed form is the global optimum Theorem 2 claims).
class ClosedFormOptimalityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ClosedFormOptimalityTest, GradientCannotBeatClosedForm) {
  Rng rng(GetParam());
  AllocationProblem p;
  p.processors = static_cast<int>(rng.NextInt(4, 32));
  const int stages = static_cast<int>(rng.NextInt(2, 6));
  for (int i = 0; i < stages; i++) {
    StageParams st;
    st.lambda = rng.NextDouble(100.0, 20000.0);
    st.s = rng.NextDouble(500.0, 40000.0);
    st.beta = rng.NextDouble(0.2, 1.0);
    p.stages.push_back(st);
  }
  if (!IsFeasible(p)) {
    GTEST_SKIP() << "random instance infeasible";
  }
  const double zeta = Zeta(p);
  p.eta = std::max(zeta * rng.NextDouble(1.0, 10.0), 1e-9);
  const auto closed = ClosedFormAllocation(p);
  const auto grad = GradientAllocation(p);
  const double closed_obj = ProxyLatency(p, closed);
  const double grad_obj = ProxyLatency(p, grad);
  EXPECT_LE(closed_obj, grad_obj * 1.001 + 1e-12);
  EXPECT_LE(CpuUsage(p, closed), p.processors + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(RandomProblems, ClosedFormOptimalityTest,
                         ::testing::Range<uint64_t>(1, 25));

// Theorem 2, per-coordinate: when η ≥ ζ the numeric convex solve must land on
// the closed-form allocation itself (the program is strictly convex, so the
// optimum is unique), not merely tie its objective.
class ClosedFormAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ClosedFormAgreementTest, GradientConvergesToClosedFormPerStage) {
  Rng rng(GetParam());
  AllocationProblem p;
  p.processors = static_cast<int>(rng.NextInt(4, 32));
  const int stages = static_cast<int>(rng.NextInt(2, 6));
  for (int i = 0; i < stages; i++) {
    StageParams st;
    st.lambda = rng.NextDouble(100.0, 20000.0);
    st.s = rng.NextDouble(500.0, 40000.0);
    st.beta = rng.NextDouble(0.2, 1.0);
    p.stages.push_back(st);
  }
  if (!IsFeasible(p)) {
    GTEST_SKIP() << "random instance infeasible";
  }
  p.eta = std::max(Zeta(p) * rng.NextDouble(1.5, 8.0), 1e-9);
  const auto closed = ClosedFormAllocation(p);
  const auto grad = GradientAllocation(p, 20000);
  ASSERT_EQ(grad.size(), closed.size());
  for (size_t i = 0; i < closed.size(); i++) {
    EXPECT_NEAR(grad[i], closed[i], std::max(closed[i] * 0.02, 1e-3))
        << "stage " << i << " diverges from the Theorem 2 closed form";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomProblems, ClosedFormAgreementTest,
                         ::testing::Range<uint64_t>(1, 17));

// Theorem 2's validity boundary: when η < ζ the closed form over-subscribes
// the CPUs, so the solver must fall back to the numeric path — whose result
// is capacity-feasible and stable on every stage.
class ConstrainedFallbackTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConstrainedFallbackTest, NumericPathFeasibleWhenEtaBelowZeta) {
  Rng rng(GetParam());
  AllocationProblem p;
  p.processors = static_cast<int>(rng.NextInt(4, 16));
  const int stages = static_cast<int>(rng.NextInt(2, 6));
  for (int i = 0; i < stages; i++) {
    StageParams st;
    st.lambda = rng.NextDouble(100.0, 20000.0);
    st.s = rng.NextDouble(500.0, 40000.0);
    st.beta = rng.NextDouble(0.2, 1.0);
    p.stages.push_back(st);
  }
  if (!IsFeasible(p)) {
    GTEST_SKIP() << "random instance infeasible";
  }
  p.eta = Zeta(p) * rng.NextDouble(0.05, 0.8);

  // The closed form is exactly what Theorem 2 warns about here: it busts the
  // CPU budget, which is why the numeric path must take over.
  EXPECT_GT(CpuUsage(p, ClosedFormAllocation(p)), static_cast<double>(p.processors));

  const auto t = GradientAllocation(p, 20000);
  EXPECT_LE(CpuUsage(p, t), static_cast<double>(p.processors) + 1e-6);
  for (size_t i = 0; i < t.size(); i++) {
    EXPECT_GT(p.stages[i].s * t[i], p.stages[i].lambda) << "stage " << i << " unstable";
  }

  // IntegerAllocation routes through the same fallback; its rounded result
  // must stay within capacity too.
  const auto alloc = IntegerAllocation(p);
  std::vector<double> as_double(alloc.begin(), alloc.end());
  EXPECT_LE(CpuUsage(p, as_double), static_cast<double>(p.processors) + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(RandomProblems, ConstrainedFallbackTest,
                         ::testing::Range<uint64_t>(1, 17));

}  // namespace
}  // namespace actop
