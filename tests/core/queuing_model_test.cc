#include "src/core/queuing_model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace actop {
namespace {

AllocationProblem TwoStageProblem() {
  AllocationProblem p;
  p.processors = 8;
  p.eta = 1e-4;
  p.stages = {
      {.lambda = 1000.0, .s = 2000.0, .beta = 1.0},
      {.lambda = 1000.0, .s = 500.0, .beta = 1.0},
  };
  return p;
}

TEST(QueuingModelTest, TotalArrivalRate) {
  EXPECT_DOUBLE_EQ(TotalArrivalRate(TwoStageProblem()), 2000.0);
}

TEST(QueuingModelTest, FeasibilityCheck) {
  AllocationProblem p = TwoStageProblem();
  // Demand = 1000/2000 + 1000/500 = 2.5 < 8.
  EXPECT_TRUE(IsFeasible(p));
  p.processors = 2;
  EXPECT_FALSE(IsFeasible(p));
}

TEST(QueuingModelTest, ProxyLatencyMatchesMM1) {
  AllocationProblem p;
  p.processors = 4;
  p.eta = 0.0;
  p.stages = {{.lambda = 100.0, .s = 200.0, .beta = 1.0}};
  // One thread: M/M/1 with µ=200, λ=100 -> mean delay 1/(µ−λ) = 10 ms.
  EXPECT_NEAR(ProxyLatency(p, {1.0}), 0.01, 1e-12);
}

TEST(QueuingModelTest, UnstableAllocationIsInfinite) {
  AllocationProblem p = TwoStageProblem();
  // Stage 1 needs > 2 threads (λ=1000, s=500).
  EXPECT_TRUE(std::isinf(ProxyLatency(p, {1.0, 2.0})));
  EXPECT_FALSE(std::isinf(ProxyLatency(p, {1.0, 2.5})));
}

TEST(QueuingModelTest, EtaPenaltyAddsLinearly) {
  AllocationProblem p = TwoStageProblem();
  const double base = ProxyLatency(p, {2.0, 4.0});
  p.eta *= 2.0;
  const double doubled = ProxyLatency(p, {2.0, 4.0});
  EXPECT_NEAR(doubled - base, 1e-4 * 6.0, 1e-12);
}

TEST(QueuingModelTest, ZeroTrafficStageContributesOnlyPenalty) {
  AllocationProblem p;
  p.processors = 4;
  p.eta = 1e-3;
  p.stages = {
      {.lambda = 0.0, .s = 100.0, .beta = 1.0},
      {.lambda = 100.0, .s = 200.0, .beta = 1.0},
  };
  EXPECT_NEAR(ProxyLatency(p, {1.0, 1.0}), 0.01 + 2e-3, 1e-12);
}

TEST(QueuingModelTest, ZetaFormula) {
  AllocationProblem p;
  p.processors = 4;
  p.stages = {{.lambda = 100.0, .s = 100.0, .beta = 1.0}};
  // numerator = 1*sqrt(1) = 1; demand = 1; slack = 3; ζ = (1/3)²/100.
  EXPECT_NEAR(Zeta(p), (1.0 / 3.0) * (1.0 / 3.0) / 100.0, 1e-12);
}

TEST(QueuingModelTest, ZetaInfiniteAtZeroSlack) {
  AllocationProblem p;
  p.processors = 1;
  p.stages = {{.lambda = 100.0, .s = 100.0, .beta = 1.0}};
  EXPECT_TRUE(std::isinf(Zeta(p)));
}

TEST(QueuingModelTest, CpuUsageWeightsBeta) {
  AllocationProblem p = TwoStageProblem();
  p.stages[0].beta = 0.5;
  EXPECT_DOUBLE_EQ(CpuUsage(p, {4.0, 2.0}), 4.0 * 0.5 + 2.0);
}

TEST(QueuingModelTest, ModelLatencyExcludesPenalty) {
  AllocationProblem p = TwoStageProblem();
  const std::vector<double> t = {2.0, 4.0};
  EXPECT_NEAR(ModelLatencySeconds(p, t) +
                  p.eta * 6.0,
              ProxyLatency(p, t), 1e-12);
}

}  // namespace
}  // namespace actop
