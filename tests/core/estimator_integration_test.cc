// End-to-end validation of the §5.4 parameter-estimation pipeline against
// ground truth: run the SEDA emulator with known per-stage compute (x) and
// blocking (w) times, feed the measured stage windows through the estimator
// exactly as the controller does, and check the inferred service rates (s)
// and processor fractions (β) against the configured truth.

#include <gtest/gtest.h>

#include "src/common/sim_time.h"
#include "src/core/param_estimator.h"
#include "src/core/thread_controller.h"
#include "src/seda/emulator.h"
#include "src/sim/simulation.h"

namespace actop {
namespace {

struct StageTruth {
  double x_us;
  double w_us;
};

// Runs the emulator and returns the estimator after feeding it 1-second
// windows for `seconds` of simulated time.
ParamEstimator EstimateFromEmulator(const std::vector<StageTruth>& truth, double arrival_rate,
                                    int seconds, std::vector<int> threads) {
  EmulatorConfig cfg;
  cfg.cores = 8;
  cfg.kappa = 0.0;
  cfg.arrival_rate = arrival_rate;
  cfg.deterministic_service = true;  // exact x and w per event
  cfg.seed = 11;
  for (size_t i = 0; i < truth.size(); i++) {
    EmulatorStageConfig st;
    st.name = "s" + std::to_string(i);
    st.mean_compute = MicrosF(truth[i].x_us);
    st.mean_blocking = MicrosF(truth[i].w_us);
    st.initial_threads = threads[i];
    cfg.stages.push_back(st);
  }
  Simulation sim;
  Emulator emu(&sim, cfg);
  std::vector<bool> no_blocking;
  for (const auto& st : truth) {
    no_blocking.push_back(st.w_us == 0.0);
  }
  ParamEstimator estimator(EstimatorConfig{.no_blocking = no_blocking});
  emu.Start();
  for (int t = 1; t <= seconds; t++) {
    sim.RunUntil(Seconds(t));
    std::vector<StageWindow> windows;
    for (int i = 0; i < emu.num_stages(); i++) {
      windows.push_back(emu.stage(i).TakeWindow());
    }
    estimator.AddWindow(windows, Seconds(1));
  }
  return estimator;
}

TEST(EstimatorIntegrationTest, RecoversServiceRateWithoutBlocking) {
  // Light load, plenty of threads: no contention -> s = 1/x, beta = 1.
  const ParamEstimator est =
      EstimateFromEmulator({{100.0, 0.0}, {200.0, 0.0}}, 500.0, 5, {4, 4});
  ASSERT_TRUE(est.ready());
  const auto params = est.Estimate();
  EXPECT_NEAR(params[0].lambda, 500.0, 25.0);
  EXPECT_NEAR(params[0].s, 10000.0, 500.0);   // 1/100 µs
  EXPECT_NEAR(params[1].s, 5000.0, 250.0);    // 1/200 µs
  EXPECT_NEAR(params[0].beta, 1.0, 0.02);
  EXPECT_NEAR(params[1].beta, 1.0, 0.02);
}

TEST(EstimatorIntegrationTest, RecoversBlockingStageBeta) {
  // Stage 1 blocks 400 µs per 100 µs of compute: s = 1/500 µs, beta = 0.2.
  // Stage 0 has no blocking and anchors the α estimate.
  const ParamEstimator est =
      EstimateFromEmulator({{100.0, 0.0}, {100.0, 400.0}}, 500.0, 5, {4, 8});
  const auto params = est.Estimate();
  EXPECT_NEAR(params[1].s, 2000.0, 150.0);
  EXPECT_NEAR(params[1].beta, 0.2, 0.05);
}

TEST(EstimatorIntegrationTest, ContentionInflatesAlphaNotService) {
  // Overload the CPU so jobs share cores (ready time appears); the α-based
  // correction must keep the *service* estimate near 1/(x+w) regardless.
  const ParamEstimator est =
      EstimateFromEmulator({{300.0, 0.0}, {300.0, 0.0}, {300.0, 0.0}}, 7000.0, 6, {8, 8, 8});
  ASSERT_TRUE(est.ready());
  EXPECT_GT(est.alpha(), 0.2);  // visible contention
  const auto params = est.Estimate();
  for (const auto& p : params) {
    // 7000/s * 300 µs * 3 stages on 8 cores => heavy sharing; the estimate
    // should stay within ~35% of the true 3333/s.
    EXPECT_NEAR(p.s, 3333.0, 1200.0);
  }
}

TEST(EstimatorIntegrationTest, ControllerAllocatesForBlockingStage) {
  // Full-loop check of §5.2's motivating example: two stages with equal
  // arrival rate and compute, one of which blocks — the controller must give
  // the blocking stage strictly more threads.
  EmulatorConfig cfg;
  cfg.cores = 8;
  cfg.kappa = 0.0;
  cfg.arrival_rate = 2000.0;
  cfg.seed = 21;
  cfg.stages = {
      {.name = "pure", .mean_compute = Micros(100), .mean_blocking = 0, .initial_threads = 4},
      {.name = "blocking", .mean_compute = Micros(100), .mean_blocking = Micros(400),
       .initial_threads = 4},
  };
  Simulation sim;
  Emulator emu(&sim, cfg);
  ModelThreadController controller(
      &sim, &emu,
      ModelControllerConfig{.period = Seconds(1), .eta = 100e-6,
                            .no_blocking = {true, false}});
  emu.Start();
  controller.Start();
  sim.RunUntil(Seconds(10));
  const auto threads = emu.CurrentThreads();
  EXPECT_GT(threads[1], threads[0]);
  // Stability: the blocking stage needs >= λ(x+w) = 2000 * 500 µs = 1 thread
  // busy at all times; with safety margin the controller picks >= 2.
  EXPECT_GE(threads[1], 2);
}

}  // namespace
}  // namespace actop
