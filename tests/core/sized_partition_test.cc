// Tests of the §4.2 extension: heterogeneous actor sizes and migration
// costs. The paper sketches these ("add a term to the transfer score ...
// inversely proportional to the actor size; limit the candidate set by the
// sum of sizes; set δ to represent the allowed imbalance in total size") but
// leaves their evaluation out of scope — this suite validates our
// implementation of that sketch.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/pairwise_partition.h"
#include "src/core/partition_testbed.h"

namespace actop {
namespace {

TEST(SizedPartitionTest, MigrationCostPenalizesLargeActors) {
  // Two vertices with identical communication pull; the heavier one must
  // score lower once migration costs are on.
  LocalGraphView view;
  view.self = 0;
  view.num_local_vertices = 2;
  view.adjacency[1] = {{10, 5.0}};
  view.adjacency[2] = {{11, 5.0}};
  view.location = {{10, 1}, {11, 1}};
  view.vertex_size = {{1, 1.0}, {2, 8.0}};
  view.total_local_size = 9.0;

  PairwiseConfig config;
  config.migration_cost_weight = 0.5;
  const auto plans = BuildPeerPlans(view, config);
  ASSERT_EQ(plans.size(), 1u);
  ASSERT_EQ(plans[0].candidates.size(), 2u);
  // Light vertex first: 5 − 0.5·1 = 4.5 beats 5 − 0.5·8 = 1.0.
  EXPECT_EQ(plans[0].candidates[0].vertex, 1u);
  EXPECT_NEAR(plans[0].candidates[0].score, 4.5, 1e-9);
  EXPECT_NEAR(plans[0].candidates[1].score, 1.0, 1e-9);
}

TEST(SizedPartitionTest, MigrationCostCanSuppressMoveEntirely) {
  LocalGraphView view;
  view.self = 0;
  view.num_local_vertices = 1;
  view.adjacency[1] = {{10, 3.0}};
  view.location = {{10, 1}};
  view.vertex_size = {{1, 10.0}};
  view.total_local_size = 10.0;

  PairwiseConfig config;
  config.migration_cost_weight = 0.5;  // cost 5.0 > gain 3.0
  EXPECT_TRUE(BuildPeerPlans(view, config).empty());
}

TEST(SizedPartitionTest, CandidateSetBoundedByTotalSize) {
  LocalGraphView view;
  view.self = 0;
  view.num_local_vertices = 4;
  double total = 0.0;
  for (VertexId v = 1; v <= 4; v++) {
    view.adjacency[v] = {{100 + v, static_cast<double>(10 - v)}};  // v=1 scores best
    view.location[100 + v] = 1;
    view.vertex_size[v] = 3.0;
    total += 3.0;
  }
  view.total_local_size = total;

  PairwiseConfig config;
  config.candidate_set_size = 10;
  config.max_candidate_total_size = 7.0;  // fits two 3.0-sized actors
  const auto plans = BuildPeerPlans(view, config);
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_EQ(plans[0].candidates.size(), 2u);
  EXPECT_EQ(plans[0].candidates[0].vertex, 1u);
  EXPECT_EQ(plans[0].candidates[1].vertex, 2u);
}

TEST(SizedPartitionTest, BalanceInSizeUnits) {
  // q is at its size capacity: accepting a big actor must be refused even
  // though vertex counts would allow it.
  LocalGraphView q_view;
  q_view.self = 1;
  q_view.num_local_vertices = 2;
  q_view.total_local_size = 20.0;

  ExchangeRequest request;
  request.from = 0;
  request.from_num_vertices = 10;
  request.from_total_size = 20.0;
  Candidate big;
  big.vertex = 1;
  big.size = 9.0;
  big.edges = {{50, {5.0, /*hint=*/1}}};
  request.candidates = {big};

  PairwiseConfig config;
  config.balance_delta = 8;  // band: 20 ± 4
  config.target_size = 20.0;
  const auto blocked = DecideExchange(q_view, request, config);
  EXPECT_TRUE(blocked.accepted.empty());

  // A smaller actor with the same pull is accepted.
  request.candidates[0].size = 2.0;
  const auto allowed = DecideExchange(q_view, request, config);
  EXPECT_EQ(allowed.accepted.size(), 1u);
}

TEST(SizedPartitionTest, TestbedKeepsSizeBalanceWithSkewedSizes) {
  Rng rng(5);
  WeightedGraph g = MakeClusteredGraph(30, 6, 1.0, 40, 0.2, &rng);
  PairwiseConfig config;
  config.candidate_set_size = 16;
  config.balance_delta = 30;  // size units
  PartitionTestbed bed(&g, 4, config, 5);

  // Pareto-ish sizes: a few heavy actors, many light ones.
  std::unordered_map<VertexId, double> sizes;
  Rng size_rng(6);
  for (VertexId v : g.Vertices()) {
    sizes[v] = size_rng.NextBool(0.1) ? 10.0 : 1.0;
  }
  bed.SetVertexSizes(std::move(sizes));

  const double initial_cost = bed.Cost();
  bed.RunToConvergence(300);
  EXPECT_LT(bed.Cost(), initial_cost * 0.6);
  EXPECT_LE(bed.MaxSizeImbalance(), 30.0 + 1e-9);
}

TEST(SizedPartitionTest, ProhibitiveMigrationCostFreezesPartition) {
  // The guaranteed property of the cost term: when cost_weight * size
  // exceeds any possible communication gain, nothing ever moves. (Moderate
  // weights trade cut quality against churn, but greedy local search is
  // path-dependent, so per-run migration counts are not monotone in the
  // weight — only the extremes are invariant.)
  Rng rng(9);
  WeightedGraph g = MakeClusteredGraph(24, 6, 1.0, 60, 0.3, &rng);

  auto run = [&](double cost_weight) {
    PairwiseConfig config;
    config.candidate_set_size = 16;
    config.balance_delta = 12;
    config.migration_cost_weight = cost_weight;
    PartitionTestbed bed(&g, 4, config, 9);
    std::unordered_map<VertexId, double> sizes;
    Rng size_rng(10);
    for (VertexId v : g.Vertices()) {
      sizes[v] = size_rng.NextDouble(0.5, 4.0);
    }
    bed.SetVertexSizes(std::move(sizes));
    bed.RunToConvergence(300);
    return bed;
  };

  const auto cheap = run(0.0);
  EXPECT_GT(cheap.total_migrations(), 0);
  // Max possible gain per vertex is its total incident weight (< 6 vertices
  // * 1.0 intra + extras); weight 100 over min size 0.5 dwarfs it.
  const auto frozen = run(100.0);
  EXPECT_EQ(frozen.total_migrations(), 0);
}

TEST(SizedPartitionTest, UniformSizesMatchUnsizedBehaviour) {
  // Setting every size to 1.0 must reproduce the unsized algorithm exactly.
  Rng rng(13);
  WeightedGraph g = MakeClusteredGraph(16, 6, 1.0, 20, 0.2, &rng);
  PairwiseConfig config;
  config.candidate_set_size = 16;
  config.balance_delta = 12;

  PartitionTestbed plain(&g, 4, config, 13);
  plain.RunToConvergence(200);

  PartitionTestbed sized(&g, 4, config, 13);
  std::unordered_map<VertexId, double> ones;
  for (VertexId v : g.Vertices()) {
    ones[v] = 1.0;
  }
  sized.SetVertexSizes(std::move(ones));
  sized.RunToConvergence(200);

  EXPECT_DOUBLE_EQ(plain.Cost(), sized.Cost());
  EXPECT_EQ(plain.total_migrations(), sized.total_migrations());
}

}  // namespace
}  // namespace actop
