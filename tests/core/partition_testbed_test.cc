#include "src/core/partition_testbed.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <tuple>
#include <vector>

#include "src/common/rng.h"

namespace actop {
namespace {

TEST(WeightedGraphTest, SymmetricEdges) {
  WeightedGraph g;
  g.AddEdge(1, 2, 3.0);
  EXPECT_DOUBLE_EQ(g.NeighborsOf(1).at(2), 3.0);
  EXPECT_DOUBLE_EQ(g.NeighborsOf(2).at(1), 3.0);
  EXPECT_EQ(g.num_vertices(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(WeightedGraphTest, ParallelEdgesAccumulate) {
  WeightedGraph g;
  g.AddEdge(1, 2, 1.0);
  g.AddEdge(1, 2, 2.5);
  EXPECT_DOUBLE_EQ(g.NeighborsOf(1).at(2), 3.5);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(WeightedGraphTest, ClusteredGeneratorShape) {
  Rng rng(1);
  WeightedGraph g = MakeClusteredGraph(10, 9, 1.0, 50, 0.1, &rng);
  EXPECT_EQ(g.num_vertices(), 90u);
  // Each cluster is a 9-clique: 10 * 36 intra edges at least.
  EXPECT_GE(g.num_edges(), 360u);
}

struct TestbedCase {
  int clusters;
  int cluster_size;
  int servers;
  uint64_t seed;
};

class TheoremOneTest : public ::testing::TestWithParam<TestbedCase> {};

TEST_P(TheoremOneTest, MonotoneCostAndConvergence) {
  const TestbedCase tc = GetParam();
  Rng rng(tc.seed);
  WeightedGraph g = MakeClusteredGraph(tc.clusters, tc.cluster_size, 1.0,
                                       tc.clusters * 2, 0.05, &rng);
  PairwiseConfig config;
  config.candidate_set_size = 16;
  config.balance_delta = tc.cluster_size;  // one cluster of slack
  PartitionTestbed bed(&g, tc.servers, config, tc.seed);

  double prev_cost = bed.Cost();
  for (int sweep = 0; sweep < 200; sweep++) {
    int moved = 0;
    for (ServerId p = 0; p < bed.num_servers(); p++) {
      moved += bed.RunRound(p);
      const double cost = bed.Cost();
      EXPECT_LE(cost, prev_cost + 1e-9) << "cost increased at sweep " << sweep;
      prev_cost = cost;
    }
    // Balance invariant holds at every step.
    EXPECT_LE(bed.MaxImbalance(), config.balance_delta);
    if (moved == 0) {
      break;
    }
  }
  EXPECT_TRUE(bed.IsLocallyOptimal());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, TheoremOneTest,
    ::testing::Values(TestbedCase{8, 6, 3, 11}, TestbedCase{12, 9, 4, 22},
                      TestbedCase{20, 5, 5, 33}, TestbedCase{6, 12, 2, 44}));

TEST(PartitionTestbedTest, ClusteredGraphReachesLowCut) {
  // With clusters of size 9 and servers holding multiples of 9 vertices,
  // the algorithm should co-locate nearly every cluster: residual cut is
  // dominated by the random inter-cluster edges.
  Rng rng(7);
  WeightedGraph g = MakeClusteredGraph(24, 9, 1.0, 0, 1.0, &rng);
  PairwiseConfig config;
  config.candidate_set_size = 32;
  config.balance_delta = 18;
  PartitionTestbed bed(&g, 4, config, 7);
  const double initial = bed.Cost();
  bed.RunToConvergence(500);
  const double final_cost = bed.Cost();
  // Random placement across 4 servers cuts ~3/4 of all edges; after
  // convergence almost everything should be internal.
  EXPECT_LT(final_cost, initial * 0.15);
}

TEST(PartitionTestbedTest, BalanceMaintainedOnSkewedGraph) {
  // A graph with one giant hub cluster tempts the partitioner to pile
  // everything on one server; δ must prevent that.
  WeightedGraph g;
  for (VertexId v = 2; v <= 200; v++) {
    g.AddEdge(1, v, 10.0);
  }
  PairwiseConfig config;
  config.candidate_set_size = 64;
  config.balance_delta = 10;
  PartitionTestbed bed(&g, 4, config, 3);
  bed.RunToConvergence(200);
  EXPECT_LE(bed.MaxImbalance(), 10);
}

TEST(PartitionTestbedTest, ConvergedStateIsStable) {
  Rng rng(5);
  WeightedGraph g = MakeClusteredGraph(10, 6, 1.0, 20, 0.1, &rng);
  PairwiseConfig config;
  config.candidate_set_size = 16;
  config.balance_delta = 12;
  PartitionTestbed bed(&g, 3, config, 5);
  bed.RunToConvergence(300);
  const double cost = bed.Cost();
  const int64_t migrations = bed.total_migrations();
  // Further sweeps change nothing.
  for (ServerId p = 0; p < bed.num_servers(); p++) {
    EXPECT_EQ(bed.RunRound(p), 0);
  }
  EXPECT_DOUBLE_EQ(bed.Cost(), cost);
  EXPECT_EQ(bed.total_migrations(), migrations);
}

TEST(PartitionTestbedTest, DeterministicForSeed) {
  Rng rng1(9);
  WeightedGraph g1 = MakeClusteredGraph(8, 6, 1.0, 10, 0.2, &rng1);
  Rng rng2(9);
  WeightedGraph g2 = MakeClusteredGraph(8, 6, 1.0, 10, 0.2, &rng2);
  PairwiseConfig config;
  config.candidate_set_size = 8;
  config.balance_delta = 8;
  PartitionTestbed a(&g1, 3, config, 123);
  PartitionTestbed b(&g2, 3, config, 123);
  a.RunToConvergence(100);
  b.RunToConvergence(100);
  EXPECT_DOUBLE_EQ(a.Cost(), b.Cost());
  EXPECT_EQ(a.total_migrations(), b.total_migrations());
}

TEST(PartitionTestbedTest, InsertionOrderDoesNotAffectDecisions) {
  // The testbed's planning order is canonical (ascending vertex id via
  // SampledMembers), so two graphs with identical topology but different
  // edge-insertion orders must produce byte-identical runs. Weights are
  // dyadic so per-vertex summation order cannot perturb any score either.
  Rng rng(31);
  std::vector<std::tuple<VertexId, VertexId, double>> edges;
  for (int c = 0; c < 12; c++) {
    for (int i = 0; i < 6; i++) {
      for (int j = i + 1; j < 6; j++) {
        edges.emplace_back(c * 6 + i + 1, c * 6 + j + 1, 1.0);
      }
    }
  }
  for (int e = 0; e < 60; e++) {
    const auto a = static_cast<VertexId>(rng.NextInt(1, 72));
    const auto b = static_cast<VertexId>(rng.NextInt(1, 72));
    if (a != b) {
      edges.emplace_back(a, b, 0.25);
    }
  }
  WeightedGraph forward;
  for (const auto& [a, b, w] : edges) {
    forward.AddEdge(a, b, w);
  }
  WeightedGraph shuffled;
  std::vector<size_t> order(edges.size());
  std::iota(order.begin(), order.end(), size_t{0});
  for (size_t i = order.size(); i > 1; i--) {
    std::swap(order[i - 1], order[rng.NextBounded(i)]);
  }
  for (size_t idx : order) {
    const auto& [a, b, w] = edges[idx];
    shuffled.AddEdge(b, a, w);  // also flip endpoints: the graph is symmetric
  }

  PairwiseConfig config;
  config.candidate_set_size = 8;
  config.balance_delta = 6;
  PartitionTestbed x(&forward, 4, config, 55);
  PartitionTestbed y(&shuffled, 4, config, 55);
  for (int sweep = 0; sweep < 40; sweep++) {
    int moved = 0;
    for (ServerId p = 0; p < 4; p++) {
      const int mx = x.RunRound(p);
      ASSERT_EQ(mx, y.RunRound(p)) << "sweep " << sweep << " server " << p;
      moved += mx;
    }
    for (VertexId v = 1; v <= 72; v++) {
      ASSERT_EQ(x.LocationOf(v), y.LocationOf(v)) << "sweep " << sweep;
    }
    ASSERT_EQ(x.Cost(), y.Cost()) << "sweep " << sweep;
    if (moved == 0) {
      break;
    }
  }
  EXPECT_EQ(x.total_migrations(), y.total_migrations());
}

TEST(PartitionTestbedTest, SampledMembersAreSortedPerServer) {
  Rng rng(41);
  WeightedGraph g = MakeRandomGraph(120, 400, 1.0, &rng);
  PairwiseConfig config;
  PartitionTestbed bed(&g, 5, config, 7);
  for (ServerId p = 0; p < 5; p++) {
    const auto members = bed.SampledMembers(p);
    EXPECT_TRUE(std::is_sorted(members.begin(), members.end())) << "server " << p;
  }
}

TEST(PartitionTestbedTest, UnilateralConvergesSlowerOrWorse) {
  // §4.2: unilateral migration converges slower and yields higher cost or
  // imbalance than the pairwise protocol. Compare both on the same graph.
  Rng rng(13);
  WeightedGraph g = MakeClusteredGraph(16, 8, 1.0, 30, 0.2, &rng);
  PairwiseConfig config;
  config.candidate_set_size = 24;
  config.balance_delta = 16;

  PartitionTestbed pairwise(&g, 4, config, 77);
  pairwise.RunToConvergence(300);

  PartitionTestbed unilateral(&g, 4, config, 77);
  for (int sweep = 0; sweep < 300; sweep++) {
    if (unilateral.RunUnilateralSweep() == 0) {
      break;
    }
  }
  const bool worse_cost = unilateral.Cost() > pairwise.Cost() * 1.05;
  const bool worse_balance = unilateral.MaxImbalance() > pairwise.MaxImbalance();
  const bool more_migrations = unilateral.total_migrations() > pairwise.total_migrations();
  EXPECT_TRUE(worse_cost || worse_balance || more_migrations);
}

TEST(PartitionTestbedTest, ServerSizesSumToVertexCount) {
  Rng rng(21);
  WeightedGraph g = MakeRandomGraph(100, 300, 2.0, &rng);
  PairwiseConfig config;
  PartitionTestbed bed(&g, 5, config, 2);
  bed.RunToConvergence(100);
  const auto sizes = bed.ServerSizes();
  const int64_t total = std::accumulate(sizes.begin(), sizes.end(), int64_t{0});
  EXPECT_EQ(total, static_cast<int64_t>(g.num_vertices()));
}

}  // namespace
}  // namespace actop
