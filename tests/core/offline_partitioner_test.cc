#include "src/core/offline_partitioner.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "src/common/rng.h"
#include "src/core/partition_testbed.h"

namespace actop {
namespace {

TEST(OfflinePartitionerTest, AssignsEveryVertex) {
  Rng rng(1);
  WeightedGraph g = MakeRandomGraph(50, 150, 1.0, &rng);
  const auto result = OfflinePartition(g, 4, 4);
  EXPECT_EQ(result.assignment.size(), g.num_vertices());
  for (const auto& [v, s] : result.assignment) {
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 4);
  }
}

TEST(OfflinePartitionerTest, BalanceWithinDelta) {
  Rng rng(2);
  WeightedGraph g = MakeRandomGraph(101, 400, 1.0, &rng);
  const int64_t delta = 6;
  const auto result = OfflinePartition(g, 4, delta);
  std::vector<int64_t> sizes(4, 0);
  for (const auto& [v, s] : result.assignment) {
    sizes[static_cast<size_t>(s)]++;
  }
  const auto [mn, mx] = std::minmax_element(sizes.begin(), sizes.end());
  // Initial BFS growth targets ceil(n/servers); refinement moves respect
  // delta. Allow the BFS rounding slack of 1 on top.
  EXPECT_LE(*mx - *mn, delta + 1);
}

TEST(OfflinePartitionerTest, SeparatesObviousClusters) {
  // Two disjoint cliques on two servers must be split cleanly: zero cut.
  WeightedGraph g;
  for (VertexId a = 1; a <= 8; a++) {
    for (VertexId b = a + 1; b <= 8; b++) {
      g.AddEdge(a, b, 1.0);
      g.AddEdge(a + 100, b + 100, 1.0);
    }
  }
  const auto result = OfflinePartition(g, 2, 2);
  EXPECT_DOUBLE_EQ(result.cut_cost, 0.0);
}

TEST(OfflinePartitionerTest, BeatsRandomAssignment) {
  Rng rng(3);
  WeightedGraph g = MakeClusteredGraph(20, 8, 1.0, 60, 0.3, &rng);
  const auto result = OfflinePartition(g, 4, 16);
  // Random baseline cut.
  std::unordered_map<VertexId, ServerId> random_assignment;
  Rng assign_rng(4);
  for (VertexId v : g.Vertices()) {
    random_assignment[v] = static_cast<ServerId>(assign_rng.NextBounded(4));
  }
  const double random_cut = CutCost(g.adjacency(), random_assignment);
  EXPECT_LT(result.cut_cost, random_cut * 0.5);
}

TEST(OfflinePartitionerTest, QualityComparableToDistributed) {
  // The distributed algorithm should land within ~2x of the centralized
  // baseline on clustered graphs (it has the same local-move structure).
  Rng rng(5);
  WeightedGraph g = MakeClusteredGraph(16, 9, 1.0, 40, 0.2, &rng);
  const auto offline = OfflinePartition(g, 4, 18);

  PairwiseConfig config;
  config.candidate_set_size = 32;
  config.balance_delta = 18;
  PartitionTestbed bed(&g, 4, config, 6);
  bed.RunToConvergence(300);

  EXPECT_LT(bed.Cost(), std::max(offline.cut_cost, 1.0) * 2.0 + 20.0);
}

TEST(OfflinePartitionerTest, TerminatesWithinPassLimit) {
  Rng rng(6);
  WeightedGraph g = MakeRandomGraph(200, 600, 1.0, &rng);
  const auto result = OfflinePartition(g, 4, 8, /*max_passes=*/5);
  EXPECT_LE(result.refinement_passes, 5);
}

}  // namespace
}  // namespace actop
