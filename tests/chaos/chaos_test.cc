// Deterministic chaos harness: seed-driven fault schedules + cluster-wide
// invariant checks.
//
// Each seed fully determines one chaos run — traffic, fault schedule, and
// event interleaving — so a failing seed replays byte-for-byte. Seeds are
// split across four scenario shapes (seed % 4):
//
//   0  migration storm   forced migrations + directory churn, lossless
//                        network; strict accounting (every reply arrives,
//                        every call handled exactly once).
//   1  full chaos        crashes, drops, delays (reordering), churn, forced
//                        migrations; conservation accounting (every call
//                        terminates exactly once, no duplicated/fabricated
//                        replies).
//   2  partition racing  partition agents on a fast exchange period racing
//                        forced migrations and delayed control messages;
//                        strict accounting through a relay -> echo call graph.
//   3  partition balance delayed exchange messages (stale views); the
//                        partitioner must respect the balance constraint
//                        delta throughout.
//
// All scenarios run the instant invariants (single activation, directory /
// cache structure) every few hundred events, and the quiescent coherence
// check (every activation registered at its host) after the system drains.
//
// Run a long soak with: chaos_test --chaos_seeds=N (sweeps N extra seeds).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/common/sim_time.h"
#include "src/runtime/cluster.h"
#include "src/sim/simulation.h"
#include "src/testing/chaos.h"
#include "src/testing/chaos_client.h"
#include "src/testing/invariants.h"
#include "tests/runtime/test_actors.h"

namespace actop {
namespace {

// Extra seeds requested on the command line (--chaos_seeds=N).
int g_soak_seeds = 0;

constexpr int kServers = 6;
constexpr uint64_t kEchoActors = 96;
constexpr uint64_t kRelayActors = 48;
constexpr SimTime kFaultsStart = Seconds(1);
constexpr SimTime kFaultsEnd = Seconds(7);
constexpr SimTime kTrafficEnd = Seconds(8);
// Long enough for client timeouts (6s), server call timeouts (3s), and
// parked-call re-resolution to drain after the last fault.
constexpr SimTime kDrainEnd = Seconds(30);

struct ChaosRunResult {
  uint64_t seed = 0;
  int scenario = 0;
  std::string report;
  uint64_t instant_violations = 0;
  std::vector<std::string> quiescent;
  std::vector<std::string> balance;  // scenario 3 only
  uint64_t issued = 0;
  uint64_t succeeded = 0;
  uint64_t timed_out = 0;
  uint64_t duplicates = 0;
  uint64_t unknown = 0;
  bool settled = false;
  uint64_t echo_calls = 0;
  int relay_failed_subcalls = 0;
  uint64_t faults_injected = 0;
  uint64_t checks_run = 0;
};

uint64_t SumEchoCalls(Cluster& cluster) {
  uint64_t total = 0;
  for (uint64_t k = 1; k <= kEchoActors; k++) {
    const ActorId id = MakeActorId(kEchoType, k);
    if (cluster.HasActorState(id)) {
      total += static_cast<uint64_t>(static_cast<EchoActor*>(cluster.GetOrCreateActor(id))->calls());
    }
  }
  return total;
}

int SumRelayFailedSubcalls(Cluster& cluster) {
  int total = 0;
  for (uint64_t k = 1; k <= kRelayActors; k++) {
    const ActorId id = MakeActorId(kRelayType, k);
    if (cluster.HasActorState(id)) {
      total += static_cast<RelayActor*>(cluster.GetOrCreateActor(id))->failed_subcalls();
    }
  }
  return total;
}

// Builds and runs one full chaos scenario for `seed`. See the file comment
// for the scenario shapes. `shards` selects the construction: 0 is the
// historical serial path (plain Simulation + serial Cluster constructor),
// 1 is the sharded engine collapsed to one shard (must behave byte-
// identically to 0), and > 1 runs the cluster partitioned across shards
// under conservative time-window synchronization.
ChaosRunResult RunChaosScenario(uint64_t seed, int shards = 0) {
  const int scenario = static_cast<int>(seed % 4);
  const bool partitioning = scenario == 2 || scenario == 3;

  ClusterConfig cfg{.num_servers = kServers, .seed = SplitMix64(seed)};
  cfg.server.call_timeout = Seconds(3);
  if (partitioning) {
    cfg.enable_partitioning = true;
    cfg.partition.exchange_period = Millis(500);
    cfg.partition.exchange_min_gap = Millis(500);
    cfg.partition.pairwise.candidate_set_size = 16;
    cfg.partition.pairwise.balance_delta = 16;
  }

  std::unique_ptr<Simulation> serial_sim;
  std::unique_ptr<ShardedEngine> engine;
  std::unique_ptr<Cluster> cluster_ptr;
  if (shards == 0) {
    serial_sim = std::make_unique<Simulation>();
    cluster_ptr = std::make_unique<Cluster>(serial_sim.get(), cfg);
  } else {
    ShardedEngineConfig ec;
    ec.shards = shards;
    ec.lookahead = cfg.network.one_way_latency;
    engine = std::make_unique<ShardedEngine>(ec);
    cluster_ptr = std::make_unique<Cluster>(engine.get(), cfg);
  }
  Cluster& cluster = *cluster_ptr;
  Simulation& sim = engine != nullptr ? engine->sim() : *serial_sim;
  const bool parallel = engine != nullptr && engine->parallel();
  auto run_until = [&](SimTime t) {
    if (engine != nullptr) {
      engine->RunUntil(t);
    } else {
      sim.RunUntil(t);
    }
  };
  RegisterTestActors(&cluster);

  ChaosConfig chaos_cfg;
  chaos_cfg.seed = seed;
  chaos_cfg.faults_start = kFaultsStart;
  chaos_cfg.faults_end = kFaultsEnd;
  chaos_cfg.check_every_events = 512;
  switch (scenario) {
    case 0:  // migration storm
      chaos_cfg.forced_migrations_per_tick = 3;
      chaos_cfg.directory_churn_prob = 0.2;
      break;
    case 1:  // full chaos
      chaos_cfg.crash_prob = 0.03;
      chaos_cfg.drop_prob = 0.02;
      chaos_cfg.delay_prob = 0.10;
      chaos_cfg.directory_churn_prob = 0.1;
      chaos_cfg.forced_migrations_per_tick = 2;
      chaos_cfg.fault_client_links = true;
      break;
    case 2:  // partition racing
      chaos_cfg.forced_migrations_per_tick = 2;
      chaos_cfg.delay_prob = 0.15;
      break;
    case 3:  // partition balance
      chaos_cfg.delay_prob = 0.15;
      break;
  }
  std::unique_ptr<ChaosController> chaos_ptr;
  if (engine != nullptr) {
    chaos_ptr = std::make_unique<ChaosController>(engine.get(), &cluster, chaos_cfg);
  } else {
    chaos_ptr = std::make_unique<ChaosController>(&sim, &cluster, chaos_cfg);
  }
  ChaosController& chaos = *chaos_ptr;

  ChaosClientConfig client_cfg;
  client_cfg.seed = SplitMix64(seed ^ 0xc11e47ULL);
  ChaosClient client(&sim, &cluster, client_cfg);

  // Traffic: one call every 2 ms until kTrafficEnd. Scenarios without
  // partitioning call echo actors directly; partitioned scenarios call
  // relays that fan one sub-call out to a correlated echo actor (the
  // actor-to-actor edges the partitioner optimizes).
  Rng traffic_rng(SplitMix64(seed ^ 0x7247ULL));
  sim.SchedulePeriodic(Millis(2), [&] {
    if (sim.now() > kTrafficEnd) {
      return;
    }
    if (partitioning) {
      const uint64_t r = traffic_rng.NextBounded(kRelayActors) + 1;
      // Each relay talks to a fixed pair of echo actors: repeated edges give
      // the Space-Saving sampler something to find.
      const uint64_t e = r * 2 - traffic_rng.NextBounded(2);
      client.Call(MakeActorId(kRelayType, r), 0, MakeActorId(kEchoType, e));
    } else {
      client.Call(MakeActorId(kEchoType, traffic_rng.NextBounded(kEchoActors) + 1), 1);
    }
  });

  ChaosRunResult result;
  result.seed = seed;
  result.scenario = scenario;

  // Scenario 3: sample the balance invariant during the run. The window is
  // anchored at the spread the run starts from — the partitioner may not
  // get every server inside [target - delta/2, target + delta/2], but it
  // must never push the cluster further out. Slack covers mid-migration
  // activations (deactivated at the source, not yet re-activated).
  int64_t initial_spread = 0;
  if (scenario == 3) {
    auto snapshot_spread = [&] { initial_spread = ActivationSpread(cluster); };
    auto balance_check = [&] {
      const int64_t delta = cfg.partition.pairwise.balance_delta;
      const int64_t slack = std::max<int64_t>(initial_spread, 2 * delta);
      for (std::string& v : chaos.checker().CheckBalance(delta, slack)) {
        result.balance.push_back(std::move(v));
      }
    };
    if (parallel) {
      // Balance checks read every server's activation count — a cross-shard
      // cut, so in parallel mode they run on the coordinator rail at the
      // same cadence the serial periodic uses.
      engine->ScheduleRailAt(kFaultsStart, snapshot_spread);
      for (SimTime at = Millis(100); at <= kTrafficEnd; at += Millis(100)) {
        engine->ScheduleRailAt(at, balance_check);
      }
    } else {
      sim.ScheduleAt(kFaultsStart, snapshot_spread);
      sim.SchedulePeriodic(Millis(100), [&, balance_check] {
        if (sim.now() > kTrafficEnd) {
          return;
        }
        balance_check();
      });
    }
  }

  chaos.Start();
  cluster.StartOptimizers();
  run_until(kTrafficEnd);
  // Quiescent checks need migrations to stop: halt the exchange protocol
  // before draining.
  for (int s = 0; s < kServers; s++) {
    if (cluster.partition_agent(s) != nullptr) {
      cluster.partition_agent(s)->Stop();
    }
  }
  run_until(kDrainEnd);

  result.instant_violations = chaos.total_violations();
  result.checks_run = chaos.checker().checks_run();
  result.quiescent = chaos.checker().CheckQuiescent();
  result.report = chaos.FailureReport();
  result.faults_injected = chaos.crashes() + chaos.shard_churns() + chaos.forced_migrations() +
                           chaos.dropped_messages() + chaos.delayed_messages();
  chaos.Stop();

  result.issued = client.issued();
  result.succeeded = client.succeeded();
  result.timed_out = client.timed_out();
  result.duplicates = client.duplicate_responses();
  result.unknown = client.unknown_responses();
  result.settled = client.Settled();
  result.echo_calls = SumEchoCalls(cluster);
  result.relay_failed_subcalls = SumRelayFailedSubcalls(cluster);
  return result;
}

// Asserts the invariants appropriate for the result's scenario. On any
// failure the gtest message carries the full reproduction report.
void ExpectInvariantsHold(const ChaosRunResult& r) {
  SCOPED_TRACE(r.report);
  EXPECT_GT(r.issued, 1000u);
  EXPECT_GT(r.faults_injected, 0u) << "scenario injected no faults";
  EXPECT_GT(r.checks_run, 50u);

  // Invariants (a) + (c) structural, every few hundred events.
  EXPECT_EQ(r.instant_violations, 0u);
  // Invariant (c) at quiescence: every activation registered at its host.
  EXPECT_TRUE(r.quiescent.empty()) << r.quiescent.front();

  // Invariant (b): every call reached exactly one terminal outcome, and no
  // reply was duplicated or fabricated.
  EXPECT_TRUE(r.settled);
  EXPECT_EQ(r.issued, r.succeeded + r.timed_out);
  EXPECT_EQ(r.duplicates, 0u);
  EXPECT_EQ(r.unknown, 0u);

  switch (r.scenario) {
    case 0:  // lossless network: nothing may time out, every call handled once
      EXPECT_EQ(r.succeeded, r.issued);
      EXPECT_EQ(r.echo_calls, r.issued);
      break;
    case 1:  // lossy: timeouts allowed, conservation already checked above
      break;
    case 2:  // lossless + relays: one echo sub-call per client call
      EXPECT_EQ(r.succeeded, r.issued);
      EXPECT_EQ(r.echo_calls, r.issued);
      EXPECT_EQ(r.relay_failed_subcalls, 0);
      break;
    case 3:  // invariant (d)
      EXPECT_TRUE(r.balance.empty()) << r.balance.front();
      break;
  }
}

class ChaosSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosSeedTest, InvariantsHoldUnderFaults) {
  ExpectInvariantsHold(RunChaosScenario(GetParam()));
}

// ~100 seeds, 25 per scenario shape, inside the tier-1 budget (ctest runs
// each seed as its own test, so the sweep parallelizes).
INSTANTIATE_TEST_SUITE_P(Sweep, ChaosSeedTest, ::testing::Range<uint64_t>(1, 101));

// A failing seed must reproduce byte-for-byte: same seed, same counters,
// same fault schedule, same report text.
TEST(ChaosDeterminismTest, SameSeedSameRun) {
  for (uint64_t seed : {5ull, 42ull}) {
    const ChaosRunResult a = RunChaosScenario(seed);
    const ChaosRunResult b = RunChaosScenario(seed);
    EXPECT_EQ(a.report, b.report) << "seed " << seed;
    EXPECT_EQ(a.issued, b.issued);
    EXPECT_EQ(a.succeeded, b.succeeded);
    EXPECT_EQ(a.timed_out, b.timed_out);
    EXPECT_EQ(a.echo_calls, b.echo_calls);
  }
}

// The sharded engine collapsed to one shard must reproduce the serial
// construction byte-for-byte: same fault schedule, same report text, same
// client counters (the --shards=1 bit-compatibility contract).
TEST(ChaosDeterminismTest, EngineWithOneShardMatchesSerial) {
  // One seed per scenario shape (seed % 4).
  for (uint64_t seed : {4ull, 5ull, 42ull, 7ull}) {
    const ChaosRunResult serial = RunChaosScenario(seed, /*shards=*/0);
    const ChaosRunResult sharded = RunChaosScenario(seed, /*shards=*/1);
    EXPECT_EQ(serial.report, sharded.report) << "seed " << seed;
    EXPECT_EQ(serial.issued, sharded.issued);
    EXPECT_EQ(serial.succeeded, sharded.succeeded);
    EXPECT_EQ(serial.timed_out, sharded.timed_out);
    EXPECT_EQ(serial.echo_calls, sharded.echo_calls);
    EXPECT_EQ(serial.faults_injected, sharded.faults_injected);
    EXPECT_EQ(serial.checks_run, sharded.checks_run);
  }
}

// Parallel mode is deterministic for a fixed shard count: same seed, same
// shard count => same counters and same fault schedule.
TEST(ChaosDeterminismTest, ParallelSameSeedSameRun) {
  for (uint64_t seed : {5ull, 6ull}) {
    const ChaosRunResult a = RunChaosScenario(seed, /*shards=*/4);
    const ChaosRunResult b = RunChaosScenario(seed, /*shards=*/4);
    EXPECT_EQ(a.report, b.report) << "seed " << seed;
    EXPECT_EQ(a.issued, b.issued);
    EXPECT_EQ(a.succeeded, b.succeeded);
    EXPECT_EQ(a.timed_out, b.timed_out);
    EXPECT_EQ(a.echo_calls, b.echo_calls);
    EXPECT_EQ(a.faults_injected, b.faults_injected);
  }
}

// The 100-seed sweep again, with the cluster partitioned across 4 shards and
// the invariant checkers live on the coordinator rail: the conservative-
// window parallel core must hold every invariant under the same fault
// schedules the serial engine survives.
class ChaosParallelSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosParallelSeedTest, InvariantsHoldUnderFaultsAtFourShards) {
  ExpectInvariantsHold(RunChaosScenario(GetParam(), /*shards=*/4));
}

INSTANTIATE_TEST_SUITE_P(ParallelSweep, ChaosParallelSeedTest, ::testing::Range<uint64_t>(1, 101));

// Guarded bug-injection demo: force a duplicate activation mid-run and prove
// the harness (1) catches it and (2) prints the seed needed to replay it.
TEST(ChaosBugDemoTest, InjectedDuplicateActivationIsCaught) {
  constexpr uint64_t kSeed = 77;
  Simulation sim;
  ClusterConfig cfg{.num_servers = kServers, .seed = SplitMix64(kSeed)};
  Cluster cluster(&sim, cfg);
  RegisterTestActors(&cluster);

  ChaosConfig chaos_cfg;
  chaos_cfg.seed = kSeed;
  chaos_cfg.faults_start = Millis(500);
  chaos_cfg.faults_end = Seconds(2);
  chaos_cfg.check_every_events = 64;
  chaos_cfg.duplication_bug_actor = MakeActorId(kEchoType, 7);
  ChaosController chaos(&sim, &cluster, chaos_cfg);

  ChaosClient client(&sim, &cluster, ChaosClientConfig{.seed = 3});
  Rng rng(9);
  sim.SchedulePeriodic(Millis(5), [&] {
    if (sim.now() > Seconds(2)) {
      return;
    }
    client.Call(MakeActorId(kEchoType, rng.NextBounded(kEchoActors) + 1), 1);
  });

  chaos.Start();
  sim.RunUntil(Seconds(3));

  EXPECT_GT(chaos.total_violations(), 0u);
  ASSERT_FALSE(chaos.violations().empty());
  EXPECT_NE(chaos.violations().front().find("duplicate activation"), std::string::npos)
      << chaos.violations().front();
  // The report names the seed and the injected fault so the run can be
  // replayed exactly.
  const std::string report = chaos.FailureReport();
  EXPECT_NE(report.find("seed 77"), std::string::npos) << report;
  EXPECT_NE(report.find("BUG DEMO"), std::string::npos) << report;
  std::fprintf(stderr, "%s", report.c_str());
  chaos.Stop();
}

// Soak entry point: chaos_test --chaos_seeds=N sweeps N extra seeds beyond
// the checked-in range. N=0 (the default) makes this a no-op.
TEST(ChaosSoakTest, ExtraSeeds) {
  if (g_soak_seeds <= 0) {
    GTEST_SKIP() << "pass --chaos_seeds=N for a soak run";
  }
  for (int i = 0; i < g_soak_seeds; i++) {
    const uint64_t seed = 1000 + static_cast<uint64_t>(i);
    SCOPED_TRACE("soak seed " + std::to_string(seed));
    ExpectInvariantsHold(RunChaosScenario(seed));
    if ((i + 1) % 25 == 0) {
      std::fprintf(stderr, "soak: %d/%d seeds clean\n", i + 1, g_soak_seeds);
    }
  }
}

}  // namespace
}  // namespace actop

int main(int argc, char** argv) {
  // Strip our flag before gtest parses the rest.
  for (int i = 1; i < argc; i++) {
    if (std::strncmp(argv[i], "--chaos_seeds=", 14) == 0) {
      actop::g_soak_seeds = std::atoi(argv[i] + 14);
      for (int j = i; j + 1 < argc; j++) {
        argv[j] = argv[j + 1];
      }
      argc--;
      i--;
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
