// Validates the SEDA substrate against queueing theory: with Poisson
// arrivals, exponential service, one thread and no CPU contention, a Stage
// is an M/M/1 queue and its mean sojourn time must match 1/(µ−λ). This
// anchors the simulator to the analytical model the thread allocator
// optimizes (§5.3's proxy objective), closing the loop between the two.

#include <gtest/gtest.h>

#include <tuple>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/seda/cpu.h"
#include "src/seda/stage.h"
#include "src/sim/simulation.h"

namespace actop {
namespace {

// (arrival rate per second, service rate per second)
class MM1Test : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(MM1Test, MeanSojournMatchesTheory) {
  const auto [lambda, mu] = GetParam();
  ASSERT_LT(lambda, mu);
  Simulation sim;
  // Plenty of cores: no processor sharing, no quantum — pure M/M/1.
  CpuModel cpu(&sim, 64, 0.0);
  Stage stage(&sim, &cpu, "mm1", /*threads=*/1);

  Rng rng(42);
  OnlineStats sojourn;
  std::function<void()> arrive = [&] {
    const SimTime arrival = sim.now();
    StageEvent ev;
    ev.compute = rng.NextExpDuration(static_cast<SimDuration>(1e9 / mu));
    ev.done = [&sojourn, &sim, arrival] {
      sojourn.Add(static_cast<double>(sim.now() - arrival));
    };
    stage.Enqueue(std::move(ev));
    sim.ScheduleAfter(rng.NextExpDuration(static_cast<SimDuration>(1e9 / lambda)), arrive);
  };
  sim.ScheduleAfter(1, arrive);
  sim.RunUntil(Seconds(400));

  const double expected_ns = 1e9 / (mu - lambda);
  ASSERT_GT(sojourn.count(), 1000u);
  // M/M/1 sojourn variance is large; 400 simulated seconds keeps the sample
  // mean within ~8% at these loads.
  EXPECT_NEAR(sojourn.mean(), expected_ns, expected_ns * 0.08)
      << "lambda=" << lambda << " mu=" << mu;
}

INSTANTIATE_TEST_SUITE_P(Loads, MM1Test,
                         ::testing::Values(std::make_tuple(100.0, 200.0),    // rho = 0.5
                                           std::make_tuple(300.0, 400.0),    // rho = 0.75
                                           std::make_tuple(450.0, 500.0),    // rho = 0.9
                                           std::make_tuple(1000.0, 4000.0)   // rho = 0.25
                                           ));

TEST(QueueingTheoryTest, MMcWaitLessThanMM1AtSameLoad) {
  // Same total capacity split across 4 threads must reduce waiting versus a
  // single fast server... no: M/M/c with slower servers waits MORE than one
  // fast M/M/1 at equal utilization — but MUCH less than one SLOW server.
  // Validate the second (unambiguous) relation.
  auto mean_sojourn = [](int threads, double mu_per_thread, double lambda) {
    Simulation sim;
    CpuModel cpu(&sim, 64, 0.0);
    Stage stage(&sim, &cpu, "mmc", threads);
    Rng rng(7);
    OnlineStats sojourn;
    std::function<void()> arrive = [&] {
      const SimTime arrival = sim.now();
      StageEvent ev;
      ev.compute = rng.NextExpDuration(static_cast<SimDuration>(1e9 / mu_per_thread));
      ev.done = [&sojourn, &sim, arrival] {
        sojourn.Add(static_cast<double>(sim.now() - arrival));
      };
      stage.Enqueue(std::move(ev));
      sim.ScheduleAfter(rng.NextExpDuration(static_cast<SimDuration>(1e9 / lambda)), arrive);
    };
    sim.ScheduleAfter(1, arrive);
    sim.RunUntil(Seconds(150));
    return sojourn.mean();
  };
  // 4 threads at µ=250/s each (capacity 1000/s) vs 1 thread at µ=250/s,
  // both at λ=600/s: the single thread is unstable, the pool is fine.
  const double pooled = mean_sojourn(4, 250.0, 600.0);
  const double single = mean_sojourn(1, 250.0, 600.0);
  EXPECT_LT(pooled, single * 0.2);
}

TEST(QueueingTheoryTest, JacksonTandemSumsStageDelays) {
  // Two M/M/1 stages in tandem: by Jackson's theorem the end-to-end mean is
  // the sum of the per-stage means — the additivity assumption behind the
  // paper's proxy objective (equation (1)).
  Simulation sim;
  CpuModel cpu(&sim, 64, 0.0);
  Stage first(&sim, &cpu, "a", 1);
  Stage second(&sim, &cpu, "b", 1);
  Rng rng(9);
  OnlineStats e2e;
  const double lambda = 400.0;
  const double mu1 = 700.0;
  const double mu2 = 900.0;
  std::function<void()> arrive = [&] {
    const SimTime arrival = sim.now();
    StageEvent ev1;
    ev1.compute = rng.NextExpDuration(static_cast<SimDuration>(1e9 / mu1));
    ev1.done = [&, arrival] {
      StageEvent ev2;
      ev2.compute = rng.NextExpDuration(static_cast<SimDuration>(1e9 / mu2));
      ev2.done = [&, arrival] { e2e.Add(static_cast<double>(sim.now() - arrival)); };
      second.Enqueue(std::move(ev2));
    };
    first.Enqueue(std::move(ev1));
    sim.ScheduleAfter(rng.NextExpDuration(static_cast<SimDuration>(1e9 / lambda)), arrive);
  };
  sim.ScheduleAfter(1, arrive);
  sim.RunUntil(Seconds(300));

  const double expected = 1e9 / (mu1 - lambda) + 1e9 / (mu2 - lambda);
  EXPECT_NEAR(e2e.mean(), expected, expected * 0.08);
}

}  // namespace
}  // namespace actop
