#include "src/seda/cpu.h"

#include <gtest/gtest.h>

#include "src/common/sim_time.h"
#include "src/sim/simulation.h"

namespace actop {
namespace {

TEST(CpuModelTest, SingleJobTakesItsDemand) {
  Simulation sim;
  CpuModel cpu(&sim, 4, 0.0);
  cpu.set_total_threads(4);
  SimTime done_at = -1;
  cpu.BeginCompute(Millis(10), [&] { done_at = sim.now(); });
  sim.Run();
  EXPECT_EQ(done_at, Millis(10));
}

TEST(CpuModelTest, JobsWithinCoreCountRunInParallel) {
  Simulation sim;
  CpuModel cpu(&sim, 4, 0.0);
  cpu.set_total_threads(4);
  int finished = 0;
  SimTime last = 0;
  for (int i = 0; i < 4; i++) {
    cpu.BeginCompute(Millis(10), [&] {
      finished++;
      last = sim.now();
    });
  }
  sim.Run();
  EXPECT_EQ(finished, 4);
  EXPECT_EQ(last, Millis(10));  // no slowdown: 4 jobs on 4 cores
}

TEST(CpuModelTest, OversubscribedJobsShareCores) {
  Simulation sim;
  CpuModel cpu(&sim, 2, 0.0);
  cpu.set_total_threads(4);
  SimTime last = 0;
  for (int i = 0; i < 4; i++) {
    cpu.BeginCompute(Millis(10), [&] { last = sim.now(); });
  }
  sim.Run();
  // 4 jobs on 2 cores, each progresses at rate 1/2 -> 20 ms.
  EXPECT_EQ(last, Millis(20));
}

TEST(CpuModelTest, OversubscriptionPenaltySlowsJobs) {
  Simulation sim;
  CpuModel cpu(&sim, 2, 0.125);
  // 4 concurrent jobs on 2 cores: share 1/2, efficiency 1/(1+0.125*2) = 0.8
  // -> rate 0.4 -> 10 ms of demand takes 25 ms.
  SimTime last = -1;
  for (int i = 0; i < 4; i++) {
    cpu.BeginCompute(Millis(10), [&] { last = sim.now(); });
  }
  sim.Run();
  EXPECT_EQ(last, Millis(25));
}

TEST(CpuModelTest, NoPenaltyAtOrBelowCoreCount) {
  Simulation sim;
  CpuModel cpu(&sim, 8, 0.5);
  // 8 jobs on 8 cores: no sharing, no over-subscription.
  SimTime last = -1;
  for (int i = 0; i < 8; i++) {
    cpu.BeginCompute(Millis(10), [&] { last = sim.now(); });
  }
  sim.Run();
  EXPECT_EQ(last, Millis(10));
}

TEST(CpuModelTest, IdleAllocatedThreadsCostNothing) {
  Simulation sim;
  CpuModel cpu(&sim, 2, 0.5);
  cpu.set_total_threads(64);  // parked threads do not slow the one active job
  SimTime done_at = -1;
  cpu.BeginCompute(Millis(10), [&] { done_at = sim.now(); });
  sim.Run();
  EXPECT_EQ(done_at, Millis(10));
}

TEST(CpuModelTest, LateArrivalSlowsInFlightJob) {
  Simulation sim;
  CpuModel cpu(&sim, 1, 0.0);
  cpu.set_total_threads(2);
  SimTime first_done = -1;
  SimTime second_done = -1;
  cpu.BeginCompute(Millis(10), [&] { first_done = sim.now(); });
  sim.ScheduleAt(Millis(5), [&] {
    cpu.BeginCompute(Millis(10), [&] { second_done = sim.now(); });
  });
  sim.Run();
  // First job: 5 ms alone + remaining 5 ms at half rate = 15 ms.
  EXPECT_EQ(first_done, Millis(15));
  // Second job: shares until 15 ms (progress 5 ms), then 5 ms alone = 20 ms.
  EXPECT_EQ(second_done, Millis(20));
}

TEST(CpuModelTest, ZeroDemandCompletesImmediately) {
  Simulation sim;
  CpuModel cpu(&sim, 1, 0.0);
  bool done = false;
  cpu.BeginCompute(0, [&] { done = true; });
  EXPECT_FALSE(done);  // asynchronous even for zero cost
  sim.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(sim.now(), 0);
}

TEST(CpuModelTest, BusyAccountingSingleJob) {
  Simulation sim;
  CpuModel cpu(&sim, 4, 0.0);
  cpu.BeginCompute(Millis(10), [] {});
  sim.Run();
  EXPECT_NEAR(cpu.busy_core_nanos(), static_cast<double>(Millis(10)), 1e3);
}

TEST(CpuModelTest, BusyAccountingSaturated) {
  Simulation sim;
  CpuModel cpu(&sim, 2, 0.0);
  cpu.set_total_threads(4);
  for (int i = 0; i < 4; i++) {
    cpu.BeginCompute(Millis(10), [] {});
  }
  sim.Run();
  // 40 ms of demand on 2 cores -> 20 ms wallclock, both cores busy.
  EXPECT_NEAR(cpu.busy_core_nanos(), static_cast<double>(Millis(40)), 1e4);
  EXPECT_EQ(sim.now(), Millis(20));
}

TEST(CpuModelTest, ChainedComputationsFromCallbacks) {
  Simulation sim;
  CpuModel cpu(&sim, 1, 0.0);
  SimTime done_at = -1;
  cpu.BeginCompute(Millis(5), [&] {
    cpu.BeginCompute(Millis(5), [&] { done_at = sim.now(); });
  });
  sim.Run();
  EXPECT_EQ(done_at, Millis(10));
}

TEST(CpuModelTest, ConcurrencyChangeMidJobAppliesPenalty) {
  Simulation sim;
  CpuModel cpu(&sim, 1, 1.0);
  SimTime first_done = -1;
  cpu.BeginCompute(Millis(10), [&] { first_done = sim.now(); });
  // At 5 ms a second job arrives: share 1/2, efficiency 1/(1+1) = 0.5
  // -> each progresses at rate 1/4.
  sim.ScheduleAt(Millis(5), [&] { cpu.BeginCompute(Millis(100), [] {}); });
  sim.Run();
  // First job: 5 ms alone + remaining 5 ms at rate 1/4 = 20 ms more.
  EXPECT_EQ(first_done, Millis(25));
}

// Property sweep: total busy time equals total demand (no work lost or
// duplicated) across job-count / core-count combinations.
class CpuConservationTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CpuConservationTest, WorkIsConserved) {
  const auto [cores, jobs] = GetParam();
  Simulation sim;
  CpuModel cpu(&sim, cores, 0.0);
  cpu.set_total_threads(std::max(cores, jobs));
  int finished = 0;
  for (int i = 0; i < jobs; i++) {
    // Stagger arrivals so the active set changes over time.
    sim.ScheduleAt(Millis(i), [&] { cpu.BeginCompute(Millis(7), [&] { finished++; }); });
  }
  sim.Run();
  EXPECT_EQ(finished, jobs);
  EXPECT_NEAR(cpu.busy_core_nanos(), static_cast<double>(jobs) * Millis(7),
              static_cast<double>(jobs) * 1e4);
}

INSTANTIATE_TEST_SUITE_P(Grid, CpuConservationTest,
                         ::testing::Combine(::testing::Values(1, 2, 8),
                                            ::testing::Values(1, 3, 10, 25)));

}  // namespace
}  // namespace actop
