#include "src/seda/cpu.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/sim/simulation.h"

namespace actop {
namespace {

TEST(CpuModelTest, SingleJobTakesItsDemand) {
  Simulation sim;
  CpuModel cpu(&sim, 4, 0.0);
  cpu.set_total_threads(4);
  SimTime done_at = -1;
  cpu.BeginCompute(Millis(10), [&] { done_at = sim.now(); });
  sim.Run();
  EXPECT_EQ(done_at, Millis(10));
}

TEST(CpuModelTest, JobsWithinCoreCountRunInParallel) {
  Simulation sim;
  CpuModel cpu(&sim, 4, 0.0);
  cpu.set_total_threads(4);
  int finished = 0;
  SimTime last = 0;
  for (int i = 0; i < 4; i++) {
    cpu.BeginCompute(Millis(10), [&] {
      finished++;
      last = sim.now();
    });
  }
  sim.Run();
  EXPECT_EQ(finished, 4);
  EXPECT_EQ(last, Millis(10));  // no slowdown: 4 jobs on 4 cores
}

TEST(CpuModelTest, OversubscribedJobsShareCores) {
  Simulation sim;
  CpuModel cpu(&sim, 2, 0.0);
  cpu.set_total_threads(4);
  SimTime last = 0;
  for (int i = 0; i < 4; i++) {
    cpu.BeginCompute(Millis(10), [&] { last = sim.now(); });
  }
  sim.Run();
  // 4 jobs on 2 cores, each progresses at rate 1/2 -> 20 ms.
  EXPECT_EQ(last, Millis(20));
}

TEST(CpuModelTest, OversubscriptionPenaltySlowsJobs) {
  Simulation sim;
  CpuModel cpu(&sim, 2, 0.125);
  // 4 concurrent jobs on 2 cores: share 1/2, efficiency 1/(1+0.125*2) = 0.8
  // -> rate 0.4 -> 10 ms of demand takes 25 ms.
  SimTime last = -1;
  for (int i = 0; i < 4; i++) {
    cpu.BeginCompute(Millis(10), [&] { last = sim.now(); });
  }
  sim.Run();
  EXPECT_EQ(last, Millis(25));
}

TEST(CpuModelTest, NoPenaltyAtOrBelowCoreCount) {
  Simulation sim;
  CpuModel cpu(&sim, 8, 0.5);
  // 8 jobs on 8 cores: no sharing, no over-subscription.
  SimTime last = -1;
  for (int i = 0; i < 8; i++) {
    cpu.BeginCompute(Millis(10), [&] { last = sim.now(); });
  }
  sim.Run();
  EXPECT_EQ(last, Millis(10));
}

TEST(CpuModelTest, IdleAllocatedThreadsCostNothing) {
  Simulation sim;
  CpuModel cpu(&sim, 2, 0.5);
  cpu.set_total_threads(64);  // parked threads do not slow the one active job
  SimTime done_at = -1;
  cpu.BeginCompute(Millis(10), [&] { done_at = sim.now(); });
  sim.Run();
  EXPECT_EQ(done_at, Millis(10));
}

TEST(CpuModelTest, LateArrivalSlowsInFlightJob) {
  Simulation sim;
  CpuModel cpu(&sim, 1, 0.0);
  cpu.set_total_threads(2);
  SimTime first_done = -1;
  SimTime second_done = -1;
  cpu.BeginCompute(Millis(10), [&] { first_done = sim.now(); });
  sim.ScheduleAt(Millis(5), [&] {
    cpu.BeginCompute(Millis(10), [&] { second_done = sim.now(); });
  });
  sim.Run();
  // First job: 5 ms alone + remaining 5 ms at half rate = 15 ms.
  EXPECT_EQ(first_done, Millis(15));
  // Second job: shares until 15 ms (progress 5 ms), then 5 ms alone = 20 ms.
  EXPECT_EQ(second_done, Millis(20));
}

TEST(CpuModelTest, ZeroDemandCompletesImmediately) {
  Simulation sim;
  CpuModel cpu(&sim, 1, 0.0);
  bool done = false;
  cpu.BeginCompute(0, [&] { done = true; });
  EXPECT_FALSE(done);  // asynchronous even for zero cost
  sim.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(sim.now(), 0);
}

TEST(CpuModelTest, BusyAccountingSingleJob) {
  Simulation sim;
  CpuModel cpu(&sim, 4, 0.0);
  cpu.BeginCompute(Millis(10), [] {});
  sim.Run();
  EXPECT_NEAR(cpu.busy_core_nanos(), static_cast<double>(Millis(10)), 1e3);
}

TEST(CpuModelTest, BusyAccountingSaturated) {
  Simulation sim;
  CpuModel cpu(&sim, 2, 0.0);
  cpu.set_total_threads(4);
  for (int i = 0; i < 4; i++) {
    cpu.BeginCompute(Millis(10), [] {});
  }
  sim.Run();
  // 40 ms of demand on 2 cores -> 20 ms wallclock, both cores busy.
  EXPECT_NEAR(cpu.busy_core_nanos(), static_cast<double>(Millis(40)), 1e4);
  EXPECT_EQ(sim.now(), Millis(20));
}

TEST(CpuModelTest, ChainedComputationsFromCallbacks) {
  Simulation sim;
  CpuModel cpu(&sim, 1, 0.0);
  SimTime done_at = -1;
  cpu.BeginCompute(Millis(5), [&] {
    cpu.BeginCompute(Millis(5), [&] { done_at = sim.now(); });
  });
  sim.Run();
  EXPECT_EQ(done_at, Millis(10));
}

TEST(CpuModelTest, ConcurrencyChangeMidJobAppliesPenalty) {
  Simulation sim;
  CpuModel cpu(&sim, 1, 1.0);
  SimTime first_done = -1;
  cpu.BeginCompute(Millis(10), [&] { first_done = sim.now(); });
  // At 5 ms a second job arrives: share 1/2, efficiency 1/(1+1) = 0.5
  // -> each progresses at rate 1/4.
  sim.ScheduleAt(Millis(5), [&] { cpu.BeginCompute(Millis(100), [] {}); });
  sim.Run();
  // First job: 5 ms alone + remaining 5 ms at rate 1/4 = 20 ms more.
  EXPECT_EQ(first_done, Millis(25));
}

// Property sweep: total busy time equals total demand (no work lost or
// duplicated) across job-count / core-count combinations.
class CpuConservationTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CpuConservationTest, WorkIsConserved) {
  const auto [cores, jobs] = GetParam();
  Simulation sim;
  CpuModel cpu(&sim, cores, 0.0);
  cpu.set_total_threads(std::max(cores, jobs));
  int finished = 0;
  for (int i = 0; i < jobs; i++) {
    // Stagger arrivals so the active set changes over time.
    sim.ScheduleAt(Millis(i), [&] { cpu.BeginCompute(Millis(7), [&] { finished++; }); });
  }
  sim.Run();
  EXPECT_EQ(finished, jobs);
  EXPECT_NEAR(cpu.busy_core_nanos(), static_cast<double>(jobs) * Millis(7),
              static_cast<double>(jobs) * 1e4);
}

INSTANTIATE_TEST_SUITE_P(Grid, CpuConservationTest,
                         ::testing::Combine(::testing::Values(1, 2, 8),
                                            ::testing::Values(1, 3, 10, 25)));

// The model's rng draws happen in a fixed order: EnablePauses draws the first
// inter-pause gap, each oversubscribed BeginCompute draws one dispatch delay,
// each EndPause draws the next gap. A probe Rng fed the same seed replays
// that sequence so tests can compute the exact times of random events and
// assert the scenario preconditions they rely on.

TEST(CpuModelTest, GcPauseWhileJobParkedInDispatchQuantum) {
  const uint64_t kSeed = 3;
  const SimDuration kInterval = Millis(2);
  const SimDuration kPauseLen = Millis(40);
  const SimDuration kQuantum = Millis(30);
  Rng probe(kSeed);
  const auto pause_at = static_cast<SimDuration>(probe.NextExp(kInterval) + 0.5);
  // Job B below arrives with one job computing on the single core, so its
  // dispatch delay is drawn with over = 1, mean = quantum.
  const auto park_delay = static_cast<SimDuration>(probe.NextExp(kQuantum) + 0.5);
  const SimTime b_arrives = pause_at - 1;
  // Preconditions for this seed: B is still parked when the pause begins,
  // and B's park ends mid-pause (the edge under test: the dispatch delay
  // elapses while the CPU is stopped, so B links but makes no progress).
  ASSERT_GT(b_arrives, 0);
  ASSERT_GT(b_arrives + park_delay, pause_at);
  ASSERT_LT(b_arrives + park_delay, pause_at + kPauseLen);
  // ...and the pause after this one starts late enough not to interfere.
  const SimTime second_pause = pause_at + kPauseLen +
                               static_cast<SimDuration>(probe.NextExp(kInterval) + 0.5);

  Simulation sim;
  CpuModel cpu(&sim, /*cores=*/1, /*kappa=*/0.0, kQuantum, kSeed);
  cpu.EnablePauses(kInterval, kPauseLen, /*per_thread_factor=*/0.0);
  const SimDuration b_demand = Micros(50);
  cpu.BeginCompute(Seconds(100), [] {});  // occupies the core throughout
  SimTime b_done = -1;
  sim.ScheduleAt(b_arrives, [&] { cpu.BeginCompute(b_demand, [&] { b_done = sim.now(); }); });
  // Mid-pause, after B's park elapsed: B must be linked (active) but frozen.
  sim.ScheduleAt(pause_at + kPauseLen - 1, [&] {
    EXPECT_TRUE(cpu.paused());
    EXPECT_EQ(cpu.active_jobs(), 2);
    EXPECT_EQ(cpu.current_rate(), 0.0);
  });
  sim.RunUntil(pause_at + kPauseLen + 4 * b_demand);
  // B links mid-pause with zero progress until the pause ends, then shares
  // the core with the long job: demand / (1/2 rate), from the pause end.
  ASSERT_LT(pause_at + kPauseLen + 2 * b_demand, second_pause);
  EXPECT_EQ(b_done, pause_at + kPauseLen + 2 * b_demand);
}

TEST(CpuModelTest, ZeroDemandJobRunsAfterCompletionsAlreadyQueued) {
  // A zero-demand job completes via a fresh zero-delay event, so a completion
  // event already queued at the same instant fires first — callback order is
  // scheduling order, not "free work jumps the queue".
  Simulation sim;
  CpuModel cpu(&sim, 1, 0.0);
  std::vector<int> order;
  cpu.BeginCompute(Millis(5), [&] { order.push_back(1); });  // completes at t=5
  // This event carries a later seq than the completion event above, so it
  // runs second at t=5; the zero-demand completions then queue behind it.
  sim.ScheduleAt(Millis(5), [&] {
    cpu.BeginCompute(0, [&] { order.push_back(2); });
    cpu.BeginCompute(0, [&] { order.push_back(3); });
  });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(CpuModelTest, SetTotalThreadsAppliesFromNextPause) {
  const uint64_t kSeed = 5;
  const SimDuration kInterval = Millis(3);
  const SimDuration kBase = Millis(1);
  Rng probe(kSeed);
  const auto gap1 = static_cast<SimDuration>(probe.NextExp(kInterval) + 0.5);
  const auto gap2 = static_cast<SimDuration>(probe.NextExp(kInterval) + 0.5);

  Simulation sim;
  CpuModel cpu(&sim, /*cores=*/2, /*kappa=*/0.0, /*quantum=*/0, kSeed);
  cpu.EnablePauses(kInterval, kBase, /*per_thread_factor=*/0.5);
  // First pause: total_threads == cores, so duration is exactly kBase.
  // Second pause: excess = 10 - 2, growth = 1 + 0.5 * 8 = 5x.
  const SimTime p1 = gap1;
  const SimTime p2 = p1 + kBase + gap2;
  const SimDuration dur2 = 5 * kBase;
  int checks = 0;
  // Probes at a transition instant must be scheduled *after* the transition
  // event was (same-timestamp events run in scheduling order), so each probe
  // schedules the next from inside the previous one.
  sim.ScheduleAt(p1, [&] {
    checks++;
    EXPECT_TRUE(cpu.paused());
    // Mid-pause reallocation: the running pause keeps its duration; only the
    // next pause reads the new thread count.
    cpu.set_total_threads(10);
    sim.ScheduleAt(p1 + kBase - 1, [&] {
      checks++;
      EXPECT_TRUE(cpu.paused());
      sim.ScheduleAt(p1 + kBase, [&] {
        checks++;
        EXPECT_FALSE(cpu.paused());
        sim.ScheduleAt(p2, [&] {
          checks++;
          EXPECT_TRUE(cpu.paused());
          sim.ScheduleAt(p2 + dur2 - 1, [&] {
            checks++;
            EXPECT_TRUE(cpu.paused());
            sim.ScheduleAt(p2 + dur2, [&] {
              checks++;
              EXPECT_FALSE(cpu.paused());
            });
          });
        });
      });
    });
  });
  sim.RunUntil(p2 + dur2 + 1);
  EXPECT_EQ(checks, 6);
}

}  // namespace
}  // namespace actop
