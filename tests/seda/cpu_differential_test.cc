// Differential tests: the virtual-time CpuModel (src/seda/cpu.{h,cc}) against
// the retained seed implementation (src/seda/cpu_reference.{h,cc}).
//
// The two models compute the same real-valued schedule — under egalitarian
// sharing a job's completion instant is fully determined by the rate
// trajectory, and both implementations integrate the identical Rate() — but
// they round differently: the seed subtracts dt*rate from every job's
// remaining demand, the rewrite adds dt*rate to one global clock and compares
// finish tags against it. Each completion event lands at now + ceil(wait),
// so whenever the two roundings put `wait` on opposite sides of an integer
// the event shifts by 1 ns; overlapping jobs then see slightly different
// rate-segment boundaries and the shift can propagate through a busy period.
// The deviation stays at nanosecond scale (kToleranceNs below, with margin)
// against service times of tens of microseconds; closed-loop experiments such
// as fig10b therefore reproduce seed results to within seed-to-seed noise
// (documented in EXPERIMENTS.md) rather than byte-identically.
//
// What must match exactly, and is asserted exactly:
//   * the set of jobs completed (every job, by identity),
//   * completion times in all no-rounding scenarios (idle-start jobs),
//   * rng draw sequences, whenever the draw *sites* coincide (quantum
//     scenarios below keep the CPU strictly oversubscribed so the
//     park-or-start decision never depends on a shifted completion).

#include "src/seda/cpu.h"
#include "src/seda/cpu_reference.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/sim/simulation.h"

namespace actop {
namespace {

// Measured worst case across the seeds below is ≤ 3 ns (sub-ppm of the
// shortest service time); fail loudly if a future change grows it.
constexpr SimDuration kToleranceNs = 8;

struct Arrival {
  SimTime at = 0;
  SimDuration demand = 0;
};

struct ScenarioConfig {
  int cores = 4;
  double kappa = 0.0;
  SimDuration quantum = 0;
  uint64_t cpu_seed = 1;
  bool pauses = false;
  SimDuration pause_interval = Millis(5);
  SimDuration pause_duration = Micros(200);
  double pause_thread_factor = 0.05;
  int total_threads = 0;  // 0: leave at default (cores)
};

// Runs one model over a fixed (open-loop) arrival schedule and returns each
// job's completion time, indexed by arrival order.
template <typename Model>
std::vector<SimTime> RunSchedule(const ScenarioConfig& cfg, const std::vector<Arrival>& arrivals) {
  Simulation sim;
  Model cpu(&sim, cfg.cores, cfg.kappa, cfg.quantum, cfg.cpu_seed);
  if (cfg.total_threads > 0) cpu.set_total_threads(cfg.total_threads);
  if (cfg.pauses) {
    cpu.EnablePauses(cfg.pause_interval, cfg.pause_duration, cfg.pause_thread_factor);
  }
  std::vector<SimTime> done(arrivals.size(), -1);
  for (size_t i = 0; i < arrivals.size(); i++) {
    sim.ScheduleAt(arrivals[i].at, [&sim, &cpu, &done, &arrivals, i] {
      cpu.BeginCompute(arrivals[i].demand, [&sim, &done, i] { done[i] = sim.now(); });
    });
  }
  // With pauses enabled the pause chain reschedules itself forever; run to a
  // deadline far past the last possible completion instead of to empty.
  sim.RunUntil(Seconds(30));
  return done;
}

std::vector<Arrival> PoissonArrivals(uint64_t seed, int n, double mean_gap_ns,
                                     double mean_demand_ns) {
  Rng rng(seed);
  std::vector<Arrival> arrivals;
  arrivals.reserve(n);
  SimTime t = 0;
  for (int i = 0; i < n; i++) {
    t += static_cast<SimDuration>(rng.NextExp(mean_gap_ns) + 0.5);
    const auto d = static_cast<SimDuration>(rng.NextExp(mean_demand_ns) + 1.0);
    arrivals.push_back(Arrival{t, d});
  }
  return arrivals;
}

void ExpectEquivalent(const ScenarioConfig& cfg, const std::vector<Arrival>& arrivals,
                      SimDuration tolerance) {
  const std::vector<SimTime> ref = RunSchedule<sedaref::CpuModel>(cfg, arrivals);
  const std::vector<SimTime> opt = RunSchedule<CpuModel>(cfg, arrivals);
  ASSERT_EQ(ref.size(), opt.size());
  for (size_t i = 0; i < ref.size(); i++) {
    ASSERT_GE(ref[i], 0) << "reference left job " << i << " incomplete";
    ASSERT_GE(opt[i], 0) << "optimized model left job " << i << " incomplete";
    ASSERT_LE(std::abs(ref[i] - opt[i]), tolerance)
        << "job " << i << ": reference " << ref[i] << " vs optimized " << opt[i];
  }
}

// --- exact equivalence: paths with no rounding divergence -------------------

TEST(CpuDifferentialTest, SequentialJobsMatchExactly) {
  // One job at a time from an idle CPU: rate is exactly 1.0 and the rewrite
  // rebases V to zero at idle, so both models schedule completion at exactly
  // arrival + demand. Zero tolerance.
  ScenarioConfig cfg;
  cfg.cores = 2;
  std::vector<Arrival> arrivals;
  SimTime t = 0;
  Rng rng(7);
  for (int i = 0; i < 200; i++) {
    const auto d = static_cast<SimDuration>(rng.NextBounded(50000) + 1);
    arrivals.push_back(Arrival{t, d});
    t += d + static_cast<SimDuration>(rng.NextBounded(1000)) + 1;  // gap > service
  }
  ExpectEquivalent(cfg, arrivals, 0);
}

TEST(CpuDifferentialTest, UnderSubscribedBurstsMatchExactly) {
  // Simultaneous bursts that never exceed the core count: every job runs at
  // rate 1.0 from a V rebased to zero, so finish tags and waits are computed
  // without any rounding in either model.
  ScenarioConfig cfg;
  cfg.cores = 8;
  std::vector<Arrival> arrivals;
  Rng rng(11);
  SimTime t = 0;
  for (int burst = 0; burst < 100; burst++) {
    const int k = 1 + static_cast<int>(rng.NextBounded(8));
    for (int j = 0; j < k; j++) {
      arrivals.push_back(Arrival{t, static_cast<SimDuration>(rng.NextBounded(40000) + 1)});
    }
    t += 100000;  // longer than the largest demand: the burst fully drains
  }
  ExpectEquivalent(cfg, arrivals, 0);
}

// --- bounded equivalence: contended processor sharing -----------------------

TEST(CpuDifferentialTest, ContendedPoissonLoadManySeeds) {
  // Heavily contended open-loop load (offered load ~2x capacity during the
  // arrival phase) across seeds, cores, and kappa. Rounding can shift events
  // by nanoseconds; every job must still complete within kToleranceNs of the
  // reference.
  for (uint64_t seed = 1; seed <= 10; seed++) {
    ScenarioConfig cfg;
    cfg.cores = 1 + static_cast<int>(seed % 4);           // 1..4
    cfg.kappa = (seed % 3) * 0.05;                        // 0, 0.05, 0.1
    const double mean_demand = 20000.0;
    const double mean_gap = mean_demand / (2.0 * cfg.cores);
    const std::vector<Arrival> arrivals = PoissonArrivals(seed * 977, 1500, mean_gap, mean_demand);
    SCOPED_TRACE("seed " + std::to_string(seed));
    ExpectEquivalent(cfg, arrivals, kToleranceNs);
  }
}

TEST(CpuDifferentialTest, ZeroDemandJobsInterleaved) {
  // Zero-demand jobs bypass the scheduler (immediate zero-delay completion
  // event) in both models; mixing them into a contended stream must not
  // disturb either model's accounting.
  ScenarioConfig cfg;
  cfg.cores = 2;
  Rng rng(23);
  std::vector<Arrival> arrivals;
  SimTime t = 0;
  for (int i = 0; i < 600; i++) {
    t += static_cast<SimDuration>(rng.NextExp(6000.0) + 0.5);
    const bool zero = rng.NextBounded(4) == 0;
    arrivals.push_back(Arrival{t, zero ? 0 : static_cast<SimDuration>(rng.NextExp(20000.0) + 1.0)});
  }
  ExpectEquivalent(cfg, arrivals, kToleranceNs);
}

TEST(CpuDifferentialTest, OversubscribedQuantumAndPauses) {
  // Dispatch-quantum delays draw from the model's rng at BeginCompute; the
  // draw happens only when the CPU is oversubscribed, so this scenario keeps
  // runnable_jobs far above cores for every arrival (initial burst plus
  // sustained overload, then a drain phase with no arrivals at all). Both
  // models then consume identical rng streams and may be compared
  // job-for-job. GC pauses (their own rng draws, at deterministic times
  // independent of job state) run throughout; total_threads above cores
  // exercises the pause-duration growth term.
  for (uint64_t seed = 1; seed <= 4; seed++) {
    ScenarioConfig cfg;
    cfg.cores = 4;
    cfg.kappa = 0.02;
    cfg.quantum = Micros(1);
    cfg.cpu_seed = seed;
    cfg.pauses = true;
    cfg.total_threads = 64;
    std::vector<Arrival> arrivals;
    // Burst: 64 jobs at t=0 swamp the 4 cores immediately.
    Rng rng(seed * 1553);
    for (int i = 0; i < 64; i++) {
      arrivals.push_back(Arrival{0, static_cast<SimDuration>(rng.NextExp(30000.0) + 1.0)});
    }
    // Overload phase: offered load ~3x capacity keeps the backlog deep.
    SimTime t = 0;
    for (int i = 0; i < 1200; i++) {
      t += static_cast<SimDuration>(rng.NextExp(30000.0 / (3.0 * cfg.cores)) + 0.5);
      arrivals.push_back(Arrival{t, static_cast<SimDuration>(rng.NextExp(30000.0) + 1.0)});
    }
    SCOPED_TRACE("seed " + std::to_string(seed));
    ExpectEquivalent(cfg, arrivals, kToleranceNs);
  }
}

TEST(CpuDifferentialTest, BusyCoreNanosTracksReference) {
  // Utilization accounting must agree too (it feeds the thread controller's
  // estimator). Sampled at several instants via a probe event.
  ScenarioConfig cfg;
  cfg.cores = 3;
  cfg.kappa = 0.05;
  const std::vector<Arrival> arrivals = PoissonArrivals(31, 800, 4000.0, 20000.0);

  auto run = [&](auto* model_tag) {
    using Model = std::remove_pointer_t<decltype(model_tag)>;
    Simulation sim;
    Model cpu(&sim, cfg.cores, cfg.kappa, cfg.quantum, cfg.cpu_seed);
    for (size_t i = 0; i < arrivals.size(); i++) {
      sim.ScheduleAt(arrivals[i].at, [&sim, &cpu, &arrivals, i] {
        cpu.BeginCompute(arrivals[i].demand, [] {});
      });
    }
    std::vector<double> samples;
    for (int s = 1; s <= 20; s++) {
      sim.ScheduleAt(Millis(s), [&cpu, &samples] { samples.push_back(cpu.busy_core_nanos()); });
    }
    sim.Run();
    return samples;
  };

  const std::vector<double> ref = run(static_cast<sedaref::CpuModel*>(nullptr));
  const std::vector<double> opt = run(static_cast<CpuModel*>(nullptr));
  ASSERT_EQ(ref.size(), opt.size());
  for (size_t i = 0; i < ref.size(); i++) {
    // Busy time integrates core-count step functions; a 1 ns event shift
    // mis-attributes at most cores_ core-ns per completion boundary.
    EXPECT_NEAR(ref[i], opt[i], 1e4) << "sample " << i;
    EXPECT_GT(opt[i], 0.0);
  }
}

}  // namespace
}  // namespace actop
