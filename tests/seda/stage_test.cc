#include "src/seda/stage.h"

#include <gtest/gtest.h>

#include "src/common/sim_time.h"
#include "src/seda/cpu.h"
#include "src/sim/simulation.h"

namespace actop {
namespace {

struct StageFixture : public ::testing::Test {
  Simulation sim;
  CpuModel cpu{&sim, 8, 0.0};
};

TEST_F(StageFixture, ProcessesSingleEvent) {
  Stage stage(&sim, &cpu, "worker", 2);
  bool done = false;
  stage.Enqueue(StageEvent{.compute = Millis(1), .done = [&] { done = true; }});
  sim.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(stage.total_completions(), 1u);
  EXPECT_EQ(sim.now(), Millis(1));
}

TEST_F(StageFixture, QueueWaitWhenThreadsBusy) {
  Stage stage(&sim, &cpu, "worker", 1);
  SimTime second_done = -1;
  stage.Enqueue(StageEvent{.compute = Millis(10), .done = [] {}});
  stage.Enqueue(StageEvent{.compute = Millis(10), .done = [&] { second_done = sim.now(); }});
  sim.Run();
  EXPECT_EQ(second_done, Millis(20));  // waited 10 ms for the single thread
  const StageWindow w = stage.TakeWindow();
  EXPECT_EQ(w.completions, 2u);
  EXPECT_NEAR(w.sum_queue_wait, static_cast<double>(Millis(10)), 1e4);
}

TEST_F(StageFixture, ParallelThreadsNoQueueWait) {
  Stage stage(&sim, &cpu, "worker", 2);
  stage.Enqueue(StageEvent{.compute = Millis(10), .done = [] {}});
  stage.Enqueue(StageEvent{.compute = Millis(10), .done = [] {}});
  sim.Run();
  EXPECT_EQ(sim.now(), Millis(10));
  const StageWindow w = stage.TakeWindow();
  EXPECT_NEAR(w.sum_queue_wait, 0.0, 1.0);
}

TEST_F(StageFixture, BlockingTimeDoesNotUseCpu) {
  Stage stage(&sim, &cpu, "io", 1);
  SimTime done_at = -1;
  stage.Enqueue(StageEvent{
      .compute = Millis(2), .blocking = Millis(8), .done = [&] { done_at = sim.now(); }});
  sim.Run();
  EXPECT_EQ(done_at, Millis(10));
  EXPECT_NEAR(cpu.busy_core_nanos(), static_cast<double>(Millis(2)), 1e3);
}

TEST_F(StageFixture, WallclockAccountsComputeAndBlocking) {
  Stage stage(&sim, &cpu, "io", 1);
  stage.Enqueue(StageEvent{.compute = Millis(3), .blocking = Millis(4), .done = [] {}});
  sim.Run();
  const StageWindow w = stage.TakeWindow();
  EXPECT_NEAR(w.sum_wallclock, static_cast<double>(Millis(7)), 1e4);
  EXPECT_NEAR(w.sum_compute, static_cast<double>(Millis(3)), 1.0);
  EXPECT_NEAR(w.sum_blocking, static_cast<double>(Millis(4)), 1.0);
}

TEST_F(StageFixture, BoundedQueueRejects) {
  Stage stage(&sim, &cpu, "recv", 1, /*queue_capacity=*/2);
  int rejected = 0;
  int completed = 0;
  for (int i = 0; i < 5; i++) {
    stage.Enqueue(StageEvent{.compute = Millis(10),
                             .done = [&] { completed++; },
                             .rejected = [&] { rejected++; }});
  }
  sim.Run();
  // 1 in service + 2 queued accepted; 2 rejected.
  EXPECT_EQ(completed, 3);
  EXPECT_EQ(rejected, 2);
  EXPECT_EQ(stage.total_rejections(), 2u);
}

TEST_F(StageFixture, IncreasingThreadsDrainsQueue) {
  Stage stage(&sim, &cpu, "worker", 1);
  for (int i = 0; i < 4; i++) {
    stage.Enqueue(StageEvent{.compute = Millis(10), .done = [] {}});
  }
  sim.ScheduleAt(Millis(1), [&] { stage.set_threads(4); });
  sim.Run();
  // One starts at 0; at 1 ms the other three start; all demand 10 ms and the
  // CPU has 8 cores -> finish by 11 ms.
  EXPECT_EQ(sim.now(), Millis(11));
}

TEST_F(StageFixture, DecreasingThreadsLetsBusyDrain) {
  Stage stage(&sim, &cpu, "worker", 2);
  int completed = 0;
  for (int i = 0; i < 4; i++) {
    stage.Enqueue(StageEvent{.compute = Millis(10), .done = [&] { completed++; }});
  }
  sim.ScheduleAt(Millis(1), [&] { stage.set_threads(1); });
  sim.Run();
  EXPECT_EQ(completed, 4);
  // Two run [0,10]; then one at a time: [10,20], [20,30].
  EXPECT_EQ(sim.now(), Millis(30));
}

TEST_F(StageFixture, WindowResetsAfterTake) {
  Stage stage(&sim, &cpu, "worker", 1);
  stage.Enqueue(StageEvent{.compute = Millis(1), .done = [] {}});
  sim.Run();
  StageWindow w1 = stage.TakeWindow();
  EXPECT_EQ(w1.completions, 1u);
  StageWindow w2 = stage.TakeWindow();
  EXPECT_EQ(w2.completions, 0u);
  EXPECT_EQ(w2.arrivals, 0u);
}

TEST_F(StageFixture, QueueLengthIntegralTracksBacklog) {
  Stage stage(&sim, &cpu, "worker", 1);
  for (int i = 0; i < 3; i++) {
    stage.Enqueue(StageEvent{.compute = Millis(10), .done = [] {}});
  }
  sim.Run();
  const StageWindow w = stage.TakeWindow();
  // Queue holds 2 events for 10 ms, then 1 event for 10 ms = 30 ms·events.
  EXPECT_NEAR(w.queue_len_time_integral, static_cast<double>(Millis(30)), 1e5);
}

TEST_F(StageFixture, ReadyTimeEmergesUnderContention) {
  // One stage with 4 threads on a 1-core CPU: wallclock > compute, and the
  // difference is the "ready time" r of the paper's Figure 9.
  Simulation local_sim;
  CpuModel small_cpu(&local_sim, 1, 0.0);
  Stage stage(&local_sim, &small_cpu, "worker", 4);
  small_cpu.set_total_threads(4);
  for (int i = 0; i < 4; i++) {
    stage.Enqueue(StageEvent{.compute = Millis(5), .done = [] {}});
  }
  local_sim.Run();
  const StageWindow w = stage.TakeWindow();
  // 4 jobs share 1 core: each takes 20 ms wallclock for 5 ms compute.
  EXPECT_NEAR(w.mean_wallclock(), static_cast<double>(Millis(20)), 1e5);
  EXPECT_NEAR(w.mean_compute(), static_cast<double>(Millis(5)), 1.0);
}

}  // namespace
}  // namespace actop
