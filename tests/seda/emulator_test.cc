#include "src/seda/emulator.h"

#include <gtest/gtest.h>

#include "src/common/sim_time.h"
#include "src/sim/simulation.h"

namespace actop {
namespace {

EmulatorConfig TwoStageConfig() {
  EmulatorConfig cfg;
  cfg.cores = 4;
  cfg.kappa = 0.0;
  cfg.arrival_rate = 1000.0;
  cfg.seed = 42;
  cfg.stages = {
      {.name = "a", .mean_compute = Micros(100), .mean_blocking = 0, .initial_threads = 2},
      {.name = "b", .mean_compute = Micros(100), .mean_blocking = 0, .initial_threads = 2},
  };
  return cfg;
}

TEST(EmulatorTest, RequestsFlowThroughAllStages) {
  Simulation sim;
  Emulator emu(&sim, TwoStageConfig());
  emu.Start();
  sim.RunUntil(Seconds(2));
  emu.Stop();
  sim.Run();
  // ~1000 req/s for 2 s.
  EXPECT_GT(emu.completed_requests(), 1800u);
  EXPECT_LT(emu.completed_requests(), 2200u);
  EXPECT_EQ(emu.stage(0).total_completions(), emu.completed_requests());
  EXPECT_EQ(emu.stage(1).total_completions(), emu.completed_requests());
}

TEST(EmulatorTest, LatencyRecordedPerRequest) {
  Simulation sim;
  Emulator emu(&sim, TwoStageConfig());
  emu.Start();
  sim.RunUntil(Seconds(1));
  emu.Stop();
  sim.Run();
  EXPECT_EQ(emu.latency().count(), emu.completed_requests());
  // At ρ = λ·x/t ≈ 0.05 per stage, latency should be close to 2·100 µs.
  EXPECT_GT(emu.latency().mean(), static_cast<double>(Micros(150)));
  EXPECT_LT(emu.latency().mean(), static_cast<double>(Micros(1500)));
}

TEST(EmulatorTest, UnderProvisionedStageBuildsQueue) {
  EmulatorConfig cfg = TwoStageConfig();
  // Stage b capacity: 1 thread / 2 ms per event = 500/s < 1000/s arrivals.
  cfg.stages[1].mean_compute = Millis(2);
  cfg.stages[1].initial_threads = 1;
  Simulation sim;
  Emulator emu(&sim, cfg);
  emu.Start();
  sim.RunUntil(Seconds(2));
  EXPECT_GT(emu.stage(1).queue_length(), 200u);
  EXPECT_LT(emu.stage(0).queue_length(), 50u);
}

TEST(EmulatorTest, ApplyThreadAllocationTakesEffect) {
  Simulation sim;
  Emulator emu(&sim, TwoStageConfig());
  emu.ApplyThreadAllocation({5, 7});
  EXPECT_EQ(emu.stage(0).threads(), 5);
  EXPECT_EQ(emu.stage(1).threads(), 7);
  EXPECT_EQ(emu.cpu().total_threads(), 12);
}

TEST(EmulatorTest, DeterministicAcrossRuns) {
  auto run = [] {
    Simulation sim;
    Emulator emu(&sim, TwoStageConfig());
    emu.Start();
    sim.RunUntil(Seconds(1));
    emu.Stop();
    sim.Run();
    return std::make_pair(emu.completed_requests(), emu.latency().p99());
  };
  EXPECT_EQ(run(), run());
}

TEST(EmulatorTest, BlockingStageNeedsMoreThreads) {
  // A stage whose events block 1 ms each at 1000 req/s needs > 1 concurrent
  // event in flight; with 4 threads it keeps up without queueing.
  EmulatorConfig cfg = TwoStageConfig();
  cfg.stages[1].mean_compute = Micros(50);
  cfg.stages[1].mean_blocking = Millis(1);
  cfg.stages[1].initial_threads = 4;
  Simulation sim;
  Emulator emu(&sim, cfg);
  emu.Start();
  sim.RunUntil(Seconds(2));
  EXPECT_LT(emu.stage(1).queue_length(), 100u);
  // Blocking shows up in wallclock but not CPU time.
  const StageWindow w = emu.stage(1).TakeWindow();
  EXPECT_GT(w.mean_wallclock(), w.mean_compute() * 5.0);
}

}  // namespace
}  // namespace actop
