#include "src/actor/location_cache.h"

#include <gtest/gtest.h>

#include "src/actor/directory.h"

namespace actop {
namespace {

TEST(LocationCacheTest, PutAndGet) {
  LocationCache cache(4);
  cache.Put(1, 2);
  EXPECT_EQ(cache.Get(1), 2);
  EXPECT_EQ(cache.Get(99), kNoServer);
}

TEST(LocationCacheTest, PutOverwrites) {
  LocationCache cache(4);
  cache.Put(1, 2);
  cache.Put(1, 3);
  EXPECT_EQ(cache.Get(1), 3);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(LocationCacheTest, EvictsLeastRecentlyUsed) {
  LocationCache cache(2);
  cache.Put(1, 10);
  cache.Put(2, 20);
  EXPECT_EQ(cache.Get(1), 10);  // refresh 1; 2 becomes LRU
  cache.Put(3, 30);             // evicts 2
  EXPECT_EQ(cache.Get(2), kNoServer);
  EXPECT_EQ(cache.Get(1), 10);
  EXPECT_EQ(cache.Get(3), 30);
}

TEST(LocationCacheTest, PeekDoesNotRefresh) {
  LocationCache cache(2);
  cache.Put(1, 10);
  cache.Put(2, 20);
  EXPECT_EQ(cache.Peek(1), 10);  // no recency update: 1 stays LRU
  cache.Put(3, 30);              // evicts 1
  EXPECT_EQ(cache.Peek(1), kNoServer);
}

TEST(LocationCacheTest, Invalidate) {
  LocationCache cache(4);
  cache.Put(1, 2);
  cache.Invalidate(1);
  EXPECT_EQ(cache.Get(1), kNoServer);
  cache.Invalidate(1);  // idempotent
}

TEST(LocationCacheTest, InvalidateServerDropsMatching) {
  LocationCache cache(8);
  cache.Put(1, 5);
  cache.Put(2, 5);
  cache.Put(3, 6);
  cache.InvalidateServer(5);
  EXPECT_EQ(cache.Peek(1), kNoServer);
  EXPECT_EQ(cache.Peek(2), kNoServer);
  EXPECT_EQ(cache.Peek(3), 6);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(LocationCacheTest, HitMissCounters) {
  LocationCache cache(4);
  cache.Put(1, 2);
  cache.Get(1);
  cache.Get(9);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(LocationCacheTest, ClearEmptiesAll) {
  LocationCache cache(4);
  cache.Put(1, 2);
  cache.Put(3, 4);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Peek(1), kNoServer);
}

TEST(DirectoryShardTest, FirstWriterWins) {
  DirectoryShard shard;
  const DirEntry first = shard.LookupOrRegister(1, 3);
  EXPECT_EQ(first.owner, 3);
  EXPECT_NE(first.token, 0u);
  const DirEntry second = shard.LookupOrRegister(1, 7);  // already registered
  EXPECT_EQ(second.owner, 3);
  EXPECT_EQ(second.token, first.token);
  EXPECT_EQ(shard.Lookup(1), 3);
}

TEST(DirectoryShardTest, LookupMissingReturnsNoServer) {
  DirectoryShard shard;
  EXPECT_EQ(shard.Lookup(42), kNoServer);
}

TEST(DirectoryShardTest, UnregisterOnlyMatchingOwner) {
  DirectoryShard shard;
  shard.LookupOrRegister(1, 3);
  shard.Unregister(1, 5);  // stale unregister from the wrong owner: ignored
  EXPECT_EQ(shard.Lookup(1), 3);
  shard.Unregister(1, 3);  // token 0 = wildcard
  EXPECT_EQ(shard.Lookup(1), kNoServer);
}

TEST(DirectoryShardTest, StaleTokenCannotEvictNewerRegistration) {
  DirectoryShard shard;
  const DirEntry old_reg = shard.LookupOrRegister(1, 3);
  shard.Unregister(1, 3, old_reg.token);  // deactivation
  // Re-activation at the same server: fresh registration, fresh token.
  const DirEntry new_reg = shard.LookupOrRegister(1, 3);
  EXPECT_NE(new_reg.token, old_reg.token);
  // A delayed duplicate of the old unregister must be a no-op.
  shard.Unregister(1, 3, old_reg.token);
  EXPECT_EQ(shard.Lookup(1), 3);
  shard.Unregister(1, 3, new_reg.token);
  EXPECT_EQ(shard.Lookup(1), kNoServer);
}

TEST(DirectoryShardTest, EvictServerRemovesAllItsEntries) {
  DirectoryShard shard;
  shard.LookupOrRegister(1, 3);
  shard.LookupOrRegister(2, 3);
  shard.LookupOrRegister(3, 4);
  EXPECT_EQ(shard.EvictServer(3), 2);
  EXPECT_EQ(shard.Lookup(1), kNoServer);
  EXPECT_EQ(shard.Lookup(3), 4);
}

TEST(DirectoryHomeTest, DeterministicAndInRange) {
  for (ActorId a = 1; a < 1000; a++) {
    const ServerId home = DirectoryHomeOf(a, 7);
    EXPECT_GE(home, 0);
    EXPECT_LT(home, 7);
    EXPECT_EQ(home, DirectoryHomeOf(a, 7));
  }
}

}  // namespace
}  // namespace actop
