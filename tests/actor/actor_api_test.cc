// Tests of the application-facing actor API surface: cost models (per-method
// overrides, AddCompute), call-context semantics (caller identity, app_data,
// reply-once), and deep call chains.

#include "src/actor/actor.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/common/sim_time.h"
#include "src/runtime/client.h"
#include "src/runtime/cluster.h"
#include "src/sim/simulation.h"

namespace actop {
namespace {

constexpr ActorType kApiProbeType = 120;
constexpr ActorType kChainType = 121;

// Records everything the context exposes; method 2 adds extra compute.
class ProbeActor : public Actor {
 public:
  void OnCall(CallContext& ctx) override {
    last_method = ctx.method();
    last_app_data = ctx.app_data();
    last_caller = ctx.caller();
    last_payload = ctx.payload_bytes();
    if (ctx.method() == 2) {
      ctx.AddCompute(Millis(5));
    }
    ctx.Reply(64);
  }

  MethodId last_method = 0;
  uint64_t last_app_data = 0;
  ActorId last_caller = kNoActor;
  uint32_t last_payload = 0;
};

// Forms a call chain: actor k calls actor k-1 (app_data = remaining depth).
class ChainActor : public Actor {
 public:
  void OnCall(CallContext& ctx) override {
    const uint64_t depth = ctx.app_data();
    if (depth == 0) {
      ctx.Reply(8);
      return;
    }
    CallContext* call = &ctx;
    ctx.CallWithData(MakeActorId(kChainType, depth), 0, depth - 1, 64,
                     [call](const Response&) { call->Reply(8); });
  }
};

struct ApiFixture : public ::testing::Test {
  ApiFixture() : cluster(&sim, ClusterConfig{.num_servers = 2, .seed = 4}) {
    CostModel probe_costs;
    probe_costs.handler_compute = Micros(20);
    probe_costs.per_method_compute[1] = Millis(2);  // method 1 is expensive
    cluster.RegisterActorType(
        kApiProbeType, [](ActorId) { return std::make_unique<ProbeActor>(); }, probe_costs);
    cluster.RegisterActorType(
        kChainType, [](ActorId) { return std::make_unique<ChainActor>(); },
        CostModel{.handler_compute = Micros(10)});
  }

  Simulation sim;
  Cluster cluster;
};

TEST_F(ApiFixture, ContextExposesCallMetadata) {
  DirectClient client(&sim, &cluster, 1);
  const ActorId probe = MakeActorId(kApiProbeType, 1);
  client.Call(probe, 7, 0xabcdef, 333, nullptr);
  sim.RunUntil(Seconds(1));
  auto* actor = static_cast<ProbeActor*>(cluster.GetOrCreateActor(probe));
  EXPECT_EQ(actor->last_method, 7u);
  EXPECT_EQ(actor->last_app_data, 0xabcdefu);
  EXPECT_EQ(actor->last_payload, 333u);
  EXPECT_EQ(actor->last_caller, kNoActor);  // client call
}

TEST_F(ApiFixture, CallerIdentityForActorCalls) {
  DirectClient client(&sim, &cluster, 1);
  const ActorId chain1 = MakeActorId(kChainType, 1);
  const ActorId chain0 = MakeActorId(kChainType, 7);
  // chain 7 called with depth 1 -> it calls MakeActorId(kChainType, 1) with
  // depth 0; probe the callee's recorded caller via a second hop check:
  int responses = 0;
  client.Call(chain0, 0, 1, 64, [&](const Response&) { responses++; });
  sim.RunUntil(Seconds(2));
  EXPECT_EQ(responses, 1);
  EXPECT_TRUE(cluster.HasActorState(chain1));
}

TEST_F(ApiFixture, PerMethodCostOverrideDelaysResponse) {
  DirectClient client(&sim, &cluster, 1);
  const ActorId probe = MakeActorId(kApiProbeType, 2);
  client.Call(probe, 0, 0, 64, nullptr);  // warm up / activate
  sim.RunUntil(Seconds(1));

  SimTime cheap_done = 0;
  SimTime costly_done = 0;
  const SimTime start = sim.now();
  client.Call(probe, 0, 0, 64, [&](const Response&) { cheap_done = sim.now(); });
  sim.RunUntil(sim.now() + Seconds(1));
  const SimTime start2 = sim.now();
  client.Call(probe, 1, 0, 64, [&](const Response&) { costly_done = sim.now(); });
  sim.RunUntil(sim.now() + Seconds(1));
  // Method 1's mean cost is 2 ms vs 20 µs; even with exponential sampling
  // and network noise the expensive path should usually be slower — assert a
  // weak ordering over several attempts instead of one draw.
  int costly_slower = 0;
  for (int i = 0; i < 10; i++) {
    SimTime t_cheap = 0;
    SimTime t_costly = 0;
    SimTime s1 = sim.now();
    client.Call(probe, 0, 0, 64, [&](const Response&) { t_cheap = sim.now() - s1; });
    sim.RunUntil(sim.now() + Seconds(1));
    SimTime s2 = sim.now();
    client.Call(probe, 1, 0, 64, [&](const Response&) { t_costly = sim.now() - s2; });
    sim.RunUntil(sim.now() + Seconds(1));
    if (t_costly > t_cheap) {
      costly_slower++;
    }
  }
  EXPECT_GE(costly_slower, 7);
  (void)start;
  (void)start2;
  (void)cheap_done;
  (void)costly_done;
}

TEST_F(ApiFixture, AddComputeExtendsTurnSerialization) {
  // AddCompute lengthens the *turn*, so a queued follow-up call on the same
  // actor waits for the extra compute (the Reply already sent by the first
  // turn is not delayed — see CallContext::AddCompute docs).
  DirectClient client(&sim, &cluster, 1);
  const ActorId probe = MakeActorId(kApiProbeType, 3);
  client.Call(probe, 0, 0, 64, nullptr);  // activate
  sim.RunUntil(Seconds(1));

  SimTime first_done = 0;
  SimTime second_done = 0;
  client.Call(probe, 2, 0, 64, [&](const Response&) { first_done = sim.now(); });
  client.Call(probe, 0, 0, 64, [&](const Response&) { second_done = sim.now(); });
  sim.RunUntil(sim.now() + Seconds(2));
  ASSERT_GT(first_done, 0);
  ASSERT_GT(second_done, 0);
  // The second call's turn cannot start until the first turn's extra 5 ms
  // finishes, so its response trails the first by at least ~5 ms minus the
  // return-path difference (both take the same path; use 4 ms for slack).
  EXPECT_GE(second_done - first_done, Millis(4));
}

TEST_F(ApiFixture, DeepCallChainCompletes) {
  DirectClient client(&sim, &cluster, 1);
  int responses = 0;
  client.Call(MakeActorId(kChainType, 64), 0, 40, 64, [&](const Response& r) {
    EXPECT_FALSE(r.failed);
    responses++;
  });
  sim.RunUntil(Seconds(10));
  EXPECT_EQ(responses, 1);
  // Every intermediate actor in the chain got activated.
  for (uint64_t d = 1; d <= 40; d++) {
    EXPECT_TRUE(cluster.HasActorState(MakeActorId(kChainType, d))) << d;
  }
}

TEST(CostModelTest, ComputeForFallsBackToDefault) {
  CostModel costs;
  costs.handler_compute = Micros(11);
  costs.per_method_compute[3] = Micros(99);
  EXPECT_EQ(costs.ComputeFor(3), Micros(99));
  EXPECT_EQ(costs.ComputeFor(0), Micros(11));
  EXPECT_EQ(costs.ComputeFor(42), Micros(11));
}

TEST(ActorIdTest, PackAndUnpackRoundTrip) {
  const ActorId id = MakeActorId(0xBEEF, 0x123456789ABCull);
  EXPECT_EQ(ActorTypeOf(id), 0xBEEFu);
  EXPECT_EQ(ActorKeyOf(id), 0x123456789ABCull);
}

}  // namespace
}  // namespace actop
