#include "src/net/network.h"

#include <gtest/gtest.h>

#include "src/common/sim_time.h"
#include "src/sim/simulation.h"

namespace actop {
namespace {

TEST(NetworkTest, DeliversWithLatency) {
  Simulation sim;
  Network net(&sim, NetworkConfig{.one_way_latency = Micros(250), .ns_per_byte = 0.0});
  SimTime delivered_at = -1;
  NodeId got_from = kNoNode;
  net.AddNode([&](NodeId from, uint32_t bytes, std::shared_ptr<void> msg) {
    (void)bytes;
    (void)msg;
    got_from = from;
    delivered_at = sim.now();
  });
  const NodeId sender = net.AddNode([](NodeId, uint32_t, std::shared_ptr<void>) {});
  net.Send(sender, 0, 100, nullptr);
  sim.Run();
  EXPECT_EQ(delivered_at, Micros(250));
  EXPECT_EQ(got_from, sender);
}

TEST(NetworkTest, BandwidthTermScalesWithBytes) {
  Simulation sim;
  Network net(&sim, NetworkConfig{.one_way_latency = 0, .ns_per_byte = 8.0});
  SimTime delivered_at = -1;
  net.AddNode([&](NodeId, uint32_t, std::shared_ptr<void>) { delivered_at = sim.now(); });
  const NodeId sender = net.AddNode([](NodeId, uint32_t, std::shared_ptr<void>) {});
  net.Send(sender, 0, 1000, nullptr);
  sim.Run();
  EXPECT_EQ(delivered_at, Nanos(8000));
}

TEST(NetworkTest, PayloadPassedThrough) {
  Simulation sim;
  Network net(&sim, NetworkConfig{});
  auto payload = std::make_shared<int>(42);
  int received = 0;
  net.AddNode([&](NodeId, uint32_t, std::shared_ptr<void> msg) {
    received = *std::static_pointer_cast<int>(msg);
  });
  net.Send(0, 0, 10, payload);
  sim.Run();
  EXPECT_EQ(received, 42);
}

TEST(NetworkTest, CountsMessagesAndBytes) {
  Simulation sim;
  Network net(&sim, NetworkConfig{});
  net.AddNode([](NodeId, uint32_t, std::shared_ptr<void>) {});
  net.Send(0, 0, 100, nullptr);
  net.Send(0, 0, 200, nullptr);
  EXPECT_EQ(net.total_messages(), 2u);
  EXPECT_EQ(net.total_bytes(), 300u);
}

TEST(NetworkTest, InterleavedDeliveryOrder) {
  Simulation sim;
  Network net(&sim, NetworkConfig{.one_way_latency = Micros(100), .ns_per_byte = 8.0});
  std::vector<int> order;
  net.AddNode([&](NodeId, uint32_t bytes, std::shared_ptr<void>) {
    order.push_back(static_cast<int>(bytes));
  });
  // A big message sent first arrives after a small one sent at the same time.
  net.Send(0, 0, 100000, nullptr);  // +800 µs wire
  net.Send(0, 0, 10, nullptr);
  sim.Run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 10);
  EXPECT_EQ(order[1], 100000);
}

}  // namespace
}  // namespace actop
