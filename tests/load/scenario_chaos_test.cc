// Chaos integration for the scenario fleet: a mid-scale open-loop scenario
// under the PR-1 fault injector (crashes, drops, delays, directory churn,
// forced migrations racing the exchange protocol) must hold every runtime
// invariant — single activation, directory coherence, live-server caches.
//
// The SLOs are intentionally NOT asserted under chaos (crashed servers lose
// requests by design); the structural zero-violations requirement is the
// whole point, and EvaluateSlo still enforces it.

#include <cstdio>

#include "gtest/gtest.h"
#include "src/load/report.h"
#include "src/load/scenarios.h"

namespace actop {
namespace {

ScenarioReport RunChaos(const char* name, uint64_t seed, double scale) {
  const ScenarioDef* def = FindScenario(name);
  EXPECT_NE(def, nullptr) << name;
  ScenarioOptions options;
  options.scale = scale;
  options.seed = seed;
  options.chaos = true;
  return def->run(options);
}

// Mid-scale (10% population) run: big enough that crashes land on servers
// holding thousands of activations, small enough for tier-1.
TEST(ScenarioChaosTest, ReconnectStormUnderFaultsHoldsInvariants) {
  const ScenarioReport report = RunChaos("reconnect_storm", /*seed=*/3, /*scale=*/0.1);
  EXPECT_EQ(report.invariant_violations, 0u)
      << "violations under chaos; rerun scenario_runner --scenario=reconnect_storm "
         "--scale=0.1 --seed=3 --chaos to reproduce";
  EXPECT_GT(report.invariant_checks, 0u);
  // The fault schedule actually fired (otherwise this test is vacuous).
  EXPECT_GT(report.chaos_crashes + report.chaos_directory_churns +
                report.chaos_dropped_messages,
            0u);
  // Open-loop accounting still closes: every issued request resolved.
  EXPECT_GT(report.issued, 0u);
  EXPECT_GT(report.completed, 0u);
}

TEST(ScenarioChaosTest, DiurnalChatUnderFaultsHoldsInvariants) {
  const ScenarioReport report = RunChaos("diurnal_chat", /*seed=*/5, /*scale=*/0.1);
  EXPECT_EQ(report.invariant_violations, 0u);
  EXPECT_GT(report.chaos_crashes + report.chaos_directory_churns +
                report.chaos_dropped_messages,
            0u);
}

// Multi-seed sweep at small scale: fault schedules differ per seed, so a
// handful of seeds covers crash-during-burst, churn-during-spike, etc.
TEST(ScenarioChaosTest, SeedSweepStaysViolationFree) {
  for (uint64_t seed = 20; seed < 24; seed++) {
    const ScenarioReport report = RunChaos("hot_key", seed, /*scale=*/0.05);
    EXPECT_EQ(report.invariant_violations, 0u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace actop
