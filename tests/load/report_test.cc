// Unit tests for ScenarioReport SLO evaluation and JSON canonical form.

#include "src/load/report.h"

#include <string>

#include "gtest/gtest.h"

namespace actop {
namespace {

ScenarioReport CleanReport() {
  ScenarioReport r;
  r.scenario = "unit";
  r.seed = 1;
  r.issued = 1000;
  r.completed = 990;
  r.timeouts = 10;
  r.timeout_rate = 0.01;
  r.shed_rate = 0.0;
  r.p50_ms = 5.0;
  r.p99_ms = 50.0;
  r.p999_ms = 200.0;
  return r;
}

TEST(ReportTest, EmptySloAlwaysPasses) {
  ScenarioReport r = CleanReport();
  EXPECT_TRUE(EvaluateSlo(&r));
  EXPECT_TRUE(r.slo_failures.empty());
}

TEST(ReportTest, EachBoundIsEnforced) {
  {
    ScenarioReport r = CleanReport();
    r.slo.p50_ms = 4.0;
    EXPECT_FALSE(EvaluateSlo(&r));
    ASSERT_EQ(r.slo_failures.size(), 1u);
    EXPECT_NE(r.slo_failures[0].find("p50"), std::string::npos);
  }
  {
    ScenarioReport r = CleanReport();
    r.slo.p99_ms = 49.0;
    EXPECT_FALSE(EvaluateSlo(&r));
  }
  {
    ScenarioReport r = CleanReport();
    r.slo.p999_ms = 199.0;
    EXPECT_FALSE(EvaluateSlo(&r));
  }
  {
    ScenarioReport r = CleanReport();
    r.slo.max_timeout_rate = 0.005;
    EXPECT_FALSE(EvaluateSlo(&r));
  }
  {
    ScenarioReport r = CleanReport();
    r.shed_rate = 0.2;
    r.slo.max_shed_rate = 0.1;
    EXPECT_FALSE(EvaluateSlo(&r));
  }
  {
    ScenarioReport r = CleanReport();
    r.slo.min_goodput_fraction = 0.995;  // 990/1000 = 0.99 < bound
    EXPECT_FALSE(EvaluateSlo(&r));
  }
}

TEST(ReportTest, BoundsAtExactValuePass) {
  ScenarioReport r = CleanReport();
  r.slo.p99_ms = 50.0;
  r.slo.max_timeout_rate = 0.01;
  r.slo.min_goodput_fraction = 0.99;
  EXPECT_TRUE(EvaluateSlo(&r));
}

TEST(ReportTest, InvariantViolationsAlwaysFail) {
  ScenarioReport r = CleanReport();  // no SLO bounds at all
  r.invariant_violations = 2;
  EXPECT_FALSE(EvaluateSlo(&r));
  ASSERT_EQ(r.slo_failures.size(), 1u);
  EXPECT_NE(r.slo_failures[0].find("invariant"), std::string::npos);
}

TEST(ReportTest, ReEvaluationIsIdempotent) {
  ScenarioReport r = CleanReport();
  r.slo.p50_ms = 4.0;
  EXPECT_FALSE(EvaluateSlo(&r));
  EXPECT_FALSE(EvaluateSlo(&r));
  EXPECT_EQ(r.slo_failures.size(), 1u);  // not accumulated across calls
}

TEST(ReportTest, JsonIsCanonicalAndCarriesSchema) {
  ScenarioReport r = CleanReport();
  EvaluateSlo(&r);
  const std::string a = ScenarioReportToJson(r);
  const std::string b = ScenarioReportToJson(r);
  EXPECT_EQ(a, b);
  // The schema marker is what scripts/perf_gate.sh keys on to refuse a
  // scenario report offered as a bench baseline.
  EXPECT_NE(a.find("\"schema\": \"actop-scenario-report-v1\""), std::string::npos);
  // Single JSON document, newline-terminated, with the SLO verdict last.
  EXPECT_EQ(a.front(), '{');
  EXPECT_EQ(a.back(), '\n');
  EXPECT_NE(a.find("\"slo_ok\": true"), std::string::npos);
  EXPECT_NE(a.find("\"p999\": 200"), std::string::npos);
}

TEST(ReportTest, JsonListsFailures) {
  ScenarioReport r = CleanReport();
  r.slo.p50_ms = 1.0;
  r.slo.p99_ms = 2.0;
  EvaluateSlo(&r);
  const std::string json = ScenarioReportToJson(r);
  EXPECT_NE(json.find("\"slo_ok\": false"), std::string::npos);
  EXPECT_NE(json.find("p50 5 ms > bound 1 ms"), std::string::npos);
  EXPECT_NE(json.find("p99 50 ms > bound 2 ms"), std::string::npos);
}

}  // namespace
}  // namespace actop
