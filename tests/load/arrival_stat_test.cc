// Statistical acceptance tests for the open-loop arrival machinery.
//
// Every test is deterministic: fixed seeds through src/common/rng.h, fixed
// sample counts, and test bounds chosen with wide margin (> 5 sigma) so they
// hold for ALL seeds of this generator, not just on average. A failure here
// means the sampler is wrong, not that the dice were unlucky.

#include "src/load/arrival.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/rng.h"
#include "src/load/rate_schedule.h"

namespace actop {
namespace {

// Kolmogorov-Smirnov statistic of `samples` against the exponential CDF with
// the given mean. Samples need not be sorted.
double KsExponential(std::vector<double> samples, double mean) {
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  double d = 0.0;
  for (size_t i = 0; i < samples.size(); i++) {
    const double cdf = 1.0 - std::exp(-samples[i] / mean);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max(d, std::max(cdf - lo, hi - cdf));
  }
  return d;
}

// Homogeneous schedule: inter-arrival gaps must be exponential with mean
// 1/rate — the Poisson property the whole layer is built on.
TEST(ArrivalStatTest, HomogeneousInterarrivalsAreExponential) {
  const double rate = 1000.0;  // per second
  RateSchedule schedule(rate);
  ArrivalProcess process(&schedule, /*seed=*/17);

  const int kSamples = 20000;
  std::vector<double> gaps_s;
  gaps_s.reserve(kSamples);
  SimTime t = 0;
  for (int i = 0; i < kSamples; i++) {
    const SimTime next = process.NextAfter(t);
    ASSERT_GT(next, t);
    gaps_s.push_back(ToSeconds(next - t));
    t = next;
  }

  // Mean within 3% (sigma of the sample mean is mean/sqrt(n) ~ 0.7%).
  double sum = 0.0;
  for (double g : gaps_s) {
    sum += g;
  }
  const double sample_mean = sum / kSamples;
  EXPECT_NEAR(sample_mean, 1.0 / rate, 0.03 / rate);

  // KS distance: critical value at alpha=0.001 is 1.95/sqrt(n) ~ 0.0138.
  // Bound at 2x that; a wrong distribution (e.g. uniform, or thinning bias)
  // lands far above.
  EXPECT_LT(KsExponential(gaps_s, 1.0 / rate), 0.028);
}

// Counting form of the same property: arrivals in disjoint unit windows are
// Poisson(rate) — chi-square over the count histogram.
TEST(ArrivalStatTest, HomogeneousCountsArePoisson) {
  const double rate = 50.0;  // per second, so windows hold ~50
  RateSchedule schedule(rate);
  ArrivalProcess process(&schedule, /*seed=*/29);

  const int kWindows = 2000;
  std::vector<int> counts(kWindows, 0);
  SimTime t = 0;
  const SimTime horizon = Seconds(kWindows);
  while (true) {
    t = process.NextAfter(t);
    if (t >= horizon) {
      break;
    }
    counts[static_cast<size_t>(t / Seconds(1))]++;
  }

  // Mean and variance must both equal `rate` (equidispersion — the property
  // that distinguishes Poisson from e.g. fixed-gap or bursty streams).
  double mean = 0.0;
  for (int c : counts) {
    mean += c;
  }
  mean /= kWindows;
  double var = 0.0;
  for (int c : counts) {
    var += (c - mean) * (c - mean);
  }
  var /= kWindows - 1;
  EXPECT_NEAR(mean, rate, 0.05 * rate);
  // Var[s^2] for Poisson ~ 2*rate^2/n => sigma ~ 1.6; allow ~6 sigma.
  EXPECT_NEAR(var, rate, 0.20 * rate);
}

// Non-homogeneous: realized arrivals per window must track the analytic
// integral of the diurnal rate curve through its peaks AND troughs.
TEST(ArrivalStatTest, DiurnalRateEnvelopeIsTracked) {
  RateSchedule schedule(2000.0);
  schedule.AddDiurnal(Seconds(20), 0.7, /*phase=*/0.0);
  ArrivalProcess process(&schedule, /*seed=*/41);

  const SimDuration kWindow = Seconds(2);
  const int kWindows = 40;  // four full periods
  std::vector<int> counts(kWindows, 0);
  SimTime t = 0;
  const SimTime horizon = kWindow * kWindows;
  while (true) {
    t = process.NextAfter(t);
    if (t >= horizon) {
      break;
    }
    counts[static_cast<size_t>(t / kWindow)]++;
  }

  for (int w = 0; w < kWindows; w++) {
    const double expected =
        schedule.ExpectedArrivals(kWindow * w, kWindow * (w + 1));
    // Poisson sigma = sqrt(expected) (~35 at the trough); 5 sigma.
    const double tol = 5.0 * std::sqrt(expected);
    EXPECT_NEAR(counts[w], expected, tol) << "window " << w;
  }

  // The curve actually swings: peak windows must hold ~(1.7/0.3)x the trough
  // windows. Compare best vs worst window against analytic expectations.
  const int max_w = static_cast<int>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
  const int min_w = static_cast<int>(
      std::min_element(counts.begin(), counts.end()) - counts.begin());
  EXPECT_GT(counts[max_w], 3.0 * counts[min_w]);
}

// Flash-crowd step: the realized rate must jump by the step factor inside
// the step window and return to base outside it.
TEST(ArrivalStatTest, FlashCrowdStepChangesRealizedRate) {
  const double base = 1000.0;
  RateSchedule schedule(base);
  schedule.AddStep(Seconds(10), Seconds(20), 5.0);
  ArrivalProcess process(&schedule, /*seed=*/53);

  uint64_t before = 0;
  uint64_t during = 0;
  uint64_t after = 0;
  SimTime t = 0;
  while (true) {
    t = process.NextAfter(t);
    if (t >= Seconds(30)) {
      break;
    }
    if (t < Seconds(10)) {
      before++;
    } else if (t < Seconds(20)) {
      during++;
    } else {
      after++;
    }
  }
  // Each phase is 10 s: ~10000 / ~50000 / ~10000 expected; 5-sigma bounds.
  EXPECT_NEAR(static_cast<double>(before), 10000.0, 500.0);
  EXPECT_NEAR(static_cast<double>(during), 50000.0, 1120.0);
  EXPECT_NEAR(static_cast<double>(after), 10000.0, 500.0);
}

// The thinning envelope must be sound for composite schedules: no arrival may
// be generated where RateAt is zero, and ExpectedArrivals must match realized
// counts for a step+spike+diurnal product.
TEST(ArrivalStatTest, CompositeScheduleMatchesAnalyticIntegral) {
  RateSchedule schedule(800.0);
  schedule.AddDiurnal(Seconds(15), 0.4, 1.0);
  schedule.AddStep(Seconds(8), Seconds(16), 3.0);
  schedule.AddSpike(Seconds(20), 4.0, Seconds(2));
  ArrivalProcess process(&schedule, /*seed=*/67);

  uint64_t realized = 0;
  SimTime t = 0;
  const SimTime horizon = Seconds(30);
  while (true) {
    t = process.NextAfter(t);
    if (t >= horizon) {
      break;
    }
    realized++;
  }
  const double expected = schedule.ExpectedArrivals(0, horizon);
  EXPECT_NEAR(static_cast<double>(realized), expected, 5.0 * std::sqrt(expected));
}

// A zero-rate window (step factor 0) must produce no arrivals at all — the
// "service holds its breath" shape (maintenance window, upstream outage).
TEST(ArrivalStatTest, ZeroRateWindowProducesNoArrivals) {
  RateSchedule schedule(5000.0);
  schedule.AddStep(Seconds(5), Seconds(10), 0.0);
  ArrivalProcess process(&schedule, /*seed=*/71);

  SimTime t = 0;
  while (true) {
    t = process.NextAfter(t);
    if (t >= Seconds(15)) {
      break;
    }
    EXPECT_FALSE(t >= Seconds(5) && t < Seconds(10)) << "arrival at " << t;
  }
}

// Determinism: the arrival stream is a pure function of (schedule, seed).
TEST(ArrivalStatTest, SameSeedSameStream) {
  RateSchedule schedule(1234.0);
  schedule.AddDiurnal(Seconds(7), 0.5, 0.3);
  schedule.AddSpike(Seconds(3), 2.0, Seconds(1));

  ArrivalProcess a(&schedule, 99);
  ArrivalProcess b(&schedule, 99);
  SimTime ta = 0;
  SimTime tb = 0;
  for (int i = 0; i < 5000; i++) {
    ta = a.NextAfter(ta);
    tb = b.NextAfter(tb);
    ASSERT_EQ(ta, tb) << "diverged at arrival " << i;
  }

  ArrivalProcess c(&schedule, 100);
  SimTime tc = 0;
  int same = 0;
  ta = 0;
  for (int i = 0; i < 1000; i++) {
    ta = a.NextAfter(ta);
    tc = c.NextAfter(tc);
    same += (ta == tc);
  }
  EXPECT_LT(same, 10) << "different seeds produced overlapping streams";
}

}  // namespace
}  // namespace actop
