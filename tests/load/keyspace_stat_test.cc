// Statistical acceptance tests for the key-popularity samplers.
//
// Same discipline as arrival_stat_test.cc: fixed seeds, bounds wide enough
// (>= 5 sigma) that a failure indicates a wrong distribution, not bad luck.

#include "src/load/keyspace.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/rng.h"

namespace actop {
namespace {

// Realized frequencies of a Zipf sampler must match the analytic P(k) via a
// chi-square test over the head keys plus a pooled tail bucket.
void CheckZipfFrequencies(uint64_t n, double s, uint64_t seed) {
  ZipfSampler zipf(n, s);
  Rng rng(seed);
  const int kSamples = 200000;
  std::vector<uint64_t> counts(n + 1, 0);
  for (int i = 0; i < kSamples; i++) {
    const uint64_t k = zipf.Sample(rng);
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, n);
    counts[k]++;
  }

  // Chi-square over the head (every key with expectation >= 20) plus one
  // pooled tail cell.
  double chi2 = 0.0;
  int cells = 0;
  double tail_expected = 0.0;
  uint64_t tail_observed = 0;
  for (uint64_t k = 1; k <= n; k++) {
    const double expected = zipf.Probability(k) * kSamples;
    if (expected >= 20.0) {
      const double diff = static_cast<double>(counts[k]) - expected;
      chi2 += diff * diff / expected;
      cells++;
    } else {
      tail_expected += expected;
      tail_observed += counts[k];
    }
  }
  if (tail_expected >= 20.0) {
    const double diff = static_cast<double>(tail_observed) - tail_expected;
    chi2 += diff * diff / tail_expected;
    cells++;
  }
  ASSERT_GT(cells, 5);
  // Chi-square with d = cells-1 dof: mean d, sigma sqrt(2d). Bound at
  // d + 10*sqrt(2d) — far beyond any plausible statistical fluctuation.
  const double dof = cells - 1;
  EXPECT_LT(chi2, dof + 10.0 * std::sqrt(2.0 * dof))
      << "n=" << n << " s=" << s << " cells=" << cells;
}

TEST(ZipfStatTest, FrequenciesMatchSmallN) { CheckZipfFrequencies(100, 1.1, 7); }

TEST(ZipfStatTest, FrequenciesMatchModerateSkew) { CheckZipfFrequencies(5000, 0.8, 11); }

TEST(ZipfStatTest, FrequenciesMatchStrongSkew) { CheckZipfFrequencies(5000, 1.5, 13); }

// The rejection-inversion sampler must stay exact for million-key spaces
// (no table, O(1) per draw) — spot-check the head probabilities, which is
// where hot-key scenarios live.
TEST(ZipfStatTest, MillionKeyHeadFrequencies) {
  const uint64_t n = 1000000;
  const double s = 1.1;
  ZipfSampler zipf(n, s);
  Rng rng(17);
  const int kSamples = 300000;
  std::vector<uint64_t> head(11, 0);
  for (int i = 0; i < kSamples; i++) {
    const uint64_t k = zipf.Sample(rng);
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, n);
    if (k <= 10) {
      head[k]++;
    }
  }
  // Analytic head probabilities via the generalized harmonic sum. H(n, 1.1)
  // converges slowly; compute it directly (one-time O(n) in a test is fine).
  double harmonic = 0.0;
  for (uint64_t k = 1; k <= n; k++) {
    harmonic += std::pow(static_cast<double>(k), -s);
  }
  for (uint64_t k = 1; k <= 10; k++) {
    const double p = std::pow(static_cast<double>(k), -s) / harmonic;
    const double expected = p * kSamples;
    EXPECT_NEAR(static_cast<double>(head[k]), expected, 5.0 * std::sqrt(expected))
        << "key " << k;
  }
}

TEST(ZipfStatTest, ZeroExponentIsUniform) {
  const uint64_t n = 1000;
  ZipfSampler zipf(n, 0.0);
  Rng rng(23);
  const int kSamples = 100000;
  std::vector<uint64_t> counts(n + 1, 0);
  for (int i = 0; i < kSamples; i++) {
    counts[zipf.Sample(rng)]++;
  }
  const double expected = static_cast<double>(kSamples) / n;  // 100 per key
  double chi2 = 0.0;
  for (uint64_t k = 1; k <= n; k++) {
    const double diff = static_cast<double>(counts[k]) - expected;
    chi2 += diff * diff / expected;
  }
  const double dof = n - 1;
  EXPECT_LT(chi2, dof + 10.0 * std::sqrt(2.0 * dof));
}

// Bounded Pareto: the realized tail must follow the truncated power law.
TEST(ParetoStatTest, TailFollowsPowerLaw) {
  const uint64_t lo = 4;
  const uint64_t hi = 4000;
  const double alpha = 1.25;
  BoundedParetoSampler pareto(lo, hi, alpha);
  Rng rng(31);
  const int kSamples = 200000;
  std::vector<uint64_t> samples;
  samples.reserve(kSamples);
  for (int i = 0; i < kSamples; i++) {
    const uint64_t x = pareto.Sample(rng);
    ASSERT_GE(x, lo);
    ASSERT_LE(x, hi);
    samples.push_back(x);
  }
  // Empirical CCDF at log-spaced integer probe points vs the analytic
  // (continuous) CCDF. The sampler floors, so for integer k:
  // floor(x) > k  <=>  x >= k + 1, i.e. the analytic point is Ccdf(k + 1).
  for (double probe : {8.0, 16.0, 64.0, 256.0, 1024.0}) {
    uint64_t above = 0;
    for (uint64_t x : samples) {
      above += (static_cast<double>(x) > probe);
    }
    const double p = pareto.Ccdf(probe + 1.0);
    const double expected = p * kSamples;
    const double sigma = std::sqrt(kSamples * p * (1.0 - p));
    EXPECT_NEAR(static_cast<double>(above), expected, 6.0 * sigma + 1.0)
        << "probe " << probe;
  }
}

TEST(ParetoStatTest, DegenerateRangeReturnsConstant) {
  BoundedParetoSampler pareto(7, 7, 2.0);
  Rng rng(37);
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(pareto.Sample(rng), 7u);
  }
}

TEST(KeyspaceStatTest, SamplersAreDeterministic) {
  ZipfSampler zipf(100000, 1.1);
  BoundedParetoSampler pareto(2, 1000, 1.5);
  Rng rng_a(5);
  Rng rng_b(5);
  for (int i = 0; i < 10000; i++) {
    ASSERT_EQ(zipf.Sample(rng_a), zipf.Sample(rng_b));
    ASSERT_EQ(pareto.Sample(rng_a), pareto.Sample(rng_b));
  }
}

}  // namespace
}  // namespace actop
