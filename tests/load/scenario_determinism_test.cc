// Determinism regression: the same scenario + seed must produce a
// byte-identical JSON report across independent runs. This pins down the
// whole stack — engine tie-breaking, RNG streams, thinning sampler, JSON
// number formatting — because ANY nondeterminism anywhere in the simulation
// shows up as a diff here.
//
// Runs use small scales so the whole matrix stays inside the tier-1 budget;
// the full-scale runs exercise the same single code path.

#include <string>

#include "gtest/gtest.h"
#include "src/load/report.h"
#include "src/load/scenarios.h"

namespace actop {
namespace {

std::string RunOnce(const ScenarioDef& def, uint64_t seed, bool chaos) {
  ScenarioOptions options;
  options.scale = 0.02;
  options.seed = seed;
  options.chaos = chaos;
  // No alloc counter: the report must not depend on allocator behaviour.
  return ScenarioReportToJson(def.run(options));
}

TEST(ScenarioDeterminismTest, EveryScenarioIsByteIdenticalAcrossRuns) {
  for (const ScenarioDef& def : ScenarioRegistry()) {
    SCOPED_TRACE(def.name);
    const std::string first = RunOnce(def, /*seed=*/7, /*chaos=*/false);
    const std::string second = RunOnce(def, /*seed=*/7, /*chaos=*/false);
    EXPECT_EQ(first, second);
    // Sanity: the report is not trivially empty.
    EXPECT_NE(first.find("\"schema\": \"actop-scenario-report-v1\""), std::string::npos);
    EXPECT_NE(first.find("\"p999\""), std::string::npos);
  }
}

TEST(ScenarioDeterminismTest, ChaosRunsAreDeterministicToo) {
  // The fault schedule is seed-driven, so chaos runs replay byte-for-byte —
  // this is what makes a failing chaos seed reproducible.
  const ScenarioDef* def = FindScenario("reconnect_storm");
  ASSERT_NE(def, nullptr);
  const std::string first = RunOnce(*def, /*seed=*/11, /*chaos=*/true);
  const std::string second = RunOnce(*def, /*seed=*/11, /*chaos=*/true);
  EXPECT_EQ(first, second);
}

TEST(ScenarioDeterminismTest, DifferentSeedsDiffer) {
  const ScenarioDef* def = FindScenario("diurnal_chat");
  ASSERT_NE(def, nullptr);
  EXPECT_NE(RunOnce(*def, 1, false), RunOnce(*def, 2, false));
}

TEST(ScenarioDeterminismTest, RegistryNamesResolve) {
  EXPECT_GE(ScenarioRegistry().size(), 5u);
  for (const ScenarioDef& def : ScenarioRegistry()) {
    EXPECT_EQ(FindScenario(def.name), &def);
  }
  EXPECT_EQ(FindScenario("no_such_scenario"), nullptr);
}

}  // namespace
}  // namespace actop
