// Parallel-mode acceptance: statistical equivalence to the serial engine and
// fixed-shard-count determinism.
//
// The conservative-window parallel core is NOT byte-identical to serial for
// shards > 1 (same-instant events on different shards interleave
// differently), so its contract is statistical: the same workload must
// produce the same throughput and the same latency *distribution*. The
// equivalence test runs a fig10b-shaped Halo Presence experiment (both ActOp
// optimizations on, the bench_cluster shape scaled for tier-1) serial and at
// four shards, and compares the client-latency distributions with a
// two-sample Kolmogorov-Smirnov bound set at > 5 sigma — the
// arrival_stat_test discipline: a failure means the parallel engine changed
// the system's behaviour, not that the dice were unlucky.
//
// Determinism within a fixed shard count is byte-level: the scenario JSON
// report — every percentile, every counter — must be identical across runs
// at --threads=4, exactly as the serial determinism suite pins for
// --threads=1.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>

#include "gtest/gtest.h"
#include "src/common/histogram.h"
#include "src/common/sim_time.h"
#include "src/load/report.h"
#include "src/load/scenarios.h"
#include "src/runtime/cluster.h"
#include "src/sim/sharded_engine.h"
#include "src/workload/halo_presence.h"

namespace actop {
namespace {

struct HaloStats {
  Histogram latency;
  uint64_t issued = 0;
  uint64_t completed = 0;
  uint64_t timeouts = 0;
};

// A tier-1-sized fig10b shape: both optimizations on, the bench_cluster
// parameter family, 10 simulated seconds of measurement after warm-up.
HaloStats RunFig10bShaped(int shards) {
  ClusterConfig cfg;
  cfg.num_servers = 8;
  cfg.seed = 42;
  cfg.enable_partitioning = true;
  cfg.partition.exchange_period = Seconds(1);
  cfg.partition.exchange_min_gap = Seconds(1);
  cfg.partition.max_peers_per_round = 4;
  cfg.partition.pairwise.candidate_set_size = 256;
  cfg.partition.pairwise.balance_delta = 200;
  cfg.partition.edge_sample_capacity = 16384;
  cfg.partition.edge_decay_period = Seconds(10);
  cfg.enable_thread_optimization = true;
  cfg.thread_controller.period = Seconds(1);
  cfg.thread_controller.eta = 100e-6;

  ShardedEngineConfig ec;
  ec.shards = shards;
  ec.lookahead = cfg.network.one_way_latency;
  ShardedEngine engine(ec);
  Cluster cluster(&engine, cfg);

  HaloWorkloadConfig w;
  w.target_players = 1500;
  w.idle_pool_target = 15;
  w.request_rate = 900.0;
  w.seed = 42 ^ 0x517cc1b7;
  w.request_bytes = 800;
  w.status_bytes = 1600;
  w.update_bytes = 1200;
  HaloWorkload halo(&cluster, w);
  halo.Start();
  cluster.StartOptimizers();

  engine.RunUntil(Seconds(5));
  halo.clients().ResetStats();
  engine.RunUntil(Seconds(15));

  HaloStats out;
  out.latency = halo.clients().latency();
  out.issued = halo.clients().issued();
  out.completed = halo.clients().completed();
  out.timeouts = halo.clients().timeouts();
  return out;
}

// Two-sample KS distance, probed at both histograms' quantile grid (the
// histograms share bucket boundaries, so CdfAt comparisons are exact at
// bucket resolution).
double TwoSampleKs(const Histogram& a, const Histogram& b) {
  double d = 0.0;
  for (int i = 1; i < 1000; i++) {
    const double q = static_cast<double>(i) / 1000.0;
    for (const Histogram* h : {&a, &b}) {
      const int64_t v = h->ValueAtQuantile(q);
      d = std::max(d, std::abs(a.CdfAt(v) - b.CdfAt(v)));
    }
  }
  return d;
}

TEST(ScenarioParallelTest, FourShardFig10bIsStatisticallyEquivalentToSerial) {
  const HaloStats serial = RunFig10bShaped(/*shards=*/1);
  const HaloStats parallel = RunFig10bShaped(/*shards=*/4);

  // Throughput: the open-loop arrival schedule is engine-independent, so the
  // completed-call counts must agree to within a sliver (calls in flight at
  // the measurement edges).
  ASSERT_GT(serial.completed, 5000u);
  EXPECT_EQ(serial.timeouts, 0u);
  EXPECT_EQ(parallel.timeouts, 0u);
  const double completed_ratio =
      static_cast<double>(parallel.completed) / static_cast<double>(serial.completed);
  EXPECT_GT(completed_ratio, 0.99);
  EXPECT_LT(completed_ratio, 1.01);

  // Latency distribution: two-sample KS below the 5-sigma band for these
  // sample sizes (c(5 sigma) ~ 2.75), with 1.5x slack for the histogram's
  // bucket resolution. A real behavioural divergence (double execution,
  // missed lookahead, skewed queueing) lands far above this.
  const double n = static_cast<double>(serial.latency.count());
  const double m = static_cast<double>(parallel.latency.count());
  ASSERT_GT(n, 0.0);
  ASSERT_GT(m, 0.0);
  const double bound = 1.5 * 2.75 * std::sqrt((n + m) / (n * m));
  const double ks = TwoSampleKs(serial.latency, parallel.latency);
  EXPECT_LT(ks, bound) << "serial p50/p99 " << serial.latency.p50() << "/"
                       << serial.latency.p99() << " vs parallel " << parallel.latency.p50()
                       << "/" << parallel.latency.p99();

  // Median sanity on top of the KS shape check.
  const double p50_ratio = static_cast<double>(parallel.latency.p50()) /
                           static_cast<double>(std::max<int64_t>(serial.latency.p50(), 1));
  EXPECT_GT(p50_ratio, 0.8);
  EXPECT_LT(p50_ratio, 1.25);
}

std::string RunScenarioOnce(const ScenarioDef& def, uint64_t seed, bool chaos, int threads) {
  ScenarioOptions options;
  options.scale = 0.02;
  options.seed = seed;
  options.chaos = chaos;
  options.threads = threads;
  return ScenarioReportToJson(def.run(options));
}

TEST(ScenarioParallelTest, ReportsAreByteIdenticalAcrossRunsAtFourThreads) {
  for (const char* name : {"halo_launch", "diurnal_chat"}) {
    SCOPED_TRACE(name);
    const ScenarioDef* def = FindScenario(name);
    ASSERT_NE(def, nullptr);
    const std::string first = RunScenarioOnce(*def, /*seed=*/7, /*chaos=*/false, /*threads=*/4);
    const std::string second = RunScenarioOnce(*def, /*seed=*/7, /*chaos=*/false, /*threads=*/4);
    EXPECT_EQ(first, second);
    EXPECT_NE(first.find("\"schema\": \"actop-scenario-report-v1\""), std::string::npos);
  }
}

TEST(ScenarioParallelTest, ChaosReportsAreDeterministicAtFourThreads) {
  const ScenarioDef* def = FindScenario("reconnect_storm");
  ASSERT_NE(def, nullptr);
  const std::string first = RunScenarioOnce(*def, /*seed=*/11, /*chaos=*/true, /*threads=*/4);
  const std::string second = RunScenarioOnce(*def, /*seed=*/11, /*chaos=*/true, /*threads=*/4);
  EXPECT_EQ(first, second);
}

TEST(ScenarioParallelTest, SerialReportIsIndependentOfThreadsFlagAtOne) {
  // --threads=1 must be the serial engine exactly: same bytes as the default.
  const ScenarioDef* def = FindScenario("diurnal_chat");
  ASSERT_NE(def, nullptr);
  const std::string implicit = RunScenarioOnce(*def, /*seed=*/7, /*chaos=*/false, /*threads=*/1);
  ScenarioOptions options;
  options.scale = 0.02;
  options.seed = 7;
  const std::string defaulted = ScenarioReportToJson(def->run(options));
  EXPECT_EQ(implicit, defaulted);
}

}  // namespace
}  // namespace actop
