#include <gtest/gtest.h>

#include "src/common/sim_time.h"
#include "src/runtime/cluster.h"
#include "src/sim/simulation.h"
#include "src/workload/chat.h"
#include "src/workload/counter.h"
#include "src/workload/halo_presence.h"
#include "src/workload/heartbeat.h"
#include "src/workload/social.h"

namespace actop {
namespace {

TEST(CounterWorkloadTest, EveryResponseIncrementsExactlyOnce) {
  Simulation sim;
  Cluster cluster(&sim, ClusterConfig{.num_servers = 1});
  CounterWorkloadConfig cfg;
  cfg.num_actors = 100;
  cfg.request_rate = 2000.0;
  CounterWorkload workload(&cluster, cfg);
  workload.Start();
  sim.RunUntil(Seconds(5));
  workload.Stop();
  sim.RunUntil(sim.now() + Seconds(2));
  EXPECT_GT(workload.clients().completed(), 9000u);
  EXPECT_EQ(workload.TotalCount(), workload.clients().completed());
}

TEST(CounterWorkloadTest, LatencyReasonableUnderLightLoad) {
  Simulation sim;
  Cluster cluster(&sim, ClusterConfig{.num_servers = 1});
  CounterWorkloadConfig cfg;
  cfg.num_actors = 100;
  cfg.request_rate = 1000.0;
  CounterWorkload workload(&cluster, cfg);
  workload.Start();
  sim.RunUntil(Seconds(5));
  EXPECT_LT(workload.clients().latency().p50(), Millis(5));
}

TEST(HeartbeatWorkloadTest, SustainsLoadOnOneServer) {
  Simulation sim;
  Cluster cluster(&sim, ClusterConfig{.num_servers = 1});
  HeartbeatWorkloadConfig cfg;
  cfg.num_monitors = 500;
  cfg.request_rate = 5000.0;
  HeartbeatWorkload workload(&cluster, cfg);
  workload.Start();
  sim.RunUntil(Seconds(5));
  workload.Stop();
  sim.RunUntil(sim.now() + Seconds(2));
  EXPECT_GT(workload.clients().completed(), 23000u);
  EXPECT_EQ(workload.clients().timeouts(), 0u);
}

TEST(HaloWorkloadTest, PopulationAndGamesReachSteadyState) {
  Simulation sim;
  Cluster cluster(&sim, ClusterConfig{.num_servers = 4});
  HaloWorkloadConfig cfg;
  cfg.target_players = 800;
  cfg.idle_pool_target = 8;
  cfg.request_rate = 200.0;
  cfg.time_scale = 0.01;  // games last 12–18 s
  HaloWorkload workload(&cluster, cfg);
  workload.Start();
  // A player's lifetime is 3-5 games of 12-18 s each plus idle gaps; run
  // long enough for departures and replacements to happen.
  sim.RunUntil(Seconds(90));

  EXPECT_EQ(workload.concurrent_players(), 800);
  // ~(800-8)/8 games concurrently.
  EXPECT_GT(workload.active_games(), 80);
  EXPECT_LE(workload.active_games(), 100);
  // Churn: games have ended and players departed + been replaced.
  EXPECT_GT(workload.games_started(), static_cast<uint64_t>(workload.active_games()));
  EXPECT_GT(workload.players_departed(), 0u);
}

TEST(HaloWorkloadTest, BroadcastPatternGeneratesEighteenMessages) {
  Simulation sim;
  Cluster cluster(&sim, ClusterConfig{.num_servers = 4});
  HaloWorkloadConfig cfg;
  cfg.target_players = 160;
  cfg.idle_pool_target = 0;
  cfg.request_rate = 100.0;
  cfg.time_scale = 1.0;  // very long games: membership stays static while measuring
  HaloWorkload workload(&cluster, cfg);
  workload.Start();
  sim.RunUntil(Seconds(10));  // warm-up: joins, activations

  const auto before = cluster.metrics().TakeWindow();
  (void)before;
  const uint64_t broadcasts_before = workload.state().broadcasts;
  const uint64_t completed_before = workload.clients().completed();
  sim.RunUntil(Seconds(40));
  const auto window = cluster.metrics().TakeWindow();
  const uint64_t broadcasts = workload.state().broadcasts - broadcasts_before;
  const uint64_t requests = workload.clients().completed() - completed_before;

  ASSERT_GT(requests, 500u);
  // Every status request triggers exactly one full broadcast.
  EXPECT_NEAR(static_cast<double>(broadcasts), static_cast<double>(requests),
              static_cast<double>(requests) * 0.05);
  // 18 actor messages per request: player->game, game->8, 8 replies, game
  // reply == 1+8+8+1 = 18 app-message legs.
  const double msgs_per_request =
      static_cast<double>(window.remote_msgs + window.local_msgs) /
      static_cast<double>(requests);
  EXPECT_NEAR(msgs_per_request, 18.0, 1.5);
}

TEST(HaloWorkloadTest, RemoteFractionHighUnderRandomPlacement) {
  Simulation sim;
  Cluster cluster(&sim, ClusterConfig{.num_servers = 8});
  HaloWorkloadConfig cfg;
  cfg.target_players = 800;
  cfg.idle_pool_target = 8;
  cfg.request_rate = 300.0;
  HaloWorkload workload(&cluster, cfg);
  workload.Start();
  sim.RunUntil(Seconds(20));
  // The paper observes ~90% remote on 10 servers; on 8 servers expect 7/8.
  EXPECT_GT(cluster.RemoteMessageFraction(), 0.75);
}

TEST(ChatWorkloadTest, MessagesFanOutToRoomMembers) {
  Simulation sim;
  Cluster cluster(&sim, ClusterConfig{.num_servers = 2});
  ChatWorkloadConfig cfg;
  cfg.num_users = 200;
  cfg.num_rooms = 10;
  cfg.message_rate = 200.0;
  cfg.rehomes_per_period = 0;
  ChatWorkload chat(&cluster, cfg);
  chat.Start();
  sim.RunUntil(Seconds(10));
  EXPECT_GT(chat.state().messages_posted, 1000u);
  // ~20 members per room; each post notifies members-1 others.
  const double fanout = static_cast<double>(chat.state().notifications) /
                        static_cast<double>(chat.state().messages_posted);
  EXPECT_GT(fanout, 10.0);
  EXPECT_LT(fanout, 25.0);
}

TEST(ChatWorkloadTest, RehomingChangesRooms) {
  Simulation sim;
  Cluster cluster(&sim, ClusterConfig{.num_servers = 2});
  ChatWorkloadConfig cfg;
  cfg.num_users = 100;
  cfg.num_rooms = 10;
  cfg.message_rate = 50.0;
  cfg.rehome_period = Seconds(1);
  cfg.rehomes_per_period = 10;
  ChatWorkload chat(&cluster, cfg);
  chat.Start();
  sim.RunUntil(Seconds(10));
  // Rehoming generates join/leave traffic; system stays live.
  EXPECT_GT(chat.state().messages_posted, 100u);
}

TEST(SocialWorkloadTest, FanOutMatchesFollowerCounts) {
  Simulation sim;
  Cluster cluster(&sim, ClusterConfig{.num_servers = 2});
  SocialWorkloadConfig cfg;
  cfg.num_users = 300;
  cfg.mean_following = 8;
  cfg.post_rate = 100.0;
  cfg.read_rate = 0.001;  // effectively posts only
  cfg.follows_per_period = 0;
  SocialWorkload social(&cluster, cfg);
  social.Start();
  sim.RunUntil(Seconds(12));
  ASSERT_GT(social.state().posts, 500u);
  // Mean deliveries per post == mean followers per user ~= mean_following
  // (minus self-follow skips).
  const double fanout = static_cast<double>(social.state().deliveries) /
                        static_cast<double>(social.state().posts);
  EXPECT_GT(fanout, 5.0);
  EXPECT_LT(fanout, 10.0);
}

TEST(SocialWorkloadTest, InDegreeIsSkewed) {
  Simulation sim;
  Cluster cluster(&sim, ClusterConfig{.num_servers = 2});
  SocialWorkloadConfig cfg;
  cfg.num_users = 1000;
  cfg.mean_following = 10;
  cfg.zipf_skew = 0.8;
  SocialWorkload social(&cluster, cfg);
  social.Start();
  sim.RunUntil(Seconds(1));
  // The most popular user has far more followers than the median user.
  int max_followers = 0;
  std::vector<int> counts;
  for (uint64_t u = 1; u <= 1000; u++) {
    counts.push_back(social.FollowerCount(u));
    max_followers = std::max(max_followers, social.FollowerCount(u));
  }
  std::nth_element(counts.begin(), counts.begin() + 500, counts.end());
  const int median = counts[500];
  EXPECT_GT(max_followers, std::max(1, median) * 10);
}

TEST(SocialWorkloadTest, PartitioningReducesRemoteTrafficDespiteCelebrities) {
  auto remote_fraction = [](bool partitioning) {
    Simulation sim;
    ClusterConfig cfg;
    cfg.num_servers = 4;
    cfg.seed = 17;
    cfg.enable_partitioning = partitioning;
    cfg.partition.exchange_period = Seconds(1);
    cfg.partition.exchange_min_gap = Seconds(1);
    cfg.partition.pairwise.candidate_set_size = 256;
    Cluster cluster(&sim, cfg);
    SocialWorkloadConfig wcfg;
    wcfg.num_users = 600;
    wcfg.mean_following = 8;
    wcfg.post_rate = 150.0;
    wcfg.read_rate = 300.0;
    SocialWorkload social(&cluster, wcfg);
    social.Start();
    cluster.StartOptimizers();
    sim.RunUntil(Seconds(25));
    cluster.metrics().TakeWindow();
    sim.RunUntil(Seconds(40));
    return cluster.metrics().TakeWindow().remote_fraction();
  };
  const double base = remote_fraction(false);
  const double opt = remote_fraction(true);
  EXPECT_GT(base, 0.5);
  // A heavy-tailed graph cannot be fully localized (a celebrity's followers
  // span all servers), but partitioning must still cut remote traffic.
  EXPECT_LT(opt, base * 0.8);
}

}  // namespace
}  // namespace actop
