// Cross-engine determinism oracle for the event engine.
//
// The golden hashes below were recorded against the seed engine (binary heap
// + lazy cancellation) before the indexed-heap rewrite. The workload drives
// every schedule-order-sensitive code path — same-timestamp ties, cancels of
// pending events, periodic create/cancel churn, RunUntil slicing — and folds
// (callback tag, sim.now()) of every user callback into a hash. Any engine
// change that alters the dispatch order of user events, however slightly,
// changes the hash. If this test ever fails after an intentional semantic
// change, re-derive the goldens with the PREVIOUS engine, not the new one.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/sim/simulation.h"

namespace actop {
namespace {

uint64_t Mix(uint64_t h, uint64_t v) { return SplitMix64(h ^ (v + 0x9e3779b97f4a7c15ULL)); }

// One deterministic pseudo-random engine workload; returns an order-sensitive
// digest of every user callback the engine dispatched.
uint64_t RunWorkload(uint64_t seed) {
  Simulation sim;
  Rng rng(seed);
  uint64_t h = SplitMix64(seed);
  uint64_t executed = 0;

  struct Tracked {
    EventId id;
    size_t slot;  // index into fired[]
  };
  std::vector<Tracked> pending;
  std::vector<char> fired;
  std::vector<EventId> periodics;

  for (int round = 0; round < 300; round++) {
    const int ops = 1 + static_cast<int>(rng.NextBounded(8));
    for (int op = 0; op < ops; op++) {
      const uint64_t pick = rng.NextBounded(100);
      if (pick < 55) {
        // Quantized delays force same-timestamp ties; the (when, seq)
        // tie-break must run them in scheduling order.
        const SimDuration delay = static_cast<SimDuration>(rng.NextBounded(16)) * Micros(5);
        const uint64_t tag = rng.NextU64();
        const size_t slot = fired.size();
        fired.push_back(0);
        const EventId id = sim.ScheduleAfter(delay, [&h, &sim, &fired, &executed, tag, slot] {
          h = Mix(h ^ tag, static_cast<uint64_t>(sim.now()));
          fired[slot] = 1;
          executed++;
        });
        pending.push_back(Tracked{id, slot});
      } else if (pick < 75 && !pending.empty()) {
        const size_t i = static_cast<size_t>(rng.NextBounded(pending.size()));
        // Only cancel events that have not fired: cancelling a live event
        // must succeed on every engine. (Cancel-after-fire semantics have
        // their own test; the seed engine got them wrong.)
        if (!fired[pending[i].slot]) {
          EXPECT_TRUE(sim.Cancel(pending[i].id));
        }
        pending[i] = pending.back();
        pending.pop_back();
      } else if (pick < 85) {
        const SimDuration period = Micros(50 + static_cast<int64_t>(rng.NextBounded(200)));
        periodics.push_back(sim.SchedulePeriodic(period, [&h, &sim] {
          h = Mix(h, static_cast<uint64_t>(sim.now()) * 3);
        }));
      } else if (!periodics.empty()) {
        const size_t i = static_cast<size_t>(rng.NextBounded(periodics.size()));
        sim.CancelPeriodic(periodics[i]);
        periodics[i] = periodics.back();
        periodics.pop_back();
      }
    }
    sim.RunUntil(sim.now() + static_cast<SimDuration>(rng.NextBounded(10)) * Micros(37));
  }

  for (EventId id : periodics) {
    sim.CancelPeriodic(id);
  }
  // Drain with a fixed deadline (far beyond the max one-shot delay) rather
  // than Run(): the seed engine still dispatches the dead ticks of cancelled
  // periodics, so its post-Run() clock is an engine artifact, not part of the
  // user-visible dispatch order this digest is meant to pin down.
  sim.RunUntil(sim.now() + Millis(10));
  h = Mix(h, executed);
  h = Mix(h, static_cast<uint64_t>(sim.now()));
  return h;
}

struct GoldenCase {
  uint64_t seed;
  uint64_t digest;
};

// Recorded from the seed engine; see file comment.
constexpr GoldenCase kGolden[] = {
    {1, 13608650532096884948ULL},
    {42, 3189461784006902706ULL},
    {0xfeedULL, 8400127913174189921ULL},
};

TEST(SimulationDeterminismTest, MatchesSeedEngineGoldenDigests) {
  for (const GoldenCase& c : kGolden) {
    EXPECT_EQ(RunWorkload(c.seed), c.digest) << "seed " << c.seed;
  }
}

// Engine-agnostic property: the digest is a pure function of the seed.
TEST(SimulationDeterminismTest, WorkloadIsReproducible) {
  EXPECT_EQ(RunWorkload(7), RunWorkload(7));
  EXPECT_NE(RunWorkload(7), RunWorkload(8));
}

}  // namespace
}  // namespace actop
