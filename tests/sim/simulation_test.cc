#include "src/sim/simulation.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/common/sim_time.h"

namespace actop {
namespace {

TEST(SimulationTest, StartsAtTimeZero) {
  Simulation sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulationTest, RunsEventsInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.ScheduleAt(Millis(30), [&] { order.push_back(3); });
  sim.ScheduleAt(Millis(10), [&] { order.push_back(1); });
  sim.ScheduleAt(Millis(20), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), Millis(30));
}

TEST(SimulationTest, SameTimeEventsRunInScheduleOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; i++) {
    sim.ScheduleAt(Millis(5), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; i++) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(SimulationTest, ScheduleAfterUsesCurrentTime) {
  Simulation sim;
  SimTime observed = -1;
  sim.ScheduleAfter(Millis(10), [&] {
    sim.ScheduleAfter(Millis(5), [&] { observed = sim.now(); });
  });
  sim.Run();
  EXPECT_EQ(observed, Millis(15));
}

TEST(SimulationTest, CancelPreventsExecution) {
  Simulation sim;
  bool ran = false;
  const EventId id = sim.ScheduleAfter(Millis(1), [&] { ran = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.Run();
  EXPECT_FALSE(ran);
}

TEST(SimulationTest, CancelTwiceReturnsFalse) {
  Simulation sim;
  const EventId id = sim.ScheduleAfter(Millis(1), [] {});
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));
  sim.Run();
}

TEST(SimulationTest, CancelInvalidIdReturnsFalse) {
  Simulation sim;
  EXPECT_FALSE(sim.Cancel(0));
  EXPECT_FALSE(sim.Cancel(12345));
}

TEST(SimulationTest, RunUntilStopsAtDeadline) {
  Simulation sim;
  int count = 0;
  sim.ScheduleAt(Millis(10), [&] { count++; });
  sim.ScheduleAt(Millis(20), [&] { count++; });
  sim.ScheduleAt(Millis(30), [&] { count++; });
  const uint64_t ran = sim.RunUntil(Millis(20));
  EXPECT_EQ(ran, 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.now(), Millis(20));
  sim.Run();
  EXPECT_EQ(count, 3);
}

TEST(SimulationTest, RunUntilSkipsCancelledEventBeyondDeadline) {
  Simulation sim;
  bool late_ran = false;
  const EventId id = sim.ScheduleAt(Millis(5), [] {});
  sim.ScheduleAt(Millis(50), [&] { late_ran = true; });
  sim.Cancel(id);
  sim.RunUntil(Millis(10));
  EXPECT_FALSE(late_ran);
  EXPECT_EQ(sim.now(), Millis(10));
}

TEST(SimulationTest, PeriodicRunsRepeatedly) {
  Simulation sim;
  int ticks = 0;
  sim.SchedulePeriodic(Millis(10), [&] { ticks++; });
  sim.RunUntil(Millis(55));
  EXPECT_EQ(ticks, 5);  // at 10, 20, 30, 40, 50
}

TEST(SimulationTest, CancelPeriodicStopsTicks) {
  Simulation sim;
  int ticks = 0;
  const EventId id = sim.SchedulePeriodic(Millis(10), [&] { ticks++; });
  sim.ScheduleAt(Millis(35), [&] { sim.CancelPeriodic(id); });
  sim.RunUntil(Millis(100));
  EXPECT_EQ(ticks, 3);
}

TEST(SimulationTest, PeriodicCanCancelItself) {
  Simulation sim;
  int ticks = 0;
  EventId id = 0;
  id = sim.SchedulePeriodic(Millis(10), [&] {
    ticks++;
    if (ticks == 2) {
      sim.CancelPeriodic(id);
    }
  });
  sim.RunUntil(Seconds(1));
  EXPECT_EQ(ticks, 2);
}

TEST(SimulationTest, EventCanScheduleMoreEvents) {
  Simulation sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    depth++;
    if (depth < 100) {
      sim.ScheduleAfter(Micros(1), recurse);
    }
  };
  sim.ScheduleAfter(Micros(1), recurse);
  sim.Run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), Micros(100));
}

TEST(SimulationTest, EventsExecutedCounter) {
  Simulation sim;
  for (int i = 0; i < 7; i++) {
    sim.ScheduleAfter(i, [] {});
  }
  sim.Run();
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(SimulationTest, RunOneReturnsFalseWhenEmpty) {
  Simulation sim;
  EXPECT_FALSE(sim.RunOne());
  sim.ScheduleAfter(1, [] {});
  EXPECT_TRUE(sim.RunOne());
  EXPECT_FALSE(sim.RunOne());
}

TEST(SimulationTest, ZeroDelayEventRunsAtCurrentTime) {
  Simulation sim;
  SimTime when = -1;
  sim.ScheduleAt(Millis(10), [&] {
    sim.ScheduleAfter(0, [&] { when = sim.now(); });
  });
  sim.Run();
  EXPECT_EQ(when, Millis(10));
}

// --- engine edge cases (indexed-heap cancellation semantics) ---

TEST(SimulationTest, CancelAfterFireReturnsFalse) {
  Simulation sim;
  const EventId id = sim.ScheduleAfter(Millis(1), [] {});
  sim.Run();
  // The seed engine wrongly returned true here (any id < next_id_ was
  // accepted) and polluted its cancelled-set forever.
  EXPECT_FALSE(sim.Cancel(id));
  EXPECT_EQ(sim.pending_events(), 0u);
  // Bookkeeping is intact: new events still schedule and cancel normally.
  const EventId id2 = sim.ScheduleAfter(Millis(1), [] {});
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_TRUE(sim.Cancel(id2));
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulationTest, CancelFromInsideOwnCallbackReturnsFalse) {
  Simulation sim;
  bool cancel_result = true;
  EventId id = 0;
  id = sim.ScheduleAfter(Millis(1), [&] { cancel_result = sim.Cancel(id); });
  sim.Run();
  EXPECT_FALSE(cancel_result);  // the event already fired
}

TEST(SimulationTest, CancelDoesNotAffectReusedSlot) {
  Simulation sim;
  // Fire-and-free a slot, then schedule a new event (which reuses it). The
  // stale id must not cancel the new occupant.
  const EventId stale = sim.ScheduleAfter(Millis(1), [] {});
  sim.Run();
  bool ran = false;
  sim.ScheduleAfter(Millis(1), [&] { ran = true; });
  EXPECT_FALSE(sim.Cancel(stale));
  sim.Run();
  EXPECT_TRUE(ran);
}

TEST(SimulationTest, PendingEventsIsExactAfterCancels) {
  Simulation sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 16; i++) {
    ids.push_back(sim.ScheduleAfter(Millis(1 + i), [] {}));
  }
  EXPECT_EQ(sim.pending_events(), 16u);
  for (int i = 0; i < 16; i += 2) {
    EXPECT_TRUE(sim.Cancel(ids[static_cast<size_t>(i)]));
  }
  // Cancelled events are removed immediately, not lazily at pop time.
  EXPECT_EQ(sim.pending_events(), 8u);
  EXPECT_EQ(sim.Run(), 8u);
}

TEST(SimulationTest, RunUntilAdvancesClockOverAllCancelledQueue) {
  Simulation sim;
  std::vector<EventId> ids;
  for (int i = 1; i <= 5; i++) {
    ids.push_back(sim.ScheduleAt(Millis(i), [] {}));
  }
  for (EventId id : ids) {
    EXPECT_TRUE(sim.Cancel(id));
  }
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.RunUntil(Millis(10)), 0u);
  EXPECT_EQ(sim.now(), Millis(10));
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(SimulationTest, CancelOnPeriodicControlIdActsAsCancelPeriodic) {
  Simulation sim;
  int ticks = 0;
  const EventId id = sim.SchedulePeriodic(Millis(10), [&] { ticks++; });
  sim.RunUntil(Millis(25));
  EXPECT_EQ(ticks, 2);
  EXPECT_TRUE(sim.Cancel(id));  // documented equivalent of CancelPeriodic
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.RunUntil(Millis(100));
  EXPECT_EQ(ticks, 2);
  EXPECT_FALSE(sim.Cancel(id));  // second cancel is stale
}

TEST(SimulationTest, CancelPeriodicReturnsFalseWhenStale) {
  Simulation sim;
  const EventId id = sim.SchedulePeriodic(Millis(10), [] {});
  EXPECT_TRUE(sim.CancelPeriodic(id));
  EXPECT_FALSE(sim.CancelPeriodic(id));
  EXPECT_FALSE(sim.CancelPeriodic(0));
  // One-shot ids are not periodic control ids.
  const EventId one_shot = sim.ScheduleAfter(Millis(1), [] {});
  EXPECT_FALSE(sim.CancelPeriodic(one_shot));
  EXPECT_TRUE(sim.Cancel(one_shot));
}

TEST(SimulationTest, PeriodicSelfCancelInsideOwnCallbackReturnsTrue) {
  Simulation sim;
  int ticks = 0;
  bool cancel_result = false;
  EventId id = 0;
  id = sim.SchedulePeriodic(Millis(10), [&] {
    ticks++;
    if (ticks == 3) {
      cancel_result = sim.CancelPeriodic(id);
    }
  });
  sim.RunUntil(Seconds(1));
  EXPECT_EQ(ticks, 3);
  EXPECT_TRUE(cancel_result);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulationTest, PeriodicCanRestartItselfInsideOwnCallback) {
  Simulation sim;
  int slow_ticks = 0;
  int fast_ticks = 0;
  EventId id = 0;
  id = sim.SchedulePeriodic(Millis(10), [&] {
    slow_ticks++;
    if (slow_ticks == 2) {
      sim.CancelPeriodic(id);
      // Reuses the freed periodic slot; the old generation must not leak
      // into the replacement.
      sim.SchedulePeriodic(Millis(5), [&] { fast_ticks++; });
    }
  });
  sim.RunUntil(Millis(41));
  EXPECT_EQ(slow_ticks, 2);   // at 10, 20
  EXPECT_EQ(fast_ticks, 4);   // at 25, 30, 35, 40
}

TEST(SimulationTest, SameTimestampTieBreakIsScheduleOrderAcrossOperations) {
  Simulation sim;
  std::vector<int> order;
  // Interleave schedules and cancels at one timestamp; survivors must run
  // in original scheduling order regardless of heap internals.
  std::vector<EventId> ids;
  for (int i = 0; i < 12; i++) {
    ids.push_back(sim.ScheduleAt(Millis(7), [&order, i] { order.push_back(i); }));
  }
  for (int i : {1, 4, 5, 9}) {
    EXPECT_TRUE(sim.Cancel(ids[static_cast<size_t>(i)]));
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 3, 6, 7, 8, 10, 11}));
}

TEST(SimulationTest, RescheduleMovesEventEitherDirection) {
  Simulation sim;
  std::vector<int> order;
  const EventId id = sim.ScheduleAt(Millis(20), [&] { order.push_back(1); });
  sim.ScheduleAt(Millis(10), [&] { order.push_back(0); });
  EXPECT_TRUE(sim.Reschedule(id, Millis(5)));  // earlier
  sim.ScheduleAt(Millis(7), [&] {
    EXPECT_TRUE(sim.Reschedule(id, Millis(30)));  // later, from inside an event
  });
  // Re-arm: the same id stays valid across reschedules until it fires.
  EXPECT_TRUE(sim.Reschedule(id, Millis(15)));
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_EQ(sim.now(), Millis(30));
}

TEST(SimulationTest, RescheduleKeepsIdValidAndCallbackIntact) {
  Simulation sim;
  int fired = 0;
  const EventId id = sim.ScheduleAt(Millis(1), [&] { fired++; });
  for (int i = 2; i <= 50; i++) {
    EXPECT_TRUE(sim.Reschedule(id, Millis(i)));
  }
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.Cancel(id));  // fired: the id is stale now
}

TEST(SimulationTest, RescheduleReturnsFalseForStaleAndPeriodicIds) {
  Simulation sim;
  const EventId fired = sim.ScheduleAfter(Millis(1), [] {});
  const EventId cancelled = sim.ScheduleAfter(Millis(2), [] {});
  sim.Cancel(cancelled);
  const EventId periodic = sim.SchedulePeriodic(Millis(3), [] {});
  sim.RunUntil(Millis(1));
  EXPECT_FALSE(sim.Reschedule(fired, Millis(9)));
  EXPECT_FALSE(sim.Reschedule(cancelled, Millis(9)));
  EXPECT_FALSE(sim.Reschedule(periodic, Millis(9)));
  EXPECT_FALSE(sim.Reschedule(0, Millis(9)));
  sim.CancelPeriodic(periodic);
}

TEST(SimulationTest, RescheduleOrdersLikeCancelPlusScheduleAt) {
  // A rescheduled event must run after events already pending at its new
  // timestamp — the exact behavior of Cancel + ScheduleAt, which it
  // replaces on the CpuModel hot path. Both orderings are verified against
  // one another across a mixed schedule.
  auto run = [](bool use_reschedule) {
    Simulation sim;
    std::vector<int> order;
    for (int i = 0; i < 4; i++) {
      sim.ScheduleAt(Millis(10), [&order, i] { order.push_back(i); });
    }
    EventId id = sim.ScheduleAt(Millis(4), [&order] { order.push_back(99); });
    if (use_reschedule) {
      EXPECT_TRUE(sim.Reschedule(id, Millis(10)));
    } else {
      EXPECT_TRUE(sim.Cancel(id));
      sim.ScheduleAt(Millis(10), [&order] { order.push_back(99); });
    }
    sim.ScheduleAt(Millis(10), [&order] { order.push_back(4); });
    sim.Run();
    return order;
  };
  const std::vector<int> with_reschedule = run(true);
  const std::vector<int> with_cancel = run(false);
  EXPECT_EQ(with_reschedule, (std::vector<int>{0, 1, 2, 3, 99, 4}));
  EXPECT_EQ(with_reschedule, with_cancel);
}

TEST(SimulationTest, RescheduleToCurrentInstantRunsAfterPendingTies) {
  Simulation sim;
  std::vector<int> order;
  EventId id = 0;
  sim.ScheduleAt(Millis(5), [&] {
    // From inside an event at t=5: move `id` to t=5. It must still run
    // after the event below that was already pending at t=5.
    EXPECT_TRUE(sim.Reschedule(id, Millis(5)));
  });
  sim.ScheduleAt(Millis(5), [&order] { order.push_back(1); });
  id = sim.ScheduleAt(Millis(20), [&order] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), Millis(5));
}

}  // namespace
}  // namespace actop
