#include "src/sim/simulation.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/common/sim_time.h"

namespace actop {
namespace {

TEST(SimulationTest, StartsAtTimeZero) {
  Simulation sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulationTest, RunsEventsInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.ScheduleAt(Millis(30), [&] { order.push_back(3); });
  sim.ScheduleAt(Millis(10), [&] { order.push_back(1); });
  sim.ScheduleAt(Millis(20), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), Millis(30));
}

TEST(SimulationTest, SameTimeEventsRunInScheduleOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; i++) {
    sim.ScheduleAt(Millis(5), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; i++) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(SimulationTest, ScheduleAfterUsesCurrentTime) {
  Simulation sim;
  SimTime observed = -1;
  sim.ScheduleAfter(Millis(10), [&] {
    sim.ScheduleAfter(Millis(5), [&] { observed = sim.now(); });
  });
  sim.Run();
  EXPECT_EQ(observed, Millis(15));
}

TEST(SimulationTest, CancelPreventsExecution) {
  Simulation sim;
  bool ran = false;
  const EventId id = sim.ScheduleAfter(Millis(1), [&] { ran = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.Run();
  EXPECT_FALSE(ran);
}

TEST(SimulationTest, CancelTwiceReturnsFalse) {
  Simulation sim;
  const EventId id = sim.ScheduleAfter(Millis(1), [] {});
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));
  sim.Run();
}

TEST(SimulationTest, CancelInvalidIdReturnsFalse) {
  Simulation sim;
  EXPECT_FALSE(sim.Cancel(0));
  EXPECT_FALSE(sim.Cancel(12345));
}

TEST(SimulationTest, RunUntilStopsAtDeadline) {
  Simulation sim;
  int count = 0;
  sim.ScheduleAt(Millis(10), [&] { count++; });
  sim.ScheduleAt(Millis(20), [&] { count++; });
  sim.ScheduleAt(Millis(30), [&] { count++; });
  const uint64_t ran = sim.RunUntil(Millis(20));
  EXPECT_EQ(ran, 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.now(), Millis(20));
  sim.Run();
  EXPECT_EQ(count, 3);
}

TEST(SimulationTest, RunUntilSkipsCancelledEventBeyondDeadline) {
  Simulation sim;
  bool late_ran = false;
  const EventId id = sim.ScheduleAt(Millis(5), [] {});
  sim.ScheduleAt(Millis(50), [&] { late_ran = true; });
  sim.Cancel(id);
  sim.RunUntil(Millis(10));
  EXPECT_FALSE(late_ran);
  EXPECT_EQ(sim.now(), Millis(10));
}

TEST(SimulationTest, PeriodicRunsRepeatedly) {
  Simulation sim;
  int ticks = 0;
  sim.SchedulePeriodic(Millis(10), [&] { ticks++; });
  sim.RunUntil(Millis(55));
  EXPECT_EQ(ticks, 5);  // at 10, 20, 30, 40, 50
}

TEST(SimulationTest, CancelPeriodicStopsTicks) {
  Simulation sim;
  int ticks = 0;
  const EventId id = sim.SchedulePeriodic(Millis(10), [&] { ticks++; });
  sim.ScheduleAt(Millis(35), [&] { sim.CancelPeriodic(id); });
  sim.RunUntil(Millis(100));
  EXPECT_EQ(ticks, 3);
}

TEST(SimulationTest, PeriodicCanCancelItself) {
  Simulation sim;
  int ticks = 0;
  EventId id = 0;
  id = sim.SchedulePeriodic(Millis(10), [&] {
    ticks++;
    if (ticks == 2) {
      sim.CancelPeriodic(id);
    }
  });
  sim.RunUntil(Seconds(1));
  EXPECT_EQ(ticks, 2);
}

TEST(SimulationTest, EventCanScheduleMoreEvents) {
  Simulation sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    depth++;
    if (depth < 100) {
      sim.ScheduleAfter(Micros(1), recurse);
    }
  };
  sim.ScheduleAfter(Micros(1), recurse);
  sim.Run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), Micros(100));
}

TEST(SimulationTest, EventsExecutedCounter) {
  Simulation sim;
  for (int i = 0; i < 7; i++) {
    sim.ScheduleAfter(i, [] {});
  }
  sim.Run();
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(SimulationTest, RunOneReturnsFalseWhenEmpty) {
  Simulation sim;
  EXPECT_FALSE(sim.RunOne());
  sim.ScheduleAfter(1, [] {});
  EXPECT_TRUE(sim.RunOne());
  EXPECT_FALSE(sim.RunOne());
}

TEST(SimulationTest, ZeroDelayEventRunsAtCurrentTime) {
  Simulation sim;
  SimTime when = -1;
  sim.ScheduleAt(Millis(10), [&] {
    sim.ScheduleAfter(0, [&] { when = sim.now(); });
  });
  sim.Run();
  EXPECT_EQ(when, Millis(10));
}

}  // namespace
}  // namespace actop
