#include "src/common/inline_task.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <utility>

namespace actop {
namespace {

TEST(InlineTaskTest, DefaultIsEmpty) {
  InlineTask t;
  EXPECT_FALSE(static_cast<bool>(t));
  InlineTask n = nullptr;
  EXPECT_FALSE(static_cast<bool>(n));
}

TEST(InlineTaskTest, InvokesSmallLambdaInline) {
  int calls = 0;
  InlineTask t([&calls] { calls++; });
  ASSERT_TRUE(static_cast<bool>(t));
  EXPECT_FALSE(t.heap_allocated());
  t();
  t();
  EXPECT_EQ(calls, 2);
}

TEST(InlineTaskTest, ThisPlusSharedPtrPlusIntStaysInline) {
  // The dominant hot-path capture shape: [this, shared_ptr<Envelope>, int].
  auto payload = std::make_shared<int>(7);
  int* out = nullptr;
  int salt = 0;
  InlineTask t([&out, payload, &salt]() mutable { out = payload.get(); salt++; });
  EXPECT_FALSE(t.heap_allocated());
  t();
  EXPECT_EQ(out, payload.get());
  EXPECT_EQ(salt, 1);
}

TEST(InlineTaskTest, LargeCaptureFallsBackToHeap) {
  uint64_t a = 1, b = 2, c = 3, d = 4, e = 5;
  uint64_t sum = 0;
  InlineTask t([a, b, c, d, e, &sum] { sum = a + b + c + d + e; });
  EXPECT_TRUE(t.heap_allocated());
  t();
  EXPECT_EQ(sum, 15u);
}

TEST(InlineTaskTest, MovePreservesCallableAndEmptiesSource) {
  auto token = std::make_shared<int>(0);
  InlineTask a([token] { (*token)++; });
  EXPECT_EQ(token.use_count(), 2);

  InlineTask b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(token.use_count(), 2);     // capture moved, not copied
  b();
  EXPECT_EQ(*token, 1);

  InlineTask c;
  c = std::move(b);
  c();
  EXPECT_EQ(*token, 2);
}

TEST(InlineTaskTest, MoveAssignDestroysPreviousTarget) {
  auto old_token = std::make_shared<int>(0);
  auto new_token = std::make_shared<int>(0);
  InlineTask t([old_token] {});
  EXPECT_EQ(old_token.use_count(), 2);
  t = InlineTask([new_token] { (*new_token)++; });
  EXPECT_EQ(old_token.use_count(), 1);  // previous capture released
  t();
  EXPECT_EQ(*new_token, 1);
}

TEST(InlineTaskTest, DestructionReleasesCapture) {
  auto token = std::make_shared<int>(0);
  {
    InlineTask t([token] {});
    EXPECT_EQ(token.use_count(), 2);
  }
  EXPECT_EQ(token.use_count(), 1);
}

TEST(InlineTaskTest, WrapsStdFunctionFromColdPaths) {
  int calls = 0;
  std::function<void()> fn = [&calls] { calls++; };
  InlineTask t(std::move(fn));
  t();
  EXPECT_EQ(calls, 1);
}

TEST(InlineTaskTest, MutableLambdaKeepsStateAcrossInvocations) {
  int observed = 0;
  InlineTask t([n = 0, &observed]() mutable { observed = ++n; });
  t();
  t();
  t();
  EXPECT_EQ(observed, 3);
}

TEST(InlineTaskTest, HeapCallableSurvivesMove) {
  auto token = std::make_shared<int>(0);
  uint64_t pad[4] = {1, 2, 3, 4};
  InlineTask a([token, pad] { (*token) += static_cast<int>(pad[0]); });
  EXPECT_TRUE(a.heap_allocated());
  InlineTask b = std::move(a);
  b();
  EXPECT_EQ(*token, 1);
  EXPECT_EQ(token.use_count(), 2);
}

}  // namespace
}  // namespace actop
