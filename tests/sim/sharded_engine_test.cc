// ShardedEngine semantics: serial delegation, conservative window execution,
// rail ordering, and fixed-shard-count determinism.
//
// These tests drive the engine directly (no network/cluster on top), so each
// property is pinned at the layer that owns it: the byte-identical
// shards == 1 contract, the "rail task at R runs after every event < R and
// before any event at R" cut semantics, and run-to-run reproducibility of
// parallel window execution. Events only touch their own shard's state (the
// thread-per-shard pinning contract), so the traces below need no locks.

#include "src/sim/sharded_engine.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/counter_rng.h"
#include "src/common/sim_time.h"
#include "src/sim/simulation.h"

namespace actop {
namespace {

struct TraceEntry {
  SimTime when = 0;
  int label = 0;

  bool operator==(const TraceEntry& o) const { return when == o.when && label == o.label; }
};

// Schedules the same jittered self-rescheduling chains on a plain Simulation
// and on an engine shard; used to compare execution traces.
void ScheduleChain(Simulation* sim, std::vector<TraceEntry>* trace, int label, SimTime start,
                   SimDuration step, SimTime stop) {
  sim->ScheduleAt(start, [sim, trace, label, step, stop, next = start]() mutable {
    trace->push_back({sim->now(), label});
    next += step;
    if (next <= stop) {
      ScheduleChain(sim, trace, label, next, step, stop);
    }
  });
}

TEST(ShardedEngineTest, SerialDelegatesToSimulation) {
  // Same schedule on a bare Simulation and on a 1-shard engine: identical
  // traces, identical clock movement, identical event counts.
  std::vector<TraceEntry> plain_trace;
  Simulation plain;
  ScheduleChain(&plain, &plain_trace, 1, Micros(10), Micros(130), Millis(2));
  ScheduleChain(&plain, &plain_trace, 2, Micros(50), Micros(70), Millis(2));
  const uint64_t plain_events = plain.RunUntil(Millis(2));

  std::vector<TraceEntry> engine_trace;
  ShardedEngine engine(ShardedEngineConfig{.shards = 1});
  ScheduleChain(&engine.sim(), &engine_trace, 1, Micros(10), Micros(130), Millis(2));
  ScheduleChain(&engine.sim(), &engine_trace, 2, Micros(50), Micros(70), Millis(2));
  const uint64_t engine_events = engine.RunUntil(Millis(2));

  EXPECT_EQ(plain_trace, engine_trace);
  EXPECT_EQ(plain_events, engine_events);
  EXPECT_EQ(engine.now(), Millis(2));
  EXPECT_EQ(engine.sim().now(), Millis(2));
  EXPECT_EQ(engine.events_executed(), plain.events_executed());
}

TEST(ShardedEngineTest, SerialRailRunsAtItsCut) {
  // Rail task at R: after every event with timestamp < R, before any event
  // at R — even on a 1-shard engine, where RunUntil otherwise delegates.
  ShardedEngine engine(ShardedEngineConfig{.shards = 1});
  std::vector<std::string> order;
  const SimTime r = Micros(500);
  engine.sim().ScheduleAt(r - 1, [&] { order.push_back("before"); });
  engine.sim().ScheduleAt(r, [&] { order.push_back("at"); });
  engine.sim().ScheduleAt(r + 1, [&] { order.push_back("after"); });
  engine.ScheduleRailAt(r, [&] { order.push_back("rail"); });
  engine.RunUntil(Millis(1));
  EXPECT_EQ(order, (std::vector<std::string>{"before", "rail", "at", "after"}));
}

TEST(ShardedEngineTest, RailTasksAtEqualTimesRunInScheduleOrder) {
  ShardedEngine engine(ShardedEngineConfig{.shards = 1});
  std::vector<int> order;
  engine.ScheduleRailAt(Micros(100), [&] { order.push_back(1); });
  engine.ScheduleRailAt(Micros(100), [&] { order.push_back(2); });
  engine.ScheduleRailAt(Micros(100), [&] { order.push_back(3); });
  engine.RunUntil(Micros(200));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(ShardedEngineTest, CancelRail) {
  ShardedEngine engine(ShardedEngineConfig{.shards = 1});
  int fired = 0;
  const uint64_t keep = engine.ScheduleRailAt(Micros(100), [&] { fired++; });
  const uint64_t cancel = engine.ScheduleRailAt(Micros(100), [&] { fired += 100; });
  EXPECT_TRUE(engine.CancelRail(cancel));
  EXPECT_FALSE(engine.CancelRail(cancel));  // double cancel
  engine.RunUntil(Millis(1));
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(engine.CancelRail(keep));  // already fired
}

TEST(ShardedEngineTest, ParallelShardsRunTheirOwnEventsInTimeOrder) {
  constexpr int kShards = 4;
  ShardedEngine engine(ShardedEngineConfig{.shards = kShards});
  std::vector<std::vector<TraceEntry>> traces(kShards);
  for (int s = 0; s < kShards; s++) {
    ScheduleChain(&engine.shard(s), &traces[static_cast<size_t>(s)], s, Micros(10 + s),
                  Micros(90 + 13 * s), Millis(5));
  }
  const uint64_t executed = engine.RunUntil(Millis(5));

  uint64_t total = 0;
  for (int s = 0; s < kShards; s++) {
    const auto& trace = traces[static_cast<size_t>(s)];
    ASSERT_FALSE(trace.empty()) << "shard " << s;
    for (size_t i = 1; i < trace.size(); i++) {
      EXPECT_LE(trace[i - 1].when, trace[i].when) << "shard " << s;
    }
    EXPECT_EQ(engine.shard(s).now(), Millis(5)) << "shard " << s;
    total += trace.size();
  }
  EXPECT_EQ(total, executed);
  EXPECT_EQ(engine.now(), Millis(5));
}

TEST(ShardedEngineTest, ParallelRailObservesAConsistentCut) {
  // Every shard runs a 10 µs metronome bumping its own counter. A rail task
  // at R must observe exactly the events strictly before R on EVERY shard:
  // the count of sub-R metronome ticks is known in closed form, so the rail
  // assertion is exact, not a race-prone inequality.
  constexpr int kShards = 4;
  ShardedEngine engine(ShardedEngineConfig{.shards = kShards});
  std::vector<std::vector<TraceEntry>> traces(kShards);
  for (int s = 0; s < kShards; s++) {
    // Ticks at 10, 20, ..., 5000 µs.
    ScheduleChain(&engine.shard(s), &traces[static_cast<size_t>(s)], s, Micros(10), Micros(10),
                  Millis(5));
  }
  const SimTime r = Micros(2505);  // between ticks: 250 ticks strictly before
  std::vector<size_t> seen(kShards, 0);
  engine.ScheduleRailAt(r, [&] {
    for (int s = 0; s < kShards; s++) {
      seen[static_cast<size_t>(s)] = traces[static_cast<size_t>(s)].size();
    }
  });
  engine.RunUntil(Millis(5));
  for (int s = 0; s < kShards; s++) {
    EXPECT_EQ(seen[static_cast<size_t>(s)], 250u) << "shard " << s;
  }
}

TEST(ShardedEngineTest, ParallelRailOnTickBoundaryRunsBeforeThatTick) {
  // Rail exactly ON an event timestamp: the rail runs first (events < R
  // complete, events == R have not started).
  constexpr int kShards = 2;
  ShardedEngine engine(ShardedEngineConfig{.shards = kShards});
  std::vector<std::vector<TraceEntry>> traces(kShards);
  for (int s = 0; s < kShards; s++) {
    ScheduleChain(&engine.shard(s), &traces[static_cast<size_t>(s)], s, Micros(100), Micros(100),
                  Millis(1));
  }
  const SimTime r = Micros(500);  // ticks at 100..400 are strictly before
  std::vector<size_t> seen(kShards, 0);
  engine.ScheduleRailAt(r, [&] {
    for (int s = 0; s < kShards; s++) {
      seen[static_cast<size_t>(s)] = traces[static_cast<size_t>(s)].size();
    }
  });
  engine.RunUntil(Millis(1));
  for (int s = 0; s < kShards; s++) {
    EXPECT_EQ(seen[static_cast<size_t>(s)], 4u) << "shard " << s;
  }
}

// Jittered chain whose next step depends on a per-shard CounterRng draw —
// the event *pattern* itself is pseudo-random, so identical traces across
// two runs demonstrate real determinism, not a trivial fixed schedule.
void ScheduleJitterChain(Simulation* sim, CounterRng* rng, std::vector<TraceEntry>* trace,
                         int label, SimTime start, SimTime stop) {
  sim->ScheduleAt(start, [sim, rng, trace, label, stop] {
    trace->push_back({sim->now(), label});
    const SimTime next =
        sim->now() + Micros(5) + static_cast<SimDuration>(rng->NextBounded(200));
    if (next <= stop) {
      ScheduleJitterChain(sim, rng, trace, label, next, stop);
    }
  });
}

TEST(ShardedEngineTest, ParallelRunsAreDeterministicForFixedShardCount) {
  constexpr int kShards = 4;
  auto run = [&] {
    ShardedEngine engine(ShardedEngineConfig{.shards = kShards});
    std::vector<std::vector<TraceEntry>> traces(kShards);
    std::vector<CounterRng> rngs;
    for (int s = 0; s < kShards; s++) {
      rngs.emplace_back(/*seed=*/99, /*stream=*/static_cast<uint64_t>(s));
    }
    for (int s = 0; s < kShards; s++) {
      ScheduleJitterChain(&engine.shard(s), &rngs[static_cast<size_t>(s)],
                          &traces[static_cast<size_t>(s)], s, Micros(10), Millis(4));
      ScheduleJitterChain(&engine.shard(s), &rngs[static_cast<size_t>(s)],
                          &traces[static_cast<size_t>(s)], 100 + s, Micros(25), Millis(4));
    }
    engine.RunUntil(Millis(4));
    return traces;
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
  // The jitter actually produced events (the determinism check is non-vacuous).
  size_t total = 0;
  for (const auto& t : a) {
    total += t.size();
  }
  EXPECT_GT(total, 100u);
}

TEST(ShardedEngineTest, ExchangeHookRunsOncePerShardPerWindow) {
  constexpr int kShards = 3;
  ShardedEngine engine(ShardedEngineConfig{.shards = kShards});
  std::vector<std::atomic<uint64_t>> calls(kShards);
  engine.set_exchange_hook([&](int shard) {
    calls[static_cast<size_t>(shard)].fetch_add(1, std::memory_order_relaxed);
  });
  uint64_t barriers = 0;
  engine.set_barrier_hook([&] { barriers++; });
  // Keep every shard busy so windows keep stepping.
  std::vector<std::vector<TraceEntry>> traces(kShards);
  for (int s = 0; s < kShards; s++) {
    ScheduleChain(&engine.shard(s), &traces[static_cast<size_t>(s)], s, Micros(20), Micros(40),
                  Millis(2));
  }
  engine.RunUntil(Millis(2));
  const uint64_t first = calls[0].load(std::memory_order_relaxed);
  EXPECT_GT(first, 0u);
  for (int s = 1; s < kShards; s++) {
    EXPECT_EQ(calls[static_cast<size_t>(s)].load(std::memory_order_relaxed), first)
        << "shard " << s;
  }
  EXPECT_EQ(barriers, first);
}

TEST(ShardedEngineTest, IdleShardsJumpToTheDeadline) {
  // With no pending events anywhere, RunUntil must advance straight to the
  // deadline (no per-lookahead window spinning across an idle gap).
  constexpr int kShards = 4;
  ShardedEngine engine(ShardedEngineConfig{.shards = kShards});
  uint64_t windows = 0;
  engine.set_barrier_hook([&] { windows++; });
  int ran = 0;
  engine.shard(2).ScheduleAt(Micros(50), [&] { ran++; });
  // A whole simulated minute of idle time after the one event.
  engine.RunUntil(Seconds(60));
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(engine.now(), Seconds(60));
  for (int s = 0; s < kShards; s++) {
    EXPECT_EQ(engine.shard(s).now(), Seconds(60));
  }
  // One window for the event (plus at most a couple of boundary windows) —
  // not the ~240k a naive fixed-step loop would take.
  EXPECT_LE(windows, 4u);
}

}  // namespace
}  // namespace actop
