#include "src/common/stats.h"

#include <gtest/gtest.h>

namespace actop {
namespace {

TEST(OnlineStatsTest, MeanAndVariance) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.571428, 1e-5);  // sample variance (n-1)
}

TEST(OnlineStatsTest, SingleSampleHasZeroVariance) {
  OnlineStats s;
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(OnlineStatsTest, ResetClears) {
  OnlineStats s;
  s.Add(1.0);
  s.Reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(EwmaTest, FirstSampleInitializes) {
  Ewma e(0.3);
  EXPECT_FALSE(e.initialized());
  e.Add(10.0);
  EXPECT_TRUE(e.initialized());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(EwmaTest, Smooths) {
  Ewma e(0.5);
  e.Add(0.0);
  e.Add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
  e.Add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 7.5);
}

TEST(EwmaTest, ConvergesToConstantInput) {
  Ewma e(0.4);
  e.Add(100.0);
  for (int i = 0; i < 50; i++) {
    e.Add(42.0);
  }
  EXPECT_NEAR(e.value(), 42.0, 1e-6);
}

}  // namespace
}  // namespace actop
