#include "src/common/histogram.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "src/common/rng.h"

namespace actop {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.p50(), 0);
  EXPECT_EQ(h.p99(), 0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(123);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 123);
  EXPECT_EQ(h.max(), 123);
  EXPECT_EQ(h.p50(), 123);
  EXPECT_EQ(h.p99(), 123);
}

TEST(HistogramTest, SmallValuesAreExact) {
  Histogram h;
  for (int i = 0; i < 1000; i++) {
    h.Record(i);
  }
  // Linear region stores small values exactly. The 0.5 quantile of 0..999 is
  // the 500th sample (1-indexed), i.e. value 499.
  EXPECT_EQ(h.ValueAtQuantile(0.5), 499);
  EXPECT_EQ(h.ValueAtQuantile(0.0), 0);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 999);
}

TEST(HistogramTest, LargeValuesWithinRelativeError) {
  Histogram h;
  const int64_t value = 1'000'000'000;  // 1 second in ns
  h.Record(value);
  const int64_t p50 = h.p50();
  EXPECT_NEAR(static_cast<double>(p50), static_cast<double>(value), 0.04 * value);
}

TEST(HistogramTest, QuantilesAreMonotone) {
  Histogram h;
  Rng rng(5);
  for (int i = 0; i < 100000; i++) {
    h.Record(static_cast<int64_t>(rng.NextExp(1e6)));
  }
  int64_t prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const int64_t v = h.ValueAtQuantile(q);
    EXPECT_GE(v, prev) << "quantile " << q;
    prev = v;
  }
}

TEST(HistogramTest, ExponentialQuantilesMatchTheory) {
  Histogram h;
  Rng rng(6);
  const double mean = 2e6;
  for (int i = 0; i < 500000; i++) {
    h.Record(static_cast<int64_t>(rng.NextExp(mean)));
  }
  // Exp quantile: -mean * ln(1-q).
  EXPECT_NEAR(static_cast<double>(h.p50()), mean * 0.6931, mean * 0.05);
  EXPECT_NEAR(static_cast<double>(h.p99()), mean * 4.6052, mean * 0.10);
}

TEST(HistogramTest, MeanIsExact) {
  Histogram h;
  h.Record(10);
  h.Record(20);
  h.Record(30);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(HistogramTest, NegativeValuesClampToZero) {
  Histogram h;
  h.Record(-5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0);
}

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a;
  Histogram b;
  for (int i = 0; i < 100; i++) {
    a.Record(10);
    b.Record(1000000);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.min(), 10);
  EXPECT_GT(a.max(), 900000);
  EXPECT_EQ(a.ValueAtQuantile(0.25), 10);
  EXPECT_GT(a.ValueAtQuantile(0.75), 900000);
}

TEST(HistogramTest, MergeIntoEmpty) {
  Histogram a;
  Histogram b;
  b.Record(42);
  a.Merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 42);
  EXPECT_EQ(a.max(), 42);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h;
  h.Record(100);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.p99(), 0);
}

TEST(HistogramTest, CdfAtBasics) {
  Histogram h;
  for (int i = 0; i < 100; i++) {
    h.Record(i < 90 ? 10 : 500);
  }
  EXPECT_NEAR(h.CdfAt(10), 0.9, 0.01);
  EXPECT_NEAR(h.CdfAt(499), 0.9, 0.01);
  EXPECT_NEAR(h.CdfAt(501), 1.0, 0.01);
  EXPECT_NEAR(h.CdfAt(0), 0.0, 0.01);
}

// Out-of-range pinning: samples far beyond the top bucket (p999-scale
// outliers, timer wrap artifacts) must saturate into the last bucket instead
// of indexing past it, and must stay consistent with min()/max().
TEST(HistogramTest, HugeValuesSaturateTopBucket) {
  Histogram h;
  const int64_t huge = std::numeric_limits<int64_t>::max();
  h.Record(huge);
  h.Record(huge - 1);
  h.Record(int64_t{1} << 62);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.max(), huge);
  // The top bucket midpoint would exceed max(); ValueAtQuantile clamps into
  // the observed range, so all quantiles land inside [min, max].
  for (double q : {0.0, 0.5, 0.99, 0.999, 1.0}) {
    const int64_t v = h.ValueAtQuantile(q);
    EXPECT_GE(v, h.min()) << "quantile " << q;
    EXPECT_LE(v, h.max()) << "quantile " << q;
  }
  EXPECT_DOUBLE_EQ(h.CdfAt(huge), 1.0);
}

TEST(HistogramTest, MixedOutliersKeepQuantilesOrdered) {
  Histogram h;
  for (int i = 0; i < 999; i++) {
    h.Record(100);
  }
  h.Record(int64_t{1} << 61);  // a single p999-scale outlier
  EXPECT_EQ(h.p50(), 100);
  EXPECT_EQ(h.p99(), 100);
  EXPECT_GT(h.ValueAtQuantile(1.0), int64_t{1} << 60);
  EXPECT_LE(h.ValueAtQuantile(1.0), h.max());
}

TEST(HistogramTest, NegativeAndZeroSamplesPinToZero) {
  Histogram h;
  h.Record(std::numeric_limits<int64_t>::min());
  h.Record(-1);
  h.Record(0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.p50(), 0);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 0);
  EXPECT_DOUBLE_EQ(h.CdfAt(0), 1.0);
  EXPECT_DOUBLE_EQ(h.CdfAt(-100), 1.0);  // clamped to the zero bucket
}

// Degenerate quantile arguments must not invoke UB (casting NaN/negative
// doubles to integers) — they pin to the nearest valid quantile.
TEST(HistogramTest, DegenerateQuantileArgumentsArePinned) {
  Histogram h;
  h.Record(10);
  h.Record(1000);
  EXPECT_EQ(h.ValueAtQuantile(-1.0), 10);
  EXPECT_EQ(h.ValueAtQuantile(2.0), 1000);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(h.ValueAtQuantile(nan), 10);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(h.ValueAtQuantile(inf), 1000);
  EXPECT_EQ(h.ValueAtQuantile(-inf), 10);
}

// Property sweep: for many magnitudes, the reported p50 of a constant stream
// stays within the bucket relative error.
class HistogramMagnitudeTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(HistogramMagnitudeTest, ConstantStreamP50WithinError) {
  const int64_t value = GetParam();
  Histogram h;
  for (int i = 0; i < 100; i++) {
    h.Record(value);
  }
  EXPECT_NEAR(static_cast<double>(h.p50()), static_cast<double>(value),
              std::max<double>(1.0, 0.04 * static_cast<double>(value)));
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, HistogramMagnitudeTest,
                         ::testing::Values(0, 1, 17, 1023, 1024, 1025, 4096, 65537, 1'000'000,
                                           123'456'789, 10'000'000'000LL, 9'999'999'999'999LL));

}  // namespace
}  // namespace actop
