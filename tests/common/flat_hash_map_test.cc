#include "src/common/flat_hash_map.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>

#include "src/common/rng.h"

namespace actop {
namespace {

TEST(FlatHashMapTest, EmptyFindsNothing) {
  FlatHashMap<uint64_t, int> m;
  EXPECT_EQ(m.size(), 0u);
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.Find(42), nullptr);
  EXPECT_FALSE(m.Erase(42));
}

TEST(FlatHashMapTest, InsertFindErase) {
  FlatHashMap<uint64_t, int> m;
  EXPECT_TRUE(m.Insert(1, 10));
  EXPECT_TRUE(m.Insert(2, 20));
  EXPECT_FALSE(m.Insert(1, 11));  // overwrite, not new
  ASSERT_NE(m.Find(1), nullptr);
  EXPECT_EQ(*m.Find(1), 11);
  EXPECT_EQ(*m.Find(2), 20);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(m.Erase(1));
  EXPECT_EQ(m.Find(1), nullptr);
  EXPECT_EQ(*m.Find(2), 20);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatHashMapTest, GrowsPastInitialCapacity) {
  FlatHashMap<uint64_t, uint64_t> m;
  for (uint64_t i = 0; i < 1000; i++) {
    m.Insert(i, i * 3);
  }
  EXPECT_EQ(m.size(), 1000u);
  for (uint64_t i = 0; i < 1000; i++) {
    ASSERT_NE(m.Find(i), nullptr) << i;
    EXPECT_EQ(*m.Find(i), i * 3);
  }
}

TEST(FlatHashMapTest, ReserveAvoidsRehash) {
  FlatHashMap<uint64_t, int> m;
  m.Reserve(500);
  for (uint64_t i = 0; i < 500; i++) {
    m.Insert(i, static_cast<int>(i));
  }
  for (uint64_t i = 0; i < 500; i++) {
    ASSERT_NE(m.Find(i), nullptr);
  }
}

// Colliding hasher: forces every key into the same probe chain so erase must
// backward-shift correctly through wrapped clusters.
struct CollidingHash {
  size_t operator()(uint64_t) const { return 7; }
};

TEST(FlatHashMapTest, BackwardShiftEraseKeepsChainReachable) {
  FlatHashMap<uint64_t, int, CollidingHash> m;
  for (uint64_t i = 0; i < 10; i++) {
    m.Insert(i, static_cast<int>(i) * 100);
  }
  // Erase from the middle of the chain; everything after must stay findable.
  EXPECT_TRUE(m.Erase(3));
  EXPECT_TRUE(m.Erase(0));
  EXPECT_TRUE(m.Erase(7));
  EXPECT_EQ(m.size(), 7u);
  for (uint64_t i : {1, 2, 4, 5, 6, 8, 9}) {
    ASSERT_NE(m.Find(i), nullptr) << i;
    EXPECT_EQ(*m.Find(i), static_cast<int>(i) * 100);
  }
  for (uint64_t i : {0, 3, 7}) {
    EXPECT_EQ(m.Find(i), nullptr) << i;
  }
}

TEST(FlatHashMapTest, ClearEmptiesMap) {
  FlatHashMap<uint64_t, int> m;
  m.Insert(1, 1);
  m.Insert(2, 2);
  m.Clear();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.Find(1), nullptr);
  m.Insert(3, 3);  // usable after Clear
  EXPECT_EQ(*m.Find(3), 3);
}

// Differential fuzz against std::unordered_map through a random
// insert/overwrite/erase/lookup schedule.
TEST(FlatHashMapTest, MatchesUnorderedMapUnderChurn) {
  FlatHashMap<uint64_t, uint64_t> flat;
  std::unordered_map<uint64_t, uint64_t> ref;
  Rng rng(2026);
  for (int step = 0; step < 20000; step++) {
    const uint64_t key = rng.NextBounded(300);  // small keyspace -> churn
    const uint64_t op = rng.NextBounded(10);
    if (op < 5) {
      const uint64_t val = rng.NextU64();
      const bool inserted = flat.Insert(key, val);
      const bool ref_inserted = ref.insert_or_assign(key, val).second;
      ASSERT_EQ(inserted, ref_inserted) << "step " << step;
    } else if (op < 8) {
      ASSERT_EQ(flat.Erase(key), ref.erase(key) > 0) << "step " << step;
    } else {
      const uint64_t* found = flat.Find(key);
      auto it = ref.find(key);
      ASSERT_EQ(found != nullptr, it != ref.end()) << "step " << step;
      if (found != nullptr) {
        ASSERT_EQ(*found, it->second) << "step " << step;
      }
    }
    ASSERT_EQ(flat.size(), ref.size()) << "step " << step;
  }
}

}  // namespace
}  // namespace actop
