#include "src/common/flags.h"

#include <gtest/gtest.h>

#include <vector>

namespace actop {
namespace {

std::vector<char*> MakeArgv(std::vector<std::string>& storage) {
  std::vector<char*> argv;
  argv.reserve(storage.size());
  for (auto& s : storage) {
    argv.push_back(s.data());
  }
  return argv;
}

TEST(FlagsTest, Defaults) {
  Flags flags;
  flags.DefineInt("count", 7, "");
  flags.DefineDouble("rate", 1.5, "");
  flags.DefineBool("verbose", false, "");
  flags.DefineString("name", "abc", "");
  std::vector<std::string> args = {"prog"};
  auto argv = MakeArgv(args);
  flags.Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(flags.GetInt("count"), 7);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate"), 1.5);
  EXPECT_FALSE(flags.GetBool("verbose"));
  EXPECT_EQ(flags.GetString("name"), "abc");
}

TEST(FlagsTest, EqualsSyntax) {
  Flags flags;
  flags.DefineInt("count", 0, "");
  flags.DefineDouble("rate", 0.0, "");
  std::vector<std::string> args = {"prog", "--count=42", "--rate=2.25"};
  auto argv = MakeArgv(args);
  flags.Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(flags.GetInt("count"), 42);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate"), 2.25);
}

TEST(FlagsTest, SpaceSyntax) {
  Flags flags;
  flags.DefineInt("count", 0, "");
  std::vector<std::string> args = {"prog", "--count", "13"};
  auto argv = MakeArgv(args);
  flags.Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(flags.GetInt("count"), 13);
}

TEST(FlagsTest, BoolForms) {
  Flags flags;
  flags.DefineBool("a", false, "");
  flags.DefineBool("b", true, "");
  flags.DefineBool("c", false, "");
  std::vector<std::string> args = {"prog", "--a", "--no-b", "--c=true"};
  auto argv = MakeArgv(args);
  flags.Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(flags.GetBool("a"));
  EXPECT_FALSE(flags.GetBool("b"));
  EXPECT_TRUE(flags.GetBool("c"));
}

TEST(FlagsTest, NegativeNumbers) {
  Flags flags;
  flags.DefineInt("delta", 0, "");
  std::vector<std::string> args = {"prog", "--delta=-5"};
  auto argv = MakeArgv(args);
  flags.Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(flags.GetInt("delta"), -5);
}

TEST(FlagsDeathTest, UnknownFlagExits) {
  Flags flags;
  flags.DefineInt("count", 0, "");
  std::vector<std::string> args = {"prog", "--nope=1"};
  auto argv = MakeArgv(args);
  EXPECT_EXIT(flags.Parse(static_cast<int>(argv.size()), argv.data()),
              ::testing::ExitedWithCode(2), "unknown flag");
}

TEST(FlagsDeathTest, BadValueExits) {
  Flags flags;
  flags.DefineInt("count", 0, "");
  std::vector<std::string> args = {"prog", "--count=abc"};
  auto argv = MakeArgv(args);
  EXPECT_EXIT(flags.Parse(static_cast<int>(argv.size()), argv.data()),
              ::testing::ExitedWithCode(2), "bad value");
}

}  // namespace
}  // namespace actop
