#include "src/common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace actop {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; i++) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; i++) {
    if (a.NextU64() == b.NextU64()) {
      same++;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; i++) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedCoversAllValues) {
  Rng rng(7);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; i++) {
    seen[rng.NextBounded(10)]++;
  }
  for (int count : seen) {
    // Each bucket expects ~1000; a bucket at 0 would indicate a bias bug.
    EXPECT_GT(count, 800);
    EXPECT_LT(count, 1200);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; i++) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 100000; i++) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(13);
  const double mean = 250.0;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; i++) {
    const double v = rng.NextExp(mean);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, mean, mean * 0.02);
}

TEST(RngTest, ExponentialVarianceMatchesTheory) {
  Rng rng(17);
  const double mean = 100.0;
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; i++) {
    const double v = rng.NextExp(mean);
    sum += v;
    sum_sq += v * v;
  }
  const double m = sum / n;
  const double var = sum_sq / n - m * m;
  // Var of Exp(mean) is mean^2.
  EXPECT_NEAR(var, mean * mean, mean * mean * 0.05);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(99);
  Rng child = parent.Fork();
  // Child and parent must not emit the same sequence.
  int same = 0;
  for (int i = 0; i < 100; i++) {
    if (parent.NextU64() == child.NextU64()) {
      same++;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextBoolProbability) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; i++) {
    if (rng.NextBool(0.3)) {
      hits++;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, SplitMix64KnownValues) {
  // Reference values from the SplitMix64 specification (seed 0 sequence).
  EXPECT_EQ(SplitMix64(0), 0xe220a8397b1dcdafULL);
}

}  // namespace
}  // namespace actop
