#include "src/common/ring_buffer.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace actop {
namespace {

TEST(RingBufferTest, StartsEmpty) {
  RingBuffer<int> rb;
  EXPECT_TRUE(rb.empty());
  EXPECT_EQ(rb.size(), 0u);
}

TEST(RingBufferTest, FifoOrder) {
  RingBuffer<int> rb;
  for (int i = 0; i < 100; i++) rb.push_back(i);
  EXPECT_EQ(rb.size(), 100u);
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(rb.front(), i);
    rb.pop_front();
  }
  EXPECT_TRUE(rb.empty());
}

TEST(RingBufferTest, InterleavedPushPopWrapsAround) {
  // Sustained push/pop cycles drive the monotone counters far past the
  // capacity, exercising the mask wraparound repeatedly.
  RingBuffer<int> rb;
  int next_in = 0;
  int next_out = 0;
  for (int round = 0; round < 1000; round++) {
    for (int i = 0; i < 7; i++) rb.push_back(next_in++);
    for (int i = 0; i < 7 && !rb.empty(); i++) {
      EXPECT_EQ(rb.front(), next_out++);
      rb.pop_front();
    }
  }
  while (!rb.empty()) {
    EXPECT_EQ(rb.front(), next_out++);
    rb.pop_front();
  }
  EXPECT_EQ(next_out, next_in);
}

TEST(RingBufferTest, GrowPreservesOrderAcrossWrappedContents) {
  RingBuffer<int> rb;
  // Misalign head so the live range straddles the physical end of storage
  // when growth happens.
  for (int i = 0; i < 12; i++) rb.push_back(-1);
  for (int i = 0; i < 12; i++) rb.pop_front();
  for (int i = 0; i < 500; i++) rb.push_back(i);  // forces several growths
  for (int i = 0; i < 500; i++) {
    EXPECT_EQ(rb.front(), i);
    rb.pop_front();
  }
}

TEST(RingBufferTest, AtIndexesFromFront) {
  RingBuffer<int> rb;
  for (int i = 0; i < 40; i++) rb.push_back(i);
  for (int i = 0; i < 10; i++) rb.pop_front();
  for (size_t i = 0; i < rb.size(); i++) {
    EXPECT_EQ(rb.at(i), static_cast<int>(i) + 10);
  }
  rb.at(0) = 999;
  EXPECT_EQ(rb.front(), 999);
}

TEST(RingBufferTest, MoveOnlyElements) {
  RingBuffer<std::unique_ptr<std::string>> rb;
  for (int i = 0; i < 50; i++) {
    rb.push_back(std::make_unique<std::string>(std::to_string(i)));
  }
  for (int i = 0; i < 50; i++) {
    EXPECT_EQ(*rb.front(), std::to_string(i));
    auto taken = std::move(rb.front());
    rb.pop_front();
    EXPECT_EQ(*taken, std::to_string(i));
  }
}

TEST(RingBufferTest, PopFrontReleasesResources) {
  RingBuffer<std::shared_ptr<int>> rb;
  auto tracked = std::make_shared<int>(42);
  rb.push_back(tracked);
  EXPECT_EQ(tracked.use_count(), 2);
  rb.pop_front();
  // The slot must not pin the element until it is overwritten.
  EXPECT_EQ(tracked.use_count(), 1);
}

TEST(RingBufferTest, ClearEmptiesAndReleases) {
  RingBuffer<std::shared_ptr<int>> rb;
  auto tracked = std::make_shared<int>(7);
  for (int i = 0; i < 5; i++) rb.push_back(tracked);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  EXPECT_EQ(tracked.use_count(), 1);
  rb.push_back(tracked);  // reusable after clear
  EXPECT_EQ(rb.size(), 1u);
}

}  // namespace
}  // namespace actop
