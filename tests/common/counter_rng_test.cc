// CounterRng: determinism, stream independence, and distribution checks.
//
// The statistical bounds follow the arrival_stat_test discipline: fixed
// keys, fixed sample counts, and thresholds with > 5 sigma of margin, so a
// failure means the generator is wrong, not that the dice were unlucky.

#include "src/common/counter_rng.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/sim_time.h"

namespace actop {
namespace {

TEST(CounterRngTest, SameKeySameSequence) {
  CounterRng a(/*seed=*/7, /*stream=*/3);
  CounterRng b(/*seed=*/7, /*stream=*/3);
  for (int i = 0; i < 1000; i++) {
    ASSERT_EQ(a.NextU64(), b.NextU64()) << "draw " << i;
  }
  EXPECT_EQ(a.draws(), 1000u);
}

TEST(CounterRngTest, DrawIsAPureFunctionOfTheCounter) {
  // A stream's n-th draw must not depend on how many draws any other stream
  // made — the property that keeps parallel-mode fault decisions a function
  // of per-shard message order only. Interleave two streams in different
  // patterns and require identical outputs.
  CounterRng a1(/*seed=*/11, /*stream=*/0);
  CounterRng b1(/*seed=*/11, /*stream=*/1);
  std::vector<uint64_t> a_solo;
  std::vector<uint64_t> b_solo;
  for (int i = 0; i < 256; i++) {
    a_solo.push_back(a1.NextU64());
  }
  for (int i = 0; i < 256; i++) {
    b_solo.push_back(b1.NextU64());
  }

  CounterRng a2(/*seed=*/11, /*stream=*/0);
  CounterRng b2(/*seed=*/11, /*stream=*/1);
  std::vector<uint64_t> a_mixed;
  std::vector<uint64_t> b_mixed;
  for (int i = 0; i < 256; i++) {
    // Jagged interleaving: b draws 0-3 times between consecutive a draws.
    a_mixed.push_back(a2.NextU64());
    for (int j = 0; j < i % 4; j++) {
      b_mixed.push_back(b2.NextU64());
    }
  }
  while (b_mixed.size() < 256) {
    b_mixed.push_back(b2.NextU64());
  }
  b_mixed.resize(256);
  EXPECT_EQ(a_solo, a_mixed);
  EXPECT_EQ(b_solo, b_mixed);
}

TEST(CounterRngTest, DistinctStreamsAreDistinct) {
  // No collisions across the first draws of many streams of one family, and
  // none between families with different seeds. 64-bit outputs over 64k
  // draws: any collision is overwhelming evidence of key aliasing, not
  // chance (birthday bound ~1e-10).
  std::set<uint64_t> seen;
  int draws = 0;
  for (uint64_t seed : {1ull, 2ull, 0x12345678ull}) {
    for (uint64_t stream = 0; stream < 64; stream++) {
      CounterRng rng(seed, stream);
      for (int i = 0; i < 64; i++) {
        seen.insert(rng.NextU64());
        draws++;
      }
    }
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(draws));
}

TEST(CounterRngTest, SeedAndStreamAreAsymmetric) {
  CounterRng ab(/*seed=*/3, /*stream=*/5);
  CounterRng ba(/*seed=*/5, /*stream=*/3);
  int differing = 0;
  for (int i = 0; i < 64; i++) {
    differing += ab.NextU64() != ba.NextU64() ? 1 : 0;
  }
  EXPECT_EQ(differing, 64);
}

// Kolmogorov-Smirnov distance of samples against the uniform [0,1) CDF.
double KsUniform(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  double d = 0.0;
  for (size_t i = 0; i < samples.size(); i++) {
    const double cdf = samples[i];
    d = std::max(d, std::max(cdf - static_cast<double>(i) / n,
                             static_cast<double>(i + 1) / n - cdf));
  }
  return d;
}

TEST(CounterRngTest, NextDoubleIsUniform) {
  CounterRng rng(/*seed=*/17, /*stream=*/4);
  const int kSamples = 20000;
  std::vector<double> samples;
  samples.reserve(kSamples);
  for (int i = 0; i < kSamples; i++) {
    const double x = rng.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    samples.push_back(x);
  }
  // KS critical value at alpha=1e-6 is ~2.5/sqrt(n) ~ 0.018; bound at ~1.5x.
  EXPECT_LT(KsUniform(samples), 0.028);
}

TEST(CounterRngTest, StreamsAreMutuallyUncorrelated) {
  // Cross-stream independence at the level the sharded engine relies on:
  // pairwise XOR of two streams' aligned draws must itself look uniform —
  // correlated or realigned streams would concentrate bits.
  CounterRng a(/*seed=*/23, /*stream=*/0);
  CounterRng b(/*seed=*/23, /*stream=*/1);
  const int kSamples = 20000;
  std::vector<double> xor_u;
  xor_u.reserve(kSamples);
  int64_t bit_balance = 0;
  for (int i = 0; i < kSamples; i++) {
    const uint64_t x = a.NextU64() ^ b.NextU64();
    xor_u.push_back(static_cast<double>(x >> 11) * 0x1.0p-53);
    bit_balance += __builtin_popcountll(x) - 32;
  }
  EXPECT_LT(KsUniform(xor_u), 0.028);
  // Sum of (popcount - 32) over n draws: sigma = sqrt(16 n) = 566; 8 sigma.
  EXPECT_LT(std::abs(bit_balance), 4500);
}

TEST(CounterRngTest, NextBoundedIsInRangeAndCoversResidues) {
  CounterRng rng(/*seed=*/31, /*stream=*/2);
  const uint64_t kBound = 7;
  std::vector<uint64_t> counts(kBound, 0);
  const int kSamples = 70000;
  for (int i = 0; i < kSamples; i++) {
    const uint64_t x = rng.NextBounded(kBound);
    ASSERT_LT(x, kBound);
    counts[x]++;
  }
  // Each bin ~10000, sigma ~ sqrt(n p (1-p)) ~ 93; allow 8 sigma.
  for (uint64_t v = 0; v < kBound; v++) {
    EXPECT_NEAR(static_cast<double>(counts[v]), 10000.0, 750.0) << "residue " << v;
  }
}

TEST(CounterRngTest, NextUniformDurationHitsBothEndpoints) {
  CounterRng rng(/*seed=*/41, /*stream=*/9);
  // A 4-value range (durations are in ns) so both endpoints must appear.
  const SimDuration lo = 10;
  const SimDuration hi = 13;
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; i++) {
    const SimDuration d = rng.NextUniformDuration(lo, hi);
    ASSERT_GE(d, lo);
    ASSERT_LE(d, hi);
    saw_lo = saw_lo || d == lo;
    saw_hi = saw_hi || d == hi;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  // Degenerate range.
  EXPECT_EQ(rng.NextUniformDuration(lo, lo), lo);
}

TEST(CounterRngTest, NextBoolMatchesProbability) {
  CounterRng rng(/*seed=*/43, /*stream=*/1);
  const double p = 0.03;
  const int kSamples = 100000;
  int hits = 0;
  for (int i = 0; i < kSamples; i++) {
    hits += rng.NextBool(p) ? 1 : 0;
  }
  // Mean 3000, sigma = sqrt(n p (1-p)) ~ 54; allow 8 sigma.
  EXPECT_NEAR(static_cast<double>(hits), 3000.0, 440.0);
}

}  // namespace
}  // namespace actop
