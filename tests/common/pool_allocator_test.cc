#include "src/common/pool_allocator.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

namespace actop {
namespace {

TEST(SizeClassPoolTest, RecyclesExactSizeClasses) {
  SizeClassPool& pool = SizeClassPool::Instance();
  const uint64_t fresh0 = pool.fresh_allocations();

  void* p = pool.Allocate(96);
  EXPECT_EQ(pool.fresh_allocations(), fresh0 + 1);
  pool.Release(p, 96);

  // Same size class: the parked block comes back without a fresh allocation.
  const uint64_t recycled0 = pool.recycled_allocations();
  void* q = pool.Allocate(96);
  EXPECT_EQ(q, p);
  EXPECT_EQ(pool.recycled_allocations(), recycled0 + 1);
  EXPECT_EQ(pool.fresh_allocations(), fresh0 + 1);
  pool.Release(q, 96);
}

TEST(SizeClassPoolTest, DistinctSizesUseDistinctClasses) {
  SizeClassPool& pool = SizeClassPool::Instance();
  void* a = pool.Allocate(64);
  pool.Release(a, 64);
  // A different size must not be served from the 64-byte class.
  const uint64_t fresh0 = pool.fresh_allocations();
  void* b = pool.Allocate(128);
  EXPECT_EQ(pool.fresh_allocations(), fresh0 + 1);
  pool.Release(b, 128);
  // The 64-byte block is still parked and comes back for a 64-byte ask.
  void* c = pool.Allocate(64);
  EXPECT_EQ(c, a);
  pool.Release(c, 64);
}

TEST(SizeClassPoolTest, OversizedBlocksPassThrough) {
  SizeClassPool& pool = SizeClassPool::Instance();
  const size_t huge = 1u << 20;  // above the pooled ceiling
  const uint64_t fresh0 = pool.fresh_allocations();
  const uint64_t recycled0 = pool.recycled_allocations();
  void* p = pool.Allocate(huge);
  ASSERT_NE(p, nullptr);
  pool.Release(p, huge);
  void* q = pool.Allocate(huge);
  ASSERT_NE(q, nullptr);
  pool.Release(q, huge);
  // Above the pooled ceiling nothing is parked: both asks hit the heap.
  EXPECT_EQ(pool.fresh_allocations(), fresh0 + 2);
  EXPECT_EQ(pool.recycled_allocations(), recycled0);
}

TEST(PooledNodeMapTest, BehavesLikeUnorderedMap) {
  PooledNodeMap<uint64_t, int> m;
  for (uint64_t k = 0; k < 100; k++) {
    m[k] = static_cast<int>(k * 2);
  }
  EXPECT_EQ(m.size(), 100u);
  EXPECT_EQ(m.at(7), 14);
  EXPECT_EQ(m.count(200), 0u);
  for (uint64_t k = 0; k < 100; k += 2) {
    m.erase(k);
  }
  EXPECT_EQ(m.size(), 50u);
  EXPECT_EQ(m.count(2), 0u);
  EXPECT_EQ(m.at(3), 6);
}

TEST(PooledNodeMapTest, IterationOrderMatchesStdMap) {
  // Replay determinism depends on PooledNodeMap iterating exactly like the
  // std::unordered_map it replaced: the allocator must not change hashing,
  // bucket counts, or insertion placement.
  PooledNodeMap<uint64_t, int> pooled;
  std::unordered_map<uint64_t, int> standard;
  uint64_t x = 12345;
  for (int i = 0; i < 1000; i++) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const uint64_t key = x >> 16;
    pooled[key] = i;
    standard[key] = i;
    if (i % 3 == 0) {
      pooled.erase(key ^ 1);
      standard.erase(key ^ 1);
    }
  }
  ASSERT_EQ(pooled.size(), standard.size());
  EXPECT_EQ(pooled.bucket_count(), standard.bucket_count());
  std::vector<uint64_t> pooled_order;
  std::vector<uint64_t> standard_order;
  for (const auto& [k, v] : pooled) pooled_order.push_back(k);
  for (const auto& [k, v] : standard) standard_order.push_back(k);
  EXPECT_EQ(pooled_order, standard_order);
}

TEST(PooledNodeMapTest, NodeChurnRecyclesThroughThePool) {
  SizeClassPool& pool = SizeClassPool::Instance();
  PooledNodeMap<uint64_t, uint64_t> m;
  // Warm: establish the node size class and the map's bucket array.
  for (uint64_t k = 0; k < 64; k++) m[k] = k;
  for (uint64_t k = 0; k < 64; k++) m.erase(k);
  const uint64_t fresh0 = pool.fresh_allocations();
  // Steady-state churn at the same size: no fresh blocks.
  for (int round = 0; round < 10; round++) {
    for (uint64_t k = 0; k < 64; k++) m[k] = k;
    for (uint64_t k = 0; k < 64; k++) m.erase(k);
  }
  EXPECT_EQ(pool.fresh_allocations(), fresh0);
}

}  // namespace
}  // namespace actop
