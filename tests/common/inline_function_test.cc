#include "src/common/inline_function.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <utility>

namespace actop {
namespace {

TEST(InlineFunctionTest, EmptyAndNullptrCompare) {
  InlineFunction<int(int)> f;
  EXPECT_FALSE(static_cast<bool>(f));
  EXPECT_TRUE(f == nullptr);
  EXPECT_FALSE(f != nullptr);

  InlineFunction<int(int)> g = nullptr;
  EXPECT_TRUE(g == nullptr);

  g = [](int x) { return x + 1; };
  EXPECT_TRUE(g != nullptr);
  EXPECT_EQ(g(41), 42);
  g = nullptr;
  EXPECT_TRUE(g == nullptr);
}

TEST(InlineFunctionTest, ForwardsArgumentsAndReturn) {
  InlineFunction<int(int, int)> add = [](int a, int b) { return a + b; };
  EXPECT_EQ(add(2, 3), 5);

  // Reference arguments pass through without copying.
  InlineFunction<void(std::string&)> append = [](std::string& s) { s += "x"; };
  std::string s = "a";
  append(s);
  append(s);
  EXPECT_EQ(s, "axx");
}

TEST(InlineFunctionTest, SmallCapturesStayInline) {
  int hits = 0;
  int* p = &hits;
  // Three pointers (24 bytes) — beyond std::function's inline budget for
  // non-trivial captures, comfortably inside the 48-byte default here.
  auto sp = std::make_shared<int>(7);
  InlineFunction<void(const int&)> f = [p, sp, q = &hits](const int& d) {
    *p += d + *sp;
    *q += 1;
  };
  EXPECT_FALSE(f.heap_allocated());
  f(1);
  EXPECT_EQ(hits, 9);  // 1 + 7 + 1
}

TEST(InlineFunctionTest, OversizedCapturesSpillToHeap) {
  struct Big {
    char data[128] = {};
  };
  Big big;
  InlineFunction<int(int)> f = [big](int x) { return x + big.data[0]; };
  EXPECT_TRUE(f.heap_allocated());
  EXPECT_EQ(f(5), 5);
}

TEST(InlineFunctionTest, MovePreservesCallableAndEmptiesSource) {
  auto counter = std::make_shared<int>(0);
  InlineFunction<void(int)> f = [counter](int d) { *counter += d; };
  const long uses_before = counter.use_count();

  InlineFunction<void(int)> g = std::move(f);
  EXPECT_TRUE(f == nullptr);  // NOLINT(bugprone-use-after-move): pinned semantics
  EXPECT_EQ(counter.use_count(), uses_before);  // moved, not copied
  g(4);
  EXPECT_EQ(*counter, 4);

  InlineFunction<void(int)> h;
  h = std::move(g);
  h(2);
  EXPECT_EQ(*counter, 6);
}

TEST(InlineFunctionTest, DestroysCaptureExactlyOnce) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> weak = token;
  {
    InlineFunction<void()> f = [token] {};
    token.reset();
    EXPECT_FALSE(weak.expired());
    InlineFunction<void()> g = std::move(f);  // relocation must not double-free
    EXPECT_FALSE(weak.expired());
  }
  EXPECT_TRUE(weak.expired());
}

TEST(InlineFunctionTest, AssignmentReleasesPreviousCapture) {
  auto first = std::make_shared<int>(1);
  std::weak_ptr<int> weak = first;
  InlineFunction<void()> f = [first] {};
  first.reset();
  EXPECT_FALSE(weak.expired());
  f = [] {};  // overwriting must destroy the old capture
  EXPECT_TRUE(weak.expired());
}

TEST(InlineFunctionTest, WrapsMutableLambdas) {
  InlineFunction<int()> f = [n = 0]() mutable { return ++n; };
  EXPECT_EQ(f(), 1);
  EXPECT_EQ(f(), 2);
  EXPECT_EQ(f(), 3);
}

TEST(InlineFunctionTest, WrapsStdFunctionOnTheHeapPath) {
  // Cold paths may hand in a std::function (not nothrow-movable in all
  // shapes); it must work via the heap fallback regardless of size.
  std::function<int(int)> std_fn = [](int x) { return x * 2; };
  InlineFunction<int(int)> f = std::move(std_fn);
  EXPECT_EQ(f(21), 42);
}

}  // namespace
}  // namespace actop
