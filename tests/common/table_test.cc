#include "src/common/table.h"

#include <gtest/gtest.h>

namespace actop {
namespace {

TEST(TableTest, AlignsColumns) {
  Table t({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer-name", "23"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  // Header line and rule line plus two rows.
  int lines = 0;
  for (char c : s) {
    if (c == '\n') {
      lines++;
    }
  }
  EXPECT_EQ(lines, 4);
}

TEST(TableTest, CsvOutput) {
  Table t({"a", "b"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.ToCsv(), "a,b\n1,2\n");
}

TEST(FormatTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(FormatTest, FormatMillis) { EXPECT_EQ(FormatMillis(12'345'678), "12.35"); }

TEST(FormatTest, FormatPercent) {
  EXPECT_EQ(FormatPercent(0.123), "12.3%");
  EXPECT_EQ(FormatPercent(0.5, 0), "50%");
}

}  // namespace
}  // namespace actop
