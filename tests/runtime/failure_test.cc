// Failure injection and consistency-under-churn tests.
//
// The virtual-actor promises under test: after any combination of crashes
// and migrations, (a) at most one activation of an actor exists, (b) the
// next call re-activates it with its state intact, (c) in-flight calls fail
// via timeouts instead of hanging, and (d) random concurrent migrations
// never lose or duplicate replies.

#include <gtest/gtest.h>

#include "src/common/sim_time.h"
#include "src/runtime/client.h"
#include "src/runtime/cluster.h"
#include "src/sim/simulation.h"
#include "tests/runtime/test_actors.h"

namespace actop {
namespace {

TEST(FailureTest, CrashOfDirectoryHomeStillAllowsActivation) {
  Simulation sim;
  Cluster cluster(&sim, ClusterConfig{.num_servers = 4, .seed = 3});
  RegisterTestActors(&cluster);
  DirectClient client(&sim, &cluster, 5);

  // Find an actor whose directory home we can crash before first activation.
  const ActorId echo = MakeActorId(kEchoType, 12);
  const ServerId home = DirectoryHomeOf(echo, 4);
  cluster.CrashServer(home);  // crash first: directory shard state is empty anyway

  int responses = 0;
  client.Call(echo, 1, 0, 100, [&](const Response&) { responses++; });
  sim.RunUntil(Seconds(2));
  // The home shard (instantly "replaced" server) still serves lookups.
  EXPECT_EQ(responses, 1);
  EXPECT_EQ(CountHosts(cluster, echo), 1);
}

TEST(FailureTest, RepeatedCrashesNeverDuplicateActivations) {
  Simulation sim;
  ClusterConfig cfg{.num_servers = 4, .seed = 7};
  cfg.server.call_timeout = Seconds(2);
  Cluster cluster(&sim, cfg);
  RegisterTestActors(&cluster);
  DirectClient client(&sim, &cluster, 5);

  for (uint64_t k = 1; k <= 40; k++) {
    client.Call(MakeActorId(kEchoType, k), 1, 0, 100, nullptr);
  }
  sim.RunUntil(Seconds(2));

  Rng rng(11);
  for (int round = 0; round < 6; round++) {
    cluster.CrashServer(static_cast<ServerId>(rng.NextBounded(4)));
    // Fresh calls re-activate a random subset.
    for (int i = 0; i < 20; i++) {
      client.Call(MakeActorId(kEchoType, rng.NextBounded(40) + 1), 1, 0, 100, nullptr);
    }
    sim.RunUntil(sim.now() + Seconds(3));
    for (uint64_t k = 1; k <= 40; k++) {
      EXPECT_LE(CountHosts(cluster, MakeActorId(kEchoType, k)), 1) << "actor " << k;
    }
  }
}

TEST(FailureTest, StateSurvivesCrash) {
  Simulation sim;
  Cluster cluster(&sim, ClusterConfig{.num_servers = 3, .seed = 9});
  RegisterTestActors(&cluster);
  DirectClient client(&sim, &cluster, 5);

  const ActorId echo = MakeActorId(kEchoType, 1);
  for (int i = 0; i < 5; i++) {
    client.Call(echo, 1, 0, 100, nullptr);
  }
  sim.RunUntil(Seconds(2));
  for (int s = 0; s < 3; s++) {
    cluster.CrashServer(static_cast<ServerId>(s));
  }
  int responses = 0;
  client.Call(echo, 1, 0, 100, [&](const Response&) { responses++; });
  sim.RunUntil(sim.now() + Seconds(2));
  EXPECT_EQ(responses, 1);
  // Counter kept its history across the crash (state store == storage).
  auto* actor = static_cast<EchoActor*>(cluster.GetOrCreateActor(echo));
  EXPECT_EQ(actor->calls(), 6);
}

TEST(FailureTest, ClientTimeoutsBoundedUnderCrashStorm) {
  Simulation sim;
  ClusterConfig cfg{.num_servers = 4, .seed = 13};
  cfg.server.call_timeout = Seconds(2);
  Cluster cluster(&sim, cfg);
  RegisterTestActors(&cluster);
  ClientPool clients(&sim, &cluster, ClientConfig{.request_rate = 500.0, .timeout = Seconds(3)},
                     [](Rng& rng, ActorId* target, MethodId* method) {
                       *target = MakeActorId(kEchoType, rng.NextBounded(100) + 1);
                       *method = 1;
                       return true;
                     });
  clients.Start();
  sim.RunUntil(Seconds(5));
  cluster.CrashServer(0);
  sim.RunUntil(Seconds(10));
  cluster.CrashServer(2);
  sim.RunUntil(Seconds(30));
  clients.Stop();
  sim.RunUntil(sim.now() + Seconds(5));
  // Requests in flight during the crashes are lost (bounded), everything
  // else completes: the system recovers rather than wedging.
  EXPECT_GT(clients.completed(), clients.issued() * 90 / 100);
  EXPECT_LT(clients.timeouts(), clients.issued() / 20);
}

// Property: random migrations racing with continuous traffic never lose a
// reply, never duplicate an activation, and keep actor state consistent.
class MigrationChurnTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MigrationChurnTest, NoLossUnderRandomMigrations) {
  Simulation sim;
  Cluster cluster(&sim, ClusterConfig{.num_servers = 4, .seed = GetParam()});
  RegisterTestActors(&cluster);
  DirectClient client(&sim, &cluster, GetParam() ^ 0xabc);

  constexpr int kActors = 30;
  int responses = 0;
  int issued = 0;
  Rng rng(GetParam());

  // Traffic: every 5 ms each actor gets a call; migration chaos: every 20 ms
  // a random active actor is pushed to a random server.
  sim.SchedulePeriodic(Millis(5), [&] {
    if (sim.now() > Seconds(10)) {
      return;
    }
    const ActorId target = MakeActorId(kEchoType, rng.NextBounded(kActors) + 1);
    issued++;
    client.Call(target, 1, 0, 100, [&](const Response& r) {
      if (!r.failed) {
        responses++;
      }
    });
  });
  sim.SchedulePeriodic(Millis(20), [&] {
    if (sim.now() > Seconds(10)) {
      return;
    }
    const ActorId target = MakeActorId(kEchoType, rng.NextBounded(kActors) + 1);
    for (int s = 0; s < cluster.num_servers(); s++) {
      if (cluster.server(s).IsActive(target)) {
        cluster.server(s).MigrateActor(
            target, static_cast<ServerId>(rng.NextBounded(4)));
        break;
      }
    }
  });

  sim.RunUntil(Seconds(25));
  EXPECT_EQ(responses, issued);
  uint64_t handled = 0;
  for (uint64_t k = 1; k <= kActors; k++) {
    const ActorId id = MakeActorId(kEchoType, k);
    EXPECT_LE(CountHosts(cluster, id), 1);
    if (cluster.HasActorState(id)) {
      handled += static_cast<uint64_t>(
          static_cast<EchoActor*>(cluster.GetOrCreateActor(id))->calls());
    }
  }
  EXPECT_EQ(handled, static_cast<uint64_t>(issued));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MigrationChurnTest, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace actop
