// Integration tests of the full ActOp partitioning loop: edge sampling ->
// pairwise exchanges over control messages -> opportunistic migration.

#include "src/runtime/partition_agent.h"

#include <gtest/gtest.h>

#include "src/common/sim_time.h"
#include "src/runtime/client.h"
#include "src/runtime/cluster.h"
#include "src/sim/simulation.h"
#include "src/workload/chat.h"
#include "tests/runtime/test_actors.h"

namespace actop {
namespace {

ClusterConfig PartitionedCluster(int servers, uint64_t seed) {
  ClusterConfig cfg;
  cfg.num_servers = servers;
  cfg.seed = seed;
  cfg.enable_partitioning = true;
  cfg.partition.exchange_period = Seconds(2);
  cfg.partition.exchange_min_gap = Seconds(2);
  cfg.partition.pairwise.candidate_set_size = 64;
  cfg.partition.pairwise.balance_delta = 64;
  return cfg;
}

TEST(PartitionAgentTest, EdgeSamplingBuildsView) {
  Simulation sim;
  Cluster cluster(&sim, PartitionedCluster(2, 3));
  RegisterTestActors(&cluster);
  cluster.StartOptimizers();
  DirectClient client(&sim, &cluster, 5);

  // Create traffic between relay 1 and echo 1 repeatedly.
  const ActorId relay = MakeActorId(kRelayType, 1);
  const ActorId echo = MakeActorId(kEchoType, 1);
  for (int i = 0; i < 30; i++) {
    client.Call(relay, 0, echo, 100, nullptr);
  }
  sim.RunUntil(Seconds(1));

  ServerId relay_host = kNoServer;
  for (int s = 0; s < cluster.num_servers(); s++) {
    if (cluster.server(s).IsActive(relay)) {
      relay_host = static_cast<ServerId>(s);
    }
  }
  ASSERT_NE(relay_host, kNoServer);
  const LocalGraphView view = cluster.partition_agent(relay_host)->BuildView();
  ASSERT_TRUE(view.adjacency.contains(relay));
  EXPECT_TRUE(view.adjacency.at(relay).contains(echo));
  EXPECT_GT(view.adjacency.at(relay).at(echo), 10.0);
}

TEST(PartitionAgentTest, HeavyPairsGetColocated) {
  Simulation sim;
  Cluster cluster(&sim, PartitionedCluster(4, 7));
  RegisterTestActors(&cluster);
  cluster.StartOptimizers();
  DirectClient client(&sim, &cluster, 5);

  // 40 relay->echo pairs, each pair chatting continuously.
  const int kPairs = 40;
  sim.SchedulePeriodic(Millis(50), [&client] {
    for (uint64_t k = 1; k <= kPairs; k++) {
      client.Call(MakeActorId(kRelayType, k), 0, MakeActorId(kEchoType, k), 100, nullptr);
    }
  });
  sim.RunUntil(Seconds(40));

  // After several exchange rounds, most pairs should share a server.
  int colocated = 0;
  for (uint64_t k = 1; k <= kPairs; k++) {
    const ActorId relay = MakeActorId(kRelayType, k);
    const ActorId echo = MakeActorId(kEchoType, k);
    for (int s = 0; s < cluster.num_servers(); s++) {
      if (cluster.server(s).IsActive(relay) && cluster.server(s).IsActive(echo)) {
        colocated++;
        break;
      }
    }
  }
  // Random placement gives ~25% co-location; the partitioner should push
  // this far up.
  EXPECT_GE(colocated, kPairs * 3 / 5) << "only " << colocated << " of " << kPairs;
  EXPECT_GT(cluster.total_migrations(), 0u);
}

TEST(PartitionAgentTest, BalanceMaintainedDuringOptimization) {
  Simulation sim;
  ClusterConfig cfg = PartitionedCluster(4, 9);
  cfg.partition.pairwise.balance_delta = 16;
  Cluster cluster(&sim, cfg);
  RegisterTestActors(&cluster);
  cluster.StartOptimizers();
  DirectClient client(&sim, &cluster, 5);

  const int kPairs = 60;
  sim.SchedulePeriodic(Millis(50), [&client] {
    for (uint64_t k = 1; k <= kPairs; k++) {
      client.Call(MakeActorId(kRelayType, k), 0, MakeActorId(kEchoType, k), 100, nullptr);
    }
  });
  sim.RunUntil(Seconds(30));

  int64_t min_size = INT64_MAX;
  int64_t max_size = 0;
  for (int s = 0; s < cluster.num_servers(); s++) {
    min_size = std::min(min_size, cluster.server(s).num_activations());
    max_size = std::max(max_size, cluster.server(s).num_activations());
  }
  EXPECT_LE(max_size - min_size, 16 + 2);  // small slack for in-flight moves
}

TEST(PartitionAgentTest, RateLimitingRejectsBackToBackExchanges) {
  Simulation sim;
  ClusterConfig cfg = PartitionedCluster(2, 11);
  cfg.partition.exchange_period = Seconds(1);
  cfg.partition.exchange_min_gap = Seconds(30);  // long gap: most requests rejected
  // A tiny candidate set keeps positive-score candidates around for many
  // rounds, so requests keep arriving inside the min-gap window.
  cfg.partition.pairwise.candidate_set_size = 2;
  Cluster cluster(&sim, cfg);
  RegisterTestActors(&cluster);
  cluster.StartOptimizers();
  DirectClient client(&sim, &cluster, 5);

  sim.SchedulePeriodic(Millis(50), [&client] {
    for (uint64_t k = 1; k <= 200; k++) {
      client.Call(MakeActorId(kRelayType, k), 0, MakeActorId(kEchoType, k), 100, nullptr);
    }
  });
  sim.RunUntil(Seconds(30));

  uint64_t rejected = 0;
  for (int s = 0; s < cluster.num_servers(); s++) {
    rejected += cluster.partition_agent(s)->exchanges_rejected();
  }
  EXPECT_GT(rejected, 0u);
}

TEST(PartitionAgentTest, ChatWorkloadRemoteFractionDrops) {
  // End-to-end: with partitioning on, the chat service's remote message
  // fraction falls well below the random-placement level.
  auto remote_fraction = [](bool partitioning) {
    Simulation sim;
    ClusterConfig cfg;
    cfg.num_servers = 4;
    cfg.seed = 13;
    cfg.enable_partitioning = partitioning;
    cfg.partition.exchange_period = Seconds(2);
    cfg.partition.exchange_min_gap = Seconds(2);
    Cluster cluster(&sim, cfg);
    ChatWorkloadConfig wcfg;
    wcfg.num_users = 400;
    wcfg.num_rooms = 20;
    wcfg.message_rate = 300.0;
    ChatWorkload chat(&cluster, wcfg);
    chat.Start();
    cluster.StartOptimizers();
    sim.RunUntil(Seconds(30));
    // Measure the steady state only.
    cluster.metrics().TakeWindow();
    sim.RunUntil(Seconds(45));
    return cluster.metrics().TakeWindow().remote_fraction();
  };
  const double base = remote_fraction(false);
  const double opt = remote_fraction(true);
  EXPECT_GT(base, 0.5);
  EXPECT_LT(opt, base * 0.7);
}

}  // namespace
}  // namespace actop
