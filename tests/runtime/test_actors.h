// Shared toy actors for runtime integration tests.

#ifndef TESTS_RUNTIME_TEST_ACTORS_H_
#define TESTS_RUNTIME_TEST_ACTORS_H_

#include <memory>

#include "src/actor/actor.h"
#include "src/runtime/cluster.h"

namespace actop {

inline constexpr ActorType kEchoType = 100;
inline constexpr ActorType kRelayType = 101;

// Replies immediately; counts calls.
class EchoActor : public Actor {
 public:
  void OnCall(CallContext& ctx) override {
    calls_++;
    ctx.Reply(64);
  }
  int calls() const { return calls_; }

 private:
  int calls_ = 0;
};

// Method 0: call the actor named by app_data, reply after its response.
// Method 1: reply immediately.
class RelayActor : public Actor {
 public:
  void OnCall(CallContext& ctx) override {
    if (ctx.method() == 0 && ctx.app_data() != 0) {
      CallContext* call = &ctx;
      ctx.Call(static_cast<ActorId>(ctx.app_data()), 1, 128, [call, this](const Response& r) {
        if (r.failed) {
          failed_subcalls_++;
        }
        call->Reply(64);
      });
      return;
    }
    ctx.Reply(64);
  }
  int failed_subcalls() const { return failed_subcalls_; }

 private:
  int failed_subcalls_ = 0;
};

// Finds the server hosting `actor`, or kNoServer.
inline ServerId HostOf(Cluster& cluster, ActorId actor) {
  for (int s = 0; s < cluster.num_servers(); s++) {
    if (cluster.server(s).IsActive(actor)) {
      return static_cast<ServerId>(s);
    }
  }
  return kNoServer;
}

// Counts live activations of `actor` across the cluster (0 or 1 when the
// single-activation invariant holds).
inline int CountHosts(Cluster& cluster, ActorId actor) {
  int hosts = 0;
  for (int s = 0; s < cluster.num_servers(); s++) {
    if (cluster.server(s).IsActive(actor)) {
      hosts++;
    }
  }
  return hosts;
}

inline void RegisterTestActors(Cluster* cluster) {
  CostModel costs;
  costs.handler_compute = Micros(20);
  cluster->RegisterActorType(
      kEchoType, [](ActorId) { return std::make_unique<EchoActor>(); }, costs);
  cluster->RegisterActorType(
      kRelayType, [](ActorId) { return std::make_unique<RelayActor>(); }, costs);
}

}  // namespace actop

#endif  // TESTS_RUNTIME_TEST_ACTORS_H_
