// Differential proof for the PartitionAgent's arena planning backend
// (PartitionAgentConfig::use_arena_planner): planning through the flat CSR
// arena must make byte-identical decisions to the reference ordered planner.
//
// Plan level: fig10a-shaped clustered graphs (the Halo game/player clique
// structure) — for each server's LocalGraphView the arena path
// (CsrGraph::FromLocalView + planning-only RepartitionArena +
// ExportPeerPlans) must emit exactly what BuildPeerPlansOrdered emits: the
// same peers in the same order with the same total scores, candidates,
// sizes, edges and location hints. Views with unknown neighbor locations
// exercise the stand-in-server mapping. All edge weights are integers (the
// agent's weights are Space-Saving sample counts), so sums are exact in
// double regardless of summation order and scores compare with ==.
//
// End to end: two clusters differing only in the flag must land every actor
// on the same server with the same migration count.

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/core/csr_graph.h"
#include "src/core/pairwise_partition.h"
#include "src/core/partition_testbed.h"
#include "src/core/repartition_arena.h"
#include "src/runtime/client.h"
#include "src/runtime/cluster.h"
#include "src/sim/simulation.h"
#include "tests/runtime/test_actors.h"

namespace actop {
namespace {

// Mirrors PartitionAgent::PlanRound's arena path exactly.
std::vector<PeerPlan> ArenaPlansFor(const LocalGraphView& view, const PairwiseConfig& config,
                                    int cluster_servers) {
  const CsrGraph csr = CsrGraph::FromLocalView(view);
  const auto unknown = static_cast<ServerId>(cluster_servers);
  std::vector<ServerId> assignment(static_cast<size_t>(csr.num_vertices()));
  for (int32_t i = 0; i < csr.num_vertices(); i++) {
    const ServerId loc = view.LocationOf(csr.IdOf(i));
    assignment[static_cast<size_t>(i)] = loc == kNoServer ? unknown : loc;
  }
  RepartitionArena arena(&csr, cluster_servers + 1, config, std::move(assignment));
  std::vector<PeerPlan> plans;
  arena.ExportPeerPlans(view.self, &plans, unknown);
  return plans;
}

// Mirrors PartitionAgent::SampledOrder / PartitionTestbed::SampledMembers.
std::vector<VertexId> AscendingKeys(const LocalGraphView& view) {
  std::vector<VertexId> order;
  order.reserve(view.adjacency.size());
  for (const auto& [v, adj] : view.adjacency) {
    order.push_back(v);
  }
  std::sort(order.begin(), order.end());
  return order;
}

void ExpectPlansEqual(const std::vector<PeerPlan>& ref, const std::vector<PeerPlan>& arena,
                      uint64_t seed, ServerId p) {
  ASSERT_EQ(ref.size(), arena.size()) << "seed " << seed << " server " << p;
  for (size_t i = 0; i < ref.size(); i++) {
    ASSERT_EQ(ref[i].peer, arena[i].peer) << "seed " << seed << " server " << p << " plan " << i;
    ASSERT_EQ(ref[i].total_score, arena[i].total_score)
        << "seed " << seed << " server " << p << " plan " << i;
    ASSERT_EQ(ref[i].candidates.size(), arena[i].candidates.size())
        << "seed " << seed << " server " << p << " plan " << i;
    for (size_t j = 0; j < ref[i].candidates.size(); j++) {
      const Candidate& rc = ref[i].candidates[j];
      const Candidate& ac = arena[i].candidates[j];
      ASSERT_EQ(rc.vertex, ac.vertex) << "seed " << seed << " server " << p;
      ASSERT_EQ(rc.score, ac.score) << "seed " << seed << " vertex " << rc.vertex;
      ASSERT_EQ(rc.size, ac.size) << "seed " << seed << " vertex " << rc.vertex;
      ASSERT_EQ(rc.edges.size(), ac.edges.size()) << "seed " << seed << " vertex " << rc.vertex;
      auto ra = rc.edges.begin();
      auto aa = ac.edges.begin();
      for (; ra != rc.edges.end(); ++ra, ++aa) {
        ASSERT_EQ(ra->first, aa->first) << "seed " << seed << " vertex " << rc.vertex;
        ASSERT_EQ(ra->second.weight, aa->second.weight)
            << "seed " << seed << " vertex " << rc.vertex << " edge " << ra->first;
        ASSERT_EQ(ra->second.location_hint, aa->second.location_hint)
            << "seed " << seed << " vertex " << rc.vertex << " edge " << ra->first;
      }
    }
  }
}

TEST(ArenaPlannerTest, PlansMatchReferenceOnFig10aViews) {
  for (uint64_t seed = 1; seed <= 10; seed++) {
    Rng rng(seed);
    // fig10a shape: game/player cliques with cross-game chatter, integer
    // weights like the agent's sampled edge counts.
    WeightedGraph g = MakeClusteredGraph(12, 8, 4.0, 60, 1.0, &rng);
    const int servers = 6;
    PairwiseConfig config;
    config.candidate_set_size = 16;
    config.balance_delta = 16;
    if (seed % 3 == 0) {
      config.migration_cost_weight = 0.25;
    }
    if (seed % 4 == 0) {
      config.max_candidate_total_size = 6.0;
    }
    PartitionTestbed testbed(&g, servers, config, seed * 77 + 1);
    for (ServerId p = 0; p < servers; p++) {
      const LocalGraphView view = testbed.BuildView(p);
      const std::vector<PeerPlan> ref =
          BuildPeerPlansOrdered(view, config, testbed.SampledMembers(p));
      const std::vector<PeerPlan> arena = ArenaPlansFor(view, config, servers);
      ExpectPlansEqual(ref, arena, seed, p);
    }
  }
}

TEST(ArenaPlannerTest, UnknownNeighborLocationsMatchReference) {
  // Hand-built views where some remote endpoints have no known location
  // (absent from view.location): the reference planner skips those edges;
  // the arena maps them to the stand-in server and strips it on export.
  for (uint64_t seed = 50; seed <= 60; seed++) {
    Rng rng(seed);
    const int servers = 4;
    LocalGraphView view;
    view.self = 0;
    view.num_local_vertices = 20;
    for (VertexId v = 1; v <= 20; v++) {
      const int degree = static_cast<int>(rng.NextInt(1, 6));
      for (int e = 0; e < degree; e++) {
        const auto u = static_cast<VertexId>(rng.NextInt(1, 60));
        if (u == v) {
          continue;
        }
        view.adjacency[v][u] += static_cast<double>(rng.NextInt(1, 12));
      }
    }
    for (VertexId u = 21; u <= 40; u++) {
      view.location[u] = static_cast<ServerId>(1 + u % (servers - 1));
    }
    // Vertices 41..60 referenced by edges stay unknown on purpose.
    PairwiseConfig config;
    config.candidate_set_size = 8;
    config.balance_delta = 8;
    const std::vector<PeerPlan> ref = BuildPeerPlansOrdered(view, config, AscendingKeys(view));
    const std::vector<PeerPlan> arena = ArenaPlansFor(view, config, servers);
    ExpectPlansEqual(ref, arena, seed, view.self);
  }
}

// Mirrors PartitionAgent::OnExchangeRequest's arena path: the responder's
// view frozen into a CSR, DecideOffer against the offered candidates.
void ExpectDecisionsEqual(const LocalGraphView& view, const ExchangeRequest& request,
                          const PairwiseConfig& config, int cluster_servers, uint64_t seed) {
  const ExchangeDecision ref =
      DecideExchangeOrdered(view, request, config, AscendingKeys(view));

  const CsrGraph csr = CsrGraph::FromLocalView(view);
  const auto unknown = static_cast<ServerId>(cluster_servers);
  std::vector<ServerId> assignment(static_cast<size_t>(csr.num_vertices()));
  for (int32_t i = 0; i < csr.num_vertices(); i++) {
    const ServerId loc = view.LocationOf(csr.IdOf(i));
    assignment[static_cast<size_t>(i)] = loc == kNoServer ? unknown : loc;
  }
  RepartitionArena arena(&csr, cluster_servers + 1, config, std::move(assignment));
  std::vector<VertexId> accepted;
  std::vector<VertexId> counter;
  const double size_p = request.from_total_size >= 0.0
                            ? request.from_total_size
                            : static_cast<double>(request.from_num_vertices);
  arena.DecideOffer(view.self, request.from, request.candidates, size_p, view.TotalSize(),
                    unknown, &accepted, &counter);

  ASSERT_EQ(ref.accepted, accepted) << "seed " << seed << " responder " << view.self;
  ASSERT_EQ(ref.counter_offer.size(), counter.size())
      << "seed " << seed << " responder " << view.self;
  for (size_t i = 0; i < counter.size(); i++) {
    ASSERT_EQ(ref.counter_offer[i].vertex, counter[i])
        << "seed " << seed << " responder " << view.self;
  }
}

TEST(ArenaPlannerTest, ExchangeDecisionsMatchReferenceOnFig10aViews) {
  // Every ordered (initiator, responder) pair: the initiator's reference
  // plan toward the responder becomes the offer, and the responder's arena
  // decision must match the reference decision exactly — accepted set,
  // counter-offer set, both in order.
  for (uint64_t seed = 20; seed <= 26; seed++) {
    Rng rng(seed);
    WeightedGraph g = MakeClusteredGraph(12, 8, 4.0, 60, 1.0, &rng);
    const int servers = 6;
    PairwiseConfig config;
    config.candidate_set_size = 16;
    config.balance_delta = 16;
    PartitionTestbed testbed(&g, servers, config, seed * 77 + 1);
    for (ServerId p = 0; p < servers; p++) {
      const LocalGraphView p_view = testbed.BuildView(p);
      const std::vector<PeerPlan> plans =
          BuildPeerPlansOrdered(p_view, config, testbed.SampledMembers(p));
      for (const PeerPlan& plan : plans) {
        ExchangeRequest request;
        request.from = p;
        request.from_num_vertices = static_cast<int64_t>(p_view.num_local_vertices);
        request.candidates = plan.candidates;
        const LocalGraphView q_view = testbed.BuildView(plan.peer);
        ExpectDecisionsEqual(q_view, request, config, servers, seed);
      }
    }
  }
}

TEST(ArenaPlannerTest, ExchangeDecisionsWithUnknownLocationsAndForeignVertices) {
  // Offered candidates reference vertices the responder has never sampled
  // (absent from its view entirely) and vertices with unknown locations —
  // both must resolve through the offer's location hints, exactly like the
  // reference score_s fallback.
  for (uint64_t seed = 70; seed <= 78; seed++) {
    Rng rng(seed);
    const int servers = 4;
    LocalGraphView view;
    view.self = 2;
    view.num_local_vertices = 20;
    for (VertexId v = 1; v <= 20; v++) {
      const int degree = static_cast<int>(rng.NextInt(1, 6));
      for (int e = 0; e < degree; e++) {
        const auto u = static_cast<VertexId>(rng.NextInt(1, 60));
        if (u == v) {
          continue;
        }
        view.adjacency[v][u] += static_cast<double>(rng.NextInt(1, 12));
      }
    }
    // Locations only for *referenced* remote endpoints in 21..40 — BuildView
    // never records a location for a vertex absent from the sampled edges,
    // and the frozen plan graph relies on that invariant. Referenced
    // vertices in 41..60 stay unknown on purpose.
    for (const auto& [v, adj] : view.adjacency) {
      for (const auto& [u, w] : adj) {
        if (u >= 21 && u <= 40) {
          view.location[u] = static_cast<ServerId>(u % servers);
        }
      }
    }
    ExchangeRequest request;
    request.from = 0;
    request.from_num_vertices = 22;
    const int offered = static_cast<int>(rng.NextInt(1, 8));
    for (int i = 0; i < offered; i++) {
      Candidate c;
      c.vertex = static_cast<VertexId>(61 + i * 3 + rng.NextInt(0, 2));  // foreign to q
      c.score = static_cast<double>(rng.NextInt(1, 10));
      c.size = 1.0;
      VertexId u = 0;
      const int edges = static_cast<int>(rng.NextInt(1, 6));
      for (int e = 0; e < edges; e++) {
        u += static_cast<VertexId>(rng.NextInt(1, 15));  // strictly ascending keys
        const auto hint = static_cast<ServerId>(rng.NextInt(0, servers - 1));
        c.edges.append_ascending(u, CandidateEdge{static_cast<double>(rng.NextInt(1, 12)),
                                                  rng.NextInt(0, 3) == 0 ? kNoServer : hint});
      }
      request.candidates.push_back(std::move(c));
    }
    PairwiseConfig config;
    config.candidate_set_size = 8;
    config.balance_delta = 8;
    ExpectDecisionsEqual(view, request, config, servers, seed);
  }
}

uint64_t PlacementDigest(bool use_arena) {
  Simulation sim;
  ClusterConfig cfg;
  cfg.num_servers = 4;
  cfg.seed = 7;
  cfg.enable_partitioning = true;
  cfg.partition.exchange_period = Seconds(2);
  cfg.partition.exchange_min_gap = Seconds(2);
  cfg.partition.pairwise.candidate_set_size = 64;
  cfg.partition.pairwise.balance_delta = 64;
  cfg.partition.use_arena_planner = use_arena;
  Cluster cluster(&sim, cfg);
  RegisterTestActors(&cluster);
  cluster.StartOptimizers();
  DirectClient client(&sim, &cluster, 5);
  sim.SchedulePeriodic(Millis(50), [&client] {
    for (uint64_t k = 1; k <= 40; k++) {
      client.Call(MakeActorId(kRelayType, k), 0, MakeActorId(kEchoType, k), 100, nullptr);
    }
  });
  sim.RunUntil(Seconds(20));

  uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  auto mix = [&h](uint64_t x) {
    h ^= x;
    h *= 1099511628211ULL;  // FNV prime
  };
  for (uint64_t k = 1; k <= 40; k++) {
    for (const ActorId actor : {MakeActorId(kRelayType, k), MakeActorId(kEchoType, k)}) {
      ServerId host = kNoServer;
      for (int s = 0; s < cluster.num_servers(); s++) {
        if (cluster.server(s).IsActive(actor)) {
          host = static_cast<ServerId>(s);
          break;
        }
      }
      mix(actor);
      mix(static_cast<uint64_t>(static_cast<int64_t>(host)));
    }
  }
  mix(cluster.total_migrations());
  return h;
}

TEST(ArenaPlannerTest, EndToEndDecisionsIdenticalAcrossBackends) {
  // The strongest form of the differential: any plan divergence in any round
  // on any server would desynchronize migrations and the final placement.
  EXPECT_EQ(PlacementDigest(false), PlacementDigest(true));
}

}  // namespace
}  // namespace actop
