#include "src/runtime/server.h"

#include <gtest/gtest.h>

#include "src/common/sim_time.h"
#include "src/runtime/client.h"
#include "src/runtime/cluster.h"
#include "src/sim/simulation.h"
#include "tests/runtime/test_actors.h"

namespace actop {
namespace {

ClusterConfig SmallCluster(int servers = 4, uint64_t seed = 1) {
  ClusterConfig cfg;
  cfg.num_servers = servers;
  cfg.seed = seed;
  return cfg;
}

TEST(RuntimeTest, ClientCallActivatesAndResponds) {
  Simulation sim;
  Cluster cluster(&sim, SmallCluster());
  RegisterTestActors(&cluster);
  DirectClient client(&sim, &cluster, 5);

  const ActorId echo = MakeActorId(kEchoType, 1);
  int responses = 0;
  client.Call(echo, 1, 0, 100, [&](const Response&) { responses++; });
  sim.RunUntil(Seconds(1));

  EXPECT_EQ(responses, 1);
  EXPECT_EQ(cluster.total_activations(), 1);
  auto* actor = static_cast<EchoActor*>(cluster.GetOrCreateActor(echo));
  EXPECT_EQ(actor->calls(), 1);
}

TEST(RuntimeTest, ActivationIsExactlyOnceUnderConcurrentCalls) {
  Simulation sim;
  Cluster cluster(&sim, SmallCluster());
  RegisterTestActors(&cluster);
  DirectClient client(&sim, &cluster, 5);

  const ActorId echo = MakeActorId(kEchoType, 7);
  int responses = 0;
  for (int i = 0; i < 20; i++) {
    client.Call(echo, 1, 0, 100, [&](const Response&) { responses++; });
  }
  sim.RunUntil(Seconds(2));
  EXPECT_EQ(responses, 20);
  // Exactly one server hosts the actor despite 20 racing activations.
  int hosts = 0;
  for (int s = 0; s < cluster.num_servers(); s++) {
    if (cluster.server(s).IsActive(echo)) {
      hosts++;
    }
  }
  EXPECT_EQ(hosts, 1);
  uint64_t total_started = 0;
  for (int s = 0; s < cluster.num_servers(); s++) {
    total_started += cluster.server(s).activations_started();
  }
  EXPECT_EQ(total_started, 1u);
}

TEST(RuntimeTest, RandomPlacementSpreadsActors) {
  Simulation sim;
  Cluster cluster(&sim, SmallCluster(4));
  RegisterTestActors(&cluster);
  DirectClient client(&sim, &cluster, 5);

  for (uint64_t k = 1; k <= 200; k++) {
    client.Call(MakeActorId(kEchoType, k), 1, 0, 100, nullptr);
  }
  sim.RunUntil(Seconds(5));
  EXPECT_EQ(cluster.total_activations(), 200);
  for (int s = 0; s < cluster.num_servers(); s++) {
    // Each server should hold a nontrivial share (exp 50, binomial).
    EXPECT_GT(cluster.server(s).num_activations(), 20);
    EXPECT_LT(cluster.server(s).num_activations(), 90);
  }
}

TEST(RuntimeTest, LocalPlacementPutsActorOnGateway) {
  ClusterConfig cfg = SmallCluster(4);
  cfg.server.placement = PlacementPolicy::kLocal;
  Simulation sim;
  Cluster cluster(&sim, cfg);
  RegisterTestActors(&cluster);

  // Issue all calls through server 2 by calling from an actor there: first
  // place a relay on some server via a client, then relay to new actors.
  // Simpler: DirectClient requests enter via random gateways, so with kLocal
  // each actor lands on its own request's gateway; verify every activation's
  // server equals *some* gateway — weaker, so instead check total spread is
  // still complete and activations equal actor count.
  DirectClient client(&sim, &cluster, 9);
  for (uint64_t k = 1; k <= 50; k++) {
    client.Call(MakeActorId(kEchoType, k), 1, 0, 100, nullptr);
  }
  sim.RunUntil(Seconds(5));
  EXPECT_EQ(cluster.total_activations(), 50);
}

TEST(RuntimeTest, ConsistentHashPlacementIsDeterministic) {
  auto placements = [](uint64_t seed) {
    ClusterConfig cfg = SmallCluster(4, seed);
    cfg.server.placement = PlacementPolicy::kConsistentHash;
    Simulation sim;
    Cluster cluster(&sim, cfg);
    RegisterTestActors(&cluster);
    DirectClient client(&sim, &cluster, seed ^ 77);
    for (uint64_t k = 1; k <= 30; k++) {
      client.Call(MakeActorId(kEchoType, k), 1, 0, 100, nullptr);
    }
    sim.RunUntil(Seconds(5));
    std::vector<ServerId> out;
    for (uint64_t k = 1; k <= 30; k++) {
      for (int s = 0; s < cluster.num_servers(); s++) {
        if (cluster.server(s).IsActive(MakeActorId(kEchoType, k))) {
          out.push_back(static_cast<ServerId>(s));
        }
      }
    }
    return out;
  };
  // Different seeds (different gateways, different rng) — same placement.
  EXPECT_EQ(placements(1), placements(2));
}

TEST(RuntimeTest, ActorToActorCallAcrossServers) {
  Simulation sim;
  Cluster cluster(&sim, SmallCluster());
  RegisterTestActors(&cluster);
  DirectClient client(&sim, &cluster, 5);

  const ActorId relay = MakeActorId(kRelayType, 1);
  const ActorId echo = MakeActorId(kEchoType, 2);
  int responses = 0;
  client.Call(relay, 0, echo, 100, [&](const Response&) { responses++; });
  sim.RunUntil(Seconds(2));
  EXPECT_EQ(responses, 1);
  auto* echo_actor = static_cast<EchoActor*>(cluster.GetOrCreateActor(echo));
  EXPECT_EQ(echo_actor->calls(), 1);
  EXPECT_EQ(cluster.metrics().actor_call_latency().count(), 1u);
}

TEST(RuntimeTest, DrainingParkedCallsMayParkFurtherCalls) {
  // Regression for the parked-call drain: delivering a parked call can
  // re-enter server routing and park *more* calls — including under keys
  // that are mid-drain elsewhere. The drain must move the entry list out
  // and erase the map entry before dispatching (iterating the live map
  // would be invalidated by the re-park). Two relays that call each other's
  // partner plus concurrent fan-in produce exactly that interleaving:
  // every call to an unresolved relay parks, each drained relay turn then
  // issues a sub-call to the *other* relay, which parks again on servers
  // that have not resolved it yet.
  Simulation sim;
  Cluster cluster(&sim, SmallCluster());
  RegisterTestActors(&cluster);
  DirectClient client(&sim, &cluster, 5);

  const ActorId relay_a = MakeActorId(kRelayType, 11);
  const ActorId relay_b = MakeActorId(kRelayType, 12);
  int responses = 0;
  for (int i = 0; i < 10; i++) {
    // method 0 with app_data = partner: relay sub-calls the partner's
    // method 1 (immediate reply) before replying itself.
    client.Call(relay_a, 0, relay_b, 100, [&](const Response& r) {
      EXPECT_FALSE(r.failed);
      responses++;
    });
    client.Call(relay_b, 0, relay_a, 100, [&](const Response& r) {
      EXPECT_FALSE(r.failed);
      responses++;
    });
  }
  sim.RunUntil(Seconds(2));
  EXPECT_EQ(responses, 20);
  // The racing activations still resolved to exactly one host per relay.
  EXPECT_EQ(CountHosts(cluster, relay_a), 1);
  EXPECT_EQ(CountHosts(cluster, relay_b), 1);

  // Second wave on fresh keys: exercises the recycled parked-entry buffers
  // (the drain returns each drained vector to a pool for later parks).
  const ActorId relay_c = MakeActorId(kRelayType, 13);
  const ActorId echo = MakeActorId(kEchoType, 14);
  for (int i = 0; i < 10; i++) {
    client.Call(relay_c, 0, echo, 100, [&](const Response& r) {
      EXPECT_FALSE(r.failed);
      responses++;
    });
  }
  sim.RunUntil(Seconds(4));
  EXPECT_EQ(responses, 30);
  EXPECT_EQ(CountHosts(cluster, relay_c), 1);
}

TEST(RuntimeTest, TurnBasedExecutionSerializesCalls) {
  // An actor with 10 concurrent calls must process them one at a time:
  // with 20 µs handler compute the last response completes no earlier than
  // 10 * 20 µs after the first turn starts.
  Simulation sim;
  Cluster cluster(&sim, SmallCluster(2));
  RegisterTestActors(&cluster);
  DirectClient client(&sim, &cluster, 5);

  const ActorId echo = MakeActorId(kEchoType, 3);
  client.Call(echo, 1, 0, 100, nullptr);  // warm up (activation)
  sim.RunUntil(Seconds(1));

  SimTime first_response = 0;
  SimTime last_response = 0;
  int responses = 0;
  for (int i = 0; i < 10; i++) {
    client.Call(echo, 1, 0, 100, [&](const Response&) {
      if (responses == 0) {
        first_response = sim.now();
      }
      responses++;
      last_response = sim.now();
    });
  }
  sim.RunUntil(Seconds(2));
  EXPECT_EQ(responses, 10);
  EXPECT_GE(last_response - first_response, Micros(20) * 9);
}

TEST(RuntimeTest, SecondCallUsesLocationCache) {
  Simulation sim;
  Cluster cluster(&sim, SmallCluster());
  RegisterTestActors(&cluster);
  DirectClient client(&sim, &cluster, 5);

  const ActorId relay = MakeActorId(kRelayType, 1);
  const ActorId echo = MakeActorId(kEchoType, 2);
  client.Call(relay, 0, echo, 100, nullptr);
  sim.RunUntil(Seconds(1));

  // The relay's server must now know echo's location.
  ServerId relay_server = kNoServer;
  for (int s = 0; s < cluster.num_servers(); s++) {
    if (cluster.server(s).IsActive(relay)) {
      relay_server = static_cast<ServerId>(s);
    }
  }
  ASSERT_NE(relay_server, kNoServer);
  ServerId echo_server = kNoServer;
  for (int s = 0; s < cluster.num_servers(); s++) {
    if (cluster.server(s).IsActive(echo)) {
      echo_server = static_cast<ServerId>(s);
    }
  }
  if (relay_server != echo_server) {
    EXPECT_EQ(cluster.server(relay_server).location_cache().Peek(echo), echo_server);
  }
}

TEST(RuntimeTest, MigrationMovesActivationViaCacheHint) {
  Simulation sim;
  Cluster cluster(&sim, SmallCluster());
  RegisterTestActors(&cluster);
  DirectClient client(&sim, &cluster, 5);

  // Spread relays around so we can later call from the echo's OLD host —
  // the §4.3 opportunistic path: p or q's cache hint drives re-placement.
  const ActorId echo = MakeActorId(kEchoType, 1);
  client.Call(echo, 1, 0, 100, nullptr);
  for (uint64_t k = 1; k <= 40; k++) {
    client.Call(MakeActorId(kRelayType, k), 1, 0, 100, nullptr);
  }
  sim.RunUntil(Seconds(2));

  const ServerId host = HostOf(cluster, echo);
  ASSERT_NE(host, kNoServer);
  ActorId relay_on_host = kNoActor;
  for (uint64_t k = 1; k <= 40; k++) {
    if (cluster.server(host).IsActive(MakeActorId(kRelayType, k))) {
      relay_on_host = MakeActorId(kRelayType, k);
      break;
    }
  }
  ASSERT_NE(relay_on_host, kNoActor);

  const ServerId dest = (host + 1) % cluster.num_servers();
  ASSERT_TRUE(cluster.server(host).MigrateActor(echo, dest));
  EXPECT_FALSE(cluster.server(host).IsActive(echo));
  sim.RunUntil(sim.now() + Seconds(1));

  // A call issued from the old host follows its primed cache to `dest`.
  int responses = 0;
  client.Call(relay_on_host, 0, echo, 100, [&](const Response&) { responses++; });
  sim.RunUntil(sim.now() + Seconds(2));
  EXPECT_EQ(responses, 1);
  EXPECT_TRUE(cluster.server(dest).IsActive(echo));
  // State survived the migration: the call counter kept counting.
  auto* actor = static_cast<EchoActor*>(cluster.GetOrCreateActor(echo));
  EXPECT_EQ(actor->calls(), 2);
  EXPECT_EQ(cluster.total_migrations(), 1u);
}

TEST(RuntimeTest, MigrationThenThirdPartyCallReactivatesAtCaller) {
  // §4.3: if the next message comes from neither p nor q, the actor is
  // placed on the server that originated the call.
  Simulation sim;
  Cluster cluster(&sim, SmallCluster());
  RegisterTestActors(&cluster);
  DirectClient client(&sim, &cluster, 5);

  const ActorId echo = MakeActorId(kEchoType, 1);
  client.Call(echo, 1, 0, 100, nullptr);
  for (uint64_t k = 1; k <= 40; k++) {
    client.Call(MakeActorId(kRelayType, k), 1, 0, 100, nullptr);
  }
  sim.RunUntil(Seconds(2));

  const ServerId host = HostOf(cluster, echo);
  ASSERT_NE(host, kNoServer);
  const ServerId dest = (host + 1) % cluster.num_servers();
  const ServerId third = (host + 2) % cluster.num_servers();
  ActorId relay_on_third = kNoActor;
  for (uint64_t k = 1; k <= 40; k++) {
    if (cluster.server(third).IsActive(MakeActorId(kRelayType, k))) {
      relay_on_third = MakeActorId(kRelayType, k);
      break;
    }
  }
  ASSERT_NE(relay_on_third, kNoActor);
  ASSERT_TRUE(cluster.server(host).MigrateActor(echo, dest));
  sim.RunUntil(sim.now() + Seconds(1));

  int responses = 0;
  client.Call(relay_on_third, 0, echo, 100, [&](const Response&) { responses++; });
  sim.RunUntil(sim.now() + Seconds(2));
  EXPECT_EQ(responses, 1);
  // The third server had no hint (unless it had cached the old location,
  // which then forwarded to... the old host whose hint points at dest).
  // Either way the actor is live on exactly one of {dest, third}.
  const ServerId new_host = HostOf(cluster, echo);
  EXPECT_TRUE(new_host == dest || new_host == third) << "host " << new_host;
}

TEST(RuntimeTest, MigrationRefusedWhileBusy) {
  Simulation sim;
  Cluster cluster(&sim, SmallCluster());
  RegisterTestActors(&cluster);
  DirectClient client(&sim, &cluster, 5);

  const ActorId relay = MakeActorId(kRelayType, 1);
  const ActorId echo = MakeActorId(kEchoType, 2);
  // Activate the relay first so the busy-window test starts from a settled
  // state.
  client.Call(relay, 1, 0, 100, nullptr);
  sim.RunUntil(Seconds(1));
  ServerId host = kNoServer;
  for (int s = 0; s < cluster.num_servers(); s++) {
    if (cluster.server(s).IsActive(relay)) {
      host = static_cast<ServerId>(s);
    }
  }
  ASSERT_NE(host, kNoServer);
  EXPECT_TRUE(cluster.server(host).IsMigratable(relay));

  // Issue a relayed call; while the sub-call to echo is outstanding, the
  // relay holds an open context and must not be migratable.
  client.Call(relay, 0, echo, 100, nullptr);
  bool observed_busy = false;
  for (int step = 0; step < 5000; step++) {
    sim.RunUntil(sim.now() + Micros(100));
    if (!cluster.server(host).IsMigratable(relay) && cluster.server(host).IsActive(relay)) {
      observed_busy = true;
      EXPECT_FALSE(
          cluster.server(host).MigrateActor(relay, (host + 1) % cluster.num_servers()));
      break;
    }
  }
  EXPECT_TRUE(observed_busy);
  sim.RunUntil(sim.now() + Seconds(2));
  // After the call completes, migration becomes possible again.
  EXPECT_TRUE(cluster.server(host).IsMigratable(relay));
}

TEST(RuntimeTest, RemoteAndLocalMessageCounting) {
  Simulation sim;
  Cluster cluster(&sim, SmallCluster());
  RegisterTestActors(&cluster);
  DirectClient client(&sim, &cluster, 5);

  // 50 relay->echo pairs; with random placement ~75% of pairs are split.
  int responses = 0;
  for (uint64_t k = 1; k <= 50; k++) {
    client.Call(MakeActorId(kRelayType, k), 0, MakeActorId(kEchoType, k), 100,
                [&](const Response&) { responses++; });
  }
  sim.RunUntil(Seconds(5));
  EXPECT_EQ(responses, 50);
  uint64_t remote = 0;
  uint64_t local = 0;
  for (int s = 0; s < cluster.num_servers(); s++) {
    remote += cluster.server(s).remote_app_messages();
    local += cluster.server(s).local_app_messages();
  }
  // Each pair: call + response = 2 app messages.
  EXPECT_EQ(remote + local, 100u);
  EXPECT_GT(remote, 40u);  // E[remote] = 75
  EXPECT_GT(cluster.RemoteMessageFraction(), 0.4);
}

TEST(RuntimeTest, CrashReactivatesActorElsewhere) {
  Simulation sim;
  Cluster cluster(&sim, SmallCluster());
  RegisterTestActors(&cluster);
  DirectClient client(&sim, &cluster, 5);

  const ActorId echo = MakeActorId(kEchoType, 1);
  client.Call(echo, 1, 0, 100, nullptr);
  sim.RunUntil(Seconds(1));
  ServerId host = kNoServer;
  for (int s = 0; s < cluster.num_servers(); s++) {
    if (cluster.server(s).IsActive(echo)) {
      host = static_cast<ServerId>(s);
    }
  }
  ASSERT_NE(host, kNoServer);
  cluster.CrashServer(host);
  EXPECT_FALSE(cluster.server(host).IsActive(echo));

  // Virtual-actor fault tolerance: the next call re-instantiates the actor.
  int responses = 0;
  client.Call(echo, 1, 0, 100, [&](const Response&) { responses++; });
  sim.RunUntil(sim.now() + Seconds(2));
  EXPECT_EQ(responses, 1);
  EXPECT_EQ(cluster.total_activations(), 1);
}

TEST(RuntimeTest, SubcallToCrashedServerFailsViaTimeout) {
  ClusterConfig cfg = SmallCluster();
  cfg.server.call_timeout = Seconds(2);
  Simulation sim;
  Cluster cluster(&sim, cfg);
  RegisterTestActors(&cluster);
  DirectClient client(&sim, &cluster, 5);

  const ActorId relay = MakeActorId(kRelayType, 1);
  const ActorId echo = MakeActorId(kEchoType, 2);
  // Activate both.
  client.Call(relay, 1, 0, 100, nullptr);
  client.Call(echo, 1, 0, 100, nullptr);
  sim.RunUntil(Seconds(1));

  ServerId relay_host = kNoServer;
  ServerId echo_host = kNoServer;
  for (int s = 0; s < cluster.num_servers(); s++) {
    if (cluster.server(s).IsActive(relay)) {
      relay_host = static_cast<ServerId>(s);
    }
    if (cluster.server(s).IsActive(echo)) {
      echo_host = static_cast<ServerId>(s);
    }
  }
  ASSERT_NE(relay_host, kNoServer);
  if (relay_host == echo_host) {
    GTEST_SKIP() << "co-located by chance; crash would kill the relay too";
  }

  // Crash echo's server the instant the relay's sub-call is in flight.
  client.Call(relay, 0, echo, 100, nullptr);
  sim.RunUntil(sim.now() + Micros(400));
  cluster.CrashServer(echo_host);
  sim.RunUntil(sim.now() + Seconds(5));

  auto* relay_actor = static_cast<RelayActor*>(cluster.GetOrCreateActor(relay));
  // Either the sub-call raced ahead of the crash (0) or it failed (1) —
  // but the relay must not be stuck with an open context.
  EXPECT_TRUE(cluster.server(relay_host).IsMigratable(relay));
  EXPECT_LE(relay_actor->failed_subcalls(), 1);
}

TEST(RuntimeTest, ThreadAllocationApplies) {
  Simulation sim;
  Cluster cluster(&sim, SmallCluster());
  RegisterTestActors(&cluster);
  cluster.server(0).ApplyThreadAllocation({2, 3, 4, 5});
  EXPECT_EQ(cluster.server(0).stage(0).threads(), 2);
  EXPECT_EQ(cluster.server(0).stage(3).threads(), 5);
  EXPECT_EQ(cluster.server(0).cpu().total_threads(), 14);
}

TEST(RuntimeTest, DeterministicEndToEnd) {
  auto run = [](uint64_t seed) {
    Simulation sim;
    Cluster cluster(&sim, SmallCluster(4, seed));
    RegisterTestActors(&cluster);
    DirectClient client(&sim, &cluster, 5);
    uint64_t checksum = 0;
    for (uint64_t k = 1; k <= 30; k++) {
      client.Call(MakeActorId(kRelayType, k), 0, MakeActorId(kEchoType, k), 100,
                  [&, k](const Response&) { checksum = checksum * 31 + k + sim.now() % 1000003; });
    }
    sim.RunUntil(Seconds(5));
    return checksum;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

}  // namespace
}  // namespace actop
