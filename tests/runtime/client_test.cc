#include "src/runtime/client.h"

#include <gtest/gtest.h>

#include "src/common/sim_time.h"
#include "src/runtime/cluster.h"
#include "src/sim/simulation.h"
#include "tests/runtime/test_actors.h"

namespace actop {
namespace {

TEST(ClientPoolTest, GeneratesApproximatePoissonRate) {
  Simulation sim;
  Cluster cluster(&sim, ClusterConfig{.num_servers = 2});
  RegisterTestActors(&cluster);
  ClientPool clients(&sim, &cluster, ClientConfig{.request_rate = 2000.0},
                     [](Rng& rng, ActorId* target, MethodId* method) {
                       *target = MakeActorId(kEchoType, rng.NextBounded(100) + 1);
                       *method = 1;
                       return true;
                     });
  clients.Start();
  sim.RunUntil(Seconds(5));
  clients.Stop();
  EXPECT_NEAR(static_cast<double>(clients.issued()), 10000.0, 500.0);
}

TEST(ClientPoolTest, MeasuresEndToEndLatency) {
  Simulation sim;
  Cluster cluster(&sim, ClusterConfig{.num_servers = 2});
  RegisterTestActors(&cluster);
  ClientPool clients(&sim, &cluster, ClientConfig{.request_rate = 500.0},
                     [](Rng& rng, ActorId* target, MethodId* method) {
                       *target = MakeActorId(kEchoType, rng.NextBounded(50) + 1);
                       *method = 1;
                       return true;
                     });
  clients.Start();
  sim.RunUntil(Seconds(4));
  clients.Stop();
  sim.RunUntil(sim.now() + Seconds(1));
  EXPECT_GT(clients.completed(), clients.issued() * 95 / 100);
  // Latency at minimum: 2 network hops (500 µs) + deser + turn + ser.
  EXPECT_GT(clients.latency().p50(), Micros(500));
  EXPECT_LT(clients.latency().p50(), Millis(50));
  EXPECT_EQ(clients.timeouts(), 0u);
}

TEST(ClientPoolTest, SkippedTargetsDoNotIssue) {
  Simulation sim;
  Cluster cluster(&sim, ClusterConfig{.num_servers = 2});
  RegisterTestActors(&cluster);
  ClientPool clients(&sim, &cluster, ClientConfig{.request_rate = 1000.0},
                     [](Rng&, ActorId*, MethodId*) { return false; });
  clients.Start();
  sim.RunUntil(Seconds(2));
  EXPECT_EQ(clients.issued(), 0u);
}

TEST(ClientPoolTest, ResetStatsClearsCounters) {
  Simulation sim;
  Cluster cluster(&sim, ClusterConfig{.num_servers = 2});
  RegisterTestActors(&cluster);
  ClientPool clients(&sim, &cluster, ClientConfig{.request_rate = 500.0},
                     [](Rng&, ActorId* target, MethodId* method) {
                       *target = MakeActorId(kEchoType, 1);
                       *method = 1;
                       return true;
                     });
  clients.Start();
  sim.RunUntil(Seconds(2));
  clients.ResetStats();
  EXPECT_EQ(clients.latency().count(), 0u);
  EXPECT_EQ(clients.issued(), 0u);
  sim.RunUntil(Seconds(4));
  EXPECT_GT(clients.issued(), 0u);
}

TEST(ClientPoolTest, TimeoutsOnUnresponsiveCluster) {
  ClusterConfig cfg;
  cfg.num_servers = 2;
  // Make the cluster unable to respond in time: tiny queues with huge load.
  cfg.server.stage_queue_capacity = 4;
  Simulation sim;
  Cluster cluster(&sim, cfg);
  RegisterTestActors(&cluster);
  ClientPool clients(&sim, &cluster,
                     ClientConfig{.request_rate = 50000.0, .timeout = Seconds(2)},
                     [](Rng& rng, ActorId* target, MethodId* method) {
                       *target = MakeActorId(kEchoType, rng.NextBounded(10) + 1);
                       *method = 1;
                       return true;
                     });
  clients.Start();
  sim.RunUntil(Seconds(5));
  clients.Stop();
  sim.RunUntil(sim.now() + Seconds(5));
  EXPECT_GT(clients.timeouts(), 0u);
}

TEST(DirectClientTest, CallbackReceivesResponse) {
  Simulation sim;
  Cluster cluster(&sim, ClusterConfig{.num_servers = 2});
  RegisterTestActors(&cluster);
  DirectClient client(&sim, &cluster, 3);
  int got = 0;
  client.Call(MakeActorId(kEchoType, 1), 1, 0, 100, [&](const Response& r) {
    EXPECT_FALSE(r.failed);
    got++;
  });
  sim.RunUntil(Seconds(1));
  EXPECT_EQ(got, 1);
}

}  // namespace
}  // namespace actop
