// Tier-1 memory-footprint regression: cumulative allocated bytes per actor
// for a small Halo Presence cluster, counted by a global operator new hook.
//
// bench_halo_scale gates the same quantity at the 1000-server / 10M-actor
// point (~2.9 KB/actor, 3200 ceiling), but that run takes ~20 minutes and
// only executes on demand. This test pins the per-actor growth path in the
// regular ctest sweep: it builds an 8-server / 20K-player cluster, starts
// the workload and runs the warm-up, then asserts cumulative bytes/actor
// under ceilings measured with ~50% headroom. A regression that doubles
// per-player state (e.g. reintroducing per-actor node-based containers in
// the player/roster slabs) trips this in seconds instead of surfacing in
// the next full-scale halo run.
//
// The counters are cumulative allocation, not live bytes — transient churn
// counts too, which is intentional: the flat-state pass was about removing
// per-actor allocations outright, not about recycling them faster.
//
// This file must be its own test binary: the replaced global operator new
// counts every allocation in the process, which would skew no one else's
// assertions but is intrusive enough to keep out of runtime_test.

#include <atomic>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "bench/halo_common.h"
#include "src/common/sim_time.h"
#include "src/runtime/cluster.h"
#include "src/sim/sharded_engine.h"
#include "src/workload/halo_presence.h"

namespace {
std::atomic<uint64_t> g_alloc_count{0};
std::atomic<uint64_t> g_alloc_bytes{0};
}  // namespace

// See bench_partition.cc: GCC flags the opaque replaced operator new against
// inlined STL deletes in this TU (known counting-allocator false positive).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace actop {
namespace {

struct FootprintPhases {
  uint64_t bytes_cluster_build = 0;  // engine + servers + caches
  uint64_t bytes_workload_start = 0;  // + player tables, initial games
  uint64_t bytes_warmup = 0;          // + activation wave, directory fill
};

// Mirrors bench_halo_scale's phase structure at toy scale: snapshot the
// cumulative byte counter after cluster construction, workload start, and a
// short warm-up covering the initial SetGame wave.
FootprintPhases RunFootprintPhases(const HaloExperimentConfig& config, SimDuration warmup) {
  const ClusterConfig cluster_config = MakeHaloClusterConfig(config);
  ShardedEngineConfig engine_config;
  engine_config.shards = config.shards;
  engine_config.lookahead = cluster_config.network.one_way_latency;

  FootprintPhases out;
  ShardedEngine engine(engine_config);
  Cluster cluster(&engine, cluster_config);
  out.bytes_cluster_build = g_alloc_bytes.load(std::memory_order_relaxed);

  HaloWorkload halo(&cluster, MakeHaloWorkloadConfig(config));
  halo.Start();
  cluster.StartOptimizers();
  out.bytes_workload_start = g_alloc_bytes.load(std::memory_order_relaxed);

  engine.RunUntil(warmup);
  out.bytes_warmup = g_alloc_bytes.load(std::memory_order_relaxed);
  return out;
}

// At this scale the fixed per-server state (stages, caches, metrics) still
// amortizes over only 2.5K players/server, so the per-actor figure sits above
// the full-scale ~2.9 KB. Ceilings are measured values plus ~50% headroom;
// the absolute numbers are printed on every run for easy re-anchoring.
TEST(MemoryFootprint, BytesPerActorStaysBounded) {
  g_alloc_bytes.store(0, std::memory_order_relaxed);
  g_alloc_count.store(0, std::memory_order_relaxed);

  HaloExperimentConfig config;
  config.num_servers = 8;
  config.players = 20000;
  config.request_rate = 200.0;
  config.partitioning = false;
  config.thread_optimization = true;
  config.seed = 42;

  const FootprintPhases phases = RunFootprintPhases(config, Seconds(2));
  const double players = static_cast<double>(config.players);
  const double build_per_actor = static_cast<double>(phases.bytes_cluster_build) / players;
  const double start_per_actor = static_cast<double>(phases.bytes_workload_start) / players;
  const double warm_per_actor = static_cast<double>(phases.bytes_warmup) / players;

  std::printf("footprint: build %.1f B/actor, +workload %.1f, +warmup %.1f (total %llu bytes)\n",
              build_per_actor, start_per_actor, warm_per_actor,
              static_cast<unsigned long long>(phases.bytes_warmup));

  // Sanity: the phases actually allocated and are monotone.
  EXPECT_GT(phases.bytes_cluster_build, 0u);
  EXPECT_GE(phases.bytes_workload_start, phases.bytes_cluster_build);
  EXPECT_GE(phases.bytes_warmup, phases.bytes_workload_start);

  // Measured 2196 B/actor through warm-up (RelWithDebInfo, seed 42).
  EXPECT_LT(warm_per_actor, 3300.0);
  // The workload-start phase holds the dense player/roster slabs; pin it
  // separately so a per-player container regression is attributed directly.
  // Measured 168 B/actor — the slab growth path doubles capacity, so allow
  // a generous 2.4x before calling it a regression.
  EXPECT_LT(start_per_actor - build_per_actor, 400.0);
}

// Same shape with the partitioning control plane on (arena planner, edge
// samplers, exchange wiring): pins the control plane's per-actor overhead so
// planner changes that start allocating per-vertex state get caught here,
// not only by the fig10b allocs/event ratchet.
TEST(MemoryFootprint, PartitioningControlPlaneOverheadStaysBounded) {
  g_alloc_bytes.store(0, std::memory_order_relaxed);
  g_alloc_count.store(0, std::memory_order_relaxed);

  HaloExperimentConfig config;
  config.num_servers = 8;
  config.players = 20000;
  config.request_rate = 200.0;
  config.partitioning = true;
  config.thread_optimization = true;
  config.seed = 42;

  const FootprintPhases phases = RunFootprintPhases(config, Seconds(2));
  const double players = static_cast<double>(config.players);
  const double warm_per_actor = static_cast<double>(phases.bytes_warmup) / players;

  std::printf("footprint(partitioning): +warmup %.1f B/actor (total %llu bytes)\n",
              warm_per_actor, static_cast<unsigned long long>(phases.bytes_warmup));

  EXPECT_GT(phases.bytes_warmup, 0u);
  // Measured 3442 B/actor: the 2196 base plus edge samplers, the persistent
  // CSR plan graph, and exchange wire traffic.
  EXPECT_LT(warm_per_actor, 5200.0);
}

}  // namespace
}  // namespace actop
