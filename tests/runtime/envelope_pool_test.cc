#include "src/runtime/envelope_pool.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/common/recycling_pool.h"

namespace actop {
namespace {

TEST(RecyclingPoolTest, RecyclesBlocksOfTheCachedSize) {
  RecyclingBlockCache cache;
  struct Payload {
    uint64_t a = 1;
    uint64_t b = 2;
  };
  void* first = nullptr;
  {
    auto p = MakePooled<Payload>(cache);
    first = p.get();
    EXPECT_EQ(cache.fresh_allocations(), 1u);
  }
  EXPECT_EQ(cache.cached_blocks(), 1u);
  {
    // Same type, freed block available: memory is reused, object is fresh.
    auto p = MakePooled<Payload>(cache);
    EXPECT_EQ(p.get(), first);
    EXPECT_EQ(p->a, 1u);
    EXPECT_EQ(cache.fresh_allocations(), 1u);
    EXPECT_EQ(cache.recycled_allocations(), 1u);
  }
}

TEST(RecyclingPoolTest, OtherSizesPassThrough) {
  RecyclingBlockCache cache;
  struct Small {
    uint64_t a = 0;
  };
  struct Big {
    uint64_t a[32] = {};
  };
  auto s = MakePooled<Small>(cache);  // fixes the cached block size
  auto b = MakePooled<Big>(cache);    // different size: plain new/delete
  EXPECT_EQ(cache.fresh_allocations(), 2u);
  s.reset();
  b.reset();
  EXPECT_EQ(cache.cached_blocks(), 1u);  // only the Small block was cached
}

TEST(RecyclingPoolTest, WeakPtrKeepsControlBlockAlive) {
  // The combined block is released only when strong AND weak counts drop;
  // the cache must not see the block until then.
  RecyclingBlockCache cache;
  struct Payload {
    int x = 5;
  };
  std::weak_ptr<Payload> weak;
  {
    auto p = MakePooled<Payload>(cache);
    weak = p;
  }
  EXPECT_TRUE(weak.expired());
  EXPECT_EQ(cache.cached_blocks(), 0u);  // weak_ptr still pins the block
  weak.reset();
  EXPECT_EQ(cache.cached_blocks(), 1u);
}

TEST(EnvelopePoolTest, RecyclesEnvelopeObjects) {
  // The pool retains the Envelope object itself (reset, capacity preserved),
  // not just its memory: releasing one envelope and asking for another must
  // hand back the same object without any construction traffic.
  const EnvelopePoolStats before = GetEnvelopePoolStats();
  Envelope* raw = nullptr;
  {
    auto env = MakeEnvelope();
    raw = env.get();
  }
  EXPECT_EQ(GetEnvelopePoolStats().cached, before.cached + 1);
  auto env2 = MakeEnvelope();
  EXPECT_EQ(env2.get(), raw);
  EXPECT_EQ(GetEnvelopePoolStats().recycled, before.recycled + 1);
}

TEST(EnvelopePoolTest, RecycledControlEnvelopeLeaksNoStalePayload) {
  // Regression: an envelope that carried a populated kControl
  // PartitionExchangeRequest, recycled into a kCall, must present fully
  // reset state — kind, hops, via_network, created_at AND the control
  // variant's values (the exchange vectors keep capacity only).
  Envelope* raw = nullptr;
  {
    auto env = MakeEnvelope();
    raw = env.get();
    env->kind = MessageKind::kControl;
    env->hops = 3;
    env->via_network = true;
    env->created_at = 12345;
    env->reply_to = 7;
    PartitionExchangeRequest req;
    req.from_num_vertices = 99;
    req.exchange_id = 41;
    req.candidates.resize(5);
    req.candidates[0].vertex = 77;
    req.candidates[0].score = 2.5;
    env->control = std::move(req);
  }
  auto env2 = MakeEnvelope();
  ASSERT_EQ(env2.get(), raw);  // same object back from the pool
  EXPECT_EQ(env2->kind, MessageKind::kCall);
  EXPECT_EQ(env2->hops, 0);
  EXPECT_FALSE(env2->via_network);
  EXPECT_EQ(env2->created_at, 0);
  EXPECT_EQ(env2->reply_to, kNoNode);
  EXPECT_EQ(env2->call_id, CallId{});
  // The variant stays on the exchange alternative (capacity retention), but
  // every value in it must be reset.
  const auto* req = std::get_if<PartitionExchangeRequest>(&env2->control);
  ASSERT_NE(req, nullptr);
  EXPECT_EQ(req->from_num_vertices, 0);
  EXPECT_EQ(req->exchange_id, 0u);
  EXPECT_TRUE(req->candidates.empty());
  EXPECT_GE(req->candidates.capacity(), 5u);  // the point of retaining it
}

TEST(EnvelopePoolTest, RecycledResponseEnvelopeResetsAccepted) {
  Envelope* raw = nullptr;
  {
    auto env = MakeEnvelope();
    raw = env.get();
    env->kind = MessageKind::kControl;
    PartitionExchangeResponse resp;
    resp.rejected = true;
    resp.exchange_id = 9;
    resp.accepted = {1, 2, 3};
    env->control = std::move(resp);
  }
  auto env2 = MakeEnvelope();
  ASSERT_EQ(env2.get(), raw);
  const auto* resp = std::get_if<PartitionExchangeResponse>(&env2->control);
  ASSERT_NE(resp, nullptr);
  EXPECT_FALSE(resp->rejected);
  EXPECT_EQ(resp->exchange_id, 0u);
  EXPECT_TRUE(resp->accepted.empty());
  EXPECT_GE(resp->accepted.capacity(), 3u);
}

TEST(EnvelopePoolTest, EnvelopesAreFreshlyConstructed) {
  auto env = MakeEnvelope();
  env->kind = MessageKind::kResponse;
  env->hops = 9;
  env->payload_bytes = 123;
  env.reset();
  // A recycled envelope must look exactly like make_shared<Envelope>().
  auto env2 = MakeEnvelope();
  EXPECT_EQ(env2->kind, MessageKind::kCall);
  EXPECT_EQ(env2->hops, 0);
  EXPECT_EQ(env2->payload_bytes, 0u);
  EXPECT_EQ(env2->target, kNoActor);
  EXPECT_FALSE(env2->via_network);
}

TEST(EnvelopePoolTest, SteadyStateTrafficRecycles) {
  RecyclingBlockCache& cache = EnvelopeBlockCache();
  // Warm the pool, then measure: churning envelopes one at a time must not
  // take fresh allocations.
  MakeEnvelope().reset();
  const uint64_t fresh_before = cache.fresh_allocations();
  for (int i = 0; i < 1000; i++) {
    auto env = MakeEnvelope();
    env->app_data = static_cast<uint64_t>(i);
  }
  EXPECT_EQ(cache.fresh_allocations(), fresh_before);
  EXPECT_GE(cache.recycled_allocations(), 1000u);
}

}  // namespace
}  // namespace actop
