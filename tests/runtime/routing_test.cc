// Routing edge cases: stale-cache forwarding with hop limits, bounded-queue
// rejection, parked-call retry after lost directory answers, and the
// one-way-call path.

#include <gtest/gtest.h>

#include "src/common/sim_time.h"
#include "src/runtime/client.h"
#include "src/runtime/cluster.h"
#include "src/sim/simulation.h"
#include "tests/runtime/test_actors.h"

namespace actop {
namespace {

TEST(RoutingTest, StaleCacheChainStillDelivers) {
  // Prime stale caches on several servers, then call: the message must reach
  // the real host within the hop limit (falling back to the directory).
  Simulation sim;
  Cluster cluster(&sim, ClusterConfig{.num_servers = 4, .seed = 3});
  RegisterTestActors(&cluster);
  DirectClient client(&sim, &cluster, 5);

  const ActorId echo = MakeActorId(kEchoType, 1);
  client.Call(echo, 1, 0, 100, nullptr);
  sim.RunUntil(Seconds(1));
  const ServerId host = HostOf(cluster, echo);
  ASSERT_NE(host, kNoServer);

  // Poison every other server's cache with a wrong location that points at
  // yet another wrong server (chain of staleness).
  for (int s = 0; s < 4; s++) {
    if (s != host) {
      cluster.server(s).location_cache().Put(echo, static_cast<ServerId>((s + 1) % 4));
    }
  }
  int responses = 0;
  client.Call(echo, 1, 0, 100, [&](const Response& r) {
    EXPECT_FALSE(r.failed);
    responses++;
  });
  sim.RunUntil(sim.now() + Seconds(3));
  EXPECT_EQ(responses, 1);
  // Exactly one live activation remains.
  int hosts = 0;
  for (int s = 0; s < 4; s++) {
    hosts += cluster.server(s).IsActive(echo) ? 1 : 0;
  }
  EXPECT_EQ(hosts, 1);
}

TEST(RoutingTest, OneWayCallsDeliverWithoutResponses) {
  Simulation sim;
  Cluster cluster(&sim, ClusterConfig{.num_servers = 2, .seed = 5});
  RegisterTestActors(&cluster);
  DirectClient client(&sim, &cluster, 5);

  const ActorId echo = MakeActorId(kEchoType, 9);
  for (int i = 0; i < 10; i++) {
    client.Call(echo, 1, 0, 100, nullptr);  // null continuation: one-way
  }
  sim.RunUntil(Seconds(2));
  auto* actor = static_cast<EchoActor*>(cluster.GetOrCreateActor(echo));
  EXPECT_EQ(actor->calls(), 10);
}

TEST(RoutingTest, BoundedReceiveQueueShedsLoadButRecovers) {
  ClusterConfig cfg{.num_servers = 1, .seed = 7};
  cfg.server.stage_queue_capacity = 64;
  cfg.server.call_timeout = Seconds(2);
  Simulation sim;
  Cluster cluster(&sim, cfg);
  RegisterTestActors(&cluster);

  ClientPool clients(&sim, &cluster,
                     ClientConfig{.request_rate = 60000.0, .timeout = Seconds(3)},
                     [](Rng& rng, ActorId* target, MethodId* method) {
                       *target = MakeActorId(kEchoType, rng.NextBounded(10) + 1);
                       *method = 1;
                       return true;
                     });
  clients.Start();
  sim.RunUntil(Seconds(3));
  clients.Stop();
  sim.RunUntil(sim.now() + Seconds(5));
  // Overload sheds requests...
  EXPECT_GT(cluster.server(0).stage(Server::kReceive).total_rejections(), 0u);
  EXPECT_GT(clients.timeouts(), 0u);
  // ...but the server stays live afterwards.
  DirectClient probe(&sim, &cluster, 9);
  int ok = 0;
  probe.Call(MakeActorId(kEchoType, 1), 1, 0, 100, [&](const Response& r) {
    ok += r.failed ? 0 : 1;
  });
  sim.RunUntil(sim.now() + Seconds(2));
  EXPECT_EQ(ok, 1);
}

TEST(RoutingTest, ControlLossRecoversViaParkedCallRetry) {
  // Crash an actor's home-directory server while a lookup is in flight: the
  // parked call must be retried by the sweeper and eventually delivered.
  ClusterConfig cfg{.num_servers = 4, .seed = 11};
  cfg.server.call_timeout = Seconds(3);  // retry period = timeout / 3
  Simulation sim;
  Cluster cluster(&sim, cfg);
  RegisterTestActors(&cluster);
  DirectClient client(&sim, &cluster, 5);

  const ActorId echo = MakeActorId(kEchoType, 4);
  const ServerId home = DirectoryHomeOf(echo, 4);
  int responses = 0;
  client.Call(echo, 1, 0, 100, [&](const Response& r) {
    if (!r.failed) {
      responses++;
    }
  });
  // Crash the home while the lookup may be in flight; the "replacement"
  // server answers retried lookups.
  sim.RunUntil(Micros(300));
  cluster.CrashServer(home);
  sim.RunUntil(Seconds(10));
  EXPECT_EQ(responses, 1);
}

TEST(RoutingTest, ActiveActorsListsEveryActivation) {
  Simulation sim;
  Cluster cluster(&sim, ClusterConfig{.num_servers = 2, .seed = 13});
  RegisterTestActors(&cluster);
  DirectClient client(&sim, &cluster, 5);
  for (uint64_t k = 1; k <= 20; k++) {
    client.Call(MakeActorId(kEchoType, k), 1, 0, 100, nullptr);
  }
  sim.RunUntil(Seconds(2));
  size_t listed = 0;
  for (int s = 0; s < 2; s++) {
    const auto actors = cluster.server(s).ActiveActors();
    listed += actors.size();
    for (const ActorId a : actors) {
      EXPECT_TRUE(cluster.server(s).IsActive(a));
    }
  }
  EXPECT_EQ(listed, 20u);
}

}  // namespace
}  // namespace actop
