// Sharded simulation front-end: conservative time-window parallel execution.
//
// The cluster is partitioned into shards, each owning a private Simulation
// (its own indexed 4-ary event heap, slab, and sequence space). Shards run in
// parallel over windows [T, T + lookahead): the lookahead is the network's
// fixed one-way latency, so a message sent from one shard during a window
// cannot be due on another shard before the window closes — every cross-shard
// event lands at least one latency in the future. At each window barrier the
// shards exchange the cross-shard envelopes accumulated in per-(src,dst)
// outboxes (src/net/network.cc registers the exchange hook), merge them in
// the stable order (when, src_shard, seq), and the coordinator recomputes the
// next window from the global minimum next-event time.
//
// Determinism contract:
//   * shards == 1: RunUntil delegates byte-for-byte to the underlying
//     Simulation (identical dispatch order, identical clock movement), so
//     every golden, chaos and report-determinism test holds unchanged.
//   * shards == K: runs are bit-reproducible for fixed K. Each shard's
//     execution is a deterministic function of its own event order, and the
//     cross-shard merge order (when, src_shard, seq) is independent of
//     thread scheduling. Different K yield different (but each internally
//     deterministic) interleavings of same-instant events on different
//     shards — statistically equivalent, not byte-identical.
//
// The "rail" is a coordinator-side task track for cluster-global actions
// that must observe a consistent cross-shard cut (chaos fault ticks,
// invariant sweeps): a rail task at time R runs after every event with
// timestamp < R on every shard, before any event at R. Rail tasks and hooks
// run on the calling (coordinator) thread; rail scheduling is coordinator-
// context only (setup code, rail tasks, barrier hooks) — never from inside
// a shard event.
//
// Threading: RunUntil's caller is the coordinator and doubles as the shard-0
// worker; shards 1..K-1 get dedicated threads woken per window by an epoch
// counter. Window phases are separated by a sense-reversing tree barrier:
// arrivals combine up a 4-ary tree of cacheline-padded counters (each parent
// spins only on its own node) and the root flips a global sense word, so a
// phase costs O(K) uncontended lines instead of K RMWs racing on one
// counter. All waits spin briefly then yield (the yield keeps oversubscribed
// hosts — including single-core CI — functional).

#ifndef SRC_SIM_SHARDED_ENGINE_H_
#define SRC_SIM_SHARDED_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/sim_time.h"
#include "src/sim/simulation.h"

namespace actop {

struct ShardedEngineConfig {
  int shards = 1;
  // Conservative lookahead: every cross-shard message arrives at least this
  // far after it is sent. The network checks its one-way latency covers it.
  SimDuration lookahead = Micros(250);
};

class ShardedEngine {
 public:
  explicit ShardedEngine(ShardedEngineConfig config);
  ~ShardedEngine();
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  int shards() const { return config_.shards; }
  bool parallel() const { return config_.shards > 1; }
  SimDuration lookahead() const { return config_.lookahead; }

  // Shard i's private event engine. Shard 0 is the driver shard: clients,
  // workload drivers, and all setup-time scheduling live there.
  Simulation& shard(int i) { return *sims_[static_cast<size_t>(i)]; }
  const Simulation& shard(int i) const { return *sims_[static_cast<size_t>(i)]; }
  Simulation& sim() { return *sims_[0]; }

  // Engine clock: advances to each rail point and to every RunUntil
  // deadline. Between barriers individual shard clocks trail it.
  SimTime now() const { return now_; }

  // Total events executed across all shards.
  uint64_t events_executed() const;

  // Exchange hook: invoked once per shard per window barrier (concurrently,
  // each on its shard's worker thread) to merge that shard's inbound
  // cross-shard messages into its heap. Installed by the Network. Must be
  // set before the first RunUntil and not changed while running.
  void set_exchange_hook(std::function<void(int shard)> hook) {
    exchange_hook_ = std::move(hook);
  }

  // Barrier hook: invoked on the coordinator after every window's exchange
  // completes (all shard heaps quiescent) — cluster-global snapshots.
  void set_barrier_hook(std::function<void()> hook) { barrier_hook_ = std::move(hook); }

  // Schedules a coordinator task at absolute time `when` (>= now()). Rail
  // tasks at equal times run in scheduling order. Returns a handle for
  // CancelRail. Coordinator context only.
  uint64_t ScheduleRailAt(SimTime when, std::function<void()> fn);

  // Cancels a pending rail task; false for fired/cancelled/unknown handles.
  bool CancelRail(uint64_t id);

  // Runs all shards to `deadline` (inclusive), interleaving rail tasks at
  // their cut points, then advances every clock to `deadline`. Returns the
  // number of events executed. With shards == 1 and no pending rail tasks
  // this is exactly Simulation::RunUntil on the single shard.
  uint64_t RunUntil(SimTime deadline);

 private:
  void WorkerMain(int shard);
  void RunWindow(SimTime end);
  void AdvanceAll(SimTime t);
  void RunRailAt(SimTime r);

  // Sense-reversing combining-tree barrier. Each participant owns a
  // cacheline-padded node; children bump their parent's arrival counter, so
  // every spin loop watches a line only that participant's subtree writes.
  // The root flips the shared sense word to release the phase. Spin briefly,
  // then yield (single-core hosts live on the yield path).
  class TreeBarrier {
   public:
    explicit TreeBarrier(int n);
    // Participant `id` (0..n-1) arrives and blocks until all n have arrived.
    // Id 0 (the coordinator) releases the phase.
    void Wait(int id);

   private:
    static constexpr int kFanout = 4;
    struct alignas(64) Node {
      std::atomic<uint32_t> arrivals{0};
      uint32_t num_children = 0;
      uint32_t sense = 0;  // touched only by the owning participant
    };
    const int n_;
    std::atomic<uint32_t> sense_{0};
    std::unique_ptr<Node[]> nodes_;
  };

  ShardedEngineConfig config_;
  std::vector<std::unique_ptr<Simulation>> sims_;
  std::function<void(int)> exchange_hook_;
  std::function<void()> barrier_hook_;

  // Rail: ordered by (when, handle); handle order breaks same-instant ties
  // in scheduling order.
  std::map<std::pair<SimTime, uint64_t>, std::function<void()>> rail_;
  std::unordered_map<uint64_t, SimTime> rail_when_;
  uint64_t next_rail_id_ = 1;

  SimTime now_ = 0;

  // Worker coordination. window_end_ is published by the epoch increment
  // (release) and read after the epoch load (acquire).
  std::vector<std::thread> workers_;
  TreeBarrier barrier_;
  std::atomic<uint64_t> epoch_{0};
  std::atomic<bool> shutdown_{false};
  SimTime window_end_ = 0;
};

}  // namespace actop

#endif  // SRC_SIM_SHARDED_ENGINE_H_
