// Discrete-event simulation engine.
//
// The engine owns a priority queue of timestamped events. Events scheduled at
// the same instant run in scheduling order (a monotone sequence number breaks
// ties), which makes every run bit-for-bit deterministic for a fixed seed.
//
// Everything in the repository — the network, SEDA servers, the actor
// runtime, the ActOp partitioning protocol and thread controllers — executes
// as callbacks on this single engine.

#ifndef SRC_SIM_SIMULATION_H_
#define SRC_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/check.h"
#include "src/common/sim_time.h"

namespace actop {

// Identifies a scheduled event so it can be cancelled. Id 0 is never used.
using EventId = uint64_t;

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  // Current simulated time.
  SimTime now() const { return now_; }

  // Schedules `fn` to run at absolute time `when` (must be >= now()).
  EventId ScheduleAt(SimTime when, std::function<void()> fn);

  // Schedules `fn` to run `delay` after now (delay must be >= 0).
  EventId ScheduleAfter(SimDuration delay, std::function<void()> fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  // Cancels a pending event. Returns true if the event was pending (i.e. it
  // had not fired and had not been cancelled before).
  bool Cancel(EventId id);

  // Schedules `fn` to run every `period` starting at now() + `period`.
  // Returns the id of a control slot that can be cancelled with
  // CancelPeriodic. The callback may call CancelPeriodic on its own id.
  EventId SchedulePeriodic(SimDuration period, std::function<void()> fn);
  void CancelPeriodic(EventId id);

  // Runs events until the queue is empty. Returns the number of events run.
  uint64_t Run();

  // Runs events with timestamp <= `deadline`, then advances the clock to
  // `deadline`. Returns the number of events run.
  uint64_t RunUntil(SimTime deadline);

  // Runs the single next event if any; returns false when the queue is empty.
  bool RunOne();

  // Observation hook invoked after every dispatched event (chaos harness:
  // event-batch invariant checks). The hook must not run events itself, but
  // may schedule new ones. Pass nullptr to remove.
  void set_after_event_hook(std::function<void()> hook) { after_event_hook_ = std::move(hook); }

  // Number of events currently pending.
  size_t pending_events() const { return queue_.size() - cancelled_.size(); }

  // Total events executed since construction.
  uint64_t events_executed() const { return events_executed_; }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;  // tie-breaker: lower seq runs first
    EventId id;
    std::function<void()> fn;
  };

  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  void Dispatch(Event& ev);

  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  std::function<void()> after_event_hook_;
  std::unordered_set<EventId> cancelled_;
  std::unordered_set<EventId> cancelled_periodics_;
  // Live periodic ticks, owned here so a tick does not have to own itself
  // (a self-referential std::function would never be freed). Erased on
  // cancellation.
  std::unordered_map<EventId, std::shared_ptr<std::function<void()>>> periodics_;
  SimTime now_ = 0;
  uint64_t next_seq_ = 1;
  EventId next_id_ = 1;
  uint64_t events_executed_ = 0;
};

}  // namespace actop

#endif  // SRC_SIM_SIMULATION_H_
