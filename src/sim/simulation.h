// Discrete-event simulation engine.
//
// The engine owns an indexed 4-ary min-heap of timestamped events. Events
// scheduled at the same instant run in scheduling order (a monotone sequence
// number breaks ties), which makes every run bit-for-bit deterministic for a
// fixed seed.
//
// Hot-path design (this is the substrate every figure bench, partitioning
// sweep and chaos soak executes on):
//   * Callbacks are InlineTask, not std::function: typical captures
//     ([this, shared_ptr<Envelope>], [this, id, token]) stay inline, so
//     steady-state scheduling performs zero heap allocations.
//   * Event state lives in a slab of reusable slots; the heap holds
//     (when, seq, slot) triples with the sort key inline, so sift operations
//     touch only the contiguous heap array. A 4-ary layout halves the tree
//     depth of a binary heap and keeps children in one cache line.
//   * EventIds are generation-stamped slot references. Cancel(id) removes
//     the event from the heap in O(log n) — no lazy-deletion garbage — and
//     returns false for ids that already fired or were already cancelled
//     (the slot's generation advances on every free, invalidating old ids).
//     pending_events() is therefore exact.
//   * Periodic tasks occupy their own generation-stamped slab; their ticks
//     are ordinary events, rescheduled after each callback returns, so the
//     (when, seq) dispatch order is identical to scheduling the next tick by
//     hand. Cancelling a periodic removes its in-flight tick directly.
//
// Everything in the repository — the network, SEDA servers, the actor
// runtime, the ActOp partitioning protocol and thread controllers — executes
// as callbacks on this single engine.

#ifndef SRC_SIM_SIMULATION_H_
#define SRC_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/check.h"
#include "src/common/inline_task.h"
#include "src/common/sim_time.h"

namespace actop {

// Identifies a scheduled event (or, with the top bit set, a periodic task)
// so it can be cancelled. Layout: [63] periodic tag, [62:32] slot generation
// (never 0), [31:0] slot index. Id 0 is never minted. Stale ids — fired,
// cancelled, or from a previous slot occupant — fail generation validation;
// a collision would require the same slot to be reused 2^31 times.
using EventId = uint64_t;

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  // Current simulated time.
  SimTime now() const { return now_; }

  // Schedules `fn` to run at absolute time `when` (must be >= now()).
  EventId ScheduleAt(SimTime when, InlineTask fn);

  // Schedules `fn` to run `delay` after now (delay must be >= 0).
  EventId ScheduleAfter(SimDuration delay, InlineTask fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  // Cancels a pending event in O(log n). Returns true if the event was
  // pending (it had not fired and had not been cancelled before); returns
  // false for already-fired events, double cancels, and invalid ids — no
  // bookkeeping is corrupted by such calls. On a periodic control id this is
  // equivalent to CancelPeriodic.
  bool Cancel(EventId id);

  // Moves a pending event to absolute time `when` (must be >= now()) in one
  // sift instead of Cancel + ScheduleAt: the id stays valid and the callback
  // is untouched, so periodic re-arming (CpuModel's completion event on every
  // arrival/departure) does not churn slots or rebuild closures. The event is
  // re-sequenced exactly as a fresh schedule would be — it runs after events
  // already pending at the same instant — so dispatch order is identical to
  // the Cancel + ScheduleAt it replaces. Returns false (and does nothing) for
  // fired/cancelled/periodic ids.
  bool Reschedule(EventId id, SimTime when);

  // Schedules `fn` to run every `period` starting at now() + `period`.
  // Returns a control id accepted by CancelPeriodic (or Cancel). The
  // callback may cancel its own id from inside its invocation.
  EventId SchedulePeriodic(SimDuration period, InlineTask fn);

  // Stops a periodic task, removing its pending tick from the event queue.
  // Returns true if the task was live; false for stale/foreign ids.
  bool CancelPeriodic(EventId id);

  // Runs events until the queue is empty. Returns the number of events run.
  uint64_t Run();

  // Runs events with timestamp <= `deadline`, then advances the clock to
  // `deadline`. Returns the number of events run.
  uint64_t RunUntil(SimTime deadline);

  // Runs the single next event if any; returns false when the queue is empty.
  bool RunOne();

  // Timestamp of the earliest pending event, or kSimTimeMax when the queue
  // is empty. The sharded engine uses this to compute conservative window
  // bounds across shards.
  SimTime next_event_time() const { return heap_.empty() ? kSimTimeMax : heap_[0].when; }

  // Runs events with timestamp strictly < `end` and leaves the clock at the
  // last dispatched event (it does NOT advance to `end`): the window owner
  // advances all shard clocks together via AdvanceClockTo once the barrier
  // closes. Returns the number of events run.
  uint64_t RunWindow(SimTime end);

  // Advances the clock to `t` without running anything. Requires t >= now()
  // and no pending event earlier than `t` — i.e. the window up to `t` has
  // been fully executed.
  void AdvanceClockTo(SimTime t) {
    ACTOP_CHECK(t >= now_);
    ACTOP_CHECK(heap_.empty() || heap_[0].when >= t);
    now_ = t;
  }

  // Observation hook invoked after every dispatched event (chaos harness:
  // event-batch invariant checks). The hook must not run events itself, but
  // may schedule new ones. Pass nullptr to remove.
  void set_after_event_hook(std::function<void()> hook) { after_event_hook_ = std::move(hook); }

  // Number of events currently pending (exact: cancelled events are removed
  // from the heap immediately). Each live periodic contributes its one
  // in-flight tick.
  size_t pending_events() const { return heap_.size(); }

  // Total events executed since construction.
  uint64_t events_executed() const { return events_executed_; }

 private:
  static constexpr uint32_t kNilIndex = 0xFFFFFFFFu;
  static constexpr uint64_t kPeriodicTag = 1ULL << 63;
  static constexpr uint32_t kGenMask = 0x7FFFFFFFu;

  // Heap entries carry the full sort key so sift operations compare within
  // the contiguous heap array instead of chasing slot indices. 16 bytes:
  // `key` packs the monotone sequence tie-breaker (high 40 bits — seq order
  // IS key order because slots never tie on seq) over the slot index (low 24
  // bits), so a sibling group of four spans a single cache line.
  struct HeapEntry {
    SimTime when;
    uint64_t key;

    uint32_t slot() const { return static_cast<uint32_t>(key & kSlotMask); }
  };

  static constexpr uint32_t kSlotBits = 24;
  static constexpr uint64_t kSlotMask = (1ULL << kSlotBits) - 1;
  // 2^40 ScheduleAt calls per Simulation (~1.1e12; the longest soaks run
  // ~1e9) before the packed seq would wrap — checked, not assumed.
  static constexpr uint64_t kMaxSeq = (1ULL << (64 - kSlotBits)) - 1;

  struct EventSlot {
    InlineTask fn;
    uint32_t gen = 1;
    // Position in heap_ while pending; next-free link while on the free list.
    uint32_t heap_pos = kNilIndex;
  };

  struct PeriodicSlot {
    InlineTask fn;
    SimDuration period = 0;
    EventId next_event = 0;  // pending tick; 0 while the callback is running
    uint32_t gen = 1;
    uint32_t free_next = kNilIndex;
    bool live = false;
  };

  // (when, seq) order. Sequence numbers are unique, so for equal timestamps
  // comparing the packed keys (seq in the high bits) is exactly seq order.
  static bool Before(const HeapEntry& a, const HeapEntry& b) {
    return a.when != b.when ? a.when < b.when : a.key < b.key;
  }
  static uint32_t NextGen(uint32_t gen) {
    gen = (gen + 1) & kGenMask;
    return gen == 0 ? 1 : gen;
  }
  static EventId PackId(uint32_t gen, uint32_t slot, uint64_t tag) {
    return tag | (static_cast<uint64_t>(gen) << 32) | slot;
  }

  size_t MinChild(size_t first, size_t n) const;
  void SiftUp(size_t pos);
  void SiftDown(size_t pos);
  void PopRoot();
  void RemoveHeapAt(size_t pos);
  uint32_t AllocSlot();
  void FreeSlot(uint32_t slot);
  uint32_t AllocPeriodicSlot();
  void DispatchTop();
  void PeriodicTick(uint32_t slot, uint32_t gen);

  std::vector<HeapEntry> heap_;
  std::vector<EventSlot> slots_;
  uint32_t free_head_ = kNilIndex;

  std::vector<PeriodicSlot> periodic_slots_;
  uint32_t periodic_free_head_ = kNilIndex;

  std::function<void()> after_event_hook_;
  SimTime now_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t events_executed_ = 0;
};

}  // namespace actop

#endif  // SRC_SIM_SIMULATION_H_
