#include "src/sim/sharded_engine.h"

#include <algorithm>

namespace actop {

namespace {

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

constexpr int kSpinsBeforeYield = 64;

}  // namespace

ShardedEngine::TreeBarrier::TreeBarrier(int n)
    : n_(n), nodes_(std::make_unique<Node[]>(static_cast<size_t>(n))) {
  for (int i = 1; i < n; i++) {
    nodes_[static_cast<size_t>((i - 1) / kFanout)].num_children++;
  }
}

void ShardedEngine::TreeBarrier::Wait(int id) {
  Node& me = nodes_[static_cast<size_t>(id)];
  const uint32_t next = me.sense ^ 1u;
  // Collect the subtree: children release into our counter, we acquire, so
  // their pre-barrier writes are visible before we propagate upward.
  int spins = 0;
  while (me.arrivals.load(std::memory_order_acquire) != me.num_children) {
    if (++spins < kSpinsBeforeYield) {
      CpuRelax();
    } else {
      std::this_thread::yield();
    }
  }
  // Safe to reset before signaling the parent: a child's next-phase arrival
  // is ordered after the root's sense flip, which is ordered after this
  // store (reset -> our fetch_add -> ... -> root's release of sense_).
  me.arrivals.store(0, std::memory_order_relaxed);
  if (id == 0) {
    sense_.store(next, std::memory_order_release);
  } else {
    nodes_[static_cast<size_t>((id - 1) / kFanout)].arrivals.fetch_add(
        1, std::memory_order_acq_rel);
    spins = 0;
    while (sense_.load(std::memory_order_acquire) != next) {
      if (++spins < kSpinsBeforeYield) {
        CpuRelax();
      } else {
        std::this_thread::yield();
      }
    }
  }
  me.sense = next;
}

ShardedEngine::ShardedEngine(ShardedEngineConfig config)
    : config_(config), barrier_(config.shards) {
  ACTOP_CHECK(config_.shards >= 1);
  ACTOP_CHECK(config_.lookahead > 0);
  sims_.reserve(static_cast<size_t>(config_.shards));
  for (int i = 0; i < config_.shards; i++) {
    sims_.push_back(std::make_unique<Simulation>());
  }
  workers_.reserve(static_cast<size_t>(config_.shards - 1));
  for (int i = 1; i < config_.shards; i++) {
    workers_.emplace_back([this, i] { WorkerMain(i); });
  }
}

ShardedEngine::~ShardedEngine() {
  if (!workers_.empty()) {
    shutdown_.store(true, std::memory_order_release);
    epoch_.fetch_add(1, std::memory_order_release);
    for (std::thread& w : workers_) {
      w.join();
    }
  }
}

uint64_t ShardedEngine::events_executed() const {
  uint64_t total = 0;
  for (const auto& s : sims_) {
    total += s->events_executed();
  }
  return total;
}

uint64_t ShardedEngine::ScheduleRailAt(SimTime when, std::function<void()> fn) {
  ACTOP_CHECK(when >= now_);
  ACTOP_CHECK(static_cast<bool>(fn));
  const uint64_t id = next_rail_id_++;
  rail_.emplace(std::make_pair(when, id), std::move(fn));
  rail_when_.emplace(id, when);
  return id;
}

bool ShardedEngine::CancelRail(uint64_t id) {
  auto it = rail_when_.find(id);
  if (it == rail_when_.end()) {
    return false;
  }
  rail_.erase(std::make_pair(it->second, id));
  rail_when_.erase(it);
  return true;
}

void ShardedEngine::WorkerMain(int shard) {
  uint64_t seen = 0;
  for (;;) {
    uint64_t e;
    int spins = 0;
    while ((e = epoch_.load(std::memory_order_acquire)) == seen) {
      if (++spins < kSpinsBeforeYield) {
        CpuRelax();
      } else {
        std::this_thread::yield();
      }
    }
    seen = e;
    if (shutdown_.load(std::memory_order_acquire)) {
      return;
    }
    sims_[static_cast<size_t>(shard)]->RunWindow(window_end_);
    barrier_.Wait(shard);
    if (exchange_hook_) {
      exchange_hook_(shard);
    }
    barrier_.Wait(shard);
  }
}

void ShardedEngine::RunWindow(SimTime end) {
  if (sims_.size() == 1) {
    sims_[0]->RunWindow(end);
    if (exchange_hook_) {
      exchange_hook_(0);
    }
    return;
  }
  window_end_ = end;
  epoch_.fetch_add(1, std::memory_order_release);
  sims_[0]->RunWindow(end);
  barrier_.Wait(0);
  if (exchange_hook_) {
    exchange_hook_(0);
  }
  barrier_.Wait(0);
  // Workers are back to spinning on the epoch and no longer touch shard
  // state; the coordinator may now read every heap and run the barrier hook.
}

void ShardedEngine::AdvanceAll(SimTime t) {
  for (auto& s : sims_) {
    s->AdvanceClockTo(t);
  }
}

void ShardedEngine::RunRailAt(SimTime r) {
  while (!rail_.empty() && rail_.begin()->first.first == r) {
    auto it = rail_.begin();
    std::function<void()> fn = std::move(it->second);
    rail_when_.erase(it->first.second);
    rail_.erase(it);
    fn();
  }
}

uint64_t ShardedEngine::RunUntil(SimTime deadline) {
  ACTOP_CHECK(deadline >= now_);
  const uint64_t before = events_executed();
  if (!parallel() && rail_.empty()) {
    // Serial fast path: defer entirely to the single shard — dispatch order,
    // clock movement, and hook timing are exactly the single-engine ones.
    sims_[0]->RunUntil(deadline);
    now_ = deadline;
    return events_executed() - before;
  }
  for (;;) {
    SimTime t = kSimTimeMax;
    for (const auto& s : sims_) {
      t = std::min(t, s->next_event_time());
    }
    const SimTime r = rail_.empty() ? kSimTimeMax : rail_.begin()->first.first;
    if (r <= t) {
      // Rail cut: every event < r has run on every shard; events at exactly
      // r run after the rail tasks. r == t (or r <= engine now) is the
      // empty-window case — handling it here keeps windows below non-empty.
      if (r > deadline) {
        break;
      }
      AdvanceAll(r);
      now_ = r;
      RunRailAt(r);
      continue;
    }
    if (t > deadline) {
      break;
    }
    // The earliest event bounds the window start; lookahead bounds its
    // width. deadline + 1 (not deadline): RunUntil is inclusive of events
    // at the deadline itself, and RunWindow's bound is exclusive.
    const SimTime end = std::min({t + config_.lookahead, r, deadline + 1});
    RunWindow(end);
    if (barrier_hook_) {
      barrier_hook_();
    }
  }
  AdvanceAll(deadline);
  now_ = deadline;
  return events_executed() - before;
}

}  // namespace actop
