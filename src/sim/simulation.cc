#include "src/sim/simulation.h"

#include <memory>
#include <utility>

namespace actop {

EventId Simulation::ScheduleAt(SimTime when, std::function<void()> fn) {
  ACTOP_CHECK(when >= now_);
  ACTOP_CHECK(fn != nullptr);
  const EventId id = next_id_++;
  queue_.push(Event{when, next_seq_++, id, std::move(fn)});
  return id;
}

bool Simulation::Cancel(EventId id) {
  if (id == 0 || id >= next_id_) {
    return false;
  }
  // Lazy cancellation: the event stays in the heap and is skipped when popped.
  return cancelled_.insert(id).second;
}

EventId Simulation::SchedulePeriodic(SimDuration period, std::function<void()> fn) {
  ACTOP_CHECK(period > 0);
  ACTOP_CHECK(fn != nullptr);
  // Periodic tasks get their own id space entry so that cancellation survives
  // across re-scheduling of the underlying one-shot events.
  const EventId control_id = next_id_++;
  auto tick = std::make_shared<std::function<void()>>();
  auto shared_fn = std::make_shared<std::function<void()>>(std::move(fn));
  // The tick looks itself up in periodics_ to reschedule rather than
  // capturing its own shared_ptr, which would be a self-reference cycle the
  // refcount could never break.
  *tick = [this, control_id, period, shared_fn]() {
    if (cancelled_periodics_.contains(control_id)) {
      cancelled_periodics_.erase(control_id);
      periodics_.erase(control_id);
      return;
    }
    (*shared_fn)();
    if (cancelled_periodics_.contains(control_id)) {
      cancelled_periodics_.erase(control_id);
      periodics_.erase(control_id);
      return;
    }
    if (auto it = periodics_.find(control_id); it != periodics_.end()) {
      ScheduleAfter(period, *it->second);
    }
  };
  periodics_[control_id] = tick;
  ScheduleAfter(period, *tick);
  return control_id;
}

void Simulation::CancelPeriodic(EventId id) { cancelled_periodics_.insert(id); }

void Simulation::Dispatch(Event& ev) {
  ACTOP_CHECK(ev.when >= now_);
  now_ = ev.when;
  events_executed_++;
  // Move the callback out before running it: the callback may schedule new
  // events, which can reallocate the heap storage.
  std::function<void()> fn = std::move(ev.fn);
  fn();
  if (after_event_hook_) {
    after_event_hook_();
  }
}

bool Simulation::RunOne() {
  while (!queue_.empty()) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    Dispatch(ev);
    return true;
  }
  return false;
}

uint64_t Simulation::Run() {
  uint64_t n = 0;
  while (RunOne()) {
    n++;
  }
  return n;
}

uint64_t Simulation::RunUntil(SimTime deadline) {
  ACTOP_CHECK(deadline >= now_);
  uint64_t n = 0;
  while (!queue_.empty()) {
    // Prune cancelled events from the top so the deadline check below sees
    // the next event that would actually run.
    const Event& top = queue_.top();
    if (auto it = cancelled_.find(top.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      queue_.pop();
      continue;
    }
    if (top.when > deadline) {
      break;
    }
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    Dispatch(ev);
    n++;
  }
  now_ = deadline;
  return n;
}

}  // namespace actop
