#include "src/sim/simulation.h"

#include <utility>

namespace actop {

// --- indexed 4-ary heap -----------------------------------------------------
//
// heap_ is an array-embedded 4-ary min-heap ordered by (when, seq); children
// of node i live at 4i+1..4i+4. Every move of a HeapEntry updates the owning
// slot's heap_pos back-pointer, which is what makes O(log n) removal by
// EventId possible.

void Simulation::SiftUp(size_t pos) {
  const HeapEntry entry = heap_[pos];
  while (pos > 0) {
    const size_t parent = (pos - 1) / 4;
    if (!Before(entry, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    slots_[heap_[pos].slot()].heap_pos = static_cast<uint32_t>(pos);
    pos = parent;
  }
  heap_[pos] = entry;
  slots_[entry.slot()].heap_pos = static_cast<uint32_t>(pos);
}

// Index of the least of the sibling group starting at `first`. The
// full-group case is a 3-comparison tournament over two independent pairs —
// branch-light and instruction-parallel, which matters because this runs on
// every level of every sift.
size_t Simulation::MinChild(size_t first, size_t n) const {
  if (first + 4 <= n) {
    const size_t a = Before(heap_[first + 1], heap_[first]) ? first + 1 : first;
    const size_t b = Before(heap_[first + 3], heap_[first + 2]) ? first + 3 : first + 2;
    return Before(heap_[b], heap_[a]) ? b : a;
  }
  size_t best = first;
  for (size_t c = first + 1; c < n; c++) {
    if (Before(heap_[c], heap_[best])) best = c;
  }
  return best;
}

void Simulation::SiftDown(size_t pos) {
  const HeapEntry entry = heap_[pos];
  const size_t n = heap_.size();
  for (;;) {
    const size_t first = 4 * pos + 1;
    if (first >= n) break;
    const size_t best = MinChild(first, n);
    if (!Before(heap_[best], entry)) break;
    heap_[pos] = heap_[best];
    slots_[heap_[pos].slot()].heap_pos = static_cast<uint32_t>(pos);
    pos = best;
  }
  heap_[pos] = entry;
  slots_[entry.slot()].heap_pos = static_cast<uint32_t>(pos);
}

// Removes the root. This is the engine's hottest loop (half of bench_engine's
// cycles live here), so it uses bottom-up deletion instead of plain SiftDown:
// percolate the root hole along the min-child chain all the way to a leaf —
// three comparisons per level, never comparing against the refill entry —
// then drop the former last element into the leaf hole and bubble it up.
// The refill comes from the bottom of the heap, so the bubble-up almost
// always terminates in one comparison; plain SiftDown would have paid a
// fourth comparison on every level to discover the same thing. Dispatch
// order is unaffected: (when, seq) is a total order, so every valid heap
// arrangement pops the identical sequence.
void Simulation::PopRoot() {
  const size_t n = heap_.size() - 1;
  const HeapEntry refill = heap_[n];
  heap_.pop_back();
  if (n == 0) return;
  size_t hole = 0;
  for (;;) {
    const size_t first = 4 * hole + 1;
    if (first >= n) break;
    const size_t best = MinChild(first, n);
    heap_[hole] = heap_[best];
    slots_[heap_[hole].slot()].heap_pos = static_cast<uint32_t>(hole);
    hole = best;
  }
  while (hole > 0) {
    const size_t parent = (hole - 1) / 4;
    if (!Before(refill, heap_[parent])) break;
    heap_[hole] = heap_[parent];
    slots_[heap_[hole].slot()].heap_pos = static_cast<uint32_t>(hole);
    hole = parent;
  }
  heap_[hole] = refill;
  slots_[refill.slot()].heap_pos = static_cast<uint32_t>(hole);
}

void Simulation::RemoveHeapAt(size_t pos) {
  const size_t last = heap_.size() - 1;
  if (pos == last) {
    heap_.pop_back();
    return;
  }
  heap_[pos] = heap_[last];
  heap_.pop_back();
  // The hole-filling entry can belong either above or below `pos`.
  if (pos > 0 && Before(heap_[pos], heap_[(pos - 1) / 4])) {
    SiftUp(pos);
  } else {
    SiftDown(pos);
  }
}

// --- event slot slab --------------------------------------------------------

uint32_t Simulation::AllocSlot() {
  if (free_head_ != kNilIndex) {
    const uint32_t slot = free_head_;
    free_head_ = slots_[slot].heap_pos;
    return slot;
  }
  // Slot indices must fit the low kSlotBits of a HeapEntry key: at most
  // 2^24 simultaneously pending events (the largest soaks peak ~1e6).
  ACTOP_CHECK(slots_.size() < (1ULL << kSlotBits));
  slots_.emplace_back();
  return static_cast<uint32_t>(slots_.size() - 1);
}

void Simulation::FreeSlot(uint32_t slot) {
  EventSlot& s = slots_[slot];
  s.fn = InlineTask();  // release captures now, not at slot reuse
  s.gen = NextGen(s.gen);
  s.heap_pos = free_head_;
  free_head_ = slot;
}

// --- scheduling -------------------------------------------------------------

EventId Simulation::ScheduleAt(SimTime when, InlineTask fn) {
  ACTOP_CHECK(when >= now_);
  ACTOP_CHECK(static_cast<bool>(fn));
  ACTOP_CHECK(next_seq_ <= kMaxSeq);
  const uint32_t slot = AllocSlot();
  slots_[slot].fn = std::move(fn);
  heap_.push_back(HeapEntry{when, (next_seq_++ << kSlotBits) | slot});
  SiftUp(heap_.size() - 1);
  return PackId(slots_[slot].gen, slot, 0);
}

bool Simulation::Cancel(EventId id) {
  if ((id & kPeriodicTag) != 0) return CancelPeriodic(id);
  const uint32_t slot = static_cast<uint32_t>(id);
  const uint32_t gen = static_cast<uint32_t>(id >> 32) & kGenMask;
  // Generation advances on every free, so fired / already-cancelled / foreign
  // ids fail this check (id 0 carries gen 0, which no slot ever holds).
  if (slot >= slots_.size() || slots_[slot].gen != gen) return false;
  RemoveHeapAt(slots_[slot].heap_pos);
  FreeSlot(slot);
  return true;
}

bool Simulation::Reschedule(EventId id, SimTime when) {
  if ((id & kPeriodicTag) != 0) return false;
  const uint32_t slot = static_cast<uint32_t>(id);
  const uint32_t gen = static_cast<uint32_t>(id >> 32) & kGenMask;
  if (slot >= slots_.size() || slots_[slot].gen != gen) return false;
  ACTOP_CHECK(when >= now_);
  ACTOP_CHECK(next_seq_ <= kMaxSeq);
  const size_t pos = slots_[slot].heap_pos;
  heap_[pos].when = when;
  heap_[pos].key = (next_seq_++ << kSlotBits) | slot;
  // The fresh seq is the largest in the heap, so among equal timestamps the
  // entry only sinks; across timestamps it can move either way.
  if (pos > 0 && Before(heap_[pos], heap_[(pos - 1) / 4])) {
    SiftUp(pos);
  } else {
    SiftDown(pos);
  }
  return true;
}

// --- periodic tasks ---------------------------------------------------------

uint32_t Simulation::AllocPeriodicSlot() {
  if (periodic_free_head_ != kNilIndex) {
    const uint32_t slot = periodic_free_head_;
    periodic_free_head_ = periodic_slots_[slot].free_next;
    return slot;
  }
  periodic_slots_.emplace_back();
  return static_cast<uint32_t>(periodic_slots_.size() - 1);
}

EventId Simulation::SchedulePeriodic(SimDuration period, InlineTask fn) {
  ACTOP_CHECK(period > 0);
  ACTOP_CHECK(static_cast<bool>(fn));
  const uint32_t slot = AllocPeriodicSlot();
  PeriodicSlot& p = periodic_slots_[slot];
  p.fn = std::move(fn);
  p.period = period;
  p.live = true;
  const uint32_t gen = p.gen;
  p.next_event = ScheduleAfter(period, [this, slot, gen] { PeriodicTick(slot, gen); });
  return PackId(gen, slot, kPeriodicTag);
}

void Simulation::PeriodicTick(uint32_t slot, uint32_t gen) {
  {
    PeriodicSlot& p = periodic_slots_[slot];
    if (!p.live || p.gen != gen) return;  // defensive; cancel removes the tick
    p.next_event = 0;
  }
  // Move the callback out so the slot can be reused if the callback cancels
  // this periodic and schedules a new one.
  InlineTask fn = std::move(periodic_slots_[slot].fn);
  fn();
  // Re-fetch: the callback may have scheduled periodics, growing the slab.
  PeriodicSlot& p = periodic_slots_[slot];
  if (p.live && p.gen == gen) {
    p.fn = std::move(fn);
    p.next_event = ScheduleAfter(p.period, [this, slot, gen] { PeriodicTick(slot, gen); });
  }
}

bool Simulation::CancelPeriodic(EventId id) {
  if ((id & kPeriodicTag) == 0) return false;
  const uint32_t slot = static_cast<uint32_t>(id);
  const uint32_t gen = static_cast<uint32_t>(id >> 32) & kGenMask;
  if (slot >= periodic_slots_.size()) return false;
  PeriodicSlot& p = periodic_slots_[slot];
  if (!p.live || p.gen != gen) return false;
  if (p.next_event != 0) {
    Cancel(p.next_event);  // zero when cancelled from inside the callback
    p.next_event = 0;
  }
  p.live = false;
  p.fn = InlineTask();
  p.gen = NextGen(p.gen);
  p.free_next = periodic_free_head_;
  periodic_free_head_ = slot;
  return true;
}

// --- dispatch ---------------------------------------------------------------

void Simulation::DispatchTop() {
  const HeapEntry top = heap_[0];
  PopRoot();
  // Free the slot before invoking: a cancel of this id from inside its own
  // callback sees a stale generation and correctly returns false, and the
  // callback may schedule freely (possibly reusing this very slot).
  InlineTask fn = std::move(slots_[top.slot()].fn);
  FreeSlot(top.slot());
  now_ = top.when;
  events_executed_++;
  fn();
  if (after_event_hook_) after_event_hook_();
}

uint64_t Simulation::Run() {
  uint64_t n = 0;
  while (!heap_.empty()) {
    DispatchTop();
    n++;
  }
  return n;
}

uint64_t Simulation::RunUntil(SimTime deadline) {
  ACTOP_CHECK(deadline >= now_);
  uint64_t n = 0;
  while (!heap_.empty() && heap_[0].when <= deadline) {
    DispatchTop();
    n++;
  }
  now_ = deadline;
  return n;
}

uint64_t Simulation::RunWindow(SimTime end) {
  uint64_t n = 0;
  while (!heap_.empty() && heap_[0].when < end) {
    DispatchTop();
    n++;
  }
  return n;
}

bool Simulation::RunOne() {
  if (heap_.empty()) return false;
  DispatchTop();
  return true;
}

}  // namespace actop
