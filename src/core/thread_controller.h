// Runtime thread-allocation controllers.
//
// ModelThreadController is ActOp's controller (§5): every control period it
// reads each stage's measurement window, refreshes the parameter estimates,
// solves problem (*) (closed form when η ≥ ζ, gradient otherwise), rounds to
// integers and applies the allocation.
//
// QueueLengthThreadController is the baseline from SEDA [33,34] used in the
// paper's Figure 7: every period, any stage with queue length > Th gains one
// thread and any stage with queue length < Tl loses one (floor of 1 thread).

#ifndef SRC_CORE_THREAD_CONTROLLER_H_
#define SRC_CORE_THREAD_CONTROLLER_H_

#include <functional>
#include <vector>

#include "src/common/sim_time.h"
#include "src/core/param_estimator.h"
#include "src/core/queuing_model.h"
#include "src/seda/thread_host.h"
#include "src/sim/simulation.h"

namespace actop {

struct ModelControllerConfig {
  SimDuration period = Seconds(1);
  double eta = 100e-6;  // thread penalty, seconds/thread (paper: 100 µs)
  std::vector<bool> no_blocking;  // S0 stages, aligned with the host's stages
  double smoothing = 0.5;
  int min_threads = 1;
  int max_threads = 64;
};

class ModelThreadController {
 public:
  ModelThreadController(Simulation* sim, ThreadHost* host, ModelControllerConfig config);

  // Begins periodic control. Optional observer runs after each decision.
  void Start();
  void Stop();

  // Runs one control step immediately (used by tests).
  void StepOnce();

  // Observer invoked with the applied allocation after each step.
  void set_observer(std::function<void(const std::vector<int>&)> observer) {
    observer_ = std::move(observer);
  }

  const ParamEstimator& estimator() const { return estimator_; }
  // Most recent solved problem (valid once the estimator is ready).
  const AllocationProblem& last_problem() const { return last_problem_; }

 private:
  void CollectAndApply(SimDuration window_length);

  Simulation* sim_;
  ThreadHost* host_;
  ModelControllerConfig config_;
  ParamEstimator estimator_;
  AllocationProblem last_problem_;
  EventId periodic_id_ = 0;
  SimTime last_step_time_ = 0;
  std::function<void(const std::vector<int>&)> observer_;
  // Reused across control periods so the periodic step allocates nothing at
  // steady state (vector assign/copy into these reuses their capacity).
  std::vector<StageWindow> windows_scratch_;
  AllocationProblem problem_scratch_;
};

struct QueueLengthControllerConfig {
  SimDuration period = Seconds(30);  // paper samples every 30 s
  uint64_t high_threshold = 100;     // Th
  uint64_t low_threshold = 10;       // Tl
  int min_threads = 1;
  int max_threads = 64;
};

class QueueLengthThreadController {
 public:
  QueueLengthThreadController(Simulation* sim, ThreadHost* host,
                              QueueLengthControllerConfig config);

  void Start();
  void Stop();
  void StepOnce();

  void set_observer(std::function<void(const std::vector<int>&)> observer) {
    observer_ = std::move(observer);
  }

 private:
  Simulation* sim_;
  ThreadHost* host_;
  QueueLengthControllerConfig config_;
  EventId periodic_id_ = 0;
  std::function<void(const std::vector<int>&)> observer_;
};

}  // namespace actop

#endif  // SRC_CORE_THREAD_CONTROLLER_H_
