#include "src/core/repartition_arena.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "src/common/check.h"
#include "src/core/joint_selection.h"

namespace actop {

RepartitionArena::RepartitionArena(const CsrGraph* graph, int servers, PairwiseConfig config,
                                   uint64_t seed)
    : graph_(graph), num_servers_(servers), config_(config), rng_(seed) {
  ACTOP_CHECK(graph != nullptr);
  ACTOP_CHECK(servers >= 2);
  const auto n = static_cast<size_t>(graph_->num_vertices());
  loc_.assign(n, kNoServer);
  counts_.assign(static_cast<size_t>(servers), 0);
  // Balanced random placement: shuffle ascending ids, deal round-robin —
  // the exact sequence PartitionTestbed's constructor draws, so equal seeds
  // produce equal assignments on both implementations.
  std::vector<VertexId> vertices(n);
  for (size_t i = 0; i < n; i++) {
    vertices[i] = graph_->IdOf(static_cast<int32_t>(i));
  }
  for (size_t i = n; i > 1; i--) {
    std::swap(vertices[i - 1], vertices[rng_.NextBounded(i)]);
  }
  for (size_t i = 0; i < n; i++) {
    const auto server = static_cast<ServerId>(i % static_cast<size_t>(servers));
    loc_[static_cast<size_t>(graph_->IndexOf(vertices[i]))] = server;
    counts_[static_cast<size_t>(server)]++;
  }
  size_sums_.assign(static_cast<size_t>(servers), 0.0);
  for (int s = 0; s < servers; s++) {
    size_sums_[static_cast<size_t>(s)] = static_cast<double>(counts_[static_cast<size_t>(s)]);
  }
  if (config_.target_size < 0.0) {
    config_.target_size = static_cast<double>(n) / static_cast<double>(servers);
  }
  InitScratch();
  cut_cost_ = RecomputeCost();
}

RepartitionArena::RepartitionArena(const CsrGraph* graph, int servers, PairwiseConfig config,
                                   std::vector<ServerId> assignment)
    : graph_(graph), num_servers_(servers), config_(config), rng_(0) {
  ACTOP_CHECK(graph != nullptr);
  ACTOP_CHECK(servers >= 2);
  planning_only_ = true;
  InitScratch();
  ResetPlanning(config, assignment);
  // cut_cost_ stays 0: the local-view CSR this ctor exists for is
  // asymmetric, so the O(E) recompute would double- or under-count.
}

void RepartitionArena::ResetPlanning(const PairwiseConfig& config,
                                     const std::vector<ServerId>& assignment) {
  ACTOP_CHECK(planning_only_);
  config_ = config;
  const auto n = static_cast<size_t>(graph_->num_vertices());
  ACTOP_CHECK(assignment.size() == n);
  loc_.assign(assignment.begin(), assignment.end());
  counts_.assign(static_cast<size_t>(num_servers_), 0);
  for (size_t i = 0; i < n; i++) {
    ACTOP_CHECK(loc_[i] >= 0 && loc_[i] < num_servers_);
    counts_[static_cast<size_t>(loc_[i])]++;
  }
  size_sums_.assign(static_cast<size_t>(num_servers_), 0.0);
  for (int s = 0; s < num_servers_; s++) {
    size_sums_[static_cast<size_t>(s)] = static_cast<double>(counts_[static_cast<size_t>(s)]);
  }
  // config_.target_size stays exactly as the caller set it: defaulting it to
  // a sampled-view vertex count would flip BalanceAllows into band mode with
  // a meaningless target and diverge from the reference decide, which sees
  // the caller's config verbatim.
}

void RepartitionArena::InitScratch() {
  topk_.resize(static_cast<size_t>(num_servers_));
  if (planning_only_) {
    // Runtime agents plan over sparse sampled views whose live peer and
    // candidate counts sit far below the k * (servers - 1) worst case (at
    // 1000 servers that bound would pre-commit gigabytes per agent), so the
    // scratch grows organically instead. Capacities persist across
    // ResetPlanning calls, so steady-state rounds still allocate nothing —
    // only growth rounds pay, and those land in warmup.
    return;
  }
  // Pre-size every scratch buffer to its hard cap so steady-state rounds are
  // allocation-free from the first sweep (gated by bench_arena): per-peer
  // candidate counts are bounded by k = candidate_set_size, the number of
  // peers by servers - 1, and every candidate's adjacency by the graph's
  // maximum degree.
  for (int32_t idx = 0; idx < graph_->num_vertices(); idx++) {
    max_degree_ = std::max(max_degree_, static_cast<int32_t>(graph_->DegreeOf(idx)));
  }
  const size_t k = config_.candidate_set_size;
  const auto peers = static_cast<size_t>(num_servers_ - 1);
  remote_weight_.reserve(static_cast<size_t>(num_servers_));
  for (auto& heap : topk_) {
    heap.reserve(k);
  }
  t_topk_.reserve(k);
  s_pool_.resize(k * peers);
  t_pool_.resize(k);
  for (auto& c : s_pool_) {
    c.edges.reserve(static_cast<size_t>(max_degree_));
  }
  for (auto& c : t_pool_) {
    c.edges.reserve(static_cast<size_t>(max_degree_));
  }
  plans_.reserve(static_cast<size_t>(num_servers_));
  s_ptrs_.reserve(k);
  t_ptrs_.reserve(k);
  s_heap_.Reserve(k);
  t_heap_.Reserve(k);
  accepted_.reserve(k);
  counter_.reserve(k);
}

void RepartitionArena::ExportPeerPlans(ServerId p, std::vector<PeerPlan>* out, ServerId unknown) {
  BuildPlans(p);
  out->clear();
  out->reserve(plans_.size());
  for (const PlanRef& plan : plans_) {
    if (plan.peer == unknown) {
      continue;  // stand-in for unknown locations; the reference planner
                 // never plans toward it
    }
    PeerPlan pp;
    pp.peer = plan.peer;
    pp.total_score = plan.total_score;
    pp.candidates.reserve(plan.count);
    for (uint32_t i = 0; i < plan.count; i++) {
      const Candidate& src = s_pool_[plan.first + i];
      Candidate& dst = pp.candidates.emplace_back();
      dst.vertex = src.vertex;
      dst.score = src.score;
      dst.size = src.size;
      dst.edges.reserve(src.edges.size());
      for (const auto& [u, edge] : src.edges) {
        dst.edges.append_ascending(
            u, CandidateEdge{edge.weight,
                             edge.location_hint == unknown ? kNoServer : edge.location_hint});
      }
    }
    out->push_back(std::move(pp));
  }
}

void RepartitionArena::DecideOffer(ServerId q, ServerId p, const std::vector<Candidate>& offered,
                                   double size_p, double size_q, ServerId unknown,
                                   std::vector<VertexId>* accepted,
                                   std::vector<VertexId>* counter) {
  ACTOP_CHECK(planning_only_);
  ACTOP_CHECK(p != q);
  // Step 2 of Alg. 1: q's own candidate set toward p, ignoring S (the
  // reference's plan-toward-p restricted to the one peer that matters).
  BuildCandidatesToward(q, p);
  s_ptrs_.clear();
  for (const Candidate& c : offered) {
    s_ptrs_.push_back(&c);
  }
  // q's perspective on offered candidates: q's own location knowledge
  // overrides p's hints, falling back to the hint for vertices q has never
  // sampled or whose location it does not know — exactly the reference
  // score_s, with `unknown` (the planning stand-in server) translating back
  // to "no knowledge" like in ExportPeerPlans.
  auto score_s = [&](const Candidate& c) {
    double gain = -config_.migration_cost_weight * c.size;
    for (const auto& [u, edge] : c.edges) {
      const int32_t idx = graph_->IndexOf(u);
      ServerId l = idx == CsrGraph::kNoIndex ? kNoServer : loc_[static_cast<size_t>(idx)];
      if (l == unknown || l == kNoServer) {
        l = edge.location_hint;
      }
      if (l == q) {
        gain += edge.weight;
      } else if (l == p) {
        gain -= edge.weight;
      }
    }
    return gain;
  };
  auto score_t = [&](const Candidate& c) { return c.score; };

  s_heap_.Reset();
  t_heap_.Reset();
  s_heap_.InitPtrs(s_ptrs_, score_s);
  t_heap_.InitPtrs(t_ptrs_, score_t);

  // Step 3: joint S0/T0 selection through the shared loop. The runtime
  // applies the moves via actor migration, so only vertex ids come out.
  accepted->clear();
  counter->clear();
  RunJointSelection(
      s_heap_, t_heap_, config_, size_p, size_q,
      [&](VertexId moved, const Candidate*) { accepted->push_back(moved); },
      [&](VertexId, const Candidate* c) { counter->push_back(c->vertex); });
}

void RepartitionArena::SetVertexSizes(const std::unordered_map<VertexId, double>& sizes) {
  ACTOP_CHECK(total_migrations_ == 0);
  const auto n = static_cast<size_t>(graph_->num_vertices());
  vsize_.assign(n, 1.0);
  for (const auto& [v, s] : sizes) {
    const int32_t idx = graph_->IndexOf(v);
    if (idx != CsrGraph::kNoIndex) {
      vsize_[static_cast<size_t>(idx)] = s;
    }
  }
  // Per-server sums accumulate over ascending vertex ids (each server's
  // members form a subsequence of the dense scan) — the same addition order
  // as the testbed's sorted member iteration, so sums are bit-identical.
  size_sums_.assign(static_cast<size_t>(num_servers_), 0.0);
  for (size_t idx = 0; idx < n; idx++) {
    size_sums_[static_cast<size_t>(loc_[idx])] += vsize_[idx];
  }
  double total = 0.0;
  for (int s = 0; s < num_servers_; s++) {
    total += size_sums_[static_cast<size_t>(s)];
  }
  config_.target_size = total / static_cast<double>(num_servers_);
}

double RepartitionArena::RecomputeCost() const {
  // The graph is symmetric, so each undirected edge appears in both spans
  // with the same weight; counting the (idx < nbr) direction visits every
  // unordered pair exactly once.
  double cost = 0.0;
  const int32_t n = graph_->num_vertices();
  for (int32_t idx = 0; idx < n; idx++) {
    const size_t end = graph_->EdgeEnd(idx);
    for (size_t i = graph_->EdgeBegin(idx); i < end; i++) {
      const int32_t u = graph_->EdgeNeighbor(i);
      if (u > idx && loc_[static_cast<size_t>(u)] != loc_[static_cast<size_t>(idx)]) {
        cost += graph_->EdgeWeight(i);
      }
    }
  }
  return cost;
}

void RepartitionArena::ApplyMoveIndex(int32_t idx, ServerId to) {
  // Planning-only instances sit on an asymmetric local-view CSR whose cut
  // bookkeeping would be wrong; the runtime applies moves through actor
  // migration instead.
  ACTOP_CHECK(!planning_only_);
  const ServerId from = loc_[static_cast<size_t>(idx)];
  ACTOP_CHECK(from != to);
  // O(deg) incremental cut maintenance: edges into `from` turn cross-server,
  // edges into `to` turn local, everything else is unchanged.
  const size_t end = graph_->EdgeEnd(idx);
  for (size_t i = graph_->EdgeBegin(idx); i < end; i++) {
    const ServerId l = loc_[static_cast<size_t>(graph_->EdgeNeighbor(i))];
    if (l == from) {
      cut_cost_ += graph_->EdgeWeight(i);
    } else if (l == to) {
      cut_cost_ -= graph_->EdgeWeight(i);
    }
  }
  loc_[static_cast<size_t>(idx)] = to;
  counts_[static_cast<size_t>(from)]--;
  counts_[static_cast<size_t>(to)]++;
  const double s = SizeOfIndex(idx);
  size_sums_[static_cast<size_t>(from)] -= s;
  size_sums_[static_cast<size_t>(to)] += s;
  total_migrations_++;
}

Candidate* RepartitionArena::AllocCandidate(std::vector<Candidate>* pool, size_t* used) {
  if (*used == pool->size()) {
    pool->emplace_back();
  }
  return &(*pool)[(*used)++];
}

void RepartitionArena::FillCandidate(int32_t idx, double score, Candidate* c) const {
  c->vertex = graph_->IdOf(idx);
  c->score = score;
  c->size = SizeOfIndex(idx);
  c->edges.clear();  // keeps the edge buffer (candidate recycling)
  const size_t end = graph_->EdgeEnd(idx);
  for (size_t i = graph_->EdgeBegin(idx); i < end; i++) {
    const int32_t u = graph_->EdgeNeighbor(i);
    // CSR spans are sorted by neighbor index == neighbor id, matching the
    // sorted layout MakeCandidate's bulk_assign produces.
    c->edges.append_ascending(graph_->IdOf(u),
                              CandidateEdge{graph_->EdgeWeight(i), loc_[static_cast<size_t>(u)]});
  }
}

void RepartitionArena::OfferTopK(std::vector<std::pair<double, VertexId>>* heap, VertexId v,
                                 double score) const {
  // Same admission/eviction rule as the reference TopK (min-heap on the
  // (score, vertex) pair; a tie with the current minimum's score rejects
  // the newcomer).
  const size_t k = config_.candidate_set_size;
  if (k == 0) {
    return;
  }
  auto& h = *heap;
  if (h.size() < k) {
    h.emplace_back(score, v);
    std::push_heap(h.begin(), h.end(), std::greater<>{});
    return;
  }
  if (score > h.front().first) {
    std::pop_heap(h.begin(), h.end(), std::greater<>{});
    h.back() = {score, v};
    std::push_heap(h.begin(), h.end(), std::greater<>{});
  }
}

void RepartitionArena::BuildPlans(ServerId p) {
  s_used_ = 0;
  plans_.clear();
  for (auto& heap : topk_) {
    heap.clear();
  }
  const int32_t n = graph_->num_vertices();
  for (int32_t idx = 0; idx < n; idx++) {
    if (loc_[static_cast<size_t>(idx)] != p) {
      continue;
    }
    const size_t begin = graph_->EdgeBegin(idx);
    const size_t end = graph_->EdgeEnd(idx);
    if (begin == end) {
      continue;
    }
    double local_weight = 0.0;
    remote_weight_.clear();
    for (size_t i = begin; i < end; i++) {
      const ServerId l = loc_[static_cast<size_t>(graph_->EdgeNeighbor(i))];
      const double w = graph_->EdgeWeight(i);
      if (l == p) {
        local_weight += w;
      } else {
        bool found = false;
        for (auto& [server, weight] : remote_weight_) {
          if (server == l) {
            weight += w;
            found = true;
            break;
          }
        }
        if (!found) {
          remote_weight_.emplace_back(l, w);
        }
      }
    }
    for (const auto& [server, weight] : remote_weight_) {
      const double score =
          weight - local_weight - config_.migration_cost_weight * SizeOfIndex(idx);
      if (score > config_.min_score) {
        OfferTopK(&topk_[static_cast<size_t>(server)], graph_->IdOf(idx), score);
      }
    }
  }

  for (ServerId s = 0; s < num_servers_; s++) {
    auto& heap = topk_[static_cast<size_t>(s)];
    if (heap.empty()) {
      continue;
    }
    // Descending (score, vertex) — exactly the reference TopK::Drain order.
    std::sort(heap.begin(), heap.end(), std::greater<>{});
    PlanRef plan;
    plan.peer = s;
    plan.first = static_cast<uint32_t>(s_used_);
    double total_size = 0.0;
    for (const auto& [score, v] : heap) {
      const int32_t vidx = graph_->IndexOf(v);
      const double size = SizeOfIndex(vidx);
      if (config_.max_candidate_total_size > 0.0 &&
          total_size + size > config_.max_candidate_total_size && plan.count > 0) {
        break;  // candidates are sorted best-first; stop at the budget
      }
      total_size += size;
      plan.total_score += score;
      FillCandidate(vidx, score, AllocCandidate(&s_pool_, &s_used_));
      plan.count++;
    }
    plans_.push_back(plan);
  }
  std::sort(plans_.begin(), plans_.end(), [](const PlanRef& a, const PlanRef& b) {
    if (a.total_score != b.total_score) {
      return a.total_score > b.total_score;
    }
    return a.peer < b.peer;
  });
}

void RepartitionArena::BuildCandidatesToward(ServerId q, ServerId p) {
  t_used_ = 0;
  t_ptrs_.clear();
  t_topk_.clear();
  const int32_t n = graph_->num_vertices();
  for (int32_t idx = 0; idx < n; idx++) {
    if (loc_[static_cast<size_t>(idx)] != q) {
      continue;
    }
    const size_t begin = graph_->EdgeBegin(idx);
    const size_t end = graph_->EdgeEnd(idx);
    if (begin == end) {
      continue;
    }
    double local_weight = 0.0;
    double toward_p = 0.0;
    bool any_p = false;
    for (size_t i = begin; i < end; i++) {
      const ServerId l = loc_[static_cast<size_t>(graph_->EdgeNeighbor(i))];
      const double w = graph_->EdgeWeight(i);
      if (l == q) {
        local_weight += w;
      } else if (l == p) {
        toward_p += w;
        any_p = true;
      }
    }
    if (!any_p) {
      continue;
    }
    const double score =
        toward_p - local_weight - config_.migration_cost_weight * SizeOfIndex(idx);
    if (score > config_.min_score) {
      OfferTopK(&t_topk_, graph_->IdOf(idx), score);
    }
  }
  if (t_topk_.empty()) {
    return;
  }
  std::sort(t_topk_.begin(), t_topk_.end(), std::greater<>{});
  double total_size = 0.0;
  size_t count = 0;
  for (const auto& [score, v] : t_topk_) {
    const int32_t vidx = graph_->IndexOf(v);
    const double size = SizeOfIndex(vidx);
    if (config_.max_candidate_total_size > 0.0 &&
        total_size + size > config_.max_candidate_total_size && count > 0) {
      break;
    }
    total_size += size;
    FillCandidate(vidx, score, AllocCandidate(&t_pool_, &t_used_));
    count++;
  }
  t_ptrs_.reserve(t_used_);
  for (size_t i = 0; i < t_used_; i++) {
    t_ptrs_.push_back(&t_pool_[i]);
  }
}

int RepartitionArena::ExchangeWithPeer(ServerId p, const PlanRef& plan, bool filter_stale) {
  const ServerId q = plan.peer;
  ACTOP_DCHECK(q != p);
  s_ptrs_.clear();
  for (uint32_t i = 0; i < plan.count; i++) {
    const Candidate& c = s_pool_[plan.first + i];
    if (filter_stale &&
        loc_[static_cast<size_t>(graph_->IndexOf(c.vertex))] != p) {
      continue;  // moved by an earlier exchange of this k-way round
    }
    s_ptrs_.push_back(&c);
  }
  BuildCandidatesToward(q, p);

  // q's perspective on offered candidates, against ground-truth locations.
  // In a pairwise round this equals the reference score_s: the testbed's
  // view lookups and plan-time hints both resolve to current ground truth
  // because no move lands between planning and deciding. In k-way rounds
  // (where hints could have gone stale) ground truth is the *fresher*
  // choice and keeps every applied move a strict improvement.
  auto score_s = [&](const Candidate& c) {
    double gain = -config_.migration_cost_weight * c.size;
    for (const auto& [u, edge] : c.edges) {
      const ServerId l = loc_[static_cast<size_t>(graph_->IndexOf(u))];
      if (l == q) {
        gain += edge.weight;
      } else if (l == p) {
        gain -= edge.weight;
      }
    }
    return gain;
  };
  auto score_t = [&](const Candidate& c) { return c.score; };

  s_heap_.Reset();
  t_heap_.Reset();
  s_heap_.InitPtrs(s_ptrs_, score_s);
  t_heap_.InitPtrs(t_ptrs_, score_t);

  accepted_.clear();
  counter_.clear();
  RunJointSelection(
      s_heap_, t_heap_, config_, size_sums_[static_cast<size_t>(p)],
      size_sums_[static_cast<size_t>(q)],
      [&](VertexId moved, const Candidate*) { accepted_.push_back(moved); },
      [&](VertexId, const Candidate* c) { counter_.push_back(c); });
  for (VertexId v : accepted_) {
    ApplyMoveIndex(graph_->IndexOf(v), q);
  }
  for (const Candidate* c : counter_) {
    ApplyMoveIndex(graph_->IndexOf(c->vertex), p);
  }
  return static_cast<int>(accepted_.size() + counter_.size());
}

int RepartitionArena::RunPairwiseRound(ServerId p) {
  BuildPlans(p);
  for (const PlanRef& plan : plans_) {
    const int moved = ExchangeWithPeer(p, plan, /*filter_stale=*/false);
    if (moved > 0) {
      return moved;  // first productive exchange ends the round (Alg. 1)
    }
  }
  return 0;
}

int RepartitionArena::RunPairwiseSweep() {
  int moved = 0;
  for (ServerId p = 0; p < num_servers_; p++) {
    moved += RunPairwiseRound(p);
  }
  return moved;
}

int RepartitionArena::RunToConvergence(int max_sweeps) {
  for (int sweep = 1; sweep <= max_sweeps; sweep++) {
    if (RunPairwiseSweep() == 0) {
      return sweep;
    }
  }
  return max_sweeps;
}

int RepartitionArena::RunKWayRound(ServerId p, int fanout) {
  BuildPlans(p);
  int moved = 0;
  int exchanged = 0;
  for (const PlanRef& plan : plans_) {
    if (exchanged >= fanout) {
      break;
    }
    moved += ExchangeWithPeer(p, plan, /*filter_stale=*/true);
    exchanged++;
  }
  return moved;
}

int RepartitionArena::RunKWaySweep(int fanout) {
  int moved = 0;
  for (ServerId p = 0; p < num_servers_; p++) {
    moved += RunKWayRound(p, fanout);
  }
  return moved;
}

int64_t RepartitionArena::RunGreedyUnilateralSweep() {
  // Snapshot phase: every server plans against the same state (mirrors
  // PartitionTestbed::RunUnilateralSweep — no acceptance check, no
  // counter-offer, balance only against assumed snapshot counts).
  planned_moves_.clear();
  for (ServerId p = 0; p < num_servers_; p++) {
    BuildPlans(p);
    assumed_counts_.assign(counts_.begin(), counts_.end());
    for (const PlanRef& plan : plans_) {
      for (uint32_t i = 0; i < plan.count; i++) {
        const Candidate& c = s_pool_[plan.first + i];
        const auto from = static_cast<size_t>(p);
        const auto to = static_cast<size_t>(plan.peer);
        if (!config_.BalanceAllows(static_cast<double>(assumed_counts_[from]),
                                   static_cast<double>(assumed_counts_[to]))) {
          continue;
        }
        assumed_counts_[from]--;
        assumed_counts_[to]++;
        planned_moves_.emplace_back(graph_->IndexOf(c.vertex), plan.peer);
      }
    }
  }
  // Apply phase: races included — two servers may swap a heavy edge's
  // endpoints past each other.
  int64_t applied = 0;
  for (const auto& [idx, to] : planned_moves_) {
    if (loc_[static_cast<size_t>(idx)] == to) {
      continue;
    }
    ApplyMoveIndex(idx, to);
    applied++;
  }
  return applied;
}

int64_t RepartitionArena::RunObrThresholdSweep(double alpha) {
  int64_t moved = 0;
  const int32_t n = graph_->num_vertices();
  for (int32_t idx = 0; idx < n; idx++) {
    const size_t begin = graph_->EdgeBegin(idx);
    const size_t end = graph_->EdgeEnd(idx);
    if (begin == end) {
      continue;
    }
    const ServerId from = loc_[static_cast<size_t>(idx)];
    double local_weight = 0.0;
    remote_weight_.clear();
    for (size_t i = begin; i < end; i++) {
      const ServerId l = loc_[static_cast<size_t>(graph_->EdgeNeighbor(i))];
      const double w = graph_->EdgeWeight(i);
      if (l == from) {
        local_weight += w;
      } else {
        bool found = false;
        for (auto& [server, weight] : remote_weight_) {
          if (server == l) {
            weight += w;
            found = true;
            break;
          }
        }
        if (!found) {
          remote_weight_.emplace_back(l, w);
        }
      }
    }
    const double size = SizeOfIndex(idx);
    ServerId best = kNoServer;
    double best_score = 0.0;
    for (const auto& [server, weight] : remote_weight_) {
      const double score = weight - local_weight - config_.migration_cost_weight * size;
      if (best == kNoServer || score > best_score) {
        best = server;
        best_score = score;
      }
    }
    // Lazy threshold: the gain must also pay the (alpha-scaled) migration
    // rent before the move fires.
    if (best == kNoServer || best_score <= config_.min_score || best_score <= alpha * size) {
      continue;
    }
    if (!config_.BalanceAllows(size_sums_[static_cast<size_t>(from)],
                               size_sums_[static_cast<size_t>(best)], size)) {
      continue;
    }
    ApplyMoveIndex(idx, best);
    moved++;
  }
  return moved;
}

int64_t RepartitionArena::RunStreamingRefineSweep(double load_penalty) {
  int64_t moved = 0;
  const int32_t n = graph_->num_vertices();
  const double target = config_.target_size;
  for (int32_t idx = 0; idx < n; idx++) {
    const size_t begin = graph_->EdgeBegin(idx);
    const size_t end = graph_->EdgeEnd(idx);
    if (begin == end) {
      continue;
    }
    const ServerId from = loc_[static_cast<size_t>(idx)];
    double local_weight = 0.0;
    remote_weight_.clear();
    for (size_t i = begin; i < end; i++) {
      const ServerId l = loc_[static_cast<size_t>(graph_->EdgeNeighbor(i))];
      const double w = graph_->EdgeWeight(i);
      if (l == from) {
        local_weight += w;
      } else {
        bool found = false;
        for (auto& [server, weight] : remote_weight_) {
          if (server == l) {
            weight += w;
            found = true;
            break;
          }
        }
        if (!found) {
          remote_weight_.emplace_back(l, w);
        }
      }
    }
    const double size = SizeOfIndex(idx);
    // Streaming objective: affinity minus a linear overload penalty
    // (Fennel/SDP-style). Staying put is scored the same way.
    auto overload = [&](double server_size) {
      return server_size > target ? load_penalty * (server_size - target) : 0.0;
    };
    const double stay_value =
        local_weight - overload(size_sums_[static_cast<size_t>(from)]);
    ServerId best = kNoServer;
    double best_value = stay_value;
    for (const auto& [server, weight] : remote_weight_) {
      const double value =
          weight - overload(size_sums_[static_cast<size_t>(server)] + size);
      if (value > best_value) {
        best = server;
        best_value = value;
      }
    }
    if (best == kNoServer || best_value - stay_value <= config_.min_score) {
      continue;
    }
    if (!config_.BalanceAllows(size_sums_[static_cast<size_t>(from)],
                               size_sums_[static_cast<size_t>(best)], size)) {
      continue;
    }
    ApplyMoveIndex(idx, best);
    moved++;
  }
  return moved;
}

int64_t RepartitionArena::MaxImbalance() const {
  const auto [mn, mx] = std::minmax_element(counts_.begin(), counts_.end());
  return *mx - *mn;
}

double RepartitionArena::MaxSizeImbalance() const {
  const auto [mn, mx] = std::minmax_element(size_sums_.begin(), size_sums_.end());
  return *mx - *mn;
}

ServerId RepartitionArena::LocationOf(VertexId v) const {
  const int32_t idx = graph_->IndexOf(v);
  ACTOP_CHECK(idx != CsrGraph::kNoIndex);
  return loc_[static_cast<size_t>(idx)];
}

bool RepartitionArena::IsLocallyOptimal() const {
  const int32_t n = graph_->num_vertices();
  std::vector<std::pair<ServerId, double>> remote_weight;
  for (int32_t idx = 0; idx < n; idx++) {
    const size_t begin = graph_->EdgeBegin(idx);
    const size_t end = graph_->EdgeEnd(idx);
    if (begin == end) {
      continue;
    }
    const ServerId from = loc_[static_cast<size_t>(idx)];
    double local_weight = 0.0;
    remote_weight.clear();
    for (size_t i = begin; i < end; i++) {
      const ServerId l = loc_[static_cast<size_t>(graph_->EdgeNeighbor(i))];
      const double w = graph_->EdgeWeight(i);
      if (l == from) {
        local_weight += w;
      } else {
        bool found = false;
        for (auto& [server, weight] : remote_weight) {
          if (server == l) {
            weight += w;
            found = true;
            break;
          }
        }
        if (!found) {
          remote_weight.emplace_back(l, w);
        }
      }
    }
    const double size = SizeOfIndex(idx);
    for (const auto& [q, weight] : remote_weight) {
      if (weight - local_weight - config_.migration_cost_weight * size <= config_.min_score) {
        continue;
      }
      if (config_.BalanceAllows(size_sums_[static_cast<size_t>(from)],
                                size_sums_[static_cast<size_t>(q)], size)) {
        return false;
      }
    }
  }
  return true;
}

uint64_t RepartitionArena::AssignmentDigest() const {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  auto mix = [&h](uint64_t x) {
    h ^= x;
    h *= 1099511628211ULL;  // FNV prime
  };
  const int32_t n = graph_->num_vertices();
  for (int32_t idx = 0; idx < n; idx++) {
    mix(graph_->IdOf(idx));
    mix(static_cast<uint64_t>(static_cast<int64_t>(loc_[static_cast<size_t>(idx)])));
  }
  mix(static_cast<uint64_t>(total_migrations_));
  return h;
}

}  // namespace actop
