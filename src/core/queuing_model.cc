#include "src/core/queuing_model.h"

#include <cmath>
#include <limits>

#include "src/common/check.h"

namespace actop {

double TotalArrivalRate(const AllocationProblem& problem) {
  double total = 0.0;
  for (const auto& st : problem.stages) {
    total += st.lambda;
  }
  return total;
}

bool IsFeasible(const AllocationProblem& problem) {
  double demand = 0.0;
  for (const auto& st : problem.stages) {
    ACTOP_CHECK(st.s > 0.0);
    demand += st.lambda * st.beta / st.s;
  }
  return demand < static_cast<double>(problem.processors);
}

double Zeta(const AllocationProblem& problem) {
  const double lambda_tot = TotalArrivalRate(problem);
  if (lambda_tot <= 0.0) {
    return 0.0;
  }
  double numerator = 0.0;   // Σ βi·sqrt(λi/si)
  double demand = 0.0;      // Σ λi·βi/si
  for (const auto& st : problem.stages) {
    numerator += st.beta * std::sqrt(st.lambda / st.s);
    demand += st.lambda * st.beta / st.s;
  }
  const double slack = static_cast<double>(problem.processors) - demand;
  if (slack <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  const double ratio = numerator / slack;
  return ratio * ratio / lambda_tot;
}

double ProxyLatency(const AllocationProblem& problem, const std::vector<double>& threads) {
  ACTOP_CHECK(threads.size() == problem.stages.size());
  const double lambda_tot = TotalArrivalRate(problem);
  double delay = 0.0;
  double penalty = 0.0;
  for (size_t i = 0; i < threads.size(); i++) {
    const StageParams& st = problem.stages[i];
    const double mu = st.s * threads[i];
    penalty += problem.eta * threads[i];
    if (st.lambda <= 0.0) {
      continue;
    }
    if (mu <= st.lambda) {
      return std::numeric_limits<double>::infinity();
    }
    delay += st.lambda / (mu - st.lambda);
  }
  if (lambda_tot > 0.0) {
    delay /= lambda_tot;
  }
  return delay + penalty;
}

double ModelLatencySeconds(const AllocationProblem& problem, const std::vector<double>& threads) {
  ACTOP_CHECK(threads.size() == problem.stages.size());
  const double lambda_tot = TotalArrivalRate(problem);
  if (lambda_tot <= 0.0) {
    return 0.0;
  }
  double delay = 0.0;
  for (size_t i = 0; i < threads.size(); i++) {
    const StageParams& st = problem.stages[i];
    if (st.lambda <= 0.0) {
      continue;
    }
    const double mu = st.s * threads[i];
    if (mu <= st.lambda) {
      return std::numeric_limits<double>::infinity();
    }
    delay += st.lambda / (mu - st.lambda);
  }
  return delay / lambda_tot;
}

double CpuUsage(const AllocationProblem& problem, const std::vector<double>& threads) {
  ACTOP_CHECK(threads.size() == problem.stages.size());
  double usage = 0.0;
  for (size_t i = 0; i < threads.size(); i++) {
    usage += threads[i] * problem.stages[i].beta;
  }
  return usage;
}

}  // namespace actop
