#include "src/core/repartition_policy.h"

#include <string>
#include <utility>

namespace actop {

namespace {

class PairwisePolicy : public RepartitionPolicy {
 public:
  PairwisePolicy() : name_("pairwise") {}
  const std::string& name() const override { return name_; }
  int64_t RunSweep(RepartitionArena* arena) override { return arena->RunPairwiseSweep(); }

 private:
  std::string name_;
};

class KWayPolicy : public RepartitionPolicy {
 public:
  explicit KWayPolicy(int fanout)
      : fanout_(fanout), name_("kway" + std::to_string(fanout)) {}
  const std::string& name() const override { return name_; }
  int64_t RunSweep(RepartitionArena* arena) override { return arena->RunKWaySweep(fanout_); }

 private:
  int fanout_;
  std::string name_;
};

class GreedyUnilateralPolicy : public RepartitionPolicy {
 public:
  GreedyUnilateralPolicy() : name_("unilateral") {}
  const std::string& name() const override { return name_; }
  int64_t RunSweep(RepartitionArena* arena) override {
    return arena->RunGreedyUnilateralSweep();
  }

 private:
  std::string name_;
};

class ObrThresholdPolicy : public RepartitionPolicy {
 public:
  explicit ObrThresholdPolicy(double alpha) : alpha_(alpha), name_("obr-lazy") {}
  const std::string& name() const override { return name_; }
  int64_t RunSweep(RepartitionArena* arena) override {
    return arena->RunObrThresholdSweep(alpha_);
  }

 private:
  double alpha_;
  std::string name_;
};

class StreamingRefinePolicy : public RepartitionPolicy {
 public:
  explicit StreamingRefinePolicy(double load_penalty)
      : load_penalty_(load_penalty), name_("sdp-stream") {}
  const std::string& name() const override { return name_; }
  int64_t RunSweep(RepartitionArena* arena) override {
    return arena->RunStreamingRefineSweep(load_penalty_);
  }

 private:
  double load_penalty_;
  std::string name_;
};

}  // namespace

std::unique_ptr<RepartitionPolicy> MakePairwisePolicy() {
  return std::make_unique<PairwisePolicy>();
}
std::unique_ptr<RepartitionPolicy> MakeKWayPolicy(int fanout) {
  return std::make_unique<KWayPolicy>(fanout);
}
std::unique_ptr<RepartitionPolicy> MakeGreedyUnilateralPolicy() {
  return std::make_unique<GreedyUnilateralPolicy>();
}
std::unique_ptr<RepartitionPolicy> MakeObrThresholdPolicy(double alpha) {
  return std::make_unique<ObrThresholdPolicy>(alpha);
}
std::unique_ptr<RepartitionPolicy> MakeStreamingRefinePolicy(double load_penalty) {
  return std::make_unique<StreamingRefinePolicy>(load_penalty);
}

std::vector<std::unique_ptr<RepartitionPolicy>> MakeArenaPolicies(const PolicyParams& params) {
  std::vector<std::unique_ptr<RepartitionPolicy>> policies;
  policies.push_back(MakePairwisePolicy());
  policies.push_back(MakeKWayPolicy(params.kway_fanout));
  policies.push_back(MakeGreedyUnilateralPolicy());
  policies.push_back(MakeObrThresholdPolicy(params.obr_alpha));
  policies.push_back(MakeStreamingRefinePolicy(params.sdp_load_penalty));
  return policies;
}

}  // namespace actop
