// Million-vertex repartitioning data plane over a frozen CsrGraph.
//
// PartitionTestbed is the readable reference implementation: it materializes
// a fresh LocalGraphView (hash maps, pooled nodes) for every protocol round,
// which is fine at 10^4 vertices and hopeless at 10^6. RepartitionArena runs
// the same pairwise exchange protocol over dense arrays:
//
//   * vertex -> server in a flat vector indexed by CSR dense index;
//   * planning scans the CSR slabs linearly (no view materialization);
//   * candidates live in recycled pools, the greedy joint selection runs on
//     reused ExchangeHeaps, and the cross-server cut cost is maintained
//     incrementally (O(deg) per move) instead of recomputed O(E);
//   * after warm-up a steady-state round performs zero heap allocations
//     (gated by bench_arena).
//
// Pairwise decisions are byte-identical to PartitionTestbed with the ordered
// planning entry points: both visit local vertices in ascending-id order,
// both feed the identical candidate sequences through the shared
// RunJointSelection loop (joint_selection.h), and candidate adjacency is
// sorted on both paths. tests/core/arena_differential_test.cc holds the
// lockstep proof; exact equality of scores additionally needs weights that
// are exact in double (the dyadic-weight convention the golden tests
// already use), since the two implementations may sum a vertex's edge
// weights in different orders.
//
// Beyond the paper's pairwise protocol the arena exposes the primitives the
// competing policies (repartition_policy.h) are built from: k-way multi-peer
// rounds, a greedy-unilateral sweep, an OBR-style lazy threshold sweep, and
// an SDP-style streaming refinement sweep.

#ifndef SRC_CORE_REPARTITION_ARENA_H_
#define SRC_CORE_REPARTITION_ARENA_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"
#include "src/common/rng.h"
#include "src/core/csr_graph.h"
#include "src/core/exchange_heap.h"
#include "src/core/pairwise_partition.h"

namespace actop {

class RepartitionArena {
 public:
  // Balanced random placement, reproducing PartitionTestbed's constructor
  // exactly (same shuffle, same round-robin deal, same target_size default)
  // so equal seeds give equal starting assignments.
  RepartitionArena(const CsrGraph* graph, int servers, PairwiseConfig config, uint64_t seed);

  // Planning-only construction: adopts an explicit per-dense-index
  // assignment (values in [0, servers)) instead of drawing a random
  // placement, and skips cut initialization — built for the runtime
  // PartitionAgent, which plans over an asymmetric local-view CSR
  // (CsrGraph::FromLocalView; remote endpoints carry empty spans) where cut
  // maintenance would read garbage. Instances built this way may only call
  // ExportPeerPlans, DecideOffer, ResetPlanning, and the const accessors;
  // every mutating protocol entry point checks against it.
  RepartitionArena(const CsrGraph* graph, int servers, PairwiseConfig config,
                   std::vector<ServerId> assignment);

  // Re-initializes a planning-only instance for a fresh round after the
  // underlying CsrGraph was rebuilt in place (RebuildFromEdgeList): adopts
  // the new assignment and config while every scratch buffer keeps its
  // capacity, so steady-state re-planning allocates nothing.
  void ResetPlanning(const PairwiseConfig& config, const std::vector<ServerId>& assignment);

  // Runs p's planning pass and copies the ranked per-peer plans out in the
  // reference PeerPlan format — byte-identical to BuildPeerPlansOrdered over
  // the same view with ascending-id visit order
  // (tests/runtime/arena_planner_test.cc). Plans toward `unknown` (the
  // caller's stand-in server for unknown neighbor locations) are dropped and
  // candidate-edge hints pointing at it translate back to kNoServer,
  // mirroring how the reference planner skips unknown-location edges.
  void ExportPeerPlans(ServerId p, std::vector<PeerPlan>* out, ServerId unknown = kNoServer);

  // Responder side of Alg. 1 for planning-only instances: q (this arena's
  // own server) decides on requester p's offered candidates without applying
  // any moves — byte-identical to DecideExchangeOrdered over the same
  // sampled view (tests/runtime/arena_planner_test.cc). T is q's candidate
  // set toward p; offered candidates are re-scored with q's own location
  // knowledge, falling back to p's hints where q knows nothing (`unknown`
  // translating back to kNoServer as in ExportPeerPlans). S0 vertex ids land
  // in *accepted, T0 vertex ids in *counter; size_p/size_q mirror the
  // reference's request-size / TotalSize() inputs. Byte-identity assumes the
  // BuildView invariant that location knowledge exists only for vertices the
  // responder actually sampled (all of which are in the frozen graph).
  void DecideOffer(ServerId q, ServerId p, const std::vector<Candidate>& offered, double size_p,
                   double size_q, ServerId unknown, std::vector<VertexId>* accepted,
                   std::vector<VertexId>* counter);

  // --- Paper's pairwise exchange (reference policy) ---------------------
  // One protocol round initiated by p: plan, contact peers in ranking
  // order, apply the first productive exchange. Returns vertices moved.
  int RunPairwiseRound(ServerId p);
  // Every server initiates once; returns total vertices moved.
  int RunPairwiseSweep();
  // Pairwise sweeps until one moves nothing; returns sweeps executed.
  int RunToConvergence(int max_sweeps = 1000);

  // --- k-way generalization and baselines (see repartition_policy.h) ----
  // Multi-peer round: p plans once, then exchanges with its top `fanout`
  // peers in ranking order. Candidates that moved in an earlier exchange of
  // the same round are filtered out, and every surviving candidate is
  // re-scored against ground truth inside the exchange, so each applied
  // move still strictly decreases the cut and respects the balance band
  // (Theorem 1 properties; tests/core/arena_test.cc).
  int RunKWayRound(ServerId p, int fanout);
  int RunKWaySweep(int fanout);
  // Uncoordinated ablation: all servers plan against the same snapshot and
  // migrate without acceptance checks (mirrors the testbed's unilateral
  // sweep; races and oscillation included).
  int64_t RunGreedyUnilateralSweep();
  // OBR-style lazy threshold: a vertex moves only when its best transfer
  // score exceeds alpha * size(v) — rent the move against the cost of
  // migrating (Avin et al.'s lazy rebalancing flavor).
  int64_t RunObrThresholdSweep(double alpha);
  // SDP-style streaming refinement: one pass reassigning each vertex to the
  // server maximizing affinity minus a linear overload penalty.
  int64_t RunStreamingRefineSweep(double load_penalty);

  // --- State / metrics ---------------------------------------------------
  // Incrementally maintained cross-server cut cost (== cross-server message
  // rate for edge weights in messages/sec). Exact for weights that are
  // exact in double; otherwise within FP-reassociation noise of
  // RecomputeCost().
  double cost() const { return cut_cost_; }
  double RecomputeCost() const;
  std::vector<int64_t> ServerSizes() const { return counts_; }
  int64_t MaxImbalance() const;
  double MaxSizeImbalance() const;
  bool IsLocallyOptimal() const;
  ServerId LocationOf(VertexId v) const;
  ServerId LocationOfIndex(int32_t idx) const { return loc_[static_cast<size_t>(idx)]; }
  int num_servers() const { return num_servers_; }
  int64_t total_migrations() const { return total_migrations_; }
  const CsrGraph& graph() const { return *graph_; }
  const PairwiseConfig& config() const { return config_; }

  // §4.2 sized actors; must be called before any rounds (same contract as
  // the testbed).
  void SetVertexSizes(const std::unordered_map<VertexId, double>& sizes);

  // FNV-1a digest of the full assignment (vertex id, server) in dense-index
  // order plus the migration counter — the determinism tests pin these
  // against baked constants, which is only sound because the arena never
  // iterates an unordered container.
  uint64_t AssignmentDigest() const;

 private:
  struct PlanRef {
    ServerId peer = kNoServer;
    double total_score = 0.0;
    uint32_t first = 0;  // index into s_pool_
    uint32_t count = 0;
  };

  double SizeOfIndex(int32_t idx) const {
    return vsize_.empty() ? 1.0 : vsize_[static_cast<size_t>(idx)];
  }
  // Pre-sizes every scratch buffer to its hard cap (shared by both
  // constructors).
  void InitScratch();
  void ApplyMoveIndex(int32_t idx, ServerId to);
  // Fills plans_ / s_pool_ with p's per-peer candidate plans, sorted by
  // (total_score desc, peer asc). Scratch: invalidated by the next
  // BuildPlans call, stable across ExchangeWithPeer calls.
  void BuildPlans(ServerId p);
  // Runs one exchange between p and plan.peer using the plan's candidates
  // as S. With filter_stale, candidates no longer located at p are dropped
  // first (k-way rounds after a prior exchange moved them). Returns
  // vertices moved (both directions).
  int ExchangeWithPeer(ServerId p, const PlanRef& plan, bool filter_stale);
  // q's counter-candidate set toward p (the testbed's "plan toward p"
  // restricted to the one peer that matters); fills t_pool_ / t_ptrs_.
  void BuildCandidatesToward(ServerId q, ServerId p);
  void FillCandidate(int32_t idx, double score, Candidate* c) const;
  Candidate* AllocCandidate(std::vector<Candidate>* pool, size_t* used);
  void OfferTopK(std::vector<std::pair<double, VertexId>>* heap, VertexId v, double score) const;

  const CsrGraph* graph_;
  int num_servers_;
  PairwiseConfig config_;
  Rng rng_;
  int32_t max_degree_ = 0;

  std::vector<ServerId> loc_;       // per dense index
  std::vector<double> vsize_;       // empty: uniform 1.0
  std::vector<int64_t> counts_;     // vertices per server
  std::vector<double> size_sums_;   // total size per server
  double cut_cost_ = 0.0;
  int64_t total_migrations_ = 0;
  bool planning_only_ = false;  // assignment-adopting ctor; no moves allowed

  // Recycled scratch (capacities survive across rounds; steady-state rounds
  // allocate nothing).
  std::vector<std::pair<ServerId, double>> remote_weight_;
  // Per-peer top-k min-heaps of (score, vertex) — same admission and
  // eviction rule as the reference TopK, then sorted descending in place to
  // reproduce its drain order.
  std::vector<std::vector<std::pair<double, VertexId>>> topk_;
  std::vector<std::pair<double, VertexId>> t_topk_;
  std::vector<Candidate> s_pool_;
  size_t s_used_ = 0;
  std::vector<Candidate> t_pool_;
  size_t t_used_ = 0;
  std::vector<PlanRef> plans_;
  std::vector<const Candidate*> s_ptrs_;
  std::vector<const Candidate*> t_ptrs_;
  ExchangeHeap s_heap_;
  ExchangeHeap t_heap_;
  std::vector<VertexId> accepted_;
  std::vector<const Candidate*> counter_;
  // Unilateral sweep scratch.
  std::vector<std::pair<int32_t, ServerId>> planned_moves_;
  std::vector<int64_t> assumed_counts_;
};

}  // namespace actop

#endif  // SRC_CORE_REPARTITION_ARENA_H_
