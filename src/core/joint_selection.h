// The greedy joint subset selection at the heart of DecideExchange (step 3
// of Alg. 1), factored out so the map-based reference path
// (pairwise_partition.cc) and the flat CSR arena data plane
// (repartition_arena.cc) run the *same* loop over different heap/scratch
// machinery. Byte-identical decisions between the two implementations reduce
// to feeding this template identical candidate sets in identical order.
//
// `Heap` must expose the ExchangeHeap interface: PeekTop, Remove, Update,
// CandidateOf, slots(), and static Live(slot). `accept_s(v, candidate)` is
// called for every vertex taken from S (p -> q), `accept_t` for every vertex
// taken from T (q -> p), in pick order.

#ifndef SRC_CORE_JOINT_SELECTION_H_
#define SRC_CORE_JOINT_SELECTION_H_

#include "src/common/ids.h"
#include "src/core/pairwise_partition.h"

namespace actop {

// Weight of the edge between two offered candidates, if either side's
// shipped adjacency records it (the graph is symmetric, but samplers may
// have seen only one direction).
inline double EdgeWeightBetween(const Candidate& a, const Candidate& b) {
  if (auto it = a.edges.find(b.vertex); it != a.edges.end()) {
    return it->second.weight;
  }
  if (auto it = b.edges.find(a.vertex); it != b.edges.end()) {
    return it->second.weight;
  }
  return 0.0;
}

template <typename Heap, typename AcceptS, typename AcceptT>
void RunJointSelection(Heap& s_heap, Heap& t_heap, const PairwiseConfig& config, double size_p,
                       double size_q, AcceptS&& accept_s, AcceptT&& accept_t) {
  while (true) {
    VertexId sv = 0;
    VertexId tv = 0;
    double s_score = 0.0;
    double t_score = 0.0;
    const bool has_s = s_heap.PeekTop(&sv, &s_score) && s_score > config.min_score;
    const bool has_t = t_heap.PeekTop(&tv, &t_score) && t_score > config.min_score;
    if (!has_s && !has_t) {
      break;
    }

    // Applies one move (from_s: p->q, else q->p) and propagates score
    // updates: after `moved` switches sides, an edge (moved, u) flips its
    // contribution to u's transfer score by 2w — same-side candidates gain,
    // opposite-side candidates lose.
    auto apply_move = [&](bool from_s) {
      Heap& from = from_s ? s_heap : t_heap;
      const VertexId moved = from_s ? sv : tv;
      const Candidate* moved_candidate = from.CandidateOf(moved);
      const double moved_size = moved_candidate->size;
      if (from_s) {
        accept_s(moved, moved_candidate);
        s_heap.Remove(moved);
        size_p -= moved_size;
        size_q += moved_size;
      } else {
        accept_t(moved, moved_candidate);
        t_heap.Remove(moved);
        size_p += moved_size;
        size_q -= moved_size;
      }
      for (const auto& slot : s_heap.slots()) {
        if (slot.vertex == moved || !Heap::Live(slot)) {
          continue;
        }
        const double w = EdgeWeightBetween(*slot.candidate, *moved_candidate);
        if (w > 0.0) {
          s_heap.Update(slot.vertex, from_s ? +2.0 * w : -2.0 * w);
        }
      }
      for (const auto& slot : t_heap.slots()) {
        if (slot.vertex == moved || !Heap::Live(slot)) {
          continue;
        }
        const double w = EdgeWeightBetween(*slot.candidate, *moved_candidate);
        if (w > 0.0) {
          t_heap.Update(slot.vertex, from_s ? -2.0 * w : +2.0 * w);
        }
      }
    };

    // Prefer the globally highest score; fall back to the other heap when the
    // balance constraint blocks the preferred move; as a last resort pair one
    // move from each side (net size change zero) so tight balance budgets do
    // not freeze profitable swaps.
    bool take_s;
    if (has_s && has_t) {
      take_s = s_score >= t_score;
    } else {
      take_s = has_s;
    }
    const bool s_fits =
        has_s && config.BalanceAllows(size_p, size_q, s_heap.CandidateOf(sv)->size);
    const bool t_fits =
        has_t && config.BalanceAllows(size_q, size_p, t_heap.CandidateOf(tv)->size);
    if (take_s && !s_fits) {
      take_s = false;
    }
    if (!take_s && !t_fits) {
      if (s_fits) {
        take_s = true;
      } else if (has_s && has_t &&
                 (s_heap.CandidateOf(sv)->size >= t_heap.CandidateOf(tv)->size
                      ? config.BalanceAllows(size_p, size_q, s_heap.CandidateOf(sv)->size -
                                                                 t_heap.CandidateOf(tv)->size)
                      : config.BalanceAllows(size_q, size_p, t_heap.CandidateOf(tv)->size -
                                                                 s_heap.CandidateOf(sv)->size))) {
        // A paired swap only shifts the size difference; balance must allow
        // that net shift (always true for uniform actors).
        // Paired swap (net size change zero). Evaluate the pair BEFORE
        // applying anything: after the first endpoint switches sides, the
        // second's score drops by 2·w(sv, tv) if they share an edge. Both
        // halves must remain individually profitable so the swap strictly
        // reduces cost and the balance invariant holds.
        const Candidate* s_cand = s_heap.CandidateOf(sv);
        const Candidate* t_cand = t_heap.CandidateOf(tv);
        const double cross = EdgeWeightBetween(*s_cand, *t_cand);
        const double adj_s = s_score - 2.0 * cross;
        const double adj_t = t_score - 2.0 * cross;
        const bool s_first = s_score >= t_score;
        const double second_score = s_first ? adj_t : adj_s;
        if (second_score <= config.min_score) {
          break;  // no jointly profitable swap available
        }
        apply_move(s_first);
        apply_move(!s_first);
        continue;
      } else {
        break;  // neither side can move without violating balance
      }
    }
    apply_move(take_s);
  }
}

}  // namespace actop

#endif  // SRC_CORE_JOINT_SELECTION_H_
