// Flat CSR (compressed sparse row) snapshot of a WeightedGraph.
//
// The map-based WeightedGraph pays a hash node per vertex and a pooled node
// per edge; at a million vertices that is gigabytes of pointer-chased slabs
// and every planning pass walks them in hash order. This freezes the graph
// into four arrays — sorted vertex ids, an offsets array, and neighbor/
// weight slabs — so a full planning sweep is one linear scan and a vertex's
// adjacency is a contiguous span.
//
// Layout invariants the arena's byte-identity proof leans on:
//   * ids are ascending, so "dense index order" == "ascending vertex id
//     order" — the canonical visit order the ordered planning entry points
//     (BuildPeerPlansOrdered) pin.
//   * each adjacency span is sorted by neighbor index (equivalently id), so
//     per-vertex weight sums accumulate in a canonical order independent of
//     any hash map's bucket layout.
//
// The structure is immutable: repartitioners move vertices, they never edit
// edges mid-run. Rebuild from the mutable WeightedGraph when the graph
// changes.

#ifndef SRC_CORE_CSR_GRAPH_H_
#define SRC_CORE_CSR_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/check.h"
#include "src/common/flat_hash_map.h"
#include "src/common/ids.h"

namespace actop {

class WeightedGraph;
struct LocalGraphView;

// One directed sampled edge, the input unit of RebuildFromEdgeList.
struct CsrEdge {
  VertexId src = 0;
  VertexId dst = 0;
  double weight = 0.0;
};

class CsrGraph {
 public:
  static constexpr int32_t kNoIndex = -1;

  // Freezes `g` (including isolated vertices, which still occupy balance
  // slots during partitioning).
  static CsrGraph FromWeighted(const WeightedGraph& g);

  // Freezes an agent-sampled LocalGraphView (pairwise_partition.h): the
  // vertex set is the view's local vertices plus every referenced neighbor,
  // but only local vertices carry adjacency spans — remote endpoints get
  // empty spans. The result is therefore NOT symmetric: it supports the
  // arena's planning scans (which only read spans of the initiating
  // server's vertices) and nothing that maintains cut cost.
  static CsrGraph FromLocalView(const LocalGraphView& view);

  // In-place variant of FromLocalView over a raw directed edge list, reusing
  // every internal buffer — the runtime PartitionAgent refreezes its sampled
  // view each round through this without allocating in steady state. `edges`
  // must be sorted by (src, dst) with unique pairs; the vertex set is
  // sources plus destinations, and only sources carry spans (same
  // asymmetric contract as FromLocalView).
  void RebuildFromEdgeList(const std::vector<CsrEdge>& edges);

  int32_t num_vertices() const { return static_cast<int32_t>(ids_.size()); }
  // Directed edge slots (2x the undirected edge count).
  size_t num_edge_slots() const { return nbr_.size(); }

  VertexId IdOf(int32_t idx) const { return ids_[static_cast<size_t>(idx)]; }
  // Dense index of `v`, or kNoIndex if the vertex is not in the graph.
  int32_t IndexOf(VertexId v) const {
    const int32_t* found = index_.Find(v);
    return found == nullptr ? kNoIndex : *found;
  }

  size_t DegreeOf(int32_t idx) const {
    return offsets_[static_cast<size_t>(idx) + 1] - offsets_[static_cast<size_t>(idx)];
  }

  // Adjacency span of vertex `idx`: neighbor dense indices and weights,
  // parallel arrays sorted by neighbor index.
  size_t EdgeBegin(int32_t idx) const { return offsets_[static_cast<size_t>(idx)]; }
  size_t EdgeEnd(int32_t idx) const { return offsets_[static_cast<size_t>(idx) + 1]; }
  int32_t EdgeNeighbor(size_t e) const { return nbr_[e]; }
  double EdgeWeight(size_t e) const { return weight_[e]; }

 private:
  std::vector<VertexId> ids_;      // ascending
  FlatHashMap<VertexId, int32_t> index_;
  std::vector<size_t> offsets_;    // n + 1 entries
  std::vector<int32_t> nbr_;       // neighbor dense index per edge slot
  std::vector<double> weight_;     // weight per edge slot
};

}  // namespace actop

#endif  // SRC_CORE_CSR_GRAPH_H_
