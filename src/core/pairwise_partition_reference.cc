#include "src/core/pairwise_partition_reference.h"

#include <algorithm>
#include <functional>
#include <queue>
#include <unordered_map>
#include <utility>

#include "src/common/check.h"

namespace actop::seedref {

namespace {

// Seed TopK: keeps the k highest-scoring candidates using a min-heap.
class TopK {
 public:
  explicit TopK(size_t k) : k_(k) {}

  void Offer(VertexId v, double score) {
    if (heap_.size() < k_) {
      heap_.emplace(score, v);
      return;
    }
    if (score > heap_.top().first) {
      heap_.pop();
      heap_.emplace(score, v);
    }
  }

  std::vector<std::pair<VertexId, double>> Drain() {
    std::vector<std::pair<VertexId, double>> out;
    out.reserve(heap_.size());
    while (!heap_.empty()) {
      out.emplace_back(heap_.top().second, heap_.top().first);
      heap_.pop();
    }
    std::reverse(out.begin(), out.end());
    return out;
  }

 private:
  size_t k_;
  std::priority_queue<std::pair<double, VertexId>, std::vector<std::pair<double, VertexId>>,
                      std::greater<>>
      heap_;
};

Candidate MakeCandidate(const LocalGraphView& view, VertexId v, double score) {
  Candidate c;
  c.vertex = v;
  c.score = score;
  c.size = view.SizeOf(v);
  const auto it = view.adjacency.find(v);
  ACTOP_CHECK(it != view.adjacency.end());
  std::vector<CandidateAdjacency::value_type> edges;
  edges.reserve(it->second.size());
  for (const auto& [u, w] : it->second) {
    edges.emplace_back(u, CandidateEdge{w, view.LocationOf(u)});
  }
  c.edges.bulk_assign(std::move(edges));
  return c;
}

// Seed greedy-selection state: lazy-deletion max-heap + live-score and
// payload maps.
struct GreedyHeap {
  std::priority_queue<std::pair<double, VertexId>> heap;
  std::unordered_map<VertexId, double> current;
  std::unordered_map<VertexId, const Candidate*> candidates;

  void Init(const std::vector<Candidate>& cands,
            const std::function<double(const Candidate&)>& score_fn) {
    for (const Candidate& c : cands) {
      const double s = score_fn(c);
      current[c.vertex] = s;
      candidates[c.vertex] = &c;
      heap.emplace(s, c.vertex);
    }
  }

  bool PeekTop(VertexId* v, double* score) {
    while (!heap.empty()) {
      const auto [s, vertex] = heap.top();
      auto it = current.find(vertex);
      if (it == current.end() || it->second != s) {
        heap.pop();
        continue;
      }
      *v = vertex;
      *score = s;
      return true;
    }
    return false;
  }

  void Remove(VertexId v) { current.erase(v); }

  void Update(VertexId v, double delta) {
    auto it = current.find(v);
    if (it == current.end()) {
      return;
    }
    it->second += delta;
    heap.emplace(it->second, v);
  }
};

double EdgeWeightBetween(const Candidate& a, const Candidate& b) {
  if (auto it = a.edges.find(b.vertex); it != a.edges.end()) {
    return it->second.weight;
  }
  if (auto it = b.edges.find(a.vertex); it != b.edges.end()) {
    return it->second.weight;
  }
  return 0.0;
}

}  // namespace

std::vector<PeerPlan> BuildPeerPlans(const LocalGraphView& view, const PairwiseConfig& config) {
  std::unordered_map<ServerId, TopK> per_peer;
  for (const auto& [v, adj] : view.adjacency) {
    double local_weight = 0.0;
    // Seed hot-path structure under test: a fresh hash map per vertex.
    std::unordered_map<ServerId, double> remote_weight;
    for (const auto& [u, w] : adj) {
      const ServerId loc = view.LocationOf(u);
      if (loc == view.self) {
        local_weight += w;
      } else if (loc != kNoServer) {
        remote_weight[loc] += w;
      }
    }
    for (const auto& [server, weight] : remote_weight) {
      const double score =
          weight - local_weight - config.migration_cost_weight * view.SizeOf(v);
      if (score > config.min_score) {
        per_peer.try_emplace(server, config.candidate_set_size).first->second.Offer(v, score);
      }
    }
  }

  std::vector<PeerPlan> plans;
  plans.reserve(per_peer.size());
  for (auto& [server, topk] : per_peer) {
    PeerPlan plan;
    plan.peer = server;
    double total_size = 0.0;
    for (const auto& [v, score] : topk.Drain()) {
      const double size = view.SizeOf(v);
      if (config.max_candidate_total_size > 0.0 &&
          total_size + size > config.max_candidate_total_size && !plan.candidates.empty()) {
        break;
      }
      total_size += size;
      plan.total_score += score;
      plan.candidates.push_back(MakeCandidate(view, v, score));
    }
    plans.push_back(std::move(plan));
  }
  std::sort(plans.begin(), plans.end(), [](const PeerPlan& a, const PeerPlan& b) {
    if (a.total_score != b.total_score) {
      return a.total_score > b.total_score;
    }
    return a.peer < b.peer;
  });
  return plans;
}

ExchangeDecision DecideExchange(const LocalGraphView& view, const ExchangeRequest& request,
                                const PairwiseConfig& config) {
  ExchangeDecision decision;
  const ServerId p = request.from;
  const ServerId q = view.self;
  ACTOP_CHECK(p != q);

  std::vector<Candidate> t_candidates;
  for (const PeerPlan& plan : seedref::BuildPeerPlans(view, config)) {
    if (plan.peer == p) {
      t_candidates = plan.candidates;
      break;
    }
  }

  auto score_s = [&](const Candidate& c) {
    double gain = -config.migration_cost_weight * c.size;
    for (const auto& [u, edge] : c.edges) {
      ServerId loc = view.LocationOf(u);
      if (loc == kNoServer) {
        loc = edge.location_hint;
      }
      if (loc == q) {
        gain += edge.weight;
      } else if (loc == p) {
        gain -= edge.weight;
      }
    }
    return gain;
  };
  auto score_t = [&](const Candidate& c) { return c.score; };

  GreedyHeap s_heap;
  GreedyHeap t_heap;
  s_heap.Init(request.candidates, score_s);
  t_heap.Init(t_candidates, score_t);

  double size_p = request.from_total_size >= 0.0
                      ? request.from_total_size
                      : static_cast<double>(request.from_num_vertices);
  double size_q = view.TotalSize();

  while (true) {
    VertexId sv = 0;
    VertexId tv = 0;
    double s_score = 0.0;
    double t_score = 0.0;
    const bool has_s = s_heap.PeekTop(&sv, &s_score) && s_score > config.min_score;
    const bool has_t = t_heap.PeekTop(&tv, &t_score) && t_score > config.min_score;
    if (!has_s && !has_t) {
      break;
    }

    auto apply_move = [&](bool from_s) {
      GreedyHeap& from = from_s ? s_heap : t_heap;
      const VertexId moved = from_s ? sv : tv;
      const Candidate* moved_candidate = from.candidates.at(moved);
      const double moved_size = moved_candidate->size;
      if (from_s) {
        decision.accepted.push_back(moved);
        s_heap.Remove(moved);
        size_p -= moved_size;
        size_q += moved_size;
      } else {
        decision.counter_offer.push_back(*moved_candidate);
        t_heap.Remove(moved);
        size_p += moved_size;
        size_q -= moved_size;
      }
      for (auto& [v, cand] : s_heap.candidates) {
        if (v == moved || !s_heap.current.contains(v)) {
          continue;
        }
        const double w = EdgeWeightBetween(*cand, *moved_candidate);
        if (w > 0.0) {
          s_heap.Update(v, from_s ? +2.0 * w : -2.0 * w);
        }
      }
      for (auto& [v, cand] : t_heap.candidates) {
        if (v == moved || !t_heap.current.contains(v)) {
          continue;
        }
        const double w = EdgeWeightBetween(*cand, *moved_candidate);
        if (w > 0.0) {
          t_heap.Update(v, from_s ? -2.0 * w : +2.0 * w);
        }
      }
    };

    bool take_s;
    if (has_s && has_t) {
      take_s = s_score >= t_score;
    } else {
      take_s = has_s;
    }
    const bool s_fits =
        has_s && config.BalanceAllows(size_p, size_q, s_heap.candidates.at(sv)->size);
    const bool t_fits =
        has_t && config.BalanceAllows(size_q, size_p, t_heap.candidates.at(tv)->size);
    if (take_s && !s_fits) {
      take_s = false;
    }
    if (!take_s && !t_fits) {
      if (s_fits) {
        take_s = true;
      } else if (has_s && has_t &&
                 (s_heap.candidates.at(sv)->size >= t_heap.candidates.at(tv)->size
                      ? config.BalanceAllows(size_p, size_q, s_heap.candidates.at(sv)->size -
                                                                 t_heap.candidates.at(tv)->size)
                      : config.BalanceAllows(size_q, size_p, t_heap.candidates.at(tv)->size -
                                                                 s_heap.candidates.at(sv)->size))) {
        const Candidate* s_cand = s_heap.candidates.at(sv);
        const Candidate* t_cand = t_heap.candidates.at(tv);
        const double cross = EdgeWeightBetween(*s_cand, *t_cand);
        const double adj_s = s_score - 2.0 * cross;
        const double adj_t = t_score - 2.0 * cross;
        const bool s_first = s_score >= t_score;
        const double second_score = s_first ? adj_t : adj_s;
        if (second_score <= config.min_score) {
          break;
        }
        apply_move(s_first);
        apply_move(!s_first);
        continue;
      } else {
        break;
      }
    }
    apply_move(take_s);
  }
  return decision;
}

}  // namespace actop::seedref
