#include "src/core/partition_testbed.h"

#include <algorithm>
#include <cstdlib>

#include "src/common/check.h"

namespace actop {

void WeightedGraph::AddVertex(VertexId v) { adjacency_.try_emplace(v); }

void WeightedGraph::AddEdge(VertexId a, VertexId b, double w) {
  ACTOP_CHECK(a != b);
  ACTOP_CHECK(w > 0.0);
  if (!adjacency_[a].contains(b)) {
    num_edges_++;
  }
  adjacency_[a][b] += w;
  adjacency_[b][a] += w;
}

const VertexAdjacency& WeightedGraph::NeighborsOf(VertexId v) const {
  static const VertexAdjacency kEmpty;
  auto it = adjacency_.find(v);
  return it == adjacency_.end() ? kEmpty : it->second;
}

std::vector<VertexId> WeightedGraph::Vertices() const {
  std::vector<VertexId> out;
  out.reserve(adjacency_.size());
  for (const auto& [v, adj] : adjacency_) {
    out.push_back(v);
  }
  std::sort(out.begin(), out.end());  // deterministic iteration for callers
  return out;
}

WeightedGraph MakeClusteredGraph(int clusters, int cluster_size, double intra_weight,
                                 int extra_edges, double inter_weight, Rng* rng) {
  ACTOP_CHECK(clusters >= 1);
  ACTOP_CHECK(cluster_size >= 2);
  WeightedGraph g;
  const int n = clusters * cluster_size;
  for (int c = 0; c < clusters; c++) {
    const int base = c * cluster_size + 1;  // vertex ids start at 1
    for (int i = 0; i < cluster_size; i++) {
      for (int j = i + 1; j < cluster_size; j++) {
        g.AddEdge(static_cast<VertexId>(base + i), static_cast<VertexId>(base + j), intra_weight);
      }
    }
  }
  for (int e = 0; e < extra_edges; e++) {
    const auto a = static_cast<VertexId>(rng->NextInt(1, n));
    auto b = static_cast<VertexId>(rng->NextInt(1, n));
    while (b == a) {
      b = static_cast<VertexId>(rng->NextInt(1, n));
    }
    g.AddEdge(a, b, inter_weight);
  }
  return g;
}

WeightedGraph MakeChurnedClusteredGraph(int clusters, int cluster_size, double intra_weight,
                                        double churn_fraction, Rng* rng) {
  ACTOP_CHECK(clusters >= 2);
  ACTOP_CHECK(churn_fraction >= 0.0 && churn_fraction <= 1.0);
  WeightedGraph g = MakeClusteredGraph(clusters, cluster_size, intra_weight,
                                       /*extra_edges=*/0, /*inter_weight=*/intra_weight, rng);
  const int n = clusters * cluster_size;
  const int churned = static_cast<int>(churn_fraction * static_cast<double>(n));
  const int new_edges = cluster_size / 2;
  for (int i = 0; i < churned; i++) {
    const auto v = static_cast<VertexId>(rng->NextInt(1, n));
    const int home = static_cast<int>((v - 1) / static_cast<VertexId>(cluster_size));
    int target = rng->NextInt(0, clusters - 1);
    if (target == home) {
      target = (target + 1) % clusters;
    }
    const int base = target * cluster_size + 1;
    for (int e = 0; e < new_edges; e++) {
      const auto u = static_cast<VertexId>(base + rng->NextInt(0, cluster_size - 1));
      if (u != v) {
        g.AddEdge(v, u, intra_weight / 2.0);
      }
    }
  }
  return g;
}

WeightedGraph MakeRandomGraph(int vertices, int edges, double max_weight, Rng* rng) {
  ACTOP_CHECK(vertices >= 2);
  WeightedGraph g;
  for (int v = 1; v <= vertices; v++) {
    g.AddVertex(static_cast<VertexId>(v));
  }
  for (int e = 0; e < edges; e++) {
    const auto a = static_cast<VertexId>(rng->NextInt(1, vertices));
    auto b = static_cast<VertexId>(rng->NextInt(1, vertices));
    while (b == a) {
      b = static_cast<VertexId>(rng->NextInt(1, vertices));
    }
    g.AddEdge(a, b, rng->NextDouble(0.0, max_weight) + 1e-3);
  }
  return g;
}

PartitionTestbed::PartitionTestbed(const WeightedGraph* graph, int servers, PairwiseConfig config,
                                   uint64_t seed)
    : graph_(graph), num_servers_(servers), config_(config), rng_(seed) {
  ACTOP_CHECK(graph != nullptr);
  ACTOP_CHECK(servers >= 2);
  members_.resize(static_cast<size_t>(servers));
  sizes_.assign(static_cast<size_t>(servers), 0);
  // Balanced random placement: shuffle, then deal round-robin. This models
  // the Orleans default (uniform placement keeps per-server actor counts
  // essentially equal) and starts inside the balance band.
  std::vector<VertexId> vertices = graph_->Vertices();
  for (size_t i = vertices.size(); i > 1; i--) {
    std::swap(vertices[i - 1], vertices[rng_.NextBounded(i)]);
  }
  for (size_t i = 0; i < vertices.size(); i++) {
    const auto server = static_cast<ServerId>(i % static_cast<size_t>(servers));
    locations_.emplace(vertices[i], server);
    members_[static_cast<size_t>(server)].insert(vertices[i]);
    sizes_[static_cast<size_t>(server)]++;
  }
  size_sums_.assign(static_cast<size_t>(servers), 0.0);
  for (int s = 0; s < servers; s++) {
    size_sums_[static_cast<size_t>(s)] = static_cast<double>(sizes_[static_cast<size_t>(s)]);
  }
  if (config_.target_size < 0.0) {
    config_.target_size =
        static_cast<double>(vertices.size()) / static_cast<double>(servers);
  }
}

double PartitionTestbed::SizeOf(VertexId v) const {
  auto it = vertex_sizes_.find(v);
  return it == vertex_sizes_.end() ? 1.0 : it->second;
}

void PartitionTestbed::SetVertexSizes(std::unordered_map<VertexId, double> sizes) {
  ACTOP_CHECK(total_migrations_ == 0);
  vertex_sizes_ = std::move(sizes);
  double total = 0.0;
  for (int s = 0; s < num_servers_; s++) {
    double sum = 0.0;
    for (VertexId v : members_[static_cast<size_t>(s)]) {
      sum += SizeOf(v);
    }
    size_sums_[static_cast<size_t>(s)] = sum;
    total += sum;
  }
  // Re-anchor the balance band to mean size per server.
  config_.target_size = total / static_cast<double>(num_servers_);
}

double PartitionTestbed::MaxSizeImbalance() const {
  const auto [mn, mx] = std::minmax_element(size_sums_.begin(), size_sums_.end());
  return *mx - *mn;
}

LocalGraphView PartitionTestbed::BuildView(ServerId p) const {
  LocalGraphView view;
  view.self = p;
  view.num_local_vertices = sizes_[static_cast<size_t>(p)];
  view.total_local_size = size_sums_[static_cast<size_t>(p)];
  for (VertexId v : members_[static_cast<size_t>(p)]) {
    const VertexAdjacency& adj = graph_->NeighborsOf(v);
    if (adj.empty()) {
      continue;
    }
    view.adjacency.emplace(v, adj);
    if (!vertex_sizes_.empty()) {
      view.vertex_size.emplace(v, SizeOf(v));
    }
    for (const auto& [u, w] : adj) {
      view.location.emplace(u, locations_.at(u));
    }
  }
  return view;
}

std::vector<VertexId> PartitionTestbed::SampledMembers(ServerId p) const {
  std::vector<VertexId> order;
  order.reserve(members_[static_cast<size_t>(p)].size());
  for (VertexId v : members_[static_cast<size_t>(p)]) {
    if (!graph_->NeighborsOf(v).empty()) {
      order.push_back(v);
    }
  }
  return order;
}

void PartitionTestbed::ApplyMove(VertexId v, ServerId to) {
  const ServerId from = locations_.at(v);
  ACTOP_CHECK(from != to);
  members_[static_cast<size_t>(from)].erase(v);
  members_[static_cast<size_t>(to)].insert(v);
  sizes_[static_cast<size_t>(from)]--;
  sizes_[static_cast<size_t>(to)]++;
  size_sums_[static_cast<size_t>(from)] -= SizeOf(v);
  size_sums_[static_cast<size_t>(to)] += SizeOf(v);
  locations_[v] = to;
  total_migrations_++;
}

int PartitionTestbed::RunRound(ServerId p) {
  const LocalGraphView p_view = BuildView(p);
  std::vector<PeerPlan> plans = BuildPeerPlansOrdered(p_view, config_, SampledMembers(p));
  for (const PeerPlan& plan : plans) {
    ExchangeRequest request;
    request.from = p;
    request.from_num_vertices = sizes_[static_cast<size_t>(p)];
    request.from_total_size = size_sums_[static_cast<size_t>(p)];
    request.candidates = plan.candidates;
    const LocalGraphView q_view = BuildView(plan.peer);
    ExchangeDecision decision =
        DecideExchangeOrdered(q_view, request, config_, SampledMembers(plan.peer));
    if (decision.rejected) {
      continue;
    }
    if (decision.accepted.empty() && decision.counter_offer.empty()) {
      continue;  // nothing profitable with this peer; try the next one
    }
    for (VertexId v : decision.accepted) {
      ApplyMove(v, plan.peer);
    }
    for (const Candidate& c : decision.counter_offer) {
      ApplyMove(c.vertex, p);
    }
    return static_cast<int>(decision.accepted.size() + decision.counter_offer.size());
  }
  return 0;
}

int PartitionTestbed::RunToConvergence(int max_sweeps) {
  for (int sweep = 1; sweep <= max_sweeps; sweep++) {
    int moved = 0;
    for (ServerId p = 0; p < num_servers_; p++) {
      moved += RunRound(p);
    }
    if (moved == 0) {
      return sweep;
    }
  }
  return max_sweeps;
}

int PartitionTestbed::RunUnilateralSweep() {
  // Snapshot phase: every server plans against the same state.
  struct PlannedMove {
    VertexId vertex;
    ServerId to;
  };
  std::vector<PlannedMove> moves;
  const std::vector<int64_t> snapshot_sizes = sizes_;
  for (ServerId p = 0; p < num_servers_; p++) {
    const LocalGraphView view = BuildView(p);
    std::vector<int64_t> assumed_sizes = snapshot_sizes;
    for (const PeerPlan& plan : BuildPeerPlansOrdered(view, config_, SampledMembers(p))) {
      for (const Candidate& c : plan.candidates) {
        const auto from = static_cast<size_t>(p);
        const auto to = static_cast<size_t>(plan.peer);
        if (!config_.BalanceAllows(static_cast<double>(assumed_sizes[from]),
                                   static_cast<double>(assumed_sizes[to]))) {
          continue;
        }
        assumed_sizes[from]--;
        assumed_sizes[to]++;
        moves.push_back(PlannedMove{c.vertex, plan.peer});
      }
    }
  }
  // Apply phase: races happen here — two servers may have planned around the
  // same heavy edge and now swap its endpoints past each other.
  int applied = 0;
  for (const PlannedMove& m : moves) {
    if (locations_.at(m.vertex) == m.to) {
      continue;
    }
    ApplyMove(m.vertex, m.to);
    applied++;
  }
  return applied;
}

double PartitionTestbed::Cost() const { return CutCost(graph_->adjacency(), locations_); }

std::vector<int64_t> PartitionTestbed::ServerSizes() const { return sizes_; }

int64_t PartitionTestbed::MaxImbalance() const {
  const auto [min_it, max_it] = std::minmax_element(sizes_.begin(), sizes_.end());
  return *max_it - *min_it;
}

bool PartitionTestbed::IsLocallyOptimal() const {
  for (const auto& [v, loc] : locations_) {
    const VertexAdjacency& adj = graph_->NeighborsOf(v);
    if (adj.empty()) {
      continue;
    }
    double local_weight = 0.0;
    std::unordered_map<ServerId, double> remote_weight;
    for (const auto& [u, w] : adj) {
      const ServerId u_loc = locations_.at(u);
      if (u_loc == loc) {
        local_weight += w;
      } else {
        remote_weight[u_loc] += w;
      }
    }
    for (const auto& [q, weight] : remote_weight) {
      if (weight - local_weight - config_.migration_cost_weight * SizeOf(v) <=
          config_.min_score) {
        continue;
      }
      // Positive transfer score: only acceptable if balance blocks the move.
      const double sp = size_sums_[static_cast<size_t>(loc)];
      const double sq = size_sums_[static_cast<size_t>(q)];
      if (config_.BalanceAllows(sp, sq, SizeOf(v))) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace actop
