#include "src/core/streaming_partitioner.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace actop {

StreamingPartitioner::StreamingPartitioner(int servers, int64_t expected_vertices,
                                           int64_t expected_edges,
                                           StreamingPartitionerConfig config)
    : servers_(servers),
      config_(config),
      capacity_(config.capacity_slack * static_cast<double>(expected_vertices) /
                static_cast<double>(servers)),
      rng_(config.seed) {
  ACTOP_CHECK(servers >= 1);
  ACTOP_CHECK(expected_vertices >= 1);
  ACTOP_CHECK(config.capacity_slack >= 1.0);
  sizes_.assign(static_cast<size_t>(servers), 0);
  neighbor_weight_.assign(static_cast<size_t>(servers), 0.0);
  // Fennel's α = m·k^(γ−1)/n^γ balances the edge and load terms.
  const double n = static_cast<double>(expected_vertices);
  const double m = std::max<double>(1.0, static_cast<double>(expected_edges));
  fennel_alpha_ = m * std::pow(static_cast<double>(servers), config.fennel_gamma - 1.0) /
                  std::pow(n, config.fennel_gamma);
}

ServerId StreamingPartitioner::LocationOf(VertexId v) const {
  auto it = assignment_.find(v);
  return it == assignment_.end() ? kNoServer : it->second;
}

double StreamingPartitioner::ScoreFor(ServerId s, double neighbor_weight) const {
  const auto load = static_cast<double>(sizes_[static_cast<size_t>(s)]);
  switch (config_.heuristic) {
    case StreamingHeuristic::kHashing:
      return 0.0;  // handled by the caller
    case StreamingHeuristic::kLinearDeterministicGreedy:
      return neighbor_weight * (1.0 - load / capacity_);
    case StreamingHeuristic::kFennel:
      return neighbor_weight - fennel_alpha_ * config_.fennel_gamma *
                                   std::pow(std::max(load, 1.0), config_.fennel_gamma - 1.0);
  }
  return 0.0;
}

ServerId StreamingPartitioner::Place(VertexId v, const VertexAdjacency& neighbors) {
  if (auto it = assignment_.find(v); it != assignment_.end()) {
    return it->second;
  }

  ServerId chosen = kNoServer;
  if (config_.heuristic == StreamingHeuristic::kHashing) {
    chosen = static_cast<ServerId>(rng_.NextBounded(static_cast<uint64_t>(servers_)));
  } else {
    // Weight of already-placed neighbors per part (member scratch; placement
    // math is unchanged, only the per-call allocation is gone).
    std::fill(neighbor_weight_.begin(), neighbor_weight_.end(), 0.0);
    for (const auto& [u, w] : neighbors) {
      const ServerId loc = LocationOf(u);
      if (loc != kNoServer) {
        neighbor_weight_[static_cast<size_t>(loc)] += w;
      }
    }
    double best = -1e300;
    for (ServerId s = 0; s < servers_; s++) {
      if (static_cast<double>(sizes_[static_cast<size_t>(s)]) >= capacity_) {
        continue;  // hard capacity bound
      }
      const double score = ScoreFor(s, neighbor_weight_[static_cast<size_t>(s)]);
      // Ties break toward the lighter part for stability.
      if (score > best ||
          (score == best && chosen != kNoServer &&
           sizes_[static_cast<size_t>(s)] < sizes_[static_cast<size_t>(chosen)])) {
        best = score;
        chosen = s;
      }
    }
    if (chosen == kNoServer) {
      // Everything at capacity (can happen when expected_vertices was under-
      // estimated): fall back to the lightest part.
      chosen = static_cast<ServerId>(
          std::min_element(sizes_.begin(), sizes_.end()) - sizes_.begin());
    }
  }
  assignment_.emplace(v, chosen);
  sizes_[static_cast<size_t>(chosen)]++;
  return chosen;
}

int64_t StreamingPartitioner::MaxImbalance() const {
  const auto [mn, mx] = std::minmax_element(sizes_.begin(), sizes_.end());
  return *mx - *mn;
}

}  // namespace actop
