// Space-Saving stream sampling (Metwally, Agrawal, El Abbadi — ICDT 2005).
//
// Each server applies this to its stream of observed communication edges to
// maintain a constant-size list of the heaviest edges (§4.3 of the paper):
// light edges never influence partitioning because only small candidate sets
// are exchanged, so only the top-k weights need to be tracked.
//
// Guarantees (classic Space-Saving): with capacity m after N observations,
// every key with true count > N/m is present, and every reported count
// over-estimates the true count by at most its recorded `error` <= N/m.

#ifndef SRC_CORE_SPACE_SAVING_H_
#define SRC_CORE_SPACE_SAVING_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "src/common/check.h"

namespace actop {

template <typename Key, typename Hash = std::hash<Key>>
class SpaceSaving {
 public:
  struct Entry {
    Key key;
    uint64_t count = 0;  // estimated count (upper bound on the true count)
    uint64_t error = 0;  // max over-estimation carried from the evicted key
  };

  explicit SpaceSaving(size_t capacity) : capacity_(capacity) { ACTOP_CHECK(capacity >= 1); }

  // Observes `key` with the given increment (e.g. message count or bytes).
  void Observe(const Key& key, uint64_t increment = 1) {
    total_ += increment;
    auto it = counters_.find(key);
    if (it != counters_.end()) {
      Detach(it->second.count, key);
      it->second.count += increment;
      Attach(it->second.count, key);
      return;
    }
    if (counters_.size() < capacity_) {
      counters_.emplace(key, Counter{increment, 0});
      Attach(increment, key);
      return;
    }
    // Evict the minimum-count key and inherit its count as error.
    auto min_bucket = buckets_.begin();
    ACTOP_CHECK(min_bucket != buckets_.end());
    const uint64_t min_count = min_bucket->first;
    const Key victim = min_bucket->second.back();
    Detach(min_count, victim);
    counters_.erase(victim);
    counters_.emplace(key, Counter{min_count + increment, min_count});
    Attach(min_count + increment, key);
  }

  // All tracked entries, unordered. Size <= capacity.
  std::vector<Entry> Entries() const {
    std::vector<Entry> out;
    out.reserve(counters_.size());
    for (const auto& [key, counter] : counters_) {
      out.push_back(Entry{key, counter.count, counter.error});
    }
    return out;
  }

  // Estimated count for a key (0 if not tracked).
  uint64_t EstimateCount(const Key& key) const {
    auto it = counters_.find(key);
    return it == counters_.end() ? 0 : it->second.count;
  }

  bool Contains(const Key& key) const { return counters_.contains(key); }

  // Total of all observed increments (N).
  uint64_t total_observed() const { return total_; }
  size_t size() const { return counters_.size(); }
  size_t capacity() const { return capacity_; }

  // Halves every counter (and error), dropping keys that reach zero. Called
  // periodically so that stale edges of a changing communication graph decay
  // instead of occupying capacity forever.
  void Decay() {
    buckets_.clear();
    total_ /= 2;
    for (auto it = counters_.begin(); it != counters_.end();) {
      it->second.count /= 2;
      it->second.error /= 2;
      if (it->second.count == 0) {
        it = counters_.erase(it);
      } else {
        Attach(it->second.count, it->first);
        ++it;
      }
    }
  }

  void Clear() {
    counters_.clear();
    buckets_.clear();
    total_ = 0;
  }

 private:
  struct Counter {
    uint64_t count;
    uint64_t error;
  };

  void Attach(uint64_t count, const Key& key) { buckets_[count].push_back(key); }

  void Detach(uint64_t count, const Key& key) {
    auto it = buckets_.find(count);
    ACTOP_CHECK(it != buckets_.end());
    auto& vec = it->second;
    for (size_t i = 0; i < vec.size(); i++) {
      if (vec[i] == key) {
        vec[i] = vec.back();
        vec.pop_back();
        break;
      }
    }
    if (vec.empty()) {
      buckets_.erase(it);
    }
  }

  size_t capacity_;
  uint64_t total_ = 0;
  std::unordered_map<Key, Counter, Hash> counters_;
  // count -> keys with that count; begin() is the minimum (eviction victim).
  std::map<uint64_t, std::vector<Key>> buckets_;
};

}  // namespace actop

#endif  // SRC_CORE_SPACE_SAVING_H_
