// Space-Saving stream sampling (Metwally, Agrawal, El Abbadi — ICDT 2005),
// backed by the classic Stream-Summary structure from the same paper.
//
// Each server applies this to its stream of observed communication edges to
// maintain a constant-size list of the heaviest edges (§4.3 of the paper):
// light edges never influence partitioning because only small candidate sets
// are exchanged, so only the top-k weights need to be tracked.
//
// Guarantees (classic Space-Saving): with capacity m after N observations,
// every key with true count > N/m is present, and every reported count
// over-estimates the true count by at most its recorded `error` <= N/m.
//
// Structure: counter nodes live in an index-stable slab (`nodes_`), a
// FlatHashMap maps key -> slab slot, and nodes with equal count are chained
// into per-count buckets that themselves form an intrusive doubly-linked
// list ordered by ascending count (`min_bucket_` is the head). A unit
// increment moves a node at most one bucket forward and min-eviction pops
// the tail of the head bucket, so Observe is O(1) for unit increments
// (O(#distinct-counts-skipped) for weighted ones) and allocation-free once
// the slabs are warm. Decay() halves counts with a single in-place relink
// pass — monotone halving keeps the bucket chain sorted — instead of the
// seed's full std::map rebuild.
//
// Decision compatibility with the seed implementation is load-bearing for
// deterministic replay: the seed kept each bucket as a vector, attached with
// push_back, detached with swap-remove (vec[i] = vec.back(); pop_back()) and
// evicted vec.back() of the minimum bucket. The intrusive list reproduces
// that order exactly — Attach appends at the tail, Detach pops the tail and,
// if the popped node isn't the one being detached, splices it into the
// detached node's former position, and the eviction victim is the tail of
// the minimum bucket. tests/core/space_saving_fuzz_test.cc pins this down
// with per-operation digests against goldens from the seed binary and
// differentially against space_saving_reference.h.

#ifndef SRC_CORE_SPACE_SAVING_H_
#define SRC_CORE_SPACE_SAVING_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/common/check.h"
#include "src/common/flat_hash_map.h"

namespace actop {

template <typename Key, typename Hash = std::hash<Key>>
class SpaceSaving {
 public:
  struct Entry {
    Key key;
    uint64_t count = 0;  // estimated count (upper bound on the true count)
    uint64_t error = 0;  // max over-estimation carried from the evicted key
  };

  explicit SpaceSaving(size_t capacity) : capacity_(capacity) { ACTOP_CHECK(capacity >= 1); }

  // Observes `key` with the given increment (e.g. message count or bytes).
  void Observe(const Key& key, uint64_t increment = 1) {
    total_ += increment;
    if (const int32_t* slot = index_.Find(key)) {
      const int32_t n = *slot;
      const int32_t bucket = nodes_[n].bucket;
      // Detach may free the node's bucket; remember its predecessor so the
      // relink search can still start from the node's old position.
      const int32_t bucket_prev = buckets_[bucket].prev;
      const bool emptied = Detach(n);
      nodes_[n].count += increment;
      Place(n, emptied ? bucket_prev : bucket);
      return;
    }
    if (size_ < capacity_) {
      const int32_t n = AllocNode();
      nodes_[n].key = key;
      nodes_[n].count = increment;
      nodes_[n].error = 0;
      Place(n, kNil);
      index_.Insert(key, n);
      size_++;
      return;
    }
    // Evict the minimum-count key and inherit its count as error. The victim
    // is the tail of the minimum bucket (the seed's min_bucket->second.back()).
    ACTOP_DCHECK(min_bucket_ != kNil);
    const int32_t mb = min_bucket_;
    const uint64_t min_count = buckets_[mb].count;
    const int32_t victim = buckets_[mb].tail;
    const bool emptied = Detach(victim);
    index_.Erase(nodes_[victim].key);
    nodes_[victim].key = key;
    nodes_[victim].count = min_count + increment;
    nodes_[victim].error = min_count;
    Place(victim, emptied ? kNil : mb);
    index_.Insert(key, victim);
  }

  // All tracked entries. Size <= capacity. Order is unspecified (currently
  // ascending count with arbitrary tie order) — use SortedEntries() when a
  // deterministic ranking is needed.
  std::vector<Entry> Entries() const {
    std::vector<Entry> out;
    out.reserve(size_);
    for (int32_t b = min_bucket_; b != kNil; b = buckets_[b].next) {
      for (int32_t n = buckets_[b].head; n != kNil; n = nodes_[n].next) {
        out.push_back(Entry{nodes_[n].key, nodes_[n].count, nodes_[n].error});
      }
    }
    return out;
  }

  // Entries ranked heaviest-first: count descending, key ascending on ties.
  // Only instantiable for Keys with operator< (ids in this codebase).
  std::vector<Entry> SortedEntries() const {
    std::vector<Entry> out = Entries();
    std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
      if (a.count != b.count) return a.count > b.count;
      return a.key < b.key;
    });
    return out;
  }

  // Estimated count for a key (0 if not tracked).
  uint64_t EstimateCount(const Key& key) const {
    const int32_t* slot = index_.Find(key);
    return slot == nullptr ? 0 : nodes_[*slot].count;
  }

  bool Contains(const Key& key) const { return index_.Find(key) != nullptr; }

  // Total of all observed increments (N).
  uint64_t total_observed() const { return total_; }
  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }

  // Halves every counter (and error), dropping keys that reach zero. Called
  // periodically so that stale edges of a changing communication graph decay
  // instead of occupying capacity forever. One relink pass: nodes are walked
  // in ascending-count order, and since halving is monotone the rebuilt
  // chain is produced by appending to its tail — no searching, no tree.
  void Decay() {
    total_ /= 2;
    if (size_ == 0) {
      return;
    }
    decay_scratch_.clear();
    for (int32_t b = min_bucket_; b != kNil; b = buckets_[b].next) {
      for (int32_t n = buckets_[b].head; n != kNil; n = nodes_[n].next) {
        decay_scratch_.push_back(n);
      }
      free_buckets_.push_back(b);  // links stay valid until reused below
    }
    min_bucket_ = kNil;
    int32_t tail_bucket = kNil;
    for (const int32_t n : decay_scratch_) {
      Node& node = nodes_[n];
      node.count /= 2;
      node.error /= 2;
      if (node.count == 0) {
        index_.Erase(node.key);
        free_nodes_.push_back(n);
        size_--;
        continue;
      }
      if (tail_bucket == kNil || buckets_[tail_bucket].count != node.count) {
        ACTOP_DCHECK(tail_bucket == kNil || buckets_[tail_bucket].count < node.count);
        tail_bucket = AllocBucket(node.count, tail_bucket, kNil);
      }
      Append(tail_bucket, n);
    }
  }

  void Clear() {
    nodes_.clear();
    free_nodes_.clear();
    buckets_.clear();
    free_buckets_.clear();
    min_bucket_ = kNil;
    index_.Clear();
    total_ = 0;
    size_ = 0;
  }

 private:
  static constexpr int32_t kNil = -1;

  struct Node {
    Key key{};
    uint64_t count = 0;
    uint64_t error = 0;
    int32_t prev = kNil;  // within-bucket chain; head..tail mirrors the
    int32_t next = kNil;  // seed's bucket vector order (tail == back()).
    int32_t bucket = kNil;
  };

  struct Bucket {
    uint64_t count = 0;
    int32_t head = kNil;
    int32_t tail = kNil;
    int32_t prev = kNil;  // bucket chain, ascending count;
    int32_t next = kNil;  // min_bucket_ is the head.
  };

  int32_t AllocNode() {
    if (!free_nodes_.empty()) {
      const int32_t n = free_nodes_.back();
      free_nodes_.pop_back();
      return n;
    }
    nodes_.emplace_back();
    return static_cast<int32_t>(nodes_.size()) - 1;
  }

  int32_t AllocBucket(uint64_t count, int32_t prev, int32_t next) {
    int32_t b;
    if (!free_buckets_.empty()) {
      b = free_buckets_.back();
      free_buckets_.pop_back();
    } else {
      buckets_.emplace_back();
      b = static_cast<int32_t>(buckets_.size()) - 1;
    }
    Bucket& bk = buckets_[b];
    bk.count = count;
    bk.head = bk.tail = kNil;
    bk.prev = prev;
    bk.next = next;
    if (prev != kNil) {
      buckets_[prev].next = b;
    } else {
      min_bucket_ = b;
    }
    if (next != kNil) {
      buckets_[next].prev = b;
    }
    return b;
  }

  void FreeBucket(int32_t b) {
    Bucket& bk = buckets_[b];
    if (bk.prev != kNil) {
      buckets_[bk.prev].next = bk.next;
    } else {
      min_bucket_ = bk.next;
    }
    if (bk.next != kNil) {
      buckets_[bk.next].prev = bk.prev;
    }
    free_buckets_.push_back(b);
  }

  // Seed Attach == push_back: append at the bucket tail.
  void Append(int32_t b, int32_t n) {
    Node& node = nodes_[n];
    node.bucket = b;
    node.next = kNil;
    node.prev = buckets_[b].tail;
    if (node.prev != kNil) {
      nodes_[node.prev].next = n;
    } else {
      buckets_[b].head = n;
    }
    buckets_[b].tail = n;
  }

  // Seed Detach == swap-remove (vec[i] = vec.back(); pop_back()): pop the
  // bucket's tail, and if that wasn't `n`, splice it into n's old position.
  // Frees the bucket if it empties; returns whether it did.
  bool Detach(int32_t n) {
    const int32_t b = nodes_[n].bucket;
    Bucket& bk = buckets_[b];
    const int32_t tail = bk.tail;
    const int32_t tail_prev = nodes_[tail].prev;
    bk.tail = tail_prev;
    if (tail_prev != kNil) {
      nodes_[tail_prev].next = kNil;
    } else {
      bk.head = kNil;
    }
    if (tail != n) {
      // nodes_[n].next was just nulled if the tail sat directly after n.
      const int32_t np = nodes_[n].prev;
      const int32_t nn = nodes_[n].next;
      nodes_[tail].prev = np;
      nodes_[tail].next = nn;
      if (np != kNil) {
        nodes_[np].next = tail;
      } else {
        bk.head = tail;
      }
      if (nn != kNil) {
        nodes_[nn].prev = tail;
      } else {
        bk.tail = tail;
      }
    }
    if (bk.head == kNil) {
      FreeBucket(b);
      return true;
    }
    return false;
  }

  // Appends node `n` (already detached, count updated) to the bucket holding
  // its count, creating the bucket if missing. The search walks the chain
  // forward from `pred` (kNil = from min_bucket_); for unit increments from
  // the node's old bucket this is at most one step.
  void Place(int32_t n, int32_t pred) {
    const uint64_t target = nodes_[n].count;
    int32_t succ = pred == kNil ? min_bucket_ : buckets_[pred].next;
    while (succ != kNil && buckets_[succ].count < target) {
      pred = succ;
      succ = buckets_[succ].next;
    }
    const int32_t b = (succ != kNil && buckets_[succ].count == target)
                          ? succ
                          : AllocBucket(target, pred, succ);
    Append(b, n);
  }

  size_t capacity_;
  size_t size_ = 0;
  uint64_t total_ = 0;
  std::vector<Node> nodes_;          // slab; grows lazily up to capacity_
  std::vector<int32_t> free_nodes_;  // slots freed by Decay
  std::vector<Bucket> buckets_;
  std::vector<int32_t> free_buckets_;
  std::vector<int32_t> decay_scratch_;
  int32_t min_bucket_ = kNil;
  FlatHashMap<Key, int32_t, Hash> index_;
};

}  // namespace actop

#endif  // SRC_CORE_SPACE_SAVING_H_
