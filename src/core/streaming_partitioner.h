// Streaming graph partitioning heuristics (Stanton & Kliot, KDD 2012 — the
// paper's reference [31]).
//
// These place each vertex once, as it arrives, using only the neighbors seen
// so far — the "faster heuristics" class the paper contrasts with its
// continuously-running distributed algorithm (§7: they "still require the
// entire graph in a central server, or deal with static graphs"). Included
// as an initial-placement baseline and for the related-work comparison:
//
//   * kHashing: uniform random placement (the Orleans default);
//   * kLinearDeterministicGreedy (LDG): maximize |N(v) ∩ P_i| scaled by a
//     linear capacity penalty (1 − |P_i|/C);
//   * kFennel: maximize |N(v) ∩ P_i| − α·γ·|P_i|^(γ−1) (Tsourakakis et al.'s
//     streaming objective, the common companion baseline).

#ifndef SRC_CORE_STREAMING_PARTITIONER_H_
#define SRC_CORE_STREAMING_PARTITIONER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"
#include "src/common/rng.h"
#include "src/core/pairwise_partition.h"

namespace actop {

enum class StreamingHeuristic {
  kHashing,
  kLinearDeterministicGreedy,
  kFennel,
};

struct StreamingPartitionerConfig {
  StreamingHeuristic heuristic = StreamingHeuristic::kLinearDeterministicGreedy;
  // Capacity slack: each part may hold up to slack * n/k vertices.
  double capacity_slack = 1.1;
  // Fennel parameters (γ and the load exponent); α is derived from the
  // stream size as in the Fennel paper: α = m · k^(γ−1) / n^γ with m and n
  // estimated from expected totals.
  double fennel_gamma = 1.5;
  uint64_t seed = 1;
};

class StreamingPartitioner {
 public:
  // expected_vertices/expected_edges size the capacity bound and Fennel's α.
  StreamingPartitioner(int servers, int64_t expected_vertices, int64_t expected_edges,
                       StreamingPartitionerConfig config);

  // Places vertex v given its (known-so-far) neighbors; returns the chosen
  // server and records the assignment. Idempotent for already-placed ids.
  ServerId Place(VertexId v, const VertexAdjacency& neighbors);

  // Assignment of an already-placed vertex, or kNoServer.
  ServerId LocationOf(VertexId v) const;

  const std::unordered_map<VertexId, ServerId>& assignment() const { return assignment_; }
  int64_t PartSize(ServerId s) const { return sizes_[static_cast<size_t>(s)]; }
  int64_t MaxImbalance() const;

 private:
  double ScoreFor(ServerId s, double neighbor_weight) const;

  const int servers_;
  const StreamingPartitionerConfig config_;
  const double capacity_;
  double fennel_alpha_;
  Rng rng_;
  std::unordered_map<VertexId, ServerId> assignment_;
  std::vector<int64_t> sizes_;
  // Per-part neighbor-weight scratch for Place(): sized once to servers_ and
  // re-zeroed per call instead of a fresh heap allocation per placement.
  std::vector<double> neighbor_weight_;
};

}  // namespace actop

#endif  // SRC_CORE_STREAMING_PARTITIONER_H_
