// Indexed max-heap for the greedy joint subset selection in DecideExchange.
//
// The seed used a lazy-deletion std::priority_queue plus two unordered_maps
// per side (`current` for live scores, `candidates` for payload pointers):
// every score update pushed a new heap entry and left the old one to be
// skipped at the next PeekTop. This replaces all three with one slab of
// slots, a FlatHashMap vertex->slot index, and a binary heap of slot ids
// with true increase/decrease-key — Update sifts the slot in place, so the
// heap never holds stale entries and PeekTop is O(1).
//
// Ordering is load-bearing for deterministic replay: the seed's
// priority_queue<pair<double, VertexId>> compared pairs lexicographically,
// i.e. max (score, vertex) — score ties go to the larger vertex id. Higher()
// reproduces exactly that total order (candidate vertices are unique after
// Init's last-wins dedup), so the greedy pick sequence is identical to seed.
// Duplicate vertices in Init replicate the seed's map-overwrite semantics:
// the last candidate's score and payload win.

#ifndef SRC_CORE_EXCHANGE_HEAP_H_
#define SRC_CORE_EXCHANGE_HEAP_H_

#include <cstdint>
#include <vector>

#include "src/common/check.h"
#include "src/common/flat_hash_map.h"
#include "src/core/pairwise_partition.h"

namespace actop {

class ExchangeHeap {
 public:
  static constexpr int32_t kRemoved = -1;

  struct Slot {
    VertexId vertex = 0;
    double score = 0.0;
    const Candidate* candidate = nullptr;
    int32_t heap_pos = kRemoved;
  };

  template <typename ScoreFn>
  void Init(const std::vector<Candidate>& cands, ScoreFn&& score_fn) {
    slots_.reserve(cands.size());
    heap_.reserve(cands.size());
    for (const Candidate& c : cands) {
      Add(c, score_fn(c));
    }
  }

  // Init over candidate pointers — the arena data plane keeps its candidates
  // in recycled pools and offers (possibly filtered) pointer lists. Same
  // semantics as Init, including last-wins on duplicate vertices.
  template <typename ScoreFn>
  void InitPtrs(const std::vector<const Candidate*>& cands, ScoreFn&& score_fn) {
    slots_.reserve(cands.size());
    heap_.reserve(cands.size());
    for (const Candidate* c : cands) {
      Add(*c, score_fn(*c));
    }
  }

  // Pre-sizes every buffer (slot slab, heap array, index capacity) for up
  // to n candidates, so Reset/Init cycles at or below that cardinality
  // never allocate.
  void Reserve(size_t n) {
    slots_.reserve(n);
    heap_.reserve(n);
    index_.Reserve(n);
  }

  // Forgets all slots but keeps every buffer (slot slab, heap array, index
  // capacity), so Reset/Init cycles of similar cardinality allocate nothing.
  void Reset() {
    slots_.clear();
    heap_.clear();
    index_.Clear();
  }

  // Live maximum by (score, vertex), without popping.
  bool PeekTop(VertexId* v, double* score) const {
    if (heap_.empty()) {
      return false;
    }
    const Slot& s = slots_[heap_[0]];
    *v = s.vertex;
    *score = s.score;
    return true;
  }

  // Drops `v` from the live heap. Its slot (and candidate payload) stays
  // addressable — the selection loop still scores edges against moved
  // vertices' neighbors via slots().
  void Remove(VertexId v) {
    int32_t* found = index_.Find(v);
    ACTOP_DCHECK(found != nullptr);
    Slot& s = slots_[*found];
    if (s.heap_pos == kRemoved) {
      return;
    }
    const int32_t pos = s.heap_pos;
    s.heap_pos = kRemoved;
    const int32_t last = heap_.back();
    heap_.pop_back();
    if (pos < static_cast<int32_t>(heap_.size())) {
      heap_[pos] = last;
      slots_[last].heap_pos = pos;
      SiftDown(pos);
      SiftUp(slots_[last].heap_pos);
    }
  }

  // Adds `delta` to v's score, sifting in place. No-op for absent or removed
  // vertices (matches the seed's `current` miss).
  void Update(VertexId v, double delta) {
    const int32_t* found = index_.Find(v);
    if (found == nullptr) {
      return;
    }
    Slot& s = slots_[*found];
    if (s.heap_pos == kRemoved) {
      return;
    }
    s.score += delta;
    if (delta > 0.0) {
      SiftUp(s.heap_pos);
    } else {
      SiftDown(s.heap_pos);
    }
  }

  const Candidate* CandidateOf(VertexId v) const {
    const int32_t* found = index_.Find(v);
    ACTOP_CHECK(found != nullptr);
    return slots_[*found].candidate;
  }

  // All slots in Init order, including removed ones (heap_pos == kRemoved).
  const std::vector<Slot>& slots() const { return slots_; }
  static bool Live(const Slot& s) { return s.heap_pos != kRemoved; }

 private:
  void Add(const Candidate& c, double s) {
    if (const int32_t* found = index_.Find(c.vertex)) {
      // Duplicate offer: last candidate wins wholesale (seed overwrote
      // both current[v] and candidates[v]).
      slots_[*found].candidate = &c;
      Rekey(*found, s);
      return;
    }
    const auto slot = static_cast<int32_t>(slots_.size());
    slots_.push_back(Slot{c.vertex, s, &c, static_cast<int32_t>(heap_.size())});
    heap_.push_back(slot);
    index_.Insert(c.vertex, slot);
    SiftUp(slots_[slot].heap_pos);
  }

  // Strict "a outranks b": lexicographic max on (score, vertex) — exactly
  // std::pair<double, VertexId>'s operator< as used by the seed's heap.
  bool Higher(int32_t a, int32_t b) const {
    const Slot& x = slots_[a];
    const Slot& y = slots_[b];
    if (x.score != y.score) {
      return x.score > y.score;
    }
    return x.vertex > y.vertex;
  }

  void SiftUp(int32_t pos) {
    const int32_t slot = heap_[pos];
    while (pos > 0) {
      const int32_t parent = (pos - 1) / 2;
      if (!Higher(slot, heap_[parent])) {
        break;
      }
      heap_[pos] = heap_[parent];
      slots_[heap_[pos]].heap_pos = pos;
      pos = parent;
    }
    heap_[pos] = slot;
    slots_[slot].heap_pos = pos;
  }

  void SiftDown(int32_t pos) {
    const int32_t slot = heap_[pos];
    const auto n = static_cast<int32_t>(heap_.size());
    while (true) {
      int32_t best = 2 * pos + 1;
      if (best >= n) {
        break;
      }
      if (best + 1 < n && Higher(heap_[best + 1], heap_[best])) {
        best++;
      }
      if (!Higher(heap_[best], slot)) {
        break;
      }
      heap_[pos] = heap_[best];
      slots_[heap_[pos]].heap_pos = pos;
      pos = best;
    }
    heap_[pos] = slot;
    slots_[slot].heap_pos = pos;
  }

  void Rekey(int32_t slot, double score) {
    Slot& s = slots_[slot];
    const double old = s.score;
    s.score = score;
    if (s.heap_pos == kRemoved) {
      return;
    }
    if (score > old) {
      SiftUp(s.heap_pos);
    } else if (score < old) {
      SiftDown(s.heap_pos);
    }
  }

  std::vector<Slot> slots_;
  std::vector<int32_t> heap_;  // heap of slot ids
  FlatHashMap<VertexId, int32_t> index_;
};

}  // namespace actop

#endif  // SRC_CORE_EXCHANGE_HEAP_H_
