#include "src/core/param_estimator.h"

#include <algorithm>

#include "src/common/check.h"

namespace actop {

ParamEstimator::ParamEstimator(EstimatorConfig config) : config_(std::move(config)) {
  ACTOP_CHECK(!config_.no_blocking.empty());
  ACTOP_CHECK(std::find(config_.no_blocking.begin(), config_.no_blocking.end(), true) !=
              config_.no_blocking.end());
  stages_.resize(config_.no_blocking.size());
  for (auto& st : stages_) {
    st.lambda = Ewma(config_.smoothing);
    st.mean_z = Ewma(config_.smoothing);
    st.mean_x = Ewma(config_.smoothing);
  }
  alpha_ = Ewma(config_.smoothing);
}

void ParamEstimator::AddWindow(const std::vector<StageWindow>& windows,
                               SimDuration window_length) {
  ACTOP_CHECK(windows.size() == stages_.size());
  ACTOP_CHECK(window_length > 0);
  const double window_sec = ToSeconds(window_length);

  // First pass: per-stage arrival rates and mean z/x; α from S0 stages.
  double alpha_sum = 0.0;
  int alpha_count = 0;
  for (size_t i = 0; i < windows.size(); i++) {
    const StageWindow& w = windows[i];
    stages_[i].lambda.Add(static_cast<double>(w.arrivals) / window_sec);
    if (w.completions < config_.min_completions) {
      continue;
    }
    const double mean_z = w.mean_wallclock();
    const double mean_x = w.mean_compute();
    if (mean_x <= 0.0) {
      continue;
    }
    stages_[i].mean_z.Add(mean_z);
    stages_[i].mean_x.Add(mean_x);
    if (config_.no_blocking[i]) {
      alpha_sum += std::max(0.0, (mean_z - mean_x) / mean_x);
      alpha_count++;
    }
  }
  if (alpha_count > 0) {
    alpha_.Add(alpha_sum / static_cast<double>(alpha_count));
  }
}

bool ParamEstimator::ready() const {
  if (!alpha_.initialized()) {
    return false;
  }
  for (const auto& st : stages_) {
    if (!st.lambda.initialized()) {
      return false;
    }
  }
  // At least one stage must have service-time estimates; stages that carry
  // no traffic are allowed to stay unknown.
  for (const auto& st : stages_) {
    if (st.mean_z.initialized()) {
      return true;
    }
  }
  return false;
}

const std::vector<StageParams>& ParamEstimator::Estimate() const {
  params_scratch_.assign(stages_.size(), StageParams{});
  const double alpha = this->alpha();
  for (size_t i = 0; i < stages_.size(); i++) {
    const StageEstimate& st = stages_[i];
    StageParams& out = params_scratch_[i];
    out.lambda = st.lambda.initialized() ? st.lambda.value() : 0.0;
    if (!st.mean_z.initialized() || !st.mean_x.initialized()) {
      // No traffic observed: conservative defaults keep the optimizer from
      // starving an idle stage (it gets the minimum thread count anyway).
      out.lambda = 0.0;
      out.s = 1.0;
      out.beta = 1.0;
      continue;
    }
    const double mean_z = st.mean_z.value();
    const double mean_x = st.mean_x.value();
    const double r = alpha * mean_x;
    // Effective service time per event: z − r = x + w. Guard against α
    // over-estimation (z − r must be at least x).
    const double service_ns = std::max(mean_z - r, mean_x);
    out.s = 1e9 / service_ns;  // events per second per thread
    out.beta = std::clamp(mean_x / service_ns, 0.0, 1.0);
  }
  return params_scratch_;
}

}  // namespace actop
