#include "src/core/thread_allocator.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/check.h"

namespace actop {

std::vector<double> ClosedFormAllocation(const AllocationProblem& problem) {
  ACTOP_CHECK(IsFeasible(problem));
  ACTOP_CHECK(problem.eta > 0.0);
  const double lambda_tot = TotalArrivalRate(problem);
  std::vector<double> threads(problem.stages.size(), 0.0);
  for (size_t i = 0; i < problem.stages.size(); i++) {
    const StageParams& st = problem.stages[i];
    double t = st.lambda / st.s;
    if (st.lambda > 0.0 && lambda_tot > 0.0) {
      t += std::sqrt(st.lambda / (lambda_tot * problem.eta * st.s));
    }
    threads[i] = t;
  }
  return threads;
}

namespace {

// Projects `threads` onto { t : ti >= lo_i, Σ ti·βi <= p } by clipping to the
// lower bounds and, if the capacity constraint is violated, uniformly scaling
// the slack above the lower bounds.
void Project(const AllocationProblem& problem, const std::vector<double>& lower,
             std::vector<double>* threads) {
  for (size_t i = 0; i < threads->size(); i++) {
    (*threads)[i] = std::max((*threads)[i], lower[i]);
  }
  const auto p = static_cast<double>(problem.processors);
  double usage = CpuUsage(problem, *threads);
  if (usage <= p) {
    return;
  }
  double lower_usage = 0.0;
  for (size_t i = 0; i < lower.size(); i++) {
    lower_usage += lower[i] * problem.stages[i].beta;
  }
  // A feasible problem guarantees lower_usage < p (strictly); scale the
  // excess above the lower bounds so total usage hits p.
  const double denom = usage - lower_usage;
  if (denom <= 0.0) {
    return;
  }
  const double scale = std::max(0.0, (p - lower_usage) / denom);
  for (size_t i = 0; i < threads->size(); i++) {
    (*threads)[i] = lower[i] + ((*threads)[i] - lower[i]) * scale;
  }
}

}  // namespace

std::vector<double> GradientAllocation(const AllocationProblem& problem, int iterations) {
  ACTOP_CHECK(IsFeasible(problem));
  const size_t k = problem.stages.size();
  const double lambda_tot = TotalArrivalRate(problem);

  // Strictly-stable lower bounds: ti such that µi exceeds λi with a margin.
  std::vector<double> lower(k, 0.0);
  for (size_t i = 0; i < k; i++) {
    const StageParams& st = problem.stages[i];
    lower[i] = st.lambda > 0.0 ? (st.lambda / st.s) * 1.0001 + 1e-9 : 1e-6;
  }

  // Start from the closed form (ignoring capacity) projected into the
  // feasible region.
  std::vector<double> t = ClosedFormAllocation(problem);
  Project(problem, lower, &t);

  double step = 1.0;
  double best_obj = ProxyLatency(problem, t);
  std::vector<double> grad(k, 0.0);
  std::vector<double> candidate(k, 0.0);
  for (int iter = 0; iter < iterations; iter++) {
    // dF/dti = -(1/λtot)·λi·si/(si·ti−λi)² + η
    for (size_t i = 0; i < k; i++) {
      const StageParams& st = problem.stages[i];
      double g = problem.eta;
      if (st.lambda > 0.0 && lambda_tot > 0.0) {
        const double surplus = st.s * t[i] - st.lambda;
        g -= st.lambda * st.s / (lambda_tot * surplus * surplus);
      }
      grad[i] = g;
    }
    // Backtracking line search on the projected step.
    bool improved = false;
    for (int attempt = 0; attempt < 40; attempt++) {
      for (size_t i = 0; i < k; i++) {
        candidate[i] = t[i] - step * grad[i];
      }
      Project(problem, lower, &candidate);
      const double obj = ProxyLatency(problem, candidate);
      if (obj < best_obj) {
        t = candidate;
        best_obj = obj;
        improved = true;
        step *= 1.3;
        break;
      }
      step *= 0.5;
    }
    if (!improved && step < 1e-12) {
      break;
    }
  }
  return t;
}

std::vector<int> IntegerAllocation(const AllocationProblem& problem, int min_threads,
                                   int max_threads) {
  ACTOP_CHECK(min_threads >= 1);
  ACTOP_CHECK(max_threads >= min_threads);
  const size_t k = problem.stages.size();

  std::vector<double> continuous;
  if (problem.eta >= Zeta(problem)) {
    continuous = ClosedFormAllocation(problem);
  } else {
    continuous = GradientAllocation(problem);
  }

  auto clamp = [&](int v) { return std::clamp(v, min_threads, max_threads); };

  // Initial rounding: nearest integer, but never below stability.
  std::vector<int> alloc(k, min_threads);
  for (size_t i = 0; i < k; i++) {
    const StageParams& st = problem.stages[i];
    int t = clamp(static_cast<int>(std::lround(continuous[i])));
    while (st.lambda > 0.0 && st.s * t <= st.lambda && t < max_threads) {
      t++;
    }
    alloc[i] = clamp(t);
  }

  auto objective = [&](const std::vector<int>& a) {
    std::vector<double> d(a.begin(), a.end());
    double obj = ProxyLatency(problem, d);
    // Soft-penalize capacity violations so the search prefers allocations
    // that fit in p processors but can still return a stable allocation when
    // integrality makes exact fit impossible.
    const double over = CpuUsage(problem, d) - static_cast<double>(problem.processors);
    if (over > 0.0) {
      obj += over * 10.0 * (problem.eta + 1e-6) * 100.0;
    }
    return obj;
  };

  // Greedy hill climbing over single-stage ±1 moves.
  double best = objective(alloc);
  bool moved = true;
  while (moved) {
    moved = false;
    for (size_t i = 0; i < k; i++) {
      for (int delta : {+1, -1}) {
        const int candidate_t = alloc[i] + delta;
        if (candidate_t < min_threads || candidate_t > max_threads) {
          continue;
        }
        std::vector<int> candidate = alloc;
        candidate[i] = candidate_t;
        const double obj = objective(candidate);
        if (obj + 1e-15 < best) {
          alloc = std::move(candidate);
          best = obj;
          moved = true;
        }
      }
    }
  }
  return alloc;
}

}  // namespace actop
