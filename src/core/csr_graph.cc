#include "src/core/csr_graph.h"

#include <algorithm>
#include <utility>

#include "src/core/pairwise_partition.h"
#include "src/core/partition_testbed.h"

namespace actop {

CsrGraph CsrGraph::FromWeighted(const WeightedGraph& g) {
  CsrGraph out;
  out.ids_ = g.Vertices();  // sorted
  const size_t n = out.ids_.size();
  out.index_.Reserve(n);
  for (size_t i = 0; i < n; i++) {
    out.index_.Insert(out.ids_[i], static_cast<int32_t>(i));
  }
  out.offsets_.assign(n + 1, 0);
  for (size_t i = 0; i < n; i++) {
    out.offsets_[i + 1] = out.offsets_[i] + g.NeighborsOf(out.ids_[i]).size();
  }
  out.nbr_.resize(out.offsets_[n]);
  out.weight_.resize(out.offsets_[n]);
  // Each span is filled from the source hash map then sorted by neighbor
  // index, erasing the map's bucket order from the frozen layout.
  std::vector<std::pair<int32_t, double>> span;
  for (size_t i = 0; i < n; i++) {
    span.clear();
    for (const auto& [u, w] : g.NeighborsOf(out.ids_[i])) {
      const int32_t* u_idx = out.index_.Find(u);
      ACTOP_CHECK(u_idx != nullptr);
      span.emplace_back(*u_idx, w);
    }
    std::sort(span.begin(), span.end());
    size_t e = out.offsets_[i];
    for (const auto& [u_idx, w] : span) {
      out.nbr_[e] = u_idx;
      out.weight_[e] = w;
      e++;
    }
  }
  return out;
}

CsrGraph CsrGraph::FromLocalView(const LocalGraphView& view) {
  std::vector<CsrEdge> edges;
  for (const auto& [v, adj] : view.adjacency) {
    for (const auto& [u, w] : adj) {
      edges.push_back(CsrEdge{v, u, w});
    }
  }
  std::sort(edges.begin(), edges.end(), [](const CsrEdge& a, const CsrEdge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  CsrGraph out;
  out.RebuildFromEdgeList(edges);
  return out;
}

void CsrGraph::RebuildFromEdgeList(const std::vector<CsrEdge>& edges) {
  // Vertex set: sources plus every referenced destination, sorted and
  // deduplicated (ascending ids == ascending dense indices, as always).
  ids_.clear();
  for (const CsrEdge& e : edges) {
    ids_.push_back(e.src);
    ids_.push_back(e.dst);
  }
  std::sort(ids_.begin(), ids_.end());
  ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
  const size_t n = ids_.size();
  index_.Clear();
  index_.Reserve(n);
  for (size_t i = 0; i < n; i++) {
    index_.Insert(ids_[i], static_cast<int32_t>(i));
  }
  offsets_.assign(n + 1, 0);
  nbr_.resize(edges.size());
  weight_.resize(edges.size());
  // Sorted by (src, dst) means edges already arrive in CSR order: spans fill
  // contiguously in ascending source index, each sorted by destination index
  // (id order == index order on both axes).
  size_t e_i = 0;
  for (const CsrEdge& e : edges) {
    if (e_i > 0) {
      ACTOP_DCHECK(edges[e_i - 1].src < e.src ||
                   (edges[e_i - 1].src == e.src && edges[e_i - 1].dst < e.dst));
    }
    const int32_t src_idx = IndexOf(e.src);
    offsets_[static_cast<size_t>(src_idx) + 1]++;
    nbr_[e_i] = IndexOf(e.dst);
    weight_[e_i] = e.weight;
    e_i++;
  }
  for (size_t i = 0; i < n; i++) {
    offsets_[i + 1] += offsets_[i];
  }
}

}  // namespace actop
