#include "src/core/csr_graph.h"

#include <algorithm>
#include <utility>

#include "src/core/partition_testbed.h"

namespace actop {

CsrGraph CsrGraph::FromWeighted(const WeightedGraph& g) {
  CsrGraph out;
  out.ids_ = g.Vertices();  // sorted
  const size_t n = out.ids_.size();
  out.index_.Reserve(n);
  for (size_t i = 0; i < n; i++) {
    out.index_.Insert(out.ids_[i], static_cast<int32_t>(i));
  }
  out.offsets_.assign(n + 1, 0);
  for (size_t i = 0; i < n; i++) {
    out.offsets_[i + 1] = out.offsets_[i] + g.NeighborsOf(out.ids_[i]).size();
  }
  out.nbr_.resize(out.offsets_[n]);
  out.weight_.resize(out.offsets_[n]);
  // Each span is filled from the source hash map then sorted by neighbor
  // index, erasing the map's bucket order from the frozen layout.
  std::vector<std::pair<int32_t, double>> span;
  for (size_t i = 0; i < n; i++) {
    span.clear();
    for (const auto& [u, w] : g.NeighborsOf(out.ids_[i])) {
      const int32_t* u_idx = out.index_.Find(u);
      ACTOP_CHECK(u_idx != nullptr);
      span.emplace_back(*u_idx, w);
    }
    std::sort(span.begin(), span.end());
    size_t e = out.offsets_[i];
    for (const auto& [u_idx, w] : span) {
      out.nbr_[e] = u_idx;
      out.weight_[e] = w;
      e++;
    }
  }
  return out;
}

}  // namespace actop
