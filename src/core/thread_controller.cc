#include "src/core/thread_controller.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/core/thread_allocator.h"

namespace actop {

ModelThreadController::ModelThreadController(Simulation* sim, ThreadHost* host,
                                             ModelControllerConfig config)
    : sim_(sim),
      host_(host),
      config_(std::move(config)),
      estimator_(EstimatorConfig{
          .no_blocking = config_.no_blocking,
          .smoothing = config_.smoothing,
      }) {
  ACTOP_CHECK(sim != nullptr);
  ACTOP_CHECK(host != nullptr);
  ACTOP_CHECK(static_cast<int>(config_.no_blocking.size()) == host->num_stages());
  last_step_time_ = sim_->now();
}

void ModelThreadController::Start() {
  ACTOP_CHECK(periodic_id_ == 0);
  last_step_time_ = sim_->now();
  periodic_id_ = sim_->SchedulePeriodic(config_.period, [this] { StepOnce(); });
}

void ModelThreadController::Stop() {
  if (periodic_id_ != 0) {
    sim_->CancelPeriodic(periodic_id_);
    periodic_id_ = 0;
  }
}

void ModelThreadController::StepOnce() {
  const SimDuration window = std::max<SimDuration>(sim_->now() - last_step_time_, 1);
  last_step_time_ = sim_->now();
  CollectAndApply(window);
}

void ModelThreadController::CollectAndApply(SimDuration window_length) {
  const int k = host_->num_stages();
  windows_scratch_.clear();
  windows_scratch_.reserve(static_cast<size_t>(k));
  for (int i = 0; i < k; i++) {
    windows_scratch_.push_back(host_->stage(i).TakeWindow());
  }
  estimator_.AddWindow(windows_scratch_, window_length);
  if (!estimator_.ready()) {
    return;
  }

  AllocationProblem& problem = problem_scratch_;
  problem.stages = estimator_.Estimate();
  problem.processors = host_->cores();
  problem.eta = config_.eta;
  if (!IsFeasible(problem)) {
    // Overload: even a perfect allocation cannot drain the queues. Keep the
    // current allocation; the partitioning optimization (or admission
    // control) has to shed the load first.
    return;
  }
  last_problem_ = problem;

  std::vector<int> alloc =
      IntegerAllocation(problem, config_.min_threads, config_.max_threads);
  if (alloc != host_->CurrentThreads()) {
    host_->ApplyThreadAllocation(alloc);
  }
  if (observer_) {
    observer_(alloc);
  }
}

QueueLengthThreadController::QueueLengthThreadController(Simulation* sim, ThreadHost* host,
                                                         QueueLengthControllerConfig config)
    : sim_(sim), host_(host), config_(config) {
  ACTOP_CHECK(sim != nullptr);
  ACTOP_CHECK(host != nullptr);
}

void QueueLengthThreadController::Start() {
  ACTOP_CHECK(periodic_id_ == 0);
  periodic_id_ = sim_->SchedulePeriodic(config_.period, [this] { StepOnce(); });
}

void QueueLengthThreadController::Stop() {
  if (periodic_id_ != 0) {
    sim_->CancelPeriodic(periodic_id_);
    periodic_id_ = 0;
  }
}

void QueueLengthThreadController::StepOnce() {
  const int k = host_->num_stages();
  std::vector<int> alloc = host_->CurrentThreads();
  bool changed = false;
  for (int i = 0; i < k; i++) {
    const uint64_t qlen = host_->stage(i).queue_length();
    if (qlen > config_.high_threshold && alloc[static_cast<size_t>(i)] < config_.max_threads) {
      alloc[static_cast<size_t>(i)]++;
      changed = true;
    } else if (qlen < config_.low_threshold &&
               alloc[static_cast<size_t>(i)] > config_.min_threads) {
      alloc[static_cast<size_t>(i)]--;
      changed = true;
    }
  }
  if (changed) {
    host_->ApplyThreadAllocation(alloc);
  }
  if (observer_) {
    observer_(alloc);
  }
}

}  // namespace actop
