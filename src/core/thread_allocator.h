// Solvers for the latency-minimization problem (*) of §5.3.
//
// ClosedFormAllocation implements Theorem 2:
//     ti = λi/si + sqrt(λi / (λtot · η · si))        (when η ≥ ζ)
// GradientAllocation solves the convex program by projected gradient descent
// and is used when the closed form does not apply (η < ζ) and as a test
// oracle for the closed form.
// IntegerAllocation rounds a fractional solution to whole threads with a
// local search on the true objective, enforcing stability and CPU capacity.

#ifndef SRC_CORE_THREAD_ALLOCATOR_H_
#define SRC_CORE_THREAD_ALLOCATOR_H_

#include <vector>

#include "src/core/queuing_model.h"

namespace actop {

// Continuous optimum per Theorem 2. Requires IsFeasible(problem).
// Valid (globally optimal, capacity-respecting) when problem.eta >= Zeta().
std::vector<double> ClosedFormAllocation(const AllocationProblem& problem);

// Projected-gradient solution of (*). Works for any feasible problem,
// including η < ζ where the CPU-capacity constraint is active.
std::vector<double> GradientAllocation(const AllocationProblem& problem, int iterations = 4000);

// Picks the continuous solution (closed form when η ≥ ζ, else gradient) and
// rounds it to integers >= 1 such that every stage is stable and
// Σ ti·βi <= p where possible, then hill-climbs on ProxyLatency.
// min_threads / max_threads bound each stage's allocation.
std::vector<int> IntegerAllocation(const AllocationProblem& problem, int min_threads = 1,
                                   int max_threads = 1024);

}  // namespace actop

#endif  // SRC_CORE_THREAD_ALLOCATOR_H_
