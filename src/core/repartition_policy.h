// Pluggable repartitioning policies over RepartitionArena — the "arena" in
// repartitioning arena: every policy races on the same frozen graph, the
// same initial placement, and the same balance configuration, so
// convergence speed, final cut cost, and migration volume are directly
// comparable (bench/bench_arena.cc).
//
// Policy matrix (see EXPERIMENTS.md "Repartitioning arena"):
//   pairwise     — the paper's Alg. 1 (reference; byte-identical to the
//                  PartitionTestbed implementation).
//   kway<f>      — hierarchical generalization: each round exchanges with
//                  the top-f peers of one plan, stale candidates filtered
//                  and re-scored, so Theorem 1's monotonicity/balance
//                  properties still hold per applied move.
//   unilateral   — greedy uncoordinated migration (the §4.2 ablation).
//   obr-lazy     — Online Balanced Repartitioning flavor: move only when
//                  the gain exceeds alpha * size(v) (lazy rebalancing rent).
//   sdp-stream   — SDP-style streaming refinement: per-vertex reassignment
//                  maximizing affinity minus a linear overload penalty.
//
// To add a policy: implement RunSweep in terms of RepartitionArena's
// primitives (BuildPlans/ExchangeWithPeer live behind the arena's public
// Run* methods; add a new Run*Sweep there if the policy needs new
// mechanics), then register it in MakeArenaPolicies so the bench race and
// the smoke test pick it up automatically.

#ifndef SRC_CORE_REPARTITION_POLICY_H_
#define SRC_CORE_REPARTITION_POLICY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/repartition_arena.h"

namespace actop {

struct PolicyParams {
  int kway_fanout = 4;
  double obr_alpha = 0.5;
  double sdp_load_penalty = 0.25;
};

class RepartitionPolicy {
 public:
  virtual ~RepartitionPolicy() = default;
  virtual const std::string& name() const = 0;
  // One full sweep (every server initiates once, or one streaming pass over
  // all vertices). Returns vertices moved; 0 means converged / quiescent.
  virtual int64_t RunSweep(RepartitionArena* arena) = 0;
};

std::unique_ptr<RepartitionPolicy> MakePairwisePolicy();
std::unique_ptr<RepartitionPolicy> MakeKWayPolicy(int fanout);
std::unique_ptr<RepartitionPolicy> MakeGreedyUnilateralPolicy();
std::unique_ptr<RepartitionPolicy> MakeObrThresholdPolicy(double alpha);
std::unique_ptr<RepartitionPolicy> MakeStreamingRefinePolicy(double load_penalty);

// The full competitive field, reference policy first.
std::vector<std::unique_ptr<RepartitionPolicy>> MakeArenaPolicies(
    const PolicyParams& params = PolicyParams{});

}  // namespace actop

#endif  // SRC_CORE_REPARTITION_POLICY_H_
