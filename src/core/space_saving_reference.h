// Retained seed implementation of SpaceSaving, kept verbatim (modulo the
// Decay note below) as the differential-fuzz and benchmark baseline for the
// Stream-Summary rewrite in space_saving.h. Do not optimize this file: its
// whole point is to preserve the original std::unordered_map +
// std::map<count, vector<Key>> structure so that the rewrite can be checked
// against it operation-by-operation (see tests/core/space_saving_fuzz_test.cc
// and bench/bench_partition.cc).
//
// One deliberate deviation: the seed's Decay() rebuilt the bucket index by
// iterating counters_ in std::unordered_map order, so the post-Decay order of
// equal-count keys inside a bucket — which breaks eviction-victim ties — was
// an artifact of libstdc++ hash-table internals, not part of the sketch's
// contract. This reference canonicalizes the rebuild to iterate the previous
// buckets count-ascending with within-bucket order preserved (exactly what an
// in-place halving relink produces, since halving is monotone). Everything
// else — counts, errors, eviction victims outside that tie, totals — is
// bit-identical to seed, which the decay-free golden digests in
// space_saving_fuzz_test.cc pin down against the true seed binary.

#ifndef SRC_CORE_SPACE_SAVING_REFERENCE_H_
#define SRC_CORE_SPACE_SAVING_REFERENCE_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "src/common/check.h"

namespace actop {

template <typename Key, typename Hash = std::hash<Key>>
class SpaceSavingReference {
 public:
  struct Entry {
    Key key;
    uint64_t count = 0;
    uint64_t error = 0;
  };

  explicit SpaceSavingReference(size_t capacity) : capacity_(capacity) {
    ACTOP_CHECK(capacity >= 1);
  }

  void Observe(const Key& key, uint64_t increment = 1) {
    total_ += increment;
    auto it = counters_.find(key);
    if (it != counters_.end()) {
      Detach(it->second.count, key);
      it->second.count += increment;
      Attach(it->second.count, key);
      return;
    }
    if (counters_.size() < capacity_) {
      counters_.emplace(key, Counter{increment, 0});
      Attach(increment, key);
      return;
    }
    auto min_bucket = buckets_.begin();
    ACTOP_CHECK(min_bucket != buckets_.end());
    const uint64_t min_count = min_bucket->first;
    const Key victim = min_bucket->second.back();
    Detach(min_count, victim);
    counters_.erase(victim);
    counters_.emplace(key, Counter{min_count + increment, min_count});
    Attach(min_count + increment, key);
  }

  std::vector<Entry> Entries() const {
    std::vector<Entry> out;
    out.reserve(counters_.size());
    for (const auto& [key, counter] : counters_) {
      out.push_back(Entry{key, counter.count, counter.error});
    }
    return out;
  }

  uint64_t EstimateCount(const Key& key) const {
    auto it = counters_.find(key);
    return it == counters_.end() ? 0 : it->second.count;
  }

  bool Contains(const Key& key) const { return counters_.contains(key); }

  uint64_t total_observed() const { return total_; }
  size_t size() const { return counters_.size(); }
  size_t capacity() const { return capacity_; }

  // Halves every counter (and error), dropping keys that reach zero. Rebuild
  // order is canonicalized count-ascending (see file comment).
  void Decay() {
    std::map<uint64_t, std::vector<Key>> old_buckets;
    old_buckets.swap(buckets_);
    total_ /= 2;
    for (const auto& [count, keys] : old_buckets) {
      for (const Key& key : keys) {
        auto it = counters_.find(key);
        ACTOP_CHECK(it != counters_.end());
        it->second.count /= 2;
        it->second.error /= 2;
        if (it->second.count == 0) {
          counters_.erase(it);
        } else {
          Attach(it->second.count, key);
        }
      }
    }
  }

  void Clear() {
    counters_.clear();
    buckets_.clear();
    total_ = 0;
  }

 private:
  struct Counter {
    uint64_t count;
    uint64_t error;
  };

  void Attach(uint64_t count, const Key& key) { buckets_[count].push_back(key); }

  void Detach(uint64_t count, const Key& key) {
    auto it = buckets_.find(count);
    ACTOP_CHECK(it != buckets_.end());
    auto& vec = it->second;
    for (size_t i = 0; i < vec.size(); i++) {
      if (vec[i] == key) {
        vec[i] = vec.back();
        vec.pop_back();
        break;
      }
    }
    if (vec.empty()) {
      buckets_.erase(it);
    }
  }

  size_t capacity_;
  uint64_t total_ = 0;
  std::unordered_map<Key, Counter, Hash> counters_;
  std::map<uint64_t, std::vector<Key>> buckets_;
};

}  // namespace actop

#endif  // SRC_CORE_SPACE_SAVING_REFERENCE_H_
