// Static-graph testbed for the distributed partitioning algorithm.
//
// Holds a global weighted (symmetric) communication graph and a vertex→server
// assignment, materializes each server's LocalGraphView on demand, and drives
// rounds of the pairwise coordination protocol. Used to:
//   * validate Theorem 1 (monotone cost decrease, convergence to a locally
//     optimal balanced partition) on static graphs;
//   * run the unilateral-migration ablation discussed in §4.2;
//   * measure partitioning quality/scaling for Figure 10(f) without paying
//     for full message-level simulation at 1M vertices.

#ifndef SRC_CORE_PARTITION_TESTBED_H_
#define SRC_CORE_PARTITION_TESTBED_H_

#include <set>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"
#include "src/common/rng.h"
#include "src/core/pairwise_partition.h"

namespace actop {

// A global, symmetric, weighted graph.
class WeightedGraph {
 public:
  // Adds w to the (undirected) edge {a, b}. a != b, w > 0.
  void AddEdge(VertexId a, VertexId b, double w);
  void AddVertex(VertexId v);

  size_t num_vertices() const { return adjacency_.size(); }
  size_t num_edges() const { return num_edges_; }
  const std::unordered_map<VertexId, VertexAdjacency>& adjacency() const { return adjacency_; }
  const VertexAdjacency& NeighborsOf(VertexId v) const;

  std::vector<VertexId> Vertices() const;

 private:
  std::unordered_map<VertexId, VertexAdjacency> adjacency_;
  size_t num_edges_ = 0;
};

// Synthetic graph generators used by tests and benchmarks.
//
// Clustered graph: `clusters` groups of `cluster_size` vertices; every vertex
// connects to all members of its group with weight `intra_weight`, plus
// `extra_edges` random cross-group edges of weight `inter_weight`. Models the
// game/players structure of Halo Presence (a game and its 8 players form a
// heavy cluster).
WeightedGraph MakeClusteredGraph(int clusters, int cluster_size, double intra_weight,
                                 int extra_edges, double inter_weight, Rng* rng);

// Uniform random graph (Erdős–Rényi-style by edge count).
WeightedGraph MakeRandomGraph(int vertices, int edges, double max_weight, Rng* rng);

// Clustered graph after session churn: starts from MakeClusteredGraph's
// clique structure, then rewires `churn_fraction` of the vertices into a
// different random cluster (half-strength edges to half its members — the
// player joined a new game but the old session edges are still warm). This
// is the adversarial shape for repartitioners: the initial cluster signal
// points to the *old* placement.
WeightedGraph MakeChurnedClusteredGraph(int clusters, int cluster_size, double intra_weight,
                                        double churn_fraction, Rng* rng);

class PartitionTestbed {
 public:
  // Assigns vertices to `servers` uniformly at random (the Orleans default
  // placement the paper uses as baseline).
  PartitionTestbed(const WeightedGraph* graph, int servers, PairwiseConfig config, uint64_t seed);

  // One protocol round initiated by server p: builds peer plans, contacts
  // peers in ranking order, applies the first accepted exchange.
  // Returns the number of vertices that moved.
  int RunRound(ServerId p);

  // Runs rounds with each server initiating in turn until a full sweep moves
  // nothing (converged) or `max_sweeps` is hit. Returns sweeps executed.
  int RunToConvergence(int max_sweeps = 1000);

  // Unilateral ablation (§4.2 design discussion): every server simultaneously
  // migrates its best candidates toward each peer based on the same snapshot,
  // without coordination — no acceptance check, no counter-offer, balance
  // checked only against snapshot sizes. Models the racing/oscillation
  // behaviour of an uncoordinated design. Returns vertices moved.
  int RunUnilateralSweep();

  // Current total cross-server communication cost.
  double Cost() const;

  // Vertex counts per server.
  std::vector<int64_t> ServerSizes() const;

  // Max |size_p - size_q| over all server pairs.
  int64_t MaxImbalance() const;

  // Verifies local optimality per Theorem 1's definition: every vertex
  // either has non-positive pairwise transfer score toward every other
  // server, or moving it would violate the balance constraint.
  bool IsLocallyOptimal() const;

  ServerId LocationOf(VertexId v) const { return locations_.at(v); }
  int num_servers() const { return num_servers_; }
  int64_t total_migrations() const { return total_migrations_; }

  // Builds server p's view from the global truth (full knowledge).
  LocalGraphView BuildView(ServerId p) const;

  // p's members with at least one observed edge, ascending by id — the
  // canonical vertex-visit order handed to BuildPeerPlansOrdered /
  // DecideExchangeOrdered so protocol decisions do not depend on hash-map
  // iteration (libstdc++-version-stable, and reproducible by the CSR arena's
  // dense ascending scan).
  std::vector<VertexId> SampledMembers(ServerId p) const;

  // §4.2 extension: assigns per-vertex sizes (default 1.0 for all). Must be
  // called before any rounds run; recomputes per-server size totals and
  // switches the balance constraint to size units.
  void SetVertexSizes(std::unordered_map<VertexId, double> sizes);
  double ServerSizeOf(ServerId p) const { return size_sums_[static_cast<size_t>(p)]; }
  // Max total-size difference between any two servers.
  double MaxSizeImbalance() const;

 private:
  void ApplyMove(VertexId v, ServerId to);

  const WeightedGraph* graph_;
  int num_servers_;
  PairwiseConfig config_;
  Rng rng_;
  double SizeOf(VertexId v) const;

  std::unordered_map<VertexId, ServerId> locations_;
  // Per-server vertex sets, ordered: every loop over a server's members
  // (view building, size sums) visits ascending ids, so results are
  // byte-stable across standard-library versions.
  std::vector<std::set<VertexId>> members_;
  std::vector<int64_t> sizes_;            // vertex counts per server
  std::unordered_map<VertexId, double> vertex_sizes_;  // empty: uniform 1.0
  std::vector<double> size_sums_;         // total size per server
  int64_t total_migrations_ = 0;
};

}  // namespace actop

#endif  // SRC_CORE_PARTITION_TESTBED_H_
