// Online estimation of the queuing-model parameters (§5.4).
//
// The runtime can measure, per stage and window: the arrival count, and for
// each completed event its wallclock time z and CPU time x. It cannot measure
// blocking time w directly (it may be hidden inside libraries). Following the
// paper, ready time is assumed proportional to compute time with the same
// factor α on all stages (fair OS scheduler assumption):
//     α  = mean over no-blocking stages of (z̄−x̄)/x̄
//     ri = α·x̄i,   si = 1/(z̄i − ri),   βi = x̄i/(z̄i − ri)
//
// Estimates are EWMA-smoothed across windows so a single quiet window does
// not destabilize the allocation.

#ifndef SRC_CORE_PARAM_ESTIMATOR_H_
#define SRC_CORE_PARAM_ESTIMATOR_H_

#include <vector>

#include "src/common/sim_time.h"
#include "src/common/stats.h"
#include "src/core/queuing_model.h"
#include "src/seda/stage.h"

namespace actop {

struct EstimatorConfig {
  // True for stages known to never issue synchronous blocking calls (the set
  // S0 in the paper); at least one stage must be in S0.
  std::vector<bool> no_blocking;
  // EWMA smoothing factor for λ, z̄, x̄ across windows.
  double smoothing = 0.5;
  // Windows with fewer completions than this leave the estimate unchanged.
  uint64_t min_completions = 20;
};

class ParamEstimator {
 public:
  explicit ParamEstimator(EstimatorConfig config);

  // Feeds one measurement window (one entry per stage, aligned with
  // config.no_blocking). `window_length` is the window's duration.
  void AddWindow(const std::vector<StageWindow>& windows, SimDuration window_length);

  // True once every stage has at least one usable estimate.
  bool ready() const;

  // Estimated per-stage parameters (rates in events/sec). Only valid when
  // ready(). Stages with no traffic get lambda = 0 and a conservative s.
  // The reference points into a scratch buffer owned by the estimator and is
  // invalidated by the next Estimate() call; callers that need to keep the
  // parameters copy them (vector copy-assign reuses the destination's
  // capacity, so a periodic controller still allocates nothing at steady
  // state).
  const std::vector<StageParams>& Estimate() const;

  // The current ready-time factor α (for tests/inspection).
  double alpha() const { return alpha_.initialized() ? alpha_.value() : 0.0; }

 private:
  struct StageEstimate {
    Ewma lambda{0.5};
    Ewma mean_z{0.5};
    Ewma mean_x{0.5};
  };

  EstimatorConfig config_;
  std::vector<StageEstimate> stages_;
  Ewma alpha_{0.5};
  // Backing store for Estimate(); sized once to the stage count.
  mutable std::vector<StageParams> params_scratch_;
};

}  // namespace actop

#endif  // SRC_CORE_PARAM_ESTIMATOR_H_
