#include "src/core/offline_partitioner.h"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <vector>

#include "src/common/check.h"

namespace actop {

namespace {

// Balanced BFS growth: repeatedly grow regions from the highest-degree
// unassigned seed, round-robin across servers.
std::unordered_map<VertexId, ServerId> InitialAssignment(const WeightedGraph& graph,
                                                         int servers) {
  std::vector<VertexId> vertices = graph.Vertices();
  // Heaviest (by total incident weight) vertices first make better seeds.
  std::vector<std::pair<double, VertexId>> by_weight;
  by_weight.reserve(vertices.size());
  for (VertexId v : vertices) {
    double w = 0.0;
    for (const auto& [u, weight] : graph.NeighborsOf(v)) {
      w += weight;
    }
    by_weight.emplace_back(w, v);
  }
  std::sort(by_weight.begin(), by_weight.end(), std::greater<>());

  std::unordered_map<VertexId, ServerId> assignment;
  const size_t target = (vertices.size() + static_cast<size_t>(servers) - 1) /
                        static_cast<size_t>(servers);
  std::vector<size_t> sizes(static_cast<size_t>(servers), 0);
  ServerId current = 0;
  size_t cursor = 0;
  std::deque<VertexId> frontier;
  while (assignment.size() < vertices.size()) {
    if (frontier.empty() || sizes[static_cast<size_t>(current)] >= target) {
      if (sizes[static_cast<size_t>(current)] >= target) {
        current = static_cast<ServerId>((current + 1) % servers);
        frontier.clear();
      }
      // Seed with the heaviest unassigned vertex.
      while (cursor < by_weight.size() && assignment.contains(by_weight[cursor].second)) {
        cursor++;
      }
      if (cursor >= by_weight.size()) {
        break;
      }
      frontier.push_back(by_weight[cursor].second);
    }
    const VertexId v = frontier.front();
    frontier.pop_front();
    if (assignment.contains(v)) {
      continue;
    }
    assignment.emplace(v, current);
    sizes[static_cast<size_t>(current)]++;
    for (const auto& [u, w] : graph.NeighborsOf(v)) {
      if (!assignment.contains(u)) {
        frontier.push_back(u);
      }
    }
  }
  return assignment;
}

}  // namespace

OfflinePartitionResult OfflinePartition(const WeightedGraph& graph, int servers,
                                        int64_t balance_delta, int max_passes) {
  ACTOP_CHECK(servers >= 2);
  OfflinePartitionResult result;
  result.assignment = InitialAssignment(graph, servers);

  std::vector<int64_t> sizes(static_cast<size_t>(servers), 0);
  for (const auto& [v, s] : result.assignment) {
    sizes[static_cast<size_t>(s)]++;
  }

  // Anchor both endpoints of every move to the mean ± δ/2 band so the global
  // pairwise imbalance stays within δ (same invariant as PairwiseConfig).
  const double target =
      static_cast<double>(result.assignment.size()) / static_cast<double>(servers);
  const double lo = target - static_cast<double>(balance_delta) / 2.0;
  const double hi = target + static_cast<double>(balance_delta) / 2.0;

  const std::vector<VertexId> vertices = graph.Vertices();
  for (int pass = 0; pass < max_passes; pass++) {
    result.refinement_passes = pass + 1;
    int moves = 0;
    for (VertexId v : vertices) {
      const ServerId from = result.assignment.at(v);
      double local_weight = 0.0;
      std::unordered_map<ServerId, double> remote_weight;
      for (const auto& [u, w] : graph.NeighborsOf(v)) {
        const ServerId u_loc = result.assignment.at(u);
        if (u_loc == from) {
          local_weight += w;
        } else {
          remote_weight[u_loc] += w;
        }
      }
      ServerId best = kNoServer;
      double best_gain = 0.0;
      for (const auto& [q, weight] : remote_weight) {
        const double gain = weight - local_weight;
        if (gain <= best_gain) {
          continue;
        }
        const auto sp = static_cast<double>(sizes[static_cast<size_t>(from)]);
        const auto sq = static_cast<double>(sizes[static_cast<size_t>(q)]);
        if (sp - 1.0 < lo || sq + 1.0 > hi) {
          continue;
        }
        best = q;
        best_gain = gain;
      }
      if (best != kNoServer) {
        sizes[static_cast<size_t>(from)]--;
        sizes[static_cast<size_t>(best)]++;
        result.assignment[v] = best;
        moves++;
      }
    }
    if (moves == 0) {
      break;
    }
  }
  result.cut_cost = CutCost(graph.adjacency(), result.assignment);
  return result;
}

}  // namespace actop
