// Queuing model of a SEDA server and the latency-minimization problem (*).
//
// Implements §5.2–5.3 of the paper. A server with K stages and p processors
// is modeled as a Jackson network of M/M/1 queues; the proxy objective is
//
//   F(t) = 1/λtot · Σ_i λi / (si·ti − λi)  +  η · Σ_i ti
//
// subject to si·ti ≥ λi for all i and Σ_i ti·βi ≤ p.
//
// All rates are events per second; η is seconds per thread.

#ifndef SRC_CORE_QUEUING_MODEL_H_
#define SRC_CORE_QUEUING_MODEL_H_

#include <vector>

namespace actop {

struct StageParams {
  double lambda = 0.0;  // arrival rate (events/sec)
  double s = 0.0;       // service rate per thread (events/sec); s = 1/(x+w)
  double beta = 1.0;    // processor fraction consumed per thread; x/(x+w)
};

struct AllocationProblem {
  std::vector<StageParams> stages;
  int processors = 1;   // p
  double eta = 1e-4;    // thread penalty (seconds per thread)
};

// Total arrival rate λtot = Σ λi.
double TotalArrivalRate(const AllocationProblem& problem);

// Whether the system is feasible: Σ λi·βi/si < p (Theorem 2's premise).
bool IsFeasible(const AllocationProblem& problem);

// ζ from Theorem 2; the closed form applies when eta >= ζ.
double Zeta(const AllocationProblem& problem);

// Proxy objective F(t) for a (possibly fractional) allocation. Returns
// +infinity if some stage is unstable (si·ti <= λi). Does NOT include the
// CPU-capacity constraint; callers enforce it separately.
double ProxyLatency(const AllocationProblem& problem, const std::vector<double>& threads);

// The weighted mean-delay part of the objective only (no η penalty), useful
// for reporting expected in-server latency in seconds.
double ModelLatencySeconds(const AllocationProblem& problem, const std::vector<double>& threads);

// CPU-capacity usage Σ ti·βi of an allocation.
double CpuUsage(const AllocationProblem& problem, const std::vector<double>& threads);

}  // namespace actop

#endif  // SRC_CORE_QUEUING_MODEL_H_
