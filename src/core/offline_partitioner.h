// Centralized offline balanced graph partitioner.
//
// Plays the role of METIS in the paper's §4.1 discussion: a single-node
// algorithm that sees the whole graph. Used as the quality/runtime baseline
// for the distributed pairwise algorithm in tests and the micro benchmark
// (the paper reports that centralized partitioning of multi-million-vertex
// graphs took hours and could not keep up with graph churn).
//
// Algorithm: BFS-based seeded growth for the initial balanced assignment,
// then Kernighan–Lin-style refinement passes (best positive-gain single-vertex
// moves under the balance constraint) until a pass makes no move.

#ifndef SRC_CORE_OFFLINE_PARTITIONER_H_
#define SRC_CORE_OFFLINE_PARTITIONER_H_

#include <unordered_map>

#include "src/common/ids.h"
#include "src/core/partition_testbed.h"

namespace actop {

struct OfflinePartitionResult {
  std::unordered_map<VertexId, ServerId> assignment;
  double cut_cost = 0.0;
  int refinement_passes = 0;
};

// Partitions `graph` into `servers` parts with vertex-count imbalance at most
// `balance_delta`.
OfflinePartitionResult OfflinePartition(const WeightedGraph& graph, int servers,
                                        int64_t balance_delta, int max_passes = 50);

}  // namespace actop

#endif  // SRC_CORE_OFFLINE_PARTITIONER_H_
