// Retained seed implementations of BuildPeerPlans / DecideExchange, used as
// the differential-test and benchmark baseline for the indexed-heap rewrite
// in pairwise_partition.cc. Do not optimize: this preserves the seed's
// per-vertex std::unordered_map remote-weight accumulation and the
// lazy-deletion priority_queue + two-unordered_map GreedyHeap so the rewrite
// can be checked decision-for-decision against it (see
// tests/core/exchange_golden_test.cc) and timed against it
// (bench/bench_partition.cc scenario "exchange_round").
//
// Candidate construction is shared with the optimized path (the flat
// CandidateAdjacency build in MakeCandidate); what this file retains is the
// seed's *algorithmic* hot structures, which is what the benchmark compares.
// Both entry points operate on the public types and must keep producing
// byte-identical plans and decisions to the optimized versions.

#ifndef SRC_CORE_PAIRWISE_PARTITION_REFERENCE_H_
#define SRC_CORE_PAIRWISE_PARTITION_REFERENCE_H_

#include <vector>

#include "src/core/pairwise_partition.h"

namespace actop::seedref {

std::vector<PeerPlan> BuildPeerPlans(const LocalGraphView& view, const PairwiseConfig& config);

ExchangeDecision DecideExchange(const LocalGraphView& view, const ExchangeRequest& request,
                                const PairwiseConfig& config);

}  // namespace actop::seedref

#endif  // SRC_CORE_PAIRWISE_PARTITION_REFERENCE_H_
