#include "src/core/pairwise_partition.h"

#include <algorithm>
#include <cstdlib>
#include <queue>
#include <utility>

#include "src/common/check.h"
#include "src/core/exchange_heap.h"

namespace actop {

bool PairwiseConfig::BalanceAllows(double from_size, double to_size, double move_size) const {
  const double new_from = from_size - move_size;
  const double new_to = to_size + move_size;
  if (target_size >= 0.0) {
    const double lo = target_size - static_cast<double>(balance_delta) / 2.0;
    const double hi = target_size + static_cast<double>(balance_delta) / 2.0;
    // Only the bound the move pushes toward matters: the shrinking server
    // must not fall below lo, the growing one must not rise above hi. (A
    // server outside the band for the other reason is being *helped* by the
    // move.)
    return new_from >= lo && new_to <= hi;
  }
  return std::abs(new_from - new_to) <= static_cast<double>(balance_delta);
}

ServerId LocalGraphView::LocationOf(VertexId v) const {
  if (auto it = location.find(v); it != location.end()) {
    return it->second;
  }
  if (adjacency.contains(v)) {
    return self;
  }
  return kNoServer;
}

double LocalGraphView::SizeOf(VertexId v) const {
  auto it = vertex_size.find(v);
  return it == vertex_size.end() ? 1.0 : it->second;
}

double LocalGraphView::TotalSize() const {
  return total_local_size >= 0.0 ? total_local_size
                                 : static_cast<double>(num_local_vertices);
}

double TransferScore(const LocalGraphView& view, VertexId v, ServerId q) {
  auto it = view.adjacency.find(v);
  if (it == view.adjacency.end()) {
    return 0.0;
  }
  double gain = 0.0;
  for (const auto& [u, w] : it->second) {
    const ServerId loc = view.LocationOf(u);
    if (loc == q) {
      gain += w;  // remote edge becomes local
    } else if (loc == view.self) {
      gain -= w;  // local edge becomes remote
    }
  }
  return gain;
}

namespace {

// Keeps the k highest-scoring candidates using a min-heap.
class TopK {
 public:
  explicit TopK(size_t k) : k_(k) {}

  void Offer(VertexId v, double score) {
    if (heap_.size() < k_) {
      heap_.emplace(score, v);
      return;
    }
    if (score > heap_.top().first) {
      heap_.pop();
      heap_.emplace(score, v);
    }
  }

  std::vector<std::pair<VertexId, double>> Drain() {
    std::vector<std::pair<VertexId, double>> out;
    out.reserve(heap_.size());
    while (!heap_.empty()) {
      out.emplace_back(heap_.top().second, heap_.top().first);
      heap_.pop();
    }
    std::reverse(out.begin(), out.end());  // highest score first
    return out;
  }

 private:
  size_t k_;
  // (score, vertex); min-heap by score, ties broken by vertex id for
  // determinism.
  std::priority_queue<std::pair<double, VertexId>, std::vector<std::pair<double, VertexId>>,
                      std::greater<>>
      heap_;
};

Candidate MakeCandidate(const LocalGraphView& view, VertexId v, double score) {
  Candidate c;
  c.vertex = v;
  c.score = score;
  c.size = view.SizeOf(v);
  const auto it = view.adjacency.find(v);
  ACTOP_CHECK(it != view.adjacency.end());
  std::vector<CandidateAdjacency::value_type> edges;
  edges.reserve(it->second.size());
  for (const auto& [u, w] : it->second) {
    edges.emplace_back(u, CandidateEdge{w, view.LocationOf(u)});
  }
  c.edges.bulk_assign(std::move(edges));
  return c;
}

}  // namespace

std::vector<PeerPlan> BuildPeerPlans(const LocalGraphView& view, const PairwiseConfig& config) {
  // Per-vertex, per-server weight sums in one pass over the sampled edges.
  std::unordered_map<ServerId, TopK> per_peer;
  // Remote server -> summed weight of the current vertex's edges into it.
  // One reused vector with linear scan instead of a fresh hash map per
  // vertex: the entry count is bounded by the server count, which is tiny
  // next to the hash-node allocations this used to cost. Accumulation order
  // per server is unchanged (driven by the adjacency iteration), so sums are
  // bit-identical.
  std::vector<std::pair<ServerId, double>> remote_weight;
  for (const auto& [v, adj] : view.adjacency) {
    double local_weight = 0.0;
    remote_weight.clear();
    for (const auto& [u, w] : adj) {
      const ServerId loc = view.LocationOf(u);
      if (loc == view.self) {
        local_weight += w;
      } else if (loc != kNoServer) {
        bool found = false;
        for (auto& [server, weight] : remote_weight) {
          if (server == loc) {
            weight += w;
            found = true;
            break;
          }
        }
        if (!found) {
          remote_weight.emplace_back(loc, w);
        }
      }
    }
    for (const auto& [server, weight] : remote_weight) {
      // §4.2 extension: migration cost proportional to the actor's size.
      const double score =
          weight - local_weight - config.migration_cost_weight * view.SizeOf(v);
      if (score > config.min_score) {
        per_peer.try_emplace(server, config.candidate_set_size).first->second.Offer(v, score);
      }
    }
  }

  std::vector<PeerPlan> plans;
  plans.reserve(per_peer.size());
  for (auto& [server, topk] : per_peer) {
    PeerPlan plan;
    plan.peer = server;
    double total_size = 0.0;
    for (const auto& [v, score] : topk.Drain()) {
      // §4.2 extension: optionally cap the candidate set by total size.
      const double size = view.SizeOf(v);
      if (config.max_candidate_total_size > 0.0 &&
          total_size + size > config.max_candidate_total_size && !plan.candidates.empty()) {
        break;  // candidates are sorted best-first; stop at the budget
      }
      total_size += size;
      plan.total_score += score;
      plan.candidates.push_back(MakeCandidate(view, v, score));
    }
    plans.push_back(std::move(plan));
  }
  std::sort(plans.begin(), plans.end(), [](const PeerPlan& a, const PeerPlan& b) {
    if (a.total_score != b.total_score) {
      return a.total_score > b.total_score;
    }
    return a.peer < b.peer;
  });
  return plans;
}

namespace {

double EdgeWeightBetween(const Candidate& a, const Candidate& b) {
  if (auto it = a.edges.find(b.vertex); it != a.edges.end()) {
    return it->second.weight;
  }
  if (auto it = b.edges.find(a.vertex); it != b.edges.end()) {
    return it->second.weight;
  }
  return 0.0;
}

}  // namespace

ExchangeDecision DecideExchange(const LocalGraphView& view, const ExchangeRequest& request,
                                const PairwiseConfig& config) {
  ExchangeDecision decision;
  const ServerId p = request.from;
  const ServerId q = view.self;
  ACTOP_CHECK(p != q);

  // Step 2: q determines its own candidate set T toward p, ignoring S.
  std::vector<Candidate> t_candidates;
  for (const PeerPlan& plan : BuildPeerPlans(view, config)) {
    if (plan.peer == p) {
      t_candidates = plan.candidates;
      break;
    }
  }

  // Score the offered candidates S from q's perspective: q's own location
  // knowledge overrides p's hints (the graph may have changed since p
  // sampled it).
  auto score_s = [&](const Candidate& c) {
    double gain = -config.migration_cost_weight * c.size;
    for (const auto& [u, edge] : c.edges) {
      ServerId loc = view.LocationOf(u);
      if (loc == kNoServer) {
        loc = edge.location_hint;
      }
      if (loc == q) {
        gain += edge.weight;
      } else if (loc == p) {
        gain -= edge.weight;
      }
    }
    return gain;
  };
  auto score_t = [&](const Candidate& c) { return c.score; };  // computed on view already

  // Indexed max-heaps (src/core/exchange_heap.h): same (score, vertex)
  // ordering as the seed's lazy-deletion priority_queue, but score updates
  // sift in place, so the selection loop never walks stale entries.
  ExchangeHeap s_heap;
  ExchangeHeap t_heap;
  s_heap.Init(request.candidates, score_s);
  t_heap.Init(t_candidates, score_t);

  double size_p = request.from_total_size >= 0.0
                      ? request.from_total_size
                      : static_cast<double>(request.from_num_vertices);
  double size_q = view.TotalSize();

  // Step 3: jointly determine S0 and T0 (iterative greedy, §4.2).
  while (true) {
    VertexId sv = 0;
    VertexId tv = 0;
    double s_score = 0.0;
    double t_score = 0.0;
    const bool has_s = s_heap.PeekTop(&sv, &s_score) && s_score > config.min_score;
    const bool has_t = t_heap.PeekTop(&tv, &t_score) && t_score > config.min_score;
    if (!has_s && !has_t) {
      break;
    }

    // Applies one move (from_s: p->q, else q->p) and propagates score
    // updates: after `moved` switches sides, an edge (moved, u) flips its
    // contribution to u's transfer score by 2w — same-side candidates gain,
    // opposite-side candidates lose.
    auto apply_move = [&](bool from_s) {
      ExchangeHeap& from = from_s ? s_heap : t_heap;
      const VertexId moved = from_s ? sv : tv;
      const Candidate* moved_candidate = from.CandidateOf(moved);
      const double moved_size = moved_candidate->size;
      if (from_s) {
        decision.accepted.push_back(moved);
        s_heap.Remove(moved);
        size_p -= moved_size;
        size_q += moved_size;
      } else {
        decision.counter_offer.push_back(*moved_candidate);
        t_heap.Remove(moved);
        size_p += moved_size;
        size_q -= moved_size;
      }
      for (const ExchangeHeap::Slot& slot : s_heap.slots()) {
        if (slot.vertex == moved || !ExchangeHeap::Live(slot)) {
          continue;
        }
        const double w = EdgeWeightBetween(*slot.candidate, *moved_candidate);
        if (w > 0.0) {
          s_heap.Update(slot.vertex, from_s ? +2.0 * w : -2.0 * w);
        }
      }
      for (const ExchangeHeap::Slot& slot : t_heap.slots()) {
        if (slot.vertex == moved || !ExchangeHeap::Live(slot)) {
          continue;
        }
        const double w = EdgeWeightBetween(*slot.candidate, *moved_candidate);
        if (w > 0.0) {
          t_heap.Update(slot.vertex, from_s ? -2.0 * w : +2.0 * w);
        }
      }
    };

    // Prefer the globally highest score; fall back to the other heap when the
    // balance constraint blocks the preferred move; as a last resort pair one
    // move from each side (net size change zero) so tight balance budgets do
    // not freeze profitable swaps.
    bool take_s;
    if (has_s && has_t) {
      take_s = s_score >= t_score;
    } else {
      take_s = has_s;
    }
    const bool s_fits =
        has_s && config.BalanceAllows(size_p, size_q, s_heap.CandidateOf(sv)->size);
    const bool t_fits =
        has_t && config.BalanceAllows(size_q, size_p, t_heap.CandidateOf(tv)->size);
    if (take_s && !s_fits) {
      take_s = false;
    }
    if (!take_s && !t_fits) {
      if (s_fits) {
        take_s = true;
      } else if (has_s && has_t &&
                 (s_heap.CandidateOf(sv)->size >= t_heap.CandidateOf(tv)->size
                      ? config.BalanceAllows(size_p, size_q, s_heap.CandidateOf(sv)->size -
                                                                 t_heap.CandidateOf(tv)->size)
                      : config.BalanceAllows(size_q, size_p, t_heap.CandidateOf(tv)->size -
                                                                 s_heap.CandidateOf(sv)->size))) {
        // A paired swap only shifts the size difference; balance must allow
        // that net shift (always true for uniform actors).
        // Paired swap (net size change zero). Evaluate the pair BEFORE
        // applying anything: after the first endpoint switches sides, the
        // second's score drops by 2·w(sv, tv) if they share an edge. Both
        // halves must remain individually profitable so the swap strictly
        // reduces cost and the balance invariant holds.
        const Candidate* s_cand = s_heap.CandidateOf(sv);
        const Candidate* t_cand = t_heap.CandidateOf(tv);
        const double cross = EdgeWeightBetween(*s_cand, *t_cand);
        const double adj_s = s_score - 2.0 * cross;
        const double adj_t = t_score - 2.0 * cross;
        const bool s_first = s_score >= t_score;
        const double second_score = s_first ? adj_t : adj_s;
        if (second_score <= config.min_score) {
          break;  // no jointly profitable swap available
        }
        apply_move(s_first);
        apply_move(!s_first);
        continue;
      } else {
        break;  // neither side can move without violating balance
      }
    }
    apply_move(take_s);
  }
  return decision;
}

double CutCost(const std::unordered_map<VertexId, VertexAdjacency>& adjacency,
               const std::unordered_map<VertexId, ServerId>& locations) {
  double cost = 0.0;
  for (const auto& [v, adj] : adjacency) {
    const auto v_loc = locations.find(v);
    ACTOP_CHECK(v_loc != locations.end());
    for (const auto& [u, w] : adj) {
      // Count each unordered pair once: from the smaller endpoint, or from v
      // when the reverse direction is not present in the map.
      if (u < v) {
        const auto u_adj = adjacency.find(u);
        if (u_adj != adjacency.end() && u_adj->second.contains(v)) {
          continue;  // counted when iterating u
        }
      }
      const auto u_loc = locations.find(u);
      ACTOP_CHECK(u_loc != locations.end());
      if (v_loc->second != u_loc->second) {
        cost += w;
      }
    }
  }
  return cost;
}

}  // namespace actop
