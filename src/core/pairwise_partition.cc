#include "src/core/pairwise_partition.h"

#include <algorithm>
#include <cstdlib>
#include <queue>
#include <utility>

#include "src/common/check.h"
#include "src/core/exchange_heap.h"
#include "src/core/joint_selection.h"

namespace actop {

bool PairwiseConfig::BalanceAllows(double from_size, double to_size, double move_size) const {
  const double new_from = from_size - move_size;
  const double new_to = to_size + move_size;
  if (target_size >= 0.0) {
    const double lo = target_size - static_cast<double>(balance_delta) / 2.0;
    const double hi = target_size + static_cast<double>(balance_delta) / 2.0;
    // Only the bound the move pushes toward matters: the shrinking server
    // must not fall below lo, the growing one must not rise above hi. (A
    // server outside the band for the other reason is being *helped* by the
    // move.)
    return new_from >= lo && new_to <= hi;
  }
  return std::abs(new_from - new_to) <= static_cast<double>(balance_delta);
}

ServerId LocalGraphView::LocationOf(VertexId v) const {
  if (auto it = location.find(v); it != location.end()) {
    return it->second;
  }
  if (adjacency.contains(v)) {
    return self;
  }
  return kNoServer;
}

double LocalGraphView::SizeOf(VertexId v) const {
  auto it = vertex_size.find(v);
  return it == vertex_size.end() ? 1.0 : it->second;
}

double LocalGraphView::TotalSize() const {
  return total_local_size >= 0.0 ? total_local_size
                                 : static_cast<double>(num_local_vertices);
}

double TransferScore(const LocalGraphView& view, VertexId v, ServerId q) {
  auto it = view.adjacency.find(v);
  if (it == view.adjacency.end()) {
    return 0.0;
  }
  double gain = 0.0;
  for (const auto& [u, w] : it->second) {
    const ServerId loc = view.LocationOf(u);
    if (loc == q) {
      gain += w;  // remote edge becomes local
    } else if (loc == view.self) {
      gain -= w;  // local edge becomes remote
    }
  }
  return gain;
}

namespace {

// Keeps the k highest-scoring candidates using a min-heap.
class TopK {
 public:
  explicit TopK(size_t k) : k_(k) {}

  void Offer(VertexId v, double score) {
    if (heap_.size() < k_) {
      heap_.emplace(score, v);
      return;
    }
    if (score > heap_.top().first) {
      heap_.pop();
      heap_.emplace(score, v);
    }
  }

  std::vector<std::pair<VertexId, double>> Drain() {
    std::vector<std::pair<VertexId, double>> out;
    out.reserve(heap_.size());
    while (!heap_.empty()) {
      out.emplace_back(heap_.top().second, heap_.top().first);
      heap_.pop();
    }
    std::reverse(out.begin(), out.end());  // highest score first
    return out;
  }

 private:
  size_t k_;
  // (score, vertex); min-heap by score, ties broken by vertex id for
  // determinism.
  std::priority_queue<std::pair<double, VertexId>, std::vector<std::pair<double, VertexId>>,
                      std::greater<>>
      heap_;
};

Candidate MakeCandidate(const LocalGraphView& view, VertexId v, double score) {
  Candidate c;
  c.vertex = v;
  c.score = score;
  c.size = view.SizeOf(v);
  const auto it = view.adjacency.find(v);
  ACTOP_CHECK(it != view.adjacency.end());
  std::vector<CandidateAdjacency::value_type> edges;
  edges.reserve(it->second.size());
  for (const auto& [u, w] : it->second) {
    edges.emplace_back(u, CandidateEdge{w, view.LocationOf(u)});
  }
  c.edges.bulk_assign(std::move(edges));
  return c;
}

// Shared planning body: `for_each_vertex(fn)` must invoke
// fn(VertexId, const VertexAdjacency&) once per local vertex. The visit
// order decides top-k tie-breaking, so BuildPeerPlans and
// BuildPeerPlansOrdered differ only in the provider they pass here.
template <typename ForEachVertex>
std::vector<PeerPlan> BuildPeerPlansImpl(const LocalGraphView& view, const PairwiseConfig& config,
                                         ForEachVertex&& for_each_vertex) {
  // Per-vertex, per-server weight sums in one pass over the sampled edges.
  std::unordered_map<ServerId, TopK> per_peer;
  // Remote server -> summed weight of the current vertex's edges into it.
  // One reused vector with linear scan instead of a fresh hash map per
  // vertex: the entry count is bounded by the server count, which is tiny
  // next to the hash-node allocations this used to cost. Accumulation order
  // per server is unchanged (driven by the adjacency iteration), so sums are
  // bit-identical.
  std::vector<std::pair<ServerId, double>> remote_weight;
  for_each_vertex([&](VertexId v, const VertexAdjacency& adj) {
    double local_weight = 0.0;
    remote_weight.clear();
    for (const auto& [u, w] : adj) {
      const ServerId loc = view.LocationOf(u);
      if (loc == view.self) {
        local_weight += w;
      } else if (loc != kNoServer) {
        bool found = false;
        for (auto& [server, weight] : remote_weight) {
          if (server == loc) {
            weight += w;
            found = true;
            break;
          }
        }
        if (!found) {
          remote_weight.emplace_back(loc, w);
        }
      }
    }
    for (const auto& [server, weight] : remote_weight) {
      // §4.2 extension: migration cost proportional to the actor's size.
      const double score =
          weight - local_weight - config.migration_cost_weight * view.SizeOf(v);
      if (score > config.min_score) {
        per_peer.try_emplace(server, config.candidate_set_size).first->second.Offer(v, score);
      }
    }
  });

  std::vector<PeerPlan> plans;
  plans.reserve(per_peer.size());
  for (auto& [server, topk] : per_peer) {
    PeerPlan plan;
    plan.peer = server;
    double total_size = 0.0;
    for (const auto& [v, score] : topk.Drain()) {
      // §4.2 extension: optionally cap the candidate set by total size.
      const double size = view.SizeOf(v);
      if (config.max_candidate_total_size > 0.0 &&
          total_size + size > config.max_candidate_total_size && !plan.candidates.empty()) {
        break;  // candidates are sorted best-first; stop at the budget
      }
      total_size += size;
      plan.total_score += score;
      plan.candidates.push_back(MakeCandidate(view, v, score));
    }
    plans.push_back(std::move(plan));
  }
  std::sort(plans.begin(), plans.end(), [](const PeerPlan& a, const PeerPlan& b) {
    if (a.total_score != b.total_score) {
      return a.total_score > b.total_score;
    }
    return a.peer < b.peer;
  });
  return plans;
}

}  // namespace

std::vector<PeerPlan> BuildPeerPlans(const LocalGraphView& view, const PairwiseConfig& config) {
  return BuildPeerPlansImpl(view, config, [&](auto&& fn) {
    for (const auto& [v, adj] : view.adjacency) {
      fn(v, adj);
    }
  });
}

std::vector<PeerPlan> BuildPeerPlansOrdered(const LocalGraphView& view,
                                            const PairwiseConfig& config,
                                            const std::vector<VertexId>& order) {
  return BuildPeerPlansImpl(view, config, [&](auto&& fn) {
    for (VertexId v : order) {
      const auto it = view.adjacency.find(v);
      if (it != view.adjacency.end()) {
        fn(v, it->second);
      }
    }
  });
}

namespace {

ExchangeDecision DecideExchangeImpl(const LocalGraphView& view, const ExchangeRequest& request,
                                    const PairwiseConfig& config,
                                    const std::vector<VertexId>* order) {
  ExchangeDecision decision;
  const ServerId p = request.from;
  const ServerId q = view.self;
  ACTOP_CHECK(p != q);

  // Step 2: q determines its own candidate set T toward p, ignoring S.
  std::vector<Candidate> t_candidates;
  const std::vector<PeerPlan> plans =
      order ? BuildPeerPlansOrdered(view, config, *order) : BuildPeerPlans(view, config);
  for (const PeerPlan& plan : plans) {
    if (plan.peer == p) {
      t_candidates = plan.candidates;
      break;
    }
  }

  // Score the offered candidates S from q's perspective: q's own location
  // knowledge overrides p's hints (the graph may have changed since p
  // sampled it).
  auto score_s = [&](const Candidate& c) {
    double gain = -config.migration_cost_weight * c.size;
    for (const auto& [u, edge] : c.edges) {
      ServerId loc = view.LocationOf(u);
      if (loc == kNoServer) {
        loc = edge.location_hint;
      }
      if (loc == q) {
        gain += edge.weight;
      } else if (loc == p) {
        gain -= edge.weight;
      }
    }
    return gain;
  };
  auto score_t = [&](const Candidate& c) { return c.score; };  // computed on view already

  // Indexed max-heaps (src/core/exchange_heap.h): same (score, vertex)
  // ordering as the seed's lazy-deletion priority_queue, but score updates
  // sift in place, so the selection loop never walks stale entries.
  ExchangeHeap s_heap;
  ExchangeHeap t_heap;
  s_heap.Init(request.candidates, score_s);
  t_heap.Init(t_candidates, score_t);

  double size_p = request.from_total_size >= 0.0
                      ? request.from_total_size
                      : static_cast<double>(request.from_num_vertices);
  double size_q = view.TotalSize();

  // Step 3: jointly determine S0 and T0 (iterative greedy, §4.2) — the loop
  // itself lives in joint_selection.h, shared with the CSR arena data plane.
  RunJointSelection(
      s_heap, t_heap, config, size_p, size_q,
      [&](VertexId moved, const Candidate*) { decision.accepted.push_back(moved); },
      [&](VertexId, const Candidate* c) { decision.counter_offer.push_back(*c); });
  return decision;
}

}  // namespace

ExchangeDecision DecideExchange(const LocalGraphView& view, const ExchangeRequest& request,
                                const PairwiseConfig& config) {
  return DecideExchangeImpl(view, request, config, nullptr);
}

ExchangeDecision DecideExchangeOrdered(const LocalGraphView& view, const ExchangeRequest& request,
                                       const PairwiseConfig& config,
                                       const std::vector<VertexId>& order) {
  return DecideExchangeImpl(view, request, config, &order);
}

double CutCost(const std::unordered_map<VertexId, VertexAdjacency>& adjacency,
               const std::unordered_map<VertexId, ServerId>& locations) {
  double cost = 0.0;
  for (const auto& [v, adj] : adjacency) {
    const auto v_loc = locations.find(v);
    ACTOP_CHECK(v_loc != locations.end());
    for (const auto& [u, w] : adj) {
      // Count each unordered pair once: from the smaller endpoint, or from v
      // when the reverse direction is not present in the map.
      if (u < v) {
        const auto u_adj = adjacency.find(u);
        if (u_adj != adjacency.end() && u_adj->second.contains(v)) {
          continue;  // counted when iterating u
        }
      }
      const auto u_loc = locations.find(u);
      ACTOP_CHECK(u_loc != locations.end());
      if (v_loc->second != u_loc->second) {
        cost += w;
      }
    }
  }
  return cost;
}

}  // namespace actop
