// The distributed balanced graph-partitioning algorithm of §4.2 — pure
// algorithm layer, independent of the simulator and the actor runtime.
//
// Each server holds a LocalGraphView: its (sampled) weighted adjacency for
// local vertices plus the last-known server of every referenced remote
// vertex. The pairwise coordination protocol (Alg. 1 in the paper) is
// expressed as three pure functions:
//
//   BuildPeerPlans   — p computes, for each peer q, the candidate set S of
//                      its top-k vertices by transfer score Rp,q(v) and ranks
//                      peers by total score (§ "Determining the candidate set").
//   DecideExchange   — q accepts/rejects subsets: builds its own candidate
//                      set T toward p, then greedily and jointly picks
//                      S0 ⊆ S, T0 ⊆ T with two max-heaps, updating scores
//                      after every pick and enforcing the balance constraint
//                      ||V_p| − |V_q|| ≤ δ (§ "Determining exchange subsets").
//   TransferScore    — Rp,q(v) = Σ_{u∈V_q} w(v,u) − Σ_{u∈V_p} w(v,u).
//
// The runtime's PartitionAgent (src/runtime/partition_agent.h) wraps these in
// control messages; the static-graph test harness (partition_testbed.h)
// drives them directly to validate Theorem 1.

#ifndef SRC_CORE_PAIRWISE_PARTITION_H_
#define SRC_CORE_PAIRWISE_PARTITION_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/ids.h"
#include "src/common/pool_allocator.h"

namespace actop {

// Sparse weighted adjacency of one vertex: peer vertex -> edge weight.
// Node-pooled: partition agents rebuild their sampled views every exchange
// round, and recycling the map nodes keeps that rebuild off the allocator
// (see pool_allocator.h — iteration order is unaffected, which the golden
// tests depend on).
using VertexAdjacency = PooledNodeMap<VertexId, double>;

// What one server knows about the communication graph (possibly sampled and
// partially stale).
struct LocalGraphView {
  ServerId self = kNoServer;
  // Total number of local vertices (actors) — NOT just the sampled ones; the
  // balance constraint is on actor counts (or on total size, below).
  int64_t num_local_vertices = 0;
  // Sampled adjacency for local vertices that have observed edges.
  PooledNodeMap<VertexId, VertexAdjacency> adjacency;
  // Last-known location of every vertex referenced in `adjacency` (remote
  // endpoints; local vertices may be omitted and default to `self`).
  PooledNodeMap<VertexId, ServerId> location;

  // §4.2 extension — heterogeneous actors: per-vertex sizes (memory/compute
  // footprint) for local vertices. Empty = every vertex has size 1. When
  // used, `total_local_size` must be the sum over ALL local vertices.
  PooledNodeMap<VertexId, double> vertex_size;
  double total_local_size = -1.0;  // < 0: use num_local_vertices

  // Location lookup with local default.
  ServerId LocationOf(VertexId v) const;
  // Size lookup with default 1.
  double SizeOf(VertexId v) const;
  // Total size (falls back to the vertex count for unit-size graphs).
  double TotalSize() const;
};

struct PairwiseConfig {
  // k — max vertices offered per exchange ("small fraction of the total",
  // §4.1/§4.2; this is the per-exchange migration limit).
  size_t candidate_set_size = 64;
  // δ — allowed difference in vertex counts between any two servers.
  int64_t balance_delta = 16;
  // Mean vertices per server (total actors / servers), when known. A
  // pairwise-only size check lets servers drift apart through chains of
  // exchanges with third parties; anchoring both endpoints to
  // [target − δ/2, target + δ/2] guarantees the global pairwise bound the
  // paper's Theorem 1 states. Negative = unknown; fall back to the pairwise
  // |V_p| − |V_q| check. The runtime learns this from cluster membership and
  // total activation counts.
  double target_size = -1.0;
  // Candidates must have transfer score strictly above this to be offered or
  // accepted (0 == only strict improvements, which Theorem 1 requires).
  double min_score = 0.0;

  // §4.2 extension — migration costs: subtract `migration_cost_weight *
  // size(v)` from every transfer score, so heavyweight actors move only for
  // proportionally larger communication savings. 0 disables the term.
  double migration_cost_weight = 0.0;
  // §4.2 extension — bound the candidate set by total size instead of only
  // by count (0 = unlimited): "we limit the size of the candidate set by the
  // sum of sizes of all actors".
  double max_candidate_total_size = 0.0;

  // True if moving `move_size` worth of vertices from a server currently
  // holding `from_size` (vertex count or total size) to one holding
  // `to_size` keeps the balance invariant. With sized actors, δ and
  // target_size are interpreted in size units.
  bool BalanceAllows(double from_size, double to_size, double move_size = 1.0) const;
};

// One edge of an offered candidate: weight plus the offering server's
// last-known location of the far endpoint, so the receiver can score edges
// to vertices it has never observed. The receiver's own knowledge overrides
// the hint.
struct CandidateEdge {
  double weight = 0.0;
  ServerId location_hint = kNoServer;
};

// Flat sorted-vector map of a candidate's edges. Candidate degree is small
// (bounded by the sampler capacity per vertex), and candidates are built
// once, shipped, and then only probed during the greedy selection — a
// vertex-sorted vector with binary-search lookup beats a node-based hash map
// on every axis here: one allocation, cache-linear scoring loops, no
// per-node overhead on the wire-facing struct. The subset of the
// unordered_map interface the algorithm and tests use is kept verbatim.
class CandidateAdjacency {
 public:
  using value_type = std::pair<VertexId, CandidateEdge>;
  using const_iterator = std::vector<value_type>::const_iterator;

  CandidateAdjacency() = default;
  CandidateAdjacency(std::initializer_list<value_type> init) {
    std::vector<value_type> items(init.begin(), init.end());
    bulk_assign(std::move(items));
  }

  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  void reserve(size_t n) { items_.reserve(n); }

  const_iterator begin() const { return items_.begin(); }
  const_iterator end() const { return items_.end(); }

  const_iterator find(VertexId u) const {
    const auto it = LowerBound(u);
    return it != items_.end() && it->first == u ? it : items_.end();
  }
  bool contains(VertexId u) const { return find(u) != items_.end(); }

  const CandidateEdge& at(VertexId u) const {
    const auto it = find(u);
    ACTOP_CHECK(it != items_.end());
    return it->second;
  }

  // Insert-if-absent (unordered_map::emplace semantics: keep-first).
  void emplace(VertexId u, CandidateEdge edge) {
    const auto it = LowerBound(u);
    if (it == items_.end() || it->first != u) {
      items_.insert(it, value_type{u, edge});
    }
  }

  // Insert-or-reference (unordered_map::operator[] semantics).
  CandidateEdge& operator[](VertexId u) {
    auto it = MutableLowerBound(u);
    if (it == items_.end() || it->first != u) {
      it = items_.insert(it, value_type{u, CandidateEdge{}});
    }
    return it->second;
  }

  // Bulk build from unique-keyed items: one sort instead of per-edge
  // sorted-insertion (used by MakeCandidate).
  void bulk_assign(std::vector<value_type> items) {
    std::sort(items.begin(), items.end(),
              [](const value_type& a, const value_type& b) { return a.first < b.first; });
    items_ = std::move(items);
    for (size_t i = 1; i < items_.size(); i++) {
      ACTOP_DCHECK(items_[i - 1].first != items_[i].first);
    }
  }

  // Drops all edges but keeps the backing buffer — the arena data plane
  // (repartition_arena.cc) recycles Candidate objects across rounds and must
  // not free/reallocate edge storage in steady state.
  void clear() { items_.clear(); }

  // Appends an edge whose key is strictly greater than every present key.
  // Callers that already visit edges in ascending-id order (the CSR slabs)
  // skip bulk_assign's sort entirely.
  void append_ascending(VertexId u, CandidateEdge edge) {
    ACTOP_DCHECK(items_.empty() || items_.back().first < u);
    items_.emplace_back(u, edge);
  }

 private:
  const_iterator LowerBound(VertexId u) const {
    return std::lower_bound(
        items_.begin(), items_.end(), u,
        [](const value_type& item, VertexId key) { return item.first < key; });
  }
  std::vector<value_type>::iterator MutableLowerBound(VertexId u) {
    return std::lower_bound(
        items_.begin(), items_.end(), u,
        [](const value_type& item, VertexId key) { return item.first < key; });
  }

  std::vector<value_type> items_;  // sorted by vertex id
};

// A vertex offered in an exchange, with enough adjacency for the remote side
// to update scores during the greedy joint selection.
struct Candidate {
  VertexId vertex = 0;
  double score = 0.0;  // transfer score at build time (advisory for receiver)
  double size = 1.0;   // vertex size (§4.2 extension; 1 for uniform actors)
  CandidateAdjacency edges;
};

// p's plan toward one peer.
struct PeerPlan {
  ServerId peer = kNoServer;
  double total_score = 0.0;  // sum of candidate scores (peer ranking key)
  std::vector<Candidate> candidates;
};

// Exchange request from p to q (step 1 of Alg. 1).
struct ExchangeRequest {
  ServerId from = kNoServer;
  int64_t from_num_vertices = 0;
  // Total size of p's vertices (< 0: use from_num_vertices).
  double from_total_size = -1.0;
  std::vector<Candidate> candidates;  // S
};

// q's decision (steps 2–4 of Alg. 1).
struct ExchangeDecision {
  bool rejected = false;                    // q exchanged too recently
  std::vector<VertexId> accepted;           // S0 — vertices q takes from p
  std::vector<Candidate> counter_offer;     // T0 — vertices q sends to p
};

// Rp,q(v) for a local vertex v of `view` toward server q.
double TransferScore(const LocalGraphView& view, VertexId v, ServerId q);

// Builds per-peer candidate plans for `view`, sorted by total score
// descending. Peers with no positive-score candidates are omitted.
std::vector<PeerPlan> BuildPeerPlans(const LocalGraphView& view, const PairwiseConfig& config);

// As BuildPeerPlans, but visits local vertices in exactly the order given by
// `order` (vertices absent from view.adjacency are skipped). The hash-map
// path above iterates view.adjacency in container order, which is a
// libstdc++ implementation detail; pinning the visit order makes top-k
// tie-breaking — and therefore the emitted plans — byte-stable across
// standard-library versions and reproducible by the flat CSR arena, which
// always scans vertices in ascending-id order.
std::vector<PeerPlan> BuildPeerPlansOrdered(const LocalGraphView& view,
                                            const PairwiseConfig& config,
                                            const std::vector<VertexId>& order);

// q-side joint subset selection. `view` is q's local view; the request came
// from p. Never returns a decision that violates the balance constraint.
ExchangeDecision DecideExchange(const LocalGraphView& view, const ExchangeRequest& request,
                                const PairwiseConfig& config);

// As DecideExchange, but builds q's counter-candidate set T with
// BuildPeerPlansOrdered(view, config, order). Same stability rationale.
ExchangeDecision DecideExchangeOrdered(const LocalGraphView& view, const ExchangeRequest& request,
                                       const PairwiseConfig& config,
                                       const std::vector<VertexId>& order);

// Communication cost of a full partition: sum of weights of edges crossing
// servers. `locations` maps every vertex to its server; `adjacency` is the
// union (undirected) graph. Used by tests and the offline baseline.
double CutCost(const std::unordered_map<VertexId, VertexAdjacency>& adjacency,
               const std::unordered_map<VertexId, ServerId>& locations);

}  // namespace actop

#endif  // SRC_CORE_PAIRWISE_PARTITION_H_
