#include "src/testing/chaos.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "src/common/check.h"

namespace actop {

ChaosController::ChaosController(Simulation* sim, Cluster* cluster, ChaosConfig config)
    : sim_(sim),
      cluster_(cluster),
      config_(config),
      tick_rng_(SplitMix64(config.seed)),
      message_rng_(SplitMix64(config.seed ^ 0x6368616f732d6d73ULL)),  // "chaos-ms"
      checker_(cluster) {
  ACTOP_CHECK(sim != nullptr);
  ACTOP_CHECK(config_.faults_start <= config_.faults_end);
}

ChaosController::ChaosController(ShardedEngine* engine, Cluster* cluster, ChaosConfig config)
    : sim_(&engine->sim()),
      engine_(engine),
      cluster_(cluster),
      config_(config),
      tick_rng_(SplitMix64(config.seed)),
      message_rng_(SplitMix64(config.seed ^ 0x6368616f732d6d73ULL)),
      checker_(cluster) {
  ACTOP_CHECK(config_.faults_start <= config_.faults_end);
  if (engine_->parallel()) {
    // One counter-based stream per shard, all keyed by the same legacy
    // message-stream constant: decisions depend only on each shard's own
    // message order, never on another shard's draw count.
    message_lanes_.reserve(static_cast<size_t>(engine_->shards()));
    for (int s = 0; s < engine_->shards(); s++) {
      message_lanes_.emplace_back(config.seed ^ 0x6368616f732d6d73ULL,
                                  static_cast<uint64_t>(s));
    }
  }
}

ChaosController::~ChaosController() {
  if (started_) {
    Stop();
  }
}

void ChaosController::Start() {
  ACTOP_CHECK(!started_);
  started_ = true;
  cluster_->network().set_fault_injector(
      [this](NodeId from, NodeId to, uint32_t bytes, int src_shard, SimTime now) {
        return OnMessage(from, to, bytes, src_shard, now);
      });
  if (parallel()) {
    // Faults and sweeps ride the coordinator rail: every rail task sees all
    // shards advanced to its cut time, so cluster-global mutations (crash,
    // churn, migrate) and the invariant sweep are race-free by construction.
    const SimTime first = std::max(engine_->now(), config_.faults_start);
    if (config_.duplication_bug_actor != kNoActor) {
      engine_->ScheduleRailAt(first, [this] { InjectDuplicationBug(); });
    }
    tick_rail_ = engine_->ScheduleRailAt(first, [this] { Tick(); });
    if (config_.check_every_events > 0) {
      check_rail_ = engine_->ScheduleRailAt(engine_->now() + config_.tick,
                                            [this] { RailCheck(); });
    }
    return;
  }
  if (config_.check_every_events > 0) {
    sim_->set_after_event_hook([this] {
      if (++events_seen_ % config_.check_every_events == 0) {
        RecordViolations(checker_.CheckInstant());
      }
    });
  }
  const SimTime first = std::max(sim_->now(), config_.faults_start);
  if (config_.duplication_bug_actor != kNoActor) {
    sim_->ScheduleAt(first, [this] { InjectDuplicationBug(); });
  }
  tick_event_ = sim_->ScheduleAt(first, [this] { Tick(); });
}

void ChaosController::Stop() {
  ACTOP_CHECK(started_);
  started_ = false;
  cluster_->network().set_fault_injector(nullptr);
  if (parallel()) {
    engine_->CancelRail(tick_rail_);
    engine_->CancelRail(check_rail_);
    return;
  }
  sim_->set_after_event_hook(nullptr);
  sim_->Cancel(tick_event_);
}

void ChaosController::RailCheck() {
  if (!started_) {
    return;
  }
  RecordViolations(checker_.CheckInstant());
  check_rail_ = engine_->ScheduleRailAt(engine_->now() + config_.tick, [this] { RailCheck(); });
}

void ChaosController::Tick() {
  if (!started_ || sim_->now() >= config_.faults_end) {
    return;
  }
  const int n = cluster_->num_servers();

  if (config_.crash_prob > 0.0 && tick_rng_.NextBool(config_.crash_prob)) {
    const auto victim = static_cast<ServerId>(tick_rng_.NextBounded(static_cast<uint64_t>(n)));
    cluster_->CrashServer(victim);
    crashes_++;
    Record("crash server " + std::to_string(victim));
  }

  if (config_.directory_churn_prob > 0.0 && tick_rng_.NextBool(config_.directory_churn_prob)) {
    const auto shard = static_cast<ServerId>(tick_rng_.NextBounded(static_cast<uint64_t>(n)));
    const int churned = cluster_->ChurnDirectoryShard(shard);
    shard_churns_++;
    Record("churn directory shard " + std::to_string(shard) + " (" + std::to_string(churned) +
           " actors)");
  }

  for (int i = 0; i < config_.forced_migrations_per_tick && n > 1; i++) {
    const auto src = static_cast<ServerId>(tick_rng_.NextBounded(static_cast<uint64_t>(n)));
    // Sort: unordered_map iteration order must not leak into the schedule.
    std::vector<ActorId> actors = cluster_->server(src).ActiveActors();
    std::sort(actors.begin(), actors.end());
    if (actors.empty()) {
      continue;
    }
    const ActorId actor = actors[tick_rng_.NextBounded(actors.size())];
    auto dest = static_cast<ServerId>(tick_rng_.NextBounded(static_cast<uint64_t>(n - 1)));
    if (dest >= src) {
      dest++;
    }
    if (cluster_->server(src).MigrateActor(actor, dest)) {
      forced_migrations_++;
      Record("migrate actor " + std::to_string(actor) + ": " + std::to_string(src) + " -> " +
             std::to_string(dest));
    }
  }

  if (parallel()) {
    tick_rail_ = engine_->ScheduleRailAt(engine_->now() + config_.tick, [this] { Tick(); });
  } else {
    tick_event_ = sim_->ScheduleAfter(config_.tick, [this] { Tick(); });
  }
}

void ChaosController::InjectDuplicationBug() {
  const int n = cluster_->num_servers();
  if (!started_ || n < 2) {
    return;
  }
  const auto first = static_cast<ServerId>(tick_rng_.NextBounded(static_cast<uint64_t>(n)));
  auto second = static_cast<ServerId>(tick_rng_.NextBounded(static_cast<uint64_t>(n - 1)));
  if (second >= first) {
    second++;
  }
  cluster_->server(first).ForceActivateForTest(config_.duplication_bug_actor);
  cluster_->server(second).ForceActivateForTest(config_.duplication_bug_actor);
  Record("BUG DEMO: force-activated actor " + std::to_string(config_.duplication_bug_actor) +
         " on servers " + std::to_string(first) + " and " + std::to_string(second));
}

void ChaosController::Record(std::string what) {
  if (schedule_.size() < config_.max_recorded_schedule) {
    schedule_.push_back(ChaosEvent{sim_->now(), std::move(what)});
  }
}

void ChaosController::RecordViolations(const std::vector<std::string>& found) {
  total_violations_ += found.size();
  for (const std::string& v : found) {
    if (violations_.size() >= config_.max_recorded_violations) {
      break;
    }
    violations_.push_back("[t=" + std::to_string(sim_->now() / Millis(1)) + "ms] " + v);
  }
}

FaultDecision ChaosController::OnMessage(NodeId from, NodeId to, uint32_t bytes, int src_shard,
                                         SimTime now) {
  (void)bytes;
  FaultDecision decision;
  if (now < config_.faults_start || now >= config_.faults_end) {
    return decision;
  }
  if (!config_.fault_client_links && (cluster_->ServerOfNode(from) == kNoServer ||
                                      cluster_->ServerOfNode(to) == kNoServer)) {
    return decision;
  }
  if (parallel()) {
    MessageLane& lane = message_lanes_[static_cast<size_t>(src_shard)];
    if (config_.drop_prob > 0.0 && lane.rng.NextBool(config_.drop_prob)) {
      decision.drop = true;
      lane.dropped++;
      return decision;
    }
    if (config_.delay_prob > 0.0 && lane.rng.NextBool(config_.delay_prob)) {
      decision.extra_delay = lane.rng.NextUniformDuration(0, config_.max_extra_delay);
      lane.delayed++;
    }
    return decision;
  }
  if (config_.drop_prob > 0.0 && message_rng_.NextBool(config_.drop_prob)) {
    decision.drop = true;
    dropped_messages_++;
    return decision;
  }
  if (config_.delay_prob > 0.0 && message_rng_.NextBool(config_.delay_prob)) {
    decision.extra_delay = message_rng_.NextUniformDuration(0, config_.max_extra_delay);
    delayed_messages_++;
  }
  return decision;
}

uint64_t ChaosController::dropped_messages() const {
  uint64_t total = dropped_messages_;
  for (const MessageLane& lane : message_lanes_) {
    total += lane.dropped;
  }
  return total;
}

uint64_t ChaosController::delayed_messages() const {
  uint64_t total = delayed_messages_;
  for (const MessageLane& lane : message_lanes_) {
    total += lane.delayed;
  }
  return total;
}

std::string ChaosController::FailureReport(size_t schedule_prefix) const {
  std::ostringstream os;
  os << "chaos seed " << config_.seed << ": " << total_violations_ << " invariant violation(s)";
  if (total_violations_ > 0) {
    os << " (showing " << violations_.size() << ")";
  }
  os << "\n";
  for (const std::string& v : violations_) {
    os << "  " << v << "\n";
  }
  os << "fault schedule prefix (" << std::min(schedule_prefix, schedule_.size()) << " of "
     << schedule_.size() << " recorded):\n";
  for (size_t i = 0; i < schedule_.size() && i < schedule_prefix; i++) {
    os << "  [t=" << schedule_[i].at / Millis(1) << "ms] " << schedule_[i].what << "\n";
  }
  os << "reproduce: rerun this scenario with seed=" << config_.seed
     << " (the schedule replays byte-for-byte)\n";
  return os.str();
}

}  // namespace actop
