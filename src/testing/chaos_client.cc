#include "src/testing/chaos_client.h"

#include "src/common/check.h"
#include "src/runtime/envelope_pool.h"

namespace actop {

ChaosClient::ChaosClient(Simulation* sim, Cluster* cluster, ChaosClientConfig config)
    : sim_(sim), cluster_(cluster), config_(config), rng_(config.seed) {
  ACTOP_CHECK(sim != nullptr);
  ACTOP_CHECK(cluster != nullptr);
  node_ = cluster_->AddClientNode([this](NodeId from, uint32_t bytes, std::shared_ptr<void> msg) {
    OnDeliver(from, bytes, std::move(msg));
  });
  sim_->SchedulePeriodic(config_.sweep_period, [this] { SweepTimeouts(); });
}

void ChaosClient::Call(ActorId target, MethodId method, uint64_t app_data) {
  const uint64_t seq = next_seq_++;
  auto env = MakeEnvelope();
  env->kind = MessageKind::kCall;
  env->call_id = CallId{node_, seq};
  env->target = target;
  env->source_actor = kNoActor;
  env->method = method;
  env->app_data = app_data;
  env->payload_bytes = config_.request_bytes;
  env->reply_to = node_;
  env->created_at = sim_->now();

  pending_.emplace(seq, sim_->now());
  timeout_queue_.emplace_back(sim_->now() + config_.timeout, seq);
  issued_++;

  const auto gateway =
      static_cast<ServerId>(rng_.NextBounded(static_cast<uint64_t>(cluster_->num_servers())));
  cluster_->network().Send(node_, cluster_->NodeOfServer(gateway), env->payload_bytes, env);
}

void ChaosClient::OnDeliver(NodeId from, uint32_t bytes, std::shared_ptr<void> msg) {
  (void)from;
  (void)bytes;
  auto env = std::static_pointer_cast<Envelope>(msg);
  ACTOP_CHECK(env->kind == MessageKind::kResponse);
  const uint64_t seq = env->call_id.seq;
  auto it = pending_.find(seq);
  if (it != pending_.end()) {
    pending_.erase(it);
    completed_.insert(seq);
    succeeded_++;
    return;
  }
  if (completed_.contains(seq)) {
    duplicate_responses_++;
    return;
  }
  if (expired_.contains(seq)) {
    // The system answered after our deadline — the call was slow, not lost.
    late_responses_++;
    return;
  }
  unknown_responses_++;
}

void ChaosClient::SweepTimeouts() {
  const SimTime now = sim_->now();
  while (!timeout_queue_.empty() && timeout_queue_.front().first <= now) {
    const uint64_t seq = timeout_queue_.front().second;
    timeout_queue_.pop_front();
    if (pending_.erase(seq) > 0) {
      expired_.insert(seq);
      timed_out_++;
    }
  }
}

}  // namespace actop
