// Cluster-wide invariant checking for the chaos harness.
//
// Walks the whole simulated cluster — activations, directory shards,
// location caches — and verifies the virtual-actor promises of §4.3:
//
//   (a) single activation: at most one live activation per actor id;
//   (b) reply conservation is tracked at the client (see ChaosClient);
//   (c) directory / cache coherence: cache entries are either correct or
//       detectably stale. Detectability rests on two structural facts this
//       checker verifies — every entry points into the live server set
//       (bounded-hop forwarding then falls through to the directory), and
//       the directory itself is authoritative (every entry lives in the
//       actor's home shard; at quiescence every activation is registered at
//       its host);
//   (d) the partitioner's balance constraint ||V_p| − |V_q|| ≤ δ.
//
// Instant checks hold at every event boundary; quiescent checks additionally
// require that no migration/unregister control messages are in flight (run
// them after traffic and fault injection have drained).

#ifndef SRC_TESTING_INVARIANTS_H_
#define SRC_TESTING_INVARIANTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/ids.h"

namespace actop {

class Cluster;

// Difference between the most- and least-loaded server's activation counts.
int64_t ActivationSpread(Cluster& cluster);

class InvariantChecker {
 public:
  explicit InvariantChecker(Cluster* cluster);

  // Invariants that must hold after every event: single activation per
  // actor, directory entries homed on the right shard and pointing at live
  // servers, cache entries pointing at live servers. Returns one description
  // per violation (empty == all good).
  std::vector<std::string> CheckInstant();

  // Instant checks plus quiescence-only coherence: every live activation is
  // registered at its host in the actor's home directory shard.
  std::vector<std::string> CheckQuiescent();

  // Balance constraint (d): activation spread must be within `delta` plus
  // `slack` (transient drift from in-flight activations/deactivations and
  // stale exchange views).
  std::vector<std::string> CheckBalance(int64_t delta, int64_t slack = 0);

  uint64_t checks_run() const { return checks_run_; }

 private:
  Cluster* cluster_;
  uint64_t checks_run_ = 0;
};

}  // namespace actop

#endif  // SRC_TESTING_INVARIANTS_H_
