// Seed-driven chaos controller.
//
// One RNG seed fully determines a fault schedule — server crashes, message
// drops/delays (and therefore reorderings), directory-shard churn, and forced
// migrations racing the §4.2 pairwise exchange protocol — injected through
// the Simulation after-event hook, the Network fault injector, and the
// Cluster failure-injection entry points. Because the simulator is a
// single-threaded discrete-event engine with deterministic tie-breaking, a
// failing seed replays byte-for-byte; FailureReport() prints the seed and the
// schedule prefix needed to reproduce it.
//
// The controller also runs the InvariantChecker's instant checks every
// `check_every_events` dispatched events and accumulates violations.
//
// Parallel mode (construct with a ShardedEngine that has shards > 1):
//   * tick-level faults (crashes, churn, forced migrations) and the instant
//     invariant sweeps move to the engine's coordinator rail, so they always
//     observe a consistent cross-shard cut; the cadence of both is the tick
//     period (`check_every_events` only gates whether sweeps run at all —
//     event counts are per-shard and scheduling-dependent in parallel).
//   * per-message fault draws come from counter-based per-shard streams
//     (CounterRng keyed (seed, shard)) so decisions depend only on each
//     shard's own message order — deterministic for a fixed shard count.
// With shards == 1 the controller behaves byte-identically to the serial
// constructor: same xoshiro draws, same hooks, same schedule.

#ifndef SRC_TESTING_CHAOS_H_
#define SRC_TESTING_CHAOS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/counter_rng.h"
#include "src/common/ids.h"
#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/net/network.h"
#include "src/runtime/cluster.h"
#include "src/sim/sharded_engine.h"
#include "src/testing/invariants.h"

namespace actop {

struct ChaosConfig {
  uint64_t seed = 1;

  // Faults are injected only inside [faults_start, faults_end); invariant
  // checking runs for as long as the controller is started.
  SimTime faults_start = 0;
  SimTime faults_end = Seconds(10);
  SimDuration tick = Millis(50);

  // Per-tick fault probabilities / counts.
  double crash_prob = 0.0;            // crash + instant-replace a random server
  double directory_churn_prob = 0.0;  // churn a random directory shard
  int forced_migrations_per_tick = 0; // migrate random idle actors to random servers

  // Per-message network faults. Delayed messages overtake undelayed ones on
  // the same link, so delay_prob > 0 also exercises reordering.
  double drop_prob = 0.0;
  double delay_prob = 0.0;
  SimDuration max_extra_delay = Millis(20);
  // Whether client<->server links are also faulty (server<->server links
  // always are). Off for scenarios with strict reply accounting.
  bool fault_client_links = false;

  // Run the instant invariant checks every N dispatched events (0 disables).
  uint32_t check_every_events = 256;

  // Guarded bug-injection demo: when set, the controller force-activates this
  // actor on two servers at faults_start, deliberately breaking the
  // single-activation invariant so tests can prove the checker catches it.
  ActorId duplication_bug_actor = kNoActor;

  size_t max_recorded_violations = 16;
  size_t max_recorded_schedule = 512;
};

struct ChaosEvent {
  SimTime at = 0;
  std::string what;
};

class ChaosController {
 public:
  ChaosController(Simulation* sim, Cluster* cluster, ChaosConfig config);
  // Engine-aware: serial engines (shards == 1) get exactly the serial
  // behavior; parallel engines get rail-scheduled faults/checks and
  // per-shard message streams.
  ChaosController(ShardedEngine* engine, Cluster* cluster, ChaosConfig config);
  ~ChaosController();

  ChaosController(const ChaosController&) = delete;
  ChaosController& operator=(const ChaosController&) = delete;

  // Installs the network fault injector + simulation after-event hook and
  // schedules the fault ticks. Call once, before running the simulation.
  void Start();

  // Uninstalls all hooks; no further faults or checks after this.
  void Stop();

  InvariantChecker& checker() { return checker_; }

  // Invariant violations observed so far (capped at max_recorded_violations;
  // `total_violations` keeps the true count).
  const std::vector<std::string>& violations() const { return violations_; }
  uint64_t total_violations() const { return total_violations_; }

  // The recorded fault schedule (capped at max_recorded_schedule).
  const std::vector<ChaosEvent>& schedule() const { return schedule_; }

  uint64_t crashes() const { return crashes_; }
  uint64_t shard_churns() const { return shard_churns_; }
  uint64_t forced_migrations() const { return forced_migrations_; }
  uint64_t dropped_messages() const;
  uint64_t delayed_messages() const;

  // Human-readable reproduction report: seed, violations, and the first
  // `schedule_prefix` scheduled faults.
  std::string FailureReport(size_t schedule_prefix = 12) const;

 private:
  void Tick();
  void RailCheck();
  void InjectDuplicationBug();
  void Record(std::string what);
  void RecordViolations(const std::vector<std::string>& found);
  FaultDecision OnMessage(NodeId from, NodeId to, uint32_t bytes, int src_shard, SimTime now);
  bool parallel() const { return engine_ != nullptr && engine_->parallel(); }

  // Per-shard message-fault state; lanes for different shards are hit
  // concurrently from Network::Send, hence the cacheline alignment.
  struct alignas(64) MessageLane {
    MessageLane(uint64_t seed, uint64_t shard) : rng(seed, shard) {}
    CounterRng rng;
    uint64_t dropped = 0;
    uint64_t delayed = 0;
  };

  Simulation* sim_;
  ShardedEngine* engine_ = nullptr;
  Cluster* cluster_;
  ChaosConfig config_;
  // Independent streams: tick-level fault draws must not shift when the
  // per-message traffic pattern changes, and vice versa.
  Rng tick_rng_;
  Rng message_rng_;                        // serial (and shards == 1) mode
  std::vector<MessageLane> message_lanes_; // parallel mode
  InvariantChecker checker_;

  bool started_ = false;
  EventId tick_event_ = 0;
  uint64_t tick_rail_ = 0;
  uint64_t check_rail_ = 0;
  uint64_t events_seen_ = 0;

  std::vector<std::string> violations_;
  uint64_t total_violations_ = 0;
  std::vector<ChaosEvent> schedule_;
  uint64_t crashes_ = 0;
  uint64_t shard_churns_ = 0;
  uint64_t forced_migrations_ = 0;
  uint64_t dropped_messages_ = 0;
  uint64_t delayed_messages_ = 0;
};

}  // namespace actop

#endif  // SRC_TESTING_CHAOS_H_
