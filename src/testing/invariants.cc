#include "src/testing/invariants.h"

#include <algorithm>
#include <limits>
#include <sstream>
#include <unordered_map>

#include "src/actor/directory.h"
#include "src/common/check.h"
#include "src/runtime/cluster.h"

namespace actop {

int64_t ActivationSpread(Cluster& cluster) {
  int64_t lo = std::numeric_limits<int64_t>::max();
  int64_t hi = 0;
  for (int s = 0; s < cluster.num_servers(); s++) {
    const int64_t n = cluster.server(s).num_activations();
    lo = std::min(lo, n);
    hi = std::max(hi, n);
  }
  return cluster.num_servers() == 0 ? 0 : hi - lo;
}

InvariantChecker::InvariantChecker(Cluster* cluster) : cluster_(cluster) {
  ACTOP_CHECK(cluster != nullptr);
}

std::vector<std::string> InvariantChecker::CheckInstant() {
  checks_run_++;
  std::vector<std::string> violations;
  const int n = cluster_->num_servers();

  // (a) at most one live activation per actor.
  std::unordered_map<ActorId, std::vector<ServerId>> hosts;
  for (int s = 0; s < n; s++) {
    for (ActorId actor : cluster_->server(s).ActiveActors()) {
      hosts[actor].push_back(static_cast<ServerId>(s));
    }
  }
  for (const auto& [actor, where] : hosts) {
    if (where.size() > 1) {
      std::ostringstream os;
      os << "duplicate activation: actor " << actor << " live on servers";
      for (ServerId s : where) {
        os << ' ' << s;
      }
      violations.push_back(os.str());
    }
  }

  for (int s = 0; s < n; s++) {
    Server& server = cluster_->server(s);
    // (c) directory structure: entries live in the actor's home shard and
    // point into the live server set.
    server.directory_shard().ForEach([&](ActorId actor, const DirEntry& entry) {
      if (entry.owner < 0 || entry.owner >= static_cast<ServerId>(n)) {
        std::ostringstream os;
        os << "directory entry out of range: actor " << actor << " -> server " << entry.owner
           << " (shard " << s << ")";
        violations.push_back(os.str());
      }
      if (DirectoryHomeOf(actor, n) != static_cast<ServerId>(s)) {
        std::ostringstream os;
        os << "directory entry on wrong shard: actor " << actor << " found on shard " << s
           << ", home is " << DirectoryHomeOf(actor, n);
        violations.push_back(os.str());
      }
    });
    // (c) caches: a stale entry is only *detectably* stale if it points at a
    // reachable server (the miss there re-consults the directory).
    server.location_cache().ForEach([&](ActorId actor, ServerId loc) {
      if (loc < 0 || loc >= static_cast<ServerId>(n)) {
        std::ostringstream os;
        os << "location-cache entry out of range: actor " << actor << " -> server " << loc
           << " (cache of server " << s << ")";
        violations.push_back(os.str());
      }
    });
  }
  return violations;
}

std::vector<std::string> InvariantChecker::CheckQuiescent() {
  std::vector<std::string> violations = CheckInstant();
  const int n = cluster_->num_servers();
  // With no unregister/migration control messages in flight, every live
  // activation must be registered at its host: a lost registration would let
  // the next remote call activate the actor a second time elsewhere.
  for (int s = 0; s < n; s++) {
    for (ActorId actor : cluster_->server(s).ActiveActors()) {
      const ServerId home = DirectoryHomeOf(actor, n);
      const ServerId owner = cluster_->server(home).directory_shard().Lookup(actor);
      if (owner != static_cast<ServerId>(s)) {
        std::ostringstream os;
        os << "directory incoherence: actor " << actor << " active on server " << s
           << " but home shard " << home << " has "
           << (owner == kNoServer ? std::string("no entry") : "owner " + std::to_string(owner));
        violations.push_back(os.str());
      }
    }
  }
  return violations;
}

std::vector<std::string> InvariantChecker::CheckBalance(int64_t delta, int64_t slack) {
  checks_run_++;
  std::vector<std::string> violations;
  const int64_t spread = ActivationSpread(*cluster_);
  if (spread > delta + slack) {
    std::ostringstream os;
    os << "balance violated: activation spread " << spread << " > delta " << delta << " + slack "
       << slack;
    violations.push_back(os.str());
  }
  return violations;
}

}  // namespace actop
