// A client frontend with full reply accounting, for chaos tests.
//
// Unlike DirectClient, every issued call is tracked until it reaches exactly
// one terminal outcome — success or client-side timeout — even when the
// response path is destroyed by a crash or a dropped message. The counters
// make invariant (b) falsifiable: a lost reply shows up as a timeout, a
// duplicated or fabricated reply as `duplicate_responses` /
// `unknown_responses`, and a response that raced a timeout (legal: the
// timeout was the harness's impatience, not the system's fault) as
// `late_responses`.

#ifndef SRC_TESTING_CHAOS_CLIENT_H_
#define SRC_TESTING_CHAOS_CLIENT_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "src/common/ids.h"
#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/runtime/cluster.h"
#include "src/runtime/message.h"

namespace actop {

struct ChaosClientConfig {
  uint64_t seed = 7;
  uint32_t request_bytes = 128;
  // A call with no response after this long counts as timed out (must exceed
  // the worst-case recovery chain: directory retry + server call timeout).
  SimDuration timeout = Seconds(6);
  SimDuration sweep_period = Millis(500);
};

class ChaosClient {
 public:
  ChaosClient(Simulation* sim, Cluster* cluster, ChaosClientConfig config);

  // Issues one call through a random gateway server.
  void Call(ActorId target, MethodId method, uint64_t app_data = 0);

  uint64_t issued() const { return issued_; }
  uint64_t succeeded() const { return succeeded_; }
  uint64_t timed_out() const { return timed_out_; }
  uint64_t late_responses() const { return late_responses_; }
  // Both must stay zero: more than one reply per call, or a reply for a call
  // that was never issued.
  uint64_t duplicate_responses() const { return duplicate_responses_; }
  uint64_t unknown_responses() const { return unknown_responses_; }

  size_t outstanding() const { return pending_.size(); }
  // True once every issued call has reached a terminal outcome.
  bool Settled() const { return pending_.empty(); }

 private:
  void OnDeliver(NodeId from, uint32_t bytes, std::shared_ptr<void> msg);
  void SweepTimeouts();

  Simulation* sim_;
  Cluster* cluster_;
  ChaosClientConfig config_;
  Rng rng_;
  NodeId node_ = kNoNode;

  std::unordered_map<uint64_t, SimTime> pending_;  // seq -> send time
  std::unordered_set<uint64_t> completed_;
  std::unordered_set<uint64_t> expired_;
  std::deque<std::pair<SimTime, uint64_t>> timeout_queue_;
  uint64_t next_seq_ = 1;

  uint64_t issued_ = 0;
  uint64_t succeeded_ = 0;
  uint64_t timed_out_ = 0;
  uint64_t late_responses_ = 0;
  uint64_t duplicate_responses_ = 0;
  uint64_t unknown_responses_ = 0;
};

}  // namespace actop

#endif  // SRC_TESTING_CHAOS_CLIENT_H_
