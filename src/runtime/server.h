// A simulated Orleans-style server (silo).
//
// Each server runs the paper's SEDA pipeline (Figure 2): a Receive stage
// (deserialization), a Worker stage (application-logic turns on user-level
// threads), and two sender stages (ServerSender for inter-server RPCs,
// ClientSender for client responses), all sharing one CpuModel. It hosts
// actor activations with turn-based (one call at a time) delivery, a
// location cache, and one shard of the distributed placement directory.
//
// Routing follows Orleans semantics: a call for a non-local actor first
// consults the location cache, then the actor's home directory shard, which
// registers a first-writer-wins activation. Stale caches cause bounded
// forwarding (hops), after which the directory is consulted. Migration is
// opportunistic (§4.3): deactivate + unregister + prime the caches of the
// two servers involved; the next call re-activates the actor at the target.

#ifndef SRC_RUNTIME_SERVER_H_
#define SRC_RUNTIME_SERVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/actor/actor.h"
#include "src/actor/directory.h"
#include "src/actor/location_cache.h"
#include "src/common/flat_hash_map.h"
#include "src/common/ids.h"
#include "src/common/pool_allocator.h"
#include "src/common/ring_buffer.h"
#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/net/network.h"
#include "src/runtime/message.h"
#include "src/seda/cpu.h"
#include "src/seda/stage.h"
#include "src/seda/thread_host.h"
#include "src/sim/simulation.h"

namespace actop {

class Cluster;
class ClusterMetrics;

// How the directory places an actor that has never been activated. (After a
// deactivation or migration, re-placement follows the paper's §4.3 rule:
// cache hint if available, otherwise the calling server.)
enum class PlacementPolicy {
  kRandom,          // Orleans default: uniform random server
  kLocal,           // on the first calling server
  kConsistentHash,  // deterministic hash of the actor id
};

struct ServerConfig {
  int cores = 8;
  double kappa = 0.03;               // CPU context-switch efficiency penalty
  // Scheduling quantum driving dispatch (ready-state) latency; the dominant
  // latency term when runnable threads exceed cores (see src/seda/cpu.h).
  SimDuration dispatch_quantum = Micros(60);
  int initial_threads_per_stage = 8; // Orleans default: one per core per stage
  size_t stage_queue_capacity = 200000;

  // Serialization cost model (CPU in the receive/sender stages). The values
  // are calibrated against the paper's §3 measurements (see EXPERIMENTS.md);
  // costs scale with message size, which is how the lightweight Counter
  // messages and the heavyweight Halo game-status payloads differ.
  SimDuration deserialize_base = Micros(85);
  double deserialize_ns_per_byte = 250.0;
  SimDuration serialize_base = Micros(60);
  double serialize_ns_per_byte = 250.0;
  // Service-time variability: costs are drawn exponentially around their
  // mean (matching the bursty behaviour of managed-runtime serialization
  // and allocation spikes). false = deterministic costs.
  bool exponential_costs = true;

  // Managed-runtime (GC) pauses: stop-the-world events whose duration grows
  // with the number of allocated threads. The backlog they create is why a
  // SEDA server's latency is so sensitive to thread allocation (Fig 4/5).
  // Set gc_mean_interval to 0 to disable.
  SimDuration gc_mean_interval = Millis(250);
  SimDuration gc_base_duration = Millis(4);
  double gc_per_thread_factor = 0.06;
  double gc_superlinear_exponent = 1.8;

  SimDuration response_handling_compute = Micros(8);  // continuation turn
  // Deep copy of LPC arguments (actor isolation): base + per-byte. Far
  // cheaper than serialization, which pays reflection/allocation costs in
  // the modeled managed runtime.
  SimDuration lpc_compute = Micros(8);
  double lpc_ns_per_byte = 40.0;
  SimDuration control_compute = Micros(4);            // directory & partition msgs
  SimDuration activation_compute = Micros(40);        // actor activation turn
  uint32_t control_bytes = 96;                        // modeled control msg size

  size_t location_cache_capacity = 1 << 17;
  int max_hops = 3;
  PlacementPolicy placement = PlacementPolicy::kRandom;

  // In-flight call timeout (failed Response delivered to the continuation);
  // required for liveness under server crashes and overload drops.
  SimDuration call_timeout = Seconds(15);
  SimDuration timeout_sweep_period = Seconds(1);
};

class Server : public ThreadHost {
 public:
  enum StageIndex : int {
    kReceive = 0,
    kWorker = 1,
    kServerSender = 2,
    kClientSender = 3,
    kNumStages = 4,
  };

  Server(Simulation* sim, Cluster* cluster, ServerId id, ServerConfig config, uint64_t seed);
  ~Server() override;

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Called by the Cluster after the network node is registered.
  void set_node(NodeId node) { node_ = node; }
  NodeId node() const { return node_; }
  ServerId id() const { return id_; }

  // Wired by the Cluster: the engine shard this server runs on, and the
  // shard-local metrics instance it counts into (shard 0 / the only instance
  // in serial mode).
  void set_shard(int shard) { shard_ = shard; }
  int shard() const { return shard_; }
  void set_metrics(ClusterMetrics* metrics) { metrics_ = metrics; }

  // Network delivery entry point (wired by the Cluster).
  void OnNetworkMessage(NodeId from, uint32_t bytes, std::shared_ptr<void> msg);

  // ThreadHost:
  int num_stages() override { return kNumStages; }
  Stage& stage(int i) override { return *stages_[static_cast<size_t>(i)]; }
  int cores() const override { return config_.cores; }
  void ApplyThreadAllocation(const std::vector<int>& threads) override;

  CpuModel& cpu() { return *cpu_; }
  LocationCache& location_cache() { return location_cache_; }
  DirectoryShard& directory_shard() { return directory_shard_; }
  const ServerConfig& config() const { return config_; }

  // --- Activation queries ---
  bool IsActive(ActorId actor) const { return activations_.Contains(actor); }
  int64_t num_activations() const { return static_cast<int64_t>(activations_.size()); }
  // Actors currently active on this server (stable order not guaranteed).
  std::vector<ActorId> ActiveActors() const;

  // --- Migration (used by the partition agent) ---
  // True if the actor is active and has no running/queued turn, no open call
  // context, and no pending sub-call (safe to deactivate).
  bool IsMigratable(ActorId actor) const;
  // Deactivates and primes caches so the next call lands on `dest`.
  // Returns false if the actor is not currently migratable.
  bool MigrateActor(ActorId actor, ServerId dest);
  uint64_t migrations_out() const { return migrations_out_; }

  // Deactivates an idle actor without a destination hint (models Orleans'
  // idle-activation collection and directory-shard churn): the activation is
  // dropped, its directory entry unregistered, and the next call re-places
  // it from scratch. Returns false if the actor is not currently migratable.
  bool DeactivateActor(ActorId actor);

  // Testing backdoor: force-activates `actor` locally without consulting the
  // directory. Deliberately violates the single-activation protocol — used
  // only by the chaos harness to prove the invariant checker detects
  // duplicate activations. Never call outside tests.
  void ForceActivateForTest(ActorId actor);

  // --- Crash injection ---
  // Drops every activation, mailbox, parked message and pending call.
  // In-flight calls from other servers eventually fail via timeouts.
  void Crash();

  // --- Observability hooks (set by Cluster/agents) ---
  // Invoked for every actor-to-actor message this server's actors send:
  // (local actor, peer actor, destination server at send time).
  using EdgeObserver = std::function<void(ActorId, ActorId, ServerId)>;
  void set_edge_observer(EdgeObserver observer) { edge_observer_ = std::move(observer); }

  // Invoked at the origin server when an actor-to-actor call completes, with
  // the call round-trip latency and whether the callee was remote.
  using CallLatencyObserver = std::function<void(SimDuration, bool remote)>;
  void set_call_latency_observer(CallLatencyObserver observer) {
    call_latency_observer_ = std::move(observer);
  }

  // Partition-protocol control messages are dispatched to these handlers
  // (wired by the Cluster to the server's PartitionAgent).
  void set_partition_handlers(
      std::function<void(ServerId, const PartitionExchangeRequest&)> on_request,
      std::function<void(ServerId, const PartitionExchangeResponse&)> on_response) {
    partition_request_handler_ = std::move(on_request);
    partition_response_handler_ = std::move(on_response);
  }

  // Sends a runtime control message to another server (or loops back to this
  // one); used by the partition agent for the exchange protocol.
  void SendControl(ServerId dest, ControlPayload payload);

  // Lifetime message counters (actor-to-actor application messages only).
  uint64_t remote_app_messages() const { return remote_app_messages_; }
  uint64_t local_app_messages() const { return local_app_messages_; }
  uint64_t activations_started() const { return activations_started_; }

 private:
  friend class ServerCallContext;

  static constexpr uint32_t kNilSlot = 0xFFFFFFFFu;

  struct Activation {
    Actor* instance = nullptr;  // owned by the Cluster's state store
    bool busy = false;          // a turn is running or queued in the worker stage
    bool activation_pending = true;  // first turn pays the activation cost
    int open_contexts = 0;      // delivered calls not yet replied to
    int pending_subcalls = 0;   // sub-calls awaiting a response
    uint64_t dir_token = 0;     // token of the directory registration backing us
    RingBuffer<std::shared_ptr<Envelope>> mailbox;
  };

  // Dense activation table: Activation records live in a slab of recycled
  // slots with a FlatHashMap index — flat bytes per activation instead of an
  // unordered-map heap node (the dominant per-actor overhead at Halo scale),
  // and a recycled slot keeps its mailbox RingBuffer storage, so
  // deactivate/re-activate churn stops allocating mailboxes in steady state.
  // Pointers returned by Find stay valid across Erase but are invalidated by
  // Create (the slab may grow) — never hold one across an activation.
  // ForEach visits slots in slot-index order: deterministic (a pure function
  // of the server's activation history), independent of hash layout.
  class ActivationTable {
   public:
    bool Contains(ActorId actor) const { return index_.Find(actor) != nullptr; }
    Activation* Find(ActorId actor) {
      const uint32_t* pos = index_.Find(actor);
      return pos == nullptr ? nullptr : &slots_[*pos].act;
    }
    const Activation* Find(ActorId actor) const {
      return const_cast<ActivationTable*>(this)->Find(actor);
    }
    size_t size() const { return live_; }

    // The actor must not be active. Returns a freshly reset record (mailbox
    // buffer inherited from the slot's previous occupant, empty).
    Activation& Create(ActorId actor) {
      uint32_t slot;
      if (free_head_ != kNilSlot) {
        slot = free_head_;
        free_head_ = slots_[slot].free_next;
      } else {
        slots_.emplace_back();
        slot = static_cast<uint32_t>(slots_.size() - 1);
      }
      Slot& s = slots_[slot];
      s.actor = actor;
      s.live = true;
      s.act.instance = nullptr;
      s.act.busy = false;
      s.act.activation_pending = true;
      s.act.open_contexts = 0;
      s.act.pending_subcalls = 0;
      s.act.dir_token = 0;
      index_.Insert(actor, slot);
      live_++;
      return s.act;
    }

    // The mailbox must already be empty (only idle actors deactivate); its
    // buffer stays with the slot for the next occupant.
    void Erase(ActorId actor) {
      const uint32_t* pos = index_.Find(actor);
      ACTOP_CHECK(pos != nullptr);
      Slot& s = slots_[*pos];
      ACTOP_CHECK(s.act.mailbox.empty());
      s.live = false;
      s.free_next = free_head_;
      free_head_ = *pos;
      live_--;
      index_.Erase(actor);
    }

    // Crash path: drops every record, queued mail included.
    void Clear() {
      slots_.clear();
      free_head_ = kNilSlot;
      live_ = 0;
      index_.Clear();
    }

    template <typename Fn>
    void ForEach(Fn&& fn) const {
      for (const Slot& s : slots_) {
        if (s.live) {
          fn(s.actor, s.act);
        }
      }
    }

   private:
    struct Slot {
      ActorId actor = kNoActor;
      Activation act;
      uint32_t free_next = kNilSlot;
      bool live = false;
    };

    std::vector<Slot> slots_;
    uint32_t free_head_ = kNilSlot;
    size_t live_ = 0;
    FlatHashMap<ActorId, uint32_t> index_;
  };

  struct ParkedCalls {
    std::vector<std::shared_ptr<Envelope>> entries;
    SimTime since = 0;
  };

  struct PendingCall {
    ActorId issuer = kNoActor;  // actor awaiting the response (kNoActor: none)
    ResponseFn on_response;
    SimTime issued_at = 0;
    bool remote = false;
  };

  // A response continuation parked between HandleResponse/FailPendingCall
  // and the worker-stage turn that runs it. Slab-allocated so the turn's
  // event captures only [this, slot] and stays inline in the event engine
  // (a [ResponseFn, Response] capture would spill to the heap per response);
  // slots recycle through a free list (free_next), same pattern as the
  // stage's InService slab.
  struct PendingResponse {
    ResponseFn fn;
    Response response;
    uint32_t free_next = kNilSlot;
  };

  // -- message paths --
  void HandleAfterReceive(std::shared_ptr<Envelope> env);
  void HandleControl(const Envelope& env, NodeId from);
  void RouteCall(std::shared_ptr<Envelope> env);
  void ResolveViaDirectory(std::shared_ptr<Envelope> env);
  void OnDirectoryAnswer(ActorId actor, ServerId owner, uint64_t token);
  void ActivateAndDeliver(std::shared_ptr<Envelope> env, uint64_t token);
  // Deactivates + unregisters, fencing the in-flight unregister so a racing
  // lookup answer cannot resurrect the doomed registration.
  void DropActivationAndUnregister(ActorId actor);
  void DeliverLocalCall(std::shared_ptr<Envelope> env);
  void StartTurn(ActorId actor, std::shared_ptr<Envelope> env);
  void FinishTurn(ActorId actor);
  void HandleResponse(std::shared_ptr<Envelope> env);

  // -- sending --
  void SendToServer(ServerId dest, std::shared_ptr<Envelope> env);
  void SendToClient(NodeId client_node, std::shared_ptr<Envelope> env);
  void ForwardCall(std::shared_ptr<Envelope> env, ServerId dest);

  // -- sub-call issue (from call contexts) --
  void IssueCall(ActorId from_actor, ActorId target, MethodId method, uint64_t app_data,
                 uint32_t bytes, ResponseFn on_response);
  void CompleteReply(ActorId from_actor, const Envelope& original_call, uint32_t bytes);

  // -- response-continuation slab --
  uint32_t AcquireResponseSlot(ResponseFn fn, const Response& response);
  void RunResponseSlot(uint32_t slot);
  void FreeResponseSlot(uint32_t slot);

  void RetainContext(void* key, std::shared_ptr<void> context);
  std::shared_ptr<void> ReleaseContext(void* key);

  ServerId SuggestPlacement(ActorId actor);
  SimDuration SampleCost(SimDuration mean);
  SimDuration DeserializeCost(uint32_t bytes);
  SimDuration SerializeCost(uint32_t bytes);
  void SweepTimeouts();
  void FailPendingCall(uint64_t seq);
  void NoteAppSend(ActorId from, ActorId to, ServerId dest_server, bool remote);

  Simulation* sim_;
  Cluster* cluster_;
  const ServerId id_;
  ServerConfig config_;
  Rng rng_;
  NodeId node_ = kNoNode;
  int shard_ = 0;
  ClusterMetrics* metrics_ = nullptr;

  std::unique_ptr<CpuModel> cpu_;
  std::vector<std::unique_ptr<Stage>> stages_;

  ActivationTable activations_;
  LocationCache location_cache_;
  DirectoryShard directory_shard_;

  // Calls issued from this node awaiting responses, keyed by sequence.
  // FlatHashMap, not unordered_map: this is touched once per call issue and
  // once per response on the message hot path, is never iterated (iteration
  // order could never be determinism-load-bearing), and open addressing
  // avoids the per-node allocation of the std containers. Walks that ARE
  // replay-load-bearing (ActiveActors, the SweepTimeouts retry loop) run
  // over slab-ordered structures (ActivationTable::ForEach) or node maps
  // whose iteration order is a deterministic function of the event history
  // (parked_calls_), never over open-addressing layout.
  FlatHashMap<uint64_t, PendingCall> pending_calls_;
  uint64_t next_call_seq_ = 1;
  // Monotone deadlines, swept FIFO; ring keeps steady state allocation-free.
  RingBuffer<std::pair<SimTime, uint64_t>> timeout_queue_;

  // Parked response continuations awaiting their worker-stage turn.
  std::vector<PendingResponse> response_slots_;
  uint32_t response_free_ = kNilSlot;

  // Calls parked while a directory lookup is in flight, keyed by actor.
  PooledNodeMap<ActorId, ParkedCalls> parked_calls_;
  // Retired parked-entry buffers, recycled by the next park so the
  // park/drain cycle stops allocating vectors in steady state.
  std::vector<std::vector<std::shared_ptr<Envelope>>> parked_entry_pool_;
  // Reused by SweepTimeouts' retry pass (collect-then-act; see the comment
  // there).
  std::vector<ActorId> sweep_retry_scratch_;
  uint64_t next_exchange_token_ = 1;

  // Registration tokens this server has unregistered but whose DirUnregister
  // message may still be in flight to a remote home shard. A directory
  // answer naming us owner under a fenced token must not be adopted: the
  // registration is doomed, so we re-resolve instead. An answer under any
  // other token clears the fence (tokens are monotone per shard, so the
  // fenced registration is gone for good by then). Fences expire after
  // call_timeout: past that, the unregister either landed (the token could
  // no longer be served) or was lost, and re-adopting the registration is
  // safe — without the expiry, a dropped unregister would park the actor's
  // calls forever.
  struct UnregisterFence {
    uint64_t token = 0;
    SimTime expires = 0;
  };
  PooledNodeMap<ActorId, UnregisterFence> pending_unregisters_;

  // Unreplied call contexts: an actor may Reply() from a sub-call
  // continuation long after its turn ended, so the runtime keeps the context
  // alive until then. Keyed by the context pointer value; never iterated, so
  // FlatHashMap is safe (see pending_calls_).
  FlatHashMap<uint64_t, std::shared_ptr<void>> open_call_contexts_;

  EdgeObserver edge_observer_;
  CallLatencyObserver call_latency_observer_;
  std::function<void(ServerId, const PartitionExchangeRequest&)> partition_request_handler_;
  std::function<void(ServerId, const PartitionExchangeResponse&)> partition_response_handler_;
  uint64_t migrations_out_ = 0;
  uint64_t remote_app_messages_ = 0;
  uint64_t local_app_messages_ = 0;
  uint64_t activations_started_ = 0;
  uint64_t crash_epoch_ = 0;
};

}  // namespace actop

#endif  // SRC_RUNTIME_SERVER_H_
