// Pooled envelope factory.
//
// Every message in the system is carried by a shared_ptr<Envelope>; the seed
// runtime created each one with make_shared, paying a heap allocation per
// message. MakeEnvelope() recycles both pieces of that:
//
//   * The Envelope object itself lives on a retained-object free list. When
//     the last reference drops, the envelope is ResetForReuse() — scalars
//     back to defaults, control-payload vectors cleared but keeping their
//     capacity — and parked for the next MakeEnvelope(). Recycling the
//     *object* rather than raw memory is what makes reuse capacity-
//     preserving: a destroy-and-reconstruct scheme would free the
//     PartitionExchangeRequest/Response vectors on every round trip.
//   * The shared_ptr control block (separate from the object under this
//     scheme) allocates through a RecyclingBlockCache, so it is also free
//     after warm-up.
//
// Both pools are function-local thread_locals: in serial mode that is the
// one main-thread pool (identical to the historical process-wide static);
// under the sharded engine each shard worker owns a private pool, and an
// envelope released on a different thread than it was created on simply
// parks in the releasing thread's pool. Pools outlive every simulation
// object and free their cached blocks at thread exit.

#ifndef SRC_RUNTIME_ENVELOPE_POOL_H_
#define SRC_RUNTIME_ENVELOPE_POOL_H_

#include <cstddef>
#include <cstdint>
#include <memory>

#include "src/common/recycling_pool.h"
#include "src/runtime/message.h"

namespace actop {

// The calling thread's control-block cache (exposed for stats and tests).
RecyclingBlockCache& EnvelopeBlockCache();

// Returns a pooled envelope with every field at its default-constructed
// value (fresh construction or ResetForReuse — indistinguishable except for
// retained vector capacity inside the control payload).
std::shared_ptr<Envelope> MakeEnvelope();

// Introspection for tests: lifetime counts of the retained-object pool.
struct EnvelopePoolStats {
  uint64_t fresh = 0;     // envelopes constructed with operator new
  uint64_t recycled = 0;  // envelopes handed back out from the free list
  size_t cached = 0;      // envelopes currently parked on the free list
};
EnvelopePoolStats GetEnvelopePoolStats();

}  // namespace actop

#endif  // SRC_RUNTIME_ENVELOPE_POOL_H_
