// Pooled envelope factory.
//
// Every message in the system is carried by a shared_ptr<Envelope>; the seed
// runtime created each one with make_shared, paying a heap allocation per
// message. MakeEnvelope() recycles the combined object+control-block through
// a process-wide RecyclingBlockCache instead. The returned envelope is
// freshly default-constructed — call sites that used make_shared<Envelope>()
// switch over with no behavioral change.
//
// The cache is a function-local static (the simulator is single-threaded per
// process; benches and tests each run one cluster at a time), so it outlives
// every simulation object and frees its cached blocks at process exit.

#ifndef SRC_RUNTIME_ENVELOPE_POOL_H_
#define SRC_RUNTIME_ENVELOPE_POOL_H_

#include <memory>

#include "src/common/recycling_pool.h"
#include "src/runtime/message.h"

namespace actop {

// The process-wide envelope block cache (exposed for stats and tests).
RecyclingBlockCache& EnvelopeBlockCache();

// Returns a default-constructed pooled envelope.
std::shared_ptr<Envelope> MakeEnvelope();

}  // namespace actop

#endif  // SRC_RUNTIME_ENVELOPE_POOL_H_
