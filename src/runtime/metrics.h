// Cluster-wide measurement collection for the benchmark harnesses.

#ifndef SRC_RUNTIME_METRICS_H_
#define SRC_RUNTIME_METRICS_H_

#include <cstdint>

#include "src/common/histogram.h"
#include "src/common/sim_time.h"

namespace actop {

// Aggregated cluster metrics. Servers and clients push into this; benches
// snapshot and reset between measurement phases.
class ClusterMetrics {
 public:
  // Actor-to-actor call round-trip latency, recorded at the calling server.
  // (Message counting happens separately via CountAppMessage, once per leg.)
  // O(1) and allocation-free: histogram buckets are preallocated and the
  // window mean is a running sum, so this sits on the per-message hot path
  // without a map lookup or heap traffic.
  void RecordActorCall(SimDuration latency, bool remote) {
    actor_call_latency_.Record(latency);
    window_latency_sum_ns_ += static_cast<double>(latency);
    window_latency_count_++;
    if (remote) {
      remote_actor_call_latency_.Record(latency);
    }
  }

  // Counts one actor-to-actor application message (call or response leg).
  void CountAppMessage(bool remote) { (remote ? window_remote_msgs_ : window_local_msgs_)++; }

  void CountMigration() {
    window_migrations_++;
    total_migrations_++;
  }

  const Histogram& actor_call_latency() const { return actor_call_latency_; }
  const Histogram& remote_actor_call_latency() const { return remote_actor_call_latency_; }

  // Per-window counters (reset by TakeWindow).
  struct Window {
    uint64_t remote_msgs = 0;
    uint64_t local_msgs = 0;
    uint64_t migrations = 0;
    double latency_sum_ns = 0.0;
    uint64_t latency_count = 0;

    double remote_fraction() const {
      const uint64_t total = remote_msgs + local_msgs;
      return total == 0 ? 0.0 : static_cast<double>(remote_msgs) / static_cast<double>(total);
    }

    // Mean actor-call round-trip over the window, without touching the
    // histogram (which aggregates across the whole measurement phase).
    double mean_latency_ns() const {
      return latency_count == 0 ? 0.0 : latency_sum_ns / static_cast<double>(latency_count);
    }
  };

  Window TakeWindow() {
    Window w{window_remote_msgs_, window_local_msgs_, window_migrations_,
             window_latency_sum_ns_, window_latency_count_};
    window_remote_msgs_ = 0;
    window_local_msgs_ = 0;
    window_migrations_ = 0;
    window_latency_sum_ns_ = 0.0;
    window_latency_count_ = 0;
    return w;
  }

  void ResetLatencies() {
    actor_call_latency_.Reset();
    remote_actor_call_latency_.Reset();
  }

  uint64_t total_migrations() const { return total_migrations_; }

 private:
  Histogram actor_call_latency_;
  Histogram remote_actor_call_latency_;
  uint64_t window_remote_msgs_ = 0;
  uint64_t window_local_msgs_ = 0;
  uint64_t window_migrations_ = 0;
  uint64_t total_migrations_ = 0;
  double window_latency_sum_ns_ = 0.0;
  uint64_t window_latency_count_ = 0;
};

}  // namespace actop

#endif  // SRC_RUNTIME_METRICS_H_
