#include "src/runtime/cluster.h"

#include <utility>

#include "src/common/check.h"

namespace actop {

Cluster::Cluster(Simulation* sim, ClusterConfig config)
    : sim_(sim), config_(std::move(config)), rng_(config_.seed) {
  ACTOP_CHECK(sim != nullptr);
  ACTOP_CHECK(config_.num_servers >= 1);
  network_ = std::make_unique<Network>(sim_, config_.network);
  Init();
}

Cluster::Cluster(ShardedEngine* engine, ClusterConfig config)
    : sim_(&engine->sim()), engine_(engine), config_(std::move(config)), rng_(config_.seed) {
  ACTOP_CHECK(config_.num_servers >= 1);
  // Each shard needs at least one server to own.
  ACTOP_CHECK(engine_->shards() <= config_.num_servers);
  network_ = std::make_unique<Network>(engine_, config_.network);
  Init();
  if (parallel()) {
    engine_->set_barrier_hook([this] { SnapshotGlobals(); });
  }
}

void Cluster::Init() {
  const int num_shards = shards();
  metrics_.reserve(static_cast<size_t>(num_shards));
  state_seen_.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; s++) {
    metrics_.push_back(std::make_unique<ClusterMetrics>());
    state_seen_.push_back(std::make_unique<FlatHashMap<ActorId, uint8_t>>());
  }

  for (int i = 0; i < config_.num_servers; i++) {
    const int shard = ShardOfServer(static_cast<ServerId>(i));
    Simulation* shard_sim = engine_ == nullptr ? sim_ : &engine_->shard(shard);
    auto server = std::make_unique<Server>(shard_sim, this, static_cast<ServerId>(i),
                                           config_.server, rng_.NextU64());
    Server* raw = server.get();
    const NodeId node = network_->AddNode(
        [raw](NodeId from, uint32_t bytes, std::shared_ptr<void> msg) {
          raw->OnNetworkMessage(from, bytes, std::move(msg));
        },
        shard);
    ACTOP_CHECK(node == static_cast<NodeId>(i));
    server->set_node(node);
    server->set_shard(shard);
    server->set_metrics(metrics_[static_cast<size_t>(shard)].get());
    ClusterMetrics* shard_metrics = metrics_[static_cast<size_t>(shard)].get();
    server->set_call_latency_observer(
        [shard_metrics](SimDuration latency, bool remote) {
          shard_metrics->RecordActorCall(latency, remote);
        });
    servers_.push_back(std::move(server));
  }

  if (config_.enable_partitioning) {
    for (int i = 0; i < config_.num_servers; i++) {
      Server* server = servers_[static_cast<size_t>(i)].get();
      const int shard = ShardOfServer(static_cast<ServerId>(i));
      Simulation* shard_sim = engine_ == nullptr ? sim_ : &engine_->shard(shard);
      auto agent = std::make_unique<PartitionAgent>(shard_sim, this, server, config_.partition);
      PartitionAgent* raw = agent.get();
      server->set_edge_observer([raw](ActorId local, ActorId peer, ServerId dest) {
        raw->ObserveEdge(local, peer, dest);
      });
      server->set_partition_handlers(
          [raw](ServerId from, const PartitionExchangeRequest& request) {
            raw->OnExchangeRequest(from, request);
          },
          [raw](ServerId from, const PartitionExchangeResponse& response) {
            raw->OnExchangeResponse(from, response);
          });
      agents_.push_back(std::move(agent));
    }
  }

  if (config_.enable_thread_optimization) {
    for (int i = 0; i < config_.num_servers; i++) {
      const int shard = ShardOfServer(static_cast<ServerId>(i));
      Simulation* shard_sim = engine_ == nullptr ? sim_ : &engine_->shard(shard);
      ModelControllerConfig cc = config_.thread_controller;
      cc.no_blocking.assign(static_cast<size_t>(Server::kNumStages), true);
      thread_controllers_.push_back(std::make_unique<ModelThreadController>(
          shard_sim, servers_[static_cast<size_t>(i)].get(), cc));
    }
  }
}

Cluster::~Cluster() {
  if (engine_ != nullptr && parallel()) {
    engine_->set_barrier_hook(nullptr);
  }
}

void Cluster::RegisterActorType(ActorType type, ActorFactory factory, CostModel costs) {
  ACTOP_CHECK(factory != nullptr);
  const bool inserted =
      actor_types_.emplace(type, ActorTypeInfo{std::move(factory), std::move(costs)}).second;
  ACTOP_CHECK(inserted);
}

void Cluster::StartOptimizers() {
  for (auto& agent : agents_) {
    agent->Start();
  }
  for (auto& controller : thread_controllers_) {
    controller->Start();
  }
}

PartitionAgent* Cluster::partition_agent(int i) {
  if (agents_.empty()) {
    return nullptr;
  }
  return agents_[static_cast<size_t>(i)].get();
}

NodeId Cluster::NodeOfServer(ServerId id) const {
  ACTOP_CHECK(id >= 0 && id < static_cast<ServerId>(servers_.size()));
  return static_cast<NodeId>(id);
}

ServerId Cluster::ServerOfNode(NodeId node) const {
  if (node >= 0 && node < static_cast<NodeId>(servers_.size())) {
    return static_cast<ServerId>(node);
  }
  return kNoServer;
}

NodeId Cluster::AddClientNode(Network::DeliverFn deliver) {
  return network_->AddNode(std::move(deliver), 0);
}

Actor* Cluster::GetOrCreateActor(ActorId actor, int shard) {
  if (parallel()) {
    state_seen_[static_cast<size_t>(shard)]->Insert(actor, 1);
    std::lock_guard<std::mutex> lock(state_mu_);
    if (auto* slot = state_store_.Find(actor)) {
      return slot->get();
    }
    const ActorType type = ActorTypeOf(actor);
    auto type_it = actor_types_.find(type);
    ACTOP_CHECK(type_it != actor_types_.end());
    auto instance = type_it->second.factory(actor);
    ACTOP_CHECK(instance != nullptr);
    Actor* raw = instance.get();
    state_store_.Insert(actor, std::move(instance));
    return raw;
  }
  if (auto* slot = state_store_.Find(actor)) {
    return slot->get();
  }
  const ActorType type = ActorTypeOf(actor);
  auto type_it = actor_types_.find(type);
  ACTOP_CHECK(type_it != actor_types_.end());
  auto instance = type_it->second.factory(actor);
  ACTOP_CHECK(instance != nullptr);
  Actor* raw = instance.get();
  state_store_.Insert(actor, std::move(instance));
  return raw;
}

bool Cluster::HasActorState(ActorId actor) const {
  if (parallel()) {
    std::lock_guard<std::mutex> lock(state_mu_);
    return state_store_.Find(actor) != nullptr;
  }
  return state_store_.Find(actor) != nullptr;
}

bool Cluster::HasActorStateForPlacement(ActorId actor, int shard) const {
  if (parallel()) {
    // Answer from the shard's own history: whether another shard created
    // this actor earlier in the same window must not influence (or
    // un-determinize) this shard's placement choice.
    return state_seen_[static_cast<size_t>(shard)]->Find(actor) != nullptr;
  }
  return state_store_.Find(actor) != nullptr;
}

const CostModel& Cluster::CostsFor(ActorId actor) const {
  auto it = actor_types_.find(ActorTypeOf(actor));
  ACTOP_CHECK(it != actor_types_.end());
  return it->second.costs;
}

int64_t Cluster::total_activations() const {
  if (parallel()) {
    return activation_snapshot_;
  }
  int64_t total = 0;
  for (const auto& server : servers_) {
    total += server->num_activations();
  }
  return total;
}

void Cluster::SnapshotGlobals() {
  int64_t total = 0;
  for (const auto& server : servers_) {
    total += server->num_activations();
  }
  activation_snapshot_ = total;
}

ClusterMetrics::Window Cluster::TakeMetricsWindow() {
  ClusterMetrics::Window merged = metrics_[0]->TakeWindow();
  for (size_t s = 1; s < metrics_.size(); s++) {
    const ClusterMetrics::Window w = metrics_[s]->TakeWindow();
    merged.remote_msgs += w.remote_msgs;
    merged.local_msgs += w.local_msgs;
    merged.migrations += w.migrations;
    merged.latency_sum_ns += w.latency_sum_ns;
    merged.latency_count += w.latency_count;
  }
  return merged;
}

void Cluster::ResetMetricsLatencies() {
  for (auto& m : metrics_) {
    m->ResetLatencies();
  }
}

Histogram Cluster::MergedActorCallLatency() const {
  Histogram merged;
  for (const auto& m : metrics_) {
    merged.Merge(m->actor_call_latency());
  }
  return merged;
}

Histogram Cluster::MergedRemoteActorCallLatency() const {
  Histogram merged;
  for (const auto& m : metrics_) {
    merged.Merge(m->remote_actor_call_latency());
  }
  return merged;
}

uint64_t Cluster::MetricsTotalMigrations() const {
  uint64_t total = 0;
  for (const auto& m : metrics_) {
    total += m->total_migrations();
  }
  return total;
}

double Cluster::RemoteMessageFraction() const {
  uint64_t remote = 0;
  uint64_t local = 0;
  for (const auto& server : servers_) {
    remote += server->remote_app_messages();
    local += server->local_app_messages();
  }
  const uint64_t total = remote + local;
  return total == 0 ? 0.0 : static_cast<double>(remote) / static_cast<double>(total);
}

uint64_t Cluster::total_migrations() const {
  uint64_t total = 0;
  for (const auto& server : servers_) {
    total += server->migrations_out();
  }
  return total;
}

void Cluster::CrashServer(ServerId id) {
  ACTOP_CHECK(id >= 0 && id < static_cast<ServerId>(servers_.size()));
  servers_[static_cast<size_t>(id)]->Crash();
  // Membership change: every directory shard evicts entries owned by the
  // crashed server, and caches drop stale pointers to it.
  for (auto& server : servers_) {
    server->directory_shard().EvictServer(id);
    if (server->id() != id) {
      server->location_cache().InvalidateServer(id);
    }
  }
}

int Cluster::ChurnDirectoryShard(ServerId id) {
  ACTOP_CHECK(id >= 0 && id < static_cast<ServerId>(servers_.size()));
  // Copy the entries first: DeactivateActor mutates the shard when the owner
  // is also the home. ForEach walks in slot-index order, so the churn order
  // replays deterministically for a fixed seed.
  churn_scratch_.clear();
  servers_[static_cast<size_t>(id)]->directory_shard().ForEach(
      [this](ActorId actor, const DirEntry& entry) {
        churn_scratch_.push_back({actor, entry.owner});
      });
  int churned = 0;
  for (const auto& [actor, owner] : churn_scratch_) {
    if (owner >= 0 && owner < static_cast<ServerId>(servers_.size()) &&
        servers_[static_cast<size_t>(owner)]->DeactivateActor(actor)) {
      churned++;
    }
  }
  return churned;
}

}  // namespace actop
