// The simulated cluster: servers, network, actor state store, and metrics.
//
// Plays the role of the paper's 10-server Orleans deployment. The Cluster
// wires servers to the network, owns the application actor objects (the
// "persistent state store": activations bind an actor id to a server, but
// the object itself survives deactivation and migration, as Orleans state
// does through storage), and hosts the optional ActOp components — one
// PartitionAgent and one ModelThreadController per server.

#ifndef SRC_RUNTIME_CLUSTER_H_
#define SRC_RUNTIME_CLUSTER_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/actor/actor.h"
#include "src/common/ids.h"
#include "src/common/rng.h"
#include "src/core/thread_controller.h"
#include "src/net/network.h"
#include "src/runtime/metrics.h"
#include "src/runtime/partition_agent.h"
#include "src/runtime/server.h"
#include "src/sim/simulation.h"

namespace actop {

struct ClusterConfig {
  int num_servers = 8;
  ServerConfig server;
  NetworkConfig network;
  uint64_t seed = 1;

  // ActOp optimizations (both off == the paper's baseline Orleans).
  bool enable_partitioning = false;
  PartitionAgentConfig partition;
  bool enable_thread_optimization = false;
  ModelControllerConfig thread_controller;  // no_blocking is filled in per server
};

class Cluster {
 public:
  Cluster(Simulation* sim, ClusterConfig config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // Registers an application actor type; must happen before traffic starts.
  void RegisterActorType(ActorType type, ActorFactory factory, CostModel costs);

  // Starts the enabled ActOp controllers (partition agents / thread
  // controllers). Call after workload setup.
  void StartOptimizers();

  Simulation& sim() { return *sim_; }
  Network& network() { return *network_; }
  ClusterMetrics& metrics() { return metrics_; }
  int num_servers() const { return static_cast<int>(servers_.size()); }
  Server& server(int i) { return *servers_[static_cast<size_t>(i)]; }
  PartitionAgent* partition_agent(int i);

  // Node/server address mapping (clients occupy nodes above the servers).
  NodeId NodeOfServer(ServerId id) const;
  ServerId ServerOfNode(NodeId node) const;  // kNoServer for client nodes
  NodeId AddClientNode(Network::DeliverFn deliver);

  // --- Actor state store ---
  // Returns the application object for `actor`, creating it on first use.
  Actor* GetOrCreateActor(ActorId actor);
  // True if the actor has ever been activated (its state exists).
  bool HasActorState(ActorId actor) const;
  const CostModel& CostsFor(ActorId actor) const;

  // Total activations across all servers (placement-balance target input).
  int64_t total_activations() const;

  // Fraction of actor-to-actor application messages that crossed servers,
  // over each server's lifetime counters.
  double RemoteMessageFraction() const;

  // Sum of per-server migration counters.
  uint64_t total_migrations() const;

  // --- Failure injection ---
  // Simulates a hard crash + instant replacement of server `id`: all its
  // activations vanish (state survives in the store), its directory shard
  // entries for actors it owned are evicted cluster-wide, and remote caches
  // drop entries pointing at it.
  void CrashServer(ServerId id);

  // Simulates churn of the directory shard homed at `id` (shard handoff /
  // idle-activation collection sweep): every idle actor registered there is
  // deactivated and unregistered, so subsequent calls must re-place and
  // re-register it from scratch. Busy actors keep their entries. Returns the
  // number of actors churned.
  int ChurnDirectoryShard(ServerId id);

  Rng& rng() { return rng_; }

 private:
  Simulation* sim_;
  ClusterConfig config_;
  Rng rng_;
  std::unique_ptr<Network> network_;
  std::vector<std::unique_ptr<Server>> servers_;
  std::vector<std::unique_ptr<PartitionAgent>> agents_;
  std::vector<std::unique_ptr<ModelThreadController>> thread_controllers_;
  std::unordered_map<ActorType, ActorTypeInfo> actor_types_;
  std::unordered_map<ActorId, std::unique_ptr<Actor>> state_store_;
  ClusterMetrics metrics_;
};

}  // namespace actop

#endif  // SRC_RUNTIME_CLUSTER_H_
