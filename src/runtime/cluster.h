// The simulated cluster: servers, network, actor state store, and metrics.
//
// Plays the role of the paper's 10-server Orleans deployment. The Cluster
// wires servers to the network, owns the application actor objects (the
// "persistent state store": activations bind an actor id to a server, but
// the object itself survives deactivation and migration, as Orleans state
// does through storage), and hosts the optional ActOp components — one
// PartitionAgent and one ModelThreadController per server.
//
// Sharded mode (construct with a ShardedEngine): servers are block-mapped
// onto shards (server i -> shard i*K/N), each server's events — SEDA stages,
// CPU model, partition agent, thread controller — run on its shard's
// Simulation, and clients/drivers live on shard 0. Cross-shard coupling is
// confined to:
//   * the actor state store (mutex-guarded creation; per-shard "seen" sets
//     answer placement queries so a shard's decision depends only on its own
//     history — deterministic for a fixed shard count),
//   * per-shard ClusterMetrics instances with merged cluster-level views,
//   * total_activations(), which in parallel mode reads a snapshot taken at
//     each window barrier (the live sum would race mid-window).
// With shards == 1 every path reduces to the serial one, byte-for-byte.

#ifndef SRC_RUNTIME_CLUSTER_H_
#define SRC_RUNTIME_CLUSTER_H_

#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/flat_hash_map.h"

#include "src/actor/actor.h"
#include "src/common/ids.h"
#include "src/common/rng.h"
#include "src/core/thread_controller.h"
#include "src/net/network.h"
#include "src/runtime/metrics.h"
#include "src/runtime/partition_agent.h"
#include "src/runtime/server.h"
#include "src/sim/sharded_engine.h"
#include "src/sim/simulation.h"

namespace actop {

struct ClusterConfig {
  int num_servers = 8;
  ServerConfig server;
  NetworkConfig network;
  uint64_t seed = 1;

  // ActOp optimizations (both off == the paper's baseline Orleans).
  bool enable_partitioning = false;
  PartitionAgentConfig partition;
  bool enable_thread_optimization = false;
  ModelControllerConfig thread_controller;  // no_blocking is filled in per server
};

class Cluster {
 public:
  // Serial cluster on a single engine (the pre-sharding construction).
  Cluster(Simulation* sim, ClusterConfig config);
  // Sharded cluster: servers block-mapped across the engine's shards.
  // Requires shards <= num_servers. The engine must outlive the cluster.
  Cluster(ShardedEngine* engine, ClusterConfig config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // Registers an application actor type; must happen before traffic starts.
  void RegisterActorType(ActorType type, ActorFactory factory, CostModel costs);

  // Starts the enabled ActOp controllers (partition agents / thread
  // controllers). Call after workload setup.
  void StartOptimizers();

  // Shard 0's engine: the driver shard (clients, workloads, setup code).
  Simulation& sim() { return *sim_; }
  // Non-null in sharded mode.
  ShardedEngine* engine() { return engine_; }
  bool parallel() const { return engine_ != nullptr && engine_->parallel(); }
  int shards() const { return engine_ == nullptr ? 1 : engine_->shards(); }
  // Block map: server i runs on shard i*K/N. Uses the config count, not
  // servers_.size(): Init() needs the map while servers_ is still filling.
  int ShardOfServer(ServerId id) const {
    return static_cast<int>(static_cast<int64_t>(id) * shards() / config_.num_servers);
  }

  Network& network() { return *network_; }

  // Shard 0's metrics instance. In serial mode this is the only one, so the
  // accessor keeps its historical meaning; parallel-aware consumers use the
  // merged views below.
  ClusterMetrics& metrics() { return *metrics_[0]; }
  ClusterMetrics& metrics_of_shard(int shard) { return *metrics_[static_cast<size_t>(shard)]; }

  // Cluster-level metric views: sum/merge across shards. With one shard they
  // are exactly the direct calls on metrics().
  ClusterMetrics::Window TakeMetricsWindow();
  void ResetMetricsLatencies();
  Histogram MergedActorCallLatency() const;
  Histogram MergedRemoteActorCallLatency() const;
  uint64_t MetricsTotalMigrations() const;

  int num_servers() const { return static_cast<int>(servers_.size()); }
  Server& server(int i) { return *servers_[static_cast<size_t>(i)]; }
  PartitionAgent* partition_agent(int i);

  // Node/server address mapping (clients occupy nodes above the servers).
  NodeId NodeOfServer(ServerId id) const;
  ServerId ServerOfNode(NodeId node) const;  // kNoServer for client nodes
  // Client nodes attach to shard 0 (the driver shard).
  NodeId AddClientNode(Network::DeliverFn deliver);

  // --- Actor state store ---
  // Returns the application object for `actor`, creating it on first use.
  // `shard` is the calling shard (used to maintain the per-shard seen sets);
  // the single-argument form is for driver/test code on shard 0.
  Actor* GetOrCreateActor(ActorId actor) { return GetOrCreateActor(actor, 0); }
  Actor* GetOrCreateActor(ActorId actor, int shard);
  // True if the actor has ever been activated (its state exists).
  bool HasActorState(ActorId actor) const;
  // Placement-policy variant of HasActorState: in parallel mode it answers
  // from the calling shard's own history only, so the answer cannot depend
  // on what another shard did concurrently in the same window. Serial mode:
  // identical to HasActorState.
  bool HasActorStateForPlacement(ActorId actor, int shard) const;
  const CostModel& CostsFor(ActorId actor) const;

  // Total activations across all servers (placement-balance target input).
  // Parallel mode returns the last window-barrier snapshot.
  int64_t total_activations() const;

  // Fraction of actor-to-actor application messages that crossed servers,
  // over each server's lifetime counters.
  double RemoteMessageFraction() const;

  // Sum of per-server migration counters.
  uint64_t total_migrations() const;

  // --- Failure injection ---
  // Simulates a hard crash + instant replacement of server `id`: all its
  // activations vanish (state survives in the store), its directory shard
  // entries for actors it owned are evicted cluster-wide, and remote caches
  // drop entries pointing at it. In parallel mode: coordinator/rail context
  // only (mutates every server).
  void CrashServer(ServerId id);

  // Simulates churn of the directory shard homed at `id` (shard handoff /
  // idle-activation collection sweep): every idle actor registered there is
  // deactivated and unregistered, so subsequent calls must re-place and
  // re-register it from scratch. Busy actors keep their entries. Returns the
  // number of actors churned. Parallel mode: coordinator/rail context only.
  int ChurnDirectoryShard(ServerId id);

  Rng& rng() { return rng_; }

 private:
  void Init();
  // Window-barrier hook (parallel mode): refreshes cross-shard snapshots.
  void SnapshotGlobals();

  Simulation* sim_;
  ShardedEngine* engine_ = nullptr;
  ClusterConfig config_;
  Rng rng_;
  std::unique_ptr<Network> network_;
  std::vector<std::unique_ptr<Server>> servers_;
  std::vector<std::unique_ptr<PartitionAgent>> agents_;
  std::vector<std::unique_ptr<ModelThreadController>> thread_controllers_;
  std::unordered_map<ActorType, ActorTypeInfo> actor_types_;

  // Guards state_store_ in parallel mode (activation creation can race
  // across shards); uncontended in serial mode. FlatHashMap: one flat slot
  // per actor instead of a heap node + bucket chain — at 10M actors the
  // per-entry overhead is what dominates the footprint. Never iterated, and
  // unique_ptr values move safely through rehash.
  mutable std::mutex state_mu_;
  FlatHashMap<ActorId, std::unique_ptr<Actor>> state_store_;
  // Per-shard sets of actors each shard has created or re-activated; backs
  // HasActorStateForPlacement in parallel mode. Padded via separate
  // allocations (one set per shard, touched only by that shard). Value is a
  // dummy byte — FlatHashMap as a flat set.
  std::vector<std::unique_ptr<FlatHashMap<ActorId, uint8_t>>> state_seen_;

  // Scratch for ChurnDirectoryShard's copy-then-deactivate walk.
  std::vector<std::pair<ActorId, ServerId>> churn_scratch_;

  // One metrics instance per shard; shard workers write only their own.
  std::vector<std::unique_ptr<ClusterMetrics>> metrics_;

  // Barrier snapshot of total activations (parallel mode).
  int64_t activation_snapshot_ = 0;
};

}  // namespace actop

#endif  // SRC_RUNTIME_CLUSTER_H_
