// Client frontend pool: open-loop load generation and latency measurement.
//
// Models the paper's 15 frontend servers as one network node issuing an
// aggregate Poisson request stream. Each request picks a random gateway
// server (Orleans clients connect to gateways; the gateway forwards to the
// target actor's silo when needed). End-to-end latency is measured at the
// client from send to response, exactly as the paper records it.

#ifndef SRC_RUNTIME_CLIENT_H_
#define SRC_RUNTIME_CLIENT_H_

#include <functional>
#include <unordered_map>

#include "src/actor/actor.h"
#include "src/common/flat_hash_map.h"
#include "src/common/histogram.h"
#include "src/common/ids.h"
#include "src/common/ring_buffer.h"
#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/runtime/cluster.h"

namespace actop {

struct ClientConfig {
  double request_rate = 1000.0;  // aggregate requests per second
  uint32_t request_bytes = 256;
  SimDuration timeout = Seconds(10);
  uint64_t seed = 7;
};

class ClientPool {
 public:
  // Picks the target (actor, method) for the next request. Returning false
  // skips this arrival (e.g. no eligible actor yet).
  using TargetFn = std::function<bool(Rng&, ActorId*, MethodId*)>;

  ClientPool(Simulation* sim, Cluster* cluster, ClientConfig config, TargetFn target_fn);

  void Start();
  void Stop();

  // Open-loop injection path: issues one request immediately, independent of
  // the pool's own Poisson arrival chain and of any outstanding responses.
  // External arrival processes (src/load/) drive scenario traffic through
  // these — Inject() picks the target via the pool's TargetFn, InjectTo()
  // addresses a specific actor (viral-cascade reposts, reconnect storms).
  void Inject();
  void InjectTo(ActorId target, MethodId method);

  const Histogram& latency() const { return latency_; }
  uint64_t issued() const { return issued_; }
  uint64_t completed() const { return completed_; }
  uint64_t timeouts() const { return timeouts_; }
  // Requests in flight (issued, not yet completed or timed out).
  uint64_t outstanding() const { return pending_.size(); }

  // Clears measurements (used to discard warm-up).
  void ResetStats();

 private:
  void ScheduleNextArrival();
  void IssueRequest();
  void SendCall(ActorId target, MethodId method);
  void OnDeliver(NodeId from, uint32_t bytes, std::shared_ptr<void> msg);
  void SweepTimeouts();

  Simulation* sim_;
  Cluster* cluster_;
  ClientConfig config_;
  TargetFn target_fn_;
  Rng rng_;
  NodeId node_ = kNoNode;
  bool running_ = false;

  // seq -> send time. Touched once per request and once per response, never
  // iterated — FlatHashMap keeps the per-request bookkeeping off the heap
  // (see src/runtime/server.h's pending_calls_ for the rationale).
  FlatHashMap<uint64_t, SimTime> pending_;
  // Monotone deadlines, swept FIFO; ring keeps steady state allocation-free.
  RingBuffer<std::pair<SimTime, uint64_t>> timeout_queue_;
  uint64_t next_seq_ = 1;

  Histogram latency_;
  uint64_t issued_ = 0;
  uint64_t completed_ = 0;
  uint64_t timeouts_ = 0;
};

// A client node for directed (non-rate-based) calls: used by workload
// drivers (e.g. Halo's matchmaking service) to invoke actors on demand.
class DirectClient {
 public:
  DirectClient(Simulation* sim, Cluster* cluster, uint64_t seed);

  // Issues a call through a random gateway; `on_response` may be null.
  void Call(ActorId target, MethodId method, uint64_t app_data, uint32_t bytes,
            std::function<void(const Response&)> on_response);

 private:
  void OnDeliver(NodeId from, uint32_t bytes, std::shared_ptr<void> msg);

  Simulation* sim_;
  Cluster* cluster_;
  Rng rng_;
  NodeId node_ = kNoNode;
  std::unordered_map<uint64_t, std::function<void(const Response&)>> pending_;
  uint64_t next_seq_ = 1;
};

}  // namespace actop

#endif  // SRC_RUNTIME_CLIENT_H_
