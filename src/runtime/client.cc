#include "src/runtime/client.h"

#include <utility>

#include "src/common/check.h"
#include "src/runtime/envelope_pool.h"
#include "src/runtime/message.h"

namespace actop {

ClientPool::ClientPool(Simulation* sim, Cluster* cluster, ClientConfig config, TargetFn target_fn)
    : sim_(sim),
      cluster_(cluster),
      config_(config),
      target_fn_(std::move(target_fn)),
      rng_(config.seed) {
  ACTOP_CHECK(sim != nullptr);
  ACTOP_CHECK(cluster != nullptr);
  ACTOP_CHECK(target_fn_ != nullptr);
  ACTOP_CHECK(config_.request_rate > 0.0);
  node_ = cluster_->AddClientNode([this](NodeId from, uint32_t bytes, std::shared_ptr<void> msg) {
    OnDeliver(from, bytes, std::move(msg));
  });
  sim_->SchedulePeriodic(Seconds(1), [this] { SweepTimeouts(); });
}

void ClientPool::Start() {
  ACTOP_CHECK(!running_);
  running_ = true;
  ScheduleNextArrival();
}

void ClientPool::Stop() { running_ = false; }

void ClientPool::ResetStats() {
  latency_.Reset();
  issued_ = 0;
  completed_ = 0;
  timeouts_ = 0;
}

void ClientPool::ScheduleNextArrival() {
  const double mean_gap_ns = 1e9 / config_.request_rate;
  const auto gap = static_cast<SimDuration>(rng_.NextExp(mean_gap_ns) + 0.5);
  sim_->ScheduleAfter(gap, [this] {
    if (!running_) {
      return;
    }
    IssueRequest();
    ScheduleNextArrival();
  });
}

void ClientPool::Inject() { IssueRequest(); }

void ClientPool::InjectTo(ActorId target, MethodId method) { SendCall(target, method); }

void ClientPool::IssueRequest() {
  ActorId target = kNoActor;
  MethodId method = 0;
  if (!target_fn_(rng_, &target, &method)) {
    return;
  }
  SendCall(target, method);
}

void ClientPool::SendCall(ActorId target, MethodId method) {
  const uint64_t seq = next_seq_++;
  auto env = MakeEnvelope();
  env->kind = MessageKind::kCall;
  env->call_id = CallId{node_, seq};
  env->target = target;
  env->source_actor = kNoActor;
  env->method = method;
  env->payload_bytes = config_.request_bytes;
  env->reply_to = node_;
  env->created_at = sim_->now();

  pending_.Insert(seq, sim_->now());
  timeout_queue_.push_back({sim_->now() + config_.timeout, seq});
  issued_++;

  // Requests enter through a random gateway server.
  const auto gateway = static_cast<ServerId>(
      rng_.NextBounded(static_cast<uint64_t>(cluster_->num_servers())));
  cluster_->network().Send(node_, cluster_->NodeOfServer(gateway), env->payload_bytes, env);
}

void ClientPool::OnDeliver(NodeId from, uint32_t bytes, std::shared_ptr<void> msg) {
  (void)from;
  (void)bytes;
  auto env = std::static_pointer_cast<Envelope>(msg);
  ACTOP_CHECK(env->kind == MessageKind::kResponse);
  const SimTime* sent_at = pending_.Find(env->call_id.seq);
  if (sent_at == nullptr) {
    return;  // already timed out
  }
  latency_.Record(sim_->now() - *sent_at);
  pending_.Erase(env->call_id.seq);
  completed_++;
}

void ClientPool::SweepTimeouts() {
  const SimTime now = sim_->now();
  while (!timeout_queue_.empty() && timeout_queue_.front().first <= now) {
    const uint64_t seq = timeout_queue_.front().second;
    timeout_queue_.pop_front();
    if (pending_.Erase(seq)) {
      timeouts_++;
    }
  }
}

DirectClient::DirectClient(Simulation* sim, Cluster* cluster, uint64_t seed)
    : sim_(sim), cluster_(cluster), rng_(seed) {
  ACTOP_CHECK(sim != nullptr);
  ACTOP_CHECK(cluster != nullptr);
  node_ = cluster_->AddClientNode([this](NodeId from, uint32_t bytes, std::shared_ptr<void> msg) {
    OnDeliver(from, bytes, std::move(msg));
  });
}

void DirectClient::Call(ActorId target, MethodId method, uint64_t app_data, uint32_t bytes,
                        std::function<void(const Response&)> on_response) {
  const uint64_t seq = next_seq_++;
  auto env = MakeEnvelope();
  env->kind = MessageKind::kCall;
  env->call_id = CallId{node_, on_response == nullptr ? 0 : seq};
  env->target = target;
  env->method = method;
  env->app_data = app_data;
  env->payload_bytes = bytes;
  env->reply_to = node_;
  env->created_at = sim_->now();
  if (on_response != nullptr) {
    pending_.emplace(seq, std::move(on_response));
  }
  const auto gateway = static_cast<ServerId>(
      rng_.NextBounded(static_cast<uint64_t>(cluster_->num_servers())));
  cluster_->network().Send(node_, cluster_->NodeOfServer(gateway), env->payload_bytes, env);
}

void DirectClient::OnDeliver(NodeId from, uint32_t bytes, std::shared_ptr<void> msg) {
  (void)from;
  (void)bytes;
  auto env = std::static_pointer_cast<Envelope>(msg);
  auto it = pending_.find(env->call_id.seq);
  if (it == pending_.end()) {
    return;
  }
  auto on_response = std::move(it->second);
  pending_.erase(it);
  Response response;
  response.from = env->source_actor;
  response.payload_bytes = env->payload_bytes;
  on_response(response);
}

}  // namespace actop
