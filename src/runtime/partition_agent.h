// Per-server driver of the distributed partitioning algorithm (§4.2–§4.3).
//
// Each agent samples its server's outgoing actor-to-actor traffic with a
// Space-Saving summary, periodically builds a LocalGraphView from the
// sampled heavy edges, ranks peers by expected cost reduction, and runs the
// pairwise coordination protocol over control messages. Accepted moves are
// applied through the server's opportunistic migration mechanism.

#ifndef SRC_RUNTIME_PARTITION_AGENT_H_
#define SRC_RUNTIME_PARTITION_AGENT_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/flat_hash_map.h"
#include "src/common/ids.h"
#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/core/csr_graph.h"
#include "src/core/pairwise_partition.h"
#include "src/core/repartition_arena.h"
#include "src/core/space_saving.h"
#include "src/runtime/message.h"
#include "src/sim/simulation.h"

namespace actop {

class Cluster;
class Server;

struct PartitionAgentConfig {
  // How often the agent initiates an exchange round.
  SimDuration exchange_period = Seconds(6);
  // A server rejects incoming exchange requests within this window after its
  // last exchange (paper: one minute; scaled with the rest of the clock).
  SimDuration exchange_min_gap = Seconds(6);
  // How many peers to try per round before giving up (paper: until all
  // positive-score peers reject; bounding it caps control traffic).
  int max_peers_per_round = 3;
  // Space-Saving capacity for sampled edges.
  size_t edge_sample_capacity = 8192;
  // Edge counters decay by half at this period so stale edges fade (§4.3).
  SimDuration edge_decay_period = Seconds(30);
  // Parameters of the pure partitioning algorithm (target_size is filled in
  // from live cluster statistics each round).
  PairwiseConfig pairwise{.candidate_set_size = 64, .balance_delta = 64};
  // CPU charged to the worker stage per round for candidate-set computation,
  // per sampled edge (models the O(V log k) scan of §4.2).
  SimDuration plan_compute_per_edge = Nanos(120);
  // Plans and decides rounds through the flat CSR repartitioning arena
  // (src/core/repartition_arena.h) instead of the map-based reference
  // planner: the sampled edges are frozen straight into a persistent
  // CsrGraph (no LocalGraphView hash maps) and scanned linearly, with every
  // planning buffer reused across rounds — steady-state control-plane work
  // allocates only the plan and response payloads that go onto the wire
  // (the fig10b allocs/event ratchet counts on this). Decisions are
  // byte-identical to the reference path
  // (tests/runtime/arena_planner_test.cc) because both visit local vertices
  // in ascending-id order and the agent's edge weights are integer sample
  // counts (exact in double regardless of summation order).
  bool use_arena_planner = false;
};

class PartitionAgent {
 public:
  PartitionAgent(Simulation* sim, Cluster* cluster, Server* server, PartitionAgentConfig config);

  // Begins periodic exchange rounds (randomly phase-shifted so servers do
  // not initiate in lock step).
  void Start();
  void Stop();

  // Wired to Server::set_edge_observer.
  void ObserveEdge(ActorId local, ActorId peer, ServerId dest);

  // Control-message entry points (wired by the Server).
  void OnExchangeRequest(ServerId from, const PartitionExchangeRequest& request);
  void OnExchangeResponse(ServerId from, const PartitionExchangeResponse& response);

  // Builds the current sampled view (exposed for tests).
  LocalGraphView BuildView() const;

  uint64_t rounds_initiated() const { return rounds_initiated_; }
  uint64_t exchanges_accepted() const { return exchanges_accepted_; }
  uint64_t exchanges_rejected() const { return exchanges_rejected_; }

 private:
  struct EdgeKey {
    ActorId local;
    ActorId peer;
    bool operator==(const EdgeKey&) const = default;
  };
  struct EdgeKeyHash {
    size_t operator()(const EdgeKey& k) const {
      return static_cast<size_t>(SplitMix64(k.local ^ SplitMix64(k.peer)));
    }
  };

  void RunRound();
  void TryNextPeer();
  void MigrateAccepted(ServerId dest, const std::vector<VertexId>& vertices);
  PairwiseConfig CurrentPairwiseConfig() const;
  // The canonical vertex-visit order for this view: sampled local vertices
  // ascending by id (mirrors PartitionTestbed::SampledMembers).
  static std::vector<VertexId> SampledOrder(const LocalGraphView& view);
  // Arena backend only: refreezes the current samples into plan_graph_ /
  // plan_arena_ (see the member comment). Resolves each vertex's location
  // exactly as BuildView does, with the stand-in server one past the
  // cluster's real ids for unknown locations.
  void RefreshPlanGraph();

  Simulation* sim_;
  Cluster* cluster_;
  Server* server_;
  PartitionAgentConfig config_;

  SpaceSaving<EdgeKey, EdgeKeyHash> edges_;
  // Last observed destination for peers we send to (fallback when the
  // location cache has evicted the entry). Updated per observed edge and
  // never iterated, so the open-addressing map keeps it off the heap.
  FlatHashMap<ActorId, ServerId> last_seen_;
  // Reused across OnExchangeRequest calls so translating the wire request
  // into the algorithm's struct recycles the candidate buffers (reference
  // planning path only; the arena path reads the wire request directly).
  ExchangeRequest exchange_scratch_;

  // Persistent arena-planner state (use_arena_planner): each round the
  // sampled edges refreeze into plan_graph_ in place and plan_arena_
  // re-initializes over it, all buffers keeping their capacity — after
  // warmup neither planning nor deciding allocates beyond wire payloads.
  CsrGraph plan_graph_;
  std::unique_ptr<RepartitionArena> plan_arena_;
  std::vector<CsrEdge> plan_edges_;
  std::vector<ServerId> plan_assignment_;
  std::vector<VertexId> accepted_scratch_;
  std::vector<VertexId> counter_scratch_;

  EventId round_timer_ = 0;
  EventId decay_timer_ = 0;
  SimTime last_exchange_ = -(int64_t{1} << 60);
  bool exchange_in_flight_ = false;
  SimTime exchange_sent_at_ = 0;
  std::vector<PeerPlan> pending_plans_;  // remaining peers to try this round
  size_t next_plan_ = 0;
  uint64_t next_exchange_id_ = 1;

  uint64_t rounds_initiated_ = 0;
  uint64_t exchanges_accepted_ = 0;
  uint64_t exchanges_rejected_ = 0;
};

}  // namespace actop

#endif  // SRC_RUNTIME_PARTITION_AGENT_H_
