#include "src/runtime/envelope_pool.h"

namespace actop {

RecyclingBlockCache& EnvelopeBlockCache() {
  static RecyclingBlockCache cache;
  return cache;
}

std::shared_ptr<Envelope> MakeEnvelope() { return MakePooled<Envelope>(EnvelopeBlockCache()); }

}  // namespace actop
