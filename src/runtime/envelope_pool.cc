#include "src/runtime/envelope_pool.h"

#include <vector>

namespace actop {

namespace {

struct EnvelopePool {
  // Bounds the free list so a one-off burst does not pin its high-water
  // mark of envelopes (and their retained vector capacity) forever.
  static constexpr size_t kMaxCached = 8192;

  std::vector<Envelope*> free;
  uint64_t fresh = 0;
  uint64_t recycled = 0;

  ~EnvelopePool() {
    for (Envelope* env : free) delete env;
  }
};

EnvelopePool& Pool() {
  thread_local EnvelopePool pool;
  return pool;
}

// shared_ptr deleter: instead of destroying the envelope, reset it and park
// it for the next MakeEnvelope(). Routes through Pool() at release time, so
// an envelope whose last reference drops on another shard's thread (a
// cross-shard message) parks in the *releasing* thread's pool — no lock, no
// race, and each pool stays bounded by kMaxCached.
struct EnvelopeRecycler {
  void operator()(Envelope* env) const noexcept {
    EnvelopePool& pool = Pool();
    if (pool.free.size() < EnvelopePool::kMaxCached) {
      env->ResetForReuse();
      pool.free.push_back(env);
    } else {
      delete env;
    }
  }
};

// Stateless control-block allocator: resolves EnvelopeBlockCache() (a
// thread_local) at allocate/deallocate time rather than capturing a cache
// pointer in the control block. A pointer captured at creation would be
// dereferenced by whichever thread drops the last reference — a data race
// for cross-shard envelopes.
template <typename U>
struct EnvelopeBlockAllocator {
  using value_type = U;

  EnvelopeBlockAllocator() = default;
  template <typename V>
  EnvelopeBlockAllocator(const EnvelopeBlockAllocator<V>&) {}  // NOLINT

  U* allocate(size_t n) { return static_cast<U*>(EnvelopeBlockCache().Allocate(n * sizeof(U))); }
  void deallocate(U* p, size_t n) { EnvelopeBlockCache().Release(p, n * sizeof(U)); }

  template <typename V>
  bool operator==(const EnvelopeBlockAllocator<V>&) const {
    return true;
  }
};

}  // namespace

RecyclingBlockCache& EnvelopeBlockCache() {
  thread_local RecyclingBlockCache cache;
  return cache;
}

std::shared_ptr<Envelope> MakeEnvelope() {
  EnvelopePool& pool = Pool();
  Envelope* env;
  if (!pool.free.empty()) {
    env = pool.free.back();
    pool.free.pop_back();
    pool.recycled++;
  } else {
    env = new Envelope();
    pool.fresh++;
  }
  return std::shared_ptr<Envelope>(env, EnvelopeRecycler{}, EnvelopeBlockAllocator<Envelope>());
}

EnvelopePoolStats GetEnvelopePoolStats() {
  const EnvelopePool& pool = Pool();
  return EnvelopePoolStats{pool.fresh, pool.recycled, pool.free.size()};
}

}  // namespace actop
