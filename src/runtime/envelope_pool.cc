#include "src/runtime/envelope_pool.h"

#include <vector>

namespace actop {

namespace {

struct EnvelopePool {
  // Bounds the free list so a one-off burst does not pin its high-water
  // mark of envelopes (and their retained vector capacity) forever.
  static constexpr size_t kMaxCached = 8192;

  std::vector<Envelope*> free;
  uint64_t fresh = 0;
  uint64_t recycled = 0;

  ~EnvelopePool() {
    for (Envelope* env : free) delete env;
  }
};

EnvelopePool& Pool() {
  static EnvelopePool pool;
  return pool;
}

// shared_ptr deleter: instead of destroying the envelope, reset it and park
// it for the next MakeEnvelope(). The control block is released separately
// through EnvelopeBlockCache by the allocator below.
struct EnvelopeRecycler {
  void operator()(Envelope* env) const noexcept {
    EnvelopePool& pool = Pool();
    if (pool.free.size() < EnvelopePool::kMaxCached) {
      env->ResetForReuse();
      pool.free.push_back(env);
    } else {
      delete env;
    }
  }
};

}  // namespace

RecyclingBlockCache& EnvelopeBlockCache() {
  static RecyclingBlockCache cache;
  return cache;
}

std::shared_ptr<Envelope> MakeEnvelope() {
  EnvelopePool& pool = Pool();
  Envelope* env;
  if (!pool.free.empty()) {
    env = pool.free.back();
    pool.free.pop_back();
    pool.recycled++;
  } else {
    env = new Envelope();
    pool.fresh++;
  }
  return std::shared_ptr<Envelope>(env, EnvelopeRecycler{},
                                   RecyclingAllocator<Envelope>(&EnvelopeBlockCache()));
}

EnvelopePoolStats GetEnvelopePoolStats() {
  const EnvelopePool& pool = Pool();
  return EnvelopePoolStats{pool.fresh, pool.recycled, pool.free.size()};
}

}  // namespace actop
