#include "src/runtime/server.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/runtime/cluster.h"
#include "src/runtime/envelope_pool.h"

namespace actop {

namespace {
const char* const kStageNames[Server::kNumStages] = {"receive", "worker", "server_sender",
                                                     "client_sender"};

// Combined object+control-block cache for ServerCallContext: one context is
// created per delivered call, so recycling the make_shared block keeps the
// turn-dispatch path off the allocator. thread_local: each shard worker gets
// its own cache (a context is created and destroyed on the same shard's
// events, so blocks never migrate threads; outlives every simulation).
RecyclingBlockCache& CallContextBlockCache() {
  thread_local RecyclingBlockCache cache;
  return cache;
}
}  // namespace

// Concrete CallContext bound to one delivered call. Kept alive by shared_ptr
// captured in the actor's continuations until Reply() runs.
class ServerCallContext : public CallContext,
                          public std::enable_shared_from_this<ServerCallContext> {
 public:
  ServerCallContext(Server* server, std::shared_ptr<Envelope> call)
      : server_(server), call_(std::move(call)) {}

  ActorId self() const override { return call_->target; }
  MethodId method() const override { return call_->method; }
  uint32_t payload_bytes() const override { return call_->payload_bytes; }
  uint64_t app_data() const override { return call_->app_data; }
  ActorId caller() const override { return call_->source_actor; }
  SimTime now() const override { return server_->sim_->now(); }

  void Call(ActorId target, MethodId method, uint32_t payload_bytes,
            ResponseFn on_response) override {
    server_->IssueCall(self(), target, method, 0, payload_bytes, std::move(on_response));
  }

  void CallWithData(ActorId target, MethodId method, uint64_t app_data, uint32_t payload_bytes,
                    ResponseFn on_response) override {
    server_->IssueCall(self(), target, method, app_data, payload_bytes, std::move(on_response));
  }

  void CallOneWay(ActorId target, MethodId method, uint32_t payload_bytes) override {
    server_->IssueCall(self(), target, method, 0, payload_bytes, nullptr);
  }

  void Reply(uint32_t payload_bytes) override {
    ACTOP_CHECK(!replied_);
    replied_ = true;
    // Keep *this alive until this frame returns even though the server drops
    // its retaining reference now.
    std::shared_ptr<void> keep_alive = server_->ReleaseContext(this);
    server_->CompleteReply(self(), *call_, payload_bytes);
  }

  void AddCompute(SimDuration extra) override {
    ACTOP_CHECK(extra >= 0);
    extra_compute_ += extra;
  }

  bool replied() const { return replied_; }
  SimDuration take_extra_compute() {
    const SimDuration extra = extra_compute_;
    extra_compute_ = 0;
    return extra;
  }

 private:
  Server* server_;
  std::shared_ptr<Envelope> call_;
  bool replied_ = false;
  SimDuration extra_compute_ = 0;
};

Server::Server(Simulation* sim, Cluster* cluster, ServerId id, ServerConfig config, uint64_t seed)
    : sim_(sim),
      cluster_(cluster),
      id_(id),
      config_(config),
      rng_(seed),
      location_cache_(config.location_cache_capacity) {
  ACTOP_CHECK(sim != nullptr);
  ACTOP_CHECK(cluster != nullptr);
  cpu_ = std::make_unique<CpuModel>(sim_, config_.cores, config_.kappa,
                                    config_.dispatch_quantum, rng_.NextU64());
  if (config_.gc_mean_interval > 0) {
    cpu_->EnablePauses(config_.gc_mean_interval, config_.gc_base_duration,
                       config_.gc_per_thread_factor, config_.gc_superlinear_exponent);
  }
  for (int i = 0; i < kNumStages; i++) {
    stages_.push_back(std::make_unique<Stage>(sim_, cpu_.get(), kStageNames[i],
                                              config_.initial_threads_per_stage,
                                              config_.stage_queue_capacity));
  }
  cpu_->set_total_threads(config_.initial_threads_per_stage * kNumStages);
  sim_->SchedulePeriodic(config_.timeout_sweep_period, [this] { SweepTimeouts(); });
}

Server::~Server() = default;

void Server::ApplyThreadAllocation(const std::vector<int>& threads) {
  ACTOP_CHECK(threads.size() == static_cast<size_t>(kNumStages));
  int total = 0;
  for (int i = 0; i < kNumStages; i++) {
    stages_[static_cast<size_t>(i)]->set_threads(threads[static_cast<size_t>(i)]);
    total += threads[static_cast<size_t>(i)];
  }
  cpu_->set_total_threads(total);
}

SimDuration Server::SampleCost(SimDuration mean) {
  if (!config_.exponential_costs || mean <= 0) {
    return mean;
  }
  return rng_.NextExpDuration(mean);
}

SimDuration Server::DeserializeCost(uint32_t bytes) {
  return SampleCost(config_.deserialize_base + static_cast<SimDuration>(
                        config_.deserialize_ns_per_byte * static_cast<double>(bytes)));
}

SimDuration Server::SerializeCost(uint32_t bytes) {
  return SampleCost(config_.serialize_base + static_cast<SimDuration>(
                        config_.serialize_ns_per_byte * static_cast<double>(bytes)));
}

// ---------------------------------------------------------------------------
// Receive path
// ---------------------------------------------------------------------------

void Server::OnNetworkMessage(NodeId from, uint32_t bytes, std::shared_ptr<void> msg) {
  auto env = std::static_pointer_cast<Envelope>(msg);
  env->via_network = true;
  SimDuration compute = DeserializeCost(bytes);
  if (env->kind == MessageKind::kControl) {
    compute += config_.control_compute;
  }
  StageEvent ev;
  ev.compute = compute;
  ev.done = [this, env = std::move(env), from] {
    switch (env->kind) {
      case MessageKind::kCall:
        RouteCall(env);
        break;
      case MessageKind::kResponse:
        HandleResponse(env);
        break;
      case MessageKind::kControl:
        HandleControl(*env, from);
        break;
    }
  };
  stages_[kReceive]->Enqueue(std::move(ev));
}

void Server::HandleControl(const Envelope& env, NodeId from) {
  const ServerId from_server = cluster_->ServerOfNode(from);
  if (const auto* req = std::get_if<DirLookupRequest>(&env.control)) {
    ACTOP_CHECK(DirectoryHomeOf(req->actor, cluster_->num_servers()) == id_);
    const DirEntry entry = directory_shard_.LookupOrRegister(req->actor, req->suggested_owner);
    SendControl(from_server,
                DirLookupResponse{.actor = req->actor, .owner = entry.owner,
                                  .token = entry.token, .request_id = req->request_id});
    return;
  }
  if (const auto* resp = std::get_if<DirLookupResponse>(&env.control)) {
    OnDirectoryAnswer(resp->actor, resp->owner, resp->token);
    return;
  }
  if (const auto* unreg = std::get_if<DirUnregister>(&env.control)) {
    directory_shard_.Unregister(unreg->actor, unreg->owner, unreg->token);
    return;
  }
  if (const auto* update = std::get_if<CacheUpdate>(&env.control)) {
    location_cache_.Put(update->actor, update->owner);
    return;
  }
  if (const auto* req = std::get_if<PartitionExchangeRequest>(&env.control)) {
    if (partition_request_handler_) {
      partition_request_handler_(from_server, *req);
    }
    return;
  }
  if (const auto* resp = std::get_if<PartitionExchangeResponse>(&env.control)) {
    if (partition_response_handler_) {
      partition_response_handler_(from_server, *resp);
    }
    return;
  }
}

// ---------------------------------------------------------------------------
// Call routing & activation
// ---------------------------------------------------------------------------

void Server::RouteCall(std::shared_ptr<Envelope> env) {
  const ActorId target = env->target;
  if (activations_.Contains(target)) {
    DeliverLocalCall(std::move(env));
    return;
  }
  const ServerId hint = location_cache_.Get(target);
  if (hint != kNoServer && hint != id_ && env->hops < config_.max_hops) {
    ForwardCall(std::move(env), hint);
    return;
  }
  if (hint != kNoServer && env->hops >= config_.max_hops) {
    // Too many stale-cache forwards: fall back to the authoritative path.
    location_cache_.Invalidate(target);
  }
  ResolveViaDirectory(std::move(env));
}

void Server::ResolveViaDirectory(std::shared_ptr<Envelope> env) {
  const ActorId target = env->target;
  auto [park_it, inserted] = parked_calls_.try_emplace(target);
  ParkedCalls& parked = park_it->second;
  if (inserted && !parked_entry_pool_.empty()) {
    // Reuse a retired entry buffer (returned by the drain in
    // OnDirectoryAnswer) instead of growing a fresh vector per lookup.
    parked.entries = std::move(parked_entry_pool_.back());
    parked_entry_pool_.pop_back();
  }
  parked.entries.push_back(std::move(env));
  if (parked.entries.size() > 1) {
    return;  // lookup already in flight
  }
  parked.since = sim_->now();
  const ServerId home = DirectoryHomeOf(target, cluster_->num_servers());
  const ServerId suggestion = SuggestPlacement(target);
  if (home == id_) {
    const DirEntry entry = directory_shard_.LookupOrRegister(target, suggestion);
    // Defer via the event queue: the parked list must not be consumed
    // synchronously inside the caller's frame.
    sim_->ScheduleAfter(0, [this, target, entry] {
      OnDirectoryAnswer(target, entry.owner, entry.token);
    });
    return;
  }
  SendControl(home, DirLookupRequest{.actor = target, .suggested_owner = suggestion,
                                     .request_id = next_exchange_token_++});
}

ServerId Server::SuggestPlacement(ActorId actor) {
  // Opportunistic re-placement (§4.3): a cache hint — typically primed by a
  // migration — wins; a previously-activated actor re-activates on the
  // calling server; a brand-new actor follows the configured policy.
  const ServerId hinted = location_cache_.Peek(actor);
  if (hinted != kNoServer) {
    return hinted;
  }
  if (cluster_->HasActorStateForPlacement(actor, shard_)) {
    return id_;
  }
  switch (config_.placement) {
    case PlacementPolicy::kRandom:
      return static_cast<ServerId>(
          rng_.NextBounded(static_cast<uint64_t>(cluster_->num_servers())));
    case PlacementPolicy::kLocal:
      return id_;
    case PlacementPolicy::kConsistentHash:
      return static_cast<ServerId>(SplitMix64(actor ^ 0x5bd1e995) %
                                   static_cast<uint64_t>(cluster_->num_servers()));
  }
  return id_;
}

void Server::OnDirectoryAnswer(ActorId actor, ServerId owner, uint64_t token) {
  if (owner == id_) {
    auto fence = pending_unregisters_.find(actor);
    if (fence != pending_unregisters_.end()) {
      if (fence->second.token == token && sim_->now() < fence->second.expires) {
        // The answer names a registration we already unregistered; the
        // DirUnregister may still be in flight, so adopting it would hand
        // the activation a doomed directory entry. Leave the calls parked
        // and re-resolve once the unregister has landed (or the fence
        // expires, if the unregister was lost).
        auto parked = parked_calls_.find(actor);
        if (parked != parked_calls_.end() && !parked->second.entries.empty()) {
          const ServerId home = DirectoryHomeOf(actor, cluster_->num_servers());
          sim_->ScheduleAfter(Millis(10), [this, actor, home] {
            if (!parked_calls_.contains(actor)) {
              return;
            }
            SendControl(home, DirLookupRequest{.actor = actor,
                                               .suggested_owner = SuggestPlacement(actor),
                                               .request_id = next_exchange_token_++});
          });
        }
        return;
      }
      // Either a different token supersedes the fenced registration (it is
      // gone for good) or the fence expired (the unregister is no longer in
      // flight anywhere): adopting is safe.
      pending_unregisters_.erase(fence);
    }
  }
  location_cache_.Put(actor, owner);
  auto it = parked_calls_.find(actor);
  if (it == parked_calls_.end()) {
    return;
  }
  // Move-then-erase-before-dispatch: the dispatch below can re-enter server
  // code that inserts into parked_calls_ (e.g. a delivered turn issuing a
  // sub-call to an unresolved actor, which parks it right back — possibly
  // under this same key). Draining a moved-out local and erasing the map
  // entry first keeps that re-entry safe; iterating the live map here would
  // be invalidated by it.
  std::vector<std::shared_ptr<Envelope>> envs = std::move(it->second.entries);
  parked_calls_.erase(it);
  for (auto& env : envs) {
    if (owner == id_) {
      ActivateAndDeliver(std::move(env), token);
    } else {
      ForwardCall(std::move(env), owner);
    }
  }
  envs.clear();
  parked_entry_pool_.push_back(std::move(envs));
}

void Server::ActivateAndDeliver(std::shared_ptr<Envelope> env, uint64_t token) {
  const ActorId target = env->target;
  if (!activations_.Contains(target)) {
    Activation& act = activations_.Create(target);
    act.instance = cluster_->GetOrCreateActor(target, shard_);
    act.dir_token = token;
    activations_started_++;
  }
  DeliverLocalCall(std::move(env));
}

void Server::ForwardCall(std::shared_ptr<Envelope> env, ServerId dest) {
  ACTOP_CHECK(dest != id_);
  env->hops++;
  SendToServer(dest, std::move(env));
}

void Server::DeliverLocalCall(std::shared_ptr<Envelope> env) {
  Activation* found = activations_.Find(env->target);
  ACTOP_CHECK(found != nullptr);
  Activation& act = *found;
  if (act.busy) {
    act.mailbox.push_back(std::move(env));
    return;
  }
  const ActorId target = env->target;  // read before the move below
  StartTurn(target, std::move(env));
}

void Server::StartTurn(ActorId actor, std::shared_ptr<Envelope> env) {
  Activation* found = activations_.Find(actor);
  ACTOP_CHECK(found != nullptr);
  Activation& act = *found;
  ACTOP_CHECK(!act.busy);
  act.busy = true;
  act.open_contexts++;

  const CostModel& costs = cluster_->CostsFor(actor);
  SimDuration compute = SampleCost(costs.ComputeFor(env->method));
  if (!env->via_network) {
    // Deep copy of LPC arguments (isolation between co-located actors).
    compute += SampleCost(config_.lpc_compute +
                          static_cast<SimDuration>(config_.lpc_ns_per_byte *
                                                   static_cast<double>(env->payload_bytes)));
  }
  if (act.activation_pending) {
    compute += config_.activation_compute;
    act.activation_pending = false;
  }

  StageEvent ev;
  ev.compute = compute;
  ev.blocking = costs.handler_blocking;
  const uint64_t epoch = crash_epoch_;
  // [this, env, epoch] is 32 bytes — the actor id is re-read from the
  // envelope so the capture stays inline in the event engine.
  ev.done = [this, env = std::move(env), epoch]() mutable {
    const ActorId actor = env->target;
    Activation* act = activations_.Find(actor);
    if (epoch != crash_epoch_ || act == nullptr) {
      return;  // server crashed while the turn was queued
    }
    // Hoist the instance pointer: OnCall may activate other actors, which
    // can grow the activation slab and invalidate `act`.
    Actor* instance = act->instance;
    auto ctx = MakePooled<ServerCallContext>(CallContextBlockCache(), this, std::move(env));
    instance->OnCall(*ctx);
    if (!ctx->replied()) {
      // The actor will Reply from a sub-call continuation; keep the context
      // alive until then.
      RetainContext(ctx.get(), ctx);
    }
    const SimDuration extra = ctx->take_extra_compute();
    if (extra > 0) {
      StageEvent extra_ev;
      extra_ev.compute = extra;
      extra_ev.done = [this, actor, epoch] {
        if (epoch == crash_epoch_) {
          FinishTurn(actor);
        }
      };
      stages_[kWorker]->Enqueue(std::move(extra_ev));
    } else {
      FinishTurn(actor);
    }
  };
  stages_[kWorker]->Enqueue(std::move(ev));
}

void Server::FinishTurn(ActorId actor) {
  Activation* found = activations_.Find(actor);
  if (found == nullptr) {
    return;
  }
  Activation& act = *found;
  ACTOP_CHECK(act.busy);
  act.busy = false;
  if (!act.mailbox.empty()) {
    std::shared_ptr<Envelope> next = std::move(act.mailbox.front());
    act.mailbox.pop_front();
    StartTurn(actor, std::move(next));
  }
}

// ---------------------------------------------------------------------------
// Sub-calls and replies
// ---------------------------------------------------------------------------

void Server::IssueCall(ActorId from_actor, ActorId target, MethodId method, uint64_t app_data,
                       uint32_t bytes, ResponseFn on_response) {
  auto env = MakeEnvelope();
  env->kind = MessageKind::kCall;
  env->target = target;
  env->source_actor = from_actor;
  env->method = method;
  env->payload_bytes = bytes;
  env->app_data = app_data;
  env->reply_to = node_;
  env->created_at = sim_->now();
  env->via_network = false;

  const bool local = activations_.Contains(target);
  ServerId dest_guess = local ? id_ : location_cache_.Peek(target);
  NoteAppSend(from_actor, target, dest_guess, !local);

  if (on_response != nullptr) {
    const uint64_t seq = next_call_seq_++;
    env->call_id = CallId{node_, seq};
    PendingCall pending;
    pending.issuer = from_actor;
    pending.on_response = std::move(on_response);
    pending.issued_at = sim_->now();
    pending.remote = !local;
    pending_calls_.Insert(seq, std::move(pending));
    timeout_queue_.push_back({sim_->now() + config_.call_timeout, seq});
    if (Activation* act = activations_.Find(from_actor)) {
      act->pending_subcalls++;
    }
  } else {
    env->call_id = CallId{node_, 0};  // one-way: no response expected
  }
  RouteCall(std::move(env));
}

void Server::CompleteReply(ActorId from_actor, const Envelope& original_call, uint32_t bytes) {
  if (Activation* act = activations_.Find(from_actor)) {
    ACTOP_CHECK(act->open_contexts > 0);
    act->open_contexts--;
  }
  if (original_call.call_id.seq == 0) {
    return;  // one-way call: the reply is dropped
  }
  auto env = MakeEnvelope();
  env->kind = MessageKind::kResponse;
  env->call_id = original_call.call_id;
  env->target = original_call.source_actor;
  env->source_actor = from_actor;
  env->payload_bytes = bytes;
  env->created_at = original_call.created_at;
  env->reply_to = original_call.reply_to;

  const NodeId dest_node = original_call.reply_to;
  if (original_call.source_actor != kNoActor) {
    const ServerId dest_server = cluster_->ServerOfNode(dest_node);
    NoteAppSend(from_actor, original_call.source_actor, dest_server, dest_server != id_);
  }
  if (dest_node == node_) {
    // Local response: no serialization; handle directly.
    env->via_network = false;
    HandleResponse(std::move(env));
    return;
  }
  const ServerId dest_server = cluster_->ServerOfNode(dest_node);
  if (dest_server == kNoServer) {
    SendToClient(dest_node, std::move(env));
  } else {
    SendToServer(dest_server, std::move(env));
  }
}

void Server::HandleResponse(std::shared_ptr<Envelope> env) {
  ACTOP_CHECK(env->call_id.node == node_);
  PendingCall* found = pending_calls_.Find(env->call_id.seq);
  if (found == nullptr) {
    return;  // timed out or dropped during a crash
  }
  PendingCall pending = std::move(*found);
  pending_calls_.Erase(env->call_id.seq);

  if (Activation* act = activations_.Find(pending.issuer)) {
    ACTOP_CHECK(act->pending_subcalls > 0);
    act->pending_subcalls--;
  }
  const SimDuration latency = sim_->now() - pending.issued_at;
  if (call_latency_observer_) {
    call_latency_observer_(latency, pending.remote);
  }

  // Response continuations run as their own worker-stage turns (they may
  // interleave with the issuer's queued calls, matching Orleans' handling of
  // an activation's own continuations). The continuation parks in the
  // response slab so the event captures only [this, slot] (inline); a
  // rejected event (queue shed under overload) reclaims the slot without
  // running the continuation, matching the old drop semantics.
  StageEvent ev;
  ev.compute = config_.response_handling_compute;
  Response response;
  response.from = env->source_actor;
  response.payload_bytes = env->payload_bytes;
  response.failed = false;
  const uint32_t slot = AcquireResponseSlot(std::move(pending.on_response), response);
  ev.done = [this, slot] { RunResponseSlot(slot); };
  ev.rejected = [this, slot] { FreeResponseSlot(slot); };
  stages_[kWorker]->Enqueue(std::move(ev));
}

uint32_t Server::AcquireResponseSlot(ResponseFn fn, const Response& response) {
  uint32_t slot;
  if (response_free_ != kNilSlot) {
    slot = response_free_;
    response_free_ = response_slots_[slot].free_next;
  } else {
    slot = static_cast<uint32_t>(response_slots_.size());
    response_slots_.emplace_back();
  }
  PendingResponse& parked = response_slots_[slot];
  parked.fn = std::move(fn);
  parked.response = response;
  return slot;
}

void Server::RunResponseSlot(uint32_t slot) {
  // Move out and free the slot before invoking: the continuation may issue
  // calls whose responses acquire new slots (growing the slab vector).
  ResponseFn fn = std::move(response_slots_[slot].fn);
  const Response response = response_slots_[slot].response;
  FreeResponseSlot(slot);
  fn(response);
}

void Server::FreeResponseSlot(uint32_t slot) {
  PendingResponse& parked = response_slots_[slot];
  parked.fn = nullptr;
  parked.free_next = response_free_;
  response_free_ = slot;
}

// ---------------------------------------------------------------------------
// Sending
// ---------------------------------------------------------------------------

void Server::SendToServer(ServerId dest, std::shared_ptr<Envelope> env) {
  ACTOP_CHECK(dest != id_);
  const uint32_t bytes = env->kind == MessageKind::kControl ? config_.control_bytes
                                                            : env->payload_bytes;
  StageEvent ev;
  ev.compute = SerializeCost(bytes);
  ev.done = [this, dest, bytes, env = std::move(env)] {
    cluster_->network().Send(node_, cluster_->NodeOfServer(dest), bytes, env);
  };
  stages_[kServerSender]->Enqueue(std::move(ev));
}

void Server::SendToClient(NodeId client_node, std::shared_ptr<Envelope> env) {
  const uint32_t bytes = env->payload_bytes;
  StageEvent ev;
  ev.compute = SerializeCost(bytes);
  ev.done = [this, client_node, bytes, env = std::move(env)] {
    cluster_->network().Send(node_, client_node, bytes, env);
  };
  stages_[kClientSender]->Enqueue(std::move(ev));
}

void Server::SendControl(ServerId dest, ControlPayload payload) {
  if (dest == id_) {
    // Local control operations skip the wire but still defer via the event
    // queue for re-entrancy safety.
    auto env = MakeEnvelope();
    env->kind = MessageKind::kControl;
    env->control = std::move(payload);
    sim_->ScheduleAfter(0, [this, env] { HandleControl(*env, node_); });
    return;
  }
  auto env = MakeEnvelope();
  env->kind = MessageKind::kControl;
  env->payload_bytes = config_.control_bytes;
  env->control = std::move(payload);
  SendToServer(dest, std::move(env));
}

void Server::NoteAppSend(ActorId from, ActorId to, ServerId dest_server, bool remote) {
  if (from == kNoActor || to == kNoActor) {
    return;
  }
  if (remote) {
    remote_app_messages_++;
  } else {
    local_app_messages_++;
  }
  metrics_->CountAppMessage(remote);
  if (edge_observer_) {
    edge_observer_(from, to, dest_server);
  }
}

// ---------------------------------------------------------------------------
// Migration & failures
// ---------------------------------------------------------------------------

std::vector<ActorId> Server::ActiveActors() const {
  std::vector<ActorId> out;
  out.reserve(activations_.size());
  activations_.ForEach([&out](ActorId actor, const Activation&) { out.push_back(actor); });
  return out;
}

bool Server::IsMigratable(ActorId actor) const {
  const Activation* act = activations_.Find(actor);
  if (act == nullptr) {
    return false;
  }
  return !act->busy && act->mailbox.empty() && act->open_contexts == 0 &&
         act->pending_subcalls == 0;
}

void Server::DropActivationAndUnregister(ActorId actor) {
  Activation* act = activations_.Find(actor);
  ACTOP_CHECK(act != nullptr);
  const uint64_t token = act->dir_token;
  activations_.Erase(actor);
  const ServerId home = DirectoryHomeOf(actor, cluster_->num_servers());
  if (home == id_) {
    directory_shard_.Unregister(actor, id_, token);
    return;
  }
  SendControl(home, DirUnregister{.actor = actor, .owner = id_, .token = token});
  // Until that message lands, the shard still advertises the dead
  // registration; fence it so a racing lookup answer cannot re-adopt it.
  pending_unregisters_[actor] = UnregisterFence{token, sim_->now() + config_.call_timeout};
}

bool Server::MigrateActor(ActorId actor, ServerId dest) {
  if (dest == id_ || !IsMigratable(actor)) {
    return false;
  }
  migrations_out_++;
  metrics_->CountMigration();
  // Opportunistic migration (§4.3): drop the directory entry and prime the
  // location caches of this server and the destination. The next call to the
  // actor re-activates it at `dest`.
  DropActivationAndUnregister(actor);
  location_cache_.Put(actor, dest);
  SendControl(dest, CacheUpdate{.actor = actor, .owner = dest});
  return true;
}

bool Server::DeactivateActor(ActorId actor) {
  if (!IsMigratable(actor)) {
    return false;
  }
  DropActivationAndUnregister(actor);
  location_cache_.Invalidate(actor);
  return true;
}

void Server::ForceActivateForTest(ActorId actor) {
  if (activations_.Contains(actor)) {
    return;
  }
  Activation& act = activations_.Create(actor);
  act.instance = cluster_->GetOrCreateActor(actor, shard_);
  activations_started_++;
}

void Server::Crash() {
  crash_epoch_++;
  activations_.Clear();
  parked_calls_.clear();
  pending_calls_.Clear();
  timeout_queue_.clear();
  open_call_contexts_.Clear();
  pending_unregisters_.clear();
  location_cache_.Clear();
}

void Server::RetainContext(void* key, std::shared_ptr<void> context) {
  open_call_contexts_.Insert(reinterpret_cast<uintptr_t>(key), std::move(context));
}

std::shared_ptr<void> Server::ReleaseContext(void* key) {
  const auto k = reinterpret_cast<uintptr_t>(key);
  std::shared_ptr<void>* found = open_call_contexts_.Find(k);
  if (found == nullptr) {
    return nullptr;
  }
  std::shared_ptr<void> out = std::move(*found);
  open_call_contexts_.Erase(k);
  return out;
}

// ---------------------------------------------------------------------------
// Timeouts
// ---------------------------------------------------------------------------

void Server::SweepTimeouts() {
  const SimTime now = sim_->now();
  while (!timeout_queue_.empty() && timeout_queue_.front().first <= now) {
    const uint64_t seq = timeout_queue_.front().second;
    timeout_queue_.pop_front();
    FailPendingCall(seq);
  }
  // Retry directory lookups whose answer was lost (e.g. dropped by a
  // saturated receive queue or a crashed home shard). Collect-then-act: the
  // retry actions below reach back into routing code (SendControl, the
  // deferred directory answer) which may insert into parked_calls_, so the
  // live map must not be under iteration while they run. The scratch vector
  // preserves the map's iteration order and is reused across sweeps.
  sweep_retry_scratch_.clear();
  for (auto& [actor, parked] : parked_calls_) {
    if (now - parked.since < config_.call_timeout / 3) {
      continue;
    }
    parked.since = now;
    sweep_retry_scratch_.push_back(actor);
  }
  for (const ActorId actor : sweep_retry_scratch_) {
    const ServerId home = DirectoryHomeOf(actor, cluster_->num_servers());
    const ServerId suggestion = SuggestPlacement(actor);
    if (home == id_) {
      const DirEntry entry = directory_shard_.LookupOrRegister(actor, suggestion);
      sim_->ScheduleAfter(0, [this, actor, entry] {
        OnDirectoryAnswer(actor, entry.owner, entry.token);
      });
    } else {
      SendControl(home, DirLookupRequest{.actor = actor, .suggested_owner = suggestion,
                                         .request_id = next_exchange_token_++});
    }
  }
}

void Server::FailPendingCall(uint64_t seq) {
  PendingCall* found = pending_calls_.Find(seq);
  if (found == nullptr) {
    return;
  }
  PendingCall pending = std::move(*found);
  pending_calls_.Erase(seq);
  Activation* act = activations_.Find(pending.issuer);
  if (act != nullptr && act->pending_subcalls > 0) {
    act->pending_subcalls--;
  }
  Response response;
  response.failed = true;
  const uint32_t slot = AcquireResponseSlot(std::move(pending.on_response), response);
  sim_->ScheduleAfter(0, [this, slot] { RunResponseSlot(slot); });
}

}  // namespace actop
