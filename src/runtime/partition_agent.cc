#include "src/runtime/partition_agent.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/core/csr_graph.h"
#include "src/core/repartition_arena.h"
#include "src/runtime/cluster.h"
#include "src/runtime/server.h"

namespace actop {

PartitionAgent::PartitionAgent(Simulation* sim, Cluster* cluster, Server* server,
                               PartitionAgentConfig config)
    : sim_(sim),
      cluster_(cluster),
      server_(server),
      config_(config),
      edges_(config.edge_sample_capacity) {
  ACTOP_CHECK(sim != nullptr);
  ACTOP_CHECK(cluster != nullptr);
  ACTOP_CHECK(server != nullptr);
}

void PartitionAgent::Start() {
  ACTOP_CHECK(round_timer_ == 0);
  // Randomly phase-shift the first round so the servers do not initiate
  // exchanges in lock step.
  const SimDuration phase = static_cast<SimDuration>(
      cluster_->rng().NextBounded(static_cast<uint64_t>(config_.exchange_period)));
  sim_->ScheduleAfter(phase, [this] {
    if (round_timer_ != 0) {
      return;
    }
    round_timer_ = sim_->SchedulePeriodic(config_.exchange_period, [this] { RunRound(); });
  });
  decay_timer_ = sim_->SchedulePeriodic(config_.edge_decay_period, [this] {
    // Idle servers (nothing sampled) skip the decay pass entirely. The only
    // state this leaves un-halved is the sketch's total-observed counter,
    // which nothing downstream reads when the sketch is empty.
    if (edges_.size() != 0) {
      edges_.Decay();
    }
  });
}

void PartitionAgent::Stop() {
  if (round_timer_ != 0) {
    sim_->CancelPeriodic(round_timer_);
    round_timer_ = 0;
  }
  if (decay_timer_ != 0) {
    sim_->CancelPeriodic(decay_timer_);
    decay_timer_ = 0;
  }
}

void PartitionAgent::ObserveEdge(ActorId local, ActorId peer, ServerId dest) {
  edges_.Observe(EdgeKey{local, peer});
  if (dest != kNoServer && dest != server_->id()) {
    last_seen_.Insert(peer, dest);
  } else if (dest == server_->id()) {
    last_seen_.Erase(peer);
  }
}

LocalGraphView PartitionAgent::BuildView() const {
  LocalGraphView view;
  view.self = server_->id();
  view.num_local_vertices = server_->num_activations();
  for (const auto& entry : edges_.Entries()) {
    const ActorId local = entry.key.local;
    const ActorId peer = entry.key.peer;
    if (!server_->IsActive(local)) {
      continue;  // migrated away or deactivated; decay will reclaim it
    }
    view.adjacency[local][peer] += static_cast<double>(entry.count);
    if (server_->IsActive(peer)) {
      view.location[peer] = server_->id();
      continue;
    }
    ServerId loc = server_->location_cache().Peek(peer);
    if (loc == kNoServer) {
      if (const ServerId* seen = last_seen_.Find(peer)) {
        loc = *seen;
      }
    }
    if (loc != kNoServer) {
      view.location[peer] = loc;
    }
  }
  return view;
}

PairwiseConfig PartitionAgent::CurrentPairwiseConfig() const {
  PairwiseConfig cfg = config_.pairwise;
  cfg.target_size = static_cast<double>(cluster_->total_activations()) /
                    static_cast<double>(cluster_->num_servers());
  return cfg;
}

std::vector<VertexId> PartitionAgent::SampledOrder(const LocalGraphView& view) {
  std::vector<VertexId> order;
  order.reserve(view.adjacency.size());
  for (const auto& [v, adj] : view.adjacency) {
    order.push_back(v);
  }
  std::sort(order.begin(), order.end());
  return order;
}

void PartitionAgent::RefreshPlanGraph() {
  // Freeze the samples straight into the CSR, skipping the LocalGraphView
  // hash maps whose per-round construction dominated the control plane's
  // allocation profile. The edge list mirrors BuildView's filtering and the
  // assignment mirrors its location resolution (active -> here, else cache,
  // else last-seen, else unknown), so the frozen graph is the same view the
  // reference planner would have materialized.
  plan_edges_.clear();
  for (const auto& entry : edges_.Entries()) {
    if (!server_->IsActive(entry.key.local)) {
      continue;  // migrated away or deactivated; decay will reclaim it
    }
    plan_edges_.push_back(
        CsrEdge{entry.key.local, entry.key.peer, static_cast<double>(entry.count)});
  }
  // Space-Saving keys are unique (local, peer) pairs, so sorting yields the
  // strictly-increasing sequence RebuildFromEdgeList requires.
  std::sort(plan_edges_.begin(), plan_edges_.end(), [](const CsrEdge& a, const CsrEdge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  plan_graph_.RebuildFromEdgeList(plan_edges_);

  const auto unknown = static_cast<ServerId>(cluster_->num_servers());
  plan_assignment_.resize(static_cast<size_t>(plan_graph_.num_vertices()));
  for (int32_t i = 0; i < plan_graph_.num_vertices(); i++) {
    const VertexId v = plan_graph_.IdOf(i);
    ServerId loc;
    if (server_->IsActive(v)) {
      loc = server_->id();
    } else {
      loc = server_->location_cache().Peek(v);
      if (loc == kNoServer) {
        if (const ServerId* seen = last_seen_.Find(v)) {
          loc = *seen;
        }
      }
      if (loc == kNoServer) {
        loc = unknown;
      }
    }
    plan_assignment_[static_cast<size_t>(i)] = loc;
  }
  if (plan_arena_ == nullptr) {
    plan_arena_ = std::make_unique<RepartitionArena>(
        &plan_graph_, cluster_->num_servers() + 1, CurrentPairwiseConfig(), plan_assignment_);
  } else {
    plan_arena_->ResetPlanning(CurrentPairwiseConfig(), plan_assignment_);
  }
}

void PartitionAgent::RunRound() {
  if (exchange_in_flight_) {
    // An exchange request or its response can be shed by an overloaded
    // receive queue; give up on it after a few periods so the agent cannot
    // wedge permanently.
    if (sim_->now() - exchange_sent_at_ < 3 * config_.exchange_period) {
      return;
    }
    exchange_in_flight_ = false;
  }
  rounds_initiated_++;
  if (edges_.size() == 0) {
    // Nothing sampled: the view would be empty and the plan set with it, so
    // skip the view build and plan rebuild. Observably identical to running
    // them (pending_plans_ ends up empty either way, and the worker-stage
    // charge below was already skipped for empty plan sets).
    pending_plans_.clear();
    next_plan_ = 0;
    return;
  }
  if (config_.use_arena_planner) {
    RefreshPlanGraph();
    plan_arena_->ExportPeerPlans(server_->id(), &pending_plans_,
                                 static_cast<ServerId>(cluster_->num_servers()));
  } else {
    const LocalGraphView view = BuildView();
    pending_plans_ = BuildPeerPlansOrdered(view, CurrentPairwiseConfig(), SampledOrder(view));
  }
  if (static_cast<int>(pending_plans_.size()) > config_.max_peers_per_round) {
    pending_plans_.resize(static_cast<size_t>(config_.max_peers_per_round));
  }
  next_plan_ = 0;
  if (pending_plans_.empty()) {
    return;
  }
  // Charge the candidate-set computation (O(edges) scan, §4.2's complexity
  // analysis) to the worker stage, then contact the best peer.
  StageEvent ev;
  ev.compute = static_cast<SimDuration>(config_.plan_compute_per_edge *
                                        static_cast<SimDuration>(edges_.size()));
  ev.done = [this] { TryNextPeer(); };
  server_->stage(Server::kWorker).Enqueue(std::move(ev));
}

void PartitionAgent::TryNextPeer() {
  if (next_plan_ >= pending_plans_.size()) {
    exchange_in_flight_ = false;
    return;
  }
  PeerPlan& plan = pending_plans_[next_plan_++];
  exchange_in_flight_ = true;
  exchange_sent_at_ = sim_->now();
  PartitionExchangeRequest request;
  request.from_num_vertices = server_->num_activations();
  // Each plan is tried at most once per round, so the candidates move onto
  // the wire instead of being copied (a deep copy per try: one vector per
  // candidate's edge list).
  request.candidates = std::move(plan.candidates);
  request.exchange_id = next_exchange_id_++;
  server_->SendControl(plan.peer, std::move(request));
}

void PartitionAgent::OnExchangeRequest(ServerId from, const PartitionExchangeRequest& request) {
  PartitionExchangeResponse response;
  response.exchange_id = request.exchange_id;
  if (sim_->now() - last_exchange_ < config_.exchange_min_gap) {
    response.rejected = true;
    server_->SendControl(from, std::move(response));
    return;
  }
  if (config_.use_arena_planner) {
    // The arena path reads the wire candidates in place and reuses every
    // planning and output buffer; only the response payload allocates.
    RefreshPlanGraph();
    plan_arena_->DecideOffer(server_->id(), from, request.candidates,
                             static_cast<double>(request.from_num_vertices),
                             static_cast<double>(server_->num_activations()),
                             static_cast<ServerId>(cluster_->num_servers()), &accepted_scratch_,
                             &counter_scratch_);
  } else {
    // Translate into the algorithm's struct through a reused scratch: the
    // copy-assign recycles the candidate buffers from the previous request
    // instead of deep-copying into fresh vectors every time.
    exchange_scratch_.from = from;
    exchange_scratch_.from_num_vertices = request.from_num_vertices;
    exchange_scratch_.from_total_size = -1.0;
    exchange_scratch_.candidates = request.candidates;
    // The ordered decide keeps the responder's counter-candidate set
    // byte-stable across standard-library versions and identical between the
    // reference and arena planning backends.
    const LocalGraphView view = BuildView();
    ExchangeDecision decision = DecideExchangeOrdered(view, exchange_scratch_,
                                                      CurrentPairwiseConfig(), SampledOrder(view));
    accepted_scratch_.assign(decision.accepted.begin(), decision.accepted.end());
    counter_scratch_.clear();
    for (const Candidate& c : decision.counter_offer) {
      counter_scratch_.push_back(c.vertex);
    }
  }

  // Transfer T0 to the requester; vertices busy with in-flight calls are
  // skipped this round (they will surface again if the edge stays heavy).
  int migrated = 0;
  for (VertexId v : counter_scratch_) {
    if (server_->MigrateActor(v, from)) {
      migrated++;
    }
  }
  response.accepted.assign(accepted_scratch_.begin(), accepted_scratch_.end());
  if (!response.accepted.empty() || migrated > 0) {
    last_exchange_ = sim_->now();
  }
  server_->SendControl(from, std::move(response));
}

void PartitionAgent::OnExchangeResponse(ServerId from, const PartitionExchangeResponse& response) {
  exchange_in_flight_ = false;
  if (response.rejected) {
    exchanges_rejected_++;
    TryNextPeer();
    return;
  }
  exchanges_accepted_++;
  if (!response.accepted.empty()) {
    last_exchange_ = sim_->now();
    MigrateAccepted(from, response.accepted);
  }
  pending_plans_.clear();
  next_plan_ = 0;
}

void PartitionAgent::MigrateAccepted(ServerId dest, const std::vector<VertexId>& vertices) {
  for (VertexId v : vertices) {
    server_->MigrateActor(v, dest);
  }
}

}  // namespace actop
