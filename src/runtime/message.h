// Wire messages exchanged between servers and clients.
//
// Mirrors the Orleans message taxonomy the paper relies on: application
// calls/responses (which pay serialization in the SEDA sender/receiver
// stages) and small runtime control messages (directory operations, cache
// maintenance, and the pairwise partitioning protocol of §4.2).

#ifndef SRC_RUNTIME_MESSAGE_H_
#define SRC_RUNTIME_MESSAGE_H_

#include <cstdint>
#include <variant>
#include <vector>

#include "src/common/ids.h"
#include "src/common/sim_time.h"
#include "src/core/pairwise_partition.h"
#include "src/net/network.h"

namespace actop {

// Application-defined method selector.
using MethodId = uint32_t;

// Uniquely identifies an outstanding call cluster-wide: issuing node + local
// sequence number.
struct CallId {
  NodeId node = kNoNode;
  uint64_t seq = 0;

  bool operator==(const CallId&) const = default;
};

struct CallIdHash {
  size_t operator()(const CallId& id) const {
    return static_cast<size_t>((static_cast<uint64_t>(id.node) << 48) ^ id.seq * 0x9E3779B97F4A7C15ULL);
  }
};

// ---- Control payloads (runtime-internal, small messages) ----

// Ask the directory shard for an actor's owner; register `suggested_owner`
// if the actor has no activation.
struct DirLookupRequest {
  ActorId actor = kNoActor;
  ServerId suggested_owner = kNoServer;
  uint64_t request_id = 0;
};

struct DirLookupResponse {
  ActorId actor = kNoActor;
  ServerId owner = kNoServer;
  uint64_t token = 0;  // registration token backing this answer
  uint64_t request_id = 0;
};

// Remove the directory entry (deactivation / migration), but only if it
// still points at `owner` under the same registration `token` — a stale
// unregister must not evict a newer registration.
struct DirUnregister {
  ActorId actor = kNoActor;
  ServerId owner = kNoServer;
  uint64_t token = 0;
};

// Prime the receiver's location cache (opportunistic migration, §4.3).
struct CacheUpdate {
  ActorId actor = kNoActor;
  ServerId owner = kNoServer;
};

// Pairwise partitioning protocol (§4.2, Alg. 1).
struct PartitionExchangeRequest {
  int64_t from_num_vertices = 0;
  std::vector<Candidate> candidates;
  uint64_t exchange_id = 0;
};

struct PartitionExchangeResponse {
  bool rejected = false;
  std::vector<VertexId> accepted;  // vertices the receiver (q) took from p
  uint64_t exchange_id = 0;
};

using ControlPayload =
    std::variant<DirLookupRequest, DirLookupResponse, DirUnregister, CacheUpdate,
                 PartitionExchangeRequest, PartitionExchangeResponse>;

// ---- Envelope ----

enum class MessageKind : uint8_t {
  kCall,      // application call (client->actor or actor->actor)
  kResponse,  // application response
  kControl,   // runtime control
};

struct Envelope {
  MessageKind kind = MessageKind::kCall;

  // kCall / kResponse:
  CallId call_id;
  ActorId target = kNoActor;        // callee (kCall) — routing key
  ActorId source_actor = kNoActor;  // caller actor (kNoActor for clients)
  MethodId method = 0;
  uint32_t payload_bytes = 0;
  uint64_t app_data = 0;  // small application argument (e.g. a game id)
  int hops = 0;  // forwarding count (stale caches); bounded by the runtime

  // The node the response must return to (issuing client or server).
  NodeId reply_to = kNoNode;

  // Timestamp when the originating request entered the system (for
  // end-to-end latency accounting).
  SimTime created_at = 0;

  // kControl:
  ControlPayload control;

  // --- Non-wire bookkeeping (set by the receiving runtime, not "sent") ---
  // Whether this envelope crossed the network (LPC deliveries skip
  // serialization but pay a deep-copy cost at the callee).
  bool via_network = false;

  // Returns every field to its default-constructed value while preserving
  // heap capacity inside the control payload. Called by the envelope pool
  // when an envelope is recycled (see src/runtime/envelope_pool.h): a reused
  // envelope must be indistinguishable from a fresh one to its next user —
  // kind, hops, via_network, created_at and the control variant's *values*
  // are all reset — but the partition-exchange vectors keep their capacity
  // so steady-state exchange traffic stops reallocating them. The variant's
  // active alternative is the one place reuse is visible (an exchange
  // payload stays an exchange alternative, emptied); no reader consults
  // `control` without first matching `kind`/get_if, so the retained
  // alternative is unobservable in practice and the state-leak test pins
  // that.
  void ResetForReuse() {
    kind = MessageKind::kCall;
    call_id = CallId{};
    target = kNoActor;
    source_actor = kNoActor;
    method = 0;
    payload_bytes = 0;
    app_data = 0;
    hops = 0;
    reply_to = kNoNode;
    created_at = 0;
    via_network = false;
    if (auto* req = std::get_if<PartitionExchangeRequest>(&control)) {
      req->from_num_vertices = 0;
      req->candidates.clear();  // keeps capacity
      req->exchange_id = 0;
    } else if (auto* resp = std::get_if<PartitionExchangeResponse>(&control)) {
      resp->rejected = false;
      resp->accepted.clear();  // keeps capacity
      resp->exchange_id = 0;
    } else {
      control = ControlPayload{};  // POD alternatives: reset to the default
    }
  }
};

}  // namespace actop

#endif  // SRC_RUNTIME_MESSAGE_H_
