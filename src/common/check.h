// Lightweight runtime-check macros used throughout the library.
//
// ACTOP_CHECK is always on (including release builds): simulation correctness
// depends on these invariants, and the cost is negligible next to event
// processing. ACTOP_DCHECK compiles out in NDEBUG builds.

#ifndef SRC_COMMON_CHECK_H_
#define SRC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace actop {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "ACTOP_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace actop

#define ACTOP_CHECK(expr)                                \
  do {                                                   \
    if (!(expr)) {                                       \
      ::actop::CheckFailed(#expr, __FILE__, __LINE__);   \
    }                                                    \
  } while (0)

#ifdef NDEBUG
#define ACTOP_DCHECK(expr) \
  do {                     \
  } while (0)
#else
#define ACTOP_DCHECK(expr) ACTOP_CHECK(expr)
#endif

#endif  // SRC_COMMON_CHECK_H_
