// Log-bucketed latency histogram (HdrHistogram-style).
//
// Values are bucketed with a bounded relative error (~1/32 by default), which
// is plenty for reporting medians and tail percentiles of request latency
// while keeping Record() allocation-free and O(1).

#ifndef SRC_COMMON_HISTOGRAM_H_
#define SRC_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "src/common/sim_time.h"

namespace actop {

class Histogram {
 public:
  Histogram();

  // Records one non-negative sample (negative samples clamp to zero).
  void Record(int64_t value);

  // Merges all samples of `other` into this histogram.
  void Merge(const Histogram& other);

  void Reset();

  // Number of recorded samples.
  uint64_t count() const { return count_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return count_ == 0 ? 0 : max_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }

  // Value at quantile q in [0, 1]; e.g. ValueAtQuantile(0.99) for p99.
  // Returns the representative (midpoint) value of the bucket holding the
  // q-th sample, so the result carries the bucket's relative error.
  int64_t ValueAtQuantile(double q) const;

  // Fraction of samples <= value (empirical CDF, bucket-resolution).
  double CdfAt(int64_t value) const;

  // Convenience percentile accessors (value units are whatever was recorded;
  // the library records nanoseconds and converts in reporting code).
  int64_t p50() const { return ValueAtQuantile(0.50); }
  int64_t p95() const { return ValueAtQuantile(0.95); }
  int64_t p99() const { return ValueAtQuantile(0.99); }
  // SLO-grade tail percentile for the open-loop scenario reports.
  int64_t p999() const { return ValueAtQuantile(0.999); }

 private:
  // Bucketing: values < kLinearLimit are exact (one bucket per value is too
  // many; we use one bucket per kLinearStep). Above that, buckets are
  // logarithmic with kSubBuckets sub-buckets per power of two.
  static constexpr int64_t kLinearLimit = 1024;
  static constexpr int kSubBucketBits = 5;  // 32 sub-buckets => <= ~3% error
  static constexpr int kSubBuckets = 1 << kSubBucketBits;

  static int BucketFor(int64_t value);
  static int64_t BucketMidpoint(int bucket);
  static int NumBuckets();

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

}  // namespace actop

#endif  // SRC_COMMON_HISTOGRAM_H_
