#include "src/common/flags.h"

#include <cstdio>
#include <cstdlib>

#include "src/common/check.h"

namespace actop {

void Flags::DefineInt(const std::string& name, int64_t default_value, const std::string& help) {
  Flag f;
  f.type = Type::kInt;
  f.help = help;
  f.int_value = default_value;
  ACTOP_CHECK(flags_.emplace(name, std::move(f)).second);
}

void Flags::DefineDouble(const std::string& name, double default_value, const std::string& help) {
  Flag f;
  f.type = Type::kDouble;
  f.help = help;
  f.double_value = default_value;
  ACTOP_CHECK(flags_.emplace(name, std::move(f)).second);
}

void Flags::DefineBool(const std::string& name, bool default_value, const std::string& help) {
  Flag f;
  f.type = Type::kBool;
  f.help = help;
  f.bool_value = default_value;
  ACTOP_CHECK(flags_.emplace(name, std::move(f)).second);
}

void Flags::DefineString(const std::string& name, const std::string& default_value,
                         const std::string& help) {
  Flag f;
  f.type = Type::kString;
  f.help = help;
  f.string_value = default_value;
  ACTOP_CHECK(flags_.emplace(name, std::move(f)).second);
}

void Flags::PrintUsageAndExit(const char* argv0, int code) const {
  std::fprintf(stderr, "usage: %s [flags]\n", argv0);
  for (const auto& [name, flag] : flags_) {
    std::string def;
    switch (flag.type) {
      case Type::kInt:
        def = std::to_string(flag.int_value);
        break;
      case Type::kDouble:
        def = std::to_string(flag.double_value);
        break;
      case Type::kBool:
        def = flag.bool_value ? "true" : "false";
        break;
      case Type::kString:
        def = flag.string_value;
        break;
    }
    std::fprintf(stderr, "  --%s (default %s): %s\n", name.c_str(), def.c_str(),
                 flag.help.c_str());
  }
  std::exit(code);
}

void Flags::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; i++) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsageAndExit(argv[0], 0);
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n", arg.c_str());
      PrintUsageAndExit(argv[0], 2);
    }
    std::string body = arg.substr(2);
    std::string name;
    std::string value;
    bool have_value = false;
    if (auto eq = body.find('='); eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
      have_value = true;
    } else {
      name = body;
    }

    bool negated = false;
    auto it = flags_.find(name);
    if (it == flags_.end() && name.rfind("no-", 0) == 0) {
      it = flags_.find(name.substr(3));
      negated = it != flags_.end() && it->second.type == Type::kBool;
      if (!negated) {
        it = flags_.end();
      }
    }
    if (it == flags_.end()) {
      std::fprintf(stderr, "unknown flag: --%s\n", name.c_str());
      PrintUsageAndExit(argv[0], 2);
    }
    Flag& flag = it->second;

    if (flag.type == Type::kBool) {
      if (have_value) {
        flag.bool_value = (value == "true" || value == "1");
      } else {
        flag.bool_value = !negated;
      }
      continue;
    }

    if (!have_value) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag --%s requires a value\n", name.c_str());
        PrintUsageAndExit(argv[0], 2);
      }
      value = argv[++i];
    }
    char* end = nullptr;
    switch (flag.type) {
      case Type::kInt:
        flag.int_value = std::strtoll(value.c_str(), &end, 10);
        break;
      case Type::kDouble:
        flag.double_value = std::strtod(value.c_str(), &end);
        break;
      case Type::kString:
        flag.string_value = value;
        end = nullptr;
        break;
      case Type::kBool:
        break;
    }
    if (end != nullptr && (*end != '\0' || end == value.c_str())) {
      std::fprintf(stderr, "bad value for --%s: %s\n", name.c_str(), value.c_str());
      PrintUsageAndExit(argv[0], 2);
    }
  }
}

const Flags::Flag& Flags::Lookup(const std::string& name, Type type) const {
  auto it = flags_.find(name);
  ACTOP_CHECK(it != flags_.end());
  ACTOP_CHECK(it->second.type == type);
  return it->second;
}

int64_t Flags::GetInt(const std::string& name) const { return Lookup(name, Type::kInt).int_value; }

double Flags::GetDouble(const std::string& name) const {
  return Lookup(name, Type::kDouble).double_value;
}

bool Flags::GetBool(const std::string& name) const { return Lookup(name, Type::kBool).bool_value; }

const std::string& Flags::GetString(const std::string& name) const {
  return Lookup(name, Type::kString).string_value;
}

}  // namespace actop
