// Small-buffer-optimized move-only callable with an arbitrary signature —
// the generalization of InlineTask (src/common/inline_task.h) to callables
// that take arguments.
//
// The motivating user is the response-continuation path: every actor
// sub-call carries a `void(const Response&)` continuation which the seed
// stored as std::function. libstdc++ keeps captures inline only when they
// are trivially copyable and at most 16 bytes, so the dominant capture
// shapes — [CallContext*, shared_ptr<int> fan-out counter] (24 bytes) and
// [call, counter, this] (32 bytes) — each cost a heap allocation per issued
// call. InlineFunction stores any nothrow-movable callable of up to
// InlineBytes inline regardless of trivial copyability; larger or
// throwing-move callables (including wrapped std::functions from cold
// paths) transparently fall back to the heap.
//
// Differences from std::function, all deliberate (and identical to
// InlineTask): move-only, no target introspection, invoking an empty
// function is a checked failure rather than std::bad_function_call.

#ifndef SRC_COMMON_INLINE_FUNCTION_H_
#define SRC_COMMON_INLINE_FUNCTION_H_

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "src/common/check.h"

namespace actop {

template <typename Signature, std::size_t InlineBytes = 6 * sizeof(void*)>
class InlineFunction;

template <typename R, typename... Args, std::size_t InlineBytes>
class InlineFunction<R(Args...), InlineBytes> {
 public:
  static constexpr std::size_t kInlineBytes = InlineBytes;
  static_assert(InlineBytes >= sizeof(void*) && InlineBytes % sizeof(void*) == 0,
                "inline storage must hold at least the heap fallback pointer");

  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::remove_cvref_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFunction> &&
                                        !std::is_same_v<D, std::nullptr_t> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  InlineFunction(F&& fn) {  // NOLINT(google-explicit-constructor)
    if constexpr (kFitsInline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      if constexpr (std::is_trivially_copyable_v<D> && sizeof(D) < kInlineBytes) {
        // Trivial callables relocate via a fixed-width memcpy of the whole
        // buffer (see MoveFrom); define the tail bytes once so that copy
        // never reads uninitialized storage.
        std::memset(storage_ + sizeof(D), 0, kInlineBytes - sizeof(D));
      }
      ops_ = &kInlineOps<D>;
    } else {
      *reinterpret_cast<D**>(storage_) = new D(std::forward<F>(fn));
      ops_ = &kHeapOps<D>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { MoveFrom(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  InlineFunction& operator=(std::nullptr_t) noexcept {
    Reset();
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { Reset(); }

  R operator()(Args... args) {
    ACTOP_CHECK(ops_ != nullptr);
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

  explicit operator bool() const { return ops_ != nullptr; }
  friend bool operator==(const InlineFunction& f, std::nullptr_t) { return f.ops_ == nullptr; }
  friend bool operator!=(const InlineFunction& f, std::nullptr_t) { return f.ops_ != nullptr; }

  // True when the wrapped callable lives out-of-line (introspection for
  // tests; steady-state continuations should stay inline).
  bool heap_allocated() const { return ops_ != nullptr && ops_->heap; }

 private:
  struct Ops {
    R (*invoke)(void* storage, Args&&... args);
    // Move-construct the callable from `from` into `to`, destroying the
    // original ("relocate"); both point at kInlineBytes of raw storage.
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void* storage) noexcept;
    bool heap;
    // Trivially copyable inline callables relocate via memcpy and need no
    // destructor call (see InlineTask::Ops for the rationale).
    bool trivial;
  };

  template <typename D>
  static constexpr bool kFitsInline = sizeof(D) <= kInlineBytes &&
                                      alignof(D) <= alignof(void*) &&
                                      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* s, Args&&... args) -> R {
        return (*std::launder(reinterpret_cast<D*>(s)))(std::forward<Args>(args)...);
      },
      [](void* from, void* to) noexcept {
        D* src = std::launder(reinterpret_cast<D*>(from));
        ::new (to) D(std::move(*src));
        src->~D();
      },
      [](void* s) noexcept { std::launder(reinterpret_cast<D*>(s))->~D(); },
      false,
      std::is_trivially_copyable_v<D>,
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* s, Args&&... args) -> R {
        return (**reinterpret_cast<D**>(s))(std::forward<Args>(args)...);
      },
      [](void* from, void* to) noexcept {
        *reinterpret_cast<D**>(to) = *reinterpret_cast<D**>(from);
      },
      [](void* s) noexcept { delete *reinterpret_cast<D**>(s); },
      true,
      false,
  };

  void MoveFrom(InlineFunction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      if (ops_->trivial) {
        std::memcpy(storage_, other.storage_, kInlineBytes);
      } else {
        ops_->relocate(other.storage_, storage_);
      }
      other.ops_ = nullptr;
    }
  }

  void Reset() noexcept {
    if (ops_ != nullptr) {
      if (!ops_->trivial) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  // Pointer-aligned: callables needing stricter alignment take the heap path.
  alignas(void*) unsigned char storage_[kInlineBytes];
};

}  // namespace actop

#endif  // SRC_COMMON_INLINE_FUNCTION_H_
