// Growable FIFO ring buffer.
//
// std::deque is the obvious container for the hot FIFO queues in this
// codebase (stage event queues, call-timeout queues, actor mailboxes), but
// every major implementation allocates its elements in fixed-size blocks
// (libstdc++: 512 bytes) threaded through a separately allocated map — a
// steady-state push/pop workload keeps allocating and freeing blocks, and
// traversal chases pointers. This ring keeps elements in one contiguous
// power-of-two array indexed by monotone head/tail counters masked into the
// storage, so steady state is allocation-free and a queue that has reached
// its high-water mark never allocates again; memory is only reclaimed on
// destruction, matching the slab idiom used throughout the repository.
//
// Only the operations the repository needs are provided (strict FIFO plus
// random-access peeking); there is no erase-from-middle and no iterator
// stability concern because there are no iterators.

#ifndef SRC_COMMON_RING_BUFFER_H_
#define SRC_COMMON_RING_BUFFER_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "src/common/check.h"

namespace actop {

template <typename T>
class RingBuffer {
 public:
  RingBuffer() = default;

  bool empty() const { return head_ == tail_; }
  size_t size() const { return tail_ - head_; }

  void push_back(T value) {
    if (size() == storage_.size()) Grow();
    storage_[tail_ & mask_] = std::move(value);
    tail_++;
  }

  T& front() {
    ACTOP_CHECK(!empty());
    return storage_[head_ & mask_];
  }
  const T& front() const {
    ACTOP_CHECK(!empty());
    return storage_[head_ & mask_];
  }

  // i-th element from the front (0 == front()); i must be < size().
  T& at(size_t i) {
    ACTOP_CHECK(i < size());
    return storage_[(head_ + i) & mask_];
  }
  const T& at(size_t i) const {
    ACTOP_CHECK(i < size());
    return storage_[(head_ + i) & mask_];
  }

  void pop_front() {
    ACTOP_CHECK(!empty());
    storage_[head_ & mask_] = T();  // release resources now, not at reuse
    head_++;
  }

  void clear() {
    while (!empty()) pop_front();
  }

 private:
  static constexpr size_t kInitialCapacity = 16;

  void Grow() {
    const size_t old_cap = storage_.size();
    const size_t new_cap = old_cap == 0 ? kInitialCapacity : old_cap * 2;
    std::vector<T> next(new_cap);
    const size_t n = size();
    for (size_t i = 0; i < n; i++) {
      next[i] = std::move(storage_[(head_ + i) & mask_]);
    }
    storage_ = std::move(next);
    mask_ = new_cap - 1;
    head_ = 0;
    tail_ = n;
  }

  std::vector<T> storage_;
  size_t mask_ = 0;
  // Monotone counters; (counter & mask_) is the storage index. Wraparound of
  // the counters themselves is harmless: all arithmetic is modular and sizes
  // are differences.
  size_t head_ = 0;
  size_t tail_ = 0;
};

}  // namespace actop

#endif  // SRC_COMMON_RING_BUFFER_H_
