// Shared identifier types.

#ifndef SRC_COMMON_IDS_H_
#define SRC_COMMON_IDS_H_

#include <cstdint>

namespace actop {

// Index of a server (silo) in the cluster, 0-based. -1 means "none".
using ServerId = int32_t;
inline constexpr ServerId kNoServer = -1;

// Globally unique actor identity. Workloads encode an actor type in the high
// bits (see MakeActorId) so one keyspace serves all applications.
using ActorId = uint64_t;
inline constexpr ActorId kNoActor = 0;

// Vertex in a communication graph == an actor.
using VertexId = ActorId;

// Actor type tag (application-defined small integer).
using ActorType = uint32_t;

constexpr ActorId MakeActorId(ActorType type, uint64_t key) {
  return (static_cast<uint64_t>(type) << 48) | (key & 0xFFFFFFFFFFFFULL);
}

constexpr ActorType ActorTypeOf(ActorId id) { return static_cast<ActorType>(id >> 48); }
constexpr uint64_t ActorKeyOf(ActorId id) { return id & 0xFFFFFFFFFFFFULL; }

// Identifies an external client (load generator frontend).
using ClientId = int32_t;

}  // namespace actop

#endif  // SRC_COMMON_IDS_H_
