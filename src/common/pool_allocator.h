// Size-class recycling allocator for node-based containers on the hot path.
//
// The runtime keeps several std::unordered_maps whose iteration order is
// replay-determinism-load-bearing (activations, parked calls, partition
// views), so they cannot be swapped for the open-addressing FlatHashMap.
// Their steady-state cost is the per-node (and occasional bucket-array)
// heap traffic. PoolAllocator reroutes those allocations through a
// process-wide free-list cache keyed by exact block size: a map node freed
// by one erase is handed back to the next insert of the same size, so
// steady-state node churn touches the allocator zero times. Allocator
// identity is not observable through the container — hashing, bucket
// counts, and therefore iteration order are bit-identical to the default
// allocator, which is what makes this swap replay-safe.
//
// The pool is a function-local thread_local: serial runs see exactly the
// historical single process-wide pool, while sharded runs give each worker
// thread a private pool with zero sharing. The allocator itself is stateless
// and resolves Instance() at call time, so a block allocated on one thread
// (e.g. container setup on the coordinator) and freed on another simply
// lands in the freeing thread's pool. Pools outlive every simulation object
// and free their cached blocks at thread exit (keeping ASan leak checking
// honest).

#ifndef SRC_COMMON_POOL_ALLOCATOR_H_
#define SRC_COMMON_POOL_ALLOCATOR_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <new>
#include <unordered_map>
#include <utility>
#include <vector>

namespace actop {

class SizeClassPool {
 public:
  static SizeClassPool& Instance() {
    thread_local SizeClassPool pool;
    return pool;
  }

  SizeClassPool(const SizeClassPool&) = delete;
  SizeClassPool& operator=(const SizeClassPool&) = delete;

  void* Allocate(std::size_t bytes) {
    if (bytes <= kMaxPooledBytes) {
      auto it = classes_.find(bytes);
      if (it != classes_.end() && !it->second.empty()) {
        void* block = it->second.back();
        it->second.pop_back();
        recycled_++;
        return block;
      }
    }
    fresh_++;
    return ::operator new(bytes);
  }

  void Release(void* block, std::size_t bytes) {
    if (bytes <= kMaxPooledBytes) {
      std::vector<void*>& blocks = classes_[bytes];
      if (blocks.size() < kMaxCachedPerClass) {
        blocks.push_back(block);
        return;
      }
    }
    ::operator delete(block);
  }

  // Introspection for tests.
  uint64_t fresh_allocations() const { return fresh_; }
  uint64_t recycled_allocations() const { return recycled_; }

 private:
  // Bucket arrays of very large maps pass through; pooling them would pin a
  // high-water mark of large blocks for the process lifetime.
  static constexpr std::size_t kMaxPooledBytes = 64 * 1024;
  static constexpr std::size_t kMaxCachedPerClass = 1024;

  SizeClassPool() = default;
  ~SizeClassPool() {
    for (auto& [bytes, blocks] : classes_) {
      for (void* block : blocks) ::operator delete(block);
    }
  }

  // The pool's own bookkeeping is cold (one entry per distinct block size),
  // so a plain map is fine here.
  std::unordered_map<std::size_t, std::vector<void*>> classes_;
  uint64_t fresh_ = 0;
  uint64_t recycled_ = 0;
};

// Stateless, always-equal allocator adapter over the per-thread pool.
// Always-equal means containers propagate/swap it trivially and a node
// allocated by one container instance may legally be freed by another.
template <typename T>
struct PoolAllocator {
  using value_type = T;
  using is_always_equal = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;

  PoolAllocator() = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) {}  // NOLINT(google-explicit-constructor)

  T* allocate(std::size_t n) {
    return static_cast<T*>(SizeClassPool::Instance().Allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) { SizeClassPool::Instance().Release(p, n * sizeof(T)); }

  template <typename U>
  bool operator==(const PoolAllocator<U>&) const {
    return true;
  }
};

// std::unordered_map with pooled nodes and bucket arrays. Same hashing, same
// bucket counts, same iteration order as the plain container — only the
// source of the memory differs.
template <typename K, typename V, typename Hash = std::hash<K>>
using PooledNodeMap =
    std::unordered_map<K, V, Hash, std::equal_to<K>, PoolAllocator<std::pair<const K, V>>>;

}  // namespace actop

#endif  // SRC_COMMON_POOL_ALLOCATOR_H_
