// Plain-text table printer used by the benchmark harnesses to emit the rows
// and series that correspond to the paper's tables and figures.

#ifndef SRC_COMMON_TABLE_H_
#define SRC_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace actop {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Appends a row; must have the same number of cells as the header.
  void AddRow(std::vector<std::string> cells);

  // Renders the table with aligned columns.
  std::string ToString() const;

  // Renders as comma-separated values (one line per row, header first).
  std::string ToCsv() const;

  // Prints ToString() to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with the given number of decimal places.
std::string FormatDouble(double v, int decimals);

// Formats a nanosecond duration as milliseconds with two decimals ("12.34").
std::string FormatMillis(int64_t nanos);

// Formats a fraction as a percentage string ("12.3%").
std::string FormatPercent(double fraction, int decimals = 1);

}  // namespace actop

#endif  // SRC_COMMON_TABLE_H_
