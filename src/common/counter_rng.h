// Counter-based splittable random streams for the sharded simulation core.
//
// A CounterRng draws its i-th output as a pure function of (seed, stream, i):
// the (seed, stream) pair is mixed into a per-stream key once, and each draw
// feeds an incrementing counter through two SplitMix64 rounds keyed by that
// stream key. Two consequences the xoshiro-based Rng cannot offer:
//
//   * Splittability: streams for different ids are decorrelated by the key
//     mix, not by position in one shared sequence — so changing the shard
//     count can never silently correlate or realign per-shard streams the
//     way Fork() chains (whose children depend on fork order) can.
//   * Statelessness modulo the counter: a stream's n-th draw is independent
//     of how many draws other streams made, which keeps parallel-mode
//     fault-injection decisions a function of per-shard message order only.
//
// The draw path is two SplitMix64 rounds (the second keyed by an odd
// stream-derived increment), cheap enough for per-message hot-path use. The
// interface mirrors the subset of Rng the hot paths need; anything doing
// setup-time sampling keeps using Rng.

#ifndef SRC_COMMON_COUNTER_RNG_H_
#define SRC_COMMON_COUNTER_RNG_H_

#include <cmath>
#include <cstdint>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/common/sim_time.h"

namespace actop {

class CounterRng {
 public:
  // Stream `stream` of the family keyed by `seed`. Streams with the same
  // seed and different stream ids are mutually independent; so are streams
  // with different seeds.
  CounterRng(uint64_t seed, uint64_t stream)
      // Mix seed and stream asymmetrically so (a, b) and (b, a) differ, then
      // derive an odd per-stream increment: distinct increments put distinct
      // streams on disjoint Weyl sequences before the output mix.
      : key_(SplitMix64(SplitMix64(seed ^ 0x8f2bbc1d34a6c9e5ULL) ^
                        SplitMix64(stream * 0x9e3779b97f4a7c15ULL + 0x3c6ef372fe94f82bULL))),
        increment_(SplitMix64(key_ ^ 0x5851f42d4c957f2dULL) | 1ULL) {}

  uint64_t NextU64() {
    counter_++;
    return SplitMix64(SplitMix64(counter_ * increment_) ^ key_);
  }

  // Uniform in [0, bound), unbiased (Lemire multiply-shift rejection).
  uint64_t NextBounded(uint64_t bound) {
    ACTOP_CHECK(bound > 0);
    uint64_t x = NextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<uint64_t>(m);
    if (low < bound) {
      const uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = NextU64();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

  // True with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

  // Uniform duration in [lo, hi].
  SimDuration NextUniformDuration(SimDuration lo, SimDuration hi) {
    ACTOP_CHECK(lo <= hi);
    return lo + static_cast<SimDuration>(NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Number of draws made so far (the counter value).
  uint64_t draws() const { return counter_; }

 private:
  uint64_t key_;
  uint64_t increment_;
  uint64_t counter_ = 0;
};

}  // namespace actop

#endif  // SRC_COMMON_COUNTER_RNG_H_
