// Deterministic pseudo-random number generation for the simulator.
//
// We use xoshiro256** seeded through SplitMix64: fast, high quality, and —
// unlike std::mt19937 + std::distributions — guaranteed to produce identical
// streams on every platform and standard-library implementation, which keeps
// benchmark output reproducible across toolchains.

#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

#include "src/common/check.h"
#include "src/common/sim_time.h"

namespace actop {

// SplitMix64 step; used for seeding and for cheap stateless hashing.
constexpr uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// xoshiro256** by Blackman & Vigna (public domain reference implementation).
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t x = seed;
    for (auto& word : state_) {
      x = SplitMix64(x);
      word = x;
    }
  }

  // Uniform 64-bit value.
  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be positive.
  uint64_t NextBounded(uint64_t bound) {
    ACTOP_CHECK(bound > 0);
    // Lemire's multiply-shift rejection method (unbiased).
    uint64_t x = NextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<uint64_t>(m);
    if (low < bound) {
      const uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = NextU64();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi) {
    ACTOP_CHECK(lo <= hi);
    return lo + static_cast<int64_t>(NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  // Exponential with the given mean (> 0). Used for Poisson inter-arrivals.
  double NextExp(double mean) {
    ACTOP_CHECK(mean > 0);
    double u = NextDouble();
    // Guard against log(0).
    if (u <= 0.0) {
      u = 0x1.0p-53;
    }
    return -mean * std::log(u);
  }

  // Exponentially distributed duration with the given mean duration.
  SimDuration NextExpDuration(SimDuration mean) {
    return static_cast<SimDuration>(NextExp(static_cast<double>(mean)) + 0.5);
  }

  // Uniform duration in [lo, hi].
  SimDuration NextUniformDuration(SimDuration lo, SimDuration hi) { return NextInt(lo, hi); }

  // True with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

  // Derive an independent child generator (e.g. one per server) such that the
  // streams do not overlap in practice.
  Rng Fork() { return Rng(NextU64() ^ 0xda3e39cb94b95bdbULL); }

 private:
  static constexpr uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace actop

#endif  // SRC_COMMON_RNG_H_
