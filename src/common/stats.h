// Small online statistics helpers shared by the runtime and the optimizers.

#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <cmath>
#include <cstdint>

namespace actop {

// Welford online mean / variance accumulator.
class OnlineStats {
 public:
  void Add(double x) {
    count_++;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  void Reset() {
    count_ = 0;
    mean_ = 0.0;
    m2_ = 0.0;
  }

  uint64_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const { return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1); }
  double stddev() const { return std::sqrt(variance()); }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

// Exponentially weighted moving average, used to smooth per-window rate
// estimates before feeding them to the thread-allocation optimizer.
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {}

  void Add(double x) {
    if (!initialized_) {
      value_ = x;
      initialized_ = true;
    } else {
      value_ = alpha_ * x + (1.0 - alpha_) * value_;
    }
  }

  bool initialized() const { return initialized_; }
  double value() const { return value_; }
  void Reset() { initialized_ = false; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

}  // namespace actop

#endif  // SRC_COMMON_STATS_H_
