#include "src/common/histogram.h"

#include <algorithm>
#include <bit>

#include "src/common/check.h"

namespace actop {

Histogram::Histogram() : buckets_(NumBuckets(), 0) {}

int Histogram::NumBuckets() {
  // Linear region: one bucket per value up to kLinearLimit, then log region
  // covering up to 2^62 with kSubBuckets buckets per octave.
  constexpr int kLinearBuckets = static_cast<int>(kLinearLimit);
  constexpr int kOctaves = 62 - 10;  // 2^10 == kLinearLimit
  return kLinearBuckets + kOctaves * kSubBuckets;
}

int Histogram::BucketFor(int64_t value) {
  if (value < kLinearLimit) {
    return static_cast<int>(value);
  }
  const auto uv = static_cast<uint64_t>(value);
  const int msb = 63 - std::countl_zero(uv);           // >= 10
  const int octave = msb - 10;                         // 0-based octave above linear region
  const int sub = static_cast<int>((uv >> (msb - kSubBucketBits)) & (kSubBuckets - 1));
  int bucket = static_cast<int>(kLinearLimit) + octave * kSubBuckets + sub;
  const int last = NumBuckets() - 1;
  return std::min(bucket, last);
}

int64_t Histogram::BucketMidpoint(int bucket) {
  if (bucket < kLinearLimit) {
    return bucket;
  }
  const int rel = bucket - static_cast<int>(kLinearLimit);
  const int octave = rel / kSubBuckets;
  const int sub = rel % kSubBuckets;
  const int msb = octave + 10;
  const int64_t base = (int64_t{1} << msb) + (static_cast<int64_t>(sub) << (msb - kSubBucketBits));
  const int64_t width = int64_t{1} << (msb - kSubBucketBits);
  return base + width / 2;
}

void Histogram::Record(int64_t value) {
  value = std::max<int64_t>(value, 0);
  buckets_[static_cast<size_t>(BucketFor(value))]++;
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_++;
  sum_ += static_cast<double>(value);
}

void Histogram::Merge(const Histogram& other) {
  ACTOP_CHECK(buckets_.size() == other.buckets_.size());
  for (size_t i = 0; i < buckets_.size(); i++) {
    buckets_[i] += other.buckets_[i];
  }
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0;
  max_ = 0;
}

int64_t Histogram::ValueAtQuantile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  // NaN-safe clamp: std::clamp passes NaN through, and casting NaN to an
  // integer below is undefined behavior. `!(q >= 0)` catches NaN too.
  if (!(q >= 0.0)) {
    q = 0.0;
  } else if (q > 1.0) {
    q = 1.0;
  }
  const auto target = static_cast<uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); i++) {
    seen += buckets_[i];
    if (seen >= target) {
      // Clamp the representative value into the observed range so that tiny
      // sample counts do not report values outside [min, max].
      return std::clamp(BucketMidpoint(static_cast<int>(i)), min_, max_);
    }
  }
  return max_;
}

double Histogram::CdfAt(int64_t value) const {
  if (count_ == 0) {
    return 0.0;
  }
  const int limit = BucketFor(std::max<int64_t>(value, 0));
  uint64_t seen = 0;
  for (int i = 0; i <= limit; i++) {
    seen += buckets_[static_cast<size_t>(i)];
  }
  return static_cast<double>(seen) / static_cast<double>(count_);
}

}  // namespace actop
