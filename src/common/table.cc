#include "src/common/table.h"

#include <cstdio>

#include "src/common/check.h"
#include "src/common/sim_time.h"

namespace actop {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  ACTOP_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::ToString() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); c++) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); c++) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); c++) {
      line += row[c];
      line.append(widths[c] - row[c].size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') {
      line.pop_back();
    }
    line += '\n';
    return line;
  };
  std::string out = render_row(headers_);
  std::string rule;
  for (size_t c = 0; c < headers_.size(); c++) {
    rule.append(widths[c], '-');
    rule.append(2, ' ');
  }
  while (!rule.empty() && rule.back() == ' ') {
    rule.pop_back();
  }
  out += rule + '\n';
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  return out;
}

std::string Table::ToCsv() const {
  auto join = [](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); c++) {
      if (c > 0) {
        line += ',';
      }
      line += row[c];
    }
    line += '\n';
    return line;
  };
  std::string out = join(headers_);
  for (const auto& row : rows_) {
    out += join(row);
  }
  return out;
}

void Table::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string FormatDouble(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string FormatMillis(int64_t nanos) { return FormatDouble(ToMillis(nanos), 2); }

std::string FormatPercent(double fraction, int decimals) {
  return FormatDouble(fraction * 100.0, decimals) + "%";
}

}  // namespace actop
