// Minimal command-line flag parser for the benchmark and example binaries.
//
// Supports `--name=value` and `--name value` syntax plus boolean
// `--name` / `--no-name`. Unknown flags abort with a usage message so that a
// typo in a sweep script fails loudly instead of silently running defaults.

#ifndef SRC_COMMON_FLAGS_H_
#define SRC_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace actop {

class Flags {
 public:
  // Registers flags before parsing. `help` is shown by --help.
  void DefineInt(const std::string& name, int64_t default_value, const std::string& help);
  void DefineDouble(const std::string& name, double default_value, const std::string& help);
  void DefineBool(const std::string& name, bool default_value, const std::string& help);
  void DefineString(const std::string& name, const std::string& default_value,
                    const std::string& help);

  // Parses argv. On --help prints usage and exits(0). On error prints a
  // message and exits(2).
  void Parse(int argc, char** argv);

  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;
  const std::string& GetString(const std::string& name) const;

 private:
  enum class Type { kInt, kDouble, kBool, kString };

  struct Flag {
    Type type;
    std::string help;
    int64_t int_value = 0;
    double double_value = 0.0;
    bool bool_value = false;
    std::string string_value;
  };

  const Flag& Lookup(const std::string& name, Type type) const;
  void PrintUsageAndExit(const char* argv0, int code) const;

  std::map<std::string, Flag> flags_;
};

}  // namespace actop

#endif  // SRC_COMMON_FLAGS_H_
