// Open-addressing hash map for integer-keyed hot-path lookups.
//
// std::unordered_map pays a heap node per entry and a pointer chase per
// lookup; on the messaging hot path (location-cache probes on every routed
// call) that is measurable. FlatHashMap stores key/value pairs in one flat
// power-of-two array with linear probing, and erases with backward shifting
// instead of tombstones, so probe chains never degrade as entries churn.
//
// Scope is deliberately narrow — exactly what the runtime's caches need:
//   * Key must be trivially copyable (ids everywhere in this codebase);
//     Value is any movable type.
//   * No iterators; use Find/Insert/Erase. (Iteration order of an open
//     table is a function of the hash seed and resize history — nothing in
//     deterministic-replay code should ever observe it.)
//   * Not a drop-in for std::unordered_map where iteration order is
//     load-bearing — pair it with a dense slab and iterate the slab in slot
//     order instead (see src/actor/directory.h for the pattern).

#ifndef SRC_COMMON_FLAT_HASH_MAP_H_
#define SRC_COMMON_FLAT_HASH_MAP_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/check.h"

namespace actop {

// Default hasher: SplitMix64 finalizer — cheap and strong enough to make
// linear probing behave with sequential ids (the common ActorId pattern).
struct FlatHashU64 {
  size_t operator()(uint64_t x) const {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }
};

template <typename Key, typename Value, typename Hash = FlatHashU64>
class FlatHashMap {
 public:
  FlatHashMap() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Ensures capacity for `n` entries without rehashing.
  void Reserve(size_t n) {
    size_t cap = kMinCapacity;
    while (cap * 3 / 4 < n) cap *= 2;
    if (cap > slots_.size()) Rehash(cap);
  }

  Value* Find(const Key& key) {
    if (slots_.empty()) return nullptr;
    const size_t mask = slots_.size() - 1;
    for (size_t i = Hash{}(key)&mask;; i = (i + 1) & mask) {
      Slot& s = slots_[i];
      if (!s.full) return nullptr;
      if (s.key == key) return &s.value;
    }
  }
  const Value* Find(const Key& key) const { return const_cast<FlatHashMap*>(this)->Find(key); }

  // Inserts or overwrites. Returns true if the key was newly inserted.
  bool Insert(const Key& key, Value value) {
    if (slots_.empty() || size_ + 1 > slots_.size() * 3 / 4) {
      Rehash(slots_.empty() ? kMinCapacity : slots_.size() * 2);
    }
    const size_t mask = slots_.size() - 1;
    for (size_t i = Hash{}(key)&mask;; i = (i + 1) & mask) {
      Slot& s = slots_[i];
      if (!s.full) {
        s.key = key;
        s.value = std::move(value);
        s.full = true;
        size_++;
        return true;
      }
      if (s.key == key) {
        s.value = std::move(value);
        return false;
      }
    }
  }

  // Removes `key` if present, backward-shifting the probe chain so lookups
  // never cross tombstones. Returns true if an entry was removed.
  bool Erase(const Key& key) {
    if (slots_.empty()) return false;
    const size_t mask = slots_.size() - 1;
    size_t i = Hash{}(key)&mask;
    for (;; i = (i + 1) & mask) {
      Slot& s = slots_[i];
      if (!s.full) return false;
      if (s.key == key) break;
    }
    // Shift later chain members back into the hole.
    size_t hole = i;
    for (size_t j = (hole + 1) & mask;; j = (j + 1) & mask) {
      Slot& s = slots_[j];
      if (!s.full) break;
      const size_t ideal = Hash{}(s.key)&mask;
      // Move s back only if its ideal position does not lie cyclically in
      // (hole, j] — i.e. probing for s.key would have visited `hole`.
      const bool reachable_from_hole =
          hole <= j ? (ideal <= hole || ideal > j) : (ideal <= hole && ideal > j);
      if (reachable_from_hole) {
        slots_[hole].key = s.key;
        slots_[hole].value = std::move(s.value);
        slots_[hole].full = true;
        s.full = false;
        s.value = Value();
        hole = j;
      }
    }
    slots_[hole].full = false;
    slots_[hole].value = Value();
    size_--;
    return true;
  }

  // Empties the map but keeps the slot array (like unordered_map::clear
  // keeping its buckets): a cleared-and-refilled map of similar cardinality
  // never rehashes, so Clear/refill cycles are allocation-free in steady
  // state — the arena's per-round exchange heaps depend on that.
  void Clear() {
    for (Slot& s : slots_) {
      s.full = false;
      s.value = Value();
    }
    size_ = 0;
  }

 private:
  static constexpr size_t kMinCapacity = 16;

  struct Slot {
    Key key{};
    Value value{};
    bool full = false;
  };

  void Rehash(size_t new_capacity) {
    ACTOP_CHECK((new_capacity & (new_capacity - 1)) == 0);
    std::vector<Slot> old = std::move(slots_);
    // resize (default-insert) rather than assign (copy-fill): Value may be
    // move-only (e.g. a PendingCall holding an InlineFunction continuation).
    slots_.clear();
    slots_.resize(new_capacity);
    const size_t mask = new_capacity - 1;
    for (Slot& s : old) {
      if (!s.full) continue;
      size_t i = Hash{}(s.key)&mask;
      while (slots_[i].full) i = (i + 1) & mask;
      slots_[i].key = s.key;
      slots_[i].value = std::move(s.value);
      slots_[i].full = true;
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
};

}  // namespace actop

#endif  // SRC_COMMON_FLAT_HASH_MAP_H_
