// Simulated-time representation.
//
// All simulated time in the library is an integer count of nanoseconds since
// the start of the simulation. Using a fixed-point integer keeps the event
// queue total-ordering exact and the simulation bit-for-bit reproducible.

#ifndef SRC_COMMON_SIM_TIME_H_
#define SRC_COMMON_SIM_TIME_H_

#include <cstdint>
#include <limits>

namespace actop {

// Nanoseconds since simulation start.
using SimTime = int64_t;
// A span of simulated time, also in nanoseconds.
using SimDuration = int64_t;

inline constexpr SimTime kSimTimeMax = std::numeric_limits<SimTime>::max();

constexpr SimDuration Nanos(int64_t n) { return n; }
constexpr SimDuration Micros(int64_t us) { return us * 1'000; }
constexpr SimDuration Millis(int64_t ms) { return ms * 1'000'000; }
constexpr SimDuration Seconds(int64_t s) { return s * 1'000'000'000; }
constexpr SimDuration Minutes(int64_t m) { return m * 60'000'000'000; }

// Fractional constructors, rounding to the nearest nanosecond. Useful when a
// duration is derived from a rate or a random draw.
constexpr SimDuration MicrosF(double us) { return static_cast<SimDuration>(us * 1e3 + 0.5); }
constexpr SimDuration MillisF(double ms) { return static_cast<SimDuration>(ms * 1e6 + 0.5); }
constexpr SimDuration SecondsF(double s) { return static_cast<SimDuration>(s * 1e9 + 0.5); }

constexpr double ToMicros(SimDuration d) { return static_cast<double>(d) / 1e3; }
constexpr double ToMillis(SimDuration d) { return static_cast<double>(d) / 1e6; }
constexpr double ToSeconds(SimDuration d) { return static_cast<double>(d) / 1e9; }

}  // namespace actop

#endif  // SRC_COMMON_SIM_TIME_H_
