// Small-buffer-optimized move-only callable for the simulation hot path.
//
// Every event the engine dispatches used to be a std::function<void()>;
// libstdc++ stores captures inline only when they are trivially copyable and
// at most 16 bytes, so the bread-and-butter captures of this codebase —
// [this, shared_ptr<Envelope>] (24 bytes, not trivially copyable) and
// [this, shared_ptr, small int] (32 bytes) — each cost a heap allocation per
// scheduled event. InlineTask stores any nothrow-movable callable of up to
// kInlineBytes (four machine words) inline regardless of trivial
// copyability, which covers every steady-state callback in the engine,
// network and server dispatch paths; larger or throwing-move callables
// (including wrapped std::functions from cold paths) transparently fall back
// to the heap.
//
// Differences from std::function, all deliberate:
//   * move-only (shared_ptr captures are moved, never re-copied),
//   * no target_type/target introspection,
//   * invoking an empty task is a checked failure, not std::bad_function_call.

#ifndef SRC_COMMON_INLINE_TASK_H_
#define SRC_COMMON_INLINE_TASK_H_

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "src/common/check.h"

namespace actop {

class InlineTask {
 public:
  // Four machine words: fits [this + shared_ptr + int] and a moved-in
  // std::function<void()> (32 bytes on libstdc++), the two capture shapes
  // that dominate the hot path.
  static constexpr std::size_t kInlineBytes = 4 * sizeof(void*);

  InlineTask() = default;
  InlineTask(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::remove_cvref_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineTask> &&
                                        !std::is_same_v<D, std::nullptr_t> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineTask(F&& fn) {  // NOLINT(google-explicit-constructor)
    if constexpr (kFitsInline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      if constexpr (std::is_trivially_copyable_v<D> && sizeof(D) < kInlineBytes) {
        // Trivial callables relocate via a fixed-width memcpy of the whole
        // buffer (see MoveFrom); define the tail bytes once so that copy
        // never reads uninitialized storage.
        std::memset(storage_ + sizeof(D), 0, kInlineBytes - sizeof(D));
      }
      ops_ = &kInlineOps<D>;
    } else {
      *reinterpret_cast<D**>(storage_) = new D(std::forward<F>(fn));
      ops_ = &kHeapOps<D>;
    }
  }

  InlineTask(InlineTask&& other) noexcept { MoveFrom(other); }

  InlineTask& operator=(InlineTask&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  InlineTask(const InlineTask&) = delete;
  InlineTask& operator=(const InlineTask&) = delete;

  ~InlineTask() { Reset(); }

  void operator()() {
    ACTOP_CHECK(ops_ != nullptr);
    ops_->invoke(storage_);
  }

  explicit operator bool() const { return ops_ != nullptr; }

  // True when the wrapped callable lives out-of-line (introspection for
  // tests and the engine benchmark; steady-state paths should stay inline).
  bool heap_allocated() const { return ops_ != nullptr && ops_->heap; }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move-construct the callable from `from` into `to`, destroying the
    // original ("relocate"); both point at kInlineBytes of raw storage.
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void* storage) noexcept;
    bool heap;
    // Trivially copyable inline callables relocate via memcpy and need no
    // destructor call — the engine moves every task twice per event (into
    // its slot, back out at dispatch), so skipping the indirect relocate /
    // destroy calls for plain [ptr, int...] captures is a measurable win.
    bool trivial;
  };

  template <typename D>
  static constexpr bool kFitsInline = sizeof(D) <= kInlineBytes &&
                                      alignof(D) <= alignof(void*) &&
                                      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* s) { (*std::launder(reinterpret_cast<D*>(s)))(); },
      [](void* from, void* to) noexcept {
        D* src = std::launder(reinterpret_cast<D*>(from));
        ::new (to) D(std::move(*src));
        src->~D();
      },
      [](void* s) noexcept { std::launder(reinterpret_cast<D*>(s))->~D(); },
      false,
      std::is_trivially_copyable_v<D>,
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* s) { (**reinterpret_cast<D**>(s))(); },
      [](void* from, void* to) noexcept { *reinterpret_cast<D**>(to) = *reinterpret_cast<D**>(from); },
      [](void* s) noexcept { delete *reinterpret_cast<D**>(s); },
      true,
      false,
  };

  void MoveFrom(InlineTask& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      if (ops_->trivial) {
        std::memcpy(storage_, other.storage_, kInlineBytes);
      } else {
        ops_->relocate(other.storage_, storage_);
      }
      other.ops_ = nullptr;
    }
  }

  void Reset() noexcept {
    if (ops_ != nullptr) {
      if (!ops_->trivial) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  // Pointer-aligned: callables needing stricter alignment take the heap path.
  alignas(void*) unsigned char storage_[kInlineBytes];
};

}  // namespace actop

#endif  // SRC_COMMON_INLINE_TASK_H_
