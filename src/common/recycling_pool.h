// Recycling block cache for allocate_shared.
//
// std::make_shared<T> performs one heap allocation per object (the combined
// object + control block). On the messaging hot path that is one allocation
// per envelope, dominating the per-message cost once the event engine itself
// is allocation-free. RecyclingBlockCache keeps freed combined blocks on a
// free list and hands them back to the next allocate_shared of the same
// type, so steady-state envelope traffic touches the allocator zero times.
//
// The cache is intentionally dumb: it caches blocks of exactly one size (the
// first size it ever sees — for a cache dedicated to one T via MakePooled,
// that is always sizeof(combined block of T)). Other sizes pass through to
// operator new/delete. Single-threaded, like everything else in the
// simulator. The cache must outlive every shared_ptr allocated from it,
// because the final reference drop returns the block to the cache.

#ifndef SRC_COMMON_RECYCLING_POOL_H_
#define SRC_COMMON_RECYCLING_POOL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace actop {

class RecyclingBlockCache {
 public:
  // `max_cached` bounds the free list so a one-off burst does not pin its
  // high-water mark of memory forever.
  explicit RecyclingBlockCache(size_t max_cached = 8192) : max_cached_(max_cached) {}

  RecyclingBlockCache(const RecyclingBlockCache&) = delete;
  RecyclingBlockCache& operator=(const RecyclingBlockCache&) = delete;

  ~RecyclingBlockCache() {
    for (void* block : free_) ::operator delete(block);
  }

  void* Allocate(size_t bytes) {
    if (block_bytes_ == 0) block_bytes_ = bytes;
    if (bytes == block_bytes_ && !free_.empty()) {
      void* block = free_.back();
      free_.pop_back();
      recycled_++;
      return block;
    }
    fresh_++;
    return ::operator new(bytes);
  }

  void Release(void* block, size_t bytes) {
    if (bytes == block_bytes_ && free_.size() < max_cached_) {
      free_.push_back(block);
      return;
    }
    ::operator delete(block);
  }

  // Introspection for tests and the engine benchmark.
  uint64_t fresh_allocations() const { return fresh_; }
  uint64_t recycled_allocations() const { return recycled_; }
  size_t cached_blocks() const { return free_.size(); }

 private:
  std::vector<void*> free_;
  size_t block_bytes_ = 0;
  size_t max_cached_;
  uint64_t fresh_ = 0;
  uint64_t recycled_ = 0;
};

// Minimal allocator adapter so allocate_shared routes its combined-block
// allocation through a RecyclingBlockCache.
template <typename U>
struct RecyclingAllocator {
  using value_type = U;

  explicit RecyclingAllocator(RecyclingBlockCache* cache) : cache(cache) {}
  template <typename V>
  RecyclingAllocator(const RecyclingAllocator<V>& other) : cache(other.cache) {}  // NOLINT

  U* allocate(size_t n) { return static_cast<U*>(cache->Allocate(n * sizeof(U))); }
  void deallocate(U* p, size_t n) { cache->Release(p, n * sizeof(U)); }

  template <typename V>
  bool operator==(const RecyclingAllocator<V>& other) const {
    return cache == other.cache;
  }

  RecyclingBlockCache* cache;
};

// allocate_shared<T> through `cache`. The object is freshly constructed every
// time — only the memory is recycled, so pooled objects are indistinguishable
// from make_shared ones.
template <typename T, typename... Args>
std::shared_ptr<T> MakePooled(RecyclingBlockCache& cache, Args&&... args) {
  return std::allocate_shared<T>(RecyclingAllocator<T>(&cache), std::forward<Args>(args)...);
}

}  // namespace actop

#endif  // SRC_COMMON_RECYCLING_POOL_H_
