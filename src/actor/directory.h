// Distributed placement directory (one shard per server).
//
// As in Orleans, each actor has a "home" server chosen by hashing its id; the
// home's directory shard is the authority on where the actor is activated.
// Registration is first-writer-wins: concurrent activation races resolve to
// a single owner. The shard itself is plain data + logic; the Server wires
// it to control messages.
//
// Every registration carries a shard-local monotone token. Unregisters quote
// the token of the registration they intend to remove, so an unregister
// delayed in the network cannot erase a newer registration that happens to
// name the same owner (deactivate -> re-activate at the same server -> stale
// unregister arrives). Token 0 is a wildcard that matches any registration
// by the right owner (legacy callers and crash-path eviction).

#ifndef SRC_ACTOR_DIRECTORY_H_
#define SRC_ACTOR_DIRECTORY_H_

#include <cstdint>
#include <unordered_map>

#include "src/common/ids.h"
#include "src/common/rng.h"

namespace actop {

// Home shard for an actor id given the cluster size.
constexpr ServerId DirectoryHomeOf(ActorId actor, int num_servers) {
  return static_cast<ServerId>(SplitMix64(actor) % static_cast<uint64_t>(num_servers));
}

// A registration: which server owns the activation, fenced by the token the
// shard minted when the entry was created.
struct DirEntry {
  ServerId owner = kNoServer;
  uint64_t token = 0;
};

class DirectoryShard {
 public:
  // Returns the current registration; if the actor is unregistered,
  // registers `suggested_owner` under a fresh token and returns that
  // (first-writer-wins semantics).
  DirEntry LookupOrRegister(ActorId actor, ServerId suggested_owner);

  // Returns the current owner, or kNoServer.
  ServerId Lookup(ActorId actor) const;

  // Removes the entry if it still points at `owner` AND carries `token`
  // (a stale unregister from a previous registration must not evict a newer
  // one). token == 0 matches any token of the right owner.
  void Unregister(ActorId actor, ServerId owner, uint64_t token = 0);

  // Removes every entry owned by `server` (membership change / crash).
  // Returns how many entries were evicted.
  int EvictServer(ServerId server);

  size_t size() const { return entries_.size(); }

  // Read-only view of the shard's entries (invariant checking, churn
  // injection).
  const std::unordered_map<ActorId, DirEntry>& entries() const { return entries_; }

 private:
  // Deliberately std::unordered_map, and deliberately never Reserve()d: the
  // chaos harness's directory-churn fault iterates entries() and deactivates
  // actors in iteration order, so the container type AND its bucket-count
  // history are part of deterministic replay. Swapping in an open-addressing
  // map (or even pre-sizing this one) reorders that walk and breaks
  // byte-identical cross-version runs. Hot-path maps without observable
  // iteration order use FlatHashMap instead (see src/actor/location_cache.h).
  std::unordered_map<ActorId, DirEntry> entries_;
  uint64_t next_token_ = 1;
};

}  // namespace actop

#endif  // SRC_ACTOR_DIRECTORY_H_
