// Distributed placement directory (one shard per server).
//
// As in Orleans, each actor has a "home" server chosen by hashing its id; the
// home's directory shard is the authority on where the actor is activated.
// Registration is first-writer-wins: concurrent activation races resolve to
// a single owner. The shard itself is plain data + logic; the Server wires
// it to control messages.
//
// Every registration carries a shard-local monotone token. Unregisters quote
// the token of the registration they intend to remove, so an unregister
// delayed in the network cannot erase a newer registration that happens to
// name the same owner (deactivate -> re-activate at the same server -> stale
// unregister arrives). Token 0 is a wildcard that matches any registration
// by the right owner (legacy callers and crash-path eviction).
//
// Layout: registrations live in a dense slab of slots recycled through a
// free list, with a FlatHashMap from actor id to slot index. At Halo scale
// (10M actors over 1000 shards) this replaces one heap node + bucket
// pointer chase per actor with ~25 flat bytes per entry. Consumers that
// need to walk the shard (chaos directory churn, invariant sweeps) use
// ForEach, which visits slots in slot-index order — a pure function of the
// shard's registration/unregistration history, so walks stay deterministic
// without depending on hash-table layout.

#ifndef SRC_ACTOR_DIRECTORY_H_
#define SRC_ACTOR_DIRECTORY_H_

#include <cstdint>
#include <vector>

#include "src/common/flat_hash_map.h"
#include "src/common/ids.h"
#include "src/common/rng.h"

namespace actop {

// Home shard for an actor id given the cluster size.
constexpr ServerId DirectoryHomeOf(ActorId actor, int num_servers) {
  return static_cast<ServerId>(SplitMix64(actor) % static_cast<uint64_t>(num_servers));
}

// A registration: which server owns the activation, fenced by the token the
// shard minted when the entry was created.
struct DirEntry {
  ServerId owner = kNoServer;
  uint64_t token = 0;
};

class DirectoryShard {
 public:
  // Returns the current registration; if the actor is unregistered,
  // registers `suggested_owner` under a fresh token and returns that
  // (first-writer-wins semantics).
  DirEntry LookupOrRegister(ActorId actor, ServerId suggested_owner);

  // Returns the current owner, or kNoServer.
  ServerId Lookup(ActorId actor) const;

  // Removes the entry if it still points at `owner` AND carries `token`
  // (a stale unregister from a previous registration must not evict a newer
  // one). token == 0 matches any token of the right owner.
  void Unregister(ActorId actor, ServerId owner, uint64_t token = 0);

  // Removes every entry owned by `server` (membership change / crash).
  // Returns how many entries were evicted.
  int EvictServer(ServerId server);

  size_t size() const { return live_; }

  // Visits every registration as fn(ActorId, const DirEntry&) in slot-index
  // order. Deterministic: the order is a function of the shard's
  // registration history, never of hash layout — the chaos harness's
  // directory-churn fault deactivates actors in this walk order, so it must
  // replay identically for a fixed seed.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.live) {
        fn(s.actor, s.entry);
      }
    }
  }

 private:
  static constexpr uint32_t kNilIndex = 0xFFFFFFFFu;

  struct Slot {
    ActorId actor = 0;
    DirEntry entry;
    // Next-free link while on the free list.
    uint32_t free_next = kNilIndex;
    bool live = false;
  };

  uint32_t AllocSlot();

  std::vector<Slot> slots_;
  uint32_t free_head_ = kNilIndex;
  size_t live_ = 0;
  FlatHashMap<ActorId, uint32_t> index_;
  uint64_t next_token_ = 1;
};

}  // namespace actop

#endif  // SRC_ACTOR_DIRECTORY_H_
