// Distributed placement directory (one shard per server).
//
// As in Orleans, each actor has a "home" server chosen by hashing its id; the
// home's directory shard is the authority on where the actor is activated.
// Registration is first-writer-wins: concurrent activation races resolve to
// a single owner. The shard itself is plain data + logic; the Server wires
// it to control messages.

#ifndef SRC_ACTOR_DIRECTORY_H_
#define SRC_ACTOR_DIRECTORY_H_

#include <unordered_map>

#include "src/common/ids.h"
#include "src/common/rng.h"

namespace actop {

// Home shard for an actor id given the cluster size.
constexpr ServerId DirectoryHomeOf(ActorId actor, int num_servers) {
  return static_cast<ServerId>(SplitMix64(actor) % static_cast<uint64_t>(num_servers));
}

class DirectoryShard {
 public:
  // Returns the current owner; if the actor is unregistered, registers
  // `suggested_owner` and returns it (first-writer-wins semantics).
  ServerId LookupOrRegister(ActorId actor, ServerId suggested_owner);

  // Returns the current owner, or kNoServer.
  ServerId Lookup(ActorId actor) const;

  // Removes the entry if it still points at `owner` (a stale unregister from
  // a previous owner must not evict a newer activation).
  void Unregister(ActorId actor, ServerId owner);

  // Removes every entry owned by `server` (membership change / crash).
  // Returns how many entries were evicted.
  int EvictServer(ServerId server);

  size_t size() const { return entries_.size(); }

 private:
  std::unordered_map<ActorId, ServerId> entries_;
};

}  // namespace actop

#endif  // SRC_ACTOR_DIRECTORY_H_
