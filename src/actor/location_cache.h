// Bounded per-server cache of actor locations (§4.3).
//
// Servers consult this cache before querying the distributed placement
// directory. Migration primes the caches of the two servers involved so the
// next message opportunistically lands on the right server without global
// coordination. Old entries are evicted LRU to keep space bounded.
//
// This cache is probed on every routed call, so its layout is hot-path
// shaped: entries live in a slab (index-linked intrusive LRU list — no list
// node allocations, slots recycle through a free list) and the actor->entry
// index is an open-addressing FlatHashMap (no bucket nodes, no pointer
// chase). Observable behavior — hit/miss accounting, eviction order, ForEach
// in LRU order — is identical to the std::list + unordered_map layout it
// replaced.

#ifndef SRC_ACTOR_LOCATION_CACHE_H_
#define SRC_ACTOR_LOCATION_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/flat_hash_map.h"
#include "src/common/ids.h"

namespace actop {

class LocationCache {
 public:
  explicit LocationCache(size_t capacity);

  // Inserts or refreshes an entry (moves it to most-recently-used).
  void Put(ActorId actor, ServerId server);

  // Returns the cached server or kNoServer; a hit refreshes recency.
  ServerId Get(ActorId actor);

  // Read-only lookup (no recency update), for statistics and partitioning.
  ServerId Peek(ActorId actor) const;

  // Drops an entry (e.g. after discovering it is stale).
  void Invalidate(ActorId actor);

  // Drops every entry pointing at `server` (e.g. after a server crash).
  void InvalidateServer(ServerId server);

  void Clear();

  // Visits every (actor, server) entry in LRU order without touching
  // recency; used by the chaos invariant checker.
  void ForEach(const std::function<void(ActorId, ServerId)>& fn) const {
    for (uint32_t i = head_; i != kNil; i = nodes_[i].next) {
      fn(nodes_[i].actor, nodes_[i].server);
    }
  }

  size_t size() const { return map_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  static constexpr uint32_t kNil = 0xFFFFFFFFu;
  // Initial reservation cap: large caches grow on demand instead of pinning
  // capacity_ slots up front (see the constructor).
  static constexpr size_t kInitialReserve = 4096;

  struct Node {
    ActorId actor = kNoActor;
    ServerId server = kNoServer;
    uint32_t prev = kNil;
    uint32_t next = kNil;  // doubles as the free-list link
  };

  uint32_t AllocNode();
  void Unlink(uint32_t i);
  void LinkFront(uint32_t i);
  void Remove(uint32_t i);

  size_t capacity_;
  std::vector<Node> nodes_;
  uint32_t head_ = kNil;  // most recently used
  uint32_t tail_ = kNil;  // least recently used
  uint32_t free_ = kNil;
  FlatHashMap<ActorId, uint32_t> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace actop

#endif  // SRC_ACTOR_LOCATION_CACHE_H_
