// Bounded per-server cache of actor locations (§4.3).
//
// Servers consult this cache before querying the distributed placement
// directory. Migration primes the caches of the two servers involved so the
// next message opportunistically lands on the right server without global
// coordination. Old entries are evicted LRU to keep space bounded.

#ifndef SRC_ACTOR_LOCATION_CACHE_H_
#define SRC_ACTOR_LOCATION_CACHE_H_

#include <cstddef>
#include <functional>
#include <list>
#include <unordered_map>

#include "src/common/ids.h"

namespace actop {

class LocationCache {
 public:
  explicit LocationCache(size_t capacity);

  // Inserts or refreshes an entry (moves it to most-recently-used).
  void Put(ActorId actor, ServerId server);

  // Returns the cached server or kNoServer; a hit refreshes recency.
  ServerId Get(ActorId actor);

  // Read-only lookup (no recency update), for statistics and partitioning.
  ServerId Peek(ActorId actor) const;

  // Drops an entry (e.g. after discovering it is stale).
  void Invalidate(ActorId actor);

  // Drops every entry pointing at `server` (e.g. after a server crash).
  void InvalidateServer(ServerId server);

  void Clear();

  // Visits every (actor, server) entry in LRU order without touching
  // recency; used by the chaos invariant checker.
  void ForEach(const std::function<void(ActorId, ServerId)>& fn) const {
    for (const Entry& e : lru_) {
      fn(e.actor, e.server);
    }
  }

  size_t size() const { return map_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  struct Entry {
    ActorId actor;
    ServerId server;
  };

  size_t capacity_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<ActorId, std::list<Entry>::iterator> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace actop

#endif  // SRC_ACTOR_LOCATION_CACHE_H_
