// Application-facing actor programming model.
//
// Applications subclass Actor and register a factory per ActorType with the
// Cluster. The runtime activates actors on demand (virtual actors, as in
// Orleans), delivers one call at a time per activation, and may migrate
// activations between servers transparently.
//
// Because this runtime simulates time rather than executing real work,
// handlers declare their compute cost through the per-type CostModel (or
// override it per call via CallContext::set_extra_compute) instead of
// actually burning CPU.

#ifndef SRC_ACTOR_ACTOR_H_
#define SRC_ACTOR_ACTOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "src/common/ids.h"
#include "src/common/inline_function.h"
#include "src/common/sim_time.h"
#include "src/runtime/message.h"

namespace actop {

// Response delivered to a call's continuation.
struct Response {
  ActorId from = kNoActor;
  uint32_t payload_bytes = 0;
  bool failed = false;  // target unreachable (e.g. dropped during overload)
};

// Continuation invoked when a call's response (or failure) arrives. Six
// machine words of inline storage covers every steady-state capture shape in
// the workloads — [CallContext*, shared_ptr counter, this] is 32 bytes —
// without the per-call heap allocation std::function pays for captures past
// 16 bytes. Move-only; pass nullptr for fire-and-forget calls.
using ResponseFn = InlineFunction<void(const Response&), 48>;

// Handle for one in-flight call being processed by an actor. Created by the
// runtime for each delivered call; the actor must eventually Reply() exactly
// once (possibly after sub-calls complete).
class CallContext {
 public:
  virtual ~CallContext() = default;

  virtual ActorId self() const = 0;
  virtual MethodId method() const = 0;
  virtual uint32_t payload_bytes() const = 0;
  virtual uint64_t app_data() const = 0;  // small scalar argument
  virtual ActorId caller() const = 0;     // kNoActor when called by a client
  virtual SimTime now() const = 0;

  // Issues an asynchronous call to another actor. The continuation runs as a
  // new turn on this actor's server when the response arrives.
  virtual void Call(ActorId target, MethodId method, uint32_t payload_bytes,
                    ResponseFn on_response) = 0;
  virtual void CallWithData(ActorId target, MethodId method, uint64_t app_data,
                            uint32_t payload_bytes, ResponseFn on_response) = 0;

  // One-way call: no response expected, no continuation.
  virtual void CallOneWay(ActorId target, MethodId method, uint32_t payload_bytes) = 0;

  // Completes this call with a response of the given size. Must be called
  // exactly once over the lifetime of the context (possibly from a sub-call
  // continuation).
  virtual void Reply(uint32_t payload_bytes) = 0;

  // Adds data-dependent compute time to the current turn (charged to the
  // worker stage in addition to the CostModel's per-method cost). The extra
  // time extends the turn — the actor stays busy and queued calls wait — but
  // a Reply() already issued in this turn is not delayed by it.
  virtual void AddCompute(SimDuration extra) = 0;
};

// Base class for application actors.
class Actor {
 public:
  virtual ~Actor() = default;

  // Handles one incoming call. `ctx` remains valid until Reply() is invoked;
  // the runtime owns it.
  virtual void OnCall(CallContext& ctx) = 0;
};

using ActorFactory = std::function<std::unique_ptr<Actor>(ActorId)>;

// Declared processing costs for an actor type. The runtime charges
// `handler_compute` (plus any AddCompute) to the worker stage per turn and
// `handler_blocking` as synchronous blocking time (§5.2's w).
struct CostModel {
  SimDuration handler_compute = Micros(30);
  SimDuration handler_blocking = 0;
  // Per-method overrides.
  std::unordered_map<MethodId, SimDuration> per_method_compute;

  SimDuration ComputeFor(MethodId method) const {
    auto it = per_method_compute.find(method);
    return it == per_method_compute.end() ? handler_compute : it->second;
  }
};

struct ActorTypeInfo {
  ActorFactory factory;
  CostModel costs;
};

}  // namespace actop

#endif  // SRC_ACTOR_ACTOR_H_
