#include "src/actor/directory.h"

#include "src/common/check.h"

namespace actop {

DirEntry DirectoryShard::LookupOrRegister(ActorId actor, ServerId suggested_owner) {
  ACTOP_CHECK(suggested_owner != kNoServer);
  auto it = entries_.find(actor);
  if (it == entries_.end()) {
    const DirEntry entry{suggested_owner, next_token_++};
    entries_.emplace(actor, entry);
    return entry;
  }
  return it->second;
}

ServerId DirectoryShard::Lookup(ActorId actor) const {
  auto it = entries_.find(actor);
  return it == entries_.end() ? kNoServer : it->second.owner;
}

void DirectoryShard::Unregister(ActorId actor, ServerId owner, uint64_t token) {
  auto it = entries_.find(actor);
  if (it != entries_.end() && it->second.owner == owner &&
      (token == 0 || it->second.token == token)) {
    entries_.erase(it);
  }
}

int DirectoryShard::EvictServer(ServerId server) {
  int evicted = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.owner == server) {
      it = entries_.erase(it);
      evicted++;
    } else {
      ++it;
    }
  }
  return evicted;
}

}  // namespace actop
