#include "src/actor/directory.h"

#include "src/common/check.h"

namespace actop {

ServerId DirectoryShard::LookupOrRegister(ActorId actor, ServerId suggested_owner) {
  ACTOP_CHECK(suggested_owner != kNoServer);
  auto [it, inserted] = entries_.try_emplace(actor, suggested_owner);
  return it->second;
}

ServerId DirectoryShard::Lookup(ActorId actor) const {
  auto it = entries_.find(actor);
  return it == entries_.end() ? kNoServer : it->second;
}

void DirectoryShard::Unregister(ActorId actor, ServerId owner) {
  auto it = entries_.find(actor);
  if (it != entries_.end() && it->second == owner) {
    entries_.erase(it);
  }
}

int DirectoryShard::EvictServer(ServerId server) {
  int evicted = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second == server) {
      it = entries_.erase(it);
      evicted++;
    } else {
      ++it;
    }
  }
  return evicted;
}

}  // namespace actop
