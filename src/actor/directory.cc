#include "src/actor/directory.h"

#include "src/common/check.h"

namespace actop {

uint32_t DirectoryShard::AllocSlot() {
  if (free_head_ != kNilIndex) {
    const uint32_t slot = free_head_;
    free_head_ = slots_[slot].free_next;
    return slot;
  }
  slots_.emplace_back();
  return static_cast<uint32_t>(slots_.size() - 1);
}

DirEntry DirectoryShard::LookupOrRegister(ActorId actor, ServerId suggested_owner) {
  ACTOP_CHECK(suggested_owner != kNoServer);
  if (const uint32_t* pos = index_.Find(actor)) {
    return slots_[*pos].entry;
  }
  const uint32_t slot = AllocSlot();
  Slot& s = slots_[slot];
  s.actor = actor;
  s.entry = DirEntry{suggested_owner, next_token_++};
  s.live = true;
  index_.Insert(actor, slot);
  live_++;
  return s.entry;
}

ServerId DirectoryShard::Lookup(ActorId actor) const {
  const uint32_t* pos = index_.Find(actor);
  return pos == nullptr ? kNoServer : slots_[*pos].entry.owner;
}

void DirectoryShard::Unregister(ActorId actor, ServerId owner, uint64_t token) {
  const uint32_t* pos = index_.Find(actor);
  if (pos == nullptr) {
    return;
  }
  Slot& s = slots_[*pos];
  if (s.entry.owner == owner && (token == 0 || s.entry.token == token)) {
    s.live = false;
    s.free_next = free_head_;
    free_head_ = *pos;
    live_--;
    index_.Erase(actor);
  }
}

int DirectoryShard::EvictServer(ServerId server) {
  int evicted = 0;
  for (uint32_t i = 0; i < slots_.size(); i++) {
    Slot& s = slots_[i];
    if (s.live && s.entry.owner == server) {
      s.live = false;
      s.free_next = free_head_;
      free_head_ = i;
      live_--;
      index_.Erase(s.actor);
      evicted++;
    }
  }
  return evicted;
}

}  // namespace actop
