#include "src/actor/location_cache.h"

#include "src/common/check.h"

namespace actop {

LocationCache::LocationCache(size_t capacity) : capacity_(capacity) {
  ACTOP_CHECK(capacity >= 1);
}

void LocationCache::Put(ActorId actor, ServerId server) {
  auto it = map_.find(actor);
  if (it != map_.end()) {
    it->second->server = server;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (map_.size() >= capacity_) {
    const Entry& victim = lru_.back();
    map_.erase(victim.actor);
    lru_.pop_back();
  }
  lru_.push_front(Entry{actor, server});
  map_.emplace(actor, lru_.begin());
}

ServerId LocationCache::Get(ActorId actor) {
  auto it = map_.find(actor);
  if (it == map_.end()) {
    misses_++;
    return kNoServer;
  }
  hits_++;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->server;
}

ServerId LocationCache::Peek(ActorId actor) const {
  auto it = map_.find(actor);
  return it == map_.end() ? kNoServer : it->second->server;
}

void LocationCache::Invalidate(ActorId actor) {
  auto it = map_.find(actor);
  if (it == map_.end()) {
    return;
  }
  lru_.erase(it->second);
  map_.erase(it);
}

void LocationCache::InvalidateServer(ServerId server) {
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->server == server) {
      map_.erase(it->actor);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

void LocationCache::Clear() {
  lru_.clear();
  map_.clear();
}

}  // namespace actop
