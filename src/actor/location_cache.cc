#include "src/actor/location_cache.h"

#include <algorithm>

#include "src/common/check.h"

namespace actop {

LocationCache::LocationCache(size_t capacity) : capacity_(capacity) {
  ACTOP_CHECK(capacity >= 1);
  // Reserve lazily, not at full capacity: the default capacity is 128k
  // entries, and a 1000-server cluster builds 1000 of these — eager
  // reservation alone would pin ~7 GB before a single message flows. Caches
  // that actually fill grow to capacity on demand; the steady-state
  // allocation profile is unchanged once the population stabilizes.
  const size_t initial = std::min(capacity, kInitialReserve);
  nodes_.reserve(initial);
  map_.Reserve(initial);
}

uint32_t LocationCache::AllocNode() {
  if (free_ != kNil) {
    const uint32_t i = free_;
    free_ = nodes_[i].next;
    return i;
  }
  nodes_.emplace_back();
  return static_cast<uint32_t>(nodes_.size() - 1);
}

void LocationCache::Unlink(uint32_t i) {
  Node& n = nodes_[i];
  if (n.prev != kNil) {
    nodes_[n.prev].next = n.next;
  } else {
    head_ = n.next;
  }
  if (n.next != kNil) {
    nodes_[n.next].prev = n.prev;
  } else {
    tail_ = n.prev;
  }
}

void LocationCache::LinkFront(uint32_t i) {
  Node& n = nodes_[i];
  n.prev = kNil;
  n.next = head_;
  if (head_ != kNil) nodes_[head_].prev = i;
  head_ = i;
  if (tail_ == kNil) tail_ = i;
}

void LocationCache::Remove(uint32_t i) {
  Unlink(i);
  map_.Erase(nodes_[i].actor);
  nodes_[i].next = free_;
  free_ = i;
}

void LocationCache::Put(ActorId actor, ServerId server) {
  if (uint32_t* found = map_.Find(actor)) {
    const uint32_t i = *found;
    nodes_[i].server = server;
    Unlink(i);
    LinkFront(i);
    return;
  }
  if (map_.size() >= capacity_) {
    Remove(tail_);
  }
  const uint32_t i = AllocNode();
  nodes_[i].actor = actor;
  nodes_[i].server = server;
  LinkFront(i);
  map_.Insert(actor, i);
}

ServerId LocationCache::Get(ActorId actor) {
  uint32_t* found = map_.Find(actor);
  if (found == nullptr) {
    misses_++;
    return kNoServer;
  }
  hits_++;
  const uint32_t i = *found;
  Unlink(i);
  LinkFront(i);
  return nodes_[i].server;
}

ServerId LocationCache::Peek(ActorId actor) const {
  const uint32_t* found = map_.Find(actor);
  return found == nullptr ? kNoServer : nodes_[*found].server;
}

void LocationCache::Invalidate(ActorId actor) {
  if (uint32_t* found = map_.Find(actor)) {
    Remove(*found);
  }
}

void LocationCache::InvalidateServer(ServerId server) {
  for (uint32_t i = head_; i != kNil;) {
    const uint32_t next = nodes_[i].next;
    if (nodes_[i].server == server) {
      Remove(i);
    }
    i = next;
  }
}

void LocationCache::Clear() {
  nodes_.clear();
  head_ = tail_ = free_ = kNil;
  map_.Clear();
}

}  // namespace actop
