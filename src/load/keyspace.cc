#include "src/load/keyspace.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace actop {

namespace {

// log1p(x)/x and expm1(x)/x with series fallbacks near zero, as in the
// reference rejection-inversion implementation: the exponent-dependent
// quantities below lose precision exactly where these ratios approach 1.
double Helper1(double x) {
  if (std::abs(x) > 1e-8) {
    return std::log1p(x) / x;
  }
  return 1.0 - x * (0.5 - x * (1.0 / 3.0 - x * 0.25));
}

double Helper2(double x) {
  if (std::abs(x) > 1e-8) {
    return std::expm1(x) / x;
  }
  return 1.0 + x * 0.5 * (1.0 + x * (1.0 / 3.0) * (1.0 + x * 0.25));
}

}  // namespace

ZipfSampler::ZipfSampler(uint64_t n, double exponent) : n_(n), exponent_(exponent) {
  ACTOP_CHECK(n >= 1);
  ACTOP_CHECK(exponent >= 0.0);
  if (exponent_ == 0.0) {
    return;  // uniform fast path; the H machinery is undefined at s == 0
  }
  h_integral_x1_ = HIntegral(1.5) - 1.0;
  h_integral_n_ = HIntegral(static_cast<double>(n_) + 0.5);
  s_ = 2.0 - HIntegralInverse(HIntegral(2.5) - H(2.0));
}

// Integral of x^-s, shifted so the expressions below stay stable for s
// near 1: HIntegral(x) = (x^(1-s) - 1)/(1-s), continuously = log(x) at s=1.
double ZipfSampler::HIntegral(double x) const {
  const double log_x = std::log(x);
  return Helper2((1.0 - exponent_) * log_x) * log_x;
}

double ZipfSampler::H(double x) const { return std::exp(-exponent_ * std::log(x)); }

double ZipfSampler::HIntegralInverse(double x) const {
  double t = x * (1.0 - exponent_);
  if (t < -1.0) {
    t = -1.0;  // guard against round-off below the pole
  }
  return std::exp(Helper1(t) * x);
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  if (exponent_ == 0.0) {
    return 1 + rng.NextBounded(n_);
  }
  while (true) {
    const double u =
        h_integral_n_ + rng.NextDouble() * (h_integral_x1_ - h_integral_n_);
    const double x = HIntegralInverse(u);
    uint64_t k = static_cast<uint64_t>(std::llround(std::max(1.0, x)));
    k = std::clamp<uint64_t>(k, 1, n_);
    // Accept when x falls within the hat's tight region around k, or via the
    // exact rejection test against the histogram bar at k.
    if (static_cast<double>(k) - x <= s_ ||
        u >= HIntegral(static_cast<double>(k) + 0.5) - H(static_cast<double>(k))) {
      return k;
    }
  }
}

double ZipfSampler::Probability(uint64_t k) const {
  ACTOP_CHECK(k >= 1 && k <= n_);
  double norm = 0.0;
  for (uint64_t i = 1; i <= n_; i++) {
    norm += std::pow(static_cast<double>(i), -exponent_);
  }
  return std::pow(static_cast<double>(k), -exponent_) / norm;
}

BoundedParetoSampler::BoundedParetoSampler(uint64_t lo, uint64_t hi, double alpha)
    : lo_(lo), hi_(hi), alpha_(alpha) {
  ACTOP_CHECK(lo >= 1);
  ACTOP_CHECK(hi >= lo);
  ACTOP_CHECK(alpha > 0.0);
  lo_pow_ = std::pow(static_cast<double>(lo_), alpha_);
  ratio_ = 1.0 - std::pow(static_cast<double>(lo_) / static_cast<double>(hi_), alpha_);
}

uint64_t BoundedParetoSampler::Sample(Rng& rng) const {
  if (lo_ == hi_) {
    return lo_;
  }
  const double u = rng.NextDouble();  // in [0, 1)
  // Invert F(x) = (1 - lo^a x^-a) / ratio on [lo, hi].
  const double x =
      static_cast<double>(lo_) / std::pow(1.0 - u * ratio_, 1.0 / alpha_);
  const auto k = static_cast<uint64_t>(x);  // floor: discrete sizes
  return std::clamp<uint64_t>(k, lo_, hi_);
}

double BoundedParetoSampler::Ccdf(double x) const {
  if (x < static_cast<double>(lo_)) {
    return 1.0;
  }
  if (x >= static_cast<double>(hi_)) {
    return 0.0;
  }
  const double f = (1.0 - lo_pow_ * std::pow(x, -alpha_)) / ratio_;
  return 1.0 - f;
}

}  // namespace actop
