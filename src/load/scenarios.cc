#include "src/load/scenarios.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/load/keyspace.h"
#include "src/load/open_loop.h"
#include "src/load/rate_schedule.h"
#include "src/runtime/client.h"
#include "src/runtime/cluster.h"
#include "src/sim/sharded_engine.h"
#include "src/sim/simulation.h"
#include "src/testing/chaos.h"
#include "src/testing/invariants.h"
#include "src/workload/chat.h"
#include "src/workload/halo_presence.h"
#include "src/workload/heartbeat.h"
#include "src/workload/social.h"

namespace actop {

namespace {

// --- scale helpers -------------------------------------------------------
// One knob scales population and offered rate together while the cluster
// stays fixed: smoke runs keep every code path and stay utilization-light.

int ScaleCount(int full, double scale, int floor_count) {
  return std::max(floor_count, static_cast<int>(static_cast<double>(full) * scale + 0.5));
}

double ScaleRate(double full, double scale, double floor_rate) {
  return std::max(floor_rate, full * scale);
}

// Full-scale runs use publication-length phases; smoke runs (tier-1 ctest)
// compress them to seconds of simulated time.
SimDuration Phase(double scale, int64_t full_s, int64_t smoke_s) {
  return Seconds(scale >= 0.5 ? full_s : smoke_s);
}

constexpr SimDuration kClientTimeout = Seconds(5);
// Drain must outlive the client timeout plus the 1 s timeout sweep so every
// measure-window request resolves to completed or timed out.
constexpr SimDuration kDrain = kClientTimeout + Seconds(2);

// --- common open-loop harness --------------------------------------------

struct DriveSpec {
  const char* name = "";
  uint64_t simulated_users = 0;
  SimDuration warmup = 0;
  SimDuration measure = 0;
  SimDuration drain = kDrain;
  SimDuration invariant_period = Seconds(2);
  // Quiescent coherence needs a drained cluster; scenarios whose optimizers
  // keep migrating actors after traffic stops (halo_launch) skip it.
  bool quiescent_check = true;
  // > 0: also check the partitioner balance constraint each tick.
  int64_t balance_delta = 0;
  int64_t balance_slack = 0;
  SloSpec slo;
  // Invoked when the measure window closes, before the drain: scenarios stop
  // workload churn here so the cluster can actually quiesce.
  std::function<void()> on_measure_end;
};

ScenarioReport Drive(ShardedEngine* engine, Cluster* cluster, ClientPool* pool,
                     const RateSchedule* schedule, const DriveSpec& spec,
                     const ScenarioOptions& opt) {
  Simulation* sim = &engine->sim();
  ScenarioReport report;
  report.scenario = spec.name;
  report.seed = opt.seed;
  report.scale = opt.scale;
  report.simulated_users = spec.simulated_users;
  report.num_servers = cluster->num_servers();
  report.warmup_s = ToSeconds(spec.warmup);
  report.measure_s = ToSeconds(spec.measure);
  report.drain_s = ToSeconds(spec.drain);
  report.peak_rate_per_s = schedule->PeakRate();
  report.chaos = opt.chaos;
  report.slo = spec.slo;
  if (opt.chaos) {
    // Under fault injection the latency/goodput SLOs are off the table by
    // design (crashed servers lose requests); the run still reports them and
    // still gates on invariant violations.
    report.slo = SloSpec{};
  }

  OpenLoopDriver driver(sim, pool, schedule, opt.seed ^ 0x9e3779b97f4a7c15ULL);
  driver.Start();

  std::unique_ptr<ChaosController> chaos;
  if (opt.chaos) {
    ChaosConfig cc;
    cc.seed = opt.seed ^ 0x6a09e667f3bcc909ULL;
    cc.faults_start = spec.warmup;
    cc.faults_end = spec.warmup + spec.measure;
    cc.crash_prob = 0.02;
    cc.directory_churn_prob = 0.05;
    cc.forced_migrations_per_tick = 1;
    cc.drop_prob = 0.01;
    cc.delay_prob = 0.05;
    cc.fault_client_links = false;
    cc.check_every_events = 1024;
    chaos = std::make_unique<ChaosController>(engine, cluster, cc);
    chaos->Start();
  }

  InvariantChecker checker(cluster);
  uint64_t violations = 0;
  auto run_checks = [&] {
    violations += checker.CheckInstant().size();
    if (spec.balance_delta > 0) {
      violations += checker.CheckBalance(spec.balance_delta, spec.balance_slack).size();
    }
  };

  // Invariant sweeps and metric snapshots run between engine windows: after
  // RunUntil returns, every shard has advanced to the cut time and the
  // workers are parked at the barrier, so cross-shard reads are race-free.
  auto run_phase_with_checks = [&](SimTime until) {
    while (engine->now() + spec.invariant_period < until) {
      engine->RunUntil(engine->now() + spec.invariant_period);
      run_checks();
    }
    engine->RunUntil(until);
    run_checks();
  };

  // Warm-up: populate the actor fleet, let queues and (if enabled) the
  // optimizers settle, exactly like the closed-loop harness discards its
  // convergence phase.
  run_phase_with_checks(spec.warmup);

  // Measure window: reset everything measurable at the boundary (PR-5
  // measure-window discipline — the alloc snapshot hooks in here too).
  pool->ResetStats();
  cluster->ResetMetricsLatencies();
  auto sum_rejections = [&] {
    uint64_t total = 0;
    for (int s = 0; s < cluster->num_servers(); s++) {
      for (int i = 0; i < Server::kNumStages; i++) {
        total += cluster->server(s).stage(i).total_rejections();
      }
    }
    return total;
  };
  const uint64_t rejections0 = sum_rejections();
  const uint64_t arrivals0 = driver.arrivals();
  const uint64_t bursts0 = driver.burst_arrivals();
  const uint64_t events0 = engine->events_executed();
  const uint64_t allocs0 = opt.alloc_counter ? opt.alloc_counter() : 0;

  run_phase_with_checks(spec.warmup + spec.measure);

  const uint64_t allocs1 = opt.alloc_counter ? opt.alloc_counter() : 0;
  const uint64_t events1 = engine->events_executed();
  report.issued = pool->issued();
  report.arrivals = driver.arrivals() - arrivals0;
  report.burst_arrivals = driver.burst_arrivals() - bursts0;
  report.stage_rejections = sum_rejections() - rejections0;

  // Drain: no further arrivals; every outstanding request completes or hits
  // the client timeout, so the rates below partition `issued` exactly.
  driver.Stop();
  if (chaos) {
    chaos->Stop();
  }
  if (spec.on_measure_end) {
    spec.on_measure_end();
  }
  engine->RunUntil(spec.warmup + spec.measure + spec.drain);

  report.completed = pool->completed();
  report.timeouts = pool->timeouts();
  const double measure_s = ToSeconds(spec.measure);
  report.offered_per_s = static_cast<double>(report.issued) / measure_s;
  report.goodput_per_s = static_cast<double>(report.completed) / measure_s;
  if (report.issued > 0) {
    report.timeout_rate =
        static_cast<double>(report.timeouts) / static_cast<double>(report.issued);
    report.shed_rate =
        static_cast<double>(report.stage_rejections) / static_cast<double>(report.issued);
  }
  const Histogram& lat = pool->latency();
  report.p50_ms = ToMillis(lat.p50());
  report.p99_ms = ToMillis(lat.p99());
  report.p999_ms = ToMillis(lat.p999());
  report.mean_ms = lat.mean() / 1e6;
  report.max_ms = ToMillis(lat.max());

  if (spec.quiescent_check) {
    violations += checker.CheckQuiescent().size();
  } else {
    run_checks();
  }
  report.invariant_checks = checker.checks_run();
  report.invariant_violations = violations;
  if (chaos) {
    report.invariant_violations += chaos->total_violations();
    report.chaos_crashes = chaos->crashes();
    report.chaos_directory_churns = chaos->shard_churns();
    report.chaos_dropped_messages = chaos->dropped_messages();
  }

  if (opt.alloc_counter) {
    report.allocs_measured = true;
    report.measure_events = events1 - events0;
    report.measure_allocs = allocs1 - allocs0;
    report.allocs_per_event =
        report.measure_events == 0
            ? 0.0
            : static_cast<double>(report.measure_allocs) /
                  static_cast<double>(report.measure_events);
  }

  EvaluateSlo(&report);
  return report;
}

ClusterConfig BaseCluster(int servers, uint64_t seed) {
  ClusterConfig cfg;
  cfg.num_servers = servers;
  cfg.seed = seed;
  return cfg;
}

// Engine for a scenario: shards = the requested thread count (clamped to the
// server count — each shard must own at least one server), lookahead = the
// network's one-way latency, the conservative-window bound.
ShardedEngineConfig EngineConfigFor(const ScenarioOptions& opt, const ClusterConfig& cfg) {
  ShardedEngineConfig ec;
  ec.shards = std::max(1, std::min(opt.threads, cfg.num_servers));
  ec.lookahead = cfg.network.one_way_latency;
  return ec;
}

// --- diurnal_chat ---------------------------------------------------------
// Chat service under a compressed day/night curve: two 40-second "days" with
// a 65% swing around the base posting rate, room churn running throughout.

ScenarioReport RunDiurnalChat(const ScenarioOptions& opt) {
  const int users = ScaleCount(50000, opt.scale, 500);
  const double rate = ScaleRate(1200.0, opt.scale, 20.0);

  const ClusterConfig cfg = BaseCluster(8, opt.seed);
  ShardedEngine engine(EngineConfigFor(opt, cfg));
  Cluster cluster(&engine, cfg);

  ChatWorkloadConfig wl;
  wl.num_users = users;
  wl.num_rooms = std::max(10, users / 10);
  wl.message_rate = rate;  // unused (external clients); kept for reference
  wl.rehomes_per_period = std::max(1, users / 2000);
  wl.client_timeout = kClientTimeout;
  wl.external_clients = true;
  wl.seed = opt.seed ^ 0x1111;
  ChatWorkload chat(&cluster, wl);
  chat.Start();

  const SimDuration warmup = Phase(opt.scale, 10, 4);
  const SimDuration measure = Phase(opt.scale, 80, 12);
  RateSchedule schedule(rate);
  schedule.AddDiurnal(Seconds(40), 0.65, -M_PI / 2);

  DriveSpec spec;
  spec.name = "diurnal_chat";
  spec.simulated_users = static_cast<uint64_t>(users);
  spec.warmup = warmup;
  spec.measure = measure;
  spec.slo.p99_ms = 120.0;
  spec.slo.max_timeout_rate = 0.01;
  spec.slo.min_goodput_fraction = 0.98;
  spec.on_measure_end = [&chat] { chat.Stop(); };
  return Drive(&engine, &cluster, &chat.clients(), &schedule, spec, opt);
}

// --- flash_crowd ----------------------------------------------------------
// Launch day against a million-user presence-status fleet: every user's
// session is a monitor actor, polled at a steady base rate until the crowd
// arrives — a 6x step for ten seconds that pushes the cluster through
// saturation. Open-loop arrivals keep coming while queues grow, which is
// precisely what a closed-loop driver cannot model; the SLO gates tail
// latency and the timeout rate across the whole window, recovery included.

ScenarioReport RunFlashCrowd(const ScenarioOptions& opt) {
  const int users = ScaleCount(1000000, opt.scale, 2000);
  const double rate = ScaleRate(15000.0, opt.scale, 100.0);

  const ClusterConfig cfg = BaseCluster(8, opt.seed);
  ShardedEngine engine(EngineConfigFor(opt, cfg));
  Cluster cluster(&engine, cfg);

  HeartbeatWorkloadConfig wl;
  wl.num_monitors = users;
  wl.request_rate = rate;  // unused (external clients)
  wl.request_bytes = 240;
  wl.handler_compute = Micros(150);
  wl.client_timeout = kClientTimeout;
  wl.external_clients = true;
  wl.seed = opt.seed ^ 0x2222;
  HeartbeatWorkload fleet(&cluster, wl);
  fleet.Start();

  const SimDuration warmup = Phase(opt.scale, 10, 3);
  const SimDuration measure = Phase(opt.scale, 50, 12);
  RateSchedule schedule(rate);
  // The crowd: a 3.5x step one third into the measure window, held 10 s
  // (smoke: 3 s), decaying spike tail as stragglers keep retrying. At full
  // scale the step (52.5K req/s) exceeds the measured cluster capacity
  // (~46K req/s with this payload/handler mix), so a real backlog builds for
  // the whole hold and drains over the following seconds — the
  // overload-and-recover transient the SLO bounds below assert, which a
  // closed-loop driver (arrivals gated on completions) cannot produce.
  const SimTime crowd_start = warmup + measure / 3;
  const SimDuration crowd_hold = Phase(opt.scale, 10, 3);
  schedule.AddStep(crowd_start, crowd_start + crowd_hold, 3.5);
  schedule.AddSpike(crowd_start + crowd_hold, 1.5, Seconds(3));

  DriveSpec spec;
  spec.name = "flash_crowd";
  spec.simulated_users = static_cast<uint64_t>(users);
  spec.warmup = warmup;
  spec.measure = measure;
  spec.slo.p50_ms = 50.0;
  spec.slo.p999_ms = 4500.0;
  spec.slo.max_timeout_rate = 0.08;
  spec.slo.min_goodput_fraction = 0.90;
  spec.on_measure_end = [&fleet] { fleet.Stop(); };
  return Drive(&engine, &cluster, &fleet.clients(), &schedule, spec, opt);
}

// --- hot_key --------------------------------------------------------------
// Zipf(1.1) hot-key skew over a 200K-monitor fleet: the head keys absorb
// double-digit percentages of all traffic, so a handful of actors (and the
// servers hosting them) queue while the cluster as a whole idles. The SLO
// bounds the tail the hot keys produce — a per-key-skew property invisible
// to aggregate closed-loop throughput numbers.

ScenarioReport RunHotKey(const ScenarioOptions& opt) {
  const int users = ScaleCount(200000, opt.scale, 2000);
  const double rate = ScaleRate(24000.0, opt.scale, 200.0);

  const ClusterConfig cfg = BaseCluster(8, opt.seed);
  ShardedEngine engine(EngineConfigFor(opt, cfg));
  Cluster cluster(&engine, cfg);
  Simulation& sim = engine.sim();

  HeartbeatWorkloadConfig wl;
  wl.num_monitors = users;
  wl.request_rate = rate;  // unused: the Zipf pool below issues all traffic
  wl.request_bytes = 200;
  wl.handler_compute = Micros(300);
  wl.client_timeout = kClientTimeout;
  wl.external_clients = true;
  wl.seed = opt.seed ^ 0x3333;
  HeartbeatWorkload fleet(&cluster, wl);
  fleet.Start();

  // Zipf-skewed targeting replaces the workload's uniform pool: key 1 is the
  // hottest monitor, with P(k) ~ k^-1.1.
  ZipfSampler zipf(static_cast<uint64_t>(users), 1.1);
  ClientPool hot_pool(
      &sim, &cluster,
      ClientConfig{.request_rate = rate,
                   .request_bytes = wl.request_bytes,
                   .timeout = kClientTimeout,
                   .seed = opt.seed ^ 0x4444},
      [zipf](Rng& rng, ActorId* target, MethodId* method) {
        *target = MakeActorId(kMonitorActorType, zipf.Sample(rng));
        *method = 0;
        return true;
      });

  const SimDuration warmup = Phase(opt.scale, 8, 3);
  const SimDuration measure = Phase(opt.scale, 40, 12);
  RateSchedule schedule(rate);

  DriveSpec spec;
  spec.name = "hot_key";
  spec.simulated_users = static_cast<uint64_t>(users);
  spec.warmup = warmup;
  spec.measure = measure;
  spec.slo.p50_ms = 20.0;
  // The median stays milliseconds while the Zipf head drives the extreme
  // tail to seconds (full scale: p999 ~3.0 s at ~94% hot-actor utilization)
  // — the skew signature this scenario exists to bound.
  spec.slo.p999_ms = 3500.0;
  spec.slo.max_timeout_rate = 0.01;
  spec.slo.min_goodput_fraction = 0.98;
  spec.on_measure_end = [&fleet] { fleet.Stop(); };
  return Drive(&engine, &cluster, &hot_pool, &schedule, spec, opt);
}

// --- viral_social ---------------------------------------------------------
// Power-law social fan-out with viral cascades: background posts/reads at a
// steady rate; every 15 s a top-followed celebrity posts, a Pareto-sized
// wave of their followers reposts to their own audiences (second-hop
// fan-out through real actor messages), and a read storm (3x spike, 4 s
// decay) rides each trigger.

ScenarioReport RunViralSocial(const ScenarioOptions& opt) {
  const int users = ScaleCount(20000, opt.scale, 1000);
  const double rate = ScaleRate(5000.0, opt.scale, 100.0);

  const ClusterConfig cfg = BaseCluster(8, opt.seed);
  ShardedEngine engine(EngineConfigFor(opt, cfg));
  Cluster cluster(&engine, cfg);
  Simulation& sim = engine.sim();

  SocialWorkloadConfig wl;
  wl.num_users = users;
  wl.mean_following = 12;
  wl.zipf_skew = 0.9;
  // The post/read mix of the external arrivals still comes from the
  // workload's TargetFn, which splits by these two rates.
  wl.post_rate = rate * 0.2;
  wl.read_rate = rate * 0.8;
  wl.client_timeout = kClientTimeout;
  wl.external_clients = true;
  wl.seed = opt.seed ^ 0x5555;
  SocialWorkload social(&cluster, wl);
  social.Start();

  const SimDuration warmup = Phase(opt.scale, 8, 3);
  const SimDuration measure = Phase(opt.scale, 45, 12);
  RateSchedule schedule(rate);

  // Celebrities: the three highest in-degree users from the driver mirror.
  std::vector<uint64_t> celebs;
  {
    std::vector<std::pair<int, uint64_t>> by_degree;
    for (uint64_t u = 1; u <= static_cast<uint64_t>(users); u++) {
      by_degree.emplace_back(social.FollowerCount(u), u);
    }
    std::sort(by_degree.rbegin(), by_degree.rend());
    for (size_t i = 0; i < 3 && i < by_degree.size(); i++) {
      celebs.push_back(by_degree[i].second);
    }
  }

  auto cascade_rng = std::make_shared<Rng>(opt.seed ^ 0x6666);
  BoundedParetoSampler width(4, static_cast<uint64_t>(std::max(8, users / 50)), 1.25);
  const int num_triggers = static_cast<int>(measure / Seconds(15)) + 1;
  for (int i = 0; i < num_triggers; i++) {
    const SimTime at = warmup + Seconds(5) + Seconds(15) * i;
    if (at >= warmup + measure - Seconds(5)) {
      break;  // leave room for the wave to resolve inside the window
    }
    schedule.AddSpike(at, 3.0, Seconds(4));
    const uint64_t celeb = celebs[static_cast<size_t>(i) % celebs.size()];
    sim.ScheduleAt(at, [&social, &cluster, celeb, cascade_rng, width] {
      ClientPool& pool = social.clients();
      pool.InjectTo(SocialWorkload::UserActor(celeb), kPost);
      const std::vector<uint64_t>& audience = social.FollowersOfUser(celeb);
      if (audience.empty()) {
        return;
      }
      // Repost wave: Pareto-many followers (with replacement) repost over
      // the next ~second; their posts fan out to their own followers.
      const uint64_t reposts = width.Sample(*cascade_rng);
      for (uint64_t r = 0; r < reposts; r++) {
        const uint64_t who = audience[cascade_rng->NextBounded(audience.size())];
        const SimDuration delay =
            Millis(150) + cascade_rng->NextUniformDuration(0, Millis(850));
        cluster.sim().ScheduleAfter(delay, [&social, who] {
          social.clients().InjectTo(SocialWorkload::UserActor(who), kPost);
        });
      }
    });
  }

  DriveSpec spec;
  spec.name = "viral_social";
  spec.simulated_users = static_cast<uint64_t>(users);
  spec.warmup = warmup;
  spec.measure = measure;
  spec.slo.p99_ms = 200.0;
  spec.slo.max_timeout_rate = 0.02;
  spec.slo.min_goodput_fraction = 0.95;
  spec.on_measure_end = [&social] { social.Stop(); };
  return Drive(&engine, &cluster, &social.clients(), &schedule, spec, opt);
}

// --- reconnect_storm ------------------------------------------------------
// IoT fleet with synchronized reconnect storms: steady telemetry from 200K
// devices, and every 12 s a mass-disconnect sweep (every directory shard
// churns its idle registrations, as after a network partition) immediately
// followed by a synchronized burst of reconnect pushes at one instant.

ScenarioReport RunReconnectStorm(const ScenarioOptions& opt) {
  const int devices = ScaleCount(200000, opt.scale, 2000);
  const double rate = ScaleRate(8000.0, opt.scale, 100.0);
  const auto burst = static_cast<uint64_t>(ScaleCount(15000, opt.scale, 200));

  const ClusterConfig cfg = BaseCluster(8, opt.seed);
  ShardedEngine engine(EngineConfigFor(opt, cfg));
  Cluster cluster(&engine, cfg);
  Simulation& sim = engine.sim();

  HeartbeatWorkloadConfig wl;
  wl.num_monitors = devices;
  wl.request_rate = rate;  // unused (external clients)
  wl.request_bytes = 160;
  wl.handler_compute = Micros(100);
  wl.client_timeout = kClientTimeout;
  wl.external_clients = true;
  wl.seed = opt.seed ^ 0x7777;
  HeartbeatWorkload fleet(&cluster, wl);
  fleet.Start();

  const SimDuration warmup = Phase(opt.scale, 8, 3);
  const SimDuration measure = Phase(opt.scale, 40, 12);
  RateSchedule schedule(rate);
  const int num_storms = opt.scale >= 0.5 ? 3 : 2;
  for (int i = 0; i < num_storms; i++) {
    const SimTime at = warmup + measure / 5 + (measure * 3 / 10) * i;
    // The disconnect sweep is scheduled before Drive() starts the driver,
    // so at the storm instant the churn runs first (engine dispatches
    // same-instant events in scheduling order), then the burst arrives —
    // reconnects hit a directory that just dropped their registrations.
    // Parallel mode: the sweep mutates every server, so it rides the
    // coordinator rail (which also runs before same-instant shard events).
    auto churn_all = [&cluster] {
      for (int s = 0; s < cluster.num_servers(); s++) {
        cluster.ChurnDirectoryShard(static_cast<ServerId>(s));
      }
    };
    if (engine.parallel()) {
      engine.ScheduleRailAt(at, churn_all);
    } else {
      sim.ScheduleAt(at, churn_all);
    }
    schedule.AddBurst(at, burst);
  }

  DriveSpec spec;
  spec.name = "reconnect_storm";
  spec.simulated_users = static_cast<uint64_t>(devices);
  spec.warmup = warmup;
  spec.measure = measure;
  spec.slo.p999_ms = 3000.0;
  spec.slo.max_timeout_rate = 0.01;
  spec.slo.min_goodput_fraction = 0.95;
  spec.on_measure_end = [&fleet] { fleet.Stop(); };
  return Drive(&engine, &cluster, &fleet.clients(), &schedule, spec, opt);
}

// --- halo_launch ----------------------------------------------------------
// Halo presence with both ActOp optimizers on (the paper's full system),
// under a launch-day surge: status requests step to 3x for fifteen seconds
// while matchmaking keeps churning the communication graph. The balance
// invariant (partitioner constraint d) is checked every tick.

ScenarioReport RunHaloLaunch(const ScenarioOptions& opt) {
  const int players = ScaleCount(20000, opt.scale, 800);
  const double rate = ScaleRate(3000.0, opt.scale, 50.0);

  ClusterConfig cfg = BaseCluster(8, opt.seed);
  cfg.enable_partitioning = true;
  // Scaled exchange cadence, as in bench/halo_common.cc.
  cfg.partition.exchange_period = Seconds(1);
  cfg.partition.exchange_min_gap = Seconds(1);
  cfg.partition.max_peers_per_round = 4;
  cfg.partition.pairwise.candidate_set_size = 256;
  cfg.partition.pairwise.balance_delta = 200;
  cfg.partition.edge_sample_capacity = 16384;
  cfg.partition.edge_decay_period = Seconds(10);
  cfg.enable_thread_optimization = true;
  cfg.thread_controller.period = Seconds(1);
  cfg.thread_controller.eta = 100e-6;
  ShardedEngine engine(EngineConfigFor(opt, cfg));
  Cluster cluster(&engine, cfg);

  HaloWorkloadConfig wl;
  wl.target_players = players;
  wl.idle_pool_target = std::max(8, players / 100);
  wl.request_rate = rate;  // unused (external clients)
  wl.request_bytes = 800;
  wl.status_bytes = 1600;
  wl.update_bytes = 1200;
  wl.client_timeout = kClientTimeout;
  wl.external_clients = true;
  wl.seed = opt.seed ^ 0x8888;
  HaloWorkload halo(&cluster, wl);
  halo.Start();
  cluster.StartOptimizers();

  const SimDuration warmup = Phase(opt.scale, 12, 6);
  const SimDuration measure = Phase(opt.scale, 40, 12);
  RateSchedule schedule(rate);
  const SimTime surge_start = warmup + measure / 4;
  schedule.AddStep(surge_start, surge_start + Phase(opt.scale, 15, 4), 3.0);

  DriveSpec spec;
  spec.name = "halo_launch";
  spec.simulated_users = static_cast<uint64_t>(players);
  spec.warmup = warmup;
  spec.measure = measure;
  // Migrations keep flowing after traffic stops, so quiescent-only
  // coherence cannot be asserted; instant checks still run to the end.
  spec.quiescent_check = false;
  spec.balance_delta = cfg.partition.pairwise.balance_delta;
  // Transient drift: in-flight activations plus stale exchange views (the
  // chaos harness uses the same allowance structure).
  spec.balance_slack = cfg.partition.pairwise.balance_delta * 2;
  // Full scale: the 3x surge (9K req/s of 18-message fan-out requests)
  // saturates transiently — p99 ~660 ms against this bound, p50 <10 ms.
  spec.slo.p99_ms = 900.0;
  spec.slo.max_timeout_rate = 0.02;
  spec.slo.min_goodput_fraction = 0.95;
  spec.on_measure_end = [&halo] { halo.Stop(); };
  return Drive(&engine, &cluster, &halo.clients(), &schedule, spec, opt);
}

// --- halo_hyperscale ------------------------------------------------------
// The roadmap's 100x-the-paper scale point as an open-loop SLO scenario:
// 1000 servers hosting a 10M-player Halo presence fleet under a steady
// status-request load. Unlike halo_launch this is not an overload story —
// the offered rate is modest per server — it is a data-plane scale story:
// the flat directory slabs, activation tables and player records have to
// hold 10M live actors while the invariant sweeps (which walk every
// directory entry) stay affordable. Partitioning stays off (the migration
// plane has its own benches and would dominate a K=1000 run); the thread
// optimizer runs on every server as in the full system.

ScenarioReport RunHaloHyperscale(const ScenarioOptions& opt) {
  const int servers = ScaleCount(1000, opt.scale, 4);
  const int players = ScaleCount(10000000, opt.scale, 2000);
  const double rate = ScaleRate(20000.0, opt.scale, 50.0);

  ClusterConfig cfg = BaseCluster(servers, opt.seed);
  cfg.enable_thread_optimization = true;
  cfg.thread_controller.period = Seconds(1);
  cfg.thread_controller.eta = 100e-6;
  ShardedEngine engine(EngineConfigFor(opt, cfg));
  Cluster cluster(&engine, cfg);

  HaloWorkloadConfig wl;
  wl.target_players = players;
  wl.idle_pool_target = std::max(8, players / 100);
  wl.request_rate = rate;  // unused (external clients)
  wl.request_bytes = 800;
  wl.status_bytes = 1600;
  wl.update_bytes = 1200;
  wl.client_timeout = kClientTimeout;
  wl.external_clients = true;
  wl.seed = opt.seed ^ 0x9999;
  HaloWorkload halo(&cluster, wl);
  halo.Start();
  cluster.StartOptimizers();

  // Short phases: the population, not the window length, is the point. The
  // warm-up covers the initial game-formation wave (first-generation game
  // endings desynchronize from t=1s).
  const SimDuration warmup = Phase(opt.scale, 6, 3);
  const SimDuration measure = Phase(opt.scale, 12, 10);
  RateSchedule schedule(rate);

  DriveSpec spec;
  spec.name = "halo_hyperscale";
  spec.simulated_users = static_cast<uint64_t>(players);
  spec.warmup = warmup;
  spec.measure = measure;
  // Each instant sweep walks every directory entry — 10M at full scale — so
  // check at a coarser period than the default 2 s.
  spec.invariant_period = Seconds(4);
  spec.slo.p99_ms = 150.0;
  spec.slo.max_timeout_rate = 0.01;
  spec.slo.min_goodput_fraction = 0.98;
  spec.on_measure_end = [&halo] { halo.Stop(); };
  return Drive(&engine, &cluster, &halo.clients(), &schedule, spec, opt);
}

}  // namespace

const std::vector<ScenarioDef>& ScenarioRegistry() {
  static const std::vector<ScenarioDef> kScenarios = {
      {"diurnal_chat", "chat service under a compressed day/night rate curve", RunDiurnalChat},
      {"flash_crowd", "1M-user presence fleet, launch-day step overload", RunFlashCrowd},
      {"hot_key", "Zipf(1.1) hot-key skew over a 200K-monitor fleet", RunHotKey},
      {"viral_social", "power-law fan-out with viral repost cascades", RunViralSocial},
      {"reconnect_storm", "IoT fleet with synchronized reconnect storms", RunReconnectStorm},
      {"halo_launch", "Halo presence (ActOp on) under a launch surge", RunHaloLaunch},
      {"halo_hyperscale", "1000-server / 10M-player Halo fleet at steady load",
       RunHaloHyperscale},
  };
  return kScenarios;
}

const ScenarioDef* FindScenario(const std::string& name) {
  for (const ScenarioDef& def : ScenarioRegistry()) {
    if (name == def.name) {
      return &def;
    }
  }
  return nullptr;
}

}  // namespace actop
