// Open-loop driver: feeds a ClientPool from a non-homogeneous Poisson
// arrival process plus synchronized bursts.
//
// Closed-loop clients (N users, think time, wait-for-reply) self-limit under
// overload: when the service slows down, arrivals slow down with it, so tail
// latency and shed rates under a flash crowd are literally inexpressible.
// This driver is the opposite contract — the schedule alone decides when
// requests enter the system, responses never gate arrivals — which is how
// the "dynamic interactive services" traffic the paper targets actually
// behaves, and what the scenario SLO reports measure.
//
// The driver never calls pool->Start(): construct the workload with
// `external_clients = true` (or Stop() its pool before running) so the
// schedule is the only arrival source.

#ifndef SRC_LOAD_OPEN_LOOP_H_
#define SRC_LOAD_OPEN_LOOP_H_

#include <cstdint>

#include "src/load/arrival.h"
#include "src/load/rate_schedule.h"
#include "src/runtime/client.h"
#include "src/sim/simulation.h"

namespace actop {

class OpenLoopDriver {
 public:
  // `schedule` and `pool` must outlive the driver.
  OpenLoopDriver(Simulation* sim, ClientPool* pool, const RateSchedule* schedule, uint64_t seed);

  // Schedules the Poisson arrival chain and every SyncBurst. Call once.
  void Start();
  // No further arrivals after this (the in-flight chain event self-cancels).
  void Stop();

  // Arrival events delivered to the pool so far (Poisson + burst). The pool's
  // own issued() can be lower: a TargetFn may skip an arrival (e.g. Halo
  // before any player is in a game).
  uint64_t arrivals() const { return arrivals_; }
  uint64_t burst_arrivals() const { return burst_arrivals_; }

 private:
  void OnArrival();
  void ScheduleNext();

  Simulation* sim_;
  ClientPool* pool_;
  const RateSchedule* schedule_;
  ArrivalProcess process_;
  bool running_ = false;
  uint64_t arrivals_ = 0;
  uint64_t burst_arrivals_ = 0;
};

}  // namespace actop

#endif  // SRC_LOAD_OPEN_LOOP_H_
