#include "src/load/rate_schedule.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace actop {

RateSchedule::RateSchedule(double base_rate_per_s) : base_rate_(base_rate_per_s) {
  ACTOP_CHECK(base_rate_per_s > 0.0);
}

RateSchedule& RateSchedule::AddDiurnal(SimDuration period, double amplitude, double phase) {
  ACTOP_CHECK(period > 0);
  ACTOP_CHECK(amplitude >= 0.0 && amplitude < 1.0);
  diurnal_.push_back(DiurnalCycle{period, amplitude, phase});
  return *this;
}

RateSchedule& RateSchedule::AddStep(SimTime start, SimTime end, double factor) {
  ACTOP_CHECK(start < end);
  ACTOP_CHECK(factor >= 0.0);
  steps_.push_back(RateStep{start, end, factor});
  return *this;
}

RateSchedule& RateSchedule::AddSpike(SimTime at, double factor, SimDuration decay) {
  ACTOP_CHECK(factor >= 1.0);
  ACTOP_CHECK(decay > 0);
  spikes_.push_back(RateSpike{at, factor, decay});
  return *this;
}

RateSchedule& RateSchedule::AddBurst(SimTime at, uint64_t count) {
  ACTOP_CHECK(count > 0);
  bursts_.push_back(SyncBurst{at, count});
  return *this;
}

double RateSchedule::RateAt(SimTime t) const {
  double rate = base_rate_;
  for (const DiurnalCycle& d : diurnal_) {
    const double angle =
        2.0 * M_PI * static_cast<double>(t) / static_cast<double>(d.period) + d.phase;
    rate *= 1.0 + d.amplitude * std::sin(angle);
  }
  for (const RateStep& s : steps_) {
    if (t >= s.start && t < s.end) {
      rate *= s.factor;
    }
  }
  for (const RateSpike& s : spikes_) {
    if (t >= s.at) {
      const double age = static_cast<double>(t - s.at) / static_cast<double>(s.decay);
      rate *= 1.0 + (s.factor - 1.0) * std::exp(-age);
    }
  }
  return rate;
}

double RateSchedule::PeakRate() const {
  double peak = base_rate_;
  for (const DiurnalCycle& d : diurnal_) {
    peak *= 1.0 + d.amplitude;
  }
  for (const RateStep& s : steps_) {
    peak *= std::max(1.0, s.factor);
  }
  for (const RateSpike& s : spikes_) {
    peak *= s.factor;  // factor >= 1 by construction
  }
  return peak;
}

double RateSchedule::ExpectedArrivals(SimTime t0, SimTime t1) const {
  ACTOP_CHECK(t0 <= t1);
  if (t0 == t1) {
    return 0.0;
  }
  // 4096 trapezoids resolve every component we compose (the shortest
  // features are spikes with decay >= milliseconds over windows of seconds).
  constexpr int kSteps = 4096;
  const double span_ns = static_cast<double>(t1 - t0);
  const double dt_ns = span_ns / kSteps;
  double sum = 0.5 * (RateAt(t0) + RateAt(t1));
  for (int i = 1; i < kSteps; i++) {
    sum += RateAt(t0 + static_cast<SimTime>(dt_ns * i));
  }
  // Rates are per second; dt is in nanoseconds.
  return sum * dt_ns * 1e-9;
}

uint64_t RateSchedule::BurstArrivals(SimTime t0, SimTime t1) const {
  uint64_t total = 0;
  for (const SyncBurst& b : bursts_) {
    if (b.at >= t0 && b.at < t1) {
      total += b.count;
    }
  }
  return total;
}

}  // namespace actop
