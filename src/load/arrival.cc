#include "src/load/arrival.h"

#include "src/common/check.h"

namespace actop {

ArrivalProcess::ArrivalProcess(const RateSchedule* schedule, uint64_t seed)
    : schedule_(schedule), rng_(seed) {
  ACTOP_CHECK(schedule != nullptr);
  peak_rate_ = schedule_->PeakRate();
  ACTOP_CHECK(peak_rate_ > 0.0);
  mean_gap_ns_ = 1e9 / peak_rate_;
}

SimTime ArrivalProcess::NextAfter(SimTime from) {
  SimTime t = from;
  while (true) {
    // Candidate gaps are at least 1 ns so time always advances (the engine
    // orders same-instant events by sequence number anyway, but a stuck
    // clock would spin this loop forever at extreme rates).
    const auto gap = static_cast<SimDuration>(rng_.NextExp(mean_gap_ns_) + 0.5);
    t += gap > 0 ? gap : 1;
    if (rng_.NextDouble() * peak_rate_ < schedule_->RateAt(t)) {
      return t;
    }
  }
}

}  // namespace actop
