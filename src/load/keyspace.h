// Key-popularity distributions for open-loop scenarios.
//
// ZipfSampler draws keys k in [1, n] with P(k) proportional to k^-s — the
// hot-key skew of interactive services (a few rooms, leaderboards or devices
// absorb most of the traffic). Implementation is rejection-inversion
// (Hörmann & Derflinger 1996): O(1) per sample with no table, so n can be
// millions of keys without precomputation, and the acceptance loop runs at
// most a handful of iterations for any exponent.
//
// BoundedParetoSampler draws power-law sizes in [lo, hi] by CDF inversion —
// viral-cascade widths and social fan-outs whose tail matters but must stay
// bounded by the population.
//
// Both samplers are pure functions of the caller's Rng, so the same seed
// reproduces the same key stream (the scenario determinism tests rely on
// this), and tests/load/keyspace_stat_test.cc checks the realized
// frequencies against the analytic distributions.

#ifndef SRC_LOAD_KEYSPACE_H_
#define SRC_LOAD_KEYSPACE_H_

#include <cstdint>

#include "src/common/rng.h"

namespace actop {

class ZipfSampler {
 public:
  // exponent == 0 degenerates to uniform over [1, n].
  ZipfSampler(uint64_t n, double exponent);

  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double exponent() const { return exponent_; }

  // P(k) for the exact distribution, computed by brute-force normalization —
  // O(n), for tests and report annotations only.
  double Probability(uint64_t k) const;

 private:
  double HIntegral(double x) const;
  double HIntegralInverse(double x) const;
  double H(double x) const;

  uint64_t n_;
  double exponent_;
  double h_integral_x1_ = 0.0;
  double h_integral_n_ = 0.0;
  double s_ = 0.0;
};

class BoundedParetoSampler {
 public:
  // Power-law with tail exponent `alpha` (> 0) truncated to [lo, hi].
  BoundedParetoSampler(uint64_t lo, uint64_t hi, double alpha);

  uint64_t Sample(Rng& rng) const;

  // P(X > x) for the underlying continuous distribution (tests).
  double Ccdf(double x) const;

 private:
  uint64_t lo_;
  uint64_t hi_;
  double alpha_;
  double lo_pow_;   // lo^alpha
  double ratio_;    // 1 - (lo/hi)^alpha
};

}  // namespace actop

#endif  // SRC_LOAD_KEYSPACE_H_
