#include "src/load/report.h"

#include <cinttypes>
#include <cstdio>

namespace actop {

namespace {

// Fixed-precision, locale-independent double formatting: the same value
// always renders to the same bytes, which the determinism test depends on.
std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string Num(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

void Fail(ScenarioReport* r, const std::string& what) { r->slo_failures.push_back(what); }

}  // namespace

bool EvaluateSlo(ScenarioReport* report) {
  report->slo_failures.clear();
  const SloSpec& slo = report->slo;
  if (slo.p50_ms > 0.0 && report->p50_ms > slo.p50_ms) {
    Fail(report, "p50 " + Num(report->p50_ms) + " ms > bound " + Num(slo.p50_ms) + " ms");
  }
  if (slo.p99_ms > 0.0 && report->p99_ms > slo.p99_ms) {
    Fail(report, "p99 " + Num(report->p99_ms) + " ms > bound " + Num(slo.p99_ms) + " ms");
  }
  if (slo.p999_ms > 0.0 && report->p999_ms > slo.p999_ms) {
    Fail(report, "p999 " + Num(report->p999_ms) + " ms > bound " + Num(slo.p999_ms) + " ms");
  }
  if (slo.max_timeout_rate >= 0.0 && report->timeout_rate > slo.max_timeout_rate) {
    Fail(report, "timeout rate " + Num(report->timeout_rate) + " > bound " +
                     Num(slo.max_timeout_rate));
  }
  if (slo.max_shed_rate >= 0.0 && report->shed_rate > slo.max_shed_rate) {
    Fail(report, "shed rate " + Num(report->shed_rate) + " > bound " + Num(slo.max_shed_rate));
  }
  if (slo.min_goodput_fraction >= 0.0 && report->issued > 0) {
    const double fraction =
        static_cast<double>(report->completed) / static_cast<double>(report->issued);
    if (fraction < slo.min_goodput_fraction) {
      Fail(report, "goodput fraction " + Num(fraction) + " < bound " +
                       Num(slo.min_goodput_fraction));
    }
  }
  if (report->invariant_violations > 0) {
    Fail(report, Num(report->invariant_violations) + " invariant violations");
  }
  return report->slo_failures.empty();
}

std::string ScenarioReportToJson(const ScenarioReport& r) {
  std::string out;
  out.reserve(2048);
  auto field = [&out](const char* key, const std::string& value, bool quoted = false) {
    out += "  \"";
    out += key;
    out += "\": ";
    if (quoted) {
      out += '"';
      out += value;
      out += '"';
    } else {
      out += value;
    }
    out += ",\n";
  };

  out += "{\n";
  field("schema", kScenarioReportSchema, /*quoted=*/true);
  field("scenario", r.scenario, /*quoted=*/true);
  field("seed", Num(r.seed));
  field("scale", Num(r.scale));
  field("simulated_users", Num(r.simulated_users));
  field("num_servers", Num(static_cast<uint64_t>(r.num_servers)));
  out += "  \"sim_seconds\": {\"warmup\": " + Num(r.warmup_s) + ", \"measure\": " +
         Num(r.measure_s) + ", \"drain\": " + Num(r.drain_s) + "},\n";
  out += "  \"arrivals\": {\"total\": " + Num(r.arrivals) + ", \"burst\": " +
         Num(r.burst_arrivals) + ", \"issued\": " + Num(r.issued) + ", \"completed\": " +
         Num(r.completed) + ", \"timeouts\": " + Num(r.timeouts) + ", \"stage_rejections\": " +
         Num(r.stage_rejections) + "},\n";
  out += "  \"rates\": {\"offered_per_s\": " + Num(r.offered_per_s) + ", \"peak_per_s\": " +
         Num(r.peak_rate_per_s) + ", \"goodput_per_s\": " + Num(r.goodput_per_s) +
         ", \"timeout_rate\": " + Num(r.timeout_rate) + ", \"shed_rate\": " + Num(r.shed_rate) +
         "},\n";
  out += "  \"latency_ms\": {\"p50\": " + Num(r.p50_ms) + ", \"p99\": " + Num(r.p99_ms) +
         ", \"p999\": " + Num(r.p999_ms) + ", \"mean\": " + Num(r.mean_ms) + ", \"max\": " +
         Num(r.max_ms) + "},\n";
  out += "  \"invariants\": {\"checks\": " + Num(r.invariant_checks) + ", \"violations\": " +
         Num(r.invariant_violations) + "},\n";
  out += "  \"chaos\": {\"enabled\": " + std::string(r.chaos ? "true" : "false") +
         ", \"crashes\": " + Num(r.chaos_crashes) + ", \"directory_churns\": " +
         Num(r.chaos_directory_churns) + ", \"dropped_messages\": " +
         Num(r.chaos_dropped_messages) + "},\n";
  out += "  \"allocs\": {\"measured\": " + std::string(r.allocs_measured ? "true" : "false") +
         ", \"measure_events\": " + Num(r.measure_events) + ", \"measure_allocs\": " +
         Num(r.measure_allocs) + ", \"allocs_per_event\": " + Num(r.allocs_per_event) + "},\n";
  out += "  \"slo\": {\"p50_ms\": " + Num(r.slo.p50_ms) + ", \"p99_ms\": " + Num(r.slo.p99_ms) +
         ", \"p999_ms\": " + Num(r.slo.p999_ms) + ", \"max_timeout_rate\": " +
         Num(r.slo.max_timeout_rate) + ", \"max_shed_rate\": " + Num(r.slo.max_shed_rate) +
         ", \"min_goodput_fraction\": " + Num(r.slo.min_goodput_fraction) + "},\n";
  out += "  \"slo_ok\": " + std::string(r.slo_failures.empty() ? "true" : "false") + ",\n";
  out += "  \"slo_failures\": [";
  for (size_t i = 0; i < r.slo_failures.size(); i++) {
    if (i > 0) {
      out += ", ";
    }
    out += '"';
    out += r.slo_failures[i];
    out += '"';
  }
  out += "]\n}\n";
  return out;
}

}  // namespace actop
