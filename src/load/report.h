// Machine-readable scenario reports with SLO evaluation.
//
// Every scenario run produces one ScenarioReport, serialized as a single
// canonical JSON document: fixed field order, fixed number formatting, no
// wall-clock content — so "same scenario + same seed" is byte-identical
// across runs, which tests/load/scenario_determinism_test.cc enforces.
//
// Reports are NOT bench baselines: the schema marker below is what
// scripts/perf_gate.sh keys on to refuse a scenario report offered as a
// BENCH_*.baseline.json.

#ifndef SRC_LOAD_REPORT_H_
#define SRC_LOAD_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace actop {

inline constexpr const char* kScenarioReportSchema = "actop-scenario-report-v1";

// SLO bounds for one scenario. A negative/zero bound means "not asserted".
struct SloSpec {
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double max_timeout_rate = -1.0;       // timeouts / issued
  double max_shed_rate = -1.0;          // stage rejections / issued
  double min_goodput_fraction = -1.0;   // completed / issued
};

struct ScenarioReport {
  std::string scenario;
  uint64_t seed = 0;
  double scale = 1.0;
  uint64_t simulated_users = 0;
  int num_servers = 0;

  // Simulated phase durations (seconds).
  double warmup_s = 0.0;
  double measure_s = 0.0;
  double drain_s = 0.0;

  // Arrival accounting over the measure window (completions/timeouts of
  // measure-window requests resolved during the drain are included).
  uint64_t arrivals = 0;          // open-loop arrival events (incl. bursts)
  uint64_t burst_arrivals = 0;
  uint64_t issued = 0;
  uint64_t completed = 0;
  uint64_t timeouts = 0;
  uint64_t stage_rejections = 0;

  double offered_per_s = 0.0;     // issued / measure_s
  double peak_rate_per_s = 0.0;   // schedule envelope (PeakRate)
  double goodput_per_s = 0.0;     // completed / measure_s
  double timeout_rate = 0.0;
  double shed_rate = 0.0;

  // Client-observed latency percentiles (milliseconds).
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double mean_ms = 0.0;
  double max_ms = 0.0;

  // Invariant checking (always on; chaos adds fault injection).
  uint64_t invariant_checks = 0;
  uint64_t invariant_violations = 0;
  bool chaos = false;
  uint64_t chaos_crashes = 0;
  uint64_t chaos_directory_churns = 0;
  uint64_t chaos_dropped_messages = 0;

  // Allocs/event over the measure window (PR-5 accounting); only the
  // scenario_runner binary, which owns the counting allocator, measures it.
  bool allocs_measured = false;
  uint64_t measure_events = 0;
  uint64_t measure_allocs = 0;
  double allocs_per_event = 0.0;

  SloSpec slo;
  std::vector<std::string> slo_failures;  // filled by EvaluateSlo
};

// Checks the report against its own SloSpec plus the structural requirement
// of zero invariant violations; fills slo_failures. Returns true when clean.
bool EvaluateSlo(ScenarioReport* report);

// Canonical single-document JSON (ends with a newline).
std::string ScenarioReportToJson(const ScenarioReport& report);

}  // namespace actop

#endif  // SRC_LOAD_REPORT_H_
