// Non-homogeneous Poisson arrival process over a RateSchedule.
//
// Uses Lewis & Shedler thinning: candidate arrivals are drawn from a
// homogeneous Poisson process at the schedule's peak rate and accepted with
// probability rate(t)/peak. The rejection loop is internal — the simulation
// only ever sees accepted arrivals — and the output stream is exactly
// Poisson with intensity RateAt(t), which is what the statistical
// acceptance tests in tests/load/ verify.
//
// Determinism: one Rng seeded at construction fully determines the arrival
// sequence; the process never consults wall clock or global state.

#ifndef SRC_LOAD_ARRIVAL_H_
#define SRC_LOAD_ARRIVAL_H_

#include <cstdint>

#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/load/rate_schedule.h"

namespace actop {

class ArrivalProcess {
 public:
  // `schedule` must outlive the process.
  ArrivalProcess(const RateSchedule* schedule, uint64_t seed);

  // The first arrival strictly after `from`. Successive calls with the
  // previous arrival time walk the whole stream.
  SimTime NextAfter(SimTime from);

 private:
  const RateSchedule* schedule_;
  Rng rng_;
  double peak_rate_;
  double mean_gap_ns_;  // candidate gap at the peak rate
};

}  // namespace actop

#endif  // SRC_LOAD_ARRIVAL_H_
