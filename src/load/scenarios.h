// The open-loop scenario fleet.
//
// Each scenario composes a RateSchedule (diurnal swing, flash-crowd step,
// viral spike, synchronized reconnect burst) with a key-popularity
// distribution over one of the existing workloads (chat, social, heartbeat
// IoT/presence fleet, Halo presence) and drives it open-loop at up to
// millions of simulated users, measuring SLO-style percentiles, timeout and
// shed rates, and goodput into a deterministic ScenarioReport.
//
// Scenarios scale with one knob: `scale` multiplies the user population and
// the offered rate while the cluster stays fixed, so smoke runs (tier-1
// ctest, scale ~0.02, seconds of wall time) exercise every code path and
// full runs (perf/scenario configuration, scale 1.0) produce the
// publication-shape overload behaviour. Invariant checking (PR 1) is always
// on; `chaos` additionally injects crashes/drops/delays/churn during the
// measure window.
//
// Registry:
//   diurnal_chat     chat service under a compressed day/night rate curve
//   flash_crowd      1M-user presence-status fleet, launch-day step overload
//   hot_key          Zipf hot-key skew concentrating traffic on few actors
//   viral_social     power-law fan-out with viral repost cascades
//   reconnect_storm  IoT fleet with synchronized reconnect storms
//   halo_launch      Halo presence (both ActOp optimizers on), launch surge
//   halo_hyperscale  1000-server / 10M-player Halo fleet at steady load

#ifndef SRC_LOAD_SCENARIOS_H_
#define SRC_LOAD_SCENARIOS_H_

#include <functional>
#include <string>
#include <vector>

#include "src/load/report.h"

namespace actop {

struct ScenarioOptions {
  double scale = 1.0;   // user population & rate multiplier (1.0 = full)
  uint64_t seed = 1;
  bool chaos = false;   // inject faults during the measure window
  // Engine shards (worker threads). 1 = the serial engine, byte-identical
  // reports to the historical harness; >1 runs the cluster partitioned
  // across shards under conservative time-window synchronization —
  // deterministic for a fixed thread count (clamped to the server count).
  int threads = 1;
  // Snapshot hook for allocs/event accounting (PR-5 measure-window
  // discipline): returns the binary's global allocation count. Only the
  // scenario_runner binary, which replaces operator new, wires this.
  std::function<uint64_t()> alloc_counter;
};

using ScenarioFn = ScenarioReport (*)(const ScenarioOptions&);

struct ScenarioDef {
  const char* name;
  const char* summary;
  ScenarioFn run;
};

const std::vector<ScenarioDef>& ScenarioRegistry();
const ScenarioDef* FindScenario(const std::string& name);

}  // namespace actop

#endif  // SRC_LOAD_SCENARIOS_H_
