// Time-varying arrival-rate curves for open-loop traffic generation.
//
// A RateSchedule is a base rate (requests per second) modulated by a product
// of independent components, each a multiplier >= 0 at every instant:
//
//   * DiurnalCycle — 1 + amplitude * sin(2*pi*t/period + phase): the day/night
//     swing of an interactive service, compressed into simulation seconds.
//   * RateStep     — `factor` inside [start, end), 1 outside: a flash crowd
//     that arrives and stays (launch day, a failover absorbing a region).
//   * RateSpike    — 1 + (factor-1) * exp(-(t-at)/decay) for t >= at: a viral
//     event whose traffic surges instantly and decays exponentially.
//
// Because the components multiply, the peak of the product is bounded by the
// product of per-component maxima, which gives the thinning sampler in
// arrival.h a cheap, correct envelope (PeakRate()).
//
// SyncBurst entries are not part of the rate function: they model
// synchronized arrivals at one instant (an IoT fleet reconnecting after an
// outage, a push notification waking every client at once) and are issued
// verbatim by the OpenLoopDriver on top of the Poisson stream.

#ifndef SRC_LOAD_RATE_SCHEDULE_H_
#define SRC_LOAD_RATE_SCHEDULE_H_

#include <cstdint>
#include <vector>

#include "src/common/sim_time.h"

namespace actop {

struct DiurnalCycle {
  SimDuration period = 0;
  double amplitude = 0.0;  // in [0, 1): multiplier stays positive
  double phase = 0.0;      // radians
};

struct RateStep {
  SimTime start = 0;
  SimTime end = 0;     // exclusive
  double factor = 1.0; // >= 0
};

struct RateSpike {
  SimTime at = 0;
  double factor = 1.0;     // instantaneous multiplier at `at` (>= 1)
  SimDuration decay = 0;   // exponential decay time constant (> 0)
};

struct SyncBurst {
  SimTime at = 0;
  uint64_t count = 0;  // simultaneous arrivals injected at `at`
};

class RateSchedule {
 public:
  explicit RateSchedule(double base_rate_per_s);

  RateSchedule& AddDiurnal(SimDuration period, double amplitude, double phase = 0.0);
  RateSchedule& AddStep(SimTime start, SimTime end, double factor);
  RateSchedule& AddSpike(SimTime at, double factor, SimDuration decay);
  RateSchedule& AddBurst(SimTime at, uint64_t count);

  // Instantaneous rate in requests per second at simulated time `t`.
  double RateAt(SimTime t) const;

  // Upper bound on RateAt over all t (product of per-component maxima).
  double PeakRate() const;

  // Expected number of Poisson arrivals in [t0, t1): the integral of RateAt,
  // evaluated by fixed-step trapezoidal quadrature (deterministic; used by
  // the statistical acceptance tests and the scenario reports). Burst
  // arrivals are not included — see BurstArrivals.
  double ExpectedArrivals(SimTime t0, SimTime t1) const;

  // Sum of SyncBurst counts with `at` in [t0, t1).
  uint64_t BurstArrivals(SimTime t0, SimTime t1) const;

  double base_rate() const { return base_rate_; }
  const std::vector<SyncBurst>& bursts() const { return bursts_; }

 private:
  double base_rate_;
  std::vector<DiurnalCycle> diurnal_;
  std::vector<RateStep> steps_;
  std::vector<RateSpike> spikes_;
  std::vector<SyncBurst> bursts_;
};

}  // namespace actop

#endif  // SRC_LOAD_RATE_SCHEDULE_H_
