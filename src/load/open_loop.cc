#include "src/load/open_loop.h"

#include "src/common/check.h"

namespace actop {

OpenLoopDriver::OpenLoopDriver(Simulation* sim, ClientPool* pool, const RateSchedule* schedule,
                               uint64_t seed)
    : sim_(sim), pool_(pool), schedule_(schedule), process_(schedule, seed) {
  ACTOP_CHECK(sim != nullptr);
  ACTOP_CHECK(pool != nullptr);
}

void OpenLoopDriver::Start() {
  ACTOP_CHECK(!running_);
  running_ = true;
  ScheduleNext();
  for (const SyncBurst& burst : schedule_->bursts()) {
    ACTOP_CHECK(burst.at >= sim_->now());
    sim_->ScheduleAt(burst.at, [this, count = burst.count] {
      if (!running_) {
        return;
      }
      // All `count` requests enter at the same instant — the synchronized
      // reconnect/push-notification shape. The engine dispatches their send
      // events in scheduling order, so the storm is deterministic.
      for (uint64_t i = 0; i < count; i++) {
        pool_->Inject();
      }
      arrivals_ += count;
      burst_arrivals_ += count;
    });
  }
}

void OpenLoopDriver::Stop() { running_ = false; }

void OpenLoopDriver::ScheduleNext() {
  const SimTime next = process_.NextAfter(sim_->now());
  sim_->ScheduleAt(next, [this] {
    if (!running_) {
      return;
    }
    OnArrival();
    ScheduleNext();
  });
}

void OpenLoopDriver::OnArrival() {
  arrivals_++;
  pool_->Inject();
}

}  // namespace actop
