// Halo Presence workload (§3 and §6.1).
//
// Presence service for a multi-player game: games and players are actors.
// Per client status request about a player p in game g:
//     client -> p.GetStatus -> g.GetGameStatus -> broadcast Update to the
//     game's 8 players -> 8 replies -> g replies -> p replies -> client,
// i.e. 18 actor-to-actor messages per request, matching the paper.
//
// Session dynamics (§6.1, durations time-scaled by `time_scale`):
//   * idle players sit in a matchmaking pool; 8 random players start a game;
//   * game duration uniform in [20, 30] minutes;
//   * a player plays 3–5 games, then leaves and is replaced by a fresh
//     arrival (keeping the concurrent-player population at the target);
//   * the resulting communication-graph churn is ~1% of edges per scaled
//     minute, the paper's figure.
//
// Matchmaking runs on a driver node (DirectClient) issuing StartGame /
// EndGame calls; the game actor then calls SetGame on each member, so all
// membership changes flow through real messages and are visible to the
// edge monitor.

#ifndef SRC_WORKLOAD_HALO_PRESENCE_H_
#define SRC_WORKLOAD_HALO_PRESENCE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/flat_hash_map.h"
#include "src/common/ids.h"
#include "src/common/rng.h"
#include "src/runtime/client.h"
#include "src/runtime/cluster.h"

namespace actop {

inline constexpr ActorType kPlayerActorType = 3;
inline constexpr ActorType kGameActorType = 4;

// Player methods.
inline constexpr MethodId kGetStatus = 0;   // client entry point
inline constexpr MethodId kSetGame = 1;     // game -> player (app_data = game id or 0)
inline constexpr MethodId kUpdate = 2;      // game -> player broadcast
// Game methods.
inline constexpr MethodId kGameStatus = 0;  // player -> game
inline constexpr MethodId kStartGame = 1;   // driver -> game
inline constexpr MethodId kEndGame = 2;     // driver -> game

struct HaloWorkloadConfig {
  int target_players = 10000;   // paper: 100K (scaled default: 10K)
  int players_per_game = 8;
  // Paper durations are 20-30 min games; time_scale compresses them (0.04 ->
  // 48-72 s) while preserving the ratio of graph churn to the partitioner's
  // scaled exchange period (paper: ~25 exchange periods per game).
  double time_scale = 0.04;
  SimDuration game_duration_min = Minutes(20);  // multiplied by time_scale
  SimDuration game_duration_max = Minutes(30);
  int min_games_per_player = 3;
  int max_games_per_player = 5;
  // Idle pool target (paper: 1000 of 100K = 1%).
  int idle_pool_target = 100;

  double request_rate = 3000.0;  // client status requests per second
  uint32_t request_bytes = 256;
  uint32_t status_bytes = 400;   // game status payloads
  uint32_t update_bytes = 300;   // broadcast payloads

  SimDuration player_compute = Micros(30);
  SimDuration game_compute = Micros(40);
  SimDuration client_timeout = Seconds(10);
  // When true, matchmaking runs normally but the status-request pool is
  // never self-started: arrivals come through ClientPool::Inject from an
  // external open-loop driver (src/load/).
  bool external_clients = false;
  uint64_t seed = 31;
};

// Shared state between the driver and the actors (matchmaking table).
//
// Under the sharded engine the driver (shard 0) inserts rosters while game
// actors on other shards read and erase them, so the roster table is only
// reachable through the mutex-guarded helpers; the counters are relaxed
// atomics (bumped from actor turns on any shard, read only after a drain).
// Serial runs take the same code path — the mutex is uncontended.
struct HaloState {
  // Installs the roster for `key` (driver, before StartGame). Game keys are
  // monotone and never reused.
  void PutRoster(uint64_t key, const std::vector<ActorId>& members);
  // Copies the roster for `key` into `out`; the entry must exist.
  void ReadRoster(uint64_t key, std::vector<ActorId>* out) const;
  // Copies the roster for `key` into `out` and erases the entry.
  void TakeRoster(uint64_t key, std::vector<ActorId>* out);

  std::atomic<uint64_t> broadcasts{0};  // completed game broadcasts (test oracle)
  std::atomic<uint64_t> updates{0};     // player Update turns executed

 private:
  static constexpr uint32_t kNilSlot = 0xFFFFFFFFu;

  // Rosters live in a slab of recycled slots — each slot keeps its member
  // vector's buffer across the games it hosts, so the continuous game churn
  // allocates nothing at steady state — indexed by an open-addressing map.
  // The table is never iterated; at Halo scale it holds ~players/8 entries.
  struct RosterSlot {
    std::vector<ActorId> members;
    uint32_t free_next = kNilSlot;
  };

  mutable std::mutex mu_;
  std::vector<RosterSlot> roster_slots_;
  uint32_t roster_free_ = kNilSlot;
  FlatHashMap<uint64_t, uint32_t> roster_index_;
};

class HaloWorkload {
 public:
  HaloWorkload(Cluster* cluster, HaloWorkloadConfig config);
  ~HaloWorkload();

  // Populates the initial player base and begins matchmaking + client load.
  void Start();
  void Stop();

  ClientPool& clients() { return clients_; }
  const HaloState& state() const { return *state_; }

  int64_t concurrent_players() const { return static_cast<int64_t>(players_.size()); }
  int64_t active_games() const { return active_games_; }
  uint64_t games_started() const { return games_started_; }
  uint64_t players_departed() const { return players_departed_; }

 private:
  static constexpr uint32_t kNoSlot = 0xFFFFFFFFu;

  // One flat record per live player: remaining games plus the player's slot
  // in in_game_players_ (kNoSlot while idle) — replaces the two node maps
  // (player info + in-game index) this table used to span, halving both the
  // per-player footprint and the lookups per membership change.
  struct PlayerRec {
    int32_t games_left = 0;
    uint32_t slot = kNoSlot;
  };

  void AddNewPlayer();
  void TryFormGames();
  void StartGame(const std::vector<ActorId>& members);
  void FinishGame(uint64_t game_key);
  SimDuration ScaledUniform(SimDuration lo, SimDuration hi);
  bool PickTarget(Rng& rng, ActorId* target, MethodId* method);

  Cluster* cluster_;
  HaloWorkloadConfig config_;
  Rng rng_;
  std::shared_ptr<HaloState> state_;
  ClientPool clients_;
  DirectClient driver_;

  FlatHashMap<ActorId, PlayerRec> players_;  // all live players
  std::vector<ActorId> idle_pool_;
  std::vector<ActorId> in_game_players_;  // sampled by the client target fn
  // Scratch rosters reused across games: TryFormGames assembles the next
  // game's members here, FinishGame copies the ending game's roster out of
  // state_->rosters here (the roster entry itself is erased later, by the
  // game actor's EndGame turn).
  std::vector<ActorId> members_scratch_;
  std::vector<ActorId> finish_scratch_;
  bool started_clients_ = false;
  bool first_generation_ = true;
  uint64_t next_player_key_ = 1;
  uint64_t next_game_key_ = 1;
  int64_t active_games_ = 0;
  uint64_t games_started_ = 0;
  uint64_t players_departed_ = 0;
  bool running_ = false;
};

}  // namespace actop

#endif  // SRC_WORKLOAD_HALO_PRESENCE_H_
