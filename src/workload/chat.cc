#include "src/workload/chat.h"

#include <utility>

#include "src/actor/actor.h"
#include "src/common/check.h"
#include "src/workload/fanout_counter.h"

namespace actop {

namespace {

class ChatUserActor : public Actor {
 public:
  ChatUserActor(std::shared_ptr<ChatState> state, const ChatWorkloadConfig* config)
      : state_(std::move(state)), config_(config) {}

  void OnCall(CallContext& ctx) override {
    switch (ctx.method()) {
      case kPostMessage: {
        if (room_ == kNoActor) {
          ctx.Reply(16);
          return;
        }
        CallContext* call = &ctx;
        ctx.Call(room_, kBroadcast, config_->message_bytes, [call, this](const Response&) {
          state_->messages_posted.fetch_add(1, std::memory_order_relaxed);
          call->Reply(32);
        });
        return;
      }
      case kNotify: {
        state_->notifications.fetch_add(1, std::memory_order_relaxed);
        ctx.Reply(16);
        return;
      }
      case kJoinRoom: {
        const uint64_t room_key = ctx.app_data();
        const ActorId new_room =
            room_key == 0 ? kNoActor : MakeActorId(kChatRoomActorType, room_key);
        const ActorId old_room = room_;
        room_ = new_room;
        const uint64_t my_key = ActorKeyOf(ctx.self());
        auto remaining = MakeFanoutCounter((old_room != kNoActor ? 1 : 0) +
                                           (new_room != kNoActor ? 1 : 0));
        if (*remaining == 0) {
          ctx.Reply(16);
          return;
        }
        CallContext* call = &ctx;
        auto step = [call, remaining](const Response&) {
          if (--*remaining == 0) {
            call->Reply(16);
          }
        };
        if (old_room != kNoActor) {
          ctx.CallWithData(old_room, kRemoveMember, my_key, 64, step);
        }
        if (new_room != kNoActor) {
          ctx.CallWithData(new_room, kAddMember, my_key, 64, step);
        }
        return;
      }
      default:
        ctx.Reply(16);
    }
  }

 private:
  std::shared_ptr<ChatState> state_;
  const ChatWorkloadConfig* config_;
  ActorId room_ = kNoActor;
};

class ChatRoomActor : public Actor {
 public:
  ChatRoomActor(std::shared_ptr<ChatState> state, const ChatWorkloadConfig* config)
      : state_(std::move(state)), config_(config) {}

  void OnCall(CallContext& ctx) override {
    switch (ctx.method()) {
      case kBroadcast: {
        if (members_.empty()) {
          ctx.Reply(16);
          return;
        }
        // Fan the message out one-way: chat delivery does not block the
        // poster on every member ack.
        for (const ActorId member : members_) {
          if (member != ctx.caller()) {
            ctx.CallOneWay(member, kNotify, config_->message_bytes);
          }
        }
        ctx.AddCompute(static_cast<SimDuration>(members_.size()) * Micros(2));
        ctx.Reply(32);
        return;
      }
      case kAddMember: {
        members_.push_back(MakeActorId(kChatUserActorType, ctx.app_data()));
        ctx.Reply(16);
        return;
      }
      case kRemoveMember: {
        const ActorId user = MakeActorId(kChatUserActorType, ctx.app_data());
        for (size_t i = 0; i < members_.size(); i++) {
          if (members_[i] == user) {
            members_[i] = members_.back();
            members_.pop_back();
            break;
          }
        }
        ctx.Reply(16);
        return;
      }
      default:
        ctx.Reply(16);
    }
  }

 private:
  std::shared_ptr<ChatState> state_;
  const ChatWorkloadConfig* config_;
  std::vector<ActorId> members_;
};

}  // namespace

ChatWorkload::ChatWorkload(Cluster* cluster, ChatWorkloadConfig config)
    : cluster_(cluster),
      config_(config),
      rng_(config.seed),
      state_(std::make_shared<ChatState>()),
      clients_(&cluster->sim(), cluster,
               ClientConfig{.request_rate = config.message_rate,
                            .request_bytes = config.message_bytes,
                            .timeout = config.client_timeout,
                            .seed = config.seed ^ 0xabc},
               [this](Rng& rng, ActorId* target, MethodId* method) {
                 return PickTarget(rng, target, method);
               }),
      driver_(&cluster->sim(), cluster, config.seed ^ 0xdef) {
  ACTOP_CHECK(cluster != nullptr);
  ACTOP_CHECK(config_.num_rooms >= 1);

  CostModel user_costs;
  user_costs.handler_compute = config_.user_compute;
  cluster_->RegisterActorType(
      kChatUserActorType,
      [this](ActorId) { return std::make_unique<ChatUserActor>(state_, &config_); }, user_costs);

  CostModel room_costs;
  room_costs.handler_compute = config_.room_compute;
  cluster_->RegisterActorType(
      kChatRoomActorType,
      [this](ActorId) { return std::make_unique<ChatRoomActor>(state_, &config_); }, room_costs);
}

bool ChatWorkload::PickTarget(Rng& rng, ActorId* target, MethodId* method) {
  *target = MakeActorId(kChatUserActorType,
                        rng.NextBounded(static_cast<uint64_t>(config_.num_users)) + 1);
  *method = kPostMessage;
  return true;
}

void ChatWorkload::Start() {
  ACTOP_CHECK(!running_);
  running_ = true;
  user_room_.assign(static_cast<size_t>(config_.num_users) + 1, 0);
  for (int u = 1; u <= config_.num_users; u++) {
    const uint64_t room =
        rng_.NextBounded(static_cast<uint64_t>(config_.num_rooms)) + 1;
    user_room_[static_cast<size_t>(u)] = room;
    driver_.Call(MakeActorId(kChatUserActorType, static_cast<uint64_t>(u)), kJoinRoom, room, 64,
                 nullptr);
  }
  if (!config_.external_clients) {
    clients_.Start();
  }
  cluster_->sim().SchedulePeriodic(config_.rehome_period, [this] { RehomeSomeUsers(); });
}

void ChatWorkload::Stop() {
  running_ = false;
  clients_.Stop();
}

void ChatWorkload::RehomeSomeUsers() {
  if (!running_) {
    return;
  }
  for (int i = 0; i < config_.rehomes_per_period; i++) {
    const uint64_t user = rng_.NextBounded(static_cast<uint64_t>(config_.num_users)) + 1;
    const uint64_t room = rng_.NextBounded(static_cast<uint64_t>(config_.num_rooms)) + 1;
    user_room_[user] = room;
    driver_.Call(MakeActorId(kChatUserActorType, user), kJoinRoom, room, 64, nullptr);
  }
}

}  // namespace actop
