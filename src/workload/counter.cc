#include "src/workload/counter.h"

#include <memory>

#include "src/actor/actor.h"
#include "src/common/check.h"

namespace actop {

namespace {

class CounterActor : public Actor {
 public:
  void OnCall(CallContext& ctx) override {
    count_++;
    ctx.Reply(128);
  }

  uint64_t count() const { return count_; }

 private:
  uint64_t count_ = 0;
};

}  // namespace

CounterWorkload::CounterWorkload(Cluster* cluster, CounterWorkloadConfig config)
    : cluster_(cluster),
      config_(config),
      clients_(
          &cluster->sim(), cluster,
          ClientConfig{.request_rate = config.request_rate,
                       .request_bytes = config.request_bytes,
                       .seed = config.seed},
          [num_actors = config.num_actors](Rng& rng, ActorId* target, MethodId* method) {
            *target = MakeActorId(kCounterActorType,
                                  rng.NextBounded(static_cast<uint64_t>(num_actors)) + 1);
            *method = 0;
            return true;
          }) {
  ACTOP_CHECK(cluster != nullptr);
  CostModel costs;
  costs.handler_compute = config_.handler_compute;
  cluster_->RegisterActorType(
      kCounterActorType, [](ActorId) { return std::make_unique<CounterActor>(); }, costs);
}

void CounterWorkload::Start() { clients_.Start(); }

void CounterWorkload::Stop() { clients_.Stop(); }

uint64_t CounterWorkload::TotalCount() const {
  uint64_t total = 0;
  for (int i = 0; i < config_.num_actors; i++) {
    const ActorId id = MakeActorId(kCounterActorType, static_cast<uint64_t>(i) + 1);
    if (cluster_->HasActorState(id)) {
      auto* actor = static_cast<CounterActor*>(
          const_cast<Cluster*>(cluster_)->GetOrCreateActor(id));
      total += actor->count();
    }
  }
  return total;
}

}  // namespace actop
