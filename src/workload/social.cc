#include "src/workload/social.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/actor/actor.h"
#include "src/common/check.h"

namespace actop {

namespace {

class SocialUserActor : public Actor {
 public:
  SocialUserActor(std::shared_ptr<SocialState> state, const SocialWorkloadConfig* config)
      : state_(std::move(state)), config_(config) {}

  void OnCall(CallContext& ctx) override {
    switch (ctx.method()) {
      case kPost: {
        state_->posts.fetch_add(1, std::memory_order_relaxed);
        // Write fan-out: one-way deliveries to every follower's timeline.
        for (const ActorId follower : followers_) {
          ctx.CallOneWay(follower, kDeliver, config_->post_bytes);
        }
        ctx.AddCompute(static_cast<SimDuration>(followers_.size()) * Micros(2));
        ctx.Reply(32);
        return;
      }
      case kDeliver: {
        state_->deliveries.fetch_add(1, std::memory_order_relaxed);
        timeline_length_++;
        ctx.Reply(16);
        return;
      }
      case kReadTimeline: {
        state_->reads.fetch_add(1, std::memory_order_relaxed);
        // Response size grows with (capped) timeline length.
        ctx.Reply(128 + 16 * static_cast<uint32_t>(std::min<int64_t>(timeline_length_, 50)));
        return;
      }
      case kFollow: {
        // app_data names the author; the *author* tracks its followers, so
        // this message is sent to the author with the follower in app_data.
        followers_.push_back(MakeActorId(kSocialUserActorType, ctx.app_data()));
        ctx.Reply(16);
        return;
      }
      case kUnfollow: {
        const ActorId follower = MakeActorId(kSocialUserActorType, ctx.app_data());
        for (size_t i = 0; i < followers_.size(); i++) {
          if (followers_[i] == follower) {
            followers_[i] = followers_.back();
            followers_.pop_back();
            break;
          }
        }
        ctx.Reply(16);
        return;
      }
      default:
        ctx.Reply(16);
    }
  }

 private:
  std::shared_ptr<SocialState> state_;
  const SocialWorkloadConfig* config_;
  std::vector<ActorId> followers_;
  int64_t timeline_length_ = 0;
};

}  // namespace

SocialWorkload::SocialWorkload(Cluster* cluster, SocialWorkloadConfig config)
    : cluster_(cluster),
      config_(config),
      rng_(config.seed),
      state_(std::make_shared<SocialState>()),
      clients_(&cluster->sim(), cluster,
               ClientConfig{.request_rate = config.post_rate + config.read_rate,
                            .request_bytes = config.post_bytes,
                            .timeout = config.client_timeout,
                            .seed = config.seed ^ 0x321},
               [this](Rng& rng, ActorId* target, MethodId* method) {
                 return PickTarget(rng, target, method);
               }),
      driver_(&cluster->sim(), cluster, config.seed ^ 0x654) {
  ACTOP_CHECK(cluster != nullptr);
  ACTOP_CHECK(config_.num_users >= 2);
  CostModel costs;
  costs.handler_compute = config_.handler_compute;
  cluster_->RegisterActorType(
      kSocialUserActorType,
      [this](ActorId) { return std::make_unique<SocialUserActor>(state_, &config_); }, costs);
  followers_of_.resize(static_cast<size_t>(config_.num_users) + 1);
}

uint64_t SocialWorkload::SampleAuthorFor(uint64_t user, Rng& rng) const {
  if (config_.communities > 1 && rng.NextDouble() < config_.community_bias) {
    // Within-community pick: communities are contiguous key ranges.
    const uint64_t size =
        (static_cast<uint64_t>(config_.num_users) + config_.communities - 1) /
        static_cast<uint64_t>(config_.communities);
    const uint64_t base = ((user - 1) / size) * size + 1;
    const uint64_t span =
        std::min<uint64_t>(size, static_cast<uint64_t>(config_.num_users) - base + 1);
    return base + rng.NextBounded(span);
  }
  return SampleUser(rng);
}

uint64_t SocialWorkload::SampleUser(Rng& rng) const {
  // Approximate Zipf via inverse-power transform of a uniform draw: user 1
  // is the most popular. skew 0 degenerates to uniform.
  const double u = rng.NextDouble();
  const double n = static_cast<double>(config_.num_users);
  if (config_.zipf_skew <= 0.0) {
    return static_cast<uint64_t>(u * n) + 1;
  }
  const double exponent = 1.0 / (1.0 - std::min(config_.zipf_skew, 0.99));
  const double rank = std::pow(u, exponent) * n;
  return static_cast<uint64_t>(std::clamp(rank, 0.0, n - 1.0)) + 1;
}

bool SocialWorkload::PickTarget(Rng& rng, ActorId* target, MethodId* method) {
  const bool is_post =
      rng.NextDouble() < config_.post_rate / (config_.post_rate + config_.read_rate);
  if (is_post) {
    // Anyone posts (uniform author), the fan-out hits the followers.
    *target = MakeActorId(kSocialUserActorType,
                          rng.NextBounded(static_cast<uint64_t>(config_.num_users)) + 1);
    *method = kPost;
  } else {
    *target = MakeActorId(kSocialUserActorType,
                          rng.NextBounded(static_cast<uint64_t>(config_.num_users)) + 1);
    *method = kReadTimeline;
  }
  return true;
}

void SocialWorkload::Start() {
  ACTOP_CHECK(!running_);
  running_ = true;
  // Build the follower graph: each user follows `mean_following` authors
  // drawn with Zipf preference. The author actor records the follower.
  for (uint64_t user = 1; user <= static_cast<uint64_t>(config_.num_users); user++) {
    for (int i = 0; i < config_.mean_following; i++) {
      const uint64_t author = SampleAuthorFor(user, rng_);
      if (author == user) {
        continue;
      }
      followers_of_[author].push_back(user);
      driver_.Call(MakeActorId(kSocialUserActorType, author), kFollow, user, 64, nullptr);
    }
  }
  if (!config_.external_clients) {
    clients_.Start();
  }
  cluster_->sim().SchedulePeriodic(config_.churn_period, [this] { Churn(); });
}

void SocialWorkload::Stop() {
  running_ = false;
  clients_.Stop();
}

void SocialWorkload::Churn() {
  if (!running_) {
    return;
  }
  for (int i = 0; i < config_.follows_per_period; i++) {
    const uint64_t user = rng_.NextBounded(static_cast<uint64_t>(config_.num_users)) + 1;
    // Unfollow someone old (if any), follow someone new.
    for (uint64_t author = 1; author <= static_cast<uint64_t>(config_.num_users); author++) {
      auto& flw = followers_of_[author];
      auto it = std::find(flw.begin(), flw.end(), user);
      if (it != flw.end()) {
        *it = flw.back();
        flw.pop_back();
        driver_.Call(MakeActorId(kSocialUserActorType, author), kUnfollow, user, 64, nullptr);
        break;
      }
    }
    const uint64_t author = SampleAuthorFor(user, rng_);
    if (author == user) {
      continue;
    }
    followers_of_[author].push_back(user);
    driver_.Call(MakeActorId(kSocialUserActorType, author), kFollow, user, 64, nullptr);
  }
}

int SocialWorkload::FollowerCount(uint64_t user_key) const {
  return static_cast<int>(followers_of_[user_key].size());
}

const std::vector<uint64_t>& SocialWorkload::FollowersOfUser(uint64_t user_key) const {
  return followers_of_[user_key];
}

}  // namespace actop
