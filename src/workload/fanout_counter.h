// Pooled fan-out counters for workload actors.
//
// The fan-out pattern (game broadcast, chat join) issues N sub-calls whose
// continuations share a remaining-count; the seed used make_shared<int> for
// it, which costs one combined object+control-block heap allocation per
// fan-out. MakeFanoutCounter routes that allocation through a per-thread
// RecyclingBlockCache so steady-state fan-outs reuse the same blocks. The
// allocator is stateless and resolves the cache at allocate/release time, so
// a counter whose last reference drops on a different shard thread than the
// one that created it frees into the releasing thread's cache — no race.

#ifndef SRC_WORKLOAD_FANOUT_COUNTER_H_
#define SRC_WORKLOAD_FANOUT_COUNTER_H_

#include <memory>

#include "src/common/recycling_pool.h"

namespace actop {

namespace internal {

inline RecyclingBlockCache& FanoutCounterCache() {
  thread_local RecyclingBlockCache cache;
  return cache;
}

template <typename U>
struct FanoutCounterAllocator {
  using value_type = U;

  FanoutCounterAllocator() = default;
  template <typename V>
  FanoutCounterAllocator(const FanoutCounterAllocator<V>&) {}  // NOLINT

  U* allocate(size_t n) { return static_cast<U*>(FanoutCounterCache().Allocate(n * sizeof(U))); }
  void deallocate(U* p, size_t n) { FanoutCounterCache().Release(p, n * sizeof(U)); }

  template <typename V>
  bool operator==(const FanoutCounterAllocator<V>&) const {
    return true;
  }
};

}  // namespace internal

inline std::shared_ptr<int> MakeFanoutCounter(int initial) {
  return std::allocate_shared<int>(internal::FanoutCounterAllocator<int>(), initial);
}

}  // namespace actop

#endif  // SRC_WORKLOAD_FANOUT_COUNTER_H_
