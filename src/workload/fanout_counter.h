// Pooled fan-out counters for workload actors.
//
// The fan-out pattern (game broadcast, chat join) issues N sub-calls whose
// continuations share a remaining-count; the seed used make_shared<int> for
// it, which costs one combined object+control-block heap allocation per
// fan-out. MakeFanoutCounter routes that allocation through a process-wide
// RecyclingBlockCache so steady-state fan-outs reuse the same blocks.

#ifndef SRC_WORKLOAD_FANOUT_COUNTER_H_
#define SRC_WORKLOAD_FANOUT_COUNTER_H_

#include <memory>

#include "src/common/recycling_pool.h"

namespace actop {

inline std::shared_ptr<int> MakeFanoutCounter(int initial) {
  static RecyclingBlockCache cache;
  return MakePooled<int>(cache, initial);
}

}  // namespace actop

#endif  // SRC_WORKLOAD_FANOUT_COUNTER_H_
