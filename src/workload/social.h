// Social-network workload — the paper's first motivating domain (§1).
//
// Users are actors holding a timeline; following is a directed graph with a
// skewed (Zipf-like) in-degree so a few "celebrity" users have large
// audiences. A post fans out one-way to every follower's timeline actor
// (write fan-out, the TAO/SPAR-style pattern the related-work section
// contrasts with); reads hit the user's own timeline.
//
// The communication graph is star-shaped around high-degree users and
// changes as users follow/unfollow — heavier-tailed than Halo's uniform
// 9-actor cliques, which stresses the partitioner's balance constraint
// (celebrities cannot be co-located with *all* their followers).

#ifndef SRC_WORKLOAD_SOCIAL_H_
#define SRC_WORKLOAD_SOCIAL_H_

#include <atomic>
#include <memory>
#include <vector>

#include "src/common/ids.h"
#include "src/common/rng.h"
#include "src/runtime/client.h"
#include "src/runtime/cluster.h"

namespace actop {

inline constexpr ActorType kSocialUserActorType = 7;

// User methods.
inline constexpr MethodId kPost = 0;          // client entry: publish a post
inline constexpr MethodId kDeliver = 1;       // author -> follower timeline
inline constexpr MethodId kReadTimeline = 2;  // client entry: read
inline constexpr MethodId kFollow = 3;        // driver -> user (app_data = author key)
inline constexpr MethodId kUnfollow = 4;      // driver -> user (app_data = author key)

struct SocialWorkloadConfig {
  int num_users = 2000;
  // Each user follows `mean_following` others; targets are drawn with a
  // skewed preference so in-degree is heavy-tailed.
  int mean_following = 10;
  double zipf_skew = 0.8;        // 0 = uniform, ~1 = strongly skewed
  // Real social graphs are community-structured: users are spread over
  // `communities` groups and follow within their group with probability
  // `community_bias` (the remainder goes to the global Zipf draw). Without
  // this the graph is an expander and no partition can help.
  int communities = 30;
  double community_bias = 0.8;
  double post_rate = 200.0;      // posts per second, cluster-wide
  double read_rate = 800.0;      // timeline reads per second
  SimDuration churn_period = Seconds(2);
  int follows_per_period = 10;   // follow/unfollow churn
  uint32_t post_bytes = 512;
  SimDuration handler_compute = Micros(25);
  SimDuration client_timeout = Seconds(10);
  // When true, Start() builds the follower graph but leaves arrival
  // generation to an external open-loop driver via ClientPool::Inject.
  bool external_clients = false;
  uint64_t seed = 77;
};

// Actor-side counters. Atomic (relaxed): under the sharded engine these are
// bumped concurrently from whichever shards host the user actors; the totals
// are only read after the run drains, so relaxed is sufficient.
struct SocialState {
  std::atomic<uint64_t> posts{0};
  std::atomic<uint64_t> deliveries{0};  // timeline writes at followers
  std::atomic<uint64_t> reads{0};
};

class SocialWorkload {
 public:
  SocialWorkload(Cluster* cluster, SocialWorkloadConfig config);

  // Builds the follower graph (via Follow calls) and starts traffic.
  void Start();
  void Stop();

  ClientPool& clients() { return clients_; }
  const SocialState& state() const { return *state_; }

  // In-degree of a user (number of followers), from the driver's bookkeeping.
  int FollowerCount(uint64_t user_key) const;

  // Follower keys of a user, from the driver's mirror (viral-cascade
  // triggers in src/load/ repost through the most-followed users' audiences).
  const std::vector<uint64_t>& FollowersOfUser(uint64_t user_key) const;

  static ActorId UserActor(uint64_t user_key) {
    return MakeActorId(kSocialUserActorType, user_key);
  }

 private:
  uint64_t SampleUser(Rng& rng) const;  // Zipf-skewed global pick
  uint64_t SampleAuthorFor(uint64_t user, Rng& rng) const;  // community-biased
  void Churn();
  bool PickTarget(Rng& rng, ActorId* target, MethodId* method);

  Cluster* cluster_;
  SocialWorkloadConfig config_;
  Rng rng_;
  std::shared_ptr<SocialState> state_;
  ClientPool clients_;
  DirectClient driver_;
  // follower lists mirrored by the driver (authoritative copy lives in the
  // actors; this mirror drives churn decisions only).
  std::vector<std::vector<uint64_t>> followers_of_;
  bool running_ = false;
};

}  // namespace actop

#endif  // SRC_WORKLOAD_SOCIAL_H_
