#include "src/workload/heartbeat.h"

#include <memory>

#include "src/actor/actor.h"
#include "src/common/check.h"

namespace actop {

namespace {

class MonitorActor : public Actor {
 public:
  void OnCall(CallContext& ctx) override {
    last_update_ = ctx.now();
    updates_++;
    ctx.Reply(64);
  }

 private:
  SimTime last_update_ = 0;
  uint64_t updates_ = 0;
};

}  // namespace

HeartbeatWorkload::HeartbeatWorkload(Cluster* cluster, HeartbeatWorkloadConfig config)
    : cluster_(cluster),
      config_(config),
      clients_(
          &cluster->sim(), cluster,
          ClientConfig{.request_rate = config.request_rate,
                       .request_bytes = config.request_bytes,
                       .timeout = config.client_timeout,
                       .seed = config.seed},
          [num = config.num_monitors](Rng& rng, ActorId* target, MethodId* method) {
            *target =
                MakeActorId(kMonitorActorType, rng.NextBounded(static_cast<uint64_t>(num)) + 1);
            *method = 0;
            return true;
          }) {
  ACTOP_CHECK(cluster != nullptr);
  CostModel costs;
  costs.handler_compute = config_.handler_compute;
  costs.handler_blocking = config_.handler_blocking;
  cluster_->RegisterActorType(
      kMonitorActorType, [](ActorId) { return std::make_unique<MonitorActor>(); }, costs);
}

void HeartbeatWorkload::Start() {
  if (!config_.external_clients) {
    clients_.Start();
  }
}

void HeartbeatWorkload::Stop() { clients_.Stop(); }

}  // namespace actop
