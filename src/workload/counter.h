// Counter micro-benchmark (§3, Figures 4 and 5).
//
// "A simple counter application where in response to a client request an
// actor increments a counter." One actor per counter; clients hit uniformly
// random counters. Single-server setup: all counters are placed on server 0
// via the kLocal placement warm-up.

#ifndef SRC_WORKLOAD_COUNTER_H_
#define SRC_WORKLOAD_COUNTER_H_

#include <cstdint>

#include "src/common/ids.h"
#include "src/runtime/client.h"
#include "src/runtime/cluster.h"

namespace actop {

inline constexpr ActorType kCounterActorType = 1;

struct CounterWorkloadConfig {
  int num_actors = 8000;          // paper: 8K actors
  double request_rate = 15000.0;  // paper: 15K req/s
  uint32_t request_bytes = 150;
  uint32_t response_bytes = 100;
  SimDuration handler_compute = Micros(25);
  uint64_t seed = 17;
};

class CounterWorkload {
 public:
  CounterWorkload(Cluster* cluster, CounterWorkloadConfig config);

  // Begins client traffic.
  void Start();
  void Stop();

  ClientPool& clients() { return clients_; }

  // Sum of all counters (test oracle: must equal completed requests).
  uint64_t TotalCount() const;

 private:
  Cluster* cluster_;
  CounterWorkloadConfig config_;
  ClientPool clients_;
};

}  // namespace actop

#endif  // SRC_WORKLOAD_COUNTER_H_
